/**
 * @file
 * Quickstart: simulate a noisy 10-qubit QFT with the baseline per-shot
 * Monte Carlo simulator and with TQSim, then compare wall time, computation
 * counts, and output fidelity.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/examples/quickstart [shots]
 */

#include <cstdio>
#include <cstdlib>

#include "circuits/qft.h"
#include "core/tqsim.h"
#include "metrics/fidelity.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;

    const std::uint64_t shots =
        (argc > 1) ? std::strtoull(argv[1], nullptr, 10) : 4096;

    // 1. A benchmark circuit: the 10-qubit QFT (237-gate class).
    const sim::Circuit circuit = circuits::qft(10);

    // 2. A noise model: Sycamore-derived depolarizing rates
    //    (0.1% on 1q gates, 1.5% on 2q gates).
    const noise::NoiseModel model = noise::NoiseModel::sycamore_depolarizing();

    std::printf("circuit: %s  width=%d  gates=%zu\n",
                circuit.name().c_str(), circuit.num_qubits(), circuit.size());
    std::printf("noise:   %s\n", model.description().c_str());
    std::printf("shots:   %llu\n\n", static_cast<unsigned long long>(shots));

    // 3. Baseline: every shot re-simulates the whole circuit.
    const core::RunResult base = core::run_baseline(circuit, model, shots);

    // 4. TQSim: dynamic circuit partitioning + intermediate-state reuse.
    core::RunOptions options;
    options.shots = shots;
    const core::RunResult tq = core::run(circuit, model, options);

    // 5. Compare.
    const metrics::Distribution ideal = core::ideal_distribution(circuit);
    const double f_base =
        metrics::normalized_fidelity(ideal, base.distribution);
    const double f_tq = metrics::normalized_fidelity(ideal, tq.distribution);

    util::Table table({"metric", "baseline", "tqsim"});
    table.add_row({"tree structure", base.plan.tree.to_string(),
                   tq.plan.tree.to_string()});
    table.add_row({"subcircuits", std::to_string(base.plan.num_levels()),
                   std::to_string(tq.plan.num_levels())});
    table.add_row({"gate applications",
                   std::to_string(base.stats.gate_applications),
                   std::to_string(tq.stats.gate_applications)});
    table.add_row({"state copies", std::to_string(base.stats.state_copies),
                   std::to_string(tq.stats.state_copies)});
    table.add_row({"peak state memory",
                   util::fmt_bytes(base.stats.peak_state_bytes),
                   util::fmt_bytes(tq.stats.peak_state_bytes)});
    table.add_row({"wall time", util::fmt_seconds(base.stats.wall_seconds),
                   util::fmt_seconds(tq.stats.wall_seconds)});
    table.add_row({"normalized fidelity", util::fmt_double(f_base, 4),
                   util::fmt_double(f_tq, 4)});
    std::printf("%s\n", table.to_string().c_str());

    std::printf("theoretical speedup: %s\n",
                util::fmt_speedup(tq.plan.theoretical_speedup()).c_str());
    std::printf("measured speedup:    %s\n",
                util::fmt_speedup(base.stats.wall_seconds /
                                  tq.stats.wall_seconds)
                    .c_str());
    std::printf("fidelity difference: %.4f\n", f_base - f_tq);
    return 0;
}
