/**
 * @file
 * VQA workload example (paper Sec. 5.7): sweep a QAOA max-cut cost landscape
 * over (beta, gamma) under depolarizing noise, using TQSim for every grid
 * point, and compare against the baseline simulator.
 *
 * Usage: qaoa_landscape [grid_size] [shots]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "circuits/graph.h"
#include "circuits/qaoa.h"
#include "core/tqsim.h"
#include "metrics/distribution.h"
#include "util/table.h"
#include "util/timer.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;

    const int grid = (argc > 1) ? std::atoi(argv[1]) : 5;
    const std::uint64_t shots =
        (argc > 2) ? std::strtoull(argv[2], nullptr, 10) : 512;

    const circuits::Graph graph = circuits::Graph::random(8, 0.5, 0xF00D);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    std::printf("graph: 8 vertices, %zu edges (random, p=0.5)\n",
                graph.num_edges());
    std::printf("grid:  %dx%d, %llu shots per point\n\n", grid, grid,
                static_cast<unsigned long long>(shots));

    double total_base_s = 0.0;
    double total_tq_s = 0.0;
    double mse_sum = 0.0;

    util::Table table({"beta", "gamma", "E[cut] base", "E[cut] tqsim",
                       "tqsim tree"});
    for (int bi = 0; bi < grid; ++bi) {
        for (int gi = 0; gi < grid; ++gi) {
            const double beta = (bi + 1) * M_PI / (2.0 * (grid + 1));
            const double gamma = (gi + 1) * M_PI / (grid + 1);
            const sim::Circuit circuit =
                circuits::qaoa_maxcut(graph, {beta}, {gamma});

            const core::RunResult base =
                core::run_baseline(circuit, model, shots);
            core::RunOptions opt;
            opt.shots = shots;
            const core::RunResult tq = core::run(circuit, model, opt);

            total_base_s += base.stats.wall_seconds;
            total_tq_s += tq.stats.wall_seconds;

            const double cut_base =
                circuits::expected_cut_value(base.distribution, graph);
            const double cut_tq =
                circuits::expected_cut_value(tq.distribution, graph);
            mse_sum += (cut_base - cut_tq) * (cut_base - cut_tq);

            table.add_row({util::fmt_double(beta, 2),
                           util::fmt_double(gamma, 2),
                           util::fmt_double(cut_base, 3),
                           util::fmt_double(cut_tq, 3),
                           tq.plan.tree.to_string()});
        }
    }
    std::printf("%s\n", table.to_string().c_str());

    const int points = grid * grid;
    std::printf("landscape points:      %d\n", points);
    std::printf("baseline total time:   %s\n",
                util::fmt_seconds(total_base_s).c_str());
    std::printf("tqsim total time:      %s\n",
                util::fmt_seconds(total_tq_s).c_str());
    std::printf("speedup:               %s\n",
                util::fmt_speedup(total_base_s / total_tq_s).c_str());
    std::printf("landscape MSE:         %.5f (expected-cut units^2)\n",
                mse_sum / points);
    return 0;
}
