/**
 * @file
 * Partitioning-strategy explorer: shows, for one circuit, the simulation
 * trees produced by Baseline / UCP / XCP / DCP and user-supplied manual
 * structures, with their node counts, theoretical speedups, and memory
 * needs — the paper's Sec. 3.2 design space at a glance.
 *
 * Usage: partition_explorer [width] [shots]
 */

#include <cstdio>
#include <cstdlib>

#include "circuits/qft.h"
#include "core/copy_cost.h"
#include "core/tqsim.h"
#include "util/table.h"

namespace {

using tqsim::core::PartitionPlan;

void
add_plan_row(tqsim::util::Table& table, const std::string& label,
             const PartitionPlan& plan, int width)
{
    const std::uint64_t intermediate_bytes =
        (plan.num_levels() + 1) * tqsim::sim::state_vector_bytes(width);
    table.add_row({label, plan.tree.to_string(),
                   std::to_string(plan.num_levels()),
                   std::to_string(plan.tree.total_nodes()),
                   std::to_string(plan.tree.total_outcomes()),
                   tqsim::util::fmt_speedup(plan.theoretical_speedup()),
                   tqsim::util::fmt_bytes(intermediate_bytes)});
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace tqsim;

    const int width = (argc > 1) ? std::atoi(argv[1]) : 10;
    const std::uint64_t shots =
        (argc > 2) ? std::strtoull(argv[2], nullptr, 10) : 4096;

    const sim::Circuit circuit = circuits::qft(width);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    std::printf("circuit: %s  width=%d  gates=%zu  shots=%llu\n",
                circuit.name().c_str(), width, circuit.size(),
                static_cast<unsigned long long>(shots));
    std::printf("host state-copy cost: %.1f gate-equivalents\n\n",
                core::host_copy_cost_in_gates());

    util::Table table({"strategy", "tree", "subcircuits", "nodes",
                       "outcomes", "theoretical speedup", "peak state mem"});

    core::RunOptions opt;
    opt.shots = shots;

    opt.strategy = core::PartitionStrategy::kBaseline;
    add_plan_row(table, "Baseline", core::plan(circuit, model, opt), width);

    opt.strategy = core::PartitionStrategy::kUCP;
    opt.fixed_subcircuits = 3;
    add_plan_row(table, "UCP(3)", core::plan(circuit, model, opt), width);

    opt.strategy = core::PartitionStrategy::kXCP;
    add_plan_row(table, "XCP(3, r=2)", core::plan(circuit, model, opt),
                 width);

    opt.strategy = core::PartitionStrategy::kDCP;
    add_plan_row(table, "DCP", core::plan(circuit, model, opt), width);

    opt.strategy = core::PartitionStrategy::kManual;
    opt.manual_arities = {shots / 4, 2, 2};
    add_plan_row(table, "Manual (N/4,2,2)", core::plan(circuit, model, opt),
                 width);

    std::printf("%s\n", table.to_string().c_str());
    std::printf("DCP picks the first-level arity from Cochran's formula "
                "(Eq. 5) on the first\nsubcircuit's Eq. 4 error rate, then "
                "spreads the rest uniformly (Eq. 6).\n");
    return 0;
}
