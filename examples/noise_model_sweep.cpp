/**
 * @file
 * Noise-model sensitivity example (paper Sec. 5.5): run one circuit under
 * the paper's channel combinations — depolarizing, thermal relaxation,
 * amplitude damping, phase damping, each with and without readout error —
 * and show that TQSim tracks the baseline's normalized fidelity under every
 * model.
 *
 * Usage: noise_model_sweep [shots]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "circuits/qpe.h"
#include "core/tqsim.h"
#include "metrics/fidelity.h"
#include "util/table.h"

namespace {

using tqsim::noise::Channel;
using tqsim::noise::NoiseModel;

std::vector<std::pair<std::string, NoiseModel>>
paper_noise_models()
{
    // Sycamore-style T1/T2 (nanoseconds) and gate times.
    const double t1 = 25000.0, t2 = 30000.0, t_1q = 35.0, t_2q = 350.0;
    std::vector<std::pair<std::string, NoiseModel>> models;
    models.emplace_back("DC", NoiseModel::sycamore_depolarizing());
    models.emplace_back("TR", NoiseModel::thermal(t1, t2, t_1q, t_2q));
    models.emplace_back("AD", NoiseModel::amplitude_damping_model(0.01));
    models.emplace_back("PD", NoiseModel::phase_damping_model(0.01));
    // Readout-augmented variants.
    for (int i = 0; i < 4; ++i) {
        auto with_readout = models[i];
        with_readout.first += "R";
        with_readout.second.set_readout_error(0.01);
        models.push_back(std::move(with_readout));
    }
    // Everything at once.
    NoiseModel all = NoiseModel::sycamore_depolarizing();
    all.add_on_1q_gates(Channel::thermal_relaxation(t1, t2, t_1q));
    all.add_on_1q_gates(Channel::amplitude_damping(0.01));
    all.add_on_1q_gates(Channel::phase_damping(0.01));
    all.set_readout_error(0.01);
    models.emplace_back("ALL", std::move(all));
    return models;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace tqsim;

    const std::uint64_t shots =
        (argc > 1) ? std::strtoull(argv[1], nullptr, 10) : 1024;

    // The paper's sensitivity workload: a QPE circuit whose eigenphase is
    // not exactly representable, giving a noise-sensitive bell curve.
    const sim::Circuit circuit = circuits::qpe(8, 1.0 / 3.0);
    const metrics::Distribution ideal = core::ideal_distribution(circuit);
    std::printf("circuit: %s  width=%d  gates=%zu, shots=%llu\n\n",
                circuit.name().c_str(), circuit.num_qubits(), circuit.size(),
                static_cast<unsigned long long>(shots));

    util::Table table(
        {"model", "fidelity base", "fidelity tqsim", "diff", "tqsim tree"});
    for (const auto& [name, model] : paper_noise_models()) {
        const core::RunResult base =
            core::run_baseline(circuit, model, shots);
        core::RunOptions opt;
        opt.shots = shots;
        const core::RunResult tq = core::run(circuit, model, opt);
        const double f_base =
            metrics::normalized_fidelity(ideal, base.distribution);
        const double f_tq =
            metrics::normalized_fidelity(ideal, tq.distribution);
        table.add_row({name, util::fmt_double(f_base, 4),
                       util::fmt_double(f_tq, 4),
                       util::fmt_double(f_base - f_tq, 4),
                       tq.plan.tree.to_string()});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("TQSim partitions on the depolarizing-channel rates and "
                "reuses the same structure\nfor every model, as in the "
                "paper's Sec. 5.5 methodology.\n");
    return 0;
}
