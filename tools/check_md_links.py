#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Validates, with no network access:

  * relative file links -- the target must exist, resolved against the
    linking file's directory (absolute /-style links resolve against the
    repo root);
  * anchor links -- ``#section`` (same file) and ``page.md#section``
    (cross-file) must name a real heading, using GitHub's slug rules
    (lowercase, punctuation stripped, spaces to dashes, duplicate slugs
    suffixed -1, -2, ...).

External links (http/https/mailto) are deliberately *not* fetched: CI must
stay hermetic, and a flaky remote must not fail the docs job.  Links inside
fenced code blocks and inline code spans are ignored.

Usage:
    tools/check_md_links.py [FILE|DIR ...]   # default: README.md docs/

Exit codes: 0 = all links resolve, 1 = broken links (listed on stdout),
2 = usage error.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Inline links/images: [text](target) / ![alt](target), optional "title".
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # any URI scheme


def github_slug(heading, seen):
    """GitHub's heading-to-anchor slug, disambiguated against `seen`."""
    # Drop inline code/emphasis markers, then markdown links' targets.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)  # strip punctuation
    slug = slug.replace(" ", "-")
    base = slug
    n = seen.get(base, 0)
    seen[base] = n + 1
    return base if n == 0 else f"{base}-{n}"


def scan_file(path):
    """Returns (links, anchors): [(lineno, target)], {slug, ...}."""
    links = []
    anchors = set()
    seen = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2), seen))
            for lm in LINK_RE.finditer(CODE_SPAN_RE.sub("``", line)):
                links.append((lineno, lm.group(1)))
    return links, anchors


def collect_md_files(args):
    files = []
    for arg in args:
        if os.path.isdir(arg):
            for root, _, names in os.walk(arg):
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".md"))
        elif os.path.isfile(arg):
            files.append(arg)
        else:
            print(f"check_md_links: no such file or directory: {arg}")
            sys.exit(2)
    return files


def main(argv):
    targets = argv or [os.path.join(REPO_ROOT, "README.md"),
                       os.path.join(REPO_ROOT, "docs")]
    files = collect_md_files(targets)
    if not files:
        print("check_md_links: no markdown files found")
        return 2

    scanned = {os.path.realpath(p): scan_file(p) for p in files}
    broken = []

    for path in files:
        real = os.path.realpath(path)
        links, own_anchors = scanned[real]
        base_dir = os.path.dirname(real)
        for lineno, target in links:
            if EXTERNAL_RE.match(target):
                continue  # external: not checked (hermetic CI)
            file_part, _, anchor = target.partition("#")
            if file_part:
                if file_part.startswith("/"):
                    resolved = os.path.join(REPO_ROOT, file_part.lstrip("/"))
                else:
                    resolved = os.path.join(base_dir, file_part)
                resolved = os.path.realpath(resolved)
                if not os.path.exists(resolved):
                    broken.append((path, lineno, target, "missing file"))
                    continue
            else:
                resolved = real
            if anchor:
                if resolved not in scanned:
                    if resolved.endswith(".md"):
                        scanned[resolved] = scan_file(resolved)
                    else:
                        continue  # anchor into a non-markdown file: skip
                if anchor.lower() not in scanned[resolved][1]:
                    broken.append((path, lineno, target, "missing anchor"))

    for path, lineno, target, why in broken:
        print(f"{os.path.relpath(path, REPO_ROOT)}:{lineno}: "
              f"broken link ({why}): {target}")
    checked = sum(len(scanned[os.path.realpath(p)][0]) for p in files)
    print(f"checked {len(files)} file(s), {checked} link(s), "
          f"{len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
