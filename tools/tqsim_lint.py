#!/usr/bin/env python3
"""tqsim-lint: project-invariant static analysis for the TQSim tree.

Generic tools (clang-tidy, compiler warnings) cannot check the invariants the
reuse-tree engine actually depends on, so this checker enforces them at the
source level:

  determinism   Every random draw must go through the project split-stream
                RNG (util::Rng).  Direct use of the C rand() family,
                <random> engines/distributions, std::random_device,
                std::shuffle, or time-based seeding is banned in src/: each
                one either breaks bit-reproducibility outright or makes the
                draw *count* implementation-defined, which desynchronizes
                the compiled/legacy/fused/sharded execution paths that are
                required to consume identical RNG streams.

  layering      #include edges must follow the layer DAG the build encodes:
                util -> sim -> {metrics, noise, circuits, dist_engine} ->
                core -> {hw, dm, stab, reuse, dist}.  An upward include
                (e.g. sim/ including core/) would let the StateBackend seam
                silently invert.  File-level include cycles are rejected
                everywhere.

  hotpath       Kernel dispatch bodies — the lambda arguments of
                parallel_for / parallel_sum / parallel_blocks /
                parallel_for_each in src/sim/ — must be allocation-free:
                no std::function, no operator new / malloc, no container
                construction or growth.  This is the rule the segment-plan
                work established by hand; an allocation inside a kernel
                loop serializes on the allocator lock and wrecks the
                measured speedups.

  catch         No silently swallowed exceptions.  Every `catch` block
                must rethrow (`throw`), record a structured error
                (construct a service::JobError / RejectReason or stash
                std::current_exception for later rethrow), or carry an
                explicit `// tqsim-lint: allow(catch)` rationale.  The
                failure-recovery machinery (docs/robustness.md) depends on
                every fault either surfacing with structure or being
                deliberately, visibly absorbed — a bare swallow hides
                injected faults and real ones alike.

  rng-discipline
                Parallel loop bodies and lane/worker bodies must not draw
                from an RNG stream created outside the region (a shared
                util::Rng captured by reference): concurrent draws race on
                the generator state and make the draw *order* — hence every
                sampled trajectory — schedule-dependent.  Lanes must derive
                their own stream inside the region via rng.split(level,
                index), which is const on the parent and collision-free by
                construction (docs/static-analysis.md#rng-discipline).

  lock-order    Lock acquisitions must follow the declared hierarchy
                service -> scheduler -> cache -> executor-leaf -> pool-run
                -> pool-job -> failpoint (ranks 10..50; see
                docs/static-analysis.md#lock-order).  Acquiring a lower- or
                equal-ranked lock while a higher-ranked one is held is a
                deadlock waiting for the right interleaving.  Additionally
                no lock may be held across a blocking wait or a dispatch
                boundary: thread joins, sleeps, execute_tree entry, and
                parallel_* dispatch under any live guard are flagged
                (condition-variable waits, which release the lock, are
                exempt by construction).

  cv-wait-predicate
                Every condition_variable wait must use the predicate
                overload: wait(lock, pred), wait_for(lock, dur, pred),
                wait_until(lock, tp, pred).  A bare wait silently drops
                notifications delivered before the sleep and resumes on
                spurious wakeups — the exact lost-wakeup class the
                job-service reaper rework fixed
                (docs/static-analysis.md#cv-wait-predicate).

Analysis runs on libclang when the Python bindings and a loadable
libclang.so are available, and falls back to a comment/string-aware
regex-AST otherwise (the fallback is authoritative for CI: both modes must
catch every fixture under tests/lint_fixtures/).

Suppression: append `// tqsim-lint: allow(<rule>)` to the offending line or
the line directly above it, or put `// tqsim-lint: allow-file(<rule>)`
anywhere in a file to exempt the whole file.  Rules: determinism, layering,
hotpath, catch, rng-discipline, lock-order, cv-wait-predicate.

Usage:
  tools/tqsim_lint.py --check src/            # lint the real tree
  tools/tqsim_lint.py --check <dir> --json    # machine-readable findings
  tools/tqsim_lint.py --list-rules

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

RULES = ("determinism", "layering", "hotpath", "catch",
         "rng-discipline", "lock-order", "cv-wait-predicate")

# ---------------------------------------------------------------------------
# Layer model (mirrors the CMake target graph; keep the two in sync)
# ---------------------------------------------------------------------------

# src/dist/ builds as two CMake targets; cluster_simulator.* sits above core
# while the sharded engine sits below it.  Map those files to distinct
# logical layers so the checker sees the same DAG the linker does.
DIST_UPPER_FILES = {"cluster_simulator"}

# Direct dependencies, exactly as declared in CMakeLists.txt.
LAYER_DEPS = {
    "util": set(),
    "sim": {"util"},
    "metrics": {"sim"},
    "noise": {"sim", "util"},
    "circuits": {"sim", "metrics", "util"},
    "dist_engine": {"sim", "util"},
    "core": {"sim", "noise", "metrics", "util", "dist_engine"},
    "hw": {"core"},
    "dm": {"noise", "metrics", "sim", "util"},
    "stab": {"noise", "metrics", "sim", "util"},
    "reuse": {"core", "noise", "sim", "util"},
    "dist": {"core", "dist_engine", "noise", "sim", "util"},
    # The serving layer is the top of the DAG: it may reach down into
    # core/reuse (and their closure), and nothing may include it.
    "service": {"core", "reuse", "noise", "sim", "util"},
}


def transitive_deps(layer: str) -> set:
    """Closure of LAYER_DEPS: everything `layer` may include from."""
    seen = set()
    work = [layer]
    while work:
        for dep in LAYER_DEPS.get(work.pop(), ()):  # unknown layer -> leaf
            if dep not in seen:
                seen.add(dep)
                work.append(dep)
    seen.add(layer)
    return seen


def layer_of(rel_path: str) -> str | None:
    """Logical layer of a path relative to the checked root, or None."""
    parts = rel_path.replace(os.sep, "/").split("/")
    if len(parts) < 2 or parts[0] not in LAYER_DEPS and parts[0] != "dist":
        return parts[0] if parts[0] in LAYER_DEPS else None
    layer = parts[0]
    if layer == "dist":
        stem = os.path.splitext(parts[-1])[0]
        return "dist" if stem in DIST_UPPER_FILES else "dist_engine"
    return layer


# ---------------------------------------------------------------------------
# Determinism rule: banned RNG constructs
# ---------------------------------------------------------------------------

BANNED_RNG = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "C rand()/srand()"),
    (re.compile(r"\b[dlm]rand48\b|\brand_r\b"), "C *rand48()/rand_r()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937 engine"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand engine"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\branlux\w*\b|\bknuth_b\b"), "<random> engine"),
    (re.compile(r"\brandom_shuffle\b"), "std::random_shuffle"),
    # std::shuffle consumes an implementation-defined number of draws, so
    # even fed by util::Rng it desynchronizes streams across stdlibs.
    (re.compile(r"\bstd\s*::\s*shuffle\b"), "std::shuffle"),
    (
        re.compile(
            r"\b(uniform_int|uniform_real|normal|lognormal|discrete|"
            r"bernoulli|binomial|poisson|exponential|geometric|gamma|"
            r"weibull|cauchy|chi_squared|student_t|fisher_f|piecewise_\w+)"
            r"_distribution\b"
        ),
        "<random> distribution (draw count is implementation-defined)",
    ),
    # time(...) fed into anything seed-like.
    (
        re.compile(r"seed[\w.()\s]*=?[^;\n]*\btime\s*\(|\btime\s*\(\s*"
                   r"(nullptr|NULL|0)\s*\)[^;\n]*seed", re.IGNORECASE),
        "time-based seeding",
    ),
]


# ---------------------------------------------------------------------------
# Hot-path rule: allocation/type-erasure inside kernel dispatch bodies
# ---------------------------------------------------------------------------

PARALLEL_CALL = re.compile(r"\bparallel_(for_each|for|sum|blocks)\s*\(")

BANNED_HOTPATH = [
    (re.compile(r"\bstd\s*::\s*function\b"), "std::function (type-erased "
     "indirect call + possible heap capture)"),
    (re.compile(r"(?<!\w)new\b(?!\s*\()"), "operator new"),
    (re.compile(r"\b(m|c|re)alloc\s*\("), "malloc-family allocation"),
    (re.compile(r"\bmake_(unique|shared)\b"), "heap allocation"),
    (re.compile(
        r"\bstd\s*::\s*(vector|string|deque|list|map|set|unordered_map|"
        r"unordered_set)\s*<"), "container construction"),
    (re.compile(r"\.\s*(push_back|emplace_back|resize|reserve|insert|"
                r"emplace)\s*\("), "container growth"),
]

# The parallel runtime itself declares the type-erased slow paths the
# template fast paths avoid; it is the one legitimate home of std::function
# in src/sim/.
HOTPATH_EXEMPT_FILES = {"sim/parallel.h", "sim/parallel.cc"}


# ---------------------------------------------------------------------------
# Catch rule: no silently swallowed exceptions
# ---------------------------------------------------------------------------

CATCH_HEAD = re.compile(r"\bcatch\s*\(")

# A handler is compliant when its body rethrows or records the failure in
# structured form: constructing a service error (JobError / RejectReason)
# or stashing std::current_exception for a later rethrow both count.
CATCH_STRUCTURED = re.compile(
    r"\bthrow\b|\bJobError\b|\bRejectReason\b|\bcurrent_exception\b")


# ---------------------------------------------------------------------------
# v2 dataflow rules: rng-discipline, lock-order, cv-wait-predicate
#
# These rules reason over lexical regions — a parallel call's argument span,
# a guard's scope with its unlock()/lock() windows, a wait call's argument
# list.  Their compliance criteria are deliberately textual (which names are
# declared inside a region, which guard is live at an offset), so one shared
# engine runs identically under both analysis modes: the AST adds nothing
# here, and CI must be able to trust that a fixture caught in one mode is
# caught in the other.
# ---------------------------------------------------------------------------

# rng-discipline: draws on util::Rng streams.  split() is absent on purpose
# — it is const on the parent and is exactly how a lane is *supposed* to
# derive its private stream from a shared one.
RNG_DRAW = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*(next_u64|uniform_u64|uniform|normal)\s*\(")

# Thread-body functions whose definitions count as lane regions alongside
# the parallel_* argument spans: the service lane/reaper bodies and the
# pool's worker loop run concurrently with everything else by construction.
LANE_FN = re.compile(r"\b(lane_loop|worker_main|run_job)\s*\(")

# lock-order: the declared hierarchy.  Keyed by (path substring, member
# name) because every mutex in the tree is locked only from its own
# translation unit; ranks ascend in acquisition order, i.e. holding rank r
# you may only acquire rank > r.  Keep in sync with the rank comments at
# each mutex declaration and docs/static-analysis.md#lock-order.
LOCK_RANKS = (
    ("service/job_service", "mutex_", 10, "service"),
    ("service/scheduler", "mutex_", 20, "scheduler"),
    ("service/reuse_cache", "mutex_", 30, "cache"),
    ("core/tree_executor", "distribution_mutex", 35, "executor-leaf"),
    ("sim/parallel", "run_mutex_", 40, "pool-run"),
    ("sim/parallel", "m_", 45, "pool-job"),
    ("util/failpoint", "mutex", 50, "failpoint"),
)

LOCK_HIERARCHY_DOC = ("service(10) -> scheduler(20) -> cache(30) -> "
                      "executor-leaf(35) -> pool-run(40) -> pool-job(45) "
                      "-> failpoint(50)")

# Guard acquisitions: the project RAII guard plus the std guards (which the
# real tree no longer uses, but fixtures and future regressions might).
GUARD_DECL = re.compile(
    r"\b(?:util\s*::\s*)?MutexLock\s+(\w+)\s*\(([^;()]*)\)|"
    r"\b(?:std\s*::\s*)?(?:lock_guard|unique_lock|scoped_lock)\s*"
    r"(?:<[^<>;]*>)?\s+(\w+)\s*[({]([^;()]*)[)}]")

# Calls that block (or dispatch onto the pool) and therefore must never run
# under a held lock, whatever its rank.  Condition-variable waits release
# the lock and are not in this list.
BLOCKING_CALLS = (
    (re.compile(r"\.\s*join\s*\("), "thread join"),
    (re.compile(r"\bsleep_for\s*\("), "sleep_for"),
    (re.compile(r"\bsleep_until\s*\("), "sleep_until"),
    (re.compile(r"\bexecute_tree\s*\("), "tree-executor entry"),
    (re.compile(r"\bparallel_(?:for_each|for|sum|blocks)\s*\("),
     "parallel dispatch"),
)

# cv-wait-predicate: collect condition-variable member/local names across
# the whole file set (declared in headers, waited on in .cc files), then
# check every wait call's top-level argument count.
CV_DECL = re.compile(r"\bcondition_variable(?:_any)?\s+(\w+)\s*[;{=]")
CV_WAIT = re.compile(r"\b(\w+)\s*(?:\.|->)\s*(wait_for|wait_until|wait)\s*\(")


def count_top_level_args(scrubbed: str, open_paren: int) -> int:
    """Arguments of the call whose '(' is at open_paren, counting commas at
    bracket depth 0 (parens, brackets, and braces all nest — a comma in a
    lambda capture list is not an argument separator)."""
    end = match_paren_span(scrubbed, open_paren)
    inner = scrubbed[open_paren + 1:end - 1]
    if not inner.strip():
        return 0
    depth, args = 0, 1
    for ch in inner:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            args += 1
    return args


def scope_end(scrubbed: str, start: int) -> int:
    """Offset of the '}' closing the scope containing offset `start`."""
    depth = 0
    for i in range(start, len(scrubbed)):
        c = scrubbed[i]
        if c == "{":
            depth += 1
        elif c == "}":
            if depth == 0:
                return i
            depth -= 1
    return len(scrubbed)


def guard_active_intervals(scrubbed, var, start, end):
    """Offset ranges within [start, end) where guard `var` holds its lock:
    the declaration-to-scope-end span minus any var.unlock() .. var.lock()
    windows (the project guard is relockable)."""
    unlock_re = re.compile(r"\b%s\s*\.\s*unlock\s*\(" % re.escape(var))
    lock_re = re.compile(r"\b%s\s*\.\s*lock\s*\(" % re.escape(var))
    intervals, pos = [], start
    while pos < end:
        m = unlock_re.search(scrubbed, pos, end)
        if not m:
            intervals.append((pos, end))
            break
        if m.start() > pos:
            intervals.append((pos, m.start()))
        m2 = lock_re.search(scrubbed, m.end(), end)
        if not m2:
            break
        pos = m2.end()
    return intervals


def lock_rank(norm_rel: str, mutex: str):
    for sub, name, rank, label in LOCK_RANKS:
        if sub in norm_rel and name == mutex:
            return rank, label
    return None, None


def collect_guards(norm_rel: str, scrubbed: str):
    guards = []
    for m in GUARD_DECL.finditer(scrubbed):
        var = m.group(1) or m.group(3)
        arg = m.group(2) if m.group(1) else m.group(4)
        tokens = re.findall(r"\w+", arg or "")
        if not tokens:
            continue
        mutex = tokens[-1]  # r.mutex -> mutex, s_->distribution_mutex -> ...
        end = scope_end(scrubbed, m.end())
        rank, label = lock_rank(norm_rel, mutex)
        guards.append({
            "var": var, "mutex": mutex, "decl": m.start(),
            "rank": rank, "label": label,
            "intervals": guard_active_intervals(scrubbed, var, m.end(), end),
        })
    return guards


def check_lock_order(rel_files, scrubbed_texts, sups, findings, enabled):
    if "lock-order" not in enabled:
        return
    for rel in rel_files:
        norm = rel.replace(os.sep, "/")
        scrubbed = scrubbed_texts[rel]
        guards = collect_guards(norm, scrubbed)

        def held_at(offset):
            for g in guards:
                if any(a <= offset < b for a, b in g["intervals"]):
                    return g
            return None

        for inner in guards:
            if inner["rank"] is None:
                continue
            outer = held_at(inner["decl"])
            if outer is None or outer["rank"] is None or outer is inner:
                continue
            if inner["rank"] <= outer["rank"]:
                lineno = line_at(scrubbed, inner["decl"])
                if not sups[rel].allows("lock-order", lineno):
                    findings.append(Finding(
                        "lock-order", rel, lineno,
                        f"lock-order inversion: acquiring "
                        f"'{inner['mutex']}' ({inner['label']}, rank "
                        f"{inner['rank']}) while holding '{outer['mutex']}' "
                        f"({outer['label']}, rank {outer['rank']}); the "
                        f"declared hierarchy is {LOCK_HIERARCHY_DOC}"))
        for pat, what in BLOCKING_CALLS:
            for m in pat.finditer(scrubbed):
                holder = held_at(m.start())
                if holder is None:
                    continue
                lineno = line_at(scrubbed, m.start())
                if not sups[rel].allows("lock-order", lineno):
                    findings.append(Finding(
                        "lock-order", rel, lineno,
                        f"blocking call ({what}) while holding "
                        f"'{holder['mutex']}': release the lock across "
                        "blocking waits and dispatch boundaries (an "
                        "unlock()/lock() window on the guard is the "
                        "sanctioned shape)"))


def rng_regions(scrubbed: str):
    """(begin, end, description) spans where rng-discipline applies: every
    parallel_* call's argument span and every lane/worker function body."""
    regions = []
    for call in PARALLEL_CALL.finditer(scrubbed):
        open_paren = scrubbed.index("(", call.start())
        regions.append((open_paren, match_paren_span(scrubbed, open_paren),
                        f"parallel_{call.group(1)} region"))
    for m in LANE_FN.finditer(scrubbed):
        open_paren = m.end() - 1
        after = match_paren_span(scrubbed, open_paren)
        brace = scrubbed.find("{", after)
        if brace < 0:
            continue
        gap = scrubbed[after:brace]
        # A definition's parameter list is followed (modulo qualifiers) by
        # its body; a call or declaration hits ';' first.
        if ";" in gap or "}" in gap or len(gap) > 120:
            continue
        regions.append((brace, match_brace_span(scrubbed, brace),
                        f"{m.group(1)} body"))
    return regions


def check_rng_discipline(rel_files, scrubbed_texts, sups, findings, enabled):
    if "rng-discipline" not in enabled:
        return
    reported = set()
    for rel in rel_files:
        scrubbed = scrubbed_texts[rel]
        for begin, end, where in rng_regions(scrubbed):
            region = scrubbed[begin:end]
            for m in RNG_DRAW.finditer(region):
                obj = m.group(1)
                # Streams created inside the region (util::Rng locals and
                # auto-bound split() results) are lane-private and fine.
                decl = re.compile(
                    r"(?:\bRng\s+|\bauto\s*&{0,2}\s+)%s\b" % re.escape(obj))
                if decl.search(region, 0, m.start()):
                    continue
                lineno = line_at(scrubbed, begin + m.start())
                if (rel, lineno) in reported:
                    continue  # nested regions (parallel call in a lane body)
                if not sups[rel].allows("rng-discipline", lineno):
                    reported.add((rel, lineno))
                    findings.append(Finding(
                        "rng-discipline", rel, lineno,
                        f"RNG draw {obj}.{m.group(2)}() on a stream not "
                        f"created inside this {where}: concurrent draws "
                        "race on generator state and make the draw order "
                        "schedule-dependent; split a per-lane stream "
                        "inside the region (rng.split(level, index))"))


def check_cv_wait(rel_files, scrubbed_texts, sups, findings, enabled):
    if "cv-wait-predicate" not in enabled:
        return
    cv_names = set()
    for rel in rel_files:
        for m in CV_DECL.finditer(scrubbed_texts[rel]):
            cv_names.add(m.group(1))
    if not cv_names:
        return
    for rel in rel_files:
        scrubbed = scrubbed_texts[rel]
        for m in CV_WAIT.finditer(scrubbed):
            if m.group(1) not in cv_names:
                continue
            method = m.group(2)
            need = 2 if method == "wait" else 3
            if count_top_level_args(scrubbed, m.end() - 1) >= need:
                continue
            lineno = line_at(scrubbed, m.start())
            if not sups[rel].allows("cv-wait-predicate", lineno):
                findings.append(Finding(
                    "cv-wait-predicate", rel, lineno,
                    f"{m.group(1)}.{method}() without a predicate: use "
                    "the predicate overload so notifications delivered "
                    "before the sleep are not lost and spurious wakeups "
                    "re-check the condition"))


# ---------------------------------------------------------------------------
# Source scrubbing and suppression parsing (shared by both modes)
# ---------------------------------------------------------------------------

def scrub(text: str) -> str:
    """Blanks comments, string and char literals, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


ALLOW_LINE = re.compile(r"tqsim-lint:\s*allow\(([\w\s,-]+)\)")
ALLOW_FILE = re.compile(r"tqsim-lint:\s*allow-file\(([\w\s,-]+)\)")


class Suppressions:
    """Per-file suppression annotations parsed from raw (unscrubbed) text."""

    def __init__(self, raw_text: str):
        self.file_rules = set()
        self.line_rules = {}  # line number (1-based) -> set of rules
        for lineno, line in enumerate(raw_text.splitlines(), start=1):
            m = ALLOW_FILE.search(line)
            if m:
                self.file_rules |= {r.strip() for r in m.group(1).split(",")}
            m = ALLOW_LINE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                self.line_rules.setdefault(lineno, set()).update(rules)

    def allows(self, rule: str, lineno: int) -> bool:
        if rule in self.file_rules:
            return True
        # An annotation suppresses its own line and the line below it.
        return (rule in self.line_rules.get(lineno, ())
                or rule in self.line_rules.get(lineno - 1, ()))


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self):
        return {"rule": self.rule, "file": self.path, "line": self.line,
                "message": self.message}


def line_at(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_paren_span(text: str, open_paren: int) -> int:
    """Offset one past the ')' matching text[open_paren] (scrubbed text)."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def match_brace_span(text: str, open_brace: int) -> int:
    """Offset one past the '}' matching text[open_brace] (scrubbed text)."""
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# ---------------------------------------------------------------------------
# Regex-AST analysis (the always-available fallback; authoritative in CI)
# ---------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]*"([^"]+)"', re.MULTILINE)

SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp", ".cxx")


def collect_sources(root: str):
    files = []
    for dirpath, _, names in os.walk(root):
        for name in sorted(names):
            if name.endswith(SOURCE_EXTS):
                full = os.path.join(dirpath, name)
                files.append(os.path.relpath(full, root))
    return sorted(files)


def check_determinism(rel, scrubbed, sup, findings, enabled):
    if "determinism" not in enabled:
        return
    for pat, what in BANNED_RNG:
        for m in pat.finditer(scrubbed):
            lineno = line_at(scrubbed, m.start())
            if not sup.allows("determinism", lineno):
                findings.append(Finding(
                    "determinism", rel, lineno,
                    f"banned RNG construct: {what}; draw through "
                    "util::Rng (split-stream) instead"))


def check_hotpath(rel, scrubbed, sup, findings, enabled):
    if "hotpath" not in enabled:
        return
    norm = rel.replace(os.sep, "/")
    if not norm.startswith("sim/") or norm in HOTPATH_EXEMPT_FILES:
        return
    for call in PARALLEL_CALL.finditer(scrubbed):
        open_paren = scrubbed.index("(", call.start())
        end = match_paren_span(scrubbed, open_paren)
        region = scrubbed[open_paren:end]
        for pat, what in BANNED_HOTPATH:
            for m in pat.finditer(region):
                lineno = line_at(scrubbed, open_paren + m.start())
                if not sup.allows("hotpath", lineno):
                    findings.append(Finding(
                        "hotpath", rel, lineno,
                        f"{what} inside a parallel_{call.group(1)} kernel "
                        "body; hoist it out of the dispatch region"))


def check_catch(rel, scrubbed, sup, findings, enabled):
    if "catch" not in enabled:
        return
    for head in CATCH_HEAD.finditer(scrubbed):
        lineno = line_at(scrubbed, head.start())
        open_paren = scrubbed.index("(", head.start())
        after_params = match_paren_span(scrubbed, open_paren)
        open_brace = scrubbed.find("{", after_params)
        if open_brace < 0 or scrubbed[after_params:open_brace].strip():
            continue  # not a handler (e.g. a call named *catch(...))
        body = scrubbed[open_brace:match_brace_span(scrubbed, open_brace)]
        if CATCH_STRUCTURED.search(body):
            continue
        if not sup.allows("catch", lineno):
            findings.append(Finding(
                "catch", rel, lineno,
                "exception swallowed: a catch block must rethrow, record "
                "a structured error (JobError / std::current_exception), "
                "or carry a `// tqsim-lint: allow(catch)` rationale"))


def check_layering(root, rel_files, raw_texts, sups, findings, enabled):
    if "layering" not in enabled:
        return
    rel_set = {f.replace(os.sep, "/") for f in rel_files}
    edges = {}  # rel -> list of (lineno, include target rel)
    for rel in rel_files:
        norm = rel.replace(os.sep, "/")
        text = raw_texts[rel]
        edges[norm] = []
        for m in INCLUDE_RE.finditer(text):
            target = m.group(1)
            lineno = line_at(text, m.start())
            if target in rel_set:
                edges[norm].append((lineno, target))
            src_layer = layer_of(norm)
            dst_layer = layer_of(target) if target in rel_set or \
                target.split("/")[0] in LAYER_DEPS else None
            if src_layer is None or dst_layer is None:
                continue
            if dst_layer not in transitive_deps(src_layer):
                if not sups[rel].allows("layering", lineno):
                    findings.append(Finding(
                        "layering", rel, lineno,
                        f'include of "{target}" breaks the layer DAG: '
                        f"{src_layer} may not depend on {dst_layer} "
                        f"(allowed: {', '.join(sorted(transitive_deps(src_layer)))})"))
    # File-level cycle detection (DFS with colors).
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {f: WHITE for f in edges}
    stack = []

    def dfs(node):
        color[node] = GRAY
        stack.append(node)
        for lineno, target in edges.get(node, ()):
            if target not in color:
                continue
            if color[target] == GRAY:
                cycle = stack[stack.index(target):] + [target]
                rel_orig = node
                if not sups[rel_orig].allows("layering", lineno):
                    findings.append(Finding(
                        "layering", node, lineno,
                        "include cycle: " + " -> ".join(cycle)))
            elif color[target] == WHITE:
                dfs(target)
        stack.pop()
        color[node] = BLACK

    for f in sorted(edges):
        if color[f] == WHITE:
            dfs(f)


def run_regex_mode(root, enabled):
    findings = []
    rel_files = collect_sources(root)
    raw_texts, scrubbed_texts, sups = {}, {}, {}
    for rel in rel_files:
        with open(os.path.join(root, rel), "r", encoding="utf-8",
                  errors="replace") as f:
            raw = f.read()
        raw_texts[rel] = raw
        sups[rel] = Suppressions(raw)
        scrubbed = scrub(raw)
        scrubbed_texts[rel] = scrubbed
        check_determinism(rel, scrubbed, sups[rel], findings, enabled)
        check_hotpath(rel, scrubbed, sups[rel], findings, enabled)
        check_catch(rel, scrubbed, sups[rel], findings, enabled)
    check_layering(root, rel_files, raw_texts, sups, findings, enabled)
    check_lock_order(rel_files, scrubbed_texts, sups, findings, enabled)
    check_rng_discipline(rel_files, scrubbed_texts, sups, findings, enabled)
    check_cv_wait(rel_files, scrubbed_texts, sups, findings, enabled)
    return findings


# ---------------------------------------------------------------------------
# libclang analysis (preferred when available)
# ---------------------------------------------------------------------------

BANNED_RNG_SPELLINGS = {
    "rand", "srand", "drand48", "lrand48", "mrand48", "rand_r",
    "random_shuffle", "shuffle",
}

BANNED_RNG_TYPES = (
    "random_device", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "knuth_b", "ranlux24", "ranlux48",
    "_distribution",
)

PARALLEL_NAMES = {"parallel_for", "parallel_sum", "parallel_blocks",
                  "parallel_for_each"}

BANNED_HOTPATH_TYPES = ("function", "vector", "basic_string", "deque",
                        "list", "map", "set", "unordered_map",
                        "unordered_set")

BANNED_HOTPATH_CALLS = {"malloc", "calloc", "realloc", "make_unique",
                        "make_shared", "push_back", "emplace_back",
                        "resize", "reserve", "insert", "emplace"}


def try_libclang():
    """Returns a verified clang.cindex module, or None."""
    try:
        from clang import cindex  # type: ignore
        index = cindex.Index.create()
        tu = index.parse("probe.cc", args=["-std=c++20"],
                         unsaved_files=[("probe.cc", "int main(){return 0;}")])
        if tu is None or not any(True for _ in tu.cursor.get_children()):
            return None
        return cindex
    except Exception:
        return None


def libclang_args(root):
    return ["-std=c++20", "-I", os.path.dirname(os.path.abspath(root)) or ".",
            "-I", os.path.abspath(root)]


def run_libclang_mode(cindex, root, enabled):
    """AST-backed determinism + hotpath checks; layering stays textual
    (the include graph is a preprocessor-level property) and so does the
    catch rule (its compliance criterion — which tokens the handler body
    mentions — is textual by definition, and running it on the raw files
    also covers headers the AST pass skips).  The v2 dataflow rules
    (rng-discipline, lock-order, cv-wait-predicate) run through the same
    shared region engine as regex mode: their criteria are lexical
    region/ordering properties, and sharing the engine guarantees both
    modes agree on every fixture.  Raises on any parse trouble so the
    caller can fall back to regex mode."""
    findings = []
    rel_files = collect_sources(root)
    raw_texts, scrubbed_texts, sups = {}, {}, {}
    for rel in rel_files:
        with open(os.path.join(root, rel), "r", encoding="utf-8",
                  errors="replace") as f:
            raw_texts[rel] = f.read()
        sups[rel] = Suppressions(raw_texts[rel])
        scrubbed_texts[rel] = scrub(raw_texts[rel])
        check_catch(rel, scrubbed_texts[rel], sups[rel], findings, enabled)
    check_lock_order(rel_files, scrubbed_texts, sups, findings, enabled)
    check_rng_discipline(rel_files, scrubbed_texts, sups, findings, enabled)
    check_cv_wait(rel_files, scrubbed_texts, sups, findings, enabled)

    index = cindex.Index.create()
    for rel in rel_files:
        if not rel.endswith((".cc", ".cpp", ".cxx")):
            continue  # headers are covered through their includers
        path = os.path.join(root, rel)
        tu = index.parse(path, args=libclang_args(root))
        if tu is None:
            raise RuntimeError(f"libclang failed to parse {rel}")
        main_file = os.path.abspath(path)

        def in_main(cursor):
            loc = cursor.location
            return (loc.file is not None
                    and os.path.abspath(loc.file.name) == main_file)

        def emit(rule, cursor, message):
            lineno = cursor.location.line
            if not sups[rel].allows(rule, lineno):
                findings.append(Finding(rule, rel, lineno, message))

        def walk(cursor, in_kernel):
            for child in cursor.get_children():
                kernel = in_kernel
                if child.kind == cindex.CursorKind.CALL_EXPR:
                    name = child.spelling or ""
                    if ("determinism" in enabled and in_main(child)
                            and name in BANNED_RNG_SPELLINGS):
                        emit("determinism", child,
                             f"banned RNG call: {name}(); draw through "
                             "util::Rng (split-stream) instead")
                    if (in_kernel and "hotpath" in enabled
                            and in_main(child)
                            and name in BANNED_HOTPATH_CALLS):
                        emit("hotpath", child,
                             f"{name}() inside a kernel dispatch body; "
                             "hoist it out of the dispatch region")
                    if name in PARALLEL_NAMES and hotpath_applies(rel):
                        walk(child, True)
                        continue
                if child.kind in (cindex.CursorKind.CXX_NEW_EXPR,):
                    if in_kernel and "hotpath" in enabled and in_main(child):
                        emit("hotpath", child, "operator new inside a "
                             "kernel dispatch body")
                if child.kind in (cindex.CursorKind.VAR_DECL,
                                  cindex.CursorKind.TYPE_REF,
                                  cindex.CursorKind.DECL_REF_EXPR):
                    tspell = (child.type.spelling or "") + " " + \
                        (child.spelling or "")
                    if "determinism" in enabled and in_main(child) and any(
                            b in tspell for b in BANNED_RNG_TYPES):
                        emit("determinism", child,
                             f"banned RNG type in '{tspell.strip()}'; use "
                             "util::Rng (split-stream) instead")
                    if in_kernel and "hotpath" in enabled and in_main(child) \
                            and child.kind == cindex.CursorKind.VAR_DECL \
                            and any(f"{b}<" in child.type.spelling or
                                    child.type.spelling.endswith(b)
                                    for b in BANNED_HOTPATH_TYPES):
                        emit("hotpath", child,
                             f"container/type-erased local "
                             f"'{child.spelling}' constructed inside a "
                             "kernel dispatch body")
                walk(child, kernel)

        def hotpath_applies(rel_path):
            norm = rel_path.replace(os.sep, "/")
            return norm.startswith("sim/") and norm not in \
                HOTPATH_EXEMPT_FILES

        walk(tu.cursor, False)

    check_layering(root, rel_files, raw_texts, sups, findings, enabled)
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="tqsim_lint.py",
        description="TQSim project-invariant static analysis")
    parser.add_argument("--check", metavar="DIR",
                        help="directory to lint (layer dirs at its top "
                             "level, e.g. src/)")
    parser.add_argument("--rules", default=",".join(RULES),
                        help="comma-separated rule subset (default: all)")
    parser.add_argument("--mode", choices=["auto", "regex", "libclang"],
                        default="auto",
                        help="analysis backend (auto prefers libclang, "
                             "falls back to regex)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0
    if not args.check:
        parser.error("--check DIR is required (or use --list-rules)")

    enabled = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = enabled - set(RULES)
    if unknown:
        print(f"tqsim-lint: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    root = args.check
    if not os.path.isdir(root):
        print(f"tqsim-lint: not a directory: {root}", file=sys.stderr)
        return 2

    mode = args.mode
    cindex = None
    if mode in ("auto", "libclang"):
        cindex = try_libclang()
        if cindex is None:
            if mode == "libclang":
                print("tqsim-lint: libclang requested but unavailable",
                      file=sys.stderr)
                return 2
            mode = "regex"
        else:
            mode = "libclang"

    if mode == "libclang":
        try:
            findings = run_libclang_mode(cindex, root, enabled)
        except Exception as err:  # degrade, never crash the gate
            print(f"tqsim-lint: libclang analysis failed ({err}); "
                  "falling back to regex mode", file=sys.stderr)
            mode = "regex"
            findings = run_regex_mode(root, enabled)
    else:
        findings = run_regex_mode(root, enabled)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if args.json:
        print(json.dumps({"mode": mode,
                          "findings": [f.as_dict() for f in findings]},
                         indent=2))
    else:
        for f in findings:
            print(f)
        print(f"tqsim-lint [{mode}]: {len(findings)} finding(s) in "
              f"{root}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
