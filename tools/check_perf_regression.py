#!/usr/bin/env python3
"""Compare a bench_micro_kernels JSON artifact against a committed baseline.

Fails (exit 1) when any kernel's throughput regressed by more than the
threshold.  By default throughputs are normalized by the same run's
`state_copy` row at the same width: that row is a pure memory-bandwidth
probe, so the normalized ratio "kernel throughput per unit of machine
memory speed" transfers between hosts (the committed baseline and a CI
runner are different machines).  --absolute compares raw items_per_sec
instead, for same-machine A/B runs.

Usage:
  tools/check_perf_regression.py --baseline bench/baselines/micro_kernels_baseline.json \
      --current micro.json [--threshold 0.25] [--absolute]
"""

import argparse
import json
import sys

CALIBRATION_KIND = "state_copy"


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        if "kind" in row and "items_per_sec" in row:
            rows[(row["kind"], row.get("qubits"))] = float(row["items_per_sec"])
    if not rows:
        sys.exit(f"error: no benchmark rows in {path}")
    return rows


def normalized(rows, key):
    calib = rows.get((CALIBRATION_KIND, key[1]))
    if not calib:
        return None
    return rows[key] / calib


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max tolerated fractional regression (default 0.25)")
    ap.add_argument("--absolute", action="store_true",
                    help="compare raw throughput (same-machine runs only)")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cur = load_rows(args.current)

    failures = []
    print(f"{'kind':<18}{'qubits':>7}{'baseline':>12}{'current':>12}{'delta':>9}")
    for key in sorted(base):
        kind, qubits = key
        if key not in cur:
            print(f"{kind:<18}{qubits!s:>7}{'-':>12}{'-':>12}{'MISSING':>9}")
            failures.append((key, "missing from current run"))
            continue
        if not args.absolute and kind == CALIBRATION_KIND:
            continue  # the calibration row normalizes to itself
        b = base[key] if args.absolute else normalized(base, key)
        c = cur[key] if args.absolute else normalized(cur, key)
        if b is None or c is None:
            continue
        delta = (c - b) / b
        marker = ""
        if delta < -args.threshold:
            marker = "  << REGRESSION"
            failures.append((key, f"{delta:+.1%}"))
        print(f"{kind:<18}{qubits!s:>7}{b:>12.3g}{c:>12.3g}{delta:>+9.1%}{marker}")

    if failures:
        print(f"\nFAIL: {len(failures)} kernel(s) regressed more than "
              f"{args.threshold:.0%}:")
        for key, what in failures:
            print(f"  {key[0]} @ {key[1]}q: {what}")
        return 1
    print(f"\nOK: no kernel regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
