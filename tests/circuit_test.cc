// Unit tests for sim::Circuit.

#include <gtest/gtest.h>

#include "sim/circuit.h"

namespace tqsim::sim {
namespace {

TEST(Circuit, StartsEmpty)
{
    Circuit c(3, "demo");
    EXPECT_EQ(c.num_qubits(), 3);
    EXPECT_EQ(c.name(), "demo");
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.size(), 0u);
}

TEST(Circuit, AppendValidatesQubits)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_THROW(c.x(2), std::out_of_range);
    EXPECT_THROW(c.cx(0, 5), std::out_of_range);
}

TEST(Circuit, MultiQubitGateCount)
{
    Circuit c(3);
    c.h(0).cx(0, 1).t(2).ccx(0, 1, 2).swap(1, 2);
    EXPECT_EQ(c.multi_qubit_gate_count(), 3u);
}

TEST(Circuit, DepthComputesLayering)
{
    Circuit c(3);
    // Layer 1: h(0), h(1); layer 2: cx(0,1); layer 3: cx(1,2).
    c.h(0).h(1).cx(0, 1).cx(1, 2);
    EXPECT_EQ(c.depth(), 3);
    // Independent gate goes in layer 1.
    Circuit d(2);
    d.h(0).h(1);
    EXPECT_EQ(d.depth(), 1);
}

TEST(Circuit, SliceExtractsContiguousRange)
{
    Circuit c(2);
    c.h(0).x(1).cx(0, 1).z(0);
    const Circuit mid = c.slice(1, 3);
    EXPECT_EQ(mid.size(), 2u);
    EXPECT_EQ(mid.gate(0).name(), "x");
    EXPECT_EQ(mid.gate(1).name(), "cx");
    EXPECT_EQ(mid.num_qubits(), 2);
    EXPECT_THROW(c.slice(3, 2), std::out_of_range);
    EXPECT_THROW(c.slice(0, 5), std::out_of_range);
}

TEST(Circuit, SlicesConcatenateToWhole)
{
    Circuit c(2);
    c.h(0).x(1).cx(0, 1).z(0).s(1);
    Circuit joined(2);
    joined += c.slice(0, 2);
    joined += c.slice(2, 5);
    ASSERT_EQ(joined.size(), c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_TRUE(joined.gate(i) == c.gate(i));
    }
}

TEST(Circuit, ComposeRejectsWidthMismatch)
{
    Circuit a(2), b(3);
    EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Circuit, InverseUndoesCircuit)
{
    Circuit c(3);
    c.h(0).t(1).cx(0, 2).rz(1, 0.7).fsim(1, 2, 0.4, 0.2).s(0);
    StateVector s(3);
    c.apply_to(s);
    c.inverse().apply_to(s);
    StateVector zero(3);
    EXPECT_TRUE(s.approx_equal(zero, 1e-10));
}

TEST(Circuit, ApplyToChecksWidth)
{
    Circuit c(3);
    StateVector narrow(2);
    EXPECT_THROW(c.apply_to(narrow), std::invalid_argument);
}

TEST(Circuit, SimulateIdealBellPair)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    const StateVector s = c.simulate_ideal();
    EXPECT_NEAR(std::norm(s[0]), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(s[3]), 0.5, 1e-12);
}

TEST(Circuit, ToStringListsGates)
{
    Circuit c(2, "pair");
    c.h(0).cx(0, 1);
    const std::string s = c.to_string();
    EXPECT_NE(s.find("pair"), std::string::npos);
    EXPECT_NE(s.find("h q0"), std::string::npos);
    EXPECT_NE(s.find("cx q0,q1"), std::string::npos);
}

TEST(Circuit, RejectsBadWidths)
{
    EXPECT_THROW(Circuit(0), std::invalid_argument);
    EXPECT_THROW(Circuit(40), std::invalid_argument);
}

}  // namespace
}  // namespace tqsim::sim
