// Tests for the 48-circuit benchmark suite (Table 2).

#include <gtest/gtest.h>

#include <set>

#include "circuits/suite.h"

namespace tqsim::circuits {
namespace {

TEST(Suite, HasEightFamiliesOfSixCircuits)
{
    for (SuiteScale scale : {SuiteScale::kPaper, SuiteScale::kReduced}) {
        const auto suite = benchmark_suite(scale);
        EXPECT_EQ(suite.size(), 48u);
        for (Family f : all_families()) {
            int count = 0;
            for (const auto& c : suite) {
                if (c.family == f) {
                    ++count;
                }
            }
            EXPECT_EQ(count, 6) << family_name(f);
        }
    }
}

TEST(Suite, PaperWidthsMatchTable2Ranges)
{
    struct Range { Family family; int lo; int hi; };
    // Table 2 width columns.
    const Range ranges[] = {
        {Family::kAdder, 4, 10}, {Family::kBV, 6, 16},  {Family::kMul, 13, 25},
        {Family::kQAOA, 6, 15},  {Family::kQFT, 8, 20}, {Family::kQPE, 4, 16},
        {Family::kQSC, 8, 16},   {Family::kQV, 10, 20},
    };
    const auto suite = benchmark_suite(SuiteScale::kPaper);
    for (const auto& c : suite) {
        for (const Range& r : ranges) {
            if (c.family == r.family) {
                EXPECT_GE(c.circuit.num_qubits(), r.lo) << c.name;
                EXPECT_LE(c.circuit.num_qubits(), r.hi) << c.name;
            }
        }
    }
}

TEST(Suite, ReducedScaleFitsFastSimulation)
{
    for (const auto& c : benchmark_suite(SuiteScale::kReduced)) {
        EXPECT_LE(c.circuit.num_qubits(), 13) << c.name;
        EXPECT_GE(c.circuit.size(), 5u) << c.name;
    }
}

TEST(Suite, NamesAreUniqueWithinScale)
{
    for (SuiteScale scale : {SuiteScale::kPaper, SuiteScale::kReduced}) {
        std::set<std::string> names;
        for (const auto& c : benchmark_suite(scale)) {
            EXPECT_TRUE(names.insert(c.name).second)
                << "duplicate " << c.name;
        }
    }
}

TEST(Suite, CircuitNamesCarrySuiteNames)
{
    for (const auto& c : benchmark_suite(SuiteScale::kReduced)) {
        EXPECT_EQ(c.circuit.name(), c.name);
    }
}

TEST(Suite, FamilySuiteMatchesFullSuiteSubset)
{
    const auto qft_only = family_suite(Family::kQFT, SuiteScale::kPaper);
    EXPECT_EQ(qft_only.size(), 6u);
    for (const auto& c : qft_only) {
        EXPECT_EQ(c.family, Family::kQFT);
    }
}

TEST(Suite, FamilyNames)
{
    EXPECT_EQ(family_name(Family::kAdder), "ADDER");
    EXPECT_EQ(family_name(Family::kQSC), "QSC");
    EXPECT_EQ(all_families().size(), 8u);
}

TEST(Suite, PaperQvGateCountsMatchPaper)
{
    // Fig. 11h tuples: (10,330) ... (20,660).
    const auto qv = family_suite(Family::kQV, SuiteScale::kPaper);
    EXPECT_EQ(qv[0].circuit.num_qubits(), 10);
    EXPECT_EQ(qv[0].circuit.size(), 330u);
    EXPECT_EQ(qv[5].circuit.num_qubits(), 20);
    EXPECT_EQ(qv[5].circuit.size(), 660u);
}

TEST(Suite, AllCircuitsSimulatableAtReducedScale)
{
    // Smoke: every reduced circuit runs through the ideal simulator.
    for (const auto& c : benchmark_suite(SuiteScale::kReduced)) {
        if (c.circuit.num_qubits() <= 10) {
            const auto s = c.circuit.simulate_ideal();
            EXPECT_NEAR(s.norm_squared(), 1.0, 1e-9) << c.name;
        }
    }
}

}  // namespace
}  // namespace tqsim::circuits
