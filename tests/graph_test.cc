// Unit tests for the QAOA input graphs.

#include <gtest/gtest.h>

#include "circuits/graph.h"

namespace tqsim::circuits {
namespace {

TEST(Graph, StarShape)
{
    const Graph g = Graph::star(6);
    EXPECT_EQ(g.num_edges(), 5u);
    EXPECT_EQ(g.degree(0), 5);
    for (int v = 1; v < 6; ++v) {
        EXPECT_EQ(g.degree(v), 1);
        EXPECT_TRUE(g.has_edge(0, v));
    }
}

TEST(Graph, RingShape)
{
    const Graph g = Graph::ring(5);
    EXPECT_EQ(g.num_edges(), 5u);
    for (int v = 0; v < 5; ++v) {
        EXPECT_EQ(g.degree(v), 2);
    }
    EXPECT_THROW(Graph::ring(2), std::invalid_argument);
}

TEST(Graph, Regular3AllDegreesThree)
{
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        const Graph g = Graph::regular3(8, seed);
        EXPECT_EQ(g.num_edges(), 12u);
        for (int v = 0; v < 8; ++v) {
            EXPECT_EQ(g.degree(v), 3) << "seed " << seed;
        }
    }
    EXPECT_THROW(Graph::regular3(7, 1), std::invalid_argument);
    EXPECT_THROW(Graph::regular3(2, 1), std::invalid_argument);
}

TEST(Graph, RandomRespectsProbabilityExtremes)
{
    const Graph none = Graph::random(8, 0.0, 1);
    EXPECT_EQ(none.num_edges(), 0u);
    const Graph full = Graph::random(8, 1.0, 1);
    EXPECT_EQ(full.num_edges(), 28u);  // C(8,2)
}

TEST(Graph, RandomDeterministicBySeed)
{
    const Graph a = Graph::random(10, 0.5, 99);
    const Graph b = Graph::random(10, 0.5, 99);
    EXPECT_EQ(a.edges(), b.edges());
}

TEST(Graph, AddEdgeDeduplicatesAndIgnoresLoops)
{
    Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    g.add_edge(2, 2);
    EXPECT_EQ(g.num_edges(), 1u);
    EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
}

TEST(Graph, CutValue)
{
    // Triangle: any 1-vs-2 split cuts 2 edges; uniform split impossible.
    Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    EXPECT_EQ(g.cut_value(0b000), 0);
    EXPECT_EQ(g.cut_value(0b001), 2);
    EXPECT_EQ(g.cut_value(0b011), 2);
    EXPECT_EQ(g.max_cut_brute_force(), 2);
}

TEST(Graph, MaxCutOfBipartiteIsAllEdges)
{
    const Graph g = Graph::star(5);
    EXPECT_EQ(g.max_cut_brute_force(), 4);
}

TEST(Graph, CutSymmetricUnderComplement)
{
    const Graph g = Graph::random(6, 0.5, 7);
    for (std::uint64_t a = 0; a < 64; ++a) {
        EXPECT_EQ(g.cut_value(a), g.cut_value(~a & 63));
    }
}

}  // namespace
}  // namespace tqsim::circuits
