// Unit tests for noise::NoiseModel.

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/qft.h"
#include "noise/noise_model.h"
#include "sim/circuit.h"

namespace tqsim::noise {
namespace {

TEST(NoiseModel, DefaultIsIdeal)
{
    NoiseModel m;
    EXPECT_FALSE(m.has_noise());
    EXPECT_FALSE(m.has_gate_noise());
    EXPECT_EQ(m.description(), "ideal");
    EXPECT_DOUBLE_EQ(m.gate_error_rate(sim::Gate::h(0)), 0.0);
}

TEST(NoiseModel, SycamorePresetRates)
{
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    EXPECT_TRUE(m.has_gate_noise());
    EXPECT_NEAR(m.gate_error_rate(sim::Gate::h(0)), 0.001, 1e-12);
    EXPECT_NEAR(m.gate_error_rate(sim::Gate::cx(0, 1)), 0.015, 1e-12);
}

TEST(NoiseModel, ArityValidation)
{
    NoiseModel m;
    EXPECT_THROW(m.add_on_1q_gates(Channel::depolarizing_2q(0.1)),
                 std::invalid_argument);
    EXPECT_NO_THROW(m.add_on_2q_gates(Channel::depolarizing_1q(0.1)));
}

TEST(NoiseModel, PerOperandChannelCountsPerQubit)
{
    // A 1q channel on 2q gates fires once per operand: survival (1-e)^2.
    NoiseModel m;
    m.add_on_2q_gates(Channel::amplitude_damping(0.1));
    EXPECT_NEAR(m.gate_error_rate(sim::Gate::cx(0, 1)),
                1.0 - 0.9 * 0.9, 1e-12);
    // Three-qubit gates fire three times.
    EXPECT_NEAR(m.gate_error_rate(sim::Gate::ccx(0, 1, 2)),
                1.0 - std::pow(0.9, 3), 1e-12);
}

TEST(NoiseModel, StackedChannelsCompose)
{
    NoiseModel m;
    m.add_on_1q_gates(Channel::depolarizing_1q(0.01));
    m.add_on_1q_gates(Channel::amplitude_damping(0.02));
    EXPECT_NEAR(m.gate_error_rate(sim::Gate::h(0)),
                1.0 - 0.99 * 0.98, 1e-12);
}

TEST(NoiseModel, AggregateErrorRateEq4)
{
    // Eq. 4 over a known gate mix.
    sim::Circuit c(2);
    c.h(0).h(1).cx(0, 1);  // two 1q at e1, one 2q at e2
    const NoiseModel m = NoiseModel::sycamore_depolarizing(0.001, 0.015);
    const double expected = 1.0 - 0.999 * 0.999 * 0.985;
    EXPECT_NEAR(m.aggregate_error_rate(c, 0, 3), expected, 1e-12);
    // Sub-ranges.
    EXPECT_NEAR(m.aggregate_error_rate(c, 0, 2), 1.0 - 0.999 * 0.999, 1e-12);
    EXPECT_NEAR(m.aggregate_error_rate(c, 2, 3), 0.015, 1e-12);
    EXPECT_DOUBLE_EQ(m.aggregate_error_rate(c, 1, 1), 0.0);
    EXPECT_THROW(m.aggregate_error_rate(c, 2, 1), std::out_of_range);
    EXPECT_THROW(m.aggregate_error_rate(c, 0, 9), std::out_of_range);
}

TEST(NoiseModel, AggregateGrowsWithGateCount)
{
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const sim::Circuit qft8 = circuits::qft(8);
    const double short_rate = m.aggregate_error_rate(qft8, 0, 20);
    const double long_rate = m.aggregate_error_rate(qft8, 0, qft8.size());
    EXPECT_LT(short_rate, long_rate);
    EXPECT_GT(long_rate, 0.0);
    EXPECT_LT(long_rate, 1.0);
}

TEST(NoiseModel, ReadoutOnly)
{
    const NoiseModel m = NoiseModel::readout_only(0.02);
    EXPECT_TRUE(m.has_noise());
    EXPECT_FALSE(m.has_gate_noise());
    EXPECT_DOUBLE_EQ(m.readout_flip_probability(), 0.02);
    EXPECT_THROW(NoiseModel().set_readout_error(1.5), std::invalid_argument);
}

TEST(NoiseModel, ThermalPresetUsesGateTimes)
{
    const NoiseModel m = NoiseModel::thermal(25000.0, 30000.0, 35.0, 350.0);
    const double e1 = m.gate_error_rate(sim::Gate::h(0));
    const double e2 = m.gate_error_rate(sim::Gate::cx(0, 1));
    EXPECT_GT(e2, e1);  // 2q gates are longer, hence noisier
}

TEST(NoiseModel, DescriptionListsChannels)
{
    NoiseModel m = NoiseModel::sycamore_depolarizing();
    m.set_readout_error(0.01);
    const std::string d = m.description();
    EXPECT_NE(d.find("depol1q"), std::string::npos);
    EXPECT_NE(d.find("depol2q"), std::string::npos);
    EXPECT_NE(d.find("readout"), std::string::npos);
}

}  // namespace
}  // namespace tqsim::noise
