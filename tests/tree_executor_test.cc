// Tests for the tree executor: outcome counts, reuse accounting,
// determinism, memory tracking, and statistical agreement with the
// baseline runner.

#include <gtest/gtest.h>

#include "circuits/bv.h"
#include "circuits/qft.h"
#include "core/baseline_runner.h"
#include "core/tqsim.h"
#include "core/tree_executor.h"
#include "metrics/fidelity.h"
#include "sim/parallel.h"

namespace tqsim::core {
namespace {

using metrics::Distribution;
using noise::NoiseModel;
using sim::Circuit;

Circuit
test_circuit()
{
    Circuit c(4, "test4");
    for (int rep = 0; rep < 5; ++rep) {
        for (int q = 0; q < 4; ++q) {
            c.h(q);
            c.rz(q, 0.3 + 0.1 * q);
        }
        for (int q = 0; q < 3; ++q) {
            c.cx(q, q + 1);
        }
    }
    return c;  // 55 gates
}

TEST(TreeExecutor, OutcomeCountMatchesTreeProduct)
{
    const Circuit c = test_circuit();
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    PartitionPlan plan{TreeStructure({8, 2, 2}),
                       equal_boundaries(c.size(), 3)};
    const RunResult r = execute_tree(c, m, plan);
    EXPECT_EQ(r.stats.outcomes, 32u);
    EXPECT_EQ(r.stats.nodes_simulated, 8u + 16u + 32u);
    EXPECT_NEAR(r.distribution.total(), 1.0, 1e-9);
}

TEST(TreeExecutor, GateWorkMatchesTreeAccounting)
{
    const Circuit c = test_circuit();  // 55 gates, split 19/18/18
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    PartitionPlan plan{TreeStructure({4, 2, 2}),
                       equal_boundaries(c.size(), 3)};
    const RunResult r = execute_tree(c, m, plan);
    // instances: 4, 8, 16; gates: 19, 18, 18.
    EXPECT_EQ(r.stats.gate_applications, 4u * 19 + 8u * 18 + 16u * 18);
}

TEST(TreeExecutor, ReuseLastChildSavesCopies)
{
    const Circuit c = test_circuit();
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    PartitionPlan plan{TreeStructure({4, 2, 2}),
                       equal_boundaries(c.size(), 3)};
    ExecutorOptions with_reuse;
    with_reuse.reuse_last_child = true;
    ExecutorOptions without_reuse;
    without_reuse.reuse_last_child = false;
    const RunResult a = execute_tree(c, m, plan, with_reuse);
    const RunResult b = execute_tree(c, m, plan, without_reuse);
    // Without reuse: one copy per non-root node = 4 + 8 + 16 = 28.
    EXPECT_EQ(b.stats.state_copies, 28u);
    // With reuse: parents hand their state to the last child: minus one per
    // expansion = 28 - (1 + 4 + 8) = 15.
    EXPECT_EQ(a.stats.state_copies, 15u);
    EXPECT_EQ(a.stats.bytes_copied,
              a.stats.state_copies * sim::state_vector_bytes(4));
}

TEST(TreeExecutor, PeakMemoryBoundedByDepth)
{
    const Circuit c = test_circuit();
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    PartitionPlan plan{TreeStructure({4, 2, 2}),
                       equal_boundaries(c.size(), 3)};
    const RunResult r = execute_tree(c, m, plan);
    // DFS: root + one working state per level.
    EXPECT_LE(r.stats.peak_live_states, 4u);
    EXPECT_GE(r.stats.peak_live_states, 2u);
    EXPECT_EQ(r.stats.peak_state_bytes,
              r.stats.peak_live_states * sim::state_vector_bytes(4));
}

TEST(TreeExecutor, SnapshotPoolingKeepsPeakBoundAndPartitionsCopies)
{
    // Serial traversal: the depth bound on peaks/misses below is the DFS
    // guarantee, which parallel dispatch legitimately relaxes (one live
    // subtree and one cold pool per busy worker).
    struct ThreadGuard
    {
        int prev = sim::num_threads();
        ThreadGuard() { sim::set_num_threads(1); }
        ~ThreadGuard() { sim::set_num_threads(prev); }
    } guard;
    const Circuit c = test_circuit();
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    PartitionPlan plan{TreeStructure({8, 4, 2}),
                       equal_boundaries(c.size(), 3)};
    ExecutorOptions pooled;
    pooled.use_snapshot_pool = true;
    ExecutorOptions unpooled;
    unpooled.use_snapshot_pool = false;
    const RunResult a = execute_tree(c, m, plan, pooled);
    const RunResult b = execute_tree(c, m, plan, unpooled);
    // Pooling must not change what executes or the live-state bound: the
    // pool only ever holds buffers that were previously live, so the peak
    // (and therefore peak memory) is identical.
    EXPECT_EQ(a.stats.state_copies, b.stats.state_copies);
    EXPECT_EQ(a.stats.peak_live_states, b.stats.peak_live_states);
    EXPECT_LE(a.stats.peak_live_states, plan.num_levels() + 1);
    // Hits and misses partition the copies in both modes.
    EXPECT_EQ(a.stats.snapshot_pool_hits + a.stats.snapshot_pool_misses,
              a.stats.state_copies);
    EXPECT_EQ(b.stats.snapshot_pool_hits, 0u);
    EXPECT_EQ(b.stats.snapshot_pool_misses, b.stats.state_copies);
    // Serial DFS warm-up: at most one cold miss per level, then hits.
    EXPECT_LE(a.stats.snapshot_pool_misses, plan.num_levels());
    EXPECT_GT(a.stats.snapshot_pool_hits, 9 * a.stats.snapshot_pool_misses);
    // Under per-gate noise everything stays at gate granularity.
    EXPECT_DOUBLE_EQ(a.stats.segment_fusion_reduction, 0.0);
}

TEST(TreeExecutor, DeterministicForSameSeed)
{
    const Circuit c = test_circuit();
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    PartitionPlan plan{TreeStructure({8, 2}),
                       equal_boundaries(c.size(), 2)};
    ExecutorOptions opt;
    opt.collect_outcomes = true;
    opt.seed = 777;
    const RunResult a = execute_tree(c, m, plan, opt);
    const RunResult b = execute_tree(c, m, plan, opt);
    EXPECT_EQ(a.raw_outcomes, b.raw_outcomes);
    opt.seed = 778;
    const RunResult d = execute_tree(c, m, plan, opt);
    EXPECT_NE(a.raw_outcomes, d.raw_outcomes);
}

TEST(TreeExecutor, RejectsInconsistentPlan)
{
    const Circuit c = test_circuit();
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    PartitionPlan bad{TreeStructure({4, 2}), {0, 10, 20}};  // wrong end
    EXPECT_THROW(execute_tree(c, m, bad), std::invalid_argument);
}

TEST(TreeExecutor, NoNoiseTreeMatchesIdealDistribution)
{
    // With an ideal model every leaf sees the exact ideal state, so the
    // empirical distribution converges to the ideal one.
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);  // GHZ: half |000>, half |111>
    PartitionPlan plan{TreeStructure({16, 8, 8}),
                       equal_boundaries(c.size(), 3)};
    const RunResult r = execute_tree(c, NoiseModel::ideal(), plan);
    EXPECT_NEAR(r.distribution[0], 0.5, 0.06);
    EXPECT_NEAR(r.distribution[7], 0.5, 0.06);
    EXPECT_NEAR(r.distribution[3], 0.0, 1e-12);
}

TEST(TreeExecutor, ErrorEventsScaleWithNoise)
{
    const Circuit c = test_circuit();
    PartitionPlan plan{TreeStructure({8, 4}),
                       equal_boundaries(c.size(), 2)};
    const RunResult lo = execute_tree(
        c, NoiseModel::sycamore_depolarizing(0.0001, 0.0015), plan);
    const RunResult hi = execute_tree(
        c, NoiseModel::sycamore_depolarizing(0.01, 0.15), plan);
    EXPECT_LT(lo.stats.error_events, hi.stats.error_events);
}

TEST(BaselineRunner, MatchesDegenerateTree)
{
    const Circuit c = test_circuit();
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const RunResult r = run_baseline(c, m, 64);
    EXPECT_EQ(r.stats.outcomes, 64u);
    EXPECT_EQ(r.stats.nodes_simulated, 64u);
    EXPECT_EQ(r.stats.gate_applications, 64u * c.size());
    EXPECT_EQ(r.plan.tree.to_string(), "(64)");
}

TEST(BaselineRunner, IdealSampledUsesOneEvolution)
{
    const Circuit c = test_circuit();
    const RunResult r = run_ideal_sampled(c, 500);
    EXPECT_EQ(r.stats.gate_applications, c.size());
    EXPECT_EQ(r.stats.outcomes, 500u);
    EXPECT_NEAR(r.distribution.total(), 1.0, 1e-9);
}

TEST(BaselineRunner, IdealDistributionIsExact)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    const Distribution d = ideal_distribution(c);
    EXPECT_NEAR(d[0], 0.5, 1e-12);
    EXPECT_NEAR(d[3], 0.5, 1e-12);
}

TEST(Facade, RunProducesRequestedOutcomes)
{
    const Circuit c = circuits::qft(6);
    RunOptions opt;
    opt.shots = 2000;  // enough shots that DCP can afford reuse levels
    opt.copy_cost_gates = 10.0;
    const RunResult r = run(c, NoiseModel::sycamore_depolarizing(), opt);
    EXPECT_GE(r.stats.outcomes, 2000u);
    EXPECT_GE(r.plan.num_levels(), 2u);
}

TEST(Facade, PlanOnlyMatchesRunPlan)
{
    const Circuit c = circuits::qft(6);
    RunOptions opt;
    opt.shots = 300;
    opt.copy_cost_gates = 10.0;
    const PartitionPlan p = plan(c, NoiseModel::sycamore_depolarizing(), opt);
    const RunResult r = run(c, NoiseModel::sycamore_depolarizing(), opt);
    EXPECT_EQ(p.tree.to_string(), r.plan.tree.to_string());
    EXPECT_EQ(p.boundaries, r.plan.boundaries);
}

TEST(Facade, TqsimFidelityCloseToBaseline)
{
    // The paper's core accuracy claim at small scale: TQSim's normalized
    // fidelity tracks the baseline's within a small margin.
    const Circuit c = circuits::bernstein_vazirani(
        6, circuits::default_bv_secret(6));
    const NoiseModel m = NoiseModel::sycamore_depolarizing(0.002, 0.02);
    const Distribution ideal = ideal_distribution(c);

    RunOptions opt;
    opt.shots = 3000;
    opt.copy_cost_gates = 5.0;
    const RunResult tq = run(c, m, opt);
    const RunResult base = run_baseline(c, m, 3000);

    const double f_tq = metrics::normalized_fidelity(ideal, tq.distribution);
    const double f_base =
        metrics::normalized_fidelity(ideal, base.distribution);
    EXPECT_NEAR(f_tq, f_base, 0.05);
}

}  // namespace
}  // namespace tqsim::core
