// Property tests for the gate kernels: every kernel must agree with the
// dense full-register matrix-vector reference on random states.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/gate.h"
#include "sim/gate_kernels.h"
#include "sim/parallel.h"
#include "sim/state_vector.h"
#include "util/rng.h"

namespace tqsim::sim {
namespace {

StateVector
random_state(int num_qubits, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<Complex> amps(dim(num_qubits));
    for (auto& a : amps) {
        a = Complex(rng.normal(), rng.normal());
    }
    StateVector s(num_qubits, std::move(amps));
    s.normalize();
    return s;
}

/** Reference: out = expand_gate(g, n) * in. */
StateVector
reference_apply(const StateVector& in, const Gate& g)
{
    const int n = in.num_qubits();
    const Matrix full = expand_gate(g, n);
    const Index d = dim(n);
    std::vector<Complex> out(d, Complex{0, 0});
    for (Index r = 0; r < d; ++r) {
        for (Index c = 0; c < d; ++c) {
            const Complex v = full[r * d + c];
            if (v != Complex{0, 0}) {
                out[r] += v * in[c];
            }
        }
    }
    return StateVector(n, std::move(out));
}

void
expect_kernel_matches_reference(const Gate& g, int num_qubits,
                                std::uint64_t seed)
{
    const StateVector in = random_state(num_qubits, seed);
    StateVector kernel_out = in;
    apply_gate(kernel_out, g);
    const StateVector ref_out = reference_apply(in, g);
    ASSERT_TRUE(kernel_out.approx_equal(ref_out, 1e-10))
        << g.to_string() << " on " << num_qubits << " qubits";
}

struct KernelCase
{
    Gate gate;
    int num_qubits;
    std::string label;
};

std::vector<KernelCase>
kernel_cases()
{
    std::vector<KernelCase> cases;
    auto add = [&cases](Gate g, int n, const std::string& label) {
        cases.push_back(KernelCase{std::move(g), n, label});
    };
    // Single-qubit kinds on every position of a 4-qubit register.
    for (int q = 0; q < 4; ++q) {
        const std::string suffix = "_q" + std::to_string(q);
        add(Gate::x(q), 4, "x" + suffix);
        add(Gate::y(q), 4, "y" + suffix);
        add(Gate::z(q), 4, "z" + suffix);
        add(Gate::h(q), 4, "h" + suffix);
        add(Gate::s(q), 4, "s" + suffix);
        add(Gate::sdg(q), 4, "sdg" + suffix);
        add(Gate::t(q), 4, "t" + suffix);
        add(Gate::tdg(q), 4, "tdg" + suffix);
        add(Gate::sx(q), 4, "sx" + suffix);
        add(Gate::rx(q, 0.33), 4, "rx" + suffix);
        add(Gate::ry(q, -1.2), 4, "ry" + suffix);
        add(Gate::rz(q, 2.1), 4, "rz" + suffix);
        add(Gate::phase(q, 0.77), 4, "p" + suffix);
        add(Gate::u3(q, 0.5, 1.0, -0.25), 4, "u3" + suffix);
    }
    // Two-qubit kinds on ordered pairs, including non-adjacent and reversed.
    const std::pair<int, int> pairs[] = {{0, 1}, {1, 0}, {0, 3},
                                         {3, 0}, {2, 3}, {1, 3}};
    int pair_idx = 0;
    for (const auto& [a, b] : pairs) {
        const std::string suffix = "_p" + std::to_string(pair_idx++);
        add(Gate::cx(a, b), 4, "cx" + suffix);
        add(Gate::cz(a, b), 4, "cz" + suffix);
        add(Gate::cphase(a, b, 0.6), 4, "cp" + suffix);
        add(Gate::swap(a, b), 4, "swap" + suffix);
        add(Gate::iswap(a, b), 4, "iswap" + suffix);
        add(Gate::rzz(a, b, 0.9), 4, "rzz" + suffix);
        add(Gate::fsim(a, b, 1.0, 0.4), 4, "fsim" + suffix);
    }
    // Toffoli on several orderings.
    add(Gate::ccx(0, 1, 2), 4, "ccx_012");
    add(Gate::ccx(2, 0, 3), 4, "ccx_203");
    add(Gate::ccx(3, 1, 0), 4, "ccx_310");
    // Custom unitaries.
    add(Gate::unitary1q(2, Gate::sx(0).matrix(), "custom1"), 4, "u1q_custom");
    add(Gate::unitary2q(1, 3, Gate::fsim(0, 1, 0.2, 0.1).matrix(), "custom2"),
        4, "u2q_custom");
    return cases;
}

class KernelVsReference : public ::testing::TestWithParam<KernelCase>
{
};

TEST_P(KernelVsReference, MatchesDenseReference)
{
    const KernelCase& c = GetParam();
    expect_kernel_matches_reference(c.gate, c.num_qubits, 0x1234 + c.num_qubits);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllPositions, KernelVsReference,
    ::testing::ValuesIn(kernel_cases()),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
        return info.param.label;
    });

TEST(Kernels, PreserveNormForUnitaries)
{
    StateVector s = random_state(5, 77);
    apply_gate(s, Gate::h(0));
    apply_gate(s, Gate::cx(0, 4));
    apply_gate(s, Gate::fsim(1, 3, 0.3, 0.2));
    apply_gate(s, Gate::ccx(0, 2, 4));
    EXPECT_NEAR(s.norm_squared(), 1.0, 1e-10);
}

TEST(Kernels, IdentityIsNoOp)
{
    const StateVector before = random_state(3, 5);
    StateVector after = before;
    apply_gate(after, Gate::i(1));
    EXPECT_TRUE(after.approx_equal(before, 0.0));
}

TEST(Kernels, BellStateConstruction)
{
    StateVector s(2);
    apply_gate(s, Gate::h(0));
    apply_gate(s, Gate::cx(0, 1));
    const double inv = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(s[0] - Complex(inv, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(s[3] - Complex(inv, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(s[1]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(s[2]), 0.0, 1e-12);
}

TEST(Kernels, GhzStateConstruction)
{
    StateVector s(4);
    apply_gate(s, Gate::h(0));
    for (int q = 0; q < 3; ++q) {
        apply_gate(s, Gate::cx(q, q + 1));
    }
    EXPECT_NEAR(std::norm(s[0]), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(s[15]), 0.5, 1e-12);
}

TEST(Kernels, ScaleState)
{
    StateVector s(1);
    scale_state(s, Complex(0.0, 2.0));
    EXPECT_EQ(s[0], Complex(0.0, 2.0));
}

TEST(Kernels, RejectBadQubits)
{
    StateVector s(2);
    EXPECT_THROW(apply_x(s, 2), std::out_of_range);
    EXPECT_THROW(apply_1q_matrix(s, -1, Gate::x(0).matrix()),
                 std::out_of_range);
    EXPECT_THROW(apply_2q_matrix(s, 1, 1, Gate::cx(0, 1).matrix()),
                 std::invalid_argument);
}

TEST(KrausProbability, MatchesExplicitApplication)
{
    // ||K|psi>||^2 computed by the one-pass helper must match applying K
    // and taking the norm, for non-unitary K.
    const StateVector in = random_state(4, 99);
    const Matrix k = {Complex(1, 0), Complex(0, 0), Complex(0, 0),
                      Complex(std::sqrt(0.25), 0)};  // damping-like
    for (int q = 0; q < 4; ++q) {
        StateVector applied = in;
        apply_1q_matrix(applied, q, k);
        EXPECT_NEAR(kraus_probability_1q(in, q, k), applied.norm_squared(),
                    1e-10);
    }
}

TEST(KrausProbability, TwoQubitMatchesExplicitApplication)
{
    const StateVector in = random_state(4, 123);
    Matrix k(16, Complex{0, 0});
    k[0] = 1.0;
    k[5] = 0.5;
    k[10] = Complex(0, 0.5);
    k[15] = 0.25;
    StateVector applied = in;
    apply_2q_matrix(applied, 1, 3, k);
    EXPECT_NEAR(kraus_probability_2q(in, 1, 3, k), applied.norm_squared(),
                1e-10);
}

TEST(KrausProbability, UnitaryGivesOne)
{
    const StateVector in = random_state(3, 321);
    EXPECT_NEAR(kraus_probability_1q(in, 1, Gate::h(0).matrix()), 1.0, 1e-10);
}


// ---- Multi-threaded kernel equivalence -------------------------------------
// With the pool enabled, every kernel must produce bit-identical amplitudes
// to the single-threaded run.  17 qubits (131072 amplitudes) exceeds the
// serial grain and the reduction block size, so the loops and the blocked
// reductions genuinely split across workers.  These cases are
// also the ThreadSanitizer targets for the CI race-check job.

namespace {

class PoolGuard
{
  public:
    explicit PoolGuard(int n) { set_num_threads(n); }
    ~PoolGuard() { set_num_threads(1); }
};

/** Applies a representative mix of every kernel family. */
void
apply_kernel_mix(StateVector& s)
{
    apply_1q_matrix(s, 3, Gate::h(3).matrix());
    apply_x(s, 7);
    apply_diag_1q(s, 5, Complex{1.0, 0.0}, Complex{0.0, 1.0});
    apply_cx(s, 2, 11);
    apply_cz(s, 4, 9);
    apply_cphase(s, 1, 13, Complex{0.6, 0.8});
    apply_swap(s, 0, 14);
    apply_diag_2q(s, 6, 10, Complex{1.0, 0.0}, Complex{0.0, 1.0},
                  Complex{-1.0, 0.0}, Complex{0.0, -1.0});
    apply_ccx(s, 3, 8, 12);
    apply_2q_matrix(s, 5, 9, Gate::cx(0, 1).matrix());
    apply_3q_matrix(s, 2, 7, 13, Gate::ccx(0, 1, 2).matrix());
    scale_state(s, Complex{0.5, 0.5});
}

}  // namespace

TEST(GateKernelsThreaded, AllKernelsMatchSingleThreadBitwise)
{
    StateVector serial = random_state(17, 2024);
    StateVector threaded = serial;
    {
        PoolGuard guard(1);
        apply_kernel_mix(serial);
    }
    {
        PoolGuard guard(4);
        apply_kernel_mix(threaded);
    }
    for (Index i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].real(), threaded[i].real()) << "amp " << i;
        ASSERT_EQ(serial[i].imag(), threaded[i].imag()) << "amp " << i;
    }
}

TEST(GateKernelsThreaded, KrausProbabilitiesMatchSingleThreadBitwise)
{
    const StateVector s = random_state(17, 77);
    const Matrix k1 = Gate::h(0).matrix();
    const Matrix k2 = Gate::cx(0, 1).matrix();
    double p1_serial, p2_serial, p1_threaded, p2_threaded;
    {
        PoolGuard guard(1);
        p1_serial = kraus_probability_1q(s, 6, k1);
        p2_serial = kraus_probability_2q(s, 4, 12, k2);
    }
    {
        PoolGuard guard(8);
        p1_threaded = kraus_probability_1q(s, 6, k1);
        p2_threaded = kraus_probability_2q(s, 4, 12, k2);
    }
    // The blocked reduction makes these bit-identical, not merely close.
    EXPECT_EQ(p1_serial, p1_threaded);
    EXPECT_EQ(p2_serial, p2_threaded);
}

TEST(GateKernelsThreaded, RejectsDuplicateQubits)
{
    StateVector s = random_state(4, 5);
    EXPECT_THROW(apply_cphase(s, 2, 2, Complex{0.0, 1.0}),
                 std::invalid_argument);
    EXPECT_THROW(apply_ccx(s, 1, 1, 3), std::invalid_argument);
    EXPECT_THROW(apply_ccx(s, 1, 3, 3), std::invalid_argument);
}

// ---- apply_dense_kq (fusion-cluster kernel) --------------------------------

namespace {

/** A deterministic dense (non-sparse) 2^k x 2^k test matrix. */
Matrix
random_dense_matrix(int k, std::uint64_t seed)
{
    util::Rng rng(seed);
    const std::size_t d = std::size_t{1} << k;
    Matrix m(d * d);
    for (Complex& v : m) {
        v = Complex(rng.normal(), rng.normal());
    }
    return m;
}

}  // namespace

TEST(ApplyDenseKq, MatchesExpandedReferenceForEveryWidth)
{
    // k = 1..2 delegate to the specialized kernels; k = 3 to the 3q
    // kernel; k = 4..5 run the gather/scatter template.  All must agree
    // with the full-register matrix reference, including non-contiguous
    // and high qubits.
    const int n = 7;
    const std::vector<std::vector<int>> operand_sets = {
        {2}, {5, 1}, {0, 6, 3}, {1, 4, 2, 6}, {6, 0, 2, 5, 3}};
    for (const std::vector<int>& qubits : operand_sets) {
        const int k = static_cast<int>(qubits.size());
        const Matrix m = random_dense_matrix(k, 77 + k);
        const StateVector in = random_state(n, 100 + k);
        StateVector kernel_out = in;
        apply_dense_kq(kernel_out, qubits.data(), k, m);
        const StateVector ref_out = reference_apply(
            in, Gate::unitary_kq(qubits, m, "kq_test"));
        ASSERT_TRUE(kernel_out.approx_equal(ref_out, 1e-10)) << "k=" << k;
    }
}

TEST(ApplyDenseKq, BitIdenticalAcrossThreadCounts)
{
    // 17 qubits exceeds the serial grain, so the group loop genuinely
    // splits across the pool; the fixed-block decomposition keeps the
    // result bit-identical.
    const int qubits[5] = {0, 4, 9, 13, 16};
    for (const int k : {4, 5}) {
        const Matrix m = random_dense_matrix(k, 33 + k);
        StateVector serial = random_state(17, 41 + k);
        StateVector threaded = serial;
        {
            PoolGuard guard(1);
            apply_dense_kq(serial, qubits, k, m);
        }
        {
            PoolGuard guard(4);
            apply_dense_kq(threaded, qubits, k, m);
        }
        for (Index i = 0; i < serial.size(); ++i) {
            ASSERT_EQ(serial[i], threaded[i]) << "k=" << k << " amp " << i;
        }
    }
}

TEST(ApplyDenseKq, ValidatesArguments)
{
    StateVector s = random_state(6, 9);
    const Matrix m4 = random_dense_matrix(2, 1);
    const int dup[2] = {3, 3};
    EXPECT_THROW(apply_dense_kq(s, dup, 2, m4), std::invalid_argument);
    const int oob[2] = {1, 6};
    EXPECT_THROW(apply_dense_kq(s, oob, 2, m4), std::out_of_range);
    const int ok[2] = {1, 2};
    EXPECT_THROW(apply_dense_kq(s, ok, 0, m4), std::invalid_argument);
    EXPECT_THROW(apply_dense_kq(s, ok, 6, m4), std::invalid_argument);
}

}  // namespace
}  // namespace tqsim::sim
