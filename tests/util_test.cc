// Unit tests for src/util: rng, stats, table, timer.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace tqsim::util {
namespace {

// ---- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += rng.uniform();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64RespectsBound)
{
    Rng rng(13);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i) {
            ASSERT_LT(rng.uniform_u64(bound), bound);
        }
    }
}

TEST(Rng, UniformU64CoversAllValues)
{
    Rng rng(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        seen.insert(rng.uniform_u64(7));
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i) {
        stats.add(rng.normal());
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.03);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, SplitIndependentOfConsumption)
{
    Rng parent1(99);
    Rng parent2(99);
    parent2.next_u64();  // consume from one copy only
    Rng child1 = parent1.split(3, 5);
    Rng child2 = parent2.split(3, 5);
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, SplitDistinctCoordinatesDiffer)
{
    Rng parent(99);
    Rng a = parent.split(0, 0);
    Rng b = parent.split(0, 1);
    Rng c = parent.split(1, 0);
    const std::uint64_t va = a.next_u64();
    const std::uint64_t vb = b.next_u64();
    const std::uint64_t vc = c.next_u64();
    EXPECT_NE(va, vb);
    EXPECT_NE(va, vc);
    EXPECT_NE(vb, vc);
}

TEST(Rng, UniformU64ZeroBoundAborts)
{
    Rng rng(1);
    EXPECT_DEATH(rng.uniform_u64(0), "bound");
}

TEST(MixSeed, SensitiveToEveryArgument)
{
    EXPECT_NE(mix_seed(1, 2, 3), mix_seed(1, 2, 4));
    EXPECT_NE(mix_seed(1, 2, 3), mix_seed(1, 3, 3));
    EXPECT_NE(mix_seed(1, 2, 3), mix_seed(2, 2, 3));
}

// ---- RunningStats ------------------------------------------------------------

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(v);
    }
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, ConfidenceShrinksWithSamples)
{
    RunningStats small, big;
    Rng rng(3);
    for (int i = 0; i < 10; ++i) {
        small.add(rng.normal());
    }
    for (int i = 0; i < 1000; ++i) {
        big.add(rng.normal());
    }
    EXPECT_GT(small.confidence_half_width(), big.confidence_half_width());
}

// ---- Free stats helpers -------------------------------------------------------

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
}

TEST(Stats, Median)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

// ---- Cochran (Eq. 5) ----------------------------------------------------------

TEST(Cochran, MatchesHandComputedValue)
{
    // z=1.96, eps=0.05, p=0.5, N=1000: n0=384.16, n = 384.16/1.38416 = 277.5.
    EXPECT_EQ(cochran_sample_size(1.96, 0.05, 0.5, 1000), 278u);
}

TEST(Cochran, LargePopulationApproachesN0)
{
    // n0 = 1.96^2*0.5^2/0.05^2 = 384.16 -> 385 with huge N.
    EXPECT_EQ(cochran_sample_size(1.96, 0.05, 0.5, 100000000), 385u);
}

TEST(Cochran, ZeroErrorRateNeedsOneSample)
{
    EXPECT_EQ(cochran_sample_size(1.96, 0.05, 0.0, 1000), 1u);
}

TEST(Cochran, MonotonicInErrorRateBelowHalf)
{
    const auto lo = cochran_sample_size(1.96, 0.03, 0.05, 32000);
    const auto hi = cochran_sample_size(1.96, 0.03, 0.25, 32000);
    EXPECT_LT(lo, hi);
}

TEST(Cochran, TighterMarginNeedsMoreSamples)
{
    const auto loose = cochran_sample_size(1.96, 0.05, 0.3, 32000);
    const auto tight = cochran_sample_size(1.96, 0.01, 0.3, 32000);
    EXPECT_LT(loose, tight);
}

TEST(Cochran, ClampedToPopulation)
{
    EXPECT_LE(cochran_sample_size(1.96, 0.001, 0.5, 100), 100u);
}

TEST(Cochran, RejectsBadArguments)
{
    EXPECT_THROW(cochran_sample_size(0.0, 0.05, 0.5, 100),
                 std::invalid_argument);
    EXPECT_THROW(cochran_sample_size(1.96, 0.0, 0.5, 100),
                 std::invalid_argument);
    EXPECT_THROW(cochran_sample_size(1.96, 1.5, 0.5, 100),
                 std::invalid_argument);
    EXPECT_THROW(cochran_sample_size(1.96, 0.05, -0.1, 100),
                 std::invalid_argument);
}

// ---- Table ---------------------------------------------------------------------

TEST(Table, RendersHeaderAndRows)
{
    Table t({"a", "bb"});
    t.add_row({"1", "2"});
    t.add_row({"333", "4"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| a "), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsWrongCellCount)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RuleDoesNotCountAsRow)
{
    Table t({"x"});
    t.add_row({"1"});
    t.add_rule();
    t.add_row({"2"});
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Formatting, Doubles)
{
    EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
    EXPECT_EQ(fmt_speedup(2.514), "2.51x");
}

TEST(Formatting, Bytes)
{
    EXPECT_EQ(fmt_bytes(512), "512 B");
    EXPECT_EQ(fmt_bytes(std::uint64_t{1} << 20), "1.00 MiB");
    EXPECT_EQ(fmt_bytes(std::uint64_t{3} << 30), "3.00 GiB");
}

TEST(Formatting, Seconds)
{
    EXPECT_EQ(fmt_seconds(2.5), "2.50 s");
    EXPECT_EQ(fmt_seconds(0.0025), "2.50 ms");
    EXPECT_EQ(fmt_seconds(2.5e-6), "2.50 us");
    EXPECT_EQ(fmt_seconds(2.5e-8), "25.0 ns");
}

// ---- Timer ---------------------------------------------------------------------

TEST(Timer, Monotonic)
{
    Timer t;
    const auto a = t.elapsed_ns();
    const auto b = t.elapsed_ns();
    EXPECT_GE(b, a);
    EXPECT_GE(a, 0);
}

TEST(Timer, ResetRestarts)
{
    Timer t;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) {
        sink = sink + 1.0;
    }
    const auto before = t.elapsed_ns();
    t.reset();
    EXPECT_LE(t.elapsed_ns(), before + 1000000);
}

TEST(AccumulatingTimer, SumsIntervals)
{
    AccumulatingTimer t;
    EXPECT_EQ(t.total_ns(), 0);
    t.start();
    t.stop();
    const auto first = t.total_ns();
    EXPECT_GE(first, 0);
    t.start();
    t.stop();
    EXPECT_GE(t.total_ns(), first);
    t.reset();
    EXPECT_EQ(t.total_ns(), 0);
}

}  // namespace
}  // namespace tqsim::util
