// Tests for the CHP stabilizer simulator and stabilizer noise trajectories.

#include <gtest/gtest.h>

#include "circuits/bv.h"
#include "metrics/fidelity.h"
#include "noise/trajectory.h"
#include "sim/sampler.h"
#include "stab/stabilizer.h"
#include "util/rng.h"

namespace tqsim::stab {
namespace {

using metrics::Distribution;
using sim::Circuit;
using sim::Gate;

TEST(Stabilizer, ZeroStateMeasuresZeroDeterministically)
{
    StabilizerState s(3);
    util::Rng rng(1);
    for (int q = 0; q < 3; ++q) {
        EXPECT_TRUE(s.is_deterministic(q));
        EXPECT_EQ(s.measure(q, rng), 0);
    }
}

TEST(Stabilizer, XFlipsDeterministicOutcome)
{
    StabilizerState s(2);
    s.x(1);
    util::Rng rng(2);
    EXPECT_EQ(s.measure(0, rng), 0);
    EXPECT_EQ(s.measure(1, rng), 1);
}

TEST(Stabilizer, HadamardGivesFairCoin)
{
    util::Rng rng(3);
    int ones = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        StabilizerState s(1);
        s.h(0);
        EXPECT_FALSE(s.is_deterministic(0));
        ones += s.measure(0, rng);
    }
    EXPECT_NEAR(ones, trials / 2, 150);
}

TEST(Stabilizer, MeasurementCollapses)
{
    util::Rng rng(4);
    for (int t = 0; t < 50; ++t) {
        StabilizerState s(1);
        s.h(0);
        const int first = s.measure(0, rng);
        EXPECT_TRUE(s.is_deterministic(0));
        EXPECT_EQ(s.measure(0, rng), first);
    }
}

TEST(Stabilizer, BellPairCorrelations)
{
    util::Rng rng(5);
    int ones = 0;
    for (int t = 0; t < 2000; ++t) {
        StabilizerState s(2);
        s.h(0);
        s.cx(0, 1);
        const int a = s.measure(0, rng);
        const int b = s.measure(1, rng);
        EXPECT_EQ(a, b);
        ones += a;
    }
    EXPECT_NEAR(ones, 1000, 120);
}

TEST(Stabilizer, GhzOutcomesAllZerosOrAllOnes)
{
    util::Rng rng(6);
    for (int t = 0; t < 200; ++t) {
        StabilizerState s(5);
        s.h(0);
        for (int q = 0; q < 4; ++q) {
            s.cx(q, q + 1);
        }
        const std::uint64_t outcome = s.measure_all(rng);
        EXPECT_TRUE(outcome == 0 || outcome == 31) << outcome;
    }
}

TEST(Stabilizer, PhaseGatesMatchStateVector)
{
    // H S H |0> = (an X-basis rotation): compare outcome stats to the
    // statevector engine.
    util::Rng rng(7);
    Circuit c(1);
    c.h(0).s(0).h(0);
    const auto probs =
        Distribution::from_state(c.simulate_ideal());
    int ones = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        StabilizerState s(1);
        s.h(0);
        s.s(0);
        s.h(0);
        ones += s.measure(0, rng);
    }
    EXPECT_NEAR(static_cast<double>(ones) / trials, probs[1], 0.03);
}

TEST(Stabilizer, SdgIsInverseOfS)
{
    util::Rng rng(8);
    for (int t = 0; t < 100; ++t) {
        StabilizerState s(1);
        s.h(0);
        s.s(0);
        s.sdg(0);
        s.h(0);
        EXPECT_EQ(s.measure(0, rng), 0);  // H S Sdg H = I
    }
}

TEST(Stabilizer, RandomCliffordMatchesStateVector)
{
    // Random Clifford circuits: outcome distribution from 4000 stabilizer
    // shots vs exact statevector probabilities.
    for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
        util::Rng gen(seed);
        const int n = 4;
        Circuit c(n);
        for (int step = 0; step < 30; ++step) {
            switch (gen.uniform_u64(6)) {
              case 0: c.h(static_cast<int>(gen.uniform_u64(n))); break;
              case 1: c.s(static_cast<int>(gen.uniform_u64(n))); break;
              case 2: c.x(static_cast<int>(gen.uniform_u64(n))); break;
              case 3: c.z(static_cast<int>(gen.uniform_u64(n))); break;
              default: {
                const int a = static_cast<int>(gen.uniform_u64(n));
                int b = static_cast<int>(gen.uniform_u64(n));
                if (a == b) {
                    b = (b + 1) % n;
                }
                c.cx(a, b);
              }
            }
        }
        const Distribution exact = Distribution::from_state(
            c.simulate_ideal());
        Distribution sampled(n);
        util::Rng rng(seed * 31);
        const int shots = 4000;
        for (int t = 0; t < shots; ++t) {
            StabilizerState s(n);
            for (const Gate& g : c.gates()) {
                s.apply_gate(g);
            }
            sampled.add_outcome(s.measure_all(rng));
        }
        sampled.normalize();
        EXPECT_LT(metrics::total_variation_distance(exact, sampled), 0.05)
            << "seed " << seed;
    }
}

TEST(Stabilizer, RejectsNonClifford)
{
    StabilizerState s(2);
    EXPECT_THROW(s.apply_gate(Gate::t(0)), std::invalid_argument);
    EXPECT_THROW(s.apply_gate(Gate::rx(0, 0.3)), std::invalid_argument);
    EXPECT_FALSE(StabilizerState::is_clifford(Gate::t(0)));
    EXPECT_TRUE(StabilizerState::is_clifford(Gate::cz(0, 1)));
}

TEST(StabilizerTrajectories, CompatibilityChecks)
{
    Circuit clifford(2);
    clifford.h(0).cx(0, 1);
    Circuit nonclifford(2);
    nonclifford.t(0);
    const auto pauli = noise::NoiseModel::sycamore_depolarizing();
    const auto damping = noise::NoiseModel::amplitude_damping_model(0.01);
    EXPECT_TRUE(stabilizer_compatible(clifford, pauli));
    EXPECT_FALSE(stabilizer_compatible(nonclifford, pauli));
    EXPECT_FALSE(stabilizer_compatible(clifford, damping));
    EXPECT_THROW(run_stabilizer_trajectories(nonclifford, pauli, 10, 1),
                 std::invalid_argument);
}

TEST(StabilizerTrajectories, IdealBvRecoversSecret)
{
    const int width = 8;
    const std::uint64_t secret = circuits::default_bv_secret(width);
    const Circuit c = circuits::bernstein_vazirani(width, secret);
    const Distribution d = run_stabilizer_trajectories(
        c, noise::NoiseModel::ideal(), 200, 0x57AB);
    EXPECT_NEAR(d[circuits::bv_expected_outcome(width, secret)], 1.0, 1e-12);
}

TEST(StabilizerTrajectories, NoisyBvMatchesStateVectorEnsemble)
{
    // The paper's Sec. 4.2 point: BV under Pauli noise is stabilizer-
    // simulable.  The stabilizer ensemble must match the statevector
    // trajectory ensemble.
    const int width = 6;
    const std::uint64_t secret = circuits::default_bv_secret(width);
    const Circuit c = circuits::bernstein_vazirani(width, secret);
    const auto model = noise::NoiseModel::sycamore_depolarizing(0.01, 0.05);

    const Distribution stab_dist =
        run_stabilizer_trajectories(c, model, 6000, 0x57AB);

    Distribution sv_dist(width);
    util::Rng master(0x5FAB);
    for (int shot = 0; shot < 6000; ++shot) {
        sim::StateVector state(width);
        util::Rng rng = master.split(0, shot);
        noise::run_trajectory(state, c, model, rng);
        sv_dist.add_outcome(sim::sample_once(state, rng));
    }
    sv_dist.normalize();
    EXPECT_LT(metrics::total_variation_distance(stab_dist, sv_dist), 0.05);
}

TEST(StabilizerTrajectories, ReadoutErrorApplies)
{
    Circuit c(1);
    c.x(0);
    auto model = noise::NoiseModel::readout_only(0.25);
    const Distribution d =
        run_stabilizer_trajectories(c, model, 8000, 0x57AC);
    EXPECT_NEAR(d[0], 0.25, 0.03);
    EXPECT_NEAR(d[1], 0.75, 0.03);
}

}  // namespace
}  // namespace tqsim::stab
