// Tests for the hardware platform models (Figs. 8/10/12, Table 1).

#include <gtest/gtest.h>

#include "circuits/qft.h"
#include "core/partitioner.h"
#include "hw/backend_profile.h"
#include "hw/platform_presets.h"
#include "hw/shot_parallel_model.h"

namespace tqsim::hw {
namespace {

TEST(BackendProfile, TimingFormulas)
{
    BackendProfile p;
    p.amp_throughput = 1e9;
    p.copy_bandwidth = 16e9;
    p.gate_overhead_seconds = 0.0;
    // 2^20 amps / 1e9 = ~1.05 ms per gate.
    EXPECT_NEAR(p.gate_seconds(20), 1048576.0 / 1e9, 1e-12);
    // 16 MiB / 16e9 B/s.
    EXPECT_NEAR(p.copy_seconds(20), 16777216.0 / 16e9, 1e-12);
    EXPECT_NEAR(p.copy_cost_in_gates(20), 1.0, 1e-9);
}

TEST(BackendProfile, MaxStatevectorQubits)
{
    BackendProfile p;
    p.usable_memory_bytes = std::uint64_t{16} << 30;  // 16 GiB
    EXPECT_EQ(p.max_statevector_qubits(), 30);        // 2^30 * 16 B = 16 GiB
    p.usable_memory_bytes = (std::uint64_t{16} << 30) - 1;
    EXPECT_EQ(p.max_statevector_qubits(), 29);
}

TEST(Fig10Presets, CopyCostOrderingMatchesPaper)
{
    // Fig. 10: V100 lowest, desktops ~8-12, servers 35-45.
    const double v100 = v100_profile().copy_cost_in_gates(20);
    const double desktop_gpu = rtx3060_profile().copy_cost_in_gates(20);
    const double ryzen = ryzen3800x_profile().copy_cost_in_gates(20);
    const double xeon6130 = xeon6130_profile().copy_cost_in_gates(20);
    const double xeon6138 = xeon6138_profile().copy_cost_in_gates(20);
    EXPECT_LT(v100, desktop_gpu);
    EXPECT_LT(ryzen, xeon6138);
    EXPECT_LT(xeon6138, xeon6130);
    EXPECT_NEAR(v100, 5.0, 0.5);
    EXPECT_NEAR(xeon6130, 45.0, 1.0);
}

TEST(Fig10Presets, WidthInsensitive)
{
    // The paper observes the cost is similar for 5..28 qubits.
    const BackendProfile p = xeon6138_profile();
    EXPECT_NEAR(p.copy_cost_in_gates(8), p.copy_cost_in_gates(24), 0.5);
}

TEST(Fig10Presets, SixPlatforms)
{
    EXPECT_EQ(fig10_platforms().size(), 6u);
}

TEST(EstimatePlan, TqsimFasterOnAllPlatforms)
{
    const sim::Circuit c = circuits::qft(12);
    core::PartitionPlan plan{core::TreeStructure({64, 2, 2, 2}),
                             core::equal_boundaries(c.size(), 4)};
    for (const BackendProfile& p : fig10_platforms()) {
        EXPECT_GT(estimate_speedup(plan, 12, p, 1.02), 1.0) << p.name;
    }
}

TEST(EstimatePlan, SpeedupBelowTheoreticalMax)
{
    const sim::Circuit c = circuits::qft(12);
    core::PartitionPlan plan{core::TreeStructure({64, 2, 2, 2}),
                             core::equal_boundaries(c.size(), 4)};
    const double theoretical = plan.theoretical_speedup();
    for (const BackendProfile& p : fig10_platforms()) {
        EXPECT_LE(estimate_speedup(plan, 12, p, 1.0), theoretical + 1e-9)
            << p.name;
    }
}

TEST(EstimatePlan, Validation)
{
    core::PartitionPlan plan{core::TreeStructure({4}), {0, 10}};
    EXPECT_THROW(estimate_plan_seconds(plan, 10, v100_profile(), 0.5),
                 std::invalid_argument);
}

TEST(Table1, SystemsAndUtilization)
{
    const auto systems = hpc_systems();
    ASSERT_EQ(systems.size(), 3u);
    // Paper Sec. 3.3: Frontier 256GB usable of 4x128+512 GB -> 25%.
    const HpcSystem& frontier = systems[0];
    EXPECT_EQ(frontier.total_usable_gpu_bytes(), std::uint64_t{256} << 30);
    EXPECT_NEAR(frontier.baseline_memory_utilization(), 0.25, 0.01);
    // Summit: 32GB of 6x16+512 -> ~5.3%.
    EXPECT_NEAR(systems[1].baseline_memory_utilization(), 0.053, 0.005);
    // Perlmutter: 128GB of 4x40+256 -> ~30.8%.
    EXPECT_NEAR(systems[2].baseline_memory_utilization(), 0.308, 0.005);
}

TEST(ShotParallel, SmallCircuitsBenefitLargeOnesDoNot)
{
    const ShotParallelModel m = a100_shot_parallel_model();
    // Paper Fig. 8: 20-21 qubits gain up to ~3x with 16 parallel shots.
    const double s20 = m.speedup(20, 16);
    EXPECT_GT(s20, 2.0);
    EXPECT_LT(s20, 4.0);
    // Beyond 24 qubits: no benefit.
    EXPECT_LT(m.speedup(25, 16), 1.3);
    EXPECT_NEAR(m.speedup(25, 1), 1.0, 1e-12);
}

TEST(ShotParallel, SpeedupMonotoneInParallelismForSmallWidths)
{
    const ShotParallelModel m = a100_shot_parallel_model();
    double prev = 0.0;
    for (int s : {1, 2, 4, 8, 16}) {
        const double sp = m.speedup(20, s);
        EXPECT_GE(sp, prev);
        prev = sp;
    }
}

TEST(ShotParallel, MemoryAccounting)
{
    const ShotParallelModel m = a100_shot_parallel_model();
    // Paper: a 24-qubit state vector is 256 MB.
    EXPECT_EQ(m.memory_bytes(24, 1), std::uint64_t{256} << 20);
    EXPECT_EQ(m.memory_bytes(24, 16), std::uint64_t{4} << 30);
    EXPECT_GT(m.max_parallel_shots(24), 16);
    EXPECT_EQ(m.max_parallel_shots(60), 0);
    EXPECT_THROW(m.batched_gate_seconds(20, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tqsim::hw
