#!/usr/bin/env python3
"""Self-test for tools/tqsim_lint.py, registered with ctest.

Golden-fixture contract: every deliberately seeded violation under
tests/lint_fixtures/ must be caught (correct rule, correct file), the
suppression fixture must lint clean, and the real src/ tree must lint
clean.  This is what lets CI trust a green tqsim-lint job: a checker that
silently stopped firing fails here first.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "tools", "tqsim_lint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")

FAILURES = []


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, cwd=REPO_ROOT, timeout=300)
    return proc.returncode, proc.stdout + proc.stderr


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {name}" + (f"  ({detail})" if detail and not cond
                                  else ""))
    if not cond:
        FAILURES.append(name)


def expect_violation(fixture, rule, expect_file, min_findings=1, mode=None):
    args = ["--check", os.path.join(FIXTURES, fixture)]
    tag = fixture if mode is None else f"{fixture} [{mode}]"
    if mode is not None:
        args += ["--mode", mode]
    code, out = run_lint(*args)
    check(f"{tag}: exits non-zero", code == 1, f"exit={code}\n{out}")
    check(f"{tag}: names rule '{rule}'", f"[{rule}]" in out, out)
    check(f"{tag}: names file {expect_file}", expect_file in out, out)
    count = out.count(f"[{rule}]")
    check(f"{tag}: >= {min_findings} finding(s)", count >= min_findings,
          out)


def expect_clean(label, path, mode=None):
    args = ["--check", path]
    if mode is not None:
        args += ["--mode", mode]
        label = f"{label} [{mode}]"
    code, out = run_lint(*args)
    check(f"{label}: lints clean", code == 0, f"exit={code}\n{out}")


def libclang_available():
    """True when the libclang backend loads and engages (exit 2 means the
    explicit --mode libclang request could not be honored)."""
    code, _ = run_lint("--check", os.path.join(FIXTURES, "clean_allow"),
                       "--mode", "libclang")
    return code != 2


def main():
    # Each seeded violation fires with the right rule.
    expect_violation("bad_rng", "determinism", "bad_rng.cc", min_findings=5)
    expect_violation("bad_layering", "layering", "uses_sim.cc")
    expect_violation("bad_service_layering", "layering", "uses_service.cc")
    expect_violation("bad_hotpath", "hotpath", "kernel.cc", min_findings=4)
    expect_violation("bad_catch", "catch", "swallows.cc", min_findings=2)
    expect_violation("include_cycle", "layering", "cycle_")

    # The v2 dataflow rules must fire in regex mode (the always-available
    # backend, pinned explicitly so a broken libclang fallback can't mask a
    # dead checker) and, when libclang loads, in libclang mode too.
    v2_fixtures = [
        ("bad_rng_parallel", "rng-discipline", "shared_stream.cc", 2),
        ("bad_lock_order", "lock-order", "parallel_abuse.cc", 2),
        ("bad_cv_wait", "cv-wait-predicate", "bare_wait.cc", 2),
    ]
    modes = ["regex"] + (["libclang"] if libclang_available() else [])
    for mode in modes:
        for fixture, rule, expect_file, minimum in v2_fixtures:
            expect_violation(fixture, rule, expect_file,
                             min_findings=minimum, mode=mode)
        expect_clean("clean_allow", os.path.join(FIXTURES, "clean_allow"),
                     mode=mode)

    # Inline allow() annotations suppress every finding.
    expect_clean("clean_allow", os.path.join(FIXTURES, "clean_allow"))

    # The real tree is (and must stay) clean.
    expect_clean("src tree", os.path.join(REPO_ROOT, "src"))

    # The v2 rules alone must also hold on the real tree (mirrors the CI
    # invocation `--rules rng-discipline,lock-order,cv-wait-predicate`).
    code, out = run_lint(
        "--check", os.path.join(REPO_ROOT, "src"), "--rules",
        "rng-discipline,lock-order,cv-wait-predicate")
    check("src tree: clean under v2 rules alone", code == 0, out)

    # Rule filtering: with only `layering` enabled, bad_rng passes.
    code, out = run_lint("--check", os.path.join(FIXTURES, "bad_rng"),
                         "--rules", "layering")
    check("rule filter: bad_rng clean under layering-only", code == 0, out)

    # Unknown rules are a usage error, not a silent no-op.
    code, out = run_lint("--check", os.path.join(FIXTURES, "bad_rng"),
                         "--rules", "nonsense")
    check("unknown rule: usage error", code == 2, out)

    # JSON output parses and carries the findings.
    import json
    code, _ = 0, None
    proc = subprocess.run(
        [sys.executable, LINT, "--check",
         os.path.join(FIXTURES, "bad_hotpath"), "--json"],
        capture_output=True, text=True, cwd=REPO_ROOT, timeout=300)
    payload = json.loads(proc.stdout)
    check("json: mode reported", payload.get("mode") in ("regex", "libclang"))
    check("json: findings present",
          any(f["rule"] == "hotpath" for f in payload.get("findings", [])))

    if FAILURES:
        print(f"\n{len(FAILURES)} lint self-test failure(s)")
        return 1
    print("\nall lint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
