// Unit tests for sim::StateVector.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/parallel.h"
#include "sim/state_vector.h"

namespace tqsim::sim {
namespace {

TEST(StateVector, InitializesToZeroState)
{
    StateVector s(3);
    EXPECT_EQ(s.num_qubits(), 3);
    EXPECT_EQ(s.size(), 8u);
    EXPECT_DOUBLE_EQ(s[0].real(), 1.0);
    for (Index i = 1; i < s.size(); ++i) {
        EXPECT_EQ(s[i], Complex(0.0, 0.0));
    }
    EXPECT_DOUBLE_EQ(s.norm_squared(), 1.0);
}

TEST(StateVector, RejectsBadWidths)
{
    EXPECT_THROW(StateVector(0), std::invalid_argument);
    EXPECT_THROW(StateVector(31), std::invalid_argument);
}

TEST(StateVector, ExplicitAmplitudeConstructor)
{
    std::vector<Complex> amps = {{0.6, 0.0}, {0.8, 0.0}};
    StateVector s(1, amps);
    EXPECT_NEAR(s.norm_squared(), 1.0, 1e-12);
    EXPECT_THROW(StateVector(2, amps), std::invalid_argument);
}

TEST(StateVector, SetBasisState)
{
    StateVector s(2);
    s.set_basis_state(3);
    EXPECT_EQ(s[3], Complex(1.0, 0.0));
    EXPECT_EQ(s[0], Complex(0.0, 0.0));
    EXPECT_THROW(s.set_basis_state(4), std::out_of_range);
}

TEST(StateVector, ResetRestoresZeroState)
{
    StateVector s(2);
    s.set_basis_state(2);
    s.reset();
    EXPECT_EQ(s[0], Complex(1.0, 0.0));
    EXPECT_EQ(s[2], Complex(0.0, 0.0));
}

TEST(StateVector, BytesAccounting)
{
    StateVector s(10);
    EXPECT_EQ(s.bytes(), 1024u * 16u);
    EXPECT_EQ(state_vector_bytes(10), 1024u * 16u);
    EXPECT_EQ(density_matrix_bytes(10), 1024ull * 1024ull * 16ull);
}

TEST(StateVector, NormalizeRescales)
{
    StateVector s(1, {{3.0, 0.0}, {4.0, 0.0}});
    s.normalize();
    EXPECT_NEAR(s.norm_squared(), 1.0, 1e-12);
    EXPECT_NEAR(s[0].real(), 0.6, 1e-12);
}

TEST(StateVector, NormalizeThrowsOnZeroState)
{
    StateVector s(1, {{0.0, 0.0}, {0.0, 0.0}});
    EXPECT_THROW(s.normalize(), std::runtime_error);
}

TEST(StateVector, InnerProduct)
{
    StateVector a(1, {{1.0, 0.0}, {0.0, 0.0}});
    StateVector b(1, {{0.0, 0.0}, {1.0, 0.0}});
    EXPECT_EQ(a.inner_product(b), Complex(0.0, 0.0));
    EXPECT_EQ(a.inner_product(a), Complex(1.0, 0.0));
    // Conjugation on the left argument.
    StateVector c(1, {{0.0, 1.0}, {0.0, 0.0}});
    EXPECT_EQ(c.inner_product(a), Complex(0.0, -1.0));
    StateVector wide(2);
    EXPECT_THROW(a.inner_product(wide), std::invalid_argument);
}

TEST(StateVector, Probabilities)
{
    const double inv = 1.0 / std::sqrt(2.0);
    StateVector s(1, {{inv, 0.0}, {0.0, inv}});
    const auto probs = s.probabilities();
    EXPECT_NEAR(probs[0], 0.5, 1e-12);
    EXPECT_NEAR(probs[1], 0.5, 1e-12);
}

TEST(StateVector, ProbabilityOfOne)
{
    StateVector s(2);
    s.set_basis_state(2);  // |10>: qubit1 = 1, qubit0 = 0
    EXPECT_DOUBLE_EQ(s.probability_of_one(1), 1.0);
    EXPECT_DOUBLE_EQ(s.probability_of_one(0), 0.0);
    EXPECT_THROW(s.probability_of_one(2), std::out_of_range);
}

TEST(StateVector, ApproxEqual)
{
    StateVector a(1), b(1);
    EXPECT_TRUE(a.approx_equal(b));
    b[1] += Complex(1e-12, 0.0);
    EXPECT_TRUE(a.approx_equal(b, 1e-9));
    b[1] += Complex(1e-3, 0.0);
    EXPECT_FALSE(a.approx_equal(b, 1e-9));
    StateVector wide(2);
    EXPECT_FALSE(a.approx_equal(wide));
}

TEST(StateVector, CopyIsDeep)
{
    StateVector a(2);
    StateVector b = a;
    b.set_basis_state(1);
    EXPECT_EQ(a[0], Complex(1.0, 0.0));
    EXPECT_EQ(b[1], Complex(1.0, 0.0));
}


// ---- Multi-threaded reduction equivalence ----------------------------------
// The blocked reductions must return bit-identical values at any thread
// count (these are what keep trajectory branch picks and leaf sampling
// deterministic when the pool is enabled).

TEST(StateVectorThreaded, ReductionsMatchSingleThreadBitwise)
{
    const int n = 16;
    std::vector<Complex> amps(dim(n));
    std::uint64_t x = 42;
    for (auto& a : amps) {
        // Cheap deterministic pseudo-random fill.
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const double re = static_cast<double>(x >> 40) * 0x1.0p-24 - 0.5;
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const double im = static_cast<double>(x >> 40) * 0x1.0p-24 - 0.5;
        a = Complex(re, im);
    }
    StateVector s(n, amps);
    StateVector other(n, std::move(amps));
    other.set_basis_state(3);

    set_num_threads(1);
    const double norm_serial = s.norm_squared();
    const double p_serial = s.probability_of_one(5);
    const Complex ip_serial = s.inner_product(other);
    const std::vector<double> probs_serial = s.probabilities();

    set_num_threads(8);
    const double norm_threaded = s.norm_squared();
    const double p_threaded = s.probability_of_one(5);
    const Complex ip_threaded = s.inner_product(other);
    const std::vector<double> probs_threaded = s.probabilities();
    set_num_threads(1);

    EXPECT_EQ(norm_serial, norm_threaded);
    EXPECT_EQ(p_serial, p_threaded);
    EXPECT_EQ(ip_serial.real(), ip_threaded.real());
    EXPECT_EQ(ip_serial.imag(), ip_threaded.imag());
    ASSERT_EQ(probs_serial.size(), probs_threaded.size());
    for (std::size_t i = 0; i < probs_serial.size(); ++i) {
        ASSERT_EQ(probs_serial[i], probs_threaded[i]) << "index " << i;
    }
}

TEST(StateVectorThreaded, NormalizeMatchesSingleThreadBitwise)
{
    const int n = 15;
    std::vector<Complex> amps(dim(n), Complex{0.25, -0.125});
    StateVector serial(n, amps);
    StateVector threaded(n, std::move(amps));
    set_num_threads(1);
    serial.normalize();
    set_num_threads(4);
    threaded.normalize();
    set_num_threads(1);
    for (Index i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i], threaded[i]) << "amp " << i;
    }
    EXPECT_NEAR(serial.norm_squared(), 1.0, 1e-12);
}


}  // namespace
}  // namespace tqsim::sim
