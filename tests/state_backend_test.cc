// The StateBackend seam: reuse-tree runs on the sharded backend must be
// bit-identical to the dense backend — sampled distributions, raw outcomes,
// RNG streams, and deterministic ExecStats counters — at every shard count,
// thread count, and option combination; CommStats must flow through the
// Transport and reset per run; the fused-diagonal threshold must be
// tunable; and the cluster estimator must accept measured exchange counts.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "circuits/qft.h"
#include "core/tqsim.h"
#include "core/tree_executor.h"
#include "dist/cluster_simulator.h"
#include "dist/distributed_state_vector.h"
#include "dist/sharded_backend.h"
#include "dist/transport.h"
#include "noise/noise_model.h"
#include "sim/gate_kernels.h"
#include "sim/parallel.h"
#include "sim/state_backend.h"

namespace tqsim::core {
namespace {

using noise::NoiseModel;
using sim::BackendConfig;
using sim::BackendKind;
using sim::Circuit;
using sim::StateVector;

/** Restores the ambient pool size when a test scope ends (the TSan job
 *  runs every suite at TQSIM_NUM_THREADS=4; resetting to 1 would silently
 *  de-thread the tests that follow). */
class ThreadGuard
{
  public:
    explicit ThreadGuard(int n) : prev_(sim::num_threads())
    {
        sim::set_num_threads(n);
    }
    ~ThreadGuard() { sim::set_num_threads(prev_); }

  private:
    int prev_;
};

/**
 * A circuit exercising every sharded dispatch route once qubits go global:
 * dense 1q on every qubit, diagonal runs (rz/t/cz/cphase/rzz -> DiagBatch),
 * CX both orientations (control-masked and exchange), swap, ccx, and a
 * custom 2q unitary (fsim -> dense exchange).
 */
Circuit
route_circuit(int num_qubits)
{
    Circuit c(num_qubits, "routes");
    for (int rep = 0; rep < 3; ++rep) {
        for (int q = 0; q < num_qubits; ++q) {
            c.h(q);
            c.rz(q, 0.2 + 0.07 * q + 0.03 * rep);
            c.t(q);
        }
        for (int q = 0; q + 1 < num_qubits; ++q) {
            c.cx(q, q + 1);
        }
        c.cx(num_qubits - 1, 0);
        c.cz(0, num_qubits - 1);
        c.cphase(1, num_qubits - 2, 0.4);
        c.rzz(0, num_qubits - 1, 0.3);
        c.swap(1, num_qubits - 1);
        c.fsim(0, num_qubits - 1, 0.5, 0.2);
        if (num_qubits >= 3) {
            c.ccx(0, 1, num_qubits - 1);
            c.ccx(num_qubits - 1, num_qubits - 2, 0);
        }
    }
    return c;
}

/** Asserts two runs agree on everything deterministic, including the
 *  snapshot-pool split (same thread count on both sides). */
void
expect_identical_runs(const RunResult& a, const RunResult& b)
{
    ASSERT_EQ(a.distribution.size(), b.distribution.size());
    for (std::size_t i = 0; i < a.distribution.size(); ++i) {
        ASSERT_EQ(a.distribution[i], b.distribution[i]) << "bin " << i;
    }
    ASSERT_EQ(a.raw_outcomes, b.raw_outcomes);
    EXPECT_EQ(a.stats.gate_applications, b.stats.gate_applications);
    EXPECT_EQ(a.stats.channel_applications, b.stats.channel_applications);
    EXPECT_EQ(a.stats.error_events, b.stats.error_events);
    EXPECT_EQ(a.stats.state_copies, b.stats.state_copies);
    EXPECT_EQ(a.stats.bytes_copied, b.stats.bytes_copied);
    EXPECT_EQ(a.stats.nodes_simulated, b.stats.nodes_simulated);
    EXPECT_EQ(a.stats.outcomes, b.stats.outcomes);
    EXPECT_EQ(a.stats.snapshot_pool_hits, b.stats.snapshot_pool_hits);
    EXPECT_EQ(a.stats.snapshot_pool_misses, b.stats.snapshot_pool_misses);
    EXPECT_EQ(a.stats.segment_fusion_reduction,
              b.stats.segment_fusion_reduction);
}

RunResult
run_with(const Circuit& c, const NoiseModel& m, const PartitionPlan& plan,
         const BackendConfig& backend, bool compile, bool pool)
{
    ExecutorOptions opt;
    opt.collect_outcomes = true;
    opt.compile_segments = compile;
    opt.use_snapshot_pool = pool;
    opt.backend = backend;
    return execute_tree(c, m, plan, opt);
}

// ---- Equivalence: sharded vs dense ----------------------------------------

class ShardedVsDense
    : public ::testing::TestWithParam<std::tuple<int, bool, bool>>
{
};

TEST_P(ShardedVsDense, BitIdenticalUnderUnitaryMixtureNoise)
{
    const auto [shards, compile, pool] = GetParam();
    const Circuit c = route_circuit(6);
    NoiseModel m = NoiseModel::sycamore_depolarizing();
    m.set_readout_error(0.01);
    const PartitionPlan plan{TreeStructure({6, 3, 2}),
                             equal_boundaries(c.size(), 3)};
    const RunResult dense =
        run_with(c, m, plan, BackendConfig{}, compile, pool);
    BackendConfig sharded;
    sharded.kind = BackendKind::kSharded;
    sharded.num_shards = shards;
    const RunResult shard = run_with(c, m, plan, sharded, compile, pool);
    expect_identical_runs(dense, shard);
    EXPECT_EQ(dense.stats.comm_bytes, 0u);
    EXPECT_GT(shard.stats.global_gates, 0u);
}

TEST_P(ShardedVsDense, BitIdenticalUnderGeneralChannels)
{
    // Amplitude damping samples Kraus branches from norm reductions: the
    // sharded reductions must reproduce the dense sums bit-for-bit or the
    // RNG streams diverge.
    const auto [shards, compile, pool] = GetParam();
    const Circuit c = route_circuit(5);
    const NoiseModel m = NoiseModel::amplitude_damping_model(0.02);
    const PartitionPlan plan{TreeStructure({4, 3}),
                             equal_boundaries(c.size(), 2)};
    const RunResult dense =
        run_with(c, m, plan, BackendConfig{}, compile, pool);
    BackendConfig sharded;
    sharded.kind = BackendKind::kSharded;
    sharded.num_shards = shards;
    const RunResult shard = run_with(c, m, plan, sharded, compile, pool);
    expect_identical_runs(dense, shard);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndOptions, ShardedVsDense,
    ::testing::Values(std::tuple{2, true, true}, std::tuple{4, true, true},
                      std::tuple{8, true, true}, std::tuple{4, false, true},
                      std::tuple{4, true, false},
                      std::tuple{8, false, false}));

TEST(ShardedBackend, BitIdenticalAcrossThreadCounts)
{
    const Circuit c = route_circuit(6);
    NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure({8, 2, 2}),
                             equal_boundaries(c.size(), 3)};
    BackendConfig sharded;
    sharded.kind = BackendKind::kSharded;
    sharded.num_shards = 4;
    auto run_at = [&](int threads) {
        ThreadGuard guard(threads);
        return run_with(c, m, plan, sharded, true, true);
    };
    const RunResult r1 = run_at(1);
    const RunResult r4 = run_at(4);
    ASSERT_EQ(r1.raw_outcomes, r4.raw_outcomes);
    for (std::size_t i = 0; i < r1.distribution.size(); ++i) {
        ASSERT_EQ(r1.distribution[i], r4.distribution[i]) << "bin " << i;
    }
    // Exchange passes are structural, so comm counters are thread-count
    // independent too.
    EXPECT_EQ(r1.stats.comm_bytes, r4.stats.comm_bytes);
    EXPECT_EQ(r1.stats.comm_messages, r4.stats.comm_messages);
    EXPECT_EQ(r1.stats.global_gates, r4.stats.global_gates);
}

TEST(ShardedBackend, FacadeRunsSharded)
{
    const Circuit c = circuits::qft(5);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    RunOptions opt;
    opt.shots = 64;
    opt.collect_outcomes = true;
    const RunResult dense = core::run(c, m, opt);
    opt.backend.kind = BackendKind::kSharded;
    opt.backend.num_shards = 4;
    const RunResult shard = core::run(c, m, opt);
    ASSERT_EQ(dense.raw_outcomes, shard.raw_outcomes);
}

// ---- Cluster fusion on the sharded backend ---------------------------------

/** 1q-gate-only noise: the 2q connectors stay noise-free, so genuine
 *  multi-qubit clusters form — including clusters crossing the slice
 *  boundary once qubits go global (split / consolidated-exchange routes). */
NoiseModel
oneq_noise()
{
    NoiseModel m;
    m.add_on_1q_gates(noise::Channel::depolarizing_1q(0.05));
    return m;
}

/** Dense-2q-rich circuit: fsim/iswap chains stay noise-free under
 *  oneq_noise and pass the fusion cost gate, and the wrap-around pairs
 *  push clusters across the slice boundary once qubits go global. */
Circuit
cluster_circuit(int num_qubits)
{
    Circuit c(num_qubits, "clusters");
    for (int rep = 0; rep < 3; ++rep) {
        for (int q = 0; q < num_qubits; ++q) {
            c.h(q);
        }
        for (int q = 0; q + 1 < num_qubits; ++q) {
            c.fsim(q, q + 1, 0.3 + 0.05 * q, 0.1 * (rep + 1));
        }
        c.fsim(num_qubits - 1, 0, 0.4, 0.2);
        c.fsim(1, num_qubits - 1, 0.7, 0.3);
        c.cx(num_qubits - 1, 0);
        c.cz(0, num_qubits - 1);
        if (num_qubits >= 3) {
            c.ccx(0, 1, num_qubits - 1);
        }
    }
    return c;
}

class FusedShardedVsDense : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(FusedShardedVsDense, OutcomeIdenticalWithClustersAtAnyShardAndThreadCount)
{
    // With fusion on, dense and sharded runs share one compiled plan;
    // boundary-crossing clusters may re-associate amplitudes at the 1e-12
    // scale on the sharded side (split path), but sampled outcomes, RNG
    // streams, and every deterministic counter must agree.
    const auto [shards, threads] = GetParam();
    ThreadGuard guard(threads);
    const Circuit c = cluster_circuit(6);
    const NoiseModel m = oneq_noise();
    const PartitionPlan plan{TreeStructure({6, 3, 2}),
                             equal_boundaries(c.size(), 3)};
    BackendConfig fused_dense;
    fused_dense.max_fused_qubits = 4;
    BackendConfig fused_shard = fused_dense;
    fused_shard.kind = BackendKind::kSharded;
    fused_shard.num_shards = shards;
    const RunResult dense = run_with(c, m, plan, fused_dense, true, true);
    const RunResult shard = run_with(c, m, plan, fused_shard, true, true);
    expect_identical_runs(dense, shard);
    EXPECT_GT(dense.stats.fused_ops, 0u);
    EXPECT_EQ(dense.stats.fused_ops, shard.stats.fused_ops);
    EXPECT_EQ(dense.stats.fused_gates_absorbed,
              shard.stats.fused_gates_absorbed);
}

INSTANTIATE_TEST_SUITE_P(ShardsAndThreads, FusedShardedVsDense,
                         ::testing::Values(std::tuple{2, 1}, std::tuple{4, 1},
                                           std::tuple{8, 1}, std::tuple{2, 2},
                                           std::tuple{4, 8},
                                           std::tuple{8, 2}));

TEST(ShardedFusion, FusionIntroducesNoExchangePasses)
{
    // A boundary-crossing cluster whose members are comm-free solo must
    // stay comm-free (split route); clusters containing genuinely-global
    // members may consolidate — but never add — exchange passes.
    const Circuit c = cluster_circuit(6);
    const NoiseModel m = oneq_noise();
    const PartitionPlan plan{TreeStructure({4, 2}),
                             equal_boundaries(c.size(), 2)};
    BackendConfig sharded;
    sharded.kind = BackendKind::kSharded;
    sharded.num_shards = 4;
    BackendConfig unfused = sharded;
    unfused.max_fused_qubits = 1;
    BackendConfig fused = sharded;
    fused.max_fused_qubits = 4;
    const RunResult base = run_with(c, m, plan, unfused, true, true);
    const RunResult wide = run_with(c, m, plan, fused, true, true);
    ASSERT_EQ(base.raw_outcomes, wide.raw_outcomes);
    EXPECT_GT(base.stats.global_gates, 0u);
    EXPECT_LE(wide.stats.global_gates, base.stats.global_gates);
    EXPECT_LE(wide.stats.comm_bytes, base.stats.comm_bytes);
}

TEST(ShardedFusion, CrossingClusterWithCommFreeMembersSplits)
{
    // h(0) + cx(4,0) fuse into a dense 4x4 on {0, 4}; on 4 shards qubit 4
    // is global, so applying the product in place would need an exchange
    // pass the unfused plan never pays (cx(4,0) routes control-masked).
    // The backend must split the cluster instead: zero exchanges, same
    // outcomes as the dense run.
    const int n = 5;  // 4 shards -> local {0,1,2}, global {3,4}
    Circuit c(n, "crossing-cluster");
    c.h(0).cx(4, 0).u3(0, 0.4, 0.2, 0.1).u3(0, 0.1, 0.3, 0.2);
    const NoiseModel m = NoiseModel::readout_only(0.05);
    const PartitionPlan plan{TreeStructure({8}), {0, c.size()}};
    BackendConfig sharded;
    sharded.kind = BackendKind::kSharded;
    sharded.num_shards = 4;
    sharded.max_fused_qubits = 2;
    const RunResult shard = run_with(c, m, plan, sharded, true, true);
    EXPECT_EQ(shard.stats.global_gates, 0u);
    EXPECT_EQ(shard.stats.comm_bytes, 0u);
    EXPECT_GT(shard.stats.fused_ops, 0u);
    BackendConfig dense;
    dense.max_fused_qubits = 2;
    const RunResult ref = run_with(c, m, plan, dense, true, true);
    ASSERT_EQ(ref.raw_outcomes, shard.raw_outcomes);
}

TEST(ShardedFusion, AllLocalClustersRunCommFree)
{
    // Clusters confined to local qubits run per-slice; global diagonals
    // stay comm-free too, so the whole plan needs zero exchanges.
    const int n = 5;  // 4 shards -> local {0,1,2}, global {3,4}
    Circuit c(n, "local-clusters");
    c.h(0).cx(0, 1).u3(1, 0.3, 0.1, 0.2).cx(1, 2).h(2);
    c.rz(4, 0.7).cz(3, 4);
    const NoiseModel m = NoiseModel::readout_only(0.02);
    const PartitionPlan plan{TreeStructure({4}), {0, c.size()}};
    BackendConfig sharded;
    sharded.kind = BackendKind::kSharded;
    sharded.num_shards = 4;
    sharded.max_fused_qubits = 3;
    const RunResult run = run_with(c, m, plan, sharded, true, true);
    EXPECT_EQ(run.stats.global_gates, 0u);
    EXPECT_GT(run.stats.fused_ops, 0u);
    // And the routing changes nothing measurable.
    const RunResult dense = run_with(c, m, plan,
                                     BackendConfig{BackendKind::kDense, 2, 0,
                                                   3},
                                     true, true);
    ASSERT_EQ(dense.raw_outcomes, run.raw_outcomes);
}

// ---- Communication accounting ---------------------------------------------

TEST(ShardedBackend, CommResetsPerRun)
{
    const Circuit c = route_circuit(5);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure({4, 2}),
                             equal_boundaries(c.size(), 2)};
    dist::ShardedStateBackend backend(5, 4);
    ExecutorOptions opt;
    const RunResult first = execute_tree(c, m, plan, opt, backend);
    const RunResult second = execute_tree(c, m, plan, opt, backend);
    EXPECT_GT(first.stats.comm_bytes, 0u);
    // Without the per-run reset the second run would report double.
    EXPECT_EQ(first.stats.comm_bytes, second.stats.comm_bytes);
    EXPECT_EQ(first.stats.comm_messages, second.stats.comm_messages);
    EXPECT_EQ(first.stats.global_gates, second.stats.global_gates);
}

TEST(ShardedBackend, LegacyPathCommMatchesGlobalPassCount)
{
    // Gate-at-a-time execution triggers exactly the exchanges
    // count_global_gate_passes predicts, once per node instance.  Readout
    // noise only: gate channels would add exchange passes of their own
    // whenever a Kraus branch lands on a global qubit.
    const Circuit c = route_circuit(6);
    const NoiseModel m = NoiseModel::readout_only(0.05);
    const PartitionPlan plan{TreeStructure({3, 2}),
                             equal_boundaries(c.size(), 2)};
    BackendConfig sharded;
    sharded.kind = BackendKind::kSharded;
    sharded.num_shards = 4;
    const RunResult run = run_with(c, m, plan, sharded, /*compile=*/false,
                                   /*pool=*/true);
    std::uint64_t expected = 0;
    for (std::size_t level = 0; level < plan.num_levels(); ++level) {
        const Circuit sub = c.slice(plan.boundaries[level],
                                    plan.boundaries[level + 1]);
        expected += plan.tree.instances(level) *
                    dist::count_global_gate_passes(sub, 6, 4);
    }
    EXPECT_EQ(run.stats.global_gates, expected);
}

TEST(ShardedBackend, CompiledPlansRouteControlMaskedOpsCommFree)
{
    // Diagonals and CX/CCX with global controls but local targets need no
    // exchange under the lowered plans — only genuine data motion does.
    const int n = 5;  // 4 shards -> local {0,1,2}, global {3,4}
    Circuit c(n, "ctrl-masked");
    c.h(0).h(1).cx(3, 0).cx(4, 1).ccx(3, 4, 2).cz(3, 4).rz(4, 0.3).cphase(
        0, 4, 0.2);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure({4}), {0, c.size()}};
    BackendConfig sharded;
    sharded.kind = BackendKind::kSharded;
    sharded.num_shards = 4;
    const RunResult compiled = run_with(c, m, plan, sharded, true, true);
    EXPECT_EQ(compiled.stats.global_gates, 0u);
    const RunResult legacy = run_with(c, m, plan, sharded, false, true);
    EXPECT_GT(legacy.stats.global_gates, 0u);
    // Routing must not change results.
    ASSERT_EQ(compiled.raw_outcomes, legacy.raw_outcomes);
}

TEST(Transport, AccountsAndResets)
{
    dist::InProcessTransport t;
    t.account_pass(1024, 4);
    t.account_pass(2048, 8);
    EXPECT_EQ(t.stats().bytes, 3072u);
    EXPECT_EQ(t.stats().messages, 12u);
    EXPECT_EQ(t.stats().global_gates, 2u);
    t.reset_stats();
    EXPECT_EQ(t.stats().bytes, 0u);
    EXPECT_EQ(t.stats().global_gates, 0u);
}

TEST(Transport, SharedAcrossStatesAggregates)
{
    dist::InProcessTransport shared;
    dist::DistributedStateVector a(4, 2, &shared);
    dist::DistributedStateVector b(4, 2, &shared);
    a.apply_gate(sim::Gate::h(3));  // global
    b.apply_gate(sim::Gate::h(3));
    EXPECT_EQ(shared.stats().global_gates, 2u);
    EXPECT_EQ(a.comm_stats().global_gates, 2u);  // same counters
}

TEST(Transport, GatherScatterRoundTrips)
{
    dist::InProcessTransport t;
    std::vector<StateVector> slices;
    for (int r = 0; r < 4; ++r) {
        StateVector s(2);
        for (sim::Index i = 0; i < 4; ++i) {
            s[i] = sim::Complex{static_cast<double>(r), static_cast<double>(i)};
        }
        slices.push_back(std::move(s));
    }
    const std::vector<int> members{2, 0};
    StateVector staging(3);
    t.gather_slices(slices, members, staging, 4);
    EXPECT_EQ(staging[0], (sim::Complex{2.0, 0.0}));
    EXPECT_EQ(staging[4], (sim::Complex{0.0, 0.0}));
    EXPECT_EQ(staging[5], (sim::Complex{0.0, 1.0}));
    staging[0] = sim::Complex{9.0, 9.0};
    t.scatter_slices(staging, members, slices, 4);
    EXPECT_EQ(slices[2][0], (sim::Complex{9.0, 9.0}));
}

// ---- Fused-diagonal threshold ---------------------------------------------

TEST(FusedDiagThreshold, DefaultAndOverride)
{
    EXPECT_EQ(sim::fused_diag_threshold(), sim::Index{1} << 22);
    sim::set_fused_diag_threshold(1);
    EXPECT_EQ(sim::fused_diag_threshold(), 1u);
    sim::set_fused_diag_threshold(0);
    EXPECT_EQ(sim::fused_diag_threshold(), sim::Index{1} << 22);
}

TEST(FusedDiagThreshold, ForcedModesAgree)
{
    // Per-term passes and the fused single pass differ only in float
    // association; forcing each mode via the explicit threshold must agree
    // to 1e-12 and be deterministic.
    StateVector a(8), b(8);
    util::Rng rng(123);
    for (sim::Index i = 0; i < a.size(); ++i) {
        a[i] = sim::Complex{rng.uniform() - 0.5, rng.uniform() - 0.5};
        b[i] = a[i];
    }
    std::vector<sim::DiagTerm> terms;
    for (int q = 0; q < 4; ++q) {
        sim::DiagTerm t;
        t.mask0 = sim::Index{1} << q;
        t.mask1 = sim::Index{1} << (q + 3);
        t.d[1] = sim::Complex{0.8, 0.1};
        t.d[2] = sim::Complex{0.9, -0.2};
        t.d[3] = sim::Complex{0.7, 0.3};
        terms.push_back(t);
    }
    // Huge threshold -> per-term; threshold 1 -> fused.
    apply_diag_batch(a, terms.data(), terms.size(), sim::Index{1} << 30);
    apply_diag_batch(b, terms.data(), terms.size(), 1);
    EXPECT_TRUE(a.approx_equal(b, 1e-12));
}

TEST(FusedDiagThreshold, BackendConfigForcesFusedOnBothBackends)
{
    // Forcing the fused pass everywhere (threshold 1) must keep dense and
    // sharded bit-identical: both engines flip mode on the same decision.
    const Circuit c = route_circuit(6);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure({4, 2}),
                             equal_boundaries(c.size(), 2)};
    BackendConfig dense_cfg;
    dense_cfg.fused_diag_threshold = 1;
    BackendConfig shard_cfg = dense_cfg;
    shard_cfg.kind = BackendKind::kSharded;
    shard_cfg.num_shards = 4;
    const RunResult dense = run_with(c, m, plan, dense_cfg, true, true);
    const RunResult shard = run_with(c, m, plan, shard_cfg, true, true);
    expect_identical_runs(dense, shard);
}

// ---- Factory and estimator ------------------------------------------------

TEST(MakeStateBackend, ResolvesKindsAndValidates)
{
    BackendConfig cfg;
    auto dense = make_state_backend(cfg, 6);
    EXPECT_STREQ(dense->name(), "dense");
    EXPECT_EQ(dense->state_bytes(), sim::state_vector_bytes(6));
    cfg.kind = BackendKind::kSharded;
    cfg.num_shards = 4;
    auto shard = make_state_backend(cfg, 6);
    EXPECT_STREQ(shard->name(), "sharded");
    EXPECT_EQ(shard->state_bytes(), sim::state_vector_bytes(6));
    cfg.num_shards = 3;  // not a power of two
    EXPECT_THROW(make_state_backend(cfg, 6), std::invalid_argument);
    cfg.num_shards = 64;  // slices below two amplitudes
    EXPECT_THROW(make_state_backend(cfg, 6), std::invalid_argument);
}

TEST(ClusterEstimateMeasured, MatchesModelOnModeledCounters)
{
    const Circuit c = circuits::qft(10);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure::baseline(128), {0, c.size()}};
    dist::ClusterConfig cfg;
    cfg.num_nodes = 4;
    const dist::ClusterEstimate modeled =
        dist::estimate_cluster_run(c, m, plan, cfg);
    dist::CommStats measured;
    measured.global_gates = modeled.global_passes;
    measured.bytes = modeled.comm_bytes;
    const dist::ClusterEstimate est =
        dist::estimate_cluster_run_measured(c, m, plan, cfg, measured);
    EXPECT_DOUBLE_EQ(est.comm_seconds, modeled.comm_seconds);
    EXPECT_DOUBLE_EQ(est.compute_seconds, modeled.compute_seconds);
    EXPECT_DOUBLE_EQ(est.copy_seconds, modeled.copy_seconds);
}

TEST(ClusterEstimateMeasured, ConsumesRealTreeRunCounters)
{
    // End-to-end: measure a sharded tree run, feed the counters to the
    // estimator.  For this circuit the compiled plans' comm-free routing
    // (control-masked CX/CCX, diagonal batches) outweighs the exchange
    // passes noisy Kraus branches add, so measured passes stay at or below
    // the standalone extrapolation (deterministic for the fixed seed).
    const Circuit c = route_circuit(6);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure({4, 2}),
                             equal_boundaries(c.size(), 2)};
    BackendConfig sharded;
    sharded.kind = BackendKind::kSharded;
    sharded.num_shards = 4;
    const RunResult run = run_with(c, m, plan, sharded, true, true);
    dist::CommStats measured;
    measured.bytes = run.stats.comm_bytes;
    measured.messages = run.stats.comm_messages;
    measured.global_gates = run.stats.global_gates;
    dist::ClusterConfig cfg;
    cfg.num_nodes = 4;
    const dist::ClusterEstimate modeled =
        dist::estimate_cluster_run(c, m, plan, cfg);
    const dist::ClusterEstimate est =
        dist::estimate_cluster_run_measured(c, m, plan, cfg, measured);
    EXPECT_GT(est.global_passes, 0u);
    EXPECT_LE(est.global_passes, modeled.global_passes);
    EXPECT_GT(est.comm_seconds, 0.0);
}

}  // namespace
}  // namespace tqsim::core
