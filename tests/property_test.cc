// Parameterized property sweeps: invariants that must hold for every
// combination of partitioning strategy, shot budget, copy cost, and tree
// shape — the contracts the rest of the library builds on.

#include <gtest/gtest.h>

#include <tuple>

#include "circuits/qft.h"
#include "core/baseline_runner.h"
#include "core/tqsim.h"
#include "noise/noise_model.h"
#include "sim/parallel.h"

namespace tqsim::core {
namespace {

using noise::NoiseModel;
using sim::Circuit;

// ---- Plan invariants across the configuration space ---------------------------

using PlanParam = std::tuple<PartitionStrategy, std::uint64_t, double>;

class PlanInvariants : public ::testing::TestWithParam<PlanParam>
{
  protected:
    static Circuit
    workload()
    {
        return circuits::qft(8);  // 148 gates
    }
};

TEST_P(PlanInvariants, BoundariesCoverCircuitContiguously)
{
    const auto [strategy, shots, copy_cost] = GetParam();
    const Circuit c = workload();
    PartitionOptions opt;
    opt.strategy = strategy;
    opt.shots = shots;
    opt.copy_cost_gates = copy_cost;
    const PartitionPlan plan =
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt);
    ASSERT_EQ(plan.boundaries.size(), plan.num_levels() + 1);
    EXPECT_EQ(plan.boundaries.front(), 0u);
    EXPECT_EQ(plan.boundaries.back(), c.size());
    for (std::size_t i = 0; i + 1 < plan.boundaries.size(); ++i) {
        EXPECT_LT(plan.boundaries[i], plan.boundaries[i + 1]);
    }
}

TEST_P(PlanInvariants, OutcomesCoverShotBudget)
{
    const auto [strategy, shots, copy_cost] = GetParam();
    PartitionOptions opt;
    opt.strategy = strategy;
    opt.shots = shots;
    opt.copy_cost_gates = copy_cost;
    const PartitionPlan plan = make_partition_plan(
        workload(), NoiseModel::sycamore_depolarizing(), opt);
    EXPECT_GE(plan.tree.total_outcomes(), shots);
}

TEST_P(PlanInvariants, SegmentsRespectMinimumLength)
{
    const auto [strategy, shots, copy_cost] = GetParam();
    PartitionOptions opt;
    opt.strategy = strategy;
    opt.shots = shots;
    opt.copy_cost_gates = copy_cost;
    const PartitionPlan plan = make_partition_plan(
        workload(), NoiseModel::sycamore_depolarizing(), opt);
    if (plan.num_levels() > 1) {
        const auto min_len =
            static_cast<std::size_t>(std::max(1.0, copy_cost));
        for (std::size_t g : plan.gates_per_level()) {
            EXPECT_GE(g + 1, min_len);  // equal split may round down by one
        }
    }
}

TEST_P(PlanInvariants, TheoreticalSpeedupAtLeastOne)
{
    const auto [strategy, shots, copy_cost] = GetParam();
    PartitionOptions opt;
    opt.strategy = strategy;
    opt.shots = shots;
    opt.copy_cost_gates = copy_cost;
    const PartitionPlan plan = make_partition_plan(
        workload(), NoiseModel::sycamore_depolarizing(), opt);
    // Gate-work speedup of any (A0 <= N, uniform-ish) plan is >= 1; allow
    // tiny slack for outcome top-up.
    EXPECT_GE(plan.theoretical_speedup(), 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyShotsCost, PlanInvariants,
    ::testing::Combine(
        ::testing::Values(PartitionStrategy::kBaseline,
                          PartitionStrategy::kUCP, PartitionStrategy::kXCP,
                          PartitionStrategy::kDCP),
        ::testing::Values(64ULL, 1000ULL, 8192ULL),
        ::testing::Values(1.0, 10.0, 45.0)),
    [](const ::testing::TestParamInfo<PlanParam>& info) {
        return strategy_name(std::get<0>(info.param)) + "_s" +
               std::to_string(std::get<1>(info.param)) + "_c" +
               std::to_string(static_cast<int>(std::get<2>(info.param)));
    });

// ---- Executor invariants across tree shapes ------------------------------------

class ExecutorInvariants
    : public ::testing::TestWithParam<std::vector<std::uint64_t>>
{
};

TEST_P(ExecutorInvariants, CountsMatchTreeAlgebra)
{
    const std::vector<std::uint64_t> arities = GetParam();
    const Circuit c = circuits::qft(5);  // 55 gates
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure(arities),
                             equal_boundaries(c.size(), arities.size())};
    const RunResult r = execute_tree(c, m, plan);

    // Outcomes and nodes follow Eq. 3 exactly.
    EXPECT_EQ(r.stats.outcomes, plan.tree.total_outcomes());
    EXPECT_EQ(r.stats.nodes_simulated, plan.tree.total_nodes() - 1);

    // Gate work = sum over levels of instances * segment length.
    std::uint64_t expected_gates = 0;
    const auto gates = plan.gates_per_level();
    for (std::size_t l = 0; l < plan.num_levels(); ++l) {
        expected_gates += plan.tree.instances(l) * gates[l];
    }
    EXPECT_EQ(r.stats.gate_applications, expected_gates);

    // The distribution is a normalized histogram over the leaves.
    EXPECT_NEAR(r.distribution.total(), 1.0, 1e-9);

    // DFS memory bound: one cursor of (levels + 1) live states per worker
    // (exactly levels + 1 when single-threaded).
    const std::uint64_t workers =
        static_cast<std::uint64_t>(sim::num_threads());
    EXPECT_LE(r.stats.peak_live_states, (plan.num_levels() + 1) * workers);
}

TEST_P(ExecutorInvariants, CopyAccountingMatchesReuseRule)
{
    const std::vector<std::uint64_t> arities = GetParam();
    const Circuit c = circuits::qft(5);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure(arities),
                             equal_boundaries(c.size(), arities.size())};

    ExecutorOptions no_reuse;
    no_reuse.reuse_last_child = false;
    const RunResult plain = execute_tree(c, m, plan, no_reuse);
    // One copy per non-root node.
    EXPECT_EQ(plain.stats.state_copies, plan.tree.total_nodes() - 1);

    ExecutorOptions reuse;
    reuse.reuse_last_child = true;
    const RunResult moved = execute_tree(c, m, plan, reuse);
    // The move optimization saves exactly one copy per expanded node
    // (the root plus every internal node).
    std::uint64_t internal = 1;  // root
    for (std::size_t l = 0; l + 1 < plan.num_levels(); ++l) {
        internal += plan.tree.instances(l);
    }
    EXPECT_EQ(moved.stats.state_copies,
              plan.tree.total_nodes() - 1 - internal);
}

// GCC 12 mis-fires -Wrestrict on `name += "_" + std::to_string(a)` below:
// after inlining the basic_string append it models the operator+ temporary
// as a potentially self-overlapping memcpy into `name`, even though the
// temporary is a distinct allocation
// (https://gcc.gnu.org/bugzilla/show_bug.cgi?id=105651).  The diagnostic is
// attributed to the macro-generated name-generator function, so the
// suppression must span the whole INSTANTIATE_TEST_SUITE_P statement for
// the tests to build under -Wall -Wextra -Werror.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
INSTANTIATE_TEST_SUITE_P(
    TreeShapes, ExecutorInvariants,
    ::testing::Values(std::vector<std::uint64_t>{16},
                      std::vector<std::uint64_t>{4, 4},
                      std::vector<std::uint64_t>{8, 2, 2},
                      std::vector<std::uint64_t>{2, 2, 2, 2},
                      std::vector<std::uint64_t>{1, 16},
                      std::vector<std::uint64_t>{16, 1, 1},
                      std::vector<std::uint64_t>{3, 5, 2}),
    [](const ::testing::TestParamInfo<std::vector<std::uint64_t>>& info) {
        std::string name = "tree";
        for (std::uint64_t a : info.param) {
            name += "_" + std::to_string(a);
        }
        return name;
    });
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// ---- Determinism sweep -----------------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DeterminismSweep, IdenticalSeedsIdenticalResults)
{
    const std::uint64_t seed = GetParam();
    const Circuit c = circuits::qft(6);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    RunOptions opt;
    opt.shots = 200;
    opt.copy_cost_gates = 5.0;
    opt.seed = seed;
    opt.collect_outcomes = true;
    const RunResult a = run(c, m, opt);
    const RunResult b = run(c, m, opt);
    EXPECT_EQ(a.raw_outcomes, b.raw_outcomes);
    EXPECT_EQ(a.stats.error_events, b.stats.error_events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1ULL, 42ULL, 0xDEADBEEFULL,
                                           ~0ULL));

}  // namespace
}  // namespace tqsim::core
