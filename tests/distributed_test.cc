// Tests for the simulated multi-node engine: exactness vs the single-node
// simulator, communication accounting, and the scaling estimator.

#include <gtest/gtest.h>

#include "circuits/qft.h"
#include "circuits/qv.h"
#include "core/partitioner.h"
#include "dist/cluster_simulator.h"
#include "dist/distributed_state_vector.h"
#include "noise/noise_model.h"
#include "sim/gate_kernels.h"

namespace tqsim::dist {
namespace {

using sim::Circuit;
using sim::Gate;
using sim::StateVector;

TEST(DistributedStateVector, InitialStateMatchesSingleNode)
{
    const DistributedStateVector dsv(4, 4);
    EXPECT_EQ(dsv.local_qubits(), 2);
    const StateVector full = dsv.gather();
    EXPECT_TRUE(full.approx_equal(StateVector(4), 1e-15));
    EXPECT_NEAR(dsv.norm_squared(), 1.0, 1e-15);
}

TEST(DistributedStateVector, Validation)
{
    EXPECT_THROW(DistributedStateVector(4, 3), std::invalid_argument);
    EXPECT_THROW(DistributedStateVector(2, 4), std::invalid_argument);
}

class DistributedVsSingle
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(DistributedVsSingle, RandomCircuitMatchesExactly)
{
    const auto [num_qubits, num_nodes] = GetParam();
    const Circuit c =
        circuits::quantum_volume(num_qubits, 4, 0xABC + num_nodes);
    StateVector single(num_qubits);
    DistributedStateVector dsv(num_qubits, num_nodes);
    for (const Gate& g : c.gates()) {
        sim::apply_gate(single, g);
        dsv.apply_gate(g);
    }
    EXPECT_TRUE(dsv.gather().approx_equal(single, 1e-9))
        << num_qubits << " qubits on " << num_nodes << " nodes";
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndNodes, DistributedVsSingle,
    ::testing::Values(std::tuple{4, 2}, std::tuple{4, 4}, std::tuple{5, 2},
                      std::tuple{5, 8}, std::tuple{6, 4}, std::tuple{6, 8},
                      std::tuple{7, 16}));

TEST(DistributedStateVector, EveryGateKindMatchesOnGlobalQubits)
{
    // Exercise each dispatch path with the gate's qubits in the global zone.
    const int n = 5;
    const int nodes = 8;  // local = 2, global = {2, 3, 4}
    std::vector<Gate> gates = {
        Gate::h(3),          Gate::x(4),           Gate::y(2),
        Gate::rz(3, 0.4),    Gate::phase(4, 0.2),  Gate::cx(3, 4),
        Gate::cx(0, 3),      Gate::cx(3, 0),       Gate::cz(2, 4),
        Gate::swap(1, 4),    Gate::swap(3, 4),     Gate::fsim(2, 3, 0.7, 0.2),
        Gate::fsim(0, 4, 0.3, 0.1), Gate::rzz(1, 3, 0.5),
        Gate::ccx(0, 3, 4),  Gate::ccx(2, 3, 4),
    };
    StateVector single(n);
    DistributedStateVector dsv(n, nodes);
    // Spread amplitude mass first.
    for (int q = 0; q < n; ++q) {
        sim::apply_gate(single, Gate::h(q));
        dsv.apply_gate(Gate::h(q));
    }
    for (const Gate& g : gates) {
        sim::apply_gate(single, g);
        dsv.apply_gate(g);
        ASSERT_TRUE(dsv.gather().approx_equal(single, 1e-9))
            << "after " << g.to_string();
    }
}

TEST(DistributedStateVector, LocalGatesDoNotCommunicate)
{
    DistributedStateVector dsv(5, 4);  // local qubits {0,1,2}
    dsv.apply_gate(Gate::h(0));
    dsv.apply_gate(Gate::cx(0, 2));
    dsv.apply_gate(Gate::fsim(1, 2, 0.3, 0.1));
    EXPECT_EQ(dsv.comm_stats().bytes, 0u);
    EXPECT_EQ(dsv.comm_stats().messages, 0u);
    EXPECT_EQ(dsv.comm_stats().global_gates, 0u);
}

TEST(DistributedStateVector, DiagonalGlobalGatesDoNotCommunicate)
{
    DistributedStateVector dsv(5, 4);  // global qubits {3,4}
    dsv.apply_gate(Gate::h(0));
    dsv.apply_gate(Gate::rz(4, 0.7));
    dsv.apply_gate(Gate::cz(3, 4));
    dsv.apply_gate(Gate::cphase(0, 4, 0.3));
    dsv.apply_gate(Gate::rzz(3, 4, 0.9));
    EXPECT_EQ(dsv.comm_stats().bytes, 0u);
}

TEST(DistributedStateVector, GlobalGateCommVolume)
{
    DistributedStateVector dsv(5, 4);  // 8-amplitude slices = 128 B
    const std::uint64_t slice_bytes = 8 * 16;
    dsv.apply_gate(Gate::h(4));  // global: 2 node pairs exchange slices
    EXPECT_EQ(dsv.comm_stats().bytes, 2u * 2u * slice_bytes);
    EXPECT_EQ(dsv.comm_stats().messages, 4u);
    EXPECT_EQ(dsv.comm_stats().global_gates, 1u);
    dsv.reset_comm_stats();
    dsv.apply_gate(Gate::fsim(3, 4, 0.1, 0.1));  // both global: one quad
    EXPECT_EQ(dsv.comm_stats().bytes, 4u * slice_bytes);
}

TEST(CountGlobalPasses, ClassifiesQubits)
{
    Circuit c(6);
    c.h(0).h(5).cz(4, 5).cx(0, 5).cx(1, 2).rz(5, 0.3);
    // 4 nodes -> local {0..3}: global passes = h(5), cx(0,5).  cz/rz are
    // diagonal; h(0), cx(1,2) local.
    EXPECT_EQ(count_global_gate_passes(c, 6, 4), 2u);
    EXPECT_EQ(count_global_gate_passes(c, 6, 1), 0u);
    EXPECT_THROW(count_global_gate_passes(c, 6, 3), std::invalid_argument);
    EXPECT_THROW(count_global_gate_passes(c, 6, 64), std::invalid_argument);
}

TEST(ClusterEstimate, StrongScalingReducesComputeTime)
{
    const Circuit c = circuits::qft(12);
    const noise::NoiseModel m = noise::NoiseModel::sycamore_depolarizing();
    const core::PartitionPlan plan{core::TreeStructure::baseline(512),
                                   {0, c.size()}};
    ClusterConfig one;
    one.num_nodes = 1;
    ClusterConfig eight = one;
    eight.num_nodes = 8;
    const double t1 = estimate_cluster_run(c, m, plan, one).total_seconds();
    const double t8 = estimate_cluster_run(c, m, plan, eight).total_seconds();
    EXPECT_LT(t8, t1);
    // Communication makes scaling sub-linear.
    EXPECT_GT(t8, t1 / 8.0);
}

TEST(ClusterEstimate, TqsimPlanFasterThanBaselinePlan)
{
    const Circuit c = circuits::qft(12);
    const noise::NoiseModel m = noise::NoiseModel::sycamore_depolarizing();
    core::PartitionOptions popt;
    popt.shots = 2048;
    popt.copy_cost_gates = 10.0;
    const core::PartitionPlan tq = core::make_partition_plan(c, m, popt);
    const core::PartitionPlan base{core::TreeStructure::baseline(2048),
                                   {0, c.size()}};
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    EXPECT_LT(estimate_cluster_run(c, m, tq, cfg).total_seconds(),
              estimate_cluster_run(c, m, base, cfg).total_seconds());
}

TEST(ClusterEstimate, CommBytesGrowWithNodes)
{
    const Circuit c = circuits::quantum_volume(10, 4, 9);
    const noise::NoiseModel m = noise::NoiseModel::sycamore_depolarizing();
    const core::PartitionPlan plan{core::TreeStructure::baseline(64),
                                   {0, c.size()}};
    ClusterConfig two;
    two.num_nodes = 2;
    ClusterConfig sixteen;
    sixteen.num_nodes = 16;
    EXPECT_GT(estimate_cluster_run(c, m, plan, sixteen).comm_seconds, 0.0);
    EXPECT_GT(
        estimate_cluster_run(c, m, plan, sixteen).comm_seconds,
        estimate_cluster_run(c, m, plan, two).comm_seconds * 0.5);
}

TEST(ClusterEstimate, ThroughputMeasurementIsPositive)
{
    const double thr = measure_host_amp_throughput(12, 0.01);
    EXPECT_GT(thr, 1e6);
}

}  // namespace
}  // namespace tqsim::dist
