/**
 * @file
 * Execution-integrity primitives and their backend adaptation
 * (docs/robustness.md#integrity--silent-corruption): the streaming digest
 * (chunk invariance, single-bit sensitivity, length separation), the
 * tolerance-aware invariant helpers, plan content digests, the
 * cross-backend/thread/fusion state_digest() property, and the online
 * monitors' fault-free behavior inside execute_tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/tqsim.h"
#include "core/tree_executor.h"
#include "noise/noise_model.h"
#include "service/reuse_cache.h"
#include "sim/circuit.h"
#include "sim/parallel.h"
#include "sim/segment_plan.h"
#include "sim/state_backend.h"
#include "util/integrity.h"

namespace tqsim {
namespace {

using util::integrity::digest_doubles;
using util::integrity::StreamDigest;

/** Restores the ambient pool size when a test scope ends. */
class ThreadGuard
{
  public:
    explicit ThreadGuard(int n) : prev_(sim::num_threads())
    {
        sim::set_num_threads(n);
    }
    ~ThreadGuard() { sim::set_num_threads(prev_); }

  private:
    int prev_;
};

/** A deterministic, non-trivial double buffer. */
std::vector<double>
patterned_doubles(std::size_t count)
{
    std::vector<double> v(count);
    for (std::size_t i = 0; i < count; ++i) {
        v[i] = 0.125 * static_cast<double>(i) - 3.5 +
               1e-9 * static_cast<double>(i * i);
    }
    return v;
}

// ---- StreamDigest ----------------------------------------------------------

TEST(StreamDigest, ChunkedAbsorbEqualsWholeBufferAbsorb)
{
    const std::vector<double> buf = patterned_doubles(1027);
    const std::uint64_t whole = digest_doubles(buf.data(), buf.size());

    // Any chunking of the stream — including sizes that are not multiples
    // of the four-lane unroll — lands on the same value.  This is the
    // property that lets the sharded backend chain per-slice digests.
    for (const std::size_t chunk : {1UL, 2UL, 3UL, 4UL, 7UL, 64UL, 1000UL}) {
        StreamDigest d;
        for (std::size_t at = 0; at < buf.size(); at += chunk) {
            const std::size_t n = std::min(chunk, buf.size() - at);
            d.absorb(buf.data() + at, n);
        }
        EXPECT_EQ(d.value(), whole) << "chunk=" << chunk;
    }
}

TEST(StreamDigest, AbsorbMatchesWordAtATimeAbsorb)
{
    const std::vector<double> buf = patterned_doubles(37);
    StreamDigest words;
    for (const double v : buf) {
        words.absorb_word(std::bit_cast<std::uint64_t>(v));
    }
    EXPECT_EQ(words.value(), digest_doubles(buf.data(), buf.size()));
}

TEST(StreamDigest, AnySingleBitFlipChangesTheValue)
{
    std::vector<double> buf = patterned_doubles(256);
    const std::uint64_t clean = digest_doubles(buf.data(), buf.size());

    // Walk a spread of (word, bit) positions covering every lane phase and
    // both mantissa and exponent bits.
    for (const std::size_t word : {0UL, 1UL, 2UL, 3UL, 17UL, 255UL}) {
        for (const int bit : {0, 1, 31, 52, 63}) {
            std::uint64_t raw = std::bit_cast<std::uint64_t>(buf[word]);
            raw ^= std::uint64_t{1} << bit;
            const double saved = buf[word];
            buf[word] = std::bit_cast<double>(raw);
            EXPECT_NE(digest_doubles(buf.data(), buf.size()), clean)
                << "word=" << word << " bit=" << bit;
            buf[word] = saved;
        }
    }
    EXPECT_EQ(digest_doubles(buf.data(), buf.size()), clean);
}

TEST(StreamDigest, LengthIsPartOfTheValue)
{
    // All-zero buffers of different lengths must not collide (a truncated
    // copy of a zero tail is still corruption).
    const std::vector<double> zeros(16, 0.0);
    std::uint64_t prev = StreamDigest{}.value();
    for (std::size_t n = 1; n <= zeros.size(); ++n) {
        const std::uint64_t d = digest_doubles(zeros.data(), n);
        EXPECT_NE(d, prev) << "n=" << n;
        prev = d;
    }
}

TEST(StreamDigest, EmptyBufferIsWellDefined)
{
    EXPECT_EQ(digest_doubles(nullptr, 0), StreamDigest{}.value());
    StreamDigest d;
    d.absorb(nullptr, 0);
    EXPECT_EQ(d.value(), StreamDigest{}.value());
}

// ---- Invariant helpers -----------------------------------------------------

TEST(IntegrityInvariants, ToleranceChecksRejectNaNAndRespectBounds)
{
    using util::integrity::branch_weight_conserved;
    using util::integrity::kraus_sum_ok;
    using util::integrity::norm_conserved;
    using util::integrity::within_tolerance;

    EXPECT_TRUE(within_tolerance(1.0 + 5e-10, 1.0, 1e-9));
    EXPECT_FALSE(within_tolerance(1.0 + 2e-9, 1.0, 1e-9));
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(within_tolerance(nan, 1.0, 1e-9));
    EXPECT_FALSE(norm_conserved(nan, 1e-9));
    EXPECT_FALSE(norm_conserved(std::numeric_limits<double>::infinity(),
                                1e-9));

    EXPECT_TRUE(norm_conserved(1.0, 0.0));
    EXPECT_TRUE(norm_conserved(1.0 - 1e-10, 1e-9));
    EXPECT_FALSE(norm_conserved(0.5, 1e-9));

    EXPECT_TRUE(kraus_sum_ok(1.0 + 1e-12, 1e-9));
    EXPECT_FALSE(kraus_sum_ok(0.9, 1e-9));

    EXPECT_TRUE(branch_weight_conserved(0.25, 0.25 + 1e-12, 1e-9));
    EXPECT_FALSE(branch_weight_conserved(0.25, 0.5, 1e-9));
}

TEST(IntegrityInvariants, IntegrityErrorIsTransientAndTagged)
{
    try {
        throw util::IntegrityError("digest mismatch");
    } catch (const util::TransientError& e) {  // tqsim-lint: allow(catch)
        EXPECT_STREQ(e.what(), "integrity: digest mismatch");
    }
}

// ---- Plan content digests --------------------------------------------------

TEST(PlanContentDigest, StableAcrossRecompilesAndSeparatesPlans)
{
    sim::Circuit a(4);
    a.h(0);
    a.cx(0, 1);
    a.rz(2, 0.3);
    a.fsim(2, 3, 0.5, 0.2);
    const std::vector<bool> mask(a.size(), false);

    const sim::CompiledSegment first =
        sim::CompiledSegment::compile(a, 0, a.size(), mask);
    const sim::CompiledSegment second =
        sim::CompiledSegment::compile(a, 0, a.size(), mask);
    EXPECT_EQ(service::plan_content_digest(first),
              service::plan_content_digest(second));

    // A one-ulp rotation-angle change flips matrix payload bits only.
    sim::Circuit b(4);
    b.h(0);
    b.cx(0, 1);
    b.rz(2, std::nextafter(0.3, 1.0));
    b.fsim(2, 3, 0.5, 0.2);
    const sim::CompiledSegment other =
        sim::CompiledSegment::compile(b, 0, b.size(), mask);
    EXPECT_NE(service::plan_content_digest(first),
              service::plan_content_digest(other));
}

// ---- state_digest() across backends / threads / fusion ---------------------

/** A circuit that exercises dense, diagonal, control-masked, and exchange
 *  routes on the sharded backend. */
sim::Circuit
digest_circuit(int num_qubits)
{
    sim::Circuit c(num_qubits, "digest");
    for (int rep = 0; rep < 2; ++rep) {
        for (int q = 0; q < num_qubits; ++q) {
            c.h(q);
            c.rz(q, 0.15 + 0.05 * q + 0.02 * rep);
        }
        for (int q = 0; q + 1 < num_qubits; ++q) {
            c.cx(q, q + 1);
        }
        c.cz(0, num_qubits - 1);
        c.fsim(1, num_qubits - 1, 0.4, 0.1);
    }
    return c;
}

/** Executes @p seg on a fresh root of @p backend and returns the in-place
 *  state digest, cross-checking it against digest_doubles over the
 *  canonical export and asserting norm conservation. */
std::uint64_t
run_and_digest(sim::StateBackend& backend, const sim::CompiledSegment& seg)
{
    std::unique_ptr<sim::StateArena> arena = backend.make_arena(true);
    std::unique_ptr<sim::BackendState> state = arena->make_root();
    std::unique_ptr<sim::PreparedSegment> prepared = backend.prepare(seg);
    for (std::size_t i = 0; i < seg.ops().size(); ++i) {
        backend.apply_op(*state, *prepared, i);
    }
    const std::uint64_t digest = backend.state_digest(*state);

    // state_digest() is defined as digest_doubles over the canonical
    // global-index-order amplitude array, computed in place.
    std::vector<sim::Complex> amps;
    backend.export_amplitudes(*state, &amps);
    EXPECT_EQ(digest,
              digest_doubles(reinterpret_cast<const double*>(amps.data()),
                             amps.size() * 2U));
    EXPECT_TRUE(util::integrity::norm_conserved(
        backend.norm_squared(*state), 1e-9));
    return digest;
}

TEST(StateDigestProperty, IdenticalAcrossBackendsThreadsAndFusionCaps)
{
    const int width = 8;
    const sim::Circuit circuit = digest_circuit(width);

    // Every gate carries a noise site, as in a noisy production run: the
    // compiler pins gates at gate granularity, so fusion caps cannot
    // reassociate amplitudes and the digest must be *identical* across the
    // whole configuration product (the cross-backend bit-identity
    // contract, certified one word at a time).
    const std::vector<bool> all_noisy(circuit.size(), true);

    std::uint64_t want = 0;
    bool have_want = false;
    for (const int fusion_cap : {1, 4}) {
        const sim::CompiledSegment seg = sim::CompiledSegment::compile(
            circuit, 0, circuit.size(), all_noisy,
            sim::FusionOptions{fusion_cap});
        for (const int threads : {1, 2, 8}) {
            ThreadGuard guard(threads);
            for (const int shards : {0, 2, 8}) {
                sim::BackendConfig cfg;
                if (shards > 0) {
                    cfg.kind = sim::BackendKind::kSharded;
                    cfg.num_shards = shards;
                }
                const std::unique_ptr<sim::StateBackend> backend =
                    core::make_state_backend(cfg, width);
                const std::uint64_t digest = run_and_digest(*backend, seg);
                if (!have_want) {
                    want = digest;
                    have_want = true;
                }
                EXPECT_EQ(digest, want)
                    << "fusion=" << fusion_cap << " threads=" << threads
                    << " shards=" << shards;
            }
        }
    }
}

TEST(StateDigestProperty, NoiseFreeFusedDigestIsBackendAndThreadInvariant)
{
    // Noise-free compilation lets clusters form; fused amplitudes may
    // differ from unfused ones at the reassociation scale, so digests are
    // compared only *within* a fusion cap — where backends and thread
    // counts must still land on one value.
    const int width = 8;
    const sim::Circuit circuit = digest_circuit(width);
    const std::vector<bool> no_noise(circuit.size(), false);

    for (const int fusion_cap : {1, 4}) {
        const sim::CompiledSegment seg = sim::CompiledSegment::compile(
            circuit, 0, circuit.size(), no_noise,
            sim::FusionOptions{fusion_cap});
        std::uint64_t want = 0;
        bool have_want = false;
        for (const int threads : {1, 2, 8}) {
            ThreadGuard guard(threads);
            for (const int shards : {0, 2, 8}) {
                sim::BackendConfig cfg;
                if (shards > 0) {
                    cfg.kind = sim::BackendKind::kSharded;
                    cfg.num_shards = shards;
                }
                const std::unique_ptr<sim::StateBackend> backend =
                    core::make_state_backend(cfg, width);
                const std::uint64_t digest = run_and_digest(*backend, seg);
                if (!have_want) {
                    want = digest;
                    have_want = true;
                }
                EXPECT_EQ(digest, want)
                    << "fusion=" << fusion_cap << " threads=" << threads
                    << " shards=" << shards;
            }
        }
    }
}

// ---- Online monitors inside execute_tree ------------------------------------

core::RunOptions
monitored_options(util::IntegrityLevel level)
{
    core::RunOptions opt;
    opt.strategy = core::PartitionStrategy::kManual;
    opt.manual_arities = {4, 4};
    opt.shots = 16;
    opt.collect_outcomes = true;
    opt.seed = 0xC0FFEE;
    opt.integrity.level = level;
    return opt;
}

TEST(IntegrityMonitors, FaultFreeRunsCheckAndNeverFail)
{
    ThreadGuard serial(1);
    sim::Circuit circuit = digest_circuit(10);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    const core::RunResult off =
        core::run(circuit, model, monitored_options(util::IntegrityLevel::kOff));
    EXPECT_EQ(off.stats.integrity_checks, 0u);
    EXPECT_EQ(off.stats.integrity_failures, 0u);

    for (const util::IntegrityLevel level :
         {util::IntegrityLevel::kBoundaries, util::IntegrityLevel::kSampled}) {
        const core::RunResult got =
            core::run(circuit, model, monitored_options(level));
        EXPECT_GT(got.stats.integrity_checks, 0u);
        EXPECT_EQ(got.stats.integrity_failures, 0u);
        // Monitoring observes, never perturbs: the run is bit-identical to
        // the unmonitored one.
        EXPECT_EQ(got.raw_outcomes, off.raw_outcomes);
        EXPECT_EQ(got.distribution.probabilities(),
                  off.distribution.probabilities());
        EXPECT_EQ(got.stats.nodes_simulated, off.stats.nodes_simulated);
    }
}

TEST(IntegrityMonitors, CheckCountsAreDeterministicAcrossRepeats)
{
    ThreadGuard serial(1);
    const sim::Circuit circuit = digest_circuit(8);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    const core::RunOptions opt =
        monitored_options(util::IntegrityLevel::kSampled);

    const core::RunResult first = core::run(circuit, model, opt);
    const core::RunResult second = core::run(circuit, model, opt);
    EXPECT_EQ(first.stats.integrity_checks, second.stats.integrity_checks);
    EXPECT_GT(first.stats.integrity_checks, 0u);
}

TEST(IntegrityMonitors, SampledChecksAlsoRunInParallelDispatch)
{
    ThreadGuard guard(4);
    const sim::Circuit circuit = digest_circuit(10);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    const core::RunResult got = core::run(
        circuit, model, monitored_options(util::IntegrityLevel::kSampled));
    EXPECT_GT(got.stats.integrity_checks, 0u);
    EXPECT_EQ(got.stats.integrity_failures, 0u);
}

}  // namespace
}  // namespace tqsim
