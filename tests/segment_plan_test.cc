// Segment compilation and snapshot pooling: lowering correctness, the
// compiled-vs-gate-at-a-time equivalence suite (amplitudes within 1e-12,
// identical RNG streams and measurement outcomes on random noisy circuits),
// the controlled-1q and diagonal-batch kernels, and SnapshotPool accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "core/tree_executor.h"
#include "noise/noise_model.h"
#include "noise/trajectory.h"
#include "sim/circuit.h"
#include "sim/gate.h"
#include "sim/gate_kernels.h"
#include "sim/segment_plan.h"
#include "sim/state_vector.h"
#include "util/rng.h"

namespace tqsim {
namespace {

using noise::NoiseModel;
using sim::Circuit;
using sim::CompiledSegment;
using sim::Complex;
using sim::Gate;
using sim::Matrix;
using sim::SegOpKind;
using sim::StateVector;

/** A mixed-gate-kind pseudo-random circuit (deterministic in @p seed). */
Circuit
random_circuit(int num_qubits, std::size_t gates, std::uint64_t seed)
{
    util::Rng rng(seed);
    Circuit c(num_qubits, "random");
    for (std::size_t i = 0; i < gates; ++i) {
        const int q = static_cast<int>(rng.uniform_u64(num_qubits));
        const int r = static_cast<int>(
            1 + rng.uniform_u64(static_cast<std::uint64_t>(num_qubits - 1)));
        const int q2 = (q + r) % num_qubits;
        const double a = rng.uniform() * 3.0;
        switch (rng.uniform_u64(12)) {
          case 0: c.h(q); break;
          case 1: c.rz(q, a); break;
          case 2: c.t(q); break;
          case 3: c.x(q); break;
          case 4: c.ry(q, a); break;
          case 5: c.s(q); break;
          case 6: c.cx(q, q2); break;
          case 7: c.cz(q, q2); break;
          case 8: c.cphase(q, q2, a); break;
          case 9: c.rzz(q, q2, a); break;
          case 10: c.swap(q, q2); break;
          default: c.fsim(q, q2, a, a * 0.5); break;
        }
    }
    return c;
}

std::vector<bool>
no_noise_mask(const Circuit& c)
{
    return std::vector<bool>(c.size(), false);
}

void
expect_amps_near(const StateVector& a, const StateVector& b, double tol)
{
    ASSERT_EQ(a.size(), b.size());
    for (sim::Index i = 0; i < a.size(); ++i) {
        ASSERT_NEAR(std::abs(a[i] - b[i]), 0.0, tol) << "amplitude " << i;
    }
}

// ---- Lowering ------------------------------------------------------------

TEST(CompiledSegment, IdealCompilationMatchesDirectExecution)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        const Circuit c = random_circuit(6, 80, seed);
        const CompiledSegment seg =
            CompiledSegment::compile(c, 0, c.size(), no_noise_mask(c));
        StateVector direct(6);
        c.apply_to(direct);
        StateVector compiled(6);
        seg.apply_ideal(compiled);
        expect_amps_near(direct, compiled, 1e-12);
        EXPECT_EQ(seg.stats().source_gates, c.size());
        EXPECT_EQ(seg.stats().noisy_ops, 0u);
        EXPECT_LT(seg.stats().ops, seg.stats().source_gates);
        EXPECT_GT(seg.stats().reduction(), 0.0);
    }
}

TEST(CompiledSegment, DiagonalRunCollapsesToOneOp)
{
    Circuit c(4);
    c.t(0).rz(1, 0.3).s(2).cz(0, 1).rzz(2, 3, 0.7).phase(3, 1.1).t(0);
    const CompiledSegment seg =
        CompiledSegment::compile(c, 0, c.size(), no_noise_mask(c));
    // The whole circuit is diagonal: one batch op (the two t(0) fold into
    // one fused term through fusion + merging).
    ASSERT_EQ(seg.stats().ops, 1u);
    EXPECT_EQ(seg.ops()[0].kind, SegOpKind::kDiagBatch);
    EXPECT_EQ(seg.stats().diag_batches, 1u);
    EXPECT_EQ(seg.ops()[0].source_gates, c.size());
    StateVector direct = StateVector(4);
    for (int q = 0; q < 4; ++q) {
        sim::apply_gate(direct, Gate::h(q));  // non-trivial amplitudes
    }
    StateVector compiled = direct;
    c.apply_to(direct);
    seg.apply_ideal(compiled);
    expect_amps_near(direct, compiled, 1e-12);
}

TEST(CompiledSegment, SourceGateCountsAreExact)
{
    for (std::uint64_t seed : {11u, 12u}) {
        const Circuit c = random_circuit(5, 60, seed);
        const CompiledSegment seg =
            CompiledSegment::compile(c, 0, c.size(), no_noise_mask(c));
        std::uint64_t total = 0;
        for (const sim::SegOp& op : seg.ops()) {
            total += op.source_gates;
        }
        EXPECT_EQ(total, c.size());
    }
}

TEST(CompiledSegment, ControlledStructureTakesFastPath)
{
    // A controlled-RY embedded as a dense 4x4, both control conventions.
    const double th = 0.9;
    const Matrix ry = Gate::ry(0, th).matrix();
    // Control on matrix bit 1 (second operand).
    const Matrix cu_hi = {1, 0, 0,     0,      //
                          0, 1, 0,     0,      //
                          0, 0, ry[0], ry[1],  //
                          0, 0, ry[2], ry[3]};
    Circuit c(3);
    c.append(Gate::unitary2q(0, 1, cu_hi, "cry"));
    const CompiledSegment seg =
        CompiledSegment::compile(c, 0, 1, no_noise_mask(c));
    ASSERT_EQ(seg.ops().size(), 1u);
    EXPECT_EQ(seg.ops()[0].kind, SegOpKind::kControlled1q);
    EXPECT_EQ(seg.ops()[0].q0, 1);  // control
    EXPECT_EQ(seg.ops()[0].q1, 0);  // target

    StateVector direct(3);
    for (int q = 0; q < 3; ++q) {
        sim::apply_gate(direct, Gate::h(q));
    }
    StateVector compiled = direct;
    sim::apply_2q_matrix(direct, 0, 1, cu_hi);
    seg.apply_ideal(compiled);
    expect_amps_near(direct, compiled, 1e-12);
}

TEST(GateKernels, ControlledOneQubitMatchesDense)
{
    const Matrix u = Gate::u3(0, 0.7, 0.2, 1.3).matrix();
    const Matrix cu = {1, 0, 0,    0,     //
                       0, 1, 0,    0,     //
                       0, 0, u[0], u[1],  //
                       0, 0, u[2], u[3]};
    for (auto [control, target] : {std::pair{2, 0}, std::pair{0, 3}}) {
        StateVector a(4);
        for (int q = 0; q < 4; ++q) {
            sim::apply_gate(a, Gate::h(q));
            sim::apply_gate(a, Gate::rz(q, 0.2 * q));
        }
        StateVector b = a;
        // Matrix basis: bit 0 = first operand (target), bit 1 = control.
        sim::apply_2q_matrix(a, target, control, cu);
        sim::apply_controlled_1q(b, control, target, u);
        expect_amps_near(a, b, 1e-12);
    }
}

TEST(GateKernels, DiagBatchMatchesSequentialApplication)
{
    util::Rng rng(99);
    StateVector a(5);
    for (int q = 0; q < 5; ++q) {
        sim::apply_gate(a, Gate::h(q));
    }
    StateVector b = a;
    std::vector<sim::DiagTerm> terms;
    for (int t = 0; t < 6; ++t) {
        sim::DiagTerm term;
        term.mask0 = sim::Index{1} << rng.uniform_u64(5);
        if (t % 2 == 0) {
            sim::Index other = sim::Index{1} << rng.uniform_u64(5);
            while (other == term.mask0) {
                other = sim::Index{1} << rng.uniform_u64(5);
            }
            if (other < term.mask0) {
                std::swap(other, term.mask0);
            }
            term.mask1 = other;
        }
        for (int k = 0; k < 4; ++k) {
            const double phi = rng.uniform() * 3.0;
            term.d[k] = {std::cos(phi), std::sin(phi)};
        }
        terms.push_back(term);
    }
    sim::apply_diag_batch(a, terms.data(), terms.size());
    for (const sim::DiagTerm& term : terms) {
        for (sim::Index i = 0; i < b.size(); ++i) {
            const int sel = ((i & term.mask0) != 0 ? 1 : 0) |
                            ((i & term.mask1) != 0 ? 2 : 0);
            b[i] *= term.d[sel];
        }
    }
    expect_amps_near(a, b, 1e-12);
}

TEST(GateKernels, DiagBatchFusedPassMatchesSequentialOnLargeState)
{
    // apply_diag_batch only dispatches to the fused single pass for
    // LLC-overflowing states; call the fused variant directly so the
    // masked-factor kernel is covered without allocating a 64 MiB state.
    const int n = 18;
    util::Rng rng(123);
    StateVector a(n);
    for (int q = 0; q < n; ++q) {
        sim::apply_gate(a, Gate::h(q));
    }
    StateVector b = a;
    std::vector<sim::DiagTerm> terms;
    for (int t = 0; t < 5; ++t) {
        sim::DiagTerm term;
        term.mask0 = sim::Index{1} << (3 * t);
        if (t % 2 == 1) {
            term.mask1 = sim::Index{1} << (3 * t + 1);
        }
        for (int k = 0; k < 4; ++k) {
            const double phi = rng.uniform() * 3.0;
            term.d[k] = {std::cos(phi), std::sin(phi)};
        }
        terms.push_back(term);
    }
    sim::apply_diag_batch_fused(a, terms.data(), terms.size());
    for (const sim::DiagTerm& term : terms) {
        for (sim::Index i = 0; i < b.size(); ++i) {
            const int sel = ((i & term.mask0) != 0 ? 1 : 0) |
                            ((i & term.mask1) != 0 ? 2 : 0);
            b[i] *= term.d[sel];
        }
    }
    expect_amps_near(a, b, 1e-12);
}

// ---- Cluster fusion lowering ---------------------------------------------

TEST(CompiledSegment, ClusterLowersToDenseKqWithSplit)
{
    // Two u3 layers bridged by a CX chain: cap 4 forms one 4-qubit
    // cluster lowered as a single gather/scatter op with a recorded
    // member split.
    Circuit c(4);
    for (int q = 0; q < 4; ++q) {
        c.u3(q, 0.1 + q, 0.2, 0.3);
    }
    c.cx(0, 1).cx(1, 2).cx(2, 3);
    for (int q = 0; q < 4; ++q) {
        c.u3(q, 0.4, 0.5 + q, 0.6);
    }
    sim::FusionOptions fusion;
    fusion.max_fused_qubits = 4;
    const CompiledSegment seg = CompiledSegment::compile(
        c, 0, c.size(), no_noise_mask(c), fusion);
    ASSERT_EQ(seg.ops().size(), 1u);
    const sim::SegOp& op = seg.ops()[0];
    EXPECT_EQ(op.kind, SegOpKind::kDenseKq);
    EXPECT_EQ(op.qubits.size(), 4u);
    EXPECT_EQ(op.source_gates, c.size());
    EXPECT_EQ(seg.stats().fused_gates_absorbed, c.size());
    EXPECT_EQ(seg.stats().fused_width_hist[4], 1u);
    EXPECT_FALSE(seg.cluster_split(op.cluster_index).empty());

    // The dense product and the member split both reproduce the circuit.
    StateVector direct(4);
    for (int q = 0; q < 4; ++q) {
        sim::apply_gate(direct, Gate::h(q));
    }
    StateVector compiled = direct;
    StateVector split = direct;
    c.apply_to(direct);
    seg.apply_ideal(compiled);
    for (const sim::SegOp& member : seg.cluster_split(op.cluster_index)) {
        sim::apply_seg_op(split, member);
    }
    expect_amps_near(direct, compiled, 1e-12);
    expect_amps_near(direct, split, 1e-12);
}

TEST(CompiledSegment, ClusterWidthFollowsFusionOptions)
{
    const Circuit c = random_circuit(6, 80, 17);
    for (int cap = 1; cap <= 5; ++cap) {
        sim::FusionOptions fusion;
        fusion.max_fused_qubits = cap;
        const CompiledSegment seg = CompiledSegment::compile(
            c, 0, c.size(), no_noise_mask(c), fusion);
        for (const sim::SegOp& op : seg.ops()) {
            if (op.kind == SegOpKind::kDenseKq) {
                EXPECT_LE(op.qubits.size(), static_cast<std::size_t>(cap));
                EXPECT_GE(op.qubits.size(), 2u);
            }
        }
        StateVector direct(6), compiled(6);
        c.apply_to(direct);
        seg.apply_ideal(compiled);
        expect_amps_near(direct, compiled, 1e-11);
    }
}

// ---- Noise-aware compilation --------------------------------------------

TEST(CompileSegment, NoiseMaskFollowsModel)
{
    const Circuit c = random_circuit(5, 50, 7);
    // Ideal model: nothing is noisy, everything fuses.
    const sim::CompiledSegment ideal =
        noise::compile_segment(c, 0, c.size(), NoiseModel::ideal());
    EXPECT_EQ(ideal.stats().noisy_ops, 0u);
    EXPECT_LT(ideal.stats().ops, c.size());
    // Sycamore: every gate carries channels — gate granularity throughout.
    const sim::CompiledSegment syc = noise::compile_segment(
        c, 0, c.size(), NoiseModel::sycamore_depolarizing());
    EXPECT_EQ(syc.stats().noisy_ops, c.size());
    EXPECT_EQ(syc.stats().ops, c.size());
    EXPECT_DOUBLE_EQ(syc.stats().reduction(), 0.0);
    // 2q-only noise: 1q runs between 2q gates still fuse.
    NoiseModel twoq_only;
    twoq_only.add_on_2q_gates(noise::Channel::depolarizing_2q(0.02));
    const sim::CompiledSegment partial =
        noise::compile_segment(c, 0, c.size(), twoq_only);
    EXPECT_EQ(partial.stats().noisy_ops, c.multi_qubit_gate_count());
    EXPECT_LT(partial.stats().ops, c.size());
}

/** Compiled and gate-at-a-time trajectories must consume identical RNG
 *  streams and agree on amplitudes to 1e-12. */
void
expect_trajectory_equivalence(const Circuit& c, const NoiseModel& model,
                              std::uint64_t seed,
                              const sim::FusionOptions& fusion = {})
{
    const sim::CompiledSegment seg =
        noise::compile_segment(c, 0, c.size(), model, fusion);
    StateVector legacy(c.num_qubits());
    StateVector compiled(c.num_qubits());
    util::Rng rng_legacy(seed);
    util::Rng rng_compiled(seed);
    noise::TrajectoryStats stats_legacy, stats_compiled;
    noise::run_trajectory(legacy, c, model, rng_legacy, &stats_legacy);
    noise::run_compiled_trajectory(compiled, seg, model, rng_compiled,
                                   &stats_compiled);
    expect_amps_near(legacy, compiled, 1e-12);
    EXPECT_EQ(stats_legacy.gates, stats_compiled.gates);
    EXPECT_EQ(stats_legacy.channel_applications,
              stats_compiled.channel_applications);
    EXPECT_EQ(stats_legacy.error_events, stats_compiled.error_events);
    // Same number of draws consumed: the streams are still in lockstep.
    EXPECT_EQ(rng_legacy.next_u64(), rng_compiled.next_u64());
}

TEST(CompiledTrajectory, EquivalentUnderDepolarizing)
{
    for (std::uint64_t seed : {21u, 22u, 23u}) {
        expect_trajectory_equivalence(
            random_circuit(5, 70, seed),
            NoiseModel::sycamore_depolarizing(0.01, 0.05), seed * 13);
    }
}

TEST(CompiledTrajectory, EquivalentUnderGeneralChannels)
{
    // Amplitude damping exercises norm-based Kraus selection plus the
    // per-operand channel loop (ccx included below).
    Circuit c = random_circuit(5, 40, 31);
    c.ccx(0, 1, 2).h(0).ccx(2, 3, 4);
    for (std::uint64_t seed : {41u, 42u}) {
        expect_trajectory_equivalence(
            c, NoiseModel::amplitude_damping_model(0.05), seed);
    }
}

TEST(CompiledTrajectory, EquivalentUnderTwoQubitOnlyNoise)
{
    // Fusion actually fires here; amplitudes may re-associate but RNG
    // draws and counters must match exactly.
    NoiseModel model;
    model.add_on_2q_gates(noise::Channel::depolarizing_2q(0.05));
    for (std::uint64_t seed : {51u, 52u, 53u}) {
        expect_trajectory_equivalence(random_circuit(6, 80, seed), model,
                                      seed * 7);
    }
}

TEST(CompiledTrajectory, EquivalentWithClustersAtEveryWidth)
{
    // 1q-gate-only noise leaves the 2q connectors noise-free, so genuine
    // multi-qubit clusters form *between* noise-insertion sites; the
    // compiled path must still consume the exact RNG stream of the
    // gate-at-a-time path at every fusion cap.
    NoiseModel oneq_only;
    oneq_only.add_on_1q_gates(noise::Channel::depolarizing_1q(0.05));
    for (int cap = 2; cap <= 5; ++cap) {
        sim::FusionOptions fusion;
        fusion.max_fused_qubits = cap;
        for (std::uint64_t seed : {61u, 62u}) {
            expect_trajectory_equivalence(random_circuit(6, 90, seed),
                                          oneq_only, seed * 5 + cap,
                                          fusion);
        }
    }
    // Readout-only noise: the whole segment is one noise-free span —
    // cluster fusion at full strength, zero channel draws.
    for (int cap = 2; cap <= 5; ++cap) {
        sim::FusionOptions fusion;
        fusion.max_fused_qubits = cap;
        expect_trajectory_equivalence(random_circuit(6, 90, 71),
                                      NoiseModel::readout_only(0.1),
                                      91 + cap, fusion);
    }
}

TEST(CompiledTrajectory, RejectsWidthMismatch)
{
    const Circuit c = random_circuit(5, 10, 3);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const sim::CompiledSegment seg = noise::compile_segment(c, 0, c.size(), m);
    EXPECT_EQ(seg.num_qubits(), 5);
    StateVector narrow(4);
    util::Rng rng(1);
    EXPECT_THROW(noise::run_compiled_trajectory(narrow, seg, m, rng),
                 std::invalid_argument);
}

// ---- Executor-level equivalence -----------------------------------------

TEST(CompiledExecutor, SameOutcomesAsLegacyExecutor)
{
    const Circuit c = random_circuit(5, 60, 61);
    const core::PartitionPlan plan{core::TreeStructure({8, 2, 2}),
                                   core::equal_boundaries(c.size(), 3)};
    for (const NoiseModel& model :
         {NoiseModel::sycamore_depolarizing(), NoiseModel::ideal(),
          NoiseModel::amplitude_damping_model(0.02)}) {
        core::ExecutorOptions compiled_opt;
        compiled_opt.collect_outcomes = true;
        compiled_opt.compile_segments = true;
        core::ExecutorOptions legacy_opt = compiled_opt;
        legacy_opt.compile_segments = false;
        const core::RunResult a = execute_tree(c, model, plan, compiled_opt);
        const core::RunResult b = execute_tree(c, model, plan, legacy_opt);
        EXPECT_EQ(a.raw_outcomes, b.raw_outcomes);
        EXPECT_EQ(a.stats.gate_applications, b.stats.gate_applications);
        EXPECT_EQ(a.stats.channel_applications,
                  b.stats.channel_applications);
        EXPECT_EQ(a.stats.error_events, b.stats.error_events);
        EXPECT_EQ(a.stats.state_copies, b.stats.state_copies);
    }
}

TEST(CompiledExecutor, FusedAndUnfusedRunsAreOutcomeIdentical)
{
    // Fusion must never change what a run samples: outcomes, RNG streams,
    // and deterministic counters are bit-identical between the widest and
    // the legacy (cap 1) plans; only the fused-op counters differ.
    // fsim chains guarantee clusters that pass the emission cost gate.
    Circuit c = random_circuit(6, 60, 29);
    for (int q = 0; q + 1 < 6; ++q) {
        c.fsim(q, q + 1, 0.2 + 0.1 * q, 0.05 * q);
    }
    const core::PartitionPlan plan{core::TreeStructure({6, 2, 2}),
                                   core::equal_boundaries(c.size(), 3)};
    NoiseModel oneq_only;
    oneq_only.add_on_1q_gates(noise::Channel::depolarizing_1q(0.03));
    for (const NoiseModel& model :
         {oneq_only, NoiseModel::readout_only(0.02)}) {
        core::ExecutorOptions fused_opt;
        fused_opt.collect_outcomes = true;
        fused_opt.backend.max_fused_qubits = 4;
        core::ExecutorOptions unfused_opt = fused_opt;
        unfused_opt.backend.max_fused_qubits = 1;
        const core::RunResult fused = execute_tree(c, model, plan, fused_opt);
        const core::RunResult unfused =
            execute_tree(c, model, plan, unfused_opt);
        EXPECT_EQ(fused.raw_outcomes, unfused.raw_outcomes);
        EXPECT_EQ(fused.stats.gate_applications,
                  unfused.stats.gate_applications);
        EXPECT_EQ(fused.stats.channel_applications,
                  unfused.stats.channel_applications);
        EXPECT_EQ(fused.stats.error_events, unfused.stats.error_events);
        EXPECT_EQ(fused.stats.state_copies, unfused.stats.state_copies);
        // The wide plan actually fused multi-qubit clusters; the legacy
        // plan only merged 1q runs.
        std::uint64_t fused_multi = 0;
        for (int w = 2; w <= 5; ++w) {
            fused_multi += fused.stats.fused_width_hist[w];
            EXPECT_EQ(unfused.stats.fused_width_hist[w], 0u);
        }
        EXPECT_GT(fused_multi, 0u);
        EXPECT_GE(fused.stats.fused_gates_absorbed,
                  unfused.stats.fused_gates_absorbed);
    }
}

// ---- Snapshot pool -------------------------------------------------------

TEST(SnapshotPool, LeaseCopiesAndRecycles)
{
    StateVector src(4);
    sim::apply_gate(src, Gate::h(0));
    sim::SnapshotPool pool;
    StateVector first = pool.lease_copy(src);  // cold: miss
    EXPECT_EQ(pool.misses(), 1u);
    EXPECT_EQ(pool.hits(), 0u);
    EXPECT_TRUE(first.approx_equal(src, 0.0));
    pool.release(std::move(first));
    EXPECT_EQ(pool.retained(), 1u);
    sim::apply_gate(src, Gate::x(2));
    StateVector second = pool.lease_copy(src);  // warm: hit
    EXPECT_EQ(pool.hits(), 1u);
    EXPECT_EQ(pool.retained(), 0u);
    EXPECT_TRUE(second.approx_equal(src, 0.0));
}

TEST(SnapshotPool, MovedFromReleaseIsDropped)
{
    StateVector src(3);
    sim::SnapshotPool pool;
    StateVector leased = pool.lease_copy(src);
    StateVector stolen = std::move(leased);
    pool.release(std::move(leased));  // moved-from: dropped, not retained
    EXPECT_EQ(pool.retained(), 0u);
    pool.release(std::move(stolen));
    EXPECT_EQ(pool.retained(), 1u);
}

TEST(SnapshotPool, MismatchedWidthBuffersAreDiscarded)
{
    sim::SnapshotPool pool;
    StateVector narrow(3);
    pool.release(pool.lease_copy(narrow));
    StateVector wide(5);
    StateVector leased = pool.lease_copy(wide);  // stale 3q buffer dropped
    EXPECT_EQ(leased.num_qubits(), 5);
    EXPECT_EQ(leased.size(), wide.size());
    EXPECT_EQ(pool.misses(), 2u);
}

}  // namespace
}  // namespace tqsim
