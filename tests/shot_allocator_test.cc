// Tests for shot allocation: Eq. 5 (first level), Eq. 6 (remaining levels),
// and the outcome top-up adjustment.

#include <gtest/gtest.h>

#include "core/shot_allocator.h"

namespace tqsim::core {
namespace {

TEST(IntegerKthRoot, ExactPowers)
{
    EXPECT_EQ(integer_kth_root(64, 6), 2u);
    EXPECT_EQ(integer_kth_root(64, 3), 4u);
    EXPECT_EQ(integer_kth_root(1000, 3), 10u);
    EXPECT_EQ(integer_kth_root(1, 5), 1u);
    EXPECT_EQ(integer_kth_root(0, 3), 0u);
}

TEST(IntegerKthRoot, FloorsBetweenPowers)
{
    EXPECT_EQ(integer_kth_root(63, 6), 1u);
    EXPECT_EQ(integer_kth_root(65, 6), 2u);
    EXPECT_EQ(integer_kth_root(999, 3), 9u);
    EXPECT_EQ(integer_kth_root(1023, 2), 31u);
}

TEST(IntegerKthRoot, KOneIsIdentity)
{
    EXPECT_EQ(integer_kth_root(12345, 1), 12345u);
    EXPECT_THROW(integer_kth_root(10, 0), std::invalid_argument);
}

TEST(IntegerKthRoot, LargeValuesNoOverflow)
{
    EXPECT_EQ(integer_kth_root(std::uint64_t{1} << 62, 62), 2u);
    EXPECT_EQ(integer_kth_root(~std::uint64_t{0}, 64), 1u);
}

TEST(FirstLevelArity, ReproducesPaperScaleValues)
{
    // QFT_14-style: ~6.5% first-subcircuit error, 32000 shots -> hundreds
    // of first-level nodes (paper example: 500).
    const std::uint64_t a0 = first_level_arity(1.96, 0.025, 0.065, 32000);
    EXPECT_GT(a0, 200u);
    EXPECT_LT(a0, 800u);
}

TEST(FirstLevelArity, GrowsWithErrorRate)
{
    const auto lo = first_level_arity(1.96, 0.025, 0.02, 32000);
    const auto hi = first_level_arity(1.96, 0.025, 0.30, 32000);
    EXPECT_LT(lo, hi);
}

TEST(MaxRemainingLevels, PowersOfTwo)
{
    // shots/a0 = 64 -> 6 levels of arity 2 (the QFT_14 shape).
    EXPECT_EQ(max_remaining_levels(32000, 500), 6u);
    EXPECT_EQ(max_remaining_levels(1000, 250), 2u);  // ratio 4 -> 2 levels
    EXPECT_EQ(max_remaining_levels(1000, 600), 0u);  // ratio < 2
    EXPECT_EQ(max_remaining_levels(8, 1), 3u);
    EXPECT_THROW(max_remaining_levels(8, 0), std::invalid_argument);
}

TEST(AllocateArities, PaperQpe9Structure)
{
    // A0=250, k=2, N=1000 -> (250,2,2) exactly (Fig. 17's DCP structure).
    EXPECT_EQ(allocate_arities(250, 2, 1000),
              (std::vector<std::uint64_t>{250, 2, 2}));
}

TEST(AllocateArities, PaperQft14Structure)
{
    EXPECT_EQ(allocate_arities(500, 6, 32000),
              (std::vector<std::uint64_t>{500, 2, 2, 2, 2, 2, 2}));
}

TEST(AllocateArities, TopUpReachesRequestedOutcomes)
{
    // A0=3, k=2, N=100: ar = floor((100/3)^(1/2)) = 5 -> 3*5*5 = 75 < 100;
    // A0 is raised to ceil(100/25) = 4: (4,5,5) = 100 exactly.
    const auto arities = allocate_arities(3, 2, 100);
    std::uint64_t prod = 1;
    for (auto a : arities) {
        prod *= a;
    }
    EXPECT_GE(prod, 100u);
    EXPECT_EQ(arities, (std::vector<std::uint64_t>{4, 5, 5}));
}

TEST(AllocateArities, RemainingArityAtLeastTwoEnforced)
{
    // shots/a0 < 2^k should throw (caller must shrink k first).
    EXPECT_THROW(allocate_arities(600, 2, 1000), std::invalid_argument);
}

TEST(AllocateArities, Validation)
{
    EXPECT_THROW(allocate_arities(0, 2, 100), std::invalid_argument);
    EXPECT_THROW(allocate_arities(10, 0, 100), std::invalid_argument);
}

TEST(AllocateArities, ProductNeverWildlyOvershoots)
{
    // The top-up loop should stop as soon as the target is reached: the
    // product stays within (max arity) factor of N.
    for (std::uint64_t n : {100ULL, 1000ULL, 32000ULL}) {
        for (std::uint64_t a0 : {2ULL, 10ULL, 50ULL}) {
            const std::size_t k = max_remaining_levels(n, a0);
            if (k == 0) {
                continue;
            }
            const auto arities = allocate_arities(a0, k, n);
            std::uint64_t prod = 1;
            for (auto a : arities) {
                prod *= a;
            }
            EXPECT_GE(prod, n);
            EXPECT_LE(prod, 4 * n) << "n=" << n << " a0=" << a0;
        }
    }
}

}  // namespace
}  // namespace tqsim::core
