// Tests for the single-qubit gate-fusion pass.

#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/qft.h"
#include "circuits/qv.h"
#include "sim/fusion.h"
#include "sim/gate_kernels.h"
#include "sim/state_vector.h"

namespace tqsim::sim {
namespace {

TEST(Fusion, MergesConsecutiveRuns)
{
    Circuit c(1);
    c.h(0).t(0).s(0).rz(0, 0.3);
    FusionStats stats;
    const Circuit fused = fuse_single_qubit_runs(c, &stats);
    EXPECT_EQ(fused.size(), 1u);
    EXPECT_EQ(stats.gates_before, 4u);
    EXPECT_EQ(stats.gates_after, 1u);
    EXPECT_EQ(stats.runs_fused, 1u);
    EXPECT_TRUE(fused.simulate_ideal().approx_equal(c.simulate_ideal(),
                                                    1e-10));
}

TEST(Fusion, MultiQubitGatesActAsBarriers)
{
    Circuit c(2);
    c.h(0).t(0).cx(0, 1).s(0).rz(0, 0.1);
    FusionStats stats;
    const Circuit fused = fuse_single_qubit_runs(c, &stats);
    // (h,t) fuse; cx stays; (s,rz) fuse.
    EXPECT_EQ(fused.size(), 3u);
    EXPECT_EQ(stats.runs_fused, 2u);
    EXPECT_TRUE(fused.simulate_ideal().approx_equal(c.simulate_ideal(),
                                                    1e-10));
}

TEST(Fusion, SingleGateRunsKeptVerbatim)
{
    Circuit c(2);
    c.h(0).cx(0, 1).h(1);
    const Circuit fused = fuse_single_qubit_runs(c);
    ASSERT_EQ(fused.size(), 3u);
    EXPECT_EQ(fused.gate(0).name(), "h");
    EXPECT_EQ(fused.gate(2).name(), "h");
}

TEST(Fusion, BarrierOnlyBlocksTouchedQubits)
{
    Circuit c(3);
    c.h(2).cx(0, 1).t(2);  // cx does not touch qubit 2
    FusionStats stats;
    const Circuit fused = fuse_single_qubit_runs(c, &stats);
    // (h,t) on qubit 2 fuse across the cx.
    EXPECT_EQ(fused.size(), 2u);
    EXPECT_EQ(stats.runs_fused, 1u);
    EXPECT_TRUE(fused.simulate_ideal().approx_equal(c.simulate_ideal(),
                                                    1e-10));
}

TEST(Fusion, PreservesIdealStateOnGeneratedCircuits)
{
    // QFT interleaves 1q and 2q gates so it barely fuses (gates_after <=
    // gates_before); QV's u3 pairs between CNOTs fuse substantially.
    for (const Circuit& c : {circuits::qft(6, true, true),
                             circuits::quantum_volume(5, 4, 3)}) {
        FusionStats stats;
        const Circuit fused = fuse_single_qubit_runs(c, &stats);
        EXPECT_LE(stats.gates_after, stats.gates_before) << c.name();
        EXPECT_TRUE(
            fused.simulate_ideal().approx_equal(c.simulate_ideal(), 1e-8))
            << c.name();
    }
}

TEST(Fusion, QvBlocksShrink)
{
    // QV: consecutive layers stack u3 runs between CNOT barriers.
    FusionStats stats;
    fuse_single_qubit_runs(circuits::quantum_volume(6, 6, 1), &stats);
    EXPECT_GT(stats.reduction(), 0.1);
    EXPECT_GT(stats.runs_fused, 0u);
}

TEST(Fusion, EmptyAndPureMultiQubitCircuits)
{
    Circuit empty(2);
    EXPECT_EQ(fuse_single_qubit_runs(empty).size(), 0u);
    Circuit cxs(2);
    cxs.cx(0, 1).cz(0, 1);
    FusionStats stats;
    EXPECT_EQ(fuse_single_qubit_runs(cxs, &stats).size(), 2u);
    EXPECT_EQ(stats.runs_fused, 0u);
}

// ---- qsim-style cluster fusion ---------------------------------------------

TEST(ClusterFusion, QvBlockFusesIntoOneTwoQubitOp)
{
    // The QV pattern: u3 pairs around a CX collapse into one dense 4x4.
    Circuit c(2);
    c.u3(0, 0.3, 0.1, 0.2).u3(1, 0.4, 0.2, 0.1).cx(0, 1).u3(0, 0.5, 0.3,
                                                            0.4);
    c.u3(1, 0.6, 0.4, 0.3);
    FusionOptions opt;
    opt.max_fused_qubits = 2;
    FusionStats stats;
    const Circuit fused = fuse_circuit(c, opt, &stats);
    ASSERT_EQ(fused.size(), 1u);
    EXPECT_EQ(fused.gate(0).arity(), 2);
    EXPECT_EQ(stats.runs_fused, 1u);
    EXPECT_EQ(stats.gates_absorbed, 5u);
    EXPECT_EQ(stats.width_hist[2], 1u);
    EXPECT_TRUE(fused.simulate_ideal().approx_equal(c.simulate_ideal(),
                                                    1e-10));
}

TEST(ClusterFusion, ConnectorsWidenClustersUpToTheCap)
{
    // A dense-2q chain: clusters grow to the cap, then restart.
    Circuit c(5);
    c.fsim(0, 1, 0.3, 0.1).fsim(1, 2, 0.4, 0.2).fsim(2, 3, 0.5, 0.3);
    c.fsim(3, 4, 0.6, 0.4);
    FusionOptions opt;
    opt.max_fused_qubits = 3;
    FusionStats stats;
    const Circuit fused = fuse_circuit(c, opt, &stats);
    ASSERT_EQ(fused.size(), 2u);
    EXPECT_EQ(fused.gate(0).arity(), 3);
    EXPECT_EQ(fused.gate(1).arity(), 3);
    EXPECT_EQ(stats.width_hist[3], 2u);
    EXPECT_TRUE(fused.simulate_ideal().approx_equal(c.simulate_ideal(),
                                                    1e-10));
}

TEST(ClusterFusion, CheapPermutationClustersAreNotFused)
{
    // A pure CX chain would collapse into dense k-qubit matvecs that cost
    // far more than the quarter-space swap passes they replace; the cost
    // gate must reject the cluster and replay the gates verbatim.
    Circuit c(4);
    c.cx(0, 1).cx(1, 2).cx(2, 3);
    FusionOptions opt;
    opt.max_fused_qubits = 4;
    FusionStats stats;
    const Circuit fused = fuse_circuit(c, opt, &stats);
    ASSERT_EQ(fused.size(), 3u);
    EXPECT_EQ(stats.runs_fused, 0u);
    for (std::size_t i = 0; i < fused.size(); ++i) {
        EXPECT_EQ(fused.gate(i).name(), "cx");
    }
}

TEST(ClusterFusion, EmittedWidthNeverExceedsTheCap)
{
    for (int cap = 1; cap <= 5; ++cap) {
        FusionOptions opt;
        opt.max_fused_qubits = cap;
        FusionStats stats;
        const Circuit fused =
            fuse_circuit(circuits::quantum_volume(8, 8, 11), opt, &stats);
        for (const Gate& g : fused.gates()) {
            EXPECT_LE(g.arity(), std::max(cap, 2))
                << "cap " << cap;  // pass-through 2q gates at cap 1
        }
        for (int w = cap + 1; w <= 5; ++w) {
            EXPECT_EQ(stats.width_hist[w], 0u) << "cap " << cap;
        }
    }
}

TEST(ClusterFusion, DiagonalTwoQubitGatesStayOutOfClusters)
{
    // cz between unrelated clusters passes through (the diag-batch path
    // is cheaper), flushing the clusters it touches...
    Circuit apart(3);
    apart.h(0).cz(0, 1).h(1);
    FusionOptions opt;
    opt.max_fused_qubits = 3;
    FusionStats stats;
    const Circuit fused_apart = fuse_circuit(apart, opt, &stats);
    EXPECT_EQ(fused_apart.size(), 3u);
    EXPECT_EQ(stats.runs_fused, 0u);
    EXPECT_EQ(fused_apart.gate(1).name(), "cz");
    // ...but is absorbed for free when its qubits already share a cluster.
    Circuit inside(2);
    inside.h(0).cx(0, 1).cz(0, 1).h(1);
    const Circuit fused_inside = fuse_circuit(inside, opt, &stats);
    ASSERT_EQ(fused_inside.size(), 1u);
    EXPECT_EQ(stats.gates_absorbed, 4u);
    EXPECT_TRUE(fused_inside.simulate_ideal().approx_equal(
        inside.simulate_ideal(), 1e-10));
}

TEST(ClusterFusion, ThreeQubitGatesActAsBarriers)
{
    Circuit c(3);
    c.h(0).fsim(0, 1, 0.3, 0.2).ccx(0, 1, 2).h(1);
    FusionOptions opt;
    opt.max_fused_qubits = 5;
    const Circuit fused = fuse_circuit(c, opt);
    // (h, fsim) fuse; ccx keeps its eighth-space kernel; h(1) trails.
    ASSERT_EQ(fused.size(), 3u);
    EXPECT_EQ(fused.gate(1).name(), "ccx");
    EXPECT_TRUE(fused.simulate_ideal().approx_equal(c.simulate_ideal(),
                                                    1e-10));
}

TEST(ClusterFusion, MembersReplayTheClusterProduct)
{
    // The recorded member list applied gate by gate must reproduce the
    // dense cluster product (the sharded backend's split path).
    const Circuit c = circuits::quantum_volume(6, 6, 3);
    FusionOptions opt;
    opt.max_fused_qubits = 4;
    const std::vector<FusedGate> fused = fuse_clusters(
        c.gates().data(), c.size(), c.num_qubits(), opt, nullptr);
    bool saw_cluster = false;
    StateVector via_cluster = c.simulate_ideal();  // warm non-trivial state
    StateVector via_members = via_cluster;
    for (const FusedGate& f : fused) {
        apply_gate(via_cluster, f.gate);
        if (f.is_cluster()) {
            saw_cluster = true;
            EXPECT_GE(f.members.size(), 2u);
            for (const Gate& m : f.members) {
                apply_gate(via_members, m);
            }
        } else {
            apply_gate(via_members, f.gate);
        }
    }
    EXPECT_TRUE(saw_cluster);
    EXPECT_TRUE(via_cluster.approx_equal(via_members, 1e-10));
}

TEST(ClusterFusion, PreservesIdealStateAtEveryWidth)
{
    for (int cap = 2; cap <= 5; ++cap) {
        FusionOptions opt;
        opt.max_fused_qubits = cap;
        for (const Circuit& c : {circuits::qft(6, true, true),
                                 circuits::quantum_volume(6, 5, cap)}) {
            FusionStats stats;
            const Circuit fused = fuse_circuit(c, opt, &stats);
            EXPECT_LE(stats.gates_after, stats.gates_before) << c.name();
            EXPECT_TRUE(fused.simulate_ideal().approx_equal(
                c.simulate_ideal(), 1e-8))
                << c.name() << " cap " << cap;
        }
    }
}

TEST(ClusterFusion, WidthOneOnlyFusesSingleQubitRuns)
{
    // Cap 1 = the legacy pass: every multi-qubit gate passes through
    // verbatim and fused products stay single-qubit.
    const Circuit c = circuits::quantum_volume(6, 6, 7);
    FusionOptions opt;
    opt.max_fused_qubits = 1;
    FusionStats stats;
    const Circuit fused = fuse_circuit(c, opt, &stats);
    EXPECT_EQ(stats.runs_fused, stats.width_hist[1]);
    EXPECT_GT(stats.width_hist[1], 0u);
    std::size_t multi_qubit_custom = 0;
    for (const Gate& g : fused.gates()) {
        if (g.kind() == GateKind::kUnitary2q ||
            g.kind() == GateKind::kUnitaryKq) {
            ++multi_qubit_custom;
        }
    }
    EXPECT_EQ(multi_qubit_custom, 0u);
    EXPECT_TRUE(fused.simulate_ideal().approx_equal(c.simulate_ideal(),
                                                    1e-8));
}

}  // namespace
}  // namespace tqsim::sim
