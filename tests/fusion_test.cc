// Tests for the single-qubit gate-fusion pass.

#include <gtest/gtest.h>

#include "circuits/qft.h"
#include "circuits/qv.h"
#include "sim/fusion.h"

namespace tqsim::sim {
namespace {

TEST(Fusion, MergesConsecutiveRuns)
{
    Circuit c(1);
    c.h(0).t(0).s(0).rz(0, 0.3);
    FusionStats stats;
    const Circuit fused = fuse_single_qubit_runs(c, &stats);
    EXPECT_EQ(fused.size(), 1u);
    EXPECT_EQ(stats.gates_before, 4u);
    EXPECT_EQ(stats.gates_after, 1u);
    EXPECT_EQ(stats.runs_fused, 1u);
    EXPECT_TRUE(fused.simulate_ideal().approx_equal(c.simulate_ideal(),
                                                    1e-10));
}

TEST(Fusion, MultiQubitGatesActAsBarriers)
{
    Circuit c(2);
    c.h(0).t(0).cx(0, 1).s(0).rz(0, 0.1);
    FusionStats stats;
    const Circuit fused = fuse_single_qubit_runs(c, &stats);
    // (h,t) fuse; cx stays; (s,rz) fuse.
    EXPECT_EQ(fused.size(), 3u);
    EXPECT_EQ(stats.runs_fused, 2u);
    EXPECT_TRUE(fused.simulate_ideal().approx_equal(c.simulate_ideal(),
                                                    1e-10));
}

TEST(Fusion, SingleGateRunsKeptVerbatim)
{
    Circuit c(2);
    c.h(0).cx(0, 1).h(1);
    const Circuit fused = fuse_single_qubit_runs(c);
    ASSERT_EQ(fused.size(), 3u);
    EXPECT_EQ(fused.gate(0).name(), "h");
    EXPECT_EQ(fused.gate(2).name(), "h");
}

TEST(Fusion, BarrierOnlyBlocksTouchedQubits)
{
    Circuit c(3);
    c.h(2).cx(0, 1).t(2);  // cx does not touch qubit 2
    FusionStats stats;
    const Circuit fused = fuse_single_qubit_runs(c, &stats);
    // (h,t) on qubit 2 fuse across the cx.
    EXPECT_EQ(fused.size(), 2u);
    EXPECT_EQ(stats.runs_fused, 1u);
    EXPECT_TRUE(fused.simulate_ideal().approx_equal(c.simulate_ideal(),
                                                    1e-10));
}

TEST(Fusion, PreservesIdealStateOnGeneratedCircuits)
{
    // QFT interleaves 1q and 2q gates so it barely fuses (gates_after <=
    // gates_before); QV's u3 pairs between CNOTs fuse substantially.
    for (const Circuit& c : {circuits::qft(6, true, true),
                             circuits::quantum_volume(5, 4, 3)}) {
        FusionStats stats;
        const Circuit fused = fuse_single_qubit_runs(c, &stats);
        EXPECT_LE(stats.gates_after, stats.gates_before) << c.name();
        EXPECT_TRUE(
            fused.simulate_ideal().approx_equal(c.simulate_ideal(), 1e-8))
            << c.name();
    }
}

TEST(Fusion, QvBlocksShrink)
{
    // QV: consecutive layers stack u3 runs between CNOT barriers.
    FusionStats stats;
    fuse_single_qubit_runs(circuits::quantum_volume(6, 6, 1), &stats);
    EXPECT_GT(stats.reduction(), 0.1);
    EXPECT_GT(stats.runs_fused, 0u);
}

TEST(Fusion, EmptyAndPureMultiQubitCircuits)
{
    Circuit empty(2);
    EXPECT_EQ(fuse_single_qubit_runs(empty).size(), 0u);
    Circuit cxs(2);
    cxs.cx(0, 1).cz(0, 1);
    FusionStats stats;
    EXPECT_EQ(fuse_single_qubit_runs(cxs, &stats).size(), 2u);
    EXPECT_EQ(stats.runs_fused, 0u);
}

}  // namespace
}  // namespace tqsim::sim
