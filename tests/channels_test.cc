// Unit and property tests for Kraus sets and the paper's error channels.

#include <gtest/gtest.h>

#include <cmath>

#include "noise/channels.h"
#include "noise/kraus.h"
#include "sim/gate.h"

namespace tqsim::noise {
namespace {

using sim::Complex;
using sim::Matrix;

// ---- KrausSet ----------------------------------------------------------------

TEST(KrausSet, AcceptsCompleteSet)
{
    const Matrix k0 = {std::sqrt(0.75), 0, 0, std::sqrt(0.75)};
    const Matrix k1 = {0, std::sqrt(0.25), std::sqrt(0.25), 0};
    const KrausSet ks(1, {k0, k1});
    EXPECT_EQ(ks.size(), 2u);
    EXPECT_TRUE(ks.is_complete());
    EXPECT_TRUE(ks.is_unitary_mixture());
}

TEST(KrausSet, RejectsIncompleteSet)
{
    const Matrix k0 = {0.5, 0, 0, 0.5};
    EXPECT_THROW(KrausSet(1, {k0}), std::invalid_argument);
}

TEST(KrausSet, RejectsWrongDimension)
{
    EXPECT_THROW(KrausSet(2, {Matrix{1, 0, 0, 1}}), std::invalid_argument);
    EXPECT_THROW(KrausSet(3, {Matrix(64, Complex{0, 0})}),
                 std::invalid_argument);
    EXPECT_THROW(KrausSet(1, {}), std::invalid_argument);
}

TEST(KrausSet, AmplitudeDampingIsNotUnitaryMixture)
{
    const double g = 0.2;
    const Matrix k0 = {1, 0, 0, std::sqrt(1 - g)};
    const Matrix k1 = {0, std::sqrt(g), 0, 0};
    const KrausSet ks(1, {k0, k1});
    EXPECT_FALSE(ks.is_unitary_mixture());
}

TEST(KrausSet, MixtureProbabilitiesSumToOne)
{
    const Channel dc = Channel::depolarizing_1q(0.3);
    const auto probs = dc.kraus().mixture_probabilities();
    double sum = 0.0;
    for (double p : probs) {
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(probs[0], 0.7, 1e-12);
    EXPECT_NEAR(probs[1], 0.1, 1e-12);
}

TEST(Kron, ProducesExpectedBlocks)
{
    const Matrix x = {0, 1, 1, 0};
    const Matrix i = {1, 0, 0, 1};
    // x (x) i: basis |b1 b0>, b0 from the second factor.
    const Matrix m = kron(x, 2, i, 2);
    // X on the high bit: |00> -> |10> means column 0 -> row 2.
    EXPECT_EQ(m[2 * 4 + 0], Complex(1, 0));
    EXPECT_EQ(m[3 * 4 + 1], Complex(1, 0));
    EXPECT_EQ(m[0 * 4 + 2], Complex(1, 0));
}

// ---- Channel factories (parameterized completeness) -----------------------------

struct ChannelCase
{
    std::string label;
    Channel channel;
};

std::vector<ChannelCase>
all_channels()
{
    std::vector<ChannelCase> cases;
    for (double p : {0.0, 0.001, 0.05, 0.5, 1.0}) {
        cases.push_back({"depol1q_" + std::to_string(p),
                         Channel::depolarizing_1q(p)});
        cases.push_back({"depol2q_" + std::to_string(p),
                         Channel::depolarizing_2q(p)});
        cases.push_back({"ad_" + std::to_string(p),
                         Channel::amplitude_damping(p)});
        cases.push_back({"pd_" + std::to_string(p),
                         Channel::phase_damping(p)});
        cases.push_back({"bitflip_" + std::to_string(p),
                         Channel::bit_flip(p)});
        cases.push_back({"phaseflip_" + std::to_string(p),
                         Channel::phase_flip(p)});
    }
    cases.push_back({"thermal_short",
                     Channel::thermal_relaxation(25000.0, 30000.0, 35.0)});
    cases.push_back({"thermal_long",
                     Channel::thermal_relaxation(25000.0, 30000.0, 500.0)});
    cases.push_back({"thermal_t2_eq_2t1",
                     Channel::thermal_relaxation(100.0, 200.0, 50.0)});
    return cases;
}

class AllChannelsTest : public ::testing::TestWithParam<ChannelCase>
{
};

TEST_P(AllChannelsTest, KrausCompletenessHolds)
{
    EXPECT_TRUE(GetParam().channel.kraus().is_complete(1e-9))
        << GetParam().label;
}

TEST_P(AllChannelsTest, NominalErrorRateInRange)
{
    const double e = GetParam().channel.nominal_error_rate();
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
}

TEST_P(AllChannelsTest, MixtureFlagConsistentWithKraus)
{
    const Channel& c = GetParam().channel;
    EXPECT_EQ(c.is_unitary_mixture(), c.kraus().is_unitary_mixture());
    if (c.is_unitary_mixture()) {
        EXPECT_EQ(c.mixture_probabilities().size(), c.kraus().size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Factories, AllChannelsTest, ::testing::ValuesIn(all_channels()),
    [](const ::testing::TestParamInfo<ChannelCase>& info) {
        std::string label = info.param.label;
        for (char& ch : label) {
            if (ch == '.') {
                ch = '_';
            }
        }
        return label;
    });

// ---- Channel-specific behaviour -------------------------------------------------

TEST(Channels, Depolarizing1qHasFourOps)
{
    EXPECT_EQ(Channel::depolarizing_1q(0.1).kraus().size(), 4u);
    EXPECT_EQ(Channel::depolarizing_1q(0.1).arity(), 1);
}

TEST(Channels, Depolarizing2qHasSixteenOps)
{
    EXPECT_EQ(Channel::depolarizing_2q(0.1).kraus().size(), 16u);
    EXPECT_EQ(Channel::depolarizing_2q(0.1).arity(), 2);
}

TEST(Channels, DepolarizingNominalRateIsP)
{
    EXPECT_DOUBLE_EQ(Channel::depolarizing_1q(0.015).nominal_error_rate(),
                     0.015);
}

TEST(Channels, AmplitudeDampingKrausForm)
{
    const Channel ad = Channel::amplitude_damping(0.36);
    const Matrix& k1 = ad.kraus().op(1);
    EXPECT_NEAR(k1[1].real(), 0.6, 1e-12);  // sqrt(0.36) in position (0,1)
    EXPECT_NEAR(std::abs(k1[0]) + std::abs(k1[2]) + std::abs(k1[3]), 0.0,
                1e-12);
}

TEST(Channels, ThermalRelaxationRejectsInvalidTimes)
{
    EXPECT_THROW(Channel::thermal_relaxation(-1.0, 1.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(Channel::thermal_relaxation(1.0, 2.5, 1.0),
                 std::invalid_argument);  // t2 > 2*t1
}

TEST(Channels, ThermalRelaxationLongerGateIsNoisier)
{
    const Channel fast = Channel::thermal_relaxation(25000.0, 30000.0, 35.0);
    const Channel slow = Channel::thermal_relaxation(25000.0, 30000.0, 350.0);
    EXPECT_LT(fast.nominal_error_rate(), slow.nominal_error_rate());
}

TEST(Channels, RejectsOutOfRangeProbability)
{
    EXPECT_THROW(Channel::depolarizing_1q(-0.1), std::invalid_argument);
    EXPECT_THROW(Channel::depolarizing_1q(1.1), std::invalid_argument);
    EXPECT_THROW(Channel::amplitude_damping(2.0), std::invalid_argument);
}

TEST(Channels, NamesAreDescriptive)
{
    EXPECT_EQ(Channel::depolarizing_1q(0.001).name(), "depol1q(0.001)");
    EXPECT_NE(Channel::thermal_relaxation(100.0, 150.0, 10.0).name().find(
                  "thermal"),
              std::string::npos);
}

}  // namespace
}  // namespace tqsim::noise
