// Tests for quantum-trajectory noise execution, including the ensemble
// convergence property: averaged trajectories reproduce the exact
// density-matrix channel output (paper Sec. 2.4.1).

#include <gtest/gtest.h>

#include <cmath>

#include "dm/dm_simulator.h"
#include "metrics/distribution.h"
#include "metrics/fidelity.h"
#include "noise/trajectory.h"
#include "sim/gate_kernels.h"
#include "sim/sampler.h"
#include "util/rng.h"

namespace tqsim::noise {
namespace {

using metrics::Distribution;
using sim::Circuit;
using sim::Gate;
using sim::StateVector;

TEST(Trajectory, NoNoiseMatchesIdealExactly)
{
    Circuit c(3);
    c.h(0).cx(0, 1).t(2).cx(1, 2);
    StateVector traj(3);
    util::Rng rng(7);
    run_trajectory(traj, c, NoiseModel::ideal(), rng);
    EXPECT_TRUE(traj.approx_equal(c.simulate_ideal(), 1e-12));
}

TEST(Trajectory, StatsCountGatesAndChannels)
{
    Circuit c(2);
    c.h(0).cx(0, 1).x(1);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    StateVector s(2);
    util::Rng rng(7);
    TrajectoryStats stats;
    run_trajectory(s, c, m, rng, &stats);
    EXPECT_EQ(stats.gates, 3u);
    EXPECT_EQ(stats.channel_applications, 3u);  // 2x 1q + 1x 2q
}

TEST(Trajectory, StateStaysNormalized)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2).rz(0, 0.3).x(2);
    NoiseModel m;
    m.add_on_1q_gates(Channel::amplitude_damping(0.3));
    m.add_on_2q_gates(Channel::depolarizing_2q(0.3));
    util::Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        StateVector s(3);
        run_trajectory(s, c, m, rng);
        EXPECT_NEAR(s.norm_squared(), 1.0, 1e-9);
    }
}

TEST(Trajectory, DepolarizingErrorFrequencyMatchesP)
{
    // With p = 0.2 on a single repeated 1q gate, ~20% of applications pick a
    // non-identity Pauli.
    Circuit c(1);
    for (int i = 0; i < 50; ++i) {
        c.h(0);
    }
    NoiseModel m;
    m.add_on_1q_gates(Channel::depolarizing_1q(0.2));
    TrajectoryStats stats;
    util::Rng rng(13);
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        StateVector s(1);
        run_trajectory(s, c, m, rng, &stats);
    }
    const double rate = static_cast<double>(stats.error_events) /
                        static_cast<double>(stats.channel_applications);
    EXPECT_NEAR(rate, 0.2, 0.01);
}

TEST(Trajectory, ApplyChannelValidatesArity)
{
    StateVector s(2);
    util::Rng rng(1);
    EXPECT_THROW(
        apply_channel(s, Channel::depolarizing_2q(0.1), {0}, rng),
        std::invalid_argument);
    EXPECT_THROW(
        apply_channel(s, Channel::depolarizing_1q(0.1), {0, 1}, rng),
        std::invalid_argument);
}

TEST(Trajectory, WidthMismatchThrows)
{
    Circuit c(3);
    c.h(0);
    StateVector s(2);
    util::Rng rng(1);
    EXPECT_THROW(run_trajectory(s, c, NoiseModel::ideal(), rng),
                 std::invalid_argument);
}

/**
 * Ensemble property: for channel E and circuit C, the trajectory average of
 * outcome distributions converges to the exact density-matrix distribution.
 */
void
expect_ensemble_matches_dm(const Circuit& circuit, const NoiseModel& model,
                           int trajectories, double tol, std::uint64_t seed)
{
    // Exact reference.
    const Distribution exact = dm::dm_output_distribution(circuit, model);
    // Trajectory ensemble: average the *exact per-trajectory distributions*
    // (not sampled outcomes) to isolate channel-sampling convergence.
    Distribution ensemble(circuit.num_qubits());
    util::Rng rng(seed);
    for (int t = 0; t < trajectories; ++t) {
        StateVector s(circuit.num_qubits());
        util::Rng traj_rng = rng.split(0, t);
        run_trajectory(s, circuit, model, traj_rng);
        const auto probs = s.probabilities();
        for (std::size_t i = 0; i < probs.size(); ++i) {
            ensemble[i] += probs[i];
        }
    }
    ensemble.normalize();
    EXPECT_LT(metrics::total_variation_distance(ensemble, exact), tol)
        << "model=" << model.description();
}

TEST(EnsembleConvergence, Depolarizing1q)
{
    Circuit c(2);
    c.h(0).cx(0, 1).x(1).h(1);
    NoiseModel m;
    m.add_on_1q_gates(Channel::depolarizing_1q(0.15));
    expect_ensemble_matches_dm(c, m, 4000, 0.03, 101);
}

TEST(EnsembleConvergence, Depolarizing2q)
{
    Circuit c(2);
    c.h(0).cx(0, 1).cx(0, 1);
    NoiseModel m;
    m.add_on_2q_gates(Channel::depolarizing_2q(0.25));
    expect_ensemble_matches_dm(c, m, 4000, 0.03, 102);
}

TEST(EnsembleConvergence, AmplitudeDamping)
{
    // Norm-based Kraus selection must reproduce the exact AD channel.
    Circuit c(2);
    c.h(0).cx(0, 1).x(0);
    NoiseModel m;
    m.add_on_1q_gates(Channel::amplitude_damping(0.3));
    m.add_on_2q_gates(Channel::amplitude_damping(0.3));
    expect_ensemble_matches_dm(c, m, 4000, 0.03, 103);
}

TEST(EnsembleConvergence, PhaseDamping)
{
    Circuit c(2);
    c.h(0).h(1).cx(0, 1).h(0);
    NoiseModel m;
    m.add_on_1q_gates(Channel::phase_damping(0.4));
    expect_ensemble_matches_dm(c, m, 4000, 0.03, 104);
}

TEST(EnsembleConvergence, ThermalRelaxation)
{
    Circuit c(2);
    c.h(0).cx(0, 1).x(1);
    NoiseModel m;
    m.add_on_1q_gates(Channel::thermal_relaxation(100.0, 120.0, 30.0));
    m.add_on_2q_gates(Channel::thermal_relaxation(100.0, 120.0, 60.0));
    expect_ensemble_matches_dm(c, m, 4000, 0.03, 105);
}

TEST(Readout, FlipProbabilityZeroIsIdentity)
{
    util::Rng rng(5);
    EXPECT_EQ(apply_readout_error(5, 3, 0.0, rng), 5u);
}

TEST(Readout, FlipProbabilityOneFlipsAllBits)
{
    util::Rng rng(5);
    EXPECT_EQ(apply_readout_error(0b101, 3, 1.0, rng), 0b010u);
}

TEST(Readout, FlipFrequencyMatchesProbability)
{
    util::Rng rng(6);
    const int trials = 20000;
    int flips = 0;
    for (int t = 0; t < trials; ++t) {
        flips += static_cast<int>(apply_readout_error(0, 1, 0.1, rng));
    }
    EXPECT_NEAR(static_cast<double>(flips) / trials, 0.1, 0.01);
}

}  // namespace
}  // namespace tqsim::noise
