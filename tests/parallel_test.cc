// Tests for the persistent worker pool: range coverage, the tiny-loop
// serial fast path (regression: the legacy implementation spawned threads
// for any total), exception propagation to the caller (regression: a worker
// exception used to hit std::terminate), pool resizing, nested-region
// suppression, and the thread-count-independent blocked reductions.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/parallel.h"

namespace tqsim::sim {
namespace {

/** Restores a single-threaded pool when a test scope ends. */
class ThreadGuard
{
  public:
    explicit ThreadGuard(int n) { set_num_threads(n); }
    ~ThreadGuard() { set_num_threads(1); }
};

TEST(Parallel, DefaultsToSingleThread)
{
    ThreadGuard guard(1);
    EXPECT_EQ(num_threads(), 1);
}

TEST(Parallel, SetNumThreadsValidates)
{
    ThreadGuard guard(1);
    EXPECT_THROW(set_num_threads(0), std::invalid_argument);
    EXPECT_THROW(set_num_threads(-3), std::invalid_argument);
    set_num_threads(4);
    EXPECT_EQ(num_threads(), 4);
}

TEST(Parallel, CoversRangeExactlyOnce)
{
    ThreadGuard guard(4);
    const std::uint64_t total = std::uint64_t{1} << 17;
    std::vector<int> touched(total, 0);
    parallel_for(total, [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) {
            ++touched[i];
        }
    });
    for (std::uint64_t i = 0; i < total; ++i) {
        ASSERT_EQ(touched[i], 1) << "index " << i;
    }
}

TEST(Parallel, TinyTotalRunsInlineOnCaller)
{
    ThreadGuard guard(8);
    const std::thread::id caller = std::this_thread::get_id();
    std::atomic<int> calls{0};
    std::atomic<bool> on_caller{true};
    parallel_for(100, [&](std::uint64_t begin, std::uint64_t end) {
        ++calls;
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 100u);
        if (std::this_thread::get_id() != caller) {
            on_caller = false;
        }
    });
    // Below the grain threshold: exactly one inline call, no pool dispatch.
    EXPECT_EQ(calls.load(), 1);
    EXPECT_TRUE(on_caller.load());
}

TEST(Parallel, ZeroTotalNeverInvokesBody)
{
    ThreadGuard guard(4);
    std::atomic<int> calls{0};
    parallel_for(0, [&](std::uint64_t, std::uint64_t) { ++calls; });
    parallel_for_each(0, [&](std::uint64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, WorkerExceptionPropagatesToCaller)
{
    ThreadGuard guard(4);
    const std::uint64_t total = std::uint64_t{1} << 17;
    EXPECT_THROW(
        parallel_for(total,
                     [&](std::uint64_t begin, std::uint64_t) {
                         if (begin == 0) {
                             throw std::runtime_error("kernel failure");
                         }
                     }),
        std::runtime_error);
    // The pool must survive a failed region and run the next one cleanly.
    std::atomic<std::uint64_t> sum{0};
    parallel_for(total, [&](std::uint64_t begin, std::uint64_t end) {
        sum += end - begin;
    });
    EXPECT_EQ(sum.load(), total);
}

TEST(Parallel, SerialPathExceptionAlsoPropagates)
{
    ThreadGuard guard(1);
    EXPECT_THROW(parallel_for(16, [](std::uint64_t, std::uint64_t) {
                     throw std::runtime_error("serial failure");
                 }),
                 std::runtime_error);
}

TEST(Parallel, ForEachClaimsEveryIndex)
{
    ThreadGuard guard(4);
    const std::uint64_t n = 100;
    std::vector<int> touched(n, 0);
    parallel_for_each(n, [&](std::uint64_t i) { ++touched[i]; });
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ(touched[i], 1) << "index " << i;
    }
}

TEST(Parallel, ForEachExceptionPropagates)
{
    ThreadGuard guard(4);
    EXPECT_THROW(parallel_for_each(64,
                                   [&](std::uint64_t i) {
                                       if (i == 13) {
                                           throw std::out_of_range("task 13");
                                       }
                                   }),
                 std::out_of_range);
}

TEST(Parallel, PoolResizesAcrossCalls)
{
    ThreadGuard guard(1);
    const std::uint64_t total = std::uint64_t{1} << 16;
    for (int threads : {2, 4, 8, 3, 1, 5}) {
        set_num_threads(threads);
        std::atomic<std::uint64_t> sum{0};
        parallel_for(total, [&](std::uint64_t begin, std::uint64_t end) {
            sum += end - begin;
        });
        EXPECT_EQ(sum.load(), total) << "threads=" << threads;
    }
}

TEST(Parallel, NestedRegionRunsInlineWithoutDeadlock)
{
    ThreadGuard guard(4);
    const std::uint64_t outer = std::uint64_t{1} << 16;
    const std::uint64_t inner = std::uint64_t{1} << 16;
    std::atomic<std::uint64_t> inner_elements{0};
    std::atomic<bool> nested_was_inline{true};
    parallel_for(outer, [&](std::uint64_t begin, std::uint64_t end) {
        EXPECT_TRUE(in_parallel_region());
        std::atomic<int> inner_calls{0};
        parallel_for(inner, [&](std::uint64_t b, std::uint64_t e) {
            ++inner_calls;
            inner_elements += e - b;
        });
        // A nested region must degrade to one serial call.
        if (inner_calls.load() != 1) {
            nested_was_inline = false;
        }
        (void)begin;
        (void)end;
    });
    EXPECT_TRUE(nested_was_inline.load());
    EXPECT_GT(inner_elements.load(), 0u);
    EXPECT_FALSE(in_parallel_region());
}

TEST(Parallel, BlockedSumIsIdenticalAtAnyThreadCount)
{
    ThreadGuard guard(1);
    const std::uint64_t total = (std::uint64_t{1} << 17) + 12345;
    std::vector<double> values(total);
    for (std::uint64_t i = 0; i < total; ++i) {
        values[i] = std::sin(0.001 * static_cast<double>(i)) * 1e-3;
    }
    const auto body = [&](std::uint64_t begin, std::uint64_t end) {
        double s = 0.0;
        for (std::uint64_t i = begin; i < end; ++i) {
            s += values[i];
        }
        return s;
    };
    set_num_threads(1);
    const double s1 = parallel_sum(total, body);
    set_num_threads(2);
    const double s2 = parallel_sum(total, body);
    set_num_threads(8);
    const double s8 = parallel_sum(total, body);
    // Bitwise equality: the block decomposition is thread-count independent.
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s8);
}

TEST(Parallel, BlockDecompositionCoversTotal)
{
    ThreadGuard guard(4);
    const std::uint64_t total = 3 * kReduceBlock + 7;
    EXPECT_EQ(num_reduce_blocks(total), 4u);
    EXPECT_EQ(num_reduce_blocks(0), 0u);
    std::vector<int> touched(total, 0);
    parallel_blocks(total, [&](std::uint64_t blk, std::uint64_t begin,
                               std::uint64_t end) {
        EXPECT_EQ(begin, blk * kReduceBlock);
        EXPECT_LE(end, total);
        for (std::uint64_t i = begin; i < end; ++i) {
            ++touched[i];
        }
    });
    for (std::uint64_t i = 0; i < total; ++i) {
        ASSERT_EQ(touched[i], 1) << "index " << i;
    }
}

}  // namespace
}  // namespace tqsim::sim
