// Cross-thread-count determinism: the same seed must produce bit-identical
// sampled distributions, raw outcomes, and deterministic ExecStats counters
// at 1, 2, and 8 threads, for the tree executor, the baseline runner, and
// the trajectory sampler (whose threaded kernels and blocked reductions are
// exercised directly on a pool-sized state).

#include <gtest/gtest.h>

#include <vector>

#include "circuits/qft.h"
#include "core/baseline_runner.h"
#include "core/partitioner.h"
#include "core/tree_executor.h"
#include "noise/noise_model.h"
#include "noise/trajectory.h"
#include "sim/parallel.h"
#include "sim/sampler.h"
#include "sim/state_vector.h"
#include "util/rng.h"

namespace tqsim::core {
namespace {

using noise::NoiseModel;
using sim::Circuit;
using sim::StateVector;

/** Restores a single-threaded pool when a test scope ends. */
class ThreadGuard
{
  public:
    explicit ThreadGuard(int n) { sim::set_num_threads(n); }
    ~ThreadGuard() { sim::set_num_threads(1); }
};

Circuit
test_circuit(int num_qubits)
{
    Circuit c(num_qubits, "determinism");
    for (int rep = 0; rep < 4; ++rep) {
        for (int q = 0; q < num_qubits; ++q) {
            c.h(q);
            c.rz(q, 0.25 + 0.05 * q);
        }
        for (int q = 0; q + 1 < num_qubits; ++q) {
            c.cx(q, q + 1);
        }
    }
    return c;
}

/** Asserts every deterministic field of two runs matches exactly.  The peak
 *  and timing fields are intentionally excluded: parallel runs keep one
 *  live subtree per busy worker, so peaks legitimately grow with threads. */
void
expect_identical_runs(const RunResult& a, const RunResult& b)
{
    ASSERT_EQ(a.distribution.size(), b.distribution.size());
    for (std::size_t i = 0; i < a.distribution.size(); ++i) {
        ASSERT_EQ(a.distribution[i], b.distribution[i]) << "bin " << i;
    }
    ASSERT_EQ(a.raw_outcomes, b.raw_outcomes);
    EXPECT_EQ(a.stats.gate_applications, b.stats.gate_applications);
    EXPECT_EQ(a.stats.channel_applications, b.stats.channel_applications);
    EXPECT_EQ(a.stats.error_events, b.stats.error_events);
    EXPECT_EQ(a.stats.state_copies, b.stats.state_copies);
    EXPECT_EQ(a.stats.bytes_copied, b.stats.bytes_copied);
    EXPECT_EQ(a.stats.nodes_simulated, b.stats.nodes_simulated);
    EXPECT_EQ(a.stats.outcomes, b.stats.outcomes);
}

RunResult
run_tree_at(int threads, const Circuit& c, const NoiseModel& m,
            const PartitionPlan& plan, bool reuse_last_child = true)
{
    ThreadGuard guard(threads);
    ExecutorOptions opt;
    opt.collect_outcomes = true;
    opt.reuse_last_child = reuse_last_child;
    return execute_tree(c, m, plan, opt);
}

TEST(Determinism, TreeExecutorIdenticalAcrossThreadCounts)
{
    const Circuit c = test_circuit(6);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure({16, 2, 2}),
                             equal_boundaries(c.size(), 3)};
    const RunResult r1 = run_tree_at(1, c, m, plan);
    const RunResult r2 = run_tree_at(2, c, m, plan);
    const RunResult r8 = run_tree_at(8, c, m, plan);
    EXPECT_EQ(r1.stats.outcomes, 64u);
    expect_identical_runs(r1, r2);
    expect_identical_runs(r1, r8);
}

TEST(Determinism, TreeExecutorIdenticalWithoutLastChildReuse)
{
    const Circuit c = test_circuit(6);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure({8, 4}),
                             equal_boundaries(c.size(), 2)};
    const RunResult r1 = run_tree_at(1, c, m, plan, false);
    const RunResult r8 = run_tree_at(8, c, m, plan, false);
    expect_identical_runs(r1, r8);
}

TEST(Determinism, TreeExecutorIdenticalUnderGeneralChannels)
{
    // Amplitude damping drives the norm-based Kraus branch selection, whose
    // reductions must be blocked (thread-count independent) to keep branch
    // picks identical.
    const Circuit c = test_circuit(5);
    const NoiseModel m = NoiseModel::amplitude_damping_model(0.02);
    const PartitionPlan plan{TreeStructure({12, 3}),
                             equal_boundaries(c.size(), 2)};
    const RunResult r1 = run_tree_at(1, c, m, plan);
    const RunResult r2 = run_tree_at(2, c, m, plan);
    const RunResult r8 = run_tree_at(8, c, m, plan);
    expect_identical_runs(r1, r2);
    expect_identical_runs(r1, r8);
}

TEST(Determinism, TreeExecutorIdenticalWhenDispatchLevelIsDeep)
{
    // Widest level is the last one: the executor descends serially, then
    // fans out each node's children; results must still match 1-thread runs.
    const Circuit c = test_circuit(5);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const PartitionPlan plan{TreeStructure({2, 2, 16}),
                             equal_boundaries(c.size(), 3)};
    const RunResult r1 = run_tree_at(1, c, m, plan);
    const RunResult r8 = run_tree_at(8, c, m, plan);
    expect_identical_runs(r1, r8);
}

TEST(Determinism, CompiledSegmentsWithFusionIdenticalAcrossThreadCounts)
{
    // 2q-only noise lets segment compilation fuse the 1q runs, so this
    // covers the compiled fast path where the plan genuinely differs from
    // gate-at-a-time execution.  The plan is compiled once at build time;
    // outcomes and deterministic counters must not depend on threads.
    const Circuit c = test_circuit(6);
    NoiseModel m;
    m.add_on_2q_gates(noise::Channel::depolarizing_2q(0.03));
    const PartitionPlan plan{TreeStructure({16, 2, 2}),
                             equal_boundaries(c.size(), 3)};
    const RunResult r1 = run_tree_at(1, c, m, plan);
    const RunResult r2 = run_tree_at(2, c, m, plan);
    const RunResult r8 = run_tree_at(8, c, m, plan);
    expect_identical_runs(r1, r2);
    expect_identical_runs(r1, r8);
    EXPECT_GT(r1.stats.segment_fusion_reduction, 0.0);
    EXPECT_DOUBLE_EQ(r1.stats.segment_fusion_reduction,
                     r8.stats.segment_fusion_reduction);
    // The hit/miss split is thread-dependent (per-worker pools warm up
    // separately) but must always partition the copy count.
    EXPECT_EQ(r1.stats.snapshot_pool_hits + r1.stats.snapshot_pool_misses,
              r1.stats.state_copies);
    EXPECT_EQ(r8.stats.snapshot_pool_hits + r8.stats.snapshot_pool_misses,
              r8.stats.state_copies);
}

TEST(Determinism, BaselineRunnerIdenticalAcrossThreadCounts)
{
    const Circuit c = test_circuit(6);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    ExecutorOptions opt;
    opt.collect_outcomes = true;
    auto run_at = [&](int threads) {
        ThreadGuard guard(threads);
        return run_baseline(c, m, 64, opt);
    };
    const RunResult r1 = run_at(1);
    const RunResult r2 = run_at(2);
    const RunResult r8 = run_at(8);
    expect_identical_runs(r1, r2);
    expect_identical_runs(r1, r8);
}

TEST(Determinism, TrajectorySamplerIdenticalAcrossThreadCounts)
{
    // 17 qubits = 131072 amplitudes: above the serial grain and the
    // reduction block size, so 4- and 8-thread runs genuinely split the
    // kernels and the blocked reductions.
    const int n = 17;
    Circuit c(n, "traj");
    for (int q = 0; q < n; ++q) {
        c.h(q);
        c.rz(q, 0.1 * (q + 1));
    }
    for (int q = 0; q + 1 < n; ++q) {
        c.cx(q, q + 1);
    }
    const NoiseModel m = NoiseModel::amplitude_damping_model(0.02);

    auto run_at = [&](int threads) {
        ThreadGuard guard(threads);
        StateVector state(n);
        util::Rng rng(0xC0FFEE);
        noise::run_trajectory(state, c, m, rng);
        const sim::Index outcome = sim::sample_once(state, rng);
        return std::pair<StateVector, sim::Index>(std::move(state), outcome);
    };
    const auto [s1, o1] = run_at(1);
    const auto [s4, o4] = run_at(4);
    const auto [s8, o8] = run_at(8);
    EXPECT_EQ(o1, o4);
    EXPECT_EQ(o1, o8);
    for (sim::Index i = 0; i < s1.size(); ++i) {
        ASSERT_EQ(s1[i].real(), s4[i].real()) << "amp " << i;
        ASSERT_EQ(s1[i].imag(), s4[i].imag()) << "amp " << i;
        ASSERT_EQ(s1[i].real(), s8[i].real()) << "amp " << i;
        ASSERT_EQ(s1[i].imag(), s8[i].imag()) << "amp " << i;
    }
}

TEST(Determinism, DcpPlanIdenticalAcrossThreadCounts)
{
    // End-to-end through the partitioner, as core::run() would execute.
    const Circuit c = circuits::qft(6);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    PartitionOptions popt;
    popt.shots = 128;
    popt.copy_cost_gates = 5.0;
    const PartitionPlan plan = make_partition_plan(c, m, popt);
    const RunResult r1 = run_tree_at(1, c, m, plan);
    const RunResult r8 = run_tree_at(8, c, m, plan);
    EXPECT_EQ(r1.stats.outcomes, plan.tree.total_outcomes());
    expect_identical_runs(r1, r8);
}

}  // namespace
}  // namespace tqsim::core
