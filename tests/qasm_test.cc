// Tests for OpenQASM 2.0 export/import and the ZYZ decomposition.

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/qasm.h"
#include "circuits/qft.h"
#include "circuits/qsc.h"
#include "circuits/qv.h"
#include "sim/gate_kernels.h"
#include "util/rng.h"

namespace tqsim::circuits {
namespace {

using sim::Circuit;
using sim::Complex;
using sim::Gate;
using sim::Matrix;

Matrix
random_unitary(std::uint64_t seed)
{
    util::Rng rng(seed);
    // Random u3 times a random global phase: covers all of U(2).
    const Gate g = Gate::u3(0, rng.uniform() * M_PI,
                            rng.uniform() * 2 * M_PI,
                            rng.uniform() * 2 * M_PI);
    Matrix m = g.matrix();
    const double angle = rng.uniform() * 2 * M_PI;
    const Complex phase{std::cos(angle), std::sin(angle)};
    for (Complex& v : m) {
        v *= phase;
    }
    return m;
}

TEST(Zyz, ReconstructsRandomUnitaries)
{
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const Matrix m = random_unitary(seed);
        const ZyzAngles a = zyz_decompose(m);
        Matrix rebuilt =
            Gate::u3(0, a.theta, a.phi, a.lambda).matrix();
        const Complex phase{std::cos(a.global_phase),
                            std::sin(a.global_phase)};
        for (int i = 0; i < 4; ++i) {
            EXPECT_NEAR(std::abs(phase * rebuilt[i] - m[i]), 0.0, 1e-9)
                << "seed " << seed;
        }
    }
}

TEST(Zyz, HandlesAxisCases)
{
    for (const Gate& g : {Gate::x(0), Gate::z(0), Gate::h(0), Gate::s(0),
                          Gate::sx(0), Gate::i(0)}) {
        const ZyzAngles a = zyz_decompose(g.matrix());
        const Matrix rebuilt = Gate::u3(0, a.theta, a.phi, a.lambda).matrix();
        const Complex phase{std::cos(a.global_phase),
                            std::sin(a.global_phase)};
        const Matrix m = g.matrix();
        for (int i = 0; i < 4; ++i) {
            EXPECT_NEAR(std::abs(phase * rebuilt[i] - m[i]), 0.0, 1e-9)
                << g.name();
        }
    }
}

TEST(Zyz, RejectsNonUnitary)
{
    EXPECT_THROW(zyz_decompose({1, 0, 0, 2}), std::invalid_argument);
    EXPECT_THROW(zyz_decompose(Matrix(3)), std::invalid_argument);
}

TEST(Qasm, ExportContainsHeaderAndGates)
{
    Circuit c(2, "pair");
    c.h(0).cx(0, 1).rz(1, 0.5);
    const std::string text = to_qasm(c);
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
    EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(text.find("rz(0.5) q[1];"), std::string::npos);
}

TEST(Qasm, RoundTripPreservesNamedGates)
{
    Circuit c(3);
    c.h(0).x(1).y(2).z(0).s(1).sdg(2).t(0).tdg(1).sx(2);
    c.rx(0, 0.1).ry(1, -0.2).rz(2, 0.3).phase(0, 0.4);
    c.u3(1, 0.5, 0.6, 0.7);
    c.cx(0, 1).cz(1, 2).cphase(0, 2, 0.8).swap(0, 1).rzz(1, 2, 0.9);
    c.fsim(0, 2, 1.0, 1.1).ccx(0, 1, 2);
    const Circuit back = from_qasm(to_qasm(c));
    ASSERT_EQ(back.size(), c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_TRUE(back.gate(i) == c.gate(i)) << i;
    }
}

TEST(Qasm, RoundTripPreservesIdealState)
{
    // QSC uses custom 1q unitaries -> exported as u3, so compare final
    // states up to global phase via fidelity of distributions + overlap.
    const Circuit original = qsc(5, 4, 0xA5);
    const Circuit back = from_qasm(to_qasm(original));
    const auto s1 = original.simulate_ideal();
    const auto s2 = back.simulate_ideal();
    EXPECT_NEAR(std::abs(s1.inner_product(s2)), 1.0, 1e-9);
}

TEST(Qasm, RoundTripLargeGeneratedCircuits)
{
    for (const Circuit& c :
         {qft(6, true, true), quantum_volume(5, 3, 9)}) {
        const Circuit back = from_qasm(to_qasm(c));
        const auto s1 = c.simulate_ideal();
        const auto s2 = back.simulate_ideal();
        EXPECT_NEAR(std::abs(s1.inner_product(s2)), 1.0, 1e-9) << c.name();
    }
}

TEST(Qasm, ImportIgnoresMeasureAndComments)
{
    const std::string text = R"(OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[2];
creg c[2];
h q[0];
barrier q[0],q[1];
cx q[0],q[1];
measure q[0] -> c[0];
)";
    const Circuit c = from_qasm(text);
    EXPECT_EQ(c.num_qubits(), 2);
    EXPECT_EQ(c.size(), 2u);
}

TEST(Qasm, ImportParsesPiExpressions)
{
    const std::string text = R"(OPENQASM 2.0;
qreg q[1];
rz(pi) q[0];
rx(0.5*pi) q[0];
ry(-pi) q[0];
)";
    const Circuit c = from_qasm(text);
    EXPECT_NEAR(c.gate(0).params()[0], M_PI, 1e-12);
    EXPECT_NEAR(c.gate(1).params()[0], M_PI / 2.0, 1e-12);
    EXPECT_NEAR(c.gate(2).params()[0], -M_PI, 1e-12);
}

TEST(Qasm, ImportRejectsMalformedInput)
{
    EXPECT_THROW(from_qasm("OPENQASM 2.0;\nh q[0];\n"),
                 std::invalid_argument);  // gate before qreg
    EXPECT_THROW(from_qasm("qreg q[2];\nfrobnicate q[0];\n"),
                 std::invalid_argument);  // unknown gate
    EXPECT_THROW(from_qasm("qreg q[2];\nh q[0]\n"),
                 std::invalid_argument);  // missing semicolon
    EXPECT_THROW(from_qasm(""), std::invalid_argument);
}

TEST(Qasm, ExportRejectsCustom2qUnitaries)
{
    Circuit c(2);
    c.append(sim::Gate::unitary2q(0, 1, Gate::cx(0, 1).matrix(), "mystery"));
    EXPECT_THROW(to_qasm(c), std::invalid_argument);
}

}  // namespace
}  // namespace tqsim::circuits
