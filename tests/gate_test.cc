// Unit tests for sim::Gate: matrices, unitarity, daggers, expansion.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/gate.h"

namespace tqsim::sim {
namespace {

std::vector<Gate>
representative_gates()
{
    return {
        Gate::i(0),
        Gate::x(0),
        Gate::y(0),
        Gate::z(0),
        Gate::h(0),
        Gate::s(0),
        Gate::sdg(0),
        Gate::t(0),
        Gate::tdg(0),
        Gate::sx(0),
        Gate::sxdg(0),
        Gate::rx(0, 0.3),
        Gate::ry(0, 1.1),
        Gate::rz(0, -0.7),
        Gate::phase(0, 0.9),
        Gate::u3(0, 0.4, 1.2, -0.5),
        Gate::cx(0, 1),
        Gate::cz(0, 1),
        Gate::cphase(0, 1, 0.37),
        Gate::swap(0, 1),
        Gate::iswap(0, 1),
        Gate::rzz(0, 1, 0.81),
        Gate::fsim(0, 1, M_PI / 2, M_PI / 6),
        Gate::ccx(0, 1, 2),
    };
}

class AllGatesTest : public ::testing::TestWithParam<Gate>
{
};

TEST_P(AllGatesTest, MatrixIsUnitary)
{
    const Gate& g = GetParam();
    const std::size_t d = std::size_t{1} << g.arity();
    EXPECT_TRUE(is_unitary(g.matrix(), d)) << g.to_string();
}

TEST_P(AllGatesTest, DaggerTimesGateIsIdentity)
{
    const Gate& g = GetParam();
    const std::size_t d = std::size_t{1} << g.arity();
    const Matrix prod = matmul(g.dagger().matrix(), g.matrix(), d);
    for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            const Complex want = (r == c) ? Complex{1, 0} : Complex{0, 0};
            EXPECT_NEAR(std::abs(prod[r * d + c] - want), 0.0, 1e-10)
                << g.to_string();
        }
    }
}

TEST_P(AllGatesTest, ArityMatchesKind)
{
    const Gate& g = GetParam();
    EXPECT_EQ(g.arity(), gate_kind_arity(g.kind()));
    EXPECT_EQ(static_cast<int>(g.params().size()),
              gate_kind_param_count(g.kind()));
}

TEST_P(AllGatesTest, DiagonalFlagMatchesMatrix)
{
    const Gate& g = GetParam();
    const std::size_t d = std::size_t{1} << g.arity();
    const Matrix m = g.matrix();
    bool off_diag_zero = true;
    for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            if (r != c && std::abs(m[r * d + c]) > 1e-12) {
                off_diag_zero = false;
            }
        }
    }
    if (g.is_diagonal()) {
        EXPECT_TRUE(off_diag_zero) << g.to_string();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Representative, AllGatesTest,
    ::testing::ValuesIn(representative_gates()),
    [](const ::testing::TestParamInfo<Gate>& info) {
        std::string name = info.param.name();
        return name + "_" + std::to_string(info.index);
    });

TEST(Gate, PauliAlgebra)
{
    // XY = iZ.
    const Matrix xy = matmul(Gate::x(0).matrix(), Gate::y(0).matrix(), 2);
    const Matrix z = Gate::z(0).matrix();
    for (int i = 0; i < 4; ++i) {
        EXPECT_NEAR(std::abs(xy[i] - Complex(0, 1) * z[i]), 0.0, 1e-12);
    }
}

TEST(Gate, HadamardSquaredIsIdentity)
{
    const Matrix hh = matmul(Gate::h(0).matrix(), Gate::h(0).matrix(), 2);
    EXPECT_NEAR(std::abs(hh[0] - Complex(1, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(hh[1]), 0.0, 1e-12);
}

TEST(Gate, SxSquaredIsX)
{
    const Matrix sx2 = matmul(Gate::sx(0).matrix(), Gate::sx(0).matrix(), 2);
    const Matrix x = Gate::x(0).matrix();
    for (int i = 0; i < 4; ++i) {
        EXPECT_NEAR(std::abs(sx2[i] - x[i]), 0.0, 1e-12);
    }
}

TEST(Gate, CxMatrixMapsBasisCorrectly)
{
    // Basis index = control + 2*target; columns are inputs.
    const Matrix m = Gate::cx(0, 1).matrix();
    // Input |c=1,t=0> (index 1) -> output |c=1,t=1> (index 3).
    EXPECT_EQ(m[3 * 4 + 1], Complex(1, 0));
    // Input |c=0,t=1> (index 2) unchanged.
    EXPECT_EQ(m[2 * 4 + 2], Complex(1, 0));
}

TEST(Gate, U3SpecialCases)
{
    // u3(pi, 0, pi) = X.
    const Matrix u = Gate::u3(0, M_PI, 0.0, M_PI).matrix();
    const Matrix x = Gate::x(0).matrix();
    for (int i = 0; i < 4; ++i) {
        EXPECT_NEAR(std::abs(u[i] - x[i]), 0.0, 1e-12);
    }
}

TEST(Gate, RzzDiagonalSigns)
{
    const Matrix m = Gate::rzz(0, 1, 1.0).matrix();
    EXPECT_NEAR(std::abs(m[0] - m[15]), 0.0, 1e-12);   // 00 and 11 equal
    EXPECT_NEAR(std::abs(m[5] - m[10]), 0.0, 1e-12);   // 01 and 10 equal
    EXPECT_GT(std::abs(m[0] - m[5]), 0.1);             // but groups differ
}

TEST(Gate, FactoriesValidateArguments)
{
    EXPECT_THROW(Gate::cx(1, 1), std::invalid_argument);
    EXPECT_THROW(Gate::ccx(0, 1, 1), std::invalid_argument);
    EXPECT_THROW(Gate::x(-1), std::invalid_argument);
    EXPECT_THROW(Gate::unitary1q(0, Matrix(3)), std::invalid_argument);
    EXPECT_THROW(Gate::unitary2q(0, 1, Matrix(4)), std::invalid_argument);
}

TEST(Gate, CustomUnitaryRoundTrip)
{
    const Matrix m = Gate::h(0).matrix();
    const Gate g = Gate::unitary1q(5, m, "hada");
    EXPECT_EQ(g.name(), "hada");
    EXPECT_EQ(g.qubits()[0], 5);
    EXPECT_EQ(g.matrix(), m);
    const Gate dg = g.dagger();
    EXPECT_EQ(dg.name(), "hada_dg");
}

TEST(Gate, RemappedMovesQubits)
{
    const Gate g = Gate::cx(0, 1).remapped({4, 2});
    EXPECT_EQ(g.qubits()[0], 4);
    EXPECT_EQ(g.qubits()[1], 2);
    EXPECT_THROW(Gate::cx(0, 1).remapped({0}), std::out_of_range);
}

TEST(Gate, ToStringIncludesParamsAndQubits)
{
    EXPECT_EQ(Gate::cx(1, 3).to_string(), "cx q1,q3");
    const std::string rz = Gate::rz(0, 0.5).to_string();
    EXPECT_NE(rz.find("rz(0.5)"), std::string::npos);
}

TEST(ExpandGate, SingleQubitOnTwoQubitRegister)
{
    // X on qubit 1 of a 2-qubit register: swaps |00><->|10>, |01><->|11>.
    const Matrix full = expand_gate(Gate::x(1), 2);
    EXPECT_EQ(full[2 * 4 + 0], Complex(1, 0));
    EXPECT_EQ(full[0 * 4 + 2], Complex(1, 0));
    EXPECT_EQ(full[3 * 4 + 1], Complex(1, 0));
    EXPECT_EQ(full[1 * 4 + 3], Complex(1, 0));
}

TEST(ExpandGate, PreservesUnitarity)
{
    const Matrix full = expand_gate(Gate::fsim(0, 2, 0.7, 0.3), 3);
    EXPECT_TRUE(is_unitary(full, 8));
}

TEST(ExpandGate, RejectsOutOfRangeQubit)
{
    EXPECT_THROW(expand_gate(Gate::x(3), 2), std::invalid_argument);
}

TEST(MatrixHelpers, DaggerTransposesAndConjugates)
{
    const Matrix m = {Complex(1, 2), Complex(3, 4), Complex(5, 6),
                      Complex(7, 8)};
    const Matrix d = matrix_dagger(m, 2);
    EXPECT_EQ(d[0], Complex(1, -2));
    EXPECT_EQ(d[1], Complex(5, -6));
    EXPECT_EQ(d[2], Complex(3, -4));
    EXPECT_EQ(d[3], Complex(7, -8));
}

TEST(MatrixHelpers, IsUnitaryDetectsNonUnitary)
{
    Matrix m = Gate::h(0).matrix();
    EXPECT_TRUE(is_unitary(m, 2));
    m[0] *= 2.0;
    EXPECT_FALSE(is_unitary(m, 2));
}

}  // namespace
}  // namespace tqsim::sim
