// Tests for the state-copy cost profiler (Sec. 3.6).

#include <gtest/gtest.h>

#include "core/copy_cost.h"

namespace tqsim::core {
namespace {

TEST(CopyCost, ProfileProducesPositiveTimings)
{
    const CopyCostProfile p = profile_copy_cost(8, 0.005);
    EXPECT_GT(p.seconds_per_gate, 0.0);
    EXPECT_GT(p.seconds_per_copy, 0.0);
    EXPECT_GT(p.cost_in_gates(), 0.0);
    EXPECT_EQ(p.name, "this-host");
}

TEST(CopyCost, CopyIsCheaperThanManyGates)
{
    // A copy touches each amplitude once; a gate pass reads and writes
    // pairs.  The ratio should be modest (paper: 5-45 gate-equivalents).
    const CopyCostProfile p = profile_copy_cost(10, 0.01);
    EXPECT_LT(p.cost_in_gates(), 200.0);
}

TEST(CopyCost, ProfileValidation)
{
    EXPECT_THROW(profile_copy_cost(1), std::invalid_argument);
    EXPECT_THROW(averaged_copy_cost_in_gates({}), std::invalid_argument);
}

TEST(CopyCost, HostCacheOverride)
{
    set_host_copy_cost_in_gates(12.5);
    EXPECT_DOUBLE_EQ(host_copy_cost_in_gates(), 12.5);
    EXPECT_THROW(set_host_copy_cost_in_gates(0.0), std::invalid_argument);
    EXPECT_THROW(set_host_copy_cost_in_gates(-3.0), std::invalid_argument);
    // Restore a sane cached value for other tests in this binary.
    set_host_copy_cost_in_gates(10.0);
}

TEST(CopyCost, AveragedCostIsMeanOfWidths)
{
    const double avg = averaged_copy_cost_in_gates({6, 8}, 0.003);
    EXPECT_GT(avg, 0.0);
}

// ---- Kernel-threshold calibration ------------------------------------------

TEST(TunedThresholds, FusedDiagThresholdIsFiniteCachedAndOverridable)
{
    set_tuned_fused_diag_threshold(0);  // drop any cache from other tests
    const sim::Index tuned = tuned_fused_diag_threshold();
    // Finite and sane: between a small cache-resident state and the
    // compiled-in 2^22-amp ceiling.
    EXPECT_GE(tuned, sim::Index{1} << 10);
    EXPECT_LE(tuned, sim::Index{1} << 22);
    // Cached: a second query must return the same value without drift.
    EXPECT_EQ(tuned_fused_diag_threshold(), tuned);
    // Explicit override wins.
    set_tuned_fused_diag_threshold(12345);
    EXPECT_EQ(tuned_fused_diag_threshold(), 12345u);
    set_tuned_fused_diag_threshold(0);
}

TEST(TunedThresholds, FusedDiagThresholdHonorsEnvironment)
{
    ASSERT_EQ(setenv("TQSIM_FUSED_DIAG_THRESHOLD", "65536", 1), 0);
    set_tuned_fused_diag_threshold(0);  // force recalibration
    EXPECT_EQ(tuned_fused_diag_threshold(), 65536u);
    ASSERT_EQ(unsetenv("TQSIM_FUSED_DIAG_THRESHOLD"), 0);
    set_tuned_fused_diag_threshold(0);
}

TEST(TunedThresholds, MaxFusedQubitsIsBoundedCachedAndOverridable)
{
    set_tuned_max_fused_qubits(0);
    const int tuned = tuned_max_fused_qubits();
    EXPECT_GE(tuned, 2);
    EXPECT_LE(tuned, 5);
    EXPECT_EQ(tuned_max_fused_qubits(), tuned);
    set_tuned_max_fused_qubits(3);
    EXPECT_EQ(tuned_max_fused_qubits(), 3);
    EXPECT_THROW(set_tuned_max_fused_qubits(6), std::invalid_argument);
    EXPECT_THROW(set_tuned_max_fused_qubits(-1), std::invalid_argument);
    set_tuned_max_fused_qubits(0);
}

TEST(TunedThresholds, MaxFusedQubitsHonorsEnvironment)
{
    ASSERT_EQ(setenv("TQSIM_MAX_FUSED_QUBITS", "2", 1), 0);
    set_tuned_max_fused_qubits(0);
    EXPECT_EQ(tuned_max_fused_qubits(), 2);
    ASSERT_EQ(unsetenv("TQSIM_MAX_FUSED_QUBITS"), 0);
    set_tuned_max_fused_qubits(0);
}

}  // namespace
}  // namespace tqsim::core
