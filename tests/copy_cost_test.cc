// Tests for the state-copy cost profiler (Sec. 3.6).

#include <gtest/gtest.h>

#include "core/copy_cost.h"

namespace tqsim::core {
namespace {

TEST(CopyCost, ProfileProducesPositiveTimings)
{
    const CopyCostProfile p = profile_copy_cost(8, 0.005);
    EXPECT_GT(p.seconds_per_gate, 0.0);
    EXPECT_GT(p.seconds_per_copy, 0.0);
    EXPECT_GT(p.cost_in_gates(), 0.0);
    EXPECT_EQ(p.name, "this-host");
}

TEST(CopyCost, CopyIsCheaperThanManyGates)
{
    // A copy touches each amplitude once; a gate pass reads and writes
    // pairs.  The ratio should be modest (paper: 5-45 gate-equivalents).
    const CopyCostProfile p = profile_copy_cost(10, 0.01);
    EXPECT_LT(p.cost_in_gates(), 200.0);
}

TEST(CopyCost, ProfileValidation)
{
    EXPECT_THROW(profile_copy_cost(1), std::invalid_argument);
    EXPECT_THROW(averaged_copy_cost_in_gates({}), std::invalid_argument);
}

TEST(CopyCost, HostCacheOverride)
{
    set_host_copy_cost_in_gates(12.5);
    EXPECT_DOUBLE_EQ(host_copy_cost_in_gates(), 12.5);
    EXPECT_THROW(set_host_copy_cost_in_gates(0.0), std::invalid_argument);
    EXPECT_THROW(set_host_copy_cost_in_gates(-3.0), std::invalid_argument);
    // Restore a sane cached value for other tests in this binary.
    set_host_copy_cost_in_gates(10.0);
}

TEST(CopyCost, AveragedCostIsMeanOfWidths)
{
    const double avg = averaged_copy_cost_in_gates({6, 8}, 0.003);
    EXPECT_GT(avg, 0.0);
}

}  // namespace
}  // namespace tqsim::core
