// Unit tests for outcome sampling.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/circuit.h"
#include "sim/sampler.h"
#include "util/rng.h"

namespace tqsim::sim {
namespace {

TEST(Sampler, BasisStateAlwaysSamplesItself)
{
    StateVector s(3);
    s.set_basis_state(5);
    util::Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(sample_once(s, rng), 5u);
    }
}

TEST(Sampler, UniformSuperpositionFrequencies)
{
    Circuit c(3);
    c.h(0).h(1).h(2);
    const StateVector s = c.simulate_ideal();
    util::Rng rng(2);
    std::vector<int> counts(8, 0);
    const int n = 16000;
    for (int i = 0; i < n; ++i) {
        ++counts[sample_once(s, rng)];
    }
    for (int x = 0; x < 8; ++x) {
        // Expected 2000 +- ~5 sigma (sigma ~= 42).
        EXPECT_NEAR(counts[x], n / 8, 250) << "outcome " << x;
    }
}

TEST(Sampler, SampleManyMatchesDistribution)
{
    Circuit c(2);
    c.h(0);  // outcomes 0 and 1 with p=1/2 each; qubit 1 never set
    const StateVector s = c.simulate_ideal();
    util::Rng rng(3);
    const auto outcomes = sample_many(s, 8000, rng);
    ASSERT_EQ(outcomes.size(), 8000u);
    int ones = 0;
    for (Index o : outcomes) {
        ASSERT_LT(o, 2u);
        ones += static_cast<int>(o);
    }
    EXPECT_NEAR(ones, 4000, 300);
}

TEST(Sampler, FromProbabilitiesUnnormalizedOk)
{
    util::Rng rng(4);
    std::vector<double> probs = {0.0, 3.0, 0.0, 1.0};
    int count3 = 0;
    const int n = 8000;
    for (int i = 0; i < n; ++i) {
        const Index o = sample_from_probabilities(probs, rng);
        ASSERT_TRUE(o == 1 || o == 3);
        if (o == 3) {
            ++count3;
        }
    }
    EXPECT_NEAR(count3, n / 4, 200);
}

TEST(Sampler, FromProbabilitiesValidates)
{
    util::Rng rng(5);
    EXPECT_THROW(sample_from_probabilities({}, rng), std::invalid_argument);
    EXPECT_THROW(sample_from_probabilities({-1.0, 2.0}, rng),
                 std::invalid_argument);
    EXPECT_THROW(sample_from_probabilities({0.0, 0.0}, rng),
                 std::invalid_argument);
}

TEST(Sampler, ManyFromProbabilitiesValidates)
{
    util::Rng rng(6);
    EXPECT_THROW(sample_many_from_probabilities({}, 1, rng),
                 std::invalid_argument);
    EXPECT_THROW(sample_many_from_probabilities({0.0}, 1, rng),
                 std::invalid_argument);
}

TEST(Sampler, DeterministicGivenSeed)
{
    Circuit c(4);
    c.h(0).h(1).cx(1, 2).h(3);
    const StateVector s = c.simulate_ideal();
    util::Rng rng1(42), rng2(42);
    EXPECT_EQ(sample_many(s, 100, rng1), sample_many(s, 100, rng2));
}

}  // namespace
}  // namespace tqsim::sim
