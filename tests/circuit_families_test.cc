// Functional-correctness tests for the eight benchmark circuit families:
// each generator's ideal simulation must produce the algorithm's documented
// output (sums, products, secrets, phases, Fourier spectra, ...).

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/adder.h"
#include "circuits/bv.h"
#include "circuits/mul.h"
#include "circuits/qaoa.h"
#include "circuits/qft.h"
#include "circuits/qpe.h"
#include "circuits/qsc.h"
#include "circuits/qv.h"
#include "metrics/distribution.h"
#include "sim/state_vector.h"

namespace tqsim::circuits {
namespace {

using metrics::Distribution;
using sim::Circuit;
using sim::StateVector;

/** Returns the single basis state an ideal run lands on (prob > 0.999). */
std::uint64_t
deterministic_outcome(const Circuit& c)
{
    const StateVector s = c.simulate_ideal();
    const Distribution d = Distribution::from_state(s);
    const std::uint64_t peak = d.argmax();
    EXPECT_GT(d[peak], 0.999) << "circuit " << c.name()
                              << " is not deterministic";
    return peak;
}

// ---- ADDER ------------------------------------------------------------------

class AdderExhaustive
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(AdderExhaustive, ComputesSum)
{
    const auto [bits, a, b] = GetParam();
    for (bool decompose : {false, true}) {
        const Circuit c = adder(bits, a, b, decompose);
        EXPECT_EQ(c.num_qubits(), 2 * bits + 2);
        const std::uint64_t outcome = deterministic_outcome(c);
        EXPECT_EQ(adder_decode_sum(outcome, bits),
                  static_cast<std::uint64_t>(a + b))
            << bits << "-bit " << a << "+" << b
            << " decompose=" << decompose;
    }
}

INSTANTIATE_TEST_SUITE_P(
    OneAndTwoBit, AdderExhaustive,
    ::testing::Values(std::tuple{1, 0, 0}, std::tuple{1, 0, 1},
                      std::tuple{1, 1, 0}, std::tuple{1, 1, 1},
                      std::tuple{2, 1, 2}, std::tuple{2, 3, 3},
                      std::tuple{2, 2, 1}, std::tuple{3, 5, 6},
                      std::tuple{3, 7, 7}, std::tuple{4, 9, 11}));

TEST(Adder, PreservesInputRegisterA)
{
    const int bits = 3;
    const std::uint64_t a = 5, b = 4;
    const std::uint64_t outcome = deterministic_outcome(adder(bits, a, b, false));
    std::uint64_t a_after = 0;
    for (int i = 0; i < bits; ++i) {
        if ((outcome >> adder_a_qubit(i)) & 1) {
            a_after |= std::uint64_t{1} << i;
        }
    }
    EXPECT_EQ(a_after, a);
}

TEST(Adder, ValidatesOperands)
{
    EXPECT_THROW(adder(0, 0, 0), std::invalid_argument);
    EXPECT_THROW(adder(2, 4, 0), std::invalid_argument);
}

TEST(Adder, DecomposedVariantHasNoToffolis)
{
    const Circuit c = adder(2, 1, 2, true);
    for (const auto& g : c.gates()) {
        EXPECT_NE(g.name(), "ccx");
    }
}

// ---- BV ----------------------------------------------------------------------

class BvSecrets : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BvSecrets, RecoversSecret)
{
    const int width = 7;
    const std::uint64_t secret = GetParam();
    const Circuit c = bernstein_vazirani(width, secret);
    EXPECT_EQ(deterministic_outcome(c), bv_expected_outcome(width, secret));
}

INSTANTIATE_TEST_SUITE_P(SixBitSecrets, BvSecrets,
                         ::testing::Values(0b000000, 0b000001, 0b100000,
                                           0b101010, 0b111111, 0b011011));

TEST(Bv, GateCountIsLinearInWidth)
{
    // 1 X + w H + s CX + (w-1) H + 1 H with s = popcount(secret).
    for (int w : {6, 10, 14}) {
        const std::uint64_t secret = default_bv_secret(w);
        const Circuit c = bernstein_vazirani(w, secret);
        const int popcount = __builtin_popcountll(secret);
        EXPECT_EQ(c.size(), static_cast<std::size_t>(2 * w + 1 + popcount));
    }
}

TEST(Bv, DefaultSecretHasDocumentedPopcount)
{
    for (int w : {6, 8, 12}) {
        EXPECT_EQ(__builtin_popcountll(default_bv_secret(w)), w - 2);
    }
}

TEST(Bv, Validation)
{
    EXPECT_THROW(bernstein_vazirani(1, 0), std::invalid_argument);
    EXPECT_THROW(bernstein_vazirani(4, 8), std::invalid_argument);
}

// ---- MUL ----------------------------------------------------------------------

class MulExhaustive
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MulExhaustive, ComputesProductForAllInputs)
{
    const auto [ka, kb] = GetParam();
    for (std::uint64_t a = 0; a < (1u << ka); ++a) {
        for (std::uint64_t b = 0; b < (1u << kb); ++b) {
            const Circuit c = multiplier(ka, kb, a, b, false);
            const std::uint64_t outcome = deterministic_outcome(c);
            EXPECT_EQ(multiplier_decode_product(outcome, ka, kb), a * b)
                << ka << "x" << kb << ": " << a << "*" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SmallOperands, MulExhaustive,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{2, 2},
                                           std::tuple{2, 3}));

TEST(Mul, DecomposedVariantAlsoCorrect)
{
    const Circuit c = multiplier(2, 2, 3, 3, true);
    EXPECT_EQ(multiplier_decode_product(deterministic_outcome(c), 2, 2), 9u);
}

TEST(Mul, WidthFormula)
{
    EXPECT_EQ(multiplier_width(3, 2), 13);
    EXPECT_EQ(multiplier_width(4, 2), 15);
    EXPECT_EQ(multiplier_width(6, 4), 25);
    EXPECT_EQ(multiplier(3, 2, 0, 0, false).num_qubits(), 13);
}

TEST(Mul, Validation)
{
    EXPECT_THROW(multiplier(0, 2, 0, 0), std::invalid_argument);
    EXPECT_THROW(multiplier(2, 2, 4, 0), std::invalid_argument);
}

// ---- QFT ----------------------------------------------------------------------

TEST(Qft, ZeroStateGoesToUniformSuperposition)
{
    for (bool decompose : {false, true}) {
        const Circuit c = qft(4, decompose, true);
        const StateVector s = c.simulate_ideal();
        const double want = 1.0 / 16.0;
        for (sim::Index i = 0; i < s.size(); ++i) {
            EXPECT_NEAR(std::norm(s[i]), want, 1e-10);
        }
    }
}

TEST(Qft, MatchesDftMatrixOnBasisStates)
{
    // With swaps, QFT|x> amplitudes are e^{2 pi i x y / N} / sqrt(N).
    const int n = 3;
    const int N = 8;
    for (int x : {1, 3, 5}) {
        Circuit prep(n);
        for (int b = 0; b < n; ++b) {
            if ((x >> b) & 1) {
                prep.x(b);
            }
        }
        prep += qft(n, false, true);
        const StateVector s = prep.simulate_ideal();
        for (int y = 0; y < N; ++y) {
            const double angle = 2.0 * M_PI * x * y / N;
            const sim::Complex want(std::cos(angle) / std::sqrt(8.0),
                                    std::sin(angle) / std::sqrt(8.0));
            EXPECT_NEAR(std::abs(s[y] - want), 0.0, 1e-10)
                << "x=" << x << " y=" << y;
        }
    }
}

TEST(Qft, DecomposedEqualsNative)
{
    Circuit prep(5);
    prep.x(0).x(3);
    Circuit native = prep;
    native += qft(5, false, true);
    Circuit decomposed = prep;
    decomposed += qft(5, true, true);
    EXPECT_TRUE(native.simulate_ideal().approx_equal(
        decomposed.simulate_ideal(), 1e-9));
}

TEST(Qft, InverseRecoversInput)
{
    Circuit c(4);
    c.x(1).x(2);
    Circuit round_trip = c;
    const Circuit f = qft(4, true, true);
    round_trip += f;
    round_trip += f.inverse();
    EXPECT_EQ(deterministic_outcome(round_trip), 0b0110u);
}

TEST(Qft, GateCountMatchesClosedForm)
{
    // n H + 5*n(n-1)/2 decomposed controlled phases, no swaps.
    for (int n : {8, 12}) {
        EXPECT_EQ(qft(n, true, false).size(),
                  static_cast<std::size_t>(n + 5 * n * (n - 1) / 2));
    }
}

// ---- QPE ----------------------------------------------------------------------

class QpeExactPhases : public ::testing::TestWithParam<double>
{
};

TEST_P(QpeExactPhases, RecoversExactDyadicPhase)
{
    const int width = 6;  // 5 counting bits
    const double theta = GetParam();
    const Circuit c = qpe(width, theta);
    EXPECT_EQ(deterministic_outcome(c), qpe_expected_outcome(width, theta));
}

INSTANTIATE_TEST_SUITE_P(DyadicPhases, QpeExactPhases,
                         ::testing::Values(0.0, 1.0 / 32.0, 1.0 / 4.0,
                                           5.0 / 32.0, 17.0 / 32.0,
                                           31.0 / 32.0));

TEST(Qpe, InexactPhasePeaksAtNearestValue)
{
    const int width = 7;
    const double theta = 1.0 / 3.0;
    const Circuit c = qpe(width, theta);
    const Distribution d = Distribution::from_state(c.simulate_ideal());
    const std::uint64_t peak = d.argmax();
    EXPECT_EQ(peak, qpe_expected_outcome(width, theta));
    // Bell curve: peak below certainty but dominant.
    EXPECT_GT(d[peak], 0.3);
    EXPECT_LT(d[peak], 0.999);
}

TEST(Qpe, Validation)
{
    EXPECT_THROW(qpe(1, 0.5), std::invalid_argument);
}

// ---- QAOA ---------------------------------------------------------------------

TEST(Qaoa, CircuitShape)
{
    const Graph g = Graph::random(6, 0.6, 3);
    const Circuit c = qaoa_maxcut(g, {0.8}, {0.7});
    // n H + 3 per edge + n RX.
    EXPECT_EQ(c.size(), 6 + 3 * g.num_edges() + 6);
    EXPECT_EQ(c.num_qubits(), 6);
}

TEST(Qaoa, NativeRzzEqualsDecomposed)
{
    const Graph g = Graph::ring(5);
    const Circuit a = qaoa_maxcut(g, {0.4}, {0.9}, true);
    const Circuit b = qaoa_maxcut(g, {0.4}, {0.9}, false);
    EXPECT_TRUE(a.simulate_ideal().approx_equal(b.simulate_ideal(), 1e-9));
}

TEST(Qaoa, ZeroAnglesGiveUniformCutDistribution)
{
    const Graph g = Graph::ring(4);
    const Circuit c = qaoa_maxcut(g, {0.0}, {0.0});
    const Distribution d = Distribution::from_state(c.simulate_ideal());
    // beta=gamma=0 leaves |+...+>; expected cut = E/2.
    EXPECT_NEAR(expected_cut_value(d, g), g.num_edges() / 2.0, 1e-9);
}

TEST(Qaoa, GoodAnglesBeatRandomGuessOnRing)
{
    // Known QAOA p=1 optimum for a ring graph: expected cut = 0.75 E.
    // A coarse grid search must find angles well above the random-guess
    // baseline of E/2 and reach close to the optimum.
    const Graph g = Graph::ring(6);
    double best = 0.0;
    for (int bi = 1; bi < 8; ++bi) {
        for (int gi = 1; gi < 8; ++gi) {
            const double beta = bi * M_PI / 8.0;
            const double gamma = gi * M_PI / 4.0;
            const Circuit c = qaoa_maxcut(g, {beta}, {gamma});
            const Distribution d =
                Distribution::from_state(c.simulate_ideal());
            best = std::max(best, expected_cut_value(d, g));
        }
    }
    EXPECT_GT(best, 0.70 * g.num_edges());
    EXPECT_LE(best, 0.78 * g.num_edges());  // p=1 cannot exceed 0.75 E
}

TEST(Qaoa, Validation)
{
    const Graph g = Graph::ring(4);
    EXPECT_THROW(qaoa_maxcut(g, {}, {}), std::invalid_argument);
    EXPECT_THROW(qaoa_maxcut(g, {0.1}, {0.1, 0.2}), std::invalid_argument);
    const Distribution wrong(3);
    EXPECT_THROW(expected_cut_value(wrong, g), std::invalid_argument);
}

// ---- QSC ----------------------------------------------------------------------

TEST(Qsc, ShapeAndDeterminism)
{
    const Circuit a = qsc(8, 3, 42);
    const Circuit b = qsc(8, 3, 42);
    EXPECT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a.gate(i) == b.gate(i));
    }
    // Per cycle: 8 single-qubit + alternating 4/3 fsim.
    EXPECT_EQ(a.size(), 3u * 8u + 4u + 3u + 4u);
}

TEST(Qsc, SqrtGatesSquareToTheirPauli)
{
    using sim::Matrix;
    auto square = [](const Matrix& m) { return sim::matmul(m, m, 2); };
    const Matrix x = sim::Gate::x(0).matrix();
    const Matrix y = sim::Gate::y(0).matrix();
    const Matrix sx2 = square(sqrt_x_matrix());
    const Matrix sy2 = square(sqrt_y_matrix());
    for (int i = 0; i < 4; ++i) {
        EXPECT_NEAR(std::abs(sx2[i] - x[i]), 0.0, 1e-12);
        EXPECT_NEAR(std::abs(sy2[i] - y[i]), 0.0, 1e-12);
    }
    EXPECT_TRUE(sim::is_unitary(sqrt_w_matrix(), 2));
}

TEST(Qsc, NeverRepeatsSingleQubitGateOnSameQubit)
{
    const Circuit c = qsc(6, 6, 7);
    std::vector<std::string> last(6);
    for (const auto& g : c.gates()) {
        if (g.arity() == 1) {
            const int q = g.qubits()[0];
            EXPECT_NE(g.name(), last[q]) << "qubit " << q;
            last[q] = g.name();
        }
    }
}

TEST(Qsc, OutputIsSpreadOut)
{
    // Random circuits anti-concentrate: no basis state should dominate.
    const Circuit c = qsc(8, 5, 11);
    const Distribution d = Distribution::from_state(c.simulate_ideal());
    EXPECT_LT(d[d.argmax()], 0.2);
}

TEST(Qsc, Validation)
{
    EXPECT_THROW(qsc(1, 3, 0), std::invalid_argument);
    EXPECT_THROW(qsc(4, 0, 0), std::invalid_argument);
}

// ---- QV -----------------------------------------------------------------------

TEST(Qv, GateCountMatchesPaperFormula)
{
    // floor(n/2) blocks x 11 gates x layers; paper: 6 layers -> 33n for even n.
    EXPECT_EQ(quantum_volume(10, 6, 1).size(), 330u);
    EXPECT_EQ(quantum_volume(12, 6, 1).size(), 396u);
    EXPECT_EQ(quantum_volume(20, 6, 1).size(), 660u);
    // Odd width: floor(n/2) pairs.
    EXPECT_EQ(quantum_volume(5, 6, 1).size(), 2u * 11u * 6u);
}

TEST(Qv, DeterministicBySeedAndDiffersAcrossSeeds)
{
    const Circuit a = quantum_volume(6, 6, 5);
    const Circuit b = quantum_volume(6, 6, 5);
    const Circuit c = quantum_volume(6, 6, 6);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a.gate(i) == b.gate(i));
    }
    bool any_diff = false;
    for (std::size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
        if (!(a.gate(i) == c.gate(i))) {
            any_diff = true;
            break;
        }
    }
    EXPECT_TRUE(any_diff);
}

TEST(Qv, HeavyOutputProbabilityAboveHalf)
{
    // The defining QV property: ideal heavy-output probability ~0.85 > 0.5.
    const Circuit c = quantum_volume(8, 6, 17);
    const Distribution d = Distribution::from_state(c.simulate_ideal());
    std::vector<double> probs(d.probabilities());
    std::vector<double> sorted = probs;
    std::sort(sorted.begin(), sorted.end());
    const double median_prob = sorted[sorted.size() / 2];
    double heavy = 0.0;
    for (double p : probs) {
        if (p > median_prob) {
            heavy += p;
        }
    }
    EXPECT_GT(heavy, 0.5);
}

TEST(Qv, Validation)
{
    EXPECT_THROW(quantum_volume(1, 6, 0), std::invalid_argument);
    EXPECT_THROW(quantum_volume(4, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tqsim::circuits
