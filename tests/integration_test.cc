// End-to-end integration tests: the paper's headline claims at reduced
// scale — computation reduction with bounded fidelity loss, across noise
// models and benchmark families.

#include <gtest/gtest.h>

#include "circuits/bv.h"
#include "circuits/qft.h"
#include "circuits/qpe.h"
#include "circuits/suite.h"
#include "core/baseline_runner.h"
#include "core/tqsim.h"
#include "dm/dm_simulator.h"
#include "metrics/fidelity.h"
#include "reuse/redundancy_eliminator.h"
#include "sim/parallel.h"

namespace tqsim {
namespace {

using circuits::BenchmarkCase;
using core::RunOptions;
using core::RunResult;
using metrics::Distribution;
using noise::NoiseModel;

RunOptions
fast_options(std::uint64_t shots)
{
    RunOptions opt;
    opt.shots = shots;
    opt.copy_cost_gates = 8.0;  // fixed: keep tests deterministic
    return opt;
}

TEST(Integration, TqsimReducesGateWorkOnQft)
{
    const sim::Circuit c = circuits::qft(8);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const RunOptions opt = fast_options(1024);
    const RunResult tq = core::run(c, m, opt);
    const RunResult base = core::run_baseline(c, m, 1024);
    ASSERT_GE(tq.plan.num_levels(), 2u);
    EXPECT_LT(tq.stats.gate_applications, base.stats.gate_applications);
    const double reduction =
        static_cast<double>(base.stats.gate_applications) /
        static_cast<double>(tq.stats.gate_applications);
    // Gate-work reduction should match the plan's theoretical speedup up to
    // the small outcome-count slack the allocation adjustment introduces.
    EXPECT_NEAR(reduction, tq.plan.theoretical_speedup(), 0.1);
}

TEST(Integration, FidelityDifferenceSmallAcrossFamilies)
{
    // Fig. 14 property at reduced scale: |F_tqsim - F_baseline| small.
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const RunOptions opt = fast_options(1500);
    for (circuits::Family f :
         {circuits::Family::kBV, circuits::Family::kQFT,
          circuits::Family::kQAOA}) {
        const auto cases = circuits::family_suite(
            f, circuits::SuiteScale::kReduced);
        const BenchmarkCase& c = cases[0];  // smallest of the family
        const Distribution ideal = core::ideal_distribution(c.circuit);
        const RunResult tq = core::run(c.circuit, m, opt);
        const RunResult base = core::run_baseline(c.circuit, m, opt.shots);
        const double f_tq =
            metrics::normalized_fidelity(ideal, tq.distribution);
        const double f_base =
            metrics::normalized_fidelity(ideal, base.distribution);
        EXPECT_NEAR(f_tq, f_base, 0.08) << c.name;
    }
}

TEST(Integration, TqsimMatchesDensityMatrixReference)
{
    // Fig. 15 property: TQSim's output distribution is close to the exact
    // density-matrix distribution.
    const auto cases =
        circuits::family_suite(circuits::Family::kBV,
                               circuits::SuiteScale::kReduced);
    const sim::Circuit& c = cases[0].circuit;  // bv_n6
    const NoiseModel m = NoiseModel::sycamore_depolarizing(0.002, 0.02);
    const Distribution exact = dm::dm_output_distribution(c, m);
    RunOptions opt = fast_options(4000);
    const RunResult tq = core::run(c, m, opt);
    EXPECT_LT(metrics::total_variation_distance(exact, tq.distribution),
              0.08);
}

TEST(Integration, ReadoutNoiseFlowsThroughBothPaths)
{
    NoiseModel m = NoiseModel::sycamore_depolarizing();
    m.set_readout_error(0.02);
    const sim::Circuit c = circuits::bernstein_vazirani(
        6, circuits::default_bv_secret(6));
    const RunOptions opt = fast_options(2000);
    const RunResult tq = core::run(c, m, opt);
    const RunResult base = core::run_baseline(c, m, opt.shots);
    const Distribution ideal = core::ideal_distribution(c);
    // Readout noise hurts both equally.
    const double f_tq = metrics::normalized_fidelity(ideal, tq.distribution);
    const double f_base =
        metrics::normalized_fidelity(ideal, base.distribution);
    EXPECT_NEAR(f_tq, f_base, 0.08);
    EXPECT_LT(f_base, 0.995);
}

TEST(Integration, StructureTradeoffOrdering)
{
    // Fig. 17 property: the degenerate (A0,1,1) structure loses accuracy
    // against baseline while aggressive reuse keeps more speedup.
    const sim::Circuit c = circuits::qpe(7, 1.0 / 3.0);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const Distribution ideal = core::ideal_distribution(c);

    RunOptions base_opt = fast_options(1000);
    const RunResult base = core::run_baseline(c, m, 1000);
    const double f_base =
        metrics::normalized_fidelity(ideal, base.distribution);

    RunOptions degenerate = fast_options(1000);
    degenerate.strategy = core::PartitionStrategy::kManual;
    degenerate.manual_arities = {100, 1, 1};  // only 100 outcomes
    const RunResult deg = core::run(c, m, degenerate);
    const double f_deg =
        metrics::normalized_fidelity(ideal, deg.distribution);

    RunOptions dcp = fast_options(1000);
    const RunResult tq = core::run(c, m, dcp);
    const double f_tq = metrics::normalized_fidelity(ideal, tq.distribution);

    // DCP stays close to baseline...
    EXPECT_LT(std::abs(f_tq - f_base), 0.10);
    // ...and its sampling error cannot be much worse than the degenerate
    // 100-outcome structure's.
    EXPECT_LE(std::abs(f_tq - f_base) - 0.02,
              std::abs(f_deg - f_base) + 0.10);
}

TEST(Integration, RedunElimVsTqsimCrossover)
{
    // Fig. 19 property: Redun-Elim wins on short circuits, TQSim on long
    // ones where exact noise-realization collisions become negligible.
    const sim::Circuit short_c = circuits::bernstein_vazirani(
        6, circuits::default_bv_secret(6));  // 17 gates
    const NoiseModel m_short = NoiseModel::sycamore_depolarizing();
    RunOptions short_opt = fast_options(1000);
    const auto redun_short =
        reuse::analyze_redundancy_elimination(short_c, m_short, 1000, 1);
    const double tq_short = reuse::tqsim_normalized_computation(
        core::plan(short_c, m_short, short_opt), 8.0);
    EXPECT_LT(redun_short.normalized_computation, tq_short);

    const sim::Circuit long_c = circuits::qft(12);  // 342 gates
    const NoiseModel m_long = NoiseModel::sycamore_depolarizing(0.002, 0.03);
    RunOptions long_opt = fast_options(16000);
    const auto redun_long =
        reuse::analyze_redundancy_elimination(long_c, m_long, 16000, 1);
    const double tq_long = reuse::tqsim_normalized_computation(
        core::plan(long_c, m_long, long_opt), 8.0);
    EXPECT_LT(tq_long, redun_long.normalized_computation);
}

TEST(Integration, MemoryForSpeedTradeoff)
{
    // Fig. 9 property: TQSim uses more state memory but fewer gate
    // applications than the baseline.
    const sim::Circuit c = circuits::qft(9);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const RunOptions opt = fast_options(1024);
    const RunResult tq = core::run(c, m, opt);
    const RunResult base = core::run_baseline(c, m, 1024);
    EXPECT_GT(tq.stats.peak_state_bytes, base.stats.peak_state_bytes);
    EXPECT_LT(tq.stats.gate_applications, base.stats.gate_applications);
    // Still bounded by one DFS cursor per worker: (levels + 1) states each
    // (serially this is exactly the paper's levels + 1 bound).
    const std::uint64_t workers =
        static_cast<std::uint64_t>(sim::num_threads());
    EXPECT_LE(tq.stats.peak_live_states,
              (tq.plan.num_levels() + 1) * workers);
}

TEST(Integration, WallClockSpeedupOnLongCircuit)
{
    // The headline measurement, kept statistical-noise tolerant: TQSim
    // should not be slower than baseline on a long circuit.
    const sim::Circuit c = circuits::qft(9);
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const RunOptions opt = fast_options(512);
    const RunResult tq = core::run(c, m, opt);
    const RunResult base = core::run_baseline(c, m, 512);
    EXPECT_LT(tq.stats.wall_seconds, base.stats.wall_seconds * 1.05);
}

}  // namespace
}  // namespace tqsim
