/**
 * @file
 * Fault-injection and failure-recovery tests (docs/robustness.md): the
 * fail-point subsystem itself (seeded, deterministic schedules), engine
 * hardening (snapshot-allocation failure degrades to recompute-from-parent
 * bit-identically; root-allocation failure surfaces ResourceExhausted),
 * service resilience (retrying lanes, lane-death and hang watchdog, the
 * degradation ladder, cache hygiene), and the capstone chaos storm — a
 * seeded fault schedule over an 8-job / 2-tenant mix asserting that every
 * job terminates, completed jobs are bit-identical to fault-free isolated
 * runs, and the cache is never poisoned.
 */

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/tqsim.h"
#include "core/tree_executor.h"
#include "service/job.h"
#include "service/job_service.h"
#include "sim/circuit.h"
#include "sim/parallel.h"
#include "util/failpoint.h"
#include "util/integrity.h"

namespace tqsim {
namespace {

namespace fp = util::failpoint;

// ---- Helpers ---------------------------------------------------------------

/// Pins the worker-pool width for a test and restores serial mode after.
struct ThreadGuard
{
    explicit ThreadGuard(int n) { sim::set_num_threads(n); }
    ~ThreadGuard() { sim::set_num_threads(1); }
};

/// Arms a fail plan for the test's scope and disarms on exit, so a failing
/// assertion can never leak an armed schedule into the next test.
struct ArmGuard
{
    explicit ArmGuard(const fp::FailPlan& plan) { fp::arm(plan); }
    ~ArmGuard() { fp::disarm(); }
};

fp::FailPlan
plan_every(std::uint64_t every, std::vector<std::string> sites,
           std::uint64_t seed = 1)
{
    fp::FailPlan plan;
    plan.seed = seed;
    plan.probability = 0.0;
    plan.every = every;
    plan.sites = std::move(sites);
    return plan;
}

/// Corruption-mode counterpart of plan_every: firing sites flip one
/// deterministic bit instead of throwing.
fp::FailPlan
corrupt_every(std::uint64_t every, std::vector<std::string> sites,
              std::uint64_t seed = 1)
{
    fp::FailPlan plan = plan_every(every, std::move(sites), seed);
    plan.corrupt = true;
    return plan;
}

/// Total flipped bits in a buffer that started all-zero.
int
flipped_bits(const std::vector<unsigned char>& buf)
{
    int bits = 0;
    for (const unsigned char byte : buf) {
        bits += std::popcount(static_cast<unsigned>(byte));
    }
    return bits;
}

/// Deterministic gate-pattern circuit (mirrors the service tests).
sim::Circuit
patterned_circuit(int width, int gates)
{
    sim::Circuit c(width);
    for (int i = 0; i < gates; ++i) {
        switch (i % 4) {
        case 0: c.h(i % width); break;
        case 1: c.rx(i % width, 0.1 + 0.01 * i); break;
        case 2: c.cx(i % width, (i + 1) % width); break;
        default: c.rz(i % width, 0.2 + 0.02 * i); break;
        }
    }
    return c;
}

/// Same first half as patterned_circuit, divergent tail — the
/// prefix-sharing partner in the storm.
sim::Circuit
divergent_tail_circuit(int width, int gates)
{
    sim::Circuit c(width);
    const int half = gates / 2;
    for (int i = 0; i < half; ++i) {
        switch (i % 4) {
        case 0: c.h(i % width); break;
        case 1: c.rx(i % width, 0.1 + 0.01 * i); break;
        case 2: c.cx(i % width, (i + 1) % width); break;
        default: c.rz(i % width, 0.2 + 0.02 * i); break;
        }
    }
    for (int i = half; i < gates; ++i) {
        c.ry(i % width, 0.3 + 0.005 * i);
    }
    return c;
}

core::RunOptions
storm_options()
{
    core::RunOptions opt;
    opt.strategy = core::PartitionStrategy::kManual;
    opt.manual_arities = {4, 4};
    opt.shots = 16;
    opt.collect_outcomes = true;
    opt.seed = 0xC0FFEE;
    return opt;
}

service::JobSpec
make_spec(sim::Circuit circuit, core::RunOptions opt,
          std::string tenant = "default")
{
    return service::JobSpec{.circuit = std::move(circuit),
                            .model =
                                noise::NoiseModel::sycamore_depolarizing(),
                            .options = std::move(opt),
                            .tenant = std::move(tenant),
                            .deadline_seconds = 0.0};
}

/// The parts of a RunResult that must be bit-identical between a recovered
/// (retried / degraded) run and a fault-free isolated run.
void
expect_bit_identical(const core::RunResult& got, const core::RunResult& want)
{
    ASSERT_EQ(got.raw_outcomes.size(), want.raw_outcomes.size());
    EXPECT_EQ(got.raw_outcomes, want.raw_outcomes);
    ASSERT_EQ(got.distribution.probabilities().size(),
              want.distribution.probabilities().size());
    EXPECT_EQ(got.distribution.probabilities(),
              want.distribution.probabilities());
    EXPECT_EQ(got.stats.gate_applications, want.stats.gate_applications);
    EXPECT_EQ(got.stats.channel_applications,
              want.stats.channel_applications);
    EXPECT_EQ(got.stats.error_events, want.stats.error_events);
    EXPECT_EQ(got.stats.nodes_simulated, want.stats.nodes_simulated);
    EXPECT_EQ(got.stats.outcomes, want.stats.outcomes);
}

/// Polls service_stats() until the degradation ladder is back to rung 0
/// (time-based decay) or the timeout expires.
bool
wait_for_recovery(const service::JobService& svc, double timeout_seconds)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_seconds);
    while (std::chrono::steady_clock::now() < deadline) {
        if (svc.service_stats().degradation_level == 0) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
}

// ---- Fail points -----------------------------------------------------------

TEST(FailPoint, DisarmedIsInertAndThrowsNothing)
{
    fp::disarm();
    EXPECT_FALSE(fp::armed());
    EXPECT_FALSE(fp::fires("nonexistent.site"));
    EXPECT_NO_THROW(fp::check("nonexistent.site"));
    EXPECT_NO_THROW(fp::check_alloc("nonexistent.site"));
}

TEST(FailPoint, EveryModeFiresDeterministically)
{
    ArmGuard armed(plan_every(3, {"site.a"}));
    std::vector<bool> pattern;
    pattern.reserve(9);
    for (int i = 0; i < 9; ++i) {
        pattern.push_back(fp::fires("site.a"));
    }
    const std::vector<bool> want = {false, false, true, false, false,
                                    true,  false, false, true};
    EXPECT_EQ(pattern, want);
    EXPECT_EQ(fp::site_stats("site.a").evaluations, 9u);
    EXPECT_EQ(fp::site_stats("site.a").fires, 3u);
    // A site outside the armed set never fires and is not counted.
    EXPECT_FALSE(fp::fires("site.b"));
    EXPECT_EQ(fp::site_stats("site.b").fires, 0u);
}

TEST(FailPoint, ProbabilityScheduleIsAPureFunctionOfTheSeed)
{
    fp::FailPlan plan;
    plan.seed = 7;
    plan.probability = 0.5;
    plan.sites = {"site.p"};

    auto sample = [] {
        std::vector<bool> v;
        v.reserve(64);
        for (int i = 0; i < 64; ++i) {
            v.push_back(fp::fires("site.p"));
        }
        return v;
    };
    ArmGuard armed(plan);
    const std::vector<bool> first = sample();
    fp::arm(plan);  // Re-arming resets counters: same seed, same schedule.
    const std::vector<bool> second = sample();
    EXPECT_EQ(first, second);

    plan.seed = 8;
    fp::arm(plan);
    const std::vector<bool> other_seed = sample();
    EXPECT_NE(first, other_seed);
    // The empirical rate is sane for p = 0.5 (64 Bernoulli draws).
    const std::uint64_t fires = fp::site_stats("site.p").fires;
    EXPECT_GT(fires, 10u);
    EXPECT_LT(fires, 54u);
}

TEST(FailPoint, WildcardArmsEverySite)
{
    ArmGuard armed(plan_every(1, {"*"}));
    EXPECT_TRUE(fp::fires("any.site"));
    EXPECT_TRUE(fp::fires("another.site"));
    EXPECT_EQ(fp::total_fires(), 2u);
    EXPECT_THROW(fp::check("x"), util::InjectedFault);
    EXPECT_THROW(fp::check_alloc("y"), util::InjectedBadAlloc);
    // InjectedFault is transient; InjectedBadAlloc is a bad_alloc.
    EXPECT_THROW(fp::check("x"), util::TransientError);
    EXPECT_THROW(fp::check_alloc("y"), std::bad_alloc);
}

TEST(FailPoint, ArmsFromTheEnvironment)
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe) single-threaded test setup
    ::setenv("TQSIM_FAILPOINTS", "sites=env.site,other;every=2;seed=9", 1);
    EXPECT_TRUE(fp::arm_from_env());
    EXPECT_TRUE(fp::armed());
    EXPECT_FALSE(fp::fires("env.site"));
    EXPECT_TRUE(fp::fires("env.site"));
    EXPECT_FALSE(fp::fires("unlisted.site"));
    fp::disarm();

    // Malformed / empty specs leave the subsystem disarmed.
    // NOLINTNEXTLINE(concurrency-mt-unsafe) single-threaded test setup
    ::setenv("TQSIM_FAILPOINTS", "p=0;every=0;sites=x", 1);
    EXPECT_FALSE(fp::arm_from_env());
    // NOLINTNEXTLINE(concurrency-mt-unsafe) single-threaded test setup
    ::unsetenv("TQSIM_FAILPOINTS");
    EXPECT_FALSE(fp::arm_from_env());
    EXPECT_FALSE(fp::armed());
}

// ---- Engine hardening ------------------------------------------------------

TEST(ChaosEngine, SnapshotFailureDegradesToRecomputeBitIdentically)
{
    ThreadGuard serial(1);
    const sim::Circuit circuit = patterned_circuit(10, 48);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    const core::RunOptions opt = storm_options();

    const core::RunResult want = core::run(circuit, model, opt);
    ASSERT_EQ(want.stats.snapshot_degradations, 0u);

    // Every third snapshot (warm or cold path) fails: the executor must
    // simulate those children in place and rebuild the parent by replay.
    ArmGuard armed(
        plan_every(3, {"sim.arena.snapshot", "sim.arena.lease"}));
    const core::RunResult got = core::run(circuit, model, opt);
    EXPECT_GT(got.stats.snapshot_degradations, 0u);
    EXPECT_GT(got.stats.replayed_segments, 0u);
    expect_bit_identical(got, want);
}

TEST(ChaosEngine, RootAllocationFailureSurfacesResourceExhausted)
{
    ThreadGuard serial(1);
    ArmGuard armed(plan_every(1, {"sim.arena.root"}));
    EXPECT_THROW(core::run(patterned_circuit(6, 8),
                           noise::NoiseModel::sycamore_depolarizing(),
                           storm_options()),
                 core::ResourceExhausted);
}

TEST(ChaosEngine, DegradationSurvivesRepeatedFaultsAcrossThreadCounts)
{
    const sim::Circuit circuit = patterned_circuit(10, 48);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    const core::RunOptions opt = storm_options();
    ThreadGuard serial(1);
    const core::RunResult want = core::run(circuit, model, opt);

    for (int threads : {1, 4}) {
        ThreadGuard guard(threads);
        ArmGuard armed(
            plan_every(5, {"sim.arena.snapshot", "sim.arena.lease"}));
        // Parallel dispatch may surface ResourceExhausted instead of
        // degrading (a shared parent cannot be rebuilt in place); retrying
        // until a run completes mirrors what the service does.
        for (int attempt = 0; attempt < 32; ++attempt) {
            try {
                const core::RunResult got = core::run(circuit, model, opt);
                expect_bit_identical(got, want);
                break;
            } catch (const core::ResourceExhausted&) {
                ASSERT_GT(threads, 1) << "serial runs must degrade, "
                                         "never surface ResourceExhausted";
            }
        }
    }
}

// ---- Service resilience ----------------------------------------------------

TEST(ChaosService, LaneDeathIsRescuedAndRetriedToCompletion)
{
    ThreadGuard serial(1);
    service::JobServiceConfig cfg;
    cfg.num_lanes = 1;
    cfg.reaper_period_seconds = 0.002;
    cfg.retry.max_attempts = 3;
    cfg.retry.base_backoff_seconds = 0.001;
    cfg.retry.max_backoff_seconds = 0.01;
    service::JobService svc(cfg);

    const core::RunResult want =
        core::run(patterned_circuit(8, 24),
                  noise::NoiseModel::sycamore_depolarizing(),
                  storm_options());

    // Every second dispatch kills the lane thread outright: job 1 runs on
    // evaluation 0 (survives), job 2 dispatches on evaluation 1 (lane
    // dies), its retry dispatches on evaluation 2 (survives).
    ArmGuard armed(plan_every(2, {"service.lane.start"}));
    const service::JobId first =
        svc.submit(make_spec(patterned_circuit(8, 24), storm_options()));
    EXPECT_EQ(svc.wait(first).state, service::JobState::kDone);

    const service::JobId second =
        svc.submit(make_spec(patterned_circuit(8, 24), storm_options()));
    const service::JobStatus status = svc.wait(second);
    EXPECT_EQ(status.state, service::JobState::kDone);
    EXPECT_EQ(status.attempts, 2u);

    const service::ServiceStats stats = svc.service_stats();
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_EQ(stats.watchdog_requeues, 1u);
    EXPECT_GE(stats.lane_restarts, 1u);
    expect_bit_identical(svc.result(second), want);
}

TEST(ChaosService, HungLaneIsCancelledByTheWatchdogAndRetried)
{
    ThreadGuard serial(1);
    service::JobServiceConfig cfg;
    cfg.num_lanes = 1;
    cfg.reaper_period_seconds = 0.002;
    cfg.watchdog_hang_seconds = 0.05;
    cfg.retry.max_attempts = 3;
    cfg.retry.base_backoff_seconds = 0.001;
    service::JobService svc(cfg);

    // every=2 fires on odd evaluations: the warm-up job (evaluation 0)
    // runs clean, the second job's first attempt (evaluation 1) wedges
    // until the watchdog cancels it, and its retry (evaluation 2) runs
    // clean again.
    ArmGuard armed(plan_every(2, {"service.lane.hang"}));
    const service::JobId warmup =
        svc.submit(make_spec(patterned_circuit(6, 8), storm_options()));
    EXPECT_EQ(svc.wait(warmup).state, service::JobState::kDone);

    const service::JobId id =
        svc.submit(make_spec(patterned_circuit(6, 8), storm_options()));
    const service::JobStatus status = svc.wait(id);
    EXPECT_EQ(status.state, service::JobState::kDone);
    EXPECT_EQ(status.attempts, 2u);
    const service::ServiceStats stats = svc.service_stats();
    EXPECT_GE(stats.watchdog_cancels, 1u);
    EXPECT_GE(stats.retries, 1u);
}

TEST(ChaosService, UserCancelSuppressesRetryOfAHungJob)
{
    ThreadGuard serial(1);
    service::JobServiceConfig cfg;
    cfg.num_lanes = 1;
    cfg.reaper_period_seconds = 0.002;
    cfg.watchdog_hang_seconds = 0.0;  // Only the user can unwedge it.
    cfg.retry.max_attempts = 5;
    service::JobService svc(cfg);

    ArmGuard armed(plan_every(1, {"service.lane.hang"}));
    const service::JobId id =
        svc.submit(make_spec(patterned_circuit(6, 8), storm_options()));
    while (svc.status(id).state != service::JobState::kRunning) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(svc.cancel(id));
    const service::JobStatus status = svc.wait(id);
    EXPECT_EQ(status.state, service::JobState::kCancelled);
    EXPECT_EQ(status.attempts, 1u);
    EXPECT_EQ(svc.service_stats().retries, 0u);
}

TEST(ChaosService, ResourceExhaustionWalksTheDegradationLadder)
{
    ThreadGuard serial(1);
    service::JobServiceConfig cfg;
    cfg.num_lanes = 1;
    cfg.reaper_period_seconds = 0.002;
    cfg.retry.max_attempts = 4;
    cfg.retry.base_backoff_seconds = 0.001;
    cfg.retry.max_backoff_seconds = 0.005;
    cfg.degrade_decay_seconds = 0.03;
    cfg.degrade_recovery_jobs = 1;
    service::JobService svc(cfg);

    {
        // Every root allocation fails: 4 attempts, each escalating one
        // rung, land the service at the top of the ladder.
        ArmGuard armed(plan_every(1, {"sim.arena.root"}));
        const service::JobId id =
            svc.submit(make_spec(patterned_circuit(6, 8), storm_options()));
        const service::JobStatus status = svc.wait(id);
        EXPECT_EQ(status.state, service::JobState::kRejected);
        EXPECT_EQ(status.error.reason,
                  service::RejectReason::kResourceExhausted);
        EXPECT_TRUE(status.error.transient);
        EXPECT_EQ(status.attempts, 4u);

        const service::ServiceStats stats = svc.service_stats();
        EXPECT_EQ(stats.degradation_level, 3);
        EXPECT_EQ(stats.cache_capacity_bytes,
                  cfg.cache.capacity_bytes / 2);
        EXPECT_FALSE(stats.prefix_snapshots_enabled);

        // Rung 3 sheds new load with a structured, transient rejection.
        const service::JobId refused =
            svc.submit(make_spec(patterned_circuit(6, 8), storm_options()));
        const service::JobStatus shed = svc.wait(refused);
        EXPECT_EQ(shed.state, service::JobState::kRejected);
        EXPECT_EQ(shed.error.reason,
                  service::RejectReason::kServiceDegraded);
        EXPECT_TRUE(shed.error.transient);
        EXPECT_GE(svc.service_stats().degraded_rejections, 1u);
    }

    // Pressure gone: time-based decay walks the ladder back to rung 0 and
    // restores the configured cache budget; admissions flow again.
    ASSERT_TRUE(wait_for_recovery(svc, 5.0));
    const service::ServiceStats recovered = svc.service_stats();
    EXPECT_EQ(recovered.degradation_level, 0);
    EXPECT_EQ(recovered.cache_capacity_bytes, cfg.cache.capacity_bytes);
    EXPECT_TRUE(recovered.prefix_snapshots_enabled);
    const service::JobId id =
        svc.submit(make_spec(patterned_circuit(6, 8), storm_options()));
    EXPECT_EQ(svc.wait(id).state, service::JobState::kDone);
}

TEST(ChaosService, FailedResultCarriesTheWholeStory)
{
    ThreadGuard serial(1);
    service::JobServiceConfig cfg;
    cfg.num_lanes = 1;
    cfg.retry.max_attempts = 1;
    cfg.degrade_decay_seconds = 60.0;
    service::JobService svc(cfg);

    ArmGuard armed(plan_every(1, {"sim.arena.root"}));
    const service::JobId id =
        svc.submit(make_spec(patterned_circuit(6, 8), storm_options()));
    svc.wait(id);
    try {
        (void)svc.result(id);
        FAIL() << "result() must throw for a failed job";
    } catch (const std::logic_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("rejected"), std::string::npos) << what;
        EXPECT_NE(what.find("resource_exhausted"), std::string::npos)
            << what;
        EXPECT_NE(what.find("attempts=1"), std::string::npos) << what;
    }
}

TEST(ChaosService, RepeatedSubmitAfterFailureAcrossThreadCounts)
{
    for (int threads : {1, 4, 8}) {
        ThreadGuard guard(threads);
        service::JobServiceConfig cfg;
        cfg.num_lanes = 2;
        cfg.retry.max_attempts = 1;
        cfg.reaper_period_seconds = 0.002;
        cfg.degrade_decay_seconds = 60.0;
        service::JobService svc(cfg);

        const sim::Circuit circuit = patterned_circuit(8, 24);
        const core::RunResult want =
            core::run(circuit, noise::NoiseModel::sycamore_depolarizing(),
                      storm_options());

        {
            ArmGuard armed(plan_every(1, {"sim.arena.root"}));
            const service::JobId failed =
                svc.submit(make_spec(circuit, storm_options()));
            const service::JobStatus status = svc.wait(failed);
            EXPECT_EQ(status.state, service::JobState::kRejected);
            EXPECT_EQ(status.error.reason,
                      service::RejectReason::kResourceExhausted);
        }
        // The failure left nothing poisoned behind: resubmitting the same
        // spec (twice, to also exercise the cache-hit path) completes and
        // stays bit-identical.
        for (int round = 0; round < 2; ++round) {
            const service::JobId id =
                svc.submit(make_spec(circuit, storm_options()));
            ASSERT_EQ(svc.wait(id).state, service::JobState::kDone)
                << "threads=" << threads << " round=" << round;
            expect_bit_identical(svc.result(id), want);
        }
    }
}

TEST(ChaosService, DeadlineExpiryMidExecutionAcrossThreadCounts)
{
    for (int threads : {1, 4, 8}) {
        ThreadGuard guard(threads);
        service::JobServiceConfig cfg;
        cfg.num_lanes = 1;
        cfg.reaper_period_seconds = 0.002;
        service::JobService svc(cfg);

        core::RunOptions opt;
        opt.strategy = core::PartitionStrategy::kManual;
        opt.manual_arities = {8, 8};
        opt.shots = 64;
        opt.seed = 0xC0FFEE;
        service::JobSpec spec =
            make_spec(patterned_circuit(16, 128), std::move(opt));
        spec.deadline_seconds = 0.05;

        const service::JobId id = svc.submit(std::move(spec));
        const service::JobStatus status = svc.wait(id);
        EXPECT_EQ(status.state, service::JobState::kCancelled)
            << "threads=" << threads;
        EXPECT_EQ(status.error.reason,
                  service::RejectReason::kDeadlineExceeded);
        EXPECT_LT(status.shots_completed, status.shots_total);
    }
}

// ---- Corruption mode -------------------------------------------------------

TEST(CorruptMode, FlipsOneDeterministicBitPerFireReplayableFromTheSeed)
{
    std::vector<unsigned char> buf(64, 0);
    {
        ArmGuard armed(corrupt_every(2, {"c.site"}, 42));
        EXPECT_FALSE(fp::maybe_corrupt("c.site", buf.data(), buf.size()));
        EXPECT_TRUE(fp::maybe_corrupt("c.site", buf.data(), buf.size()));
        EXPECT_EQ(fp::site_stats("c.site").evaluations, 2u);
        EXPECT_EQ(fp::site_stats("c.site").fires, 1u);
    }
    EXPECT_EQ(flipped_bits(buf), 1);

    // Replayable: re-arming the same seed flips the same bit.
    std::vector<unsigned char> again(64, 0);
    {
        ArmGuard armed(corrupt_every(2, {"c.site"}, 42));
        (void)fp::maybe_corrupt("c.site", again.data(), again.size());
        (void)fp::maybe_corrupt("c.site", again.data(), again.size());
    }
    EXPECT_EQ(again, buf);

    // A different seed lands on a different flip sequence.
    std::vector<unsigned char> seed_a(64, 0);
    std::vector<unsigned char> seed_b(64, 0);
    {
        ArmGuard armed(corrupt_every(1, {"c.site"}, 42));
        for (int i = 0; i < 8; ++i) {
            (void)fp::maybe_corrupt("c.site", seed_a.data(), seed_a.size());
        }
    }
    {
        ArmGuard armed(corrupt_every(1, {"c.site"}, 43));
        for (int i = 0; i < 8; ++i) {
            (void)fp::maybe_corrupt("c.site", seed_b.data(), seed_b.size());
        }
    }
    EXPECT_NE(seed_a, seed_b);
}

TEST(CorruptMode, ThrowSitesAreInertAndConsumeNoEvaluationIndices)
{
    ArmGuard armed(corrupt_every(1, {"*"}));
    EXPECT_FALSE(fp::fires("t.site"));
    EXPECT_NO_THROW(fp::check("t.site"));
    EXPECT_NO_THROW(fp::check_alloc("t.site"));
    EXPECT_EQ(fp::site_stats("t.site").evaluations, 0u);

    // The corruption channel still fires on its own exact schedule.
    std::vector<unsigned char> buf(8, 0);
    EXPECT_TRUE(fp::maybe_corrupt("t.site", buf.data(), buf.size()));
    EXPECT_EQ(fp::site_stats("t.site").fires, 1u);
    EXPECT_EQ(flipped_bits(buf), 1);
    // Empty buffers are never touched (and consume no index).
    EXPECT_FALSE(fp::maybe_corrupt("t.site", nullptr, 0));
}

TEST(CorruptMode, MaybeCorruptIsInertInThrowMode)
{
    ArmGuard armed(plan_every(1, {"*"}));
    std::vector<unsigned char> buf(8, 0xAB);
    EXPECT_FALSE(fp::maybe_corrupt("t.site", buf.data(), buf.size()));
    EXPECT_EQ(buf, std::vector<unsigned char>(8, 0xAB));
    EXPECT_EQ(fp::site_stats("t.site").evaluations, 0u);
    // And when fully disarmed.
    fp::disarm();
    EXPECT_FALSE(fp::maybe_corrupt("t.site", buf.data(), buf.size()));
    EXPECT_EQ(buf, std::vector<unsigned char>(8, 0xAB));
}

TEST(CorruptMode, ArmsFromTheEnvironment)
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe) single-threaded test setup
    ::setenv("TQSIM_FAILPOINTS", "sites=env.c;every=2;seed=3;mode=corrupt",
             1);
    EXPECT_TRUE(fp::arm_from_env());
    EXPECT_TRUE(fp::current_plan().corrupt);
    EXPECT_NO_THROW(fp::check("env.c"));
    std::vector<unsigned char> buf(8, 0);
    EXPECT_FALSE(fp::maybe_corrupt("env.c", buf.data(), buf.size()));
    EXPECT_TRUE(fp::maybe_corrupt("env.c", buf.data(), buf.size()));
    EXPECT_EQ(flipped_bits(buf), 1);
    fp::disarm();
    // NOLINTNEXTLINE(concurrency-mt-unsafe) single-threaded test setup
    ::unsetenv("TQSIM_FAILPOINTS");
}

// ---- Corruption detection --------------------------------------------------

core::RunOptions
monitored_storm_options()
{
    core::RunOptions opt = storm_options();
    opt.integrity.level = util::IntegrityLevel::kSampled;
    opt.integrity.sample_every = 1;
    return opt;
}

TEST(CorruptionDetection, ArenaLeaseFlipsAreDetectedAndRecoveredSerially)
{
    ThreadGuard serial(1);
    const sim::Circuit circuit = patterned_circuit(10, 48);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    const core::RunOptions opt = monitored_storm_options();

    const core::RunResult want = core::run(circuit, model, opt);
    ASSERT_EQ(want.stats.integrity_failures, 0u);

    // Every third warm lease hands the child a copy with one flipped bit.
    // sample_every = 1 digests every snapshot, so every flip is caught, the
    // poisoned copy is discarded, and the child degrades to the in-place
    // recompute-and-replay path — bit-identically.
    ArmGuard armed(corrupt_every(3, {"sim.arena.lease"}, 7));
    const core::RunResult got = core::run(circuit, model, opt);
    const std::uint64_t fires = fp::site_stats("sim.arena.lease").fires;
    EXPECT_GT(fires, 0u);
    EXPECT_EQ(got.stats.integrity_failures, fires)
        << "every injected flip must be detected";
    EXPECT_GE(got.stats.snapshot_degradations, fires);
    expect_bit_identical(got, want);
}

TEST(CorruptionDetection, CacheInsertFlipsAreQuarantinedOnLease)
{
    ThreadGuard serial(1);
    service::JobServiceConfig cfg;
    cfg.num_lanes = 1;
    cfg.retry.max_attempts = 4;
    cfg.retry.base_backoff_seconds = 0.001;
    cfg.retry.max_backoff_seconds = 0.01;
    service::JobService svc(cfg);

    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    const core::RunResult want_a =
        core::run(patterned_circuit(12, 48), model, storm_options());
    const core::RunResult want_b =
        core::run(divergent_tail_circuit(12, 48), model, storm_options());

    // Every cache offer is corrupted *after* its digest was taken from the
    // producing run's live state.  The producer itself is unaffected; the
    // first job to lease a poisoned snapshot must detect it on the spot
    // (digest verification on lease is unconditional — integrity level off),
    // quarantine the attempt's entries, and retry cache-cold.
    ArmGuard armed(corrupt_every(1, {"service.cache.insert"}, 5));
    const service::JobId producer =
        svc.submit(make_spec(patterned_circuit(12, 48), storm_options()));
    ASSERT_EQ(svc.wait(producer).state, service::JobState::kDone);
    expect_bit_identical(svc.result(producer), want_a);

    const service::JobId consumer = svc.submit(
        make_spec(divergent_tail_circuit(12, 48), storm_options()));
    const service::JobStatus status = svc.wait(consumer);
    ASSERT_EQ(status.state, service::JobState::kDone);
    EXPECT_EQ(status.attempts, 2u);
    expect_bit_identical(svc.result(consumer), want_b);

    const service::ServiceStats stats = svc.service_stats();
    EXPECT_GE(stats.integrity_failures, 1u);
    EXPECT_GE(stats.cache_quarantined, 1u);
    EXPECT_GT(fp::site_stats("service.cache.insert").fires, 0u);
    // Satellite introspection: per-site fail-point counters surface
    // through service_stats().
    bool saw_site = false;
    for (const auto& [site, site_stats] : stats.failpoint_sites) {
        if (site == "service.cache.insert" && site_stats.fires > 0) {
            saw_site = true;
        }
    }
    EXPECT_TRUE(saw_site);
}

TEST(CorruptionDetection, TransportGatherFlipsAbortBeforeScatter)
{
    ThreadGuard serial(1);
    const sim::Circuit circuit = patterned_circuit(10, 48);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    core::RunOptions opt = storm_options();
    opt.backend.kind = sim::BackendKind::kSharded;
    opt.backend.num_shards = 2;
    opt.integrity.level = util::IntegrityLevel::kBoundaries;

    // Fault-free: transport verification is on and silent.
    EXPECT_NO_THROW(core::run(circuit, model, opt));

    // Every gather pass lands one flipped bit in the staging buffer; the
    // post-copy digest disagrees with the pre-copy member digests and the
    // exchange aborts before scatter can spread the corruption.
    ArmGuard armed(corrupt_every(1, {"dist.transport.gather"}, 3));
    EXPECT_THROW(core::run(circuit, model, opt), util::IntegrityError);
    EXPECT_GT(fp::site_stats("dist.transport.gather").fires, 0u);

    // With integrity off the same flip passes silently — the gap shadow
    // re-verification exists to close (see ShadowVerification below).
    opt.integrity.level = util::IntegrityLevel::kOff;
    EXPECT_NO_THROW(core::run(circuit, model, opt));
}

// ---- Shadow re-verification --------------------------------------------------

TEST(ShadowVerification, FaultFreeJobsAgreeOnTheAlternateConfiguration)
{
    ThreadGuard serial(1);
    service::JobServiceConfig cfg;
    cfg.num_lanes = 1;
    cfg.shadow_fraction = 1.0;
    service::JobService svc(cfg);

    const core::RunResult want =
        core::run(patterned_circuit(8, 24),
                  noise::NoiseModel::sycamore_depolarizing(),
                  storm_options());

    const service::JobId id =
        svc.submit(make_spec(patterned_circuit(8, 24), storm_options()));
    const service::JobStatus status = svc.wait(id);
    EXPECT_EQ(status.state, service::JobState::kDone);
    EXPECT_EQ(status.attempts, 1u);
    expect_bit_identical(svc.result(id), want);

    const service::ServiceStats stats = svc.service_stats();
    EXPECT_EQ(stats.shadow_runs, 1u);
    EXPECT_EQ(stats.shadow_mismatches, 0u);
}

TEST(ShadowVerification, CatchesSilentGatherCorruption)
{
    ThreadGuard serial(1);
    service::JobServiceConfig cfg;
    cfg.num_lanes = 1;
    cfg.shadow_fraction = 1.0;
    cfg.retry.max_attempts = 3;
    cfg.retry.base_backoff_seconds = 0.001;
    cfg.retry.max_backoff_seconds = 0.01;
    service::JobService svc(cfg);

    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    core::RunOptions opt = storm_options();
    opt.backend.kind = sim::BackendKind::kSharded;
    opt.backend.num_shards = 2;
    // Integrity monitors OFF: the flip is silent in the primary run.  The
    // shadow re-execution on the alternate (dense) configuration has no
    // gather passes, so it reproduces the true distribution and the
    // comparison exposes the lie.
    const core::RunResult want =
        core::run(patterned_circuit(10, 48), model, opt);

    ArmGuard armed(corrupt_every(2, {"dist.transport.gather"}, 9));
    const service::JobId id =
        svc.submit(make_spec(patterned_circuit(10, 48), opt));
    const service::JobStatus status = svc.wait(id);
    EXPECT_GT(fp::site_stats("dist.transport.gather").fires, 0u);

    const service::ServiceStats stats = svc.service_stats();
    ASSERT_TRUE(service::is_terminal(status.state));
    if (status.state == service::JobState::kDone) {
        // A flip may land on an amplitude the sampler never distinguishes
        // (or be overwritten by a later exchange); a completed job must
        // then still be bit-identical to the fault-free run — the one
        // outcome this test exists to forbid is a *silently wrong* kDone.
        expect_bit_identical(svc.result(id), want);
    } else {
        EXPECT_EQ(status.state, service::JobState::kRejected);
        EXPECT_EQ(status.error.reason,
                  service::RejectReason::kIntegrityFailure);
        EXPECT_GE(stats.shadow_mismatches, 1u);
        EXPECT_GE(stats.integrity_failures, 1u);
    }
    EXPECT_GE(stats.shadow_runs, 1u);
}

// ---- The corruption storm ----------------------------------------------------

TEST(CorruptionStorm, SeededCorruptionScheduleOverMultiTenantStorm)
{
    ThreadGuard serial(1);
    const int width = 12;
    const int gates = 48;
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    // Jobs 6 and 7 run sharded so the transport corruption site is
    // exercised; everything runs with the full online-monitor stack on.
    auto options_for = [&](int j) {
        core::RunOptions opt = monitored_storm_options();
        if (j >= 6) {
            opt.backend.kind = sim::BackendKind::kSharded;
            opt.backend.num_shards = 2;
        }
        return opt;
    };
    auto circuit_for = [&](int j) {
        return j % 2 == 0 ? patterned_circuit(width, gates)
                          : divergent_tail_circuit(width, gates);
    };
    std::vector<core::RunResult> want;
    want.reserve(8);
    for (int j = 0; j < 8; ++j) {
        want.push_back(core::run(circuit_for(j), model, options_for(j)));
    }

    service::JobServiceConfig cfg;
    cfg.num_lanes = 2;
    cfg.reaper_period_seconds = 0.002;
    cfg.retry.max_attempts = 6;
    cfg.retry.base_backoff_seconds = 0.001;
    cfg.retry.max_backoff_seconds = 0.01;
    cfg.degrade_decay_seconds = 0.05;
    cfg.degrade_recovery_jobs = 2;
    // Shadow a deterministic subset: shadows of dense jobs run sharded, so
    // they too walk through the corrupted transport.
    cfg.shadow_fraction = 0.4;
    service::JobService svc(cfg);

    const std::vector<std::string> corrupt_sites = {
        "sim.arena.lease", "service.cache.insert", "dist.transport.gather"};
    std::vector<service::JobId> ids;
    {
        ArmGuard armed(corrupt_every(5, corrupt_sites, 0xC0DE));
        for (int j = 0; j < 8; ++j) {
            ids.push_back(
                svc.submit(make_spec(circuit_for(j), options_for(j),
                                     j % 2 == 0 ? "tenant-a" : "tenant-b")));
        }
        int done = 0;
        for (int j = 0; j < 8; ++j) {
            const service::JobStatus status = svc.wait(ids[j]);
            ASSERT_TRUE(service::is_terminal(status.state)) << j;
            if (status.state == service::JobState::kDone) {
                ++done;
                // Zero silently-wrong completions: whatever was flipped
                // along the way, a job that reports success must be
                // bit-identical to its fault-free isolated run.
                expect_bit_identical(svc.result(ids[j]), want[j]);
            } else {
                EXPECT_EQ(status.error.reason,
                          service::RejectReason::kIntegrityFailure)
                    << j;
            }
        }
        EXPECT_GE(done, 1);
        EXPECT_GT(fp::total_fires(), 0u);
        EXPECT_GT(fp::site_stats("sim.arena.lease").fires, 0u);
        EXPECT_GT(fp::site_stats("service.cache.insert").fires, 0u);

        // Satellite introspection: the service surfaces the per-site
        // counters and the integrity/shadow story in one snapshot.
        const service::ServiceStats stats = svc.service_stats();
        EXPECT_FALSE(stats.failpoint_sites.empty());
        EXPECT_GT(stats.shadow_runs, 0u);
    }

    // Storm over, injectors disarmed: whatever poisoned snapshots are
    // still parked in the cache must be caught on lease (quarantine +
    // retry), so every resubmission completes bit-identically.
    ASSERT_TRUE(wait_for_recovery(svc, 5.0));
    for (int j = 0; j < 8; ++j) {
        const service::JobId id = svc.submit(
            make_spec(circuit_for(j), options_for(j),
                      j % 2 == 0 ? "tenant-a" : "tenant-b"));
        ASSERT_EQ(svc.wait(id).state, service::JobState::kDone) << j;
        expect_bit_identical(svc.result(id), want[j]);
    }
}

/// The CI corruption leg: runs only when TQSIM_FAILPOINTS armed a
/// corruption-mode plan from the environment (see .github/workflows/ci.yml),
/// so a plain local `ctest` skips it.
TEST(CorruptionEnvStorm, EnvArmedCorruptionIsAlwaysDetected)
{
    if (!fp::armed() || !fp::current_plan().corrupt) {
        GTEST_SKIP()
            << "TQSIM_FAILPOINTS does not arm a corruption-mode plan";
    }
    ThreadGuard serial(1);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    auto circuit_for = [&](int j) {
        return j % 2 == 0 ? patterned_circuit(12, 48)
                          : divergent_tail_circuit(12, 48);
    };

    // Fault-free references, computed with the injectors parked; re-arming
    // from the environment restores (and resets) the CI schedule.
    fp::disarm();
    std::vector<core::RunResult> want;
    want.reserve(4);
    for (int j = 0; j < 4; ++j) {
        want.push_back(
            core::run(circuit_for(j), model, monitored_storm_options()));
    }
    core::RunOptions sharded_opt = monitored_storm_options();
    sharded_opt.backend.kind = sim::BackendKind::kSharded;
    sharded_opt.backend.num_shards = 2;
    const core::RunResult want_sharded =
        core::run(circuit_for(0), model, sharded_opt);
    ASSERT_TRUE(fp::arm_from_env());

    service::JobServiceConfig cfg;
    cfg.num_lanes = 2;
    cfg.reaper_period_seconds = 0.002;
    cfg.retry.max_attempts = 6;
    cfg.retry.base_backoff_seconds = 0.001;
    cfg.retry.max_backoff_seconds = 0.01;
    service::JobService svc(cfg);

    // Dense jobs recover from every flip (in-run snapshot degradation,
    // cache-lease quarantine + retry) and must all complete bit-identically.
    std::vector<service::JobId> ids;
    for (int j = 0; j < 4; ++j) {
        ids.push_back(
            svc.submit(make_spec(circuit_for(j), monitored_storm_options(),
                                 j % 2 == 0 ? "tenant-a" : "tenant-b")));
    }
    // One sharded job walks the transport site; with a dense env schedule
    // it may exhaust its retries, but never completes silently wrong.
    const service::JobId sharded_id =
        svc.submit(make_spec(circuit_for(0), sharded_opt, "tenant-a"));

    for (int j = 0; j < 4; ++j) {
        ASSERT_EQ(svc.wait(ids[j]).state, service::JobState::kDone) << j;
        expect_bit_identical(svc.result(ids[j]), want[j]);
    }
    const service::JobStatus sharded_status = svc.wait(sharded_id);
    ASSERT_TRUE(service::is_terminal(sharded_status.state));
    if (sharded_status.state == service::JobState::kDone) {
        expect_bit_identical(svc.result(sharded_id), want_sharded);
    } else {
        EXPECT_EQ(sharded_status.error.reason,
                  service::RejectReason::kIntegrityFailure);
    }
    EXPECT_GT(fp::total_fires(), 0u);
}

// ---- The chaos storm -------------------------------------------------------

TEST(ChaosStorm, SeededFaultScheduleOverMultiTenantStorm)
{
    ThreadGuard guard(2);
    const int width = 12;
    const int gates = 48;
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    // Fault-free expectations, computed before anything is armed.  Jobs 6
    // and 7 run sharded (2 shards) so the transport sites are exercised.
    auto options_for = [&](int j) {
        core::RunOptions opt = storm_options();
        if (j >= 6) {
            opt.backend.kind = sim::BackendKind::kSharded;
            opt.backend.num_shards = 2;
        }
        return opt;
    };
    auto circuit_for = [&](int j) {
        return j % 2 == 0 ? patterned_circuit(width, gates)
                          : divergent_tail_circuit(width, gates);
    };
    std::vector<core::RunResult> want;
    want.reserve(8);
    for (int j = 0; j < 8; ++j) {
        want.push_back(core::run(circuit_for(j), model, options_for(j)));
    }

    service::JobServiceConfig cfg;
    cfg.num_lanes = 4;
    cfg.reaper_period_seconds = 0.002;
    cfg.retry.max_attempts = 6;
    cfg.retry.base_backoff_seconds = 0.001;
    cfg.retry.max_backoff_seconds = 0.01;
    cfg.watchdog_hang_seconds = 2.0;
    cfg.degrade_decay_seconds = 0.05;
    cfg.degrade_recovery_jobs = 2;
    service::JobService svc(cfg);

    const std::vector<std::string> storm_sites = {
        "sim.arena.root",      "sim.arena.lease",
        "sim.arena.snapshot",  "service.cache.lease",
        "service.cache.insert", "dist.transport.gather",
        "dist.transport.scatter"};
    fp::FailPlan plan;
    plan.seed = 0x5EED;
    plan.probability = 0.012;
    plan.every = 0;
    plan.sites = storm_sites;

    std::vector<service::JobId> ids;
    {
        ArmGuard armed(plan);
        for (int j = 0; j < 8; ++j) {
            service::JobSpec spec =
                make_spec(circuit_for(j), options_for(j),
                          j % 2 == 0 ? "tenant-a" : "tenant-b");
            ids.push_back(svc.submit(std::move(spec)));
        }
        // Every job reaches a terminal state — nothing hangs, nothing is
        // lost, even with faults firing at seven sites.
        int done = 0;
        for (int j = 0; j < 8; ++j) {
            const service::JobStatus status = svc.wait(ids[j]);
            ASSERT_TRUE(service::is_terminal(status.state));
            if (status.state == service::JobState::kDone) {
                ++done;
                // Completed jobs are bit-identical to their fault-free
                // isolated runs, no matter how many faults were retried or
                // degraded around along the way.
                expect_bit_identical(svc.result(ids[j]), want[j]);
            }
        }
        EXPECT_GE(done, 1);
        EXPECT_GT(svc.service_stats().retries, 0u);
        EXPECT_GT(fp::total_fires(), 0u);
        int fired_sites = 0;
        for (const std::string& site : storm_sites) {
            if (fp::site_stats(site.c_str()).fires > 0) {
                ++fired_sites;
            }
        }
        EXPECT_GE(fired_sites, 4) << "storm should exercise many seams";
    }

    // Cache-poisoning check: with faults disarmed, resubmitting the whole
    // storm leases whatever the faulty phase left in the cache — every job
    // must complete and stay bit-identical.
    ASSERT_TRUE(wait_for_recovery(svc, 5.0));
    for (int j = 0; j < 8; ++j) {
        const service::JobId id = svc.submit(
            make_spec(circuit_for(j), options_for(j),
                      j % 2 == 0 ? "tenant-a" : "tenant-b"));
        ASSERT_EQ(svc.wait(id).state, service::JobState::kDone) << j;
        expect_bit_identical(svc.result(id), want[j]);
    }
}

}  // namespace
}  // namespace tqsim
