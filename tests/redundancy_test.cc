// Tests for the Redun-Elim (Li et al. DAC'20) baseline model.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "circuits/bv.h"
#include "circuits/qft.h"
#include "core/partitioner.h"
#include "reuse/redundancy_eliminator.h"

namespace tqsim::reuse {
namespace {

using noise::NoiseModel;
using sim::Circuit;

Circuit
simple_circuit(int width, int gates)
{
    Circuit c(width);
    for (int i = 0; i < gates; ++i) {
        c.h(i % width);
    }
    return c;
}

TEST(RedunElim, ZeroNoiseSharesEverything)
{
    // All shots identical -> one shared path: G gate executions total.
    const Circuit c = simple_circuit(3, 20);
    const auto r = analyze_redundancy_elimination(
        c, NoiseModel::sycamore_depolarizing(0.0, 0.0), 1000, 1);
    EXPECT_EQ(r.shared_gate_executions, 20u);
    EXPECT_NEAR(r.normalized_computation, 20.0 / (1000.0 * 20.0), 1e-12);
    EXPECT_NEAR(r.redundancy_ratio, 1.0 - r.normalized_computation, 1e-12);
}

TEST(RedunElim, ExtremeNoiseSharesAlmostNothing)
{
    // With error probability ~1 and many operator choices, shots diverge at
    // the first gates; computation approaches the baseline.
    const Circuit c = simple_circuit(3, 30);
    NoiseModel m;
    m.add_on_1q_gates(noise::Channel::depolarizing_1q(0.99));
    const auto r = analyze_redundancy_elimination(c, m, 200, 2);
    EXPECT_GT(r.normalized_computation, 0.8);
    EXPECT_LE(r.normalized_computation, 1.0 + 1e-12);
}

TEST(RedunElim, MonotonicInErrorRate)
{
    const Circuit c = simple_circuit(4, 40);
    double prev = 0.0;
    for (double p : {0.001, 0.01, 0.1, 0.5}) {
        NoiseModel m;
        m.add_on_1q_gates(noise::Channel::depolarizing_1q(p));
        const auto r = analyze_redundancy_elimination(c, m, 500, 3);
        EXPECT_GE(r.normalized_computation, prev - 0.02)
            << "p=" << p;  // statistically monotone
        prev = r.normalized_computation;
    }
}

TEST(RedunElim, RedundancyDropsWithGateCount)
{
    // The paper's Fig. 19 insight: longer circuits -> less absolute
    // redundancy for Redun-Elim.
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    const auto short_r = analyze_redundancy_elimination(
        simple_circuit(4, 30), m, 500, 4);
    const auto long_r = analyze_redundancy_elimination(
        simple_circuit(4, 600), m, 500, 4);
    EXPECT_LT(short_r.normalized_computation, long_r.normalized_computation);
}

TEST(RedunElim, EmptyInputsAreSafe)
{
    const Circuit c = simple_circuit(2, 5);
    const auto r = analyze_redundancy_elimination(
        c, NoiseModel::sycamore_depolarizing(), 0, 5);
    EXPECT_EQ(r.shared_gate_executions, 0u);
}

TEST(RedunElim, SharedExecutionsBounded)
{
    // shared is between G (all identical) and N*G (all distinct).
    const Circuit c = circuits::qft(6);
    const auto r = analyze_redundancy_elimination(
        c, NoiseModel::sycamore_depolarizing(), 300, 6);
    EXPECT_GE(r.shared_gate_executions, c.size());
    EXPECT_LE(r.shared_gate_executions, 300u * c.size());
}

TEST(TqsimNormalizedComputation, MatchesHandComputation)
{
    // Tree (4,2) over 30+30 gates: work = 4*30 + 8*30 = 360 of 8*60 = 480.
    core::PartitionPlan plan{core::TreeStructure({4, 2}), {0, 30, 60}};
    EXPECT_NEAR(tqsim_normalized_computation(plan), 360.0 / 480.0, 1e-12);
    // Copy cost 5 gates charged per below-level-0 node: 8 nodes * 5 = 40.
    EXPECT_NEAR(tqsim_normalized_computation(plan, 5.0),
                (360.0 + 40.0) / 480.0, 1e-12);
}

TEST(TqsimNormalizedComputation, BaselineIsUnity)
{
    core::PartitionPlan plan{core::TreeStructure::baseline(100), {0, 50}};
    EXPECT_NEAR(tqsim_normalized_computation(plan), 1.0, 1e-12);
}

TEST(RedunElim, DeterministicBySeed)
{
    const Circuit c = simple_circuit(4, 50);
    const NoiseModel m = NoiseModel::sycamore_depolarizing(0.01, 0.1);
    const auto a = analyze_redundancy_elimination(c, m, 400, 9);
    const auto b = analyze_redundancy_elimination(c, m, 400, 9);
    EXPECT_EQ(a.shared_gate_executions, b.shared_gate_executions);
}

// ---- Stable fingerprints (the service cache's key material) ----------------

/// The fixed reference circuit the golden-constant tests pin.
Circuit
reference_circuit()
{
    Circuit c(3);
    c.h(0).cx(0, 1).rz(2, 0.25).ry(1, -1.5).ccx(0, 1, 2);
    return c;
}

TEST(Fingerprint, GoldenConstantsPinCrossProcessStability)
{
    // These constants were recorded from a separate process.  They pin the
    // cross-run/cross-process stability contract the service's reuse cache
    // depends on: FNV-1a over byte-serialized gate records, no
    // pointer/typeid/unordered-container input anywhere.  If a change to
    // the fingerprint breaks these on purpose, re-record them — but know
    // that doing so invalidates every persisted key.
    EXPECT_EQ(circuit_fingerprint(reference_circuit()),
              0x5bfa2778879aae20ULL);
    EXPECT_EQ(segment_fingerprint(reference_circuit(), 0, 2),
              0xa3b81b885e68e832ULL);
    EXPECT_EQ(noise_model_digest(NoiseModel::sycamore_depolarizing()),
              0x8596c62c3ddb5d90ULL);
}

TEST(Fingerprint, SameCircuitBuiltTwiceSharesTheDigest)
{
    EXPECT_EQ(circuit_fingerprint(reference_circuit()),
              circuit_fingerprint(reference_circuit()));
    // The whole-circuit digest is the full-range segment digest.
    const Circuit c = reference_circuit();
    EXPECT_EQ(circuit_fingerprint(c), segment_fingerprint(c, 0, c.size()));
    // end is clamped, so an overshoot range is the full circuit too.
    EXPECT_EQ(circuit_fingerprint(c),
              segment_fingerprint(c, 0, c.size() + 100));
}

TEST(Fingerprint, CircuitNameIsExcluded)
{
    Circuit named(3, "some descriptive name");
    named.h(0).cx(0, 1).rz(2, 0.25).ry(1, -1.5).ccx(0, 1, 2);
    EXPECT_EQ(circuit_fingerprint(named),
              circuit_fingerprint(reference_circuit()));
}

TEST(Fingerprint, NearMissesGetDistinctDigests)
{
    const std::uint64_t base = circuit_fingerprint(reference_circuit());

    // One parameter nudged by one ULP.
    Circuit param(3);
    param.h(0).cx(0, 1)
        .rz(2, std::nextafter(0.25, 1.0))
        .ry(1, -1.5).ccx(0, 1, 2);
    EXPECT_NE(circuit_fingerprint(param), base);

    // Same gates, two swapped in order.
    Circuit order(3);
    order.cx(0, 1).h(0).rz(2, 0.25).ry(1, -1.5).ccx(0, 1, 2);
    EXPECT_NE(circuit_fingerprint(order), base);

    // One operand changed.
    Circuit operand(3);
    operand.h(1).cx(0, 1).rz(2, 0.25).ry(1, -1.5).ccx(0, 1, 2);
    EXPECT_NE(circuit_fingerprint(operand), base);

    // One gate kind changed (rz -> ry, same qubit/angle).
    Circuit kind(3);
    kind.h(0).cx(0, 1).ry(2, 0.25).ry(1, -1.5).ccx(0, 1, 2);
    EXPECT_NE(circuit_fingerprint(kind), base);

    // Same gates on a wider register (width is part of the identity:
    // state dimensions differ, so plans/snapshots must not be shared).
    Circuit wider(4);
    wider.h(0).cx(0, 1).rz(2, 0.25).ry(1, -1.5).ccx(0, 1, 2);
    EXPECT_NE(circuit_fingerprint(wider), base);

    // A prefix range must not collide with the full range.
    const Circuit c = reference_circuit();
    EXPECT_NE(segment_fingerprint(c, 0, 2), base);
}

TEST(Fingerprint, SegmentDigestCoversTheRangeOnly)
{
    // Two circuits sharing gates [0, 2) share that segment's digest even
    // though their tails differ — exactly what lets the service's prefix
    // snapshots be shared across divergent-tail jobs.
    Circuit a(3);
    a.h(0).cx(0, 1).rz(2, 0.25);
    Circuit b(3);
    b.h(0).cx(0, 1).ry(2, 9.0);
    EXPECT_EQ(segment_fingerprint(a, 0, 2), segment_fingerprint(b, 0, 2));
    EXPECT_NE(segment_fingerprint(a, 0, 3), segment_fingerprint(b, 0, 3));
}

TEST(Fingerprint, NoiseDigestSeparatesModels)
{
    const std::uint64_t syc =
        noise_model_digest(NoiseModel::sycamore_depolarizing());
    EXPECT_EQ(noise_model_digest(NoiseModel::sycamore_depolarizing()), syc);
    EXPECT_NE(noise_model_digest(NoiseModel::ideal()), syc);
    // A different rate is a different model.
    EXPECT_NE(noise_model_digest(NoiseModel::sycamore_depolarizing(0.002)),
              syc);
    // Readout error is part of the identity even with no gate channels.
    EXPECT_NE(noise_model_digest(NoiseModel::readout_only(0.01)),
              noise_model_digest(NoiseModel::readout_only(0.02)));
    EXPECT_NE(noise_model_digest(NoiseModel::readout_only(0.01)),
              noise_model_digest(NoiseModel::ideal()));
}

}  // namespace
}  // namespace tqsim::reuse
