// Unit tests for the density-matrix reference simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "dm/density_matrix.h"
#include "dm/dm_simulator.h"
#include "metrics/fidelity.h"
#include "noise/channels.h"
#include "sim/circuit.h"
#include "sim/gate_kernels.h"
#include "util/rng.h"

namespace tqsim::dm {
namespace {

using metrics::Distribution;
using noise::Channel;
using noise::NoiseModel;
using sim::Circuit;
using sim::Complex;
using sim::Gate;
using sim::StateVector;

StateVector
random_state(int num_qubits, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<Complex> amps(sim::dim(num_qubits));
    for (auto& a : amps) {
        a = Complex(rng.normal(), rng.normal());
    }
    StateVector s(num_qubits, std::move(amps));
    s.normalize();
    return s;
}

TEST(DensityMatrix, InitialStateIsPureZero)
{
    DensityMatrix rho(2);
    EXPECT_EQ(rho.at(0, 0), Complex(1, 0));
    EXPECT_EQ(rho.at(1, 1), Complex(0, 0));
    EXPECT_NEAR(rho.trace().real(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, WidthLimits)
{
    EXPECT_THROW(DensityMatrix(0), std::invalid_argument);
    EXPECT_THROW(DensityMatrix(14), std::invalid_argument);
}

TEST(DensityMatrix, FromStateVectorDiagonal)
{
    Circuit c(2);
    c.h(0);
    const DensityMatrix rho = DensityMatrix::from_state_vector(
        c.simulate_ideal());
    EXPECT_NEAR(rho.at(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.at(1, 1).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.at(0, 1).real(), 0.5, 1e-12);  // coherence
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, GateApplicationMatchesPureStateEvolution)
{
    // For pure states, evolving rho must equal |U psi><U psi|.
    Circuit c(3);
    c.h(0).cx(0, 1).t(1).fsim(1, 2, 0.4, 0.3).ccx(0, 1, 2).ry(2, 0.8);
    StateVector psi(3);
    DensityMatrix rho(3);
    for (const Gate& g : c.gates()) {
        sim::apply_gate(psi, g);
        rho.apply_gate(g);
    }
    const DensityMatrix expected = DensityMatrix::from_state_vector(psi);
    EXPECT_TRUE(rho.approx_equal(expected, 1e-10));
}

TEST(DensityMatrix, TracePreservedUnderGates)
{
    DensityMatrix rho = DensityMatrix::from_state_vector(random_state(3, 3));
    rho.apply_gate(Gate::h(1));
    rho.apply_gate(Gate::cx(0, 2));
    EXPECT_NEAR(rho.trace().real(), 1.0, 1e-10);
    EXPECT_NEAR(rho.trace().imag(), 0.0, 1e-10);
}

TEST(DensityMatrix, DepolarizingDrivesTowardMaximallyMixed)
{
    // In the Pauli-error convention E(rho) = (1-p) rho + p/3 (X+Y+Z terms),
    // p = 3/4 is the completely mixing point: E(|0><0|) = I/2.
    DensityMatrix rho(1);
    rho.apply_kraus(Channel::depolarizing_1q(0.75).kraus().ops(), {0});
    EXPECT_NEAR(rho.at(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.at(1, 1).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
    // At p = 1 the state is a uniform mixture over X/Y/Z conjugations:
    // diag(1/3, 2/3) for |0><0|.
    DensityMatrix full(1);
    full.apply_kraus(Channel::depolarizing_1q(1.0).kraus().ops(), {0});
    EXPECT_NEAR(full.at(0, 0).real(), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(full.at(1, 1).real(), 2.0 / 3.0, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingAnalytic)
{
    // AD(gamma) on |+><+|: excited population 0.5 -> 0.5(1-gamma);
    // coherence 0.5 -> 0.5 sqrt(1-gamma).
    const double gamma = 0.4;
    Circuit c(1);
    c.h(0);
    DensityMatrix rho = DensityMatrix::from_state_vector(c.simulate_ideal());
    rho.apply_kraus(Channel::amplitude_damping(gamma).kraus().ops(), {0});
    EXPECT_NEAR(rho.at(1, 1).real(), 0.5 * (1 - gamma), 1e-12);
    EXPECT_NEAR(rho.at(0, 0).real(), 1.0 - 0.5 * (1 - gamma), 1e-12);
    EXPECT_NEAR(rho.at(0, 1).real(), 0.5 * std::sqrt(1 - gamma), 1e-12);
}

TEST(DensityMatrix, PhaseDampingKillsCoherenceOnly)
{
    const double lambda = 0.7;
    Circuit c(1);
    c.h(0);
    DensityMatrix rho = DensityMatrix::from_state_vector(c.simulate_ideal());
    rho.apply_kraus(Channel::phase_damping(lambda).kraus().ops(), {0});
    EXPECT_NEAR(rho.at(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.at(1, 1).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.at(0, 1).real(), 0.5 * std::sqrt(1 - lambda), 1e-12);
}

TEST(DensityMatrix, ThermalRelaxationMatchesT1T2Decay)
{
    // Off-diagonal decays as e^{-t/T2}; excited population as e^{-t/T1}.
    const double t1 = 80.0, t2 = 100.0, t = 25.0;
    Circuit c(1);
    c.h(0);
    DensityMatrix rho = DensityMatrix::from_state_vector(c.simulate_ideal());
    rho.apply_kraus(Channel::thermal_relaxation(t1, t2, t).kraus().ops(), {0});
    EXPECT_NEAR(rho.at(1, 1).real(), 0.5 * std::exp(-t / t1), 1e-10);
    EXPECT_NEAR(rho.at(0, 1).real(), 0.5 * std::exp(-t / t2), 1e-10);
}

TEST(DensityMatrix, KrausValidation)
{
    DensityMatrix rho(2);
    const auto ops = Channel::depolarizing_1q(0.1).kraus().ops();
    EXPECT_THROW(rho.apply_kraus(ops, {}), std::invalid_argument);
    EXPECT_THROW(rho.apply_kraus(ops, {5}), std::out_of_range);
}

TEST(DmSimulator, IdealModelGivesPureDiagonalOfIdealState)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    const Distribution d = dm_output_distribution(c, NoiseModel::ideal());
    EXPECT_NEAR(d[0], 0.5, 1e-12);
    EXPECT_NEAR(d[7], 0.5, 1e-12);
}

TEST(DmSimulator, NoiseSpreadsDistribution)
{
    Circuit c(2);
    c.x(0).x(1);
    NoiseModel m;
    m.add_on_1q_gates(Channel::depolarizing_1q(0.2));
    const Distribution d = dm_output_distribution(c, m);
    EXPECT_GT(d[3], 0.5);            // still peaked at |11>
    EXPECT_GT(d[0] + d[1] + d[2], 0.01);  // but leaked elsewhere
    EXPECT_NEAR(d[0] + d[1] + d[2] + d[3], 1.0, 1e-10);
}

TEST(DmSimulator, ReadoutConfusionSingleBit)
{
    // p(1)=1 with flip 0.1 -> p(1)=0.9.
    Distribution d(1);
    d[1] = 1.0;
    const Distribution out = apply_readout_confusion(d, 0.1);
    EXPECT_NEAR(out[1], 0.9, 1e-12);
    EXPECT_NEAR(out[0], 0.1, 1e-12);
}

TEST(DmSimulator, ReadoutConfusionFactorizesOverBits)
{
    Distribution d(2);
    d[0b11] = 1.0;
    const Distribution out = apply_readout_confusion(d, 0.2);
    EXPECT_NEAR(out[0b11], 0.64, 1e-12);
    EXPECT_NEAR(out[0b01], 0.16, 1e-12);
    EXPECT_NEAR(out[0b10], 0.16, 1e-12);
    EXPECT_NEAR(out[0b00], 0.04, 1e-12);
}

TEST(DmSimulator, ReadoutValidation)
{
    Distribution d(1);
    d[0] = 1.0;
    EXPECT_THROW(apply_readout_confusion(d, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace tqsim::dm
