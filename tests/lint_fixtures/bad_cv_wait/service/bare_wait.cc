// Lint fixture: condition-variable waits without the predicate overload.
// The `cv-wait-predicate` rule must flag the bare wait() and the two-arg
// wait_until(); the predicate forms must pass.  Not compiled.

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace tqsim::service {

class WorkQueue
{
  public:
    void
    pop_bare()
    {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock);  // violation: lost notify + spurious wakeup
    }

    bool
    pop_deadline(std::chrono::steady_clock::time_point deadline)
    {
        std::unique_lock<std::mutex> lock(m_);
        return cv_.wait_until(lock, deadline) ==  // violation: no predicate
               std::cv_status::no_timeout;
    }

    void
    pop_checked()
    {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [this] { return ready_; });  // compliant
    }

    bool
    pop_checked_deadline(std::chrono::steady_clock::time_point deadline)
    {
        std::unique_lock<std::mutex> lock(m_);
        return cv_.wait_until(lock, deadline,  // compliant
                              [this] { return ready_; });
    }

  private:
    std::mutex m_;
    std::condition_variable cv_;
    bool ready_ = false;
};

}  // namespace tqsim::service
