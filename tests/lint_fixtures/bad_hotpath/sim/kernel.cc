// Lint fixture: deliberate hot-path hygiene violations inside a
// parallel_for kernel body.  The `hotpath` rule must flag the container
// construction, the growth call, and the operator new.  Not compiled.

#include <complex>
#include <functional>
#include <vector>

#include "sim/parallel.h"

namespace tqsim::sim {

void
alloc_in_kernel(std::vector<std::complex<double>>& amps)
{
    parallel_for(amps.size(), [&](std::uint64_t begin, std::uint64_t end) {
        std::vector<double> scratch;  // violation: container construction
        for (std::uint64_t i = begin; i < end; ++i) {
            scratch.push_back(std::abs(amps[i]));  // violation: growth
        }
        auto* leak = new double[end - begin];  // violation: operator new
        (void)leak;
    });
}

void
type_erased_kernel(std::vector<double>& out)
{
    std::function<double(std::uint64_t)> body =  // fine here: outside body
        [](std::uint64_t i) { return static_cast<double>(i); };
    parallel_for(out.size(), [&](std::uint64_t begin, std::uint64_t end) {
        std::function<double(std::uint64_t)> f = body;  // violation
        for (std::uint64_t i = begin; i < end; ++i) {
            out[i] = f(i);
        }
    });
}

}  // namespace tqsim::sim
