// Lint fixture: deliberate layering violation.  util/ is the bottom layer
// and may not include from sim/ (an upward edge in the layer DAG); the
// `layering` rule must flag the include below.  Not compiled.

#include "sim/state_vector.h"  // violation: util -> sim is upward

namespace tqsim::util {

int
peek_state_size()
{
    return 0;
}

}  // namespace tqsim::util
