// Seeded violation for the `catch` rule: both handlers swallow the
// exception — no rethrow, no structured error, no allow(catch) rationale.

namespace service {

int risky();
void log_something();

int swallow_and_default() {
    try {
        return risky();
    } catch (...) {
        // "can't happen" — exactly the silent swallow the rule forbids.
    }
    return 0;
}

void swallow_with_logging() {
    try {
        risky();
    } catch (int) {
        log_something();  // logging alone is not a structured record
    }
}

}  // namespace service
