// Lint fixture: deliberate determinism violations.  Every construct here
// must be flagged by the `determinism` rule; none of this code is compiled.

#include <cstdlib>
#include <random>

namespace tqsim::sim {

double
unreproducible_draw()
{
    std::random_device rd;            // violation: nondeterministic source
    std::mt19937 gen(rd());           // violation: ad-hoc engine
    std::uniform_real_distribution<double> dist(0.0, 1.0);  // violation
    return dist(gen) + static_cast<double>(rand()) / RAND_MAX;  // violation
}

void
time_seeded(unsigned long& seed)
{
    seed = static_cast<unsigned long>(time(nullptr));  // violation
    srand(static_cast<unsigned>(seed));                // violation
}

}  // namespace tqsim::sim
