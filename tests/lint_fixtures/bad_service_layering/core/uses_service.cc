// Lint fixture: deliberate layering violation.  service/ is the TOP of the
// layer DAG — it may include core/reuse/sim/util, but nothing below it may
// include service/ headers; the `layering` rule must flag the include
// below.  Not compiled.

#include "service/job_service.h"  // violation: core -> service is upward

namespace tqsim::core {

int
peek_service()
{
    return 0;
}

}  // namespace tqsim::core
