// Lint fixture: half of a deliberate file-level include cycle; the
// `layering` rule's cycle detector must flag it.  Not compiled.
#ifndef TQSIM_LINT_FIXTURE_CYCLE_A_H_
#define TQSIM_LINT_FIXTURE_CYCLE_A_H_

#include "core/cycle_b.h"  // violation: A -> B -> A

struct CycleA {};

#endif
