// Lint fixture: the other half of the include cycle.  Not compiled.
#ifndef TQSIM_LINT_FIXTURE_CYCLE_B_H_
#define TQSIM_LINT_FIXTURE_CYCLE_B_H_

#include "core/cycle_a.h"  // violation: B -> A -> B

struct CycleB {};

#endif
