// Lint fixture: every violation below carries an inline suppression, so
// the whole directory must lint CLEAN — this is the self-test for the
// `// tqsim-lint: allow(<rule>)` annotation machinery.  Not compiled.

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/parallel.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace tqsim::sim {

int
suppressed_rand()
{
    // Same-line annotation.
    return rand();  // tqsim-lint: allow(determinism)
}

int
suppressed_rand_above()
{
    // tqsim-lint: allow(determinism)
    return rand();
}

int
suppressed_catch()
{
    try {
        return rand();  // tqsim-lint: allow(determinism)
        // Deliberate best-effort swallow, annotated with a rationale.
        // tqsim-lint: allow(catch)
    } catch (...) {
    }
    return 0;
}

void
suppressed_kernel(std::vector<double>& out)
{
    parallel_for(out.size(), [&](std::uint64_t begin, std::uint64_t end) {
        // tqsim-lint: allow(hotpath)
        std::vector<double> scratch(end - begin);
        for (std::uint64_t i = begin; i < end; ++i) {
            out[i] = scratch[i - begin];
        }
    });
}

void
suppressed_shared_stream(std::vector<double>& out, util::Rng& rng)
{
    parallel_for(out.size(), [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) {
            out[i] = rng.uniform();  // tqsim-lint: allow(rng-discipline)
        }
    });
}

void
suppressed_join_under_lock(util::Mutex& m, std::thread& t)
{
    util::MutexLock lock(m);
    // tqsim-lint: allow(lock-order)
    t.join();
}

void
suppressed_bare_wait()
{
    std::mutex m;
    std::condition_variable cv;
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock);  // tqsim-lint: allow(cv-wait-predicate)
}

}  // namespace tqsim::sim
