// Lint fixture: every violation below carries an inline suppression, so
// the whole directory must lint CLEAN — this is the self-test for the
// `// tqsim-lint: allow(<rule>)` annotation machinery.  Not compiled.

#include <cstdlib>
#include <vector>

#include "sim/parallel.h"

namespace tqsim::sim {

int
suppressed_rand()
{
    // Same-line annotation.
    return rand();  // tqsim-lint: allow(determinism)
}

int
suppressed_rand_above()
{
    // tqsim-lint: allow(determinism)
    return rand();
}

int
suppressed_catch()
{
    try {
        return rand();  // tqsim-lint: allow(determinism)
        // Deliberate best-effort swallow, annotated with a rationale.
        // tqsim-lint: allow(catch)
    } catch (...) {
    }
    return 0;
}

void
suppressed_kernel(std::vector<double>& out)
{
    parallel_for(out.size(), [&](std::uint64_t begin, std::uint64_t end) {
        // tqsim-lint: allow(hotpath)
        std::vector<double> scratch(end - begin);
        for (std::uint64_t i = begin; i < end; ++i) {
            out[i] = scratch[i - begin];
        }
    });
}

}  // namespace tqsim::sim
