// Lint fixture: draws from a shared util::Rng stream captured by reference
// into parallel regions.  The `rng-discipline` rule must flag the two
// shared-stream draws; the split-inside-the-region kernel must pass.  Not
// compiled.

#include <cstdint>
#include <vector>

#include "sim/parallel.h"
#include "util/rng.h"

namespace tqsim::sim {

void
shared_stream_kernel(std::vector<double>& out, util::Rng& rng)
{
    parallel_for(out.size(), [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) {
            out[i] = rng.uniform();  // violation: shared stream, racy draws
        }
    });
}

double
shared_stream_sum(std::uint64_t total, util::Rng& rng)
{
    return parallel_sum(total, [&](std::uint64_t begin, std::uint64_t end) {
        double s = 0.0;
        for (std::uint64_t i = begin; i < end; ++i) {
            s += static_cast<double>(rng.uniform_u64(2));  // violation
        }
        return s;
    });
}

void
split_stream_kernel(std::vector<double>& out, const util::Rng& master)
{
    parallel_for(out.size(), [&](std::uint64_t begin, std::uint64_t end) {
        // Compliant: the lane derives its own stream inside the region.
        util::Rng lane_rng = master.split(1, begin);
        for (std::uint64_t i = begin; i < end; ++i) {
            out[i] = lane_rng.uniform();
        }
    });
}

}  // namespace tqsim::sim
