// Lint fixture: violations of the declared lock hierarchy (the file name
// puts these mutexes in the sim/parallel rank group: run_mutex_ = pool-run
// 40, m_ = pool-job 45).  The `lock-order` rule must flag the rank
// inversion and the join under a held lock; the correctly ordered pair and
// the join in an unlock window must pass.  Not compiled.

#include <thread>

#include "util/mutex.h"

namespace tqsim::sim {

class PoolAbuse
{
  public:
    void
    inverted_acquire()
    {
        util::MutexLock job_lock(m_);
        // violation: pool-run (40) acquired while pool-job (45) is held.
        util::MutexLock run_lock(run_mutex_);
    }

    void
    ordered_acquire()
    {
        util::MutexLock run_lock(run_mutex_);
        util::MutexLock job_lock(m_);  // compliant: 40 then 45
    }

    void
    join_under_lock()
    {
        util::MutexLock run_lock(run_mutex_);
        worker_.join();  // violation: blocking join while holding a lock
    }

    void
    join_in_window()
    {
        util::MutexLock run_lock(run_mutex_);
        run_lock.unlock();
        worker_.join();  // compliant: the guard is open across the join
        run_lock.lock();
    }

  private:
    util::Mutex run_mutex_;
    util::Mutex m_;
    std::thread worker_;
};

}  // namespace tqsim::sim
