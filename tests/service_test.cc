/**
 * @file
 * Tests for the multi-tenant job service (src/service/): validation and
 * admission control, fair-share scheduling, the cross-request reuse cache
 * (LRU + byte cap), the job lifecycle (submit/status/cancel/wait/result,
 * deadlines), and the headline acceptance property — many concurrent jobs
 * sharing a circuit prefix share compiled plans and prefix snapshots while
 * staying bit-identical to the same jobs run in isolation through
 * core::run, and an over-memory-cap job is rejected with a structured
 * error instead of an OOM.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tqsim.h"
#include "service/job.h"
#include "service/job_service.h"
#include "service/job_validator.h"
#include "service/reuse_cache.h"
#include "service/scheduler.h"
#include "sim/parallel.h"
#include "util/integrity.h"

namespace tqsim::service {
namespace {

// ---- Helpers ---------------------------------------------------------------

/// A deterministic gate-pattern circuit: `gates` gates on `width` qubits.
sim::Circuit
patterned_circuit(int width, int gates)
{
    sim::Circuit c(width);
    for (int i = 0; i < gates; ++i) {
        switch (i % 4) {
        case 0: c.h(i % width); break;
        case 1: c.rx(i % width, 0.1 + 0.01 * i); break;
        case 2: c.cx(i % width, (i + 1) % width); break;
        default: c.rz(i % width, 0.2 + 0.02 * i); break;
        }
    }
    return c;
}

/// A circuit with the same first `gates/2` gates as patterned_circuit but a
/// different tail — the prefix-sharing partner.
sim::Circuit
divergent_tail_circuit(int width, int gates)
{
    sim::Circuit c(width);
    const int half = gates / 2;
    for (int i = 0; i < half; ++i) {
        switch (i % 4) {
        case 0: c.h(i % width); break;
        case 1: c.rx(i % width, 0.1 + 0.01 * i); break;
        case 2: c.cx(i % width, (i + 1) % width); break;
        default: c.rz(i % width, 0.2 + 0.02 * i); break;
        }
    }
    for (int i = half; i < gates; ++i) {
        c.ry(i % width, 0.3 + 0.005 * i);  // tail differs from pattern
    }
    return c;
}

/// The standard options used by the sharing tests: a two-level manual tree
/// (so level 0 exists and equal gate counts give equal boundaries), raw
/// outcomes kept for the bit-identity comparison.
core::RunOptions
sharing_options()
{
    core::RunOptions opt;
    opt.strategy = core::PartitionStrategy::kManual;
    opt.manual_arities = {4, 4};  // 16 shots, 4 level-0 children
    opt.shots = 16;
    opt.collect_outcomes = true;
    opt.seed = 0xC0FFEE;
    return opt;
}

JobSpec
make_spec(sim::Circuit circuit, core::RunOptions opt,
          std::string tenant = "default")
{
    return JobSpec{.circuit = std::move(circuit),
                   .model = noise::NoiseModel::sycamore_depolarizing(),
                   .options = std::move(opt),
                   .tenant = std::move(tenant),
                   .deadline_seconds = 0.0};
}

/// Asserts the parts of a RunResult that must be bit-identical between a
/// service job and an isolated core::run of the same spec.
void
expect_bit_identical(const core::RunResult& got, const core::RunResult& want)
{
    ASSERT_EQ(got.raw_outcomes.size(), want.raw_outcomes.size());
    EXPECT_EQ(got.raw_outcomes, want.raw_outcomes);
    ASSERT_EQ(got.distribution.probabilities().size(),
              want.distribution.probabilities().size());
    EXPECT_EQ(got.distribution.probabilities(),
              want.distribution.probabilities());
    // Deterministic counters match too — a leased prefix re-accumulates the
    // cached trajectory stats, so even error_events line up exactly.
    EXPECT_EQ(got.stats.gate_applications, want.stats.gate_applications);
    EXPECT_EQ(got.stats.channel_applications,
              want.stats.channel_applications);
    EXPECT_EQ(got.stats.error_events, want.stats.error_events);
    EXPECT_EQ(got.stats.nodes_simulated, want.stats.nodes_simulated);
    EXPECT_EQ(got.stats.outcomes, want.stats.outcomes);
}

// ---- JobValidator ----------------------------------------------------------

TEST(JobValidator, AdmitsReasonableJob)
{
    JobValidator v;
    JobSpec spec = make_spec(patterned_circuit(8, 24), sharing_options());
    AdmissionEstimate est;
    JobError err = v.validate(spec, &est);
    EXPECT_FALSE(err.failed()) << err.message;
    EXPECT_EQ(est.state_bytes, std::uint64_t{16} << 8);  // 16 B * 2^8
    EXPECT_GT(est.num_levels, 0u);
    EXPECT_GT(est.threads, 0u);
    EXPECT_EQ(est.peak_state_bytes,
              (est.num_levels + est.threads) * est.state_bytes);
}

TEST(JobValidator, RejectsEmptyCircuit)
{
    JobValidator v;
    JobSpec spec = make_spec(sim::Circuit(4), sharing_options());
    EXPECT_EQ(v.validate(spec).reason, RejectReason::kEmptyCircuit);
}

TEST(JobValidator, RejectsZeroShots)
{
    JobValidator v;
    core::RunOptions opt = sharing_options();
    opt.shots = 0;
    JobSpec spec = make_spec(patterned_circuit(4, 8), opt);
    EXPECT_EQ(v.validate(spec).reason, RejectReason::kZeroShots);
}

TEST(JobValidator, RejectsOverMaxShots)
{
    AdmissionLimits limits;
    limits.max_shots = 100;
    JobValidator v(limits);
    core::RunOptions opt = sharing_options();
    opt.shots = 101;
    opt.manual_arities.clear();
    opt.strategy = core::PartitionStrategy::kDCP;
    JobSpec spec = make_spec(patterned_circuit(4, 8), opt);
    EXPECT_EQ(v.validate(spec).reason, RejectReason::kTooManyShots);
}

TEST(JobValidator, RejectsTooWideRegister)
{
    AdmissionLimits limits;
    limits.max_qubits = 6;
    JobValidator v(limits);
    JobSpec spec = make_spec(patterned_circuit(7, 8), sharing_options());
    EXPECT_EQ(v.validate(spec).reason, RejectReason::kTooManyQubits);
}

TEST(JobValidator, RejectsBadManualPartition)
{
    JobValidator v;
    core::RunOptions opt = sharing_options();
    opt.manual_arities = {4, 0};
    JobSpec spec = make_spec(patterned_circuit(4, 8), opt);
    EXPECT_EQ(v.validate(spec).reason, RejectReason::kBadPartition);

    opt.manual_arities.clear();  // kManual with no arities at all
    spec.options = opt;
    EXPECT_EQ(v.validate(spec).reason, RejectReason::kBadPartition);
}

TEST(JobValidator, RejectsBadShardCount)
{
    JobValidator v;
    core::RunOptions opt = sharing_options();
    opt.backend.kind = sim::BackendKind::kSharded;
    opt.backend.num_shards = 3;  // not a power of two
    JobSpec spec = make_spec(patterned_circuit(4, 8), opt);
    EXPECT_EQ(v.validate(spec).reason, RejectReason::kBadBackend);
}

TEST(JobValidator, RejectsNegativeDeadline)
{
    JobValidator v;
    JobSpec spec = make_spec(patterned_circuit(4, 8), sharing_options());
    spec.deadline_seconds = -1.0;
    EXPECT_EQ(v.validate(spec).reason, RejectReason::kBadDeadline);
}

TEST(JobValidator, RejectsOverMemoryCapWithTheMath)
{
    AdmissionLimits limits;
    limits.max_state_bytes = 1024;  // far below a 10-qubit run's peak
    JobValidator v(limits);
    JobSpec spec = make_spec(patterned_circuit(10, 24), sharing_options());
    AdmissionEstimate est;
    JobError err = v.validate(spec, &est);
    EXPECT_EQ(err.reason, RejectReason::kOverMemoryCap);
    // The message shows the admission math, not just "too big".
    EXPECT_NE(err.message.find("exceeds the admission cap"),
              std::string::npos)
        << err.message;
    EXPECT_NE(err.message.find(std::to_string(est.peak_state_bytes)),
              std::string::npos)
        << err.message;
}

// ---- Scheduler -------------------------------------------------------------

TEST(Scheduler, FifoWithinOneTenant)
{
    Scheduler s;
    s.enqueue("a", 1);
    s.enqueue("a", 2);
    s.enqueue("a", 3);
    EXPECT_EQ(s.dequeue(), std::optional<JobId>{1});
    EXPECT_EQ(s.dequeue(), std::optional<JobId>{2});
    EXPECT_EQ(s.dequeue(), std::optional<JobId>{3});
    EXPECT_EQ(s.dequeue(), std::nullopt);
}

TEST(Scheduler, FairShareInterleavesTenants)
{
    // Tenant a floods the queue before b submits one job; b must not wait
    // behind all of a's backlog.
    Scheduler s;
    s.enqueue("a", 1);
    s.enqueue("a", 2);
    s.enqueue("a", 3);
    s.enqueue("b", 10);
    EXPECT_EQ(s.dequeue(), std::optional<JobId>{1});   // all idle: a first
    EXPECT_EQ(s.dequeue(), std::optional<JobId>{10});  // b has 0 running
    EXPECT_EQ(s.dequeue(), std::optional<JobId>{2});   // tie: a least recent
    EXPECT_EQ(s.dequeue(), std::optional<JobId>{3});
    EXPECT_EQ(s.running(), 4u);
    s.finish("a");
    s.finish("a");
    s.finish("a");
    s.finish("b");
    EXPECT_EQ(s.running(), 0u);
}

TEST(Scheduler, FinishReleasesTheRunningSlot)
{
    Scheduler s;
    s.enqueue("a", 1);
    s.enqueue("b", 2);
    s.enqueue("a", 3);
    ASSERT_EQ(s.dequeue(), std::optional<JobId>{1});
    s.finish("a");  // a back to 0 running -> next pick is a again (fifo tie
                    // broken toward b, the least recently served)
    EXPECT_EQ(s.dequeue(), std::optional<JobId>{2});
    EXPECT_EQ(s.dequeue(), std::optional<JobId>{3});
}

TEST(Scheduler, RemoveDropsQueuedJobOnly)
{
    Scheduler s;
    s.enqueue("a", 1);
    s.enqueue("a", 2);
    EXPECT_TRUE(s.remove("a", 1));
    EXPECT_FALSE(s.remove("a", 1));      // already gone
    EXPECT_FALSE(s.remove("a", 99));     // never queued
    EXPECT_FALSE(s.remove("zzz", 2));    // wrong tenant
    EXPECT_EQ(s.queued(), 1u);
    EXPECT_EQ(s.dequeue(), std::optional<JobId>{2});
}

// ---- ReuseCache ------------------------------------------------------------

std::shared_ptr<const PrefixSnapshot>
snapshot_of_bytes(std::size_t amp_count)
{
    auto snap = std::make_shared<PrefixSnapshot>();
    snap->amplitudes.resize(amp_count);
    // Honest digest: lookup_prefix re-verifies every lease.
    snap->digest = util::integrity::digest_doubles(
        reinterpret_cast<const double*>(snap->amplitudes.data()),
        snap->amplitudes.size() * 2U);
    return snap;
}

PrefixKey
prefix_key(std::uint64_t tag)
{
    PrefixKey k;
    k.segment_hash = tag;
    k.noise_digest = 1;
    k.seed = 2;
    k.exec = 3;
    k.child = 0;
    return k;
}

TEST(ReuseCache, PrefixRoundTripAndCounters)
{
    ReuseCache cache;
    EXPECT_EQ(cache.lookup_prefix(prefix_key(1)), nullptr);
    cache.insert_prefix(prefix_key(1), snapshot_of_bytes(8), 8);
    auto hit = cache.lookup_prefix(prefix_key(1));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->amplitudes.size(), 8u);
    EXPECT_EQ(cache.lookup_prefix(prefix_key(2)), nullptr);

    ReuseCache::Stats st = cache.stats();
    EXPECT_EQ(st.prefix_hits, 1u);
    EXPECT_EQ(st.prefix_misses, 2u);
    EXPECT_EQ(st.entries, 1u);
    EXPECT_GT(st.bytes_in_use, 0u);
}

TEST(ReuseCache, LruEvictionHonorsTheByteCap)
{
    // Entry cost = amplitude bytes + the snapshot struct itself; budget the
    // cache for exactly two entries.
    const std::size_t amps = 64;
    const std::uint64_t entry_bytes =
        amps * sizeof(sim::Complex) + sizeof(PrefixSnapshot);
    ReuseCache::Config cfg;
    cfg.capacity_bytes = 2 * entry_bytes + entry_bytes / 2;
    ReuseCache cache(cfg);

    cache.insert_prefix(prefix_key(1), snapshot_of_bytes(amps), amps);
    cache.insert_prefix(prefix_key(2), snapshot_of_bytes(amps), amps);
    ASSERT_NE(cache.lookup_prefix(prefix_key(1)), nullptr);  // refresh 1
    cache.insert_prefix(prefix_key(3), snapshot_of_bytes(amps), amps);

    // 2 was coldest -> evicted; 1 (refreshed) and 3 remain; budget held.
    EXPECT_EQ(cache.lookup_prefix(prefix_key(2)), nullptr);
    EXPECT_NE(cache.lookup_prefix(prefix_key(1)), nullptr);
    EXPECT_NE(cache.lookup_prefix(prefix_key(3)), nullptr);
    ReuseCache::Stats st = cache.stats();
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.entries, 2u);
    EXPECT_LE(st.bytes_in_use, cfg.capacity_bytes);
}

TEST(ReuseCache, DeclinesEntriesLargerThanTheWholeBudget)
{
    ReuseCache::Config cfg;
    cfg.capacity_bytes = 64;  // smaller than any real snapshot
    ReuseCache cache(cfg);
    cache.insert_prefix(prefix_key(1), snapshot_of_bytes(1024), 1024);
    EXPECT_EQ(cache.lookup_prefix(prefix_key(1)), nullptr);
    ReuseCache::Stats st = cache.stats();
    EXPECT_GE(st.declined, 1u);
    EXPECT_EQ(st.entries, 0u);
    EXPECT_EQ(st.bytes_in_use, 0u);
}

TEST(ReuseCache, DeclinesChildrenPastThePopulationCap)
{
    ReuseCache::Config cfg;
    cfg.prefix_children_cap = 2;
    ReuseCache cache(cfg);
    for (std::uint64_t child = 0; child < 4; ++child) {
        PrefixKey k = prefix_key(7);
        k.child = child;
        cache.insert_prefix(k, snapshot_of_bytes(4), 4);
    }
    EXPECT_EQ(cache.stats().entries, 2u);  // children 0 and 1 only
    PrefixKey k = prefix_key(7);
    k.child = 3;
    EXPECT_EQ(cache.lookup_prefix(k), nullptr);
}

TEST(ReuseCache, ReinsertingAPresentKeyIsANoOp)
{
    ReuseCache cache;
    auto first = snapshot_of_bytes(4);
    cache.insert_prefix(prefix_key(1), first, 4);
    cache.insert_prefix(prefix_key(1), snapshot_of_bytes(16), 16);
    auto hit = cache.lookup_prefix(prefix_key(1));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit.get(), first.get());  // first writer won
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ReuseCache, ExecDigestSeparatesConfigurations)
{
    const std::uint64_t base = exec_digest(3, 1024, 0, 0);
    EXPECT_EQ(exec_digest(3, 1024, 0, 0), base);
    EXPECT_NE(exec_digest(4, 1024, 0, 0), base);  // fusion cap
    EXPECT_NE(exec_digest(3, 2048, 0, 0), base);  // diag threshold
    EXPECT_NE(exec_digest(3, 1024, 1, 0), base);  // backend kind
    EXPECT_NE(exec_digest(3, 1024, 1, 4), base);  // shard count
}

// ---- JobService lifecycle --------------------------------------------------

TEST(JobService, RunsAJobToDoneBitIdenticalToCoreRun)
{
    JobSpec spec = make_spec(patterned_circuit(6, 24), sharing_options());
    const core::RunResult isolated =
        core::run(spec.circuit, spec.model, spec.options);

    JobService svc;
    JobId id = svc.submit(spec);
    JobStatus st = svc.wait(id);
    EXPECT_EQ(st.state, JobState::kDone);
    EXPECT_EQ(st.id, id);
    EXPECT_EQ(st.tenant, "default");
    EXPECT_EQ(st.shots_total, 16u);
    EXPECT_EQ(st.shots_completed, 16u);  // streamed counter reached total
    EXPECT_FALSE(st.error.failed());
    expect_bit_identical(svc.result(id), isolated);
}

TEST(JobService, RejectedJobCarriesStructuredErrorAndStableId)
{
    JobServiceConfig cfg;
    cfg.limits.max_state_bytes = 1024;
    JobService svc(cfg);
    JobId id = svc.submit(make_spec(patterned_circuit(10, 24),
                                    sharing_options()));
    // wait() returns immediately: rejection is terminal at submit time.
    JobStatus st = svc.wait(id);
    EXPECT_EQ(st.state, JobState::kRejected);
    EXPECT_EQ(st.error.reason, RejectReason::kOverMemoryCap);
    EXPECT_THROW((void)svc.result(id), std::logic_error);
}

TEST(JobService, UnknownIdsThrow)
{
    JobService svc;
    EXPECT_THROW((void)svc.status(42), std::invalid_argument);
    EXPECT_THROW((void)svc.wait(42), std::invalid_argument);
    EXPECT_THROW((void)svc.cancel(42), std::invalid_argument);
    EXPECT_THROW((void)svc.result(42), std::invalid_argument);
}

TEST(JobService, QueueFullRejectsBeyondTheCap)
{
    JobServiceConfig cfg;
    cfg.num_lanes = 0;  // nothing dequeues: jobs pile up
    cfg.limits.max_queued_jobs = 2;
    JobService svc(cfg);
    JobSpec spec = make_spec(patterned_circuit(4, 8), sharing_options());
    JobId a = svc.submit(spec);
    JobId b = svc.submit(spec);
    JobId c = svc.submit(spec);
    EXPECT_EQ(svc.status(a).state, JobState::kScheduled);
    EXPECT_EQ(svc.status(b).state, JobState::kScheduled);
    EXPECT_EQ(svc.status(c).state, JobState::kRejected);
    EXPECT_EQ(svc.status(c).error.reason, RejectReason::kQueueFull);
}

TEST(JobService, CancelsAQueuedJobImmediately)
{
    JobServiceConfig cfg;
    cfg.num_lanes = 0;  // deterministic: the job can never start running
    JobService svc(cfg);
    JobId id = svc.submit(make_spec(patterned_circuit(4, 8),
                                    sharing_options()));
    EXPECT_EQ(svc.status(id).state, JobState::kScheduled);
    EXPECT_TRUE(svc.cancel(id));
    JobStatus st = svc.wait(id);
    EXPECT_EQ(st.state, JobState::kCancelled);
    EXPECT_FALSE(svc.cancel(id));  // already terminal
    EXPECT_EQ(svc.queued(), 0u);
}

TEST(JobService, ReaperExpiresAQueuedJobPastItsDeadline)
{
    JobServiceConfig cfg;
    cfg.num_lanes = 0;  // deterministic: only the reaper can touch the job
    cfg.reaper_period_seconds = 0.001;
    JobService svc(cfg);
    JobSpec spec = make_spec(patterned_circuit(4, 8), sharing_options());
    spec.deadline_seconds = 0.005;
    JobId id = svc.submit(spec);
    JobStatus st = svc.wait(id);
    EXPECT_EQ(st.state, JobState::kCancelled);
    EXPECT_EQ(st.error.reason, RejectReason::kDeadlineExceeded);
}

TEST(JobService, CancelsARunningJobCooperatively)
{
    JobServiceConfig cfg;
    cfg.num_lanes = 1;
    JobService svc(cfg);
    // A deep manual tree => thousands of nodes => the run is long enough to
    // observe kRunning, and cancellation lands at the next node boundary.
    core::RunOptions opt = sharing_options();
    opt.manual_arities = {8, 8, 8, 8};
    opt.shots = 8 * 8 * 8 * 8;
    JobId id = svc.submit(make_spec(patterned_circuit(14, 48), opt));

    // Spin until the lane picks it up (bounded; fails loudly on timeout).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (svc.status(id).state == JobState::kScheduled &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
    }
    ASSERT_NE(svc.status(id).state, JobState::kScheduled);

    svc.cancel(id);
    JobStatus st = svc.wait(id);
    // Almost always kCancelled; kDone only if the run won the race, which
    // is still a valid terminal outcome of cancel-after-start.
    EXPECT_TRUE(st.state == JobState::kCancelled ||
                st.state == JobState::kDone);
    if (st.state == JobState::kCancelled) {
        EXPECT_LT(st.shots_completed, st.shots_total);
    }
}

TEST(JobService, WaitWakesPromptlyNotOnReaperGranularity)
{
    // A pathological reaper period: if wait() relied on reaper polling to
    // observe terminal transitions, this test would take 60+ seconds.
    JobServiceConfig cfg;
    cfg.num_lanes = 1;
    cfg.reaper_period_seconds = 60.0;
    JobService svc(cfg);
    const auto start = std::chrono::steady_clock::now();
    JobId id = svc.submit(make_spec(patterned_circuit(6, 8),
                                    sharing_options()));
    JobStatus st = svc.wait(id);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_EQ(st.state, JobState::kDone);
    EXPECT_LT(waited, 30.0);  // Completion must wake the waiter directly.
}

TEST(JobService, StatusReportsAttemptCounts)
{
    JobServiceConfig cfg;
    cfg.num_lanes = 1;
    JobService svc(cfg);
    JobId id = svc.submit(make_spec(patterned_circuit(6, 8),
                                    sharing_options()));
    EXPECT_EQ(svc.wait(id).state, JobState::kDone);
    EXPECT_EQ(svc.status(id).attempts, 1u);
    // A validation rejection never dispatches: zero attempts.
    JobId rejected = svc.submit(make_spec(sim::Circuit(4),
                                          sharing_options()));
    EXPECT_EQ(svc.wait(rejected).state, JobState::kRejected);
    EXPECT_EQ(svc.status(rejected).attempts, 0u);
}

TEST(JobService, ShutdownCancelsQueuedJobs)
{
    JobSpec spec = make_spec(patterned_circuit(4, 8), sharing_options());
    JobId id = 0;
    JobStatus st;
    {
        JobServiceConfig cfg;
        cfg.num_lanes = 0;
        JobService svc(cfg);
        id = svc.submit(spec);
        // Destructor runs here: queued jobs must land terminal, not hang.
        st = svc.status(id);
    }
    EXPECT_EQ(st.state, JobState::kScheduled);  // last observable pre-dtor
}

// ---- Cross-request reuse: the acceptance-criterion test --------------------

TEST(JobService, EightConcurrentJobsSharePrefixAndStayBitIdentical)
{
    const int width = 8;
    const int gates = 40;
    const sim::Circuit circuit_a = patterned_circuit(width, gates);
    const sim::Circuit circuit_b = divergent_tail_circuit(width, gates);
    const core::RunOptions opt = sharing_options();
    const noise::NoiseModel model = noise::NoiseModel::sycamore_depolarizing();

    // Isolated references, computed before the service ever runs.
    const core::RunResult isolated_a = core::run(circuit_a, model, opt);
    const core::RunResult isolated_b = core::run(circuit_b, model, opt);
    // Sanity: the two circuits really share their first segment but not
    // their outcomes (the divergent tails do different rotations).
    ASSERT_EQ(circuit_a.size(), circuit_b.size());
    ASSERT_NE(isolated_a.raw_outcomes, isolated_b.raw_outcomes);

    JobServiceConfig cfg;
    cfg.num_lanes = 4;
    JobService svc(cfg);

    // 8 concurrent jobs across two tenants: 4x circuit A, 4x circuit B.
    // Both circuits have the same gate count, so the manual partitioner
    // puts the level-0 boundary at the same gate index — all 8 jobs share
    // the level-0 segment (identical gates), then diverge.
    std::vector<JobId> ids;
    for (int i = 0; i < 8; ++i) {
        JobSpec spec = make_spec(i % 2 == 0 ? circuit_a : circuit_b, opt,
                                 i % 2 == 0 ? "tenant-a" : "tenant-b");
        ids.push_back(svc.submit(std::move(spec)));
    }
    // Plus an over-memory-cap job submitted into the same storm: it must be
    // rejected with a structured error, not OOM the service.
    JobServiceConfig tiny;
    tiny.limits.max_state_bytes = 1024;
    {
        JobService capped(tiny);
        JobId over = capped.submit(
            make_spec(patterned_circuit(12, gates), opt, "tenant-a"));
        JobStatus st = capped.wait(over);
        EXPECT_EQ(st.state, JobState::kRejected);
        EXPECT_EQ(st.error.reason, RejectReason::kOverMemoryCap);
    }

    std::uint64_t total_plan_hits = 0;
    std::uint64_t total_prefix_leases = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        JobStatus st = svc.wait(ids[i]);
        ASSERT_EQ(st.state, JobState::kDone) << st.error.message;
        const core::RunResult& got = svc.result(ids[i]);
        const core::RunResult& want = i % 2 == 0 ? isolated_a : isolated_b;
        expect_bit_identical(got, want);
        total_plan_hits += got.stats.plan_cache_hits;
        total_prefix_leases += got.stats.prefix_leases;
    }

    // The cross-request counters prove sharing actually happened: later
    // jobs reused compiled plans and leased level-0 snapshots produced by
    // earlier ones (exact counts depend on arrival order, so assert > 0).
    EXPECT_GT(total_plan_hits, 0u);
    EXPECT_GT(total_prefix_leases, 0u);
    ReuseCache::Stats cs = svc.cache_stats();
    EXPECT_GT(cs.plan_hits, 0u);
    EXPECT_GT(cs.prefix_hits, 0u);
    EXPECT_GT(cs.entries, 0u);
}

TEST(JobService, CacheDisabledStillBitIdentical)
{
    JobSpec spec = make_spec(patterned_circuit(6, 24), sharing_options());
    const core::RunResult isolated =
        core::run(spec.circuit, spec.model, spec.options);

    JobServiceConfig cfg;
    cfg.enable_reuse_cache = false;
    JobService svc(cfg);
    JobId first = svc.submit(spec);
    JobId second = svc.submit(spec);
    EXPECT_EQ(svc.wait(first).state, JobState::kDone);
    EXPECT_EQ(svc.wait(second).state, JobState::kDone);
    expect_bit_identical(svc.result(first), isolated);
    expect_bit_identical(svc.result(second), isolated);
    EXPECT_EQ(svc.result(second).stats.prefix_leases, 0u);
    EXPECT_EQ(svc.result(second).stats.plan_cache_hits, 0u);
    ReuseCache::Stats cs = svc.cache_stats();
    EXPECT_EQ(cs.entries, 0u);
}

TEST(JobService, RepeatSubmissionLeasesEveryLevelZeroChild)
{
    // Same spec twice, sequentially: the second job must hit the plan
    // cache at every level and lease every level-0 child snapshot.
    JobSpec spec = make_spec(patterned_circuit(6, 24), sharing_options());
    JobServiceConfig cfg;
    cfg.num_lanes = 1;  // sequential: job 1 fully populates the cache
    JobService svc(cfg);
    JobId first = svc.submit(spec);
    EXPECT_EQ(svc.wait(first).state, JobState::kDone);
    JobId second = svc.submit(spec);
    EXPECT_EQ(svc.wait(second).state, JobState::kDone);

    const core::RunResult& r1 = svc.result(first);
    const core::RunResult& r2 = svc.result(second);
    expect_bit_identical(r2, r1);
    EXPECT_EQ(r2.stats.prefix_leases, 4u);     // all 4 level-0 children
    EXPECT_EQ(r2.stats.plan_cache_hits, 2u);   // both levels' plans
    EXPECT_EQ(r1.stats.prefix_leases, 0u);     // first run was cold
}

}  // namespace
}  // namespace tqsim::service
