// Tests for the simulation-tree arithmetic (Eq. 3, Figs. 6/7, Sec. 3.6).

#include <gtest/gtest.h>

#include "core/tree_structure.h"

namespace tqsim::core {
namespace {

TEST(TreeStructure, PaperFigure6BaselineTree)
{
    // (64,1,1): 193 nodes, 64 outcomes (Fig. 6).
    const TreeStructure t({64, 1, 1});
    EXPECT_EQ(t.num_levels(), 3u);
    EXPECT_EQ(t.instances(0), 64u);
    EXPECT_EQ(t.instances(1), 64u);
    EXPECT_EQ(t.instances(2), 64u);
    EXPECT_EQ(t.total_outcomes(), 64u);
    EXPECT_EQ(t.total_nodes(), 193u);
}

TEST(TreeStructure, PaperFigure7DcpTree)
{
    // (16,2,2): 113 nodes, 64 outcomes (Fig. 7).
    const TreeStructure t({16, 2, 2});
    EXPECT_EQ(t.instances(0), 16u);
    EXPECT_EQ(t.instances(1), 32u);
    EXPECT_EQ(t.instances(2), 64u);
    EXPECT_EQ(t.total_outcomes(), 64u);
    EXPECT_EQ(t.total_nodes(), 113u);
}

TEST(TreeStructure, BaselineFactory)
{
    const TreeStructure t = TreeStructure::baseline(1000, 4);
    EXPECT_EQ(t.arities(), (std::vector<std::uint64_t>{1000, 1, 1, 1}));
    EXPECT_EQ(t.total_outcomes(), 1000u);
}

TEST(TreeStructure, Validation)
{
    EXPECT_THROW(TreeStructure({}), std::invalid_argument);
    EXPECT_THROW(TreeStructure({4, 0, 2}), std::invalid_argument);
    EXPECT_THROW(TreeStructure::baseline(10, 0), std::invalid_argument);
    EXPECT_THROW(TreeStructure({1u << 21, 1u << 21}), std::invalid_argument);
}

TEST(TreeStructure, TheoreticalSpeedupEqualLengths)
{
    // Fig. 7 tree vs baseline: 3*64 / (16+32+64) = 192/112.
    const TreeStructure t({16, 2, 2});
    EXPECT_NEAR(t.theoretical_speedup_equal_lengths(), 192.0 / 112.0, 1e-12);
    // Baseline trees give exactly 1.
    EXPECT_NEAR(TreeStructure::baseline(64, 3).theoretical_speedup_equal_lengths(),
                1.0, 1e-12);
}

TEST(TreeStructure, PaperQft14WorkedExample)
{
    // Sec. 5.1: QFT_14, 32000 shots, 7 subcircuits, 500 first-level shots:
    // theoretical max speedup 3.53x.
    const TreeStructure t({500, 2, 2, 2, 2, 2, 2});
    EXPECT_EQ(t.total_outcomes(), 32000u);
    EXPECT_NEAR(t.theoretical_speedup_equal_lengths(), 3.53, 0.01);
}

TEST(TreeStructure, TheoreticalSpeedupWeighted)
{
    // Two levels (1, N) with equal gate halves: speedup -> ~1.5x for many
    // shots (Sec. 3.6 worked example: (1+N)/2N inverted).
    const TreeStructure t({1, 1000});
    EXPECT_NEAR(t.theoretical_speedup({50, 50}), 2.0 * 1000 / 1001.0, 1e-9);
    EXPECT_THROW(t.theoretical_speedup({50}), std::invalid_argument);
}

TEST(TreeStructure, MaxSpeedupClosedForm)
{
    // k*N/((k-1)+N).
    EXPECT_NEAR(max_speedup_equal_subcircuits(2, 1000), 2.0 * 1000 / 1001.0,
                1e-12);
    EXPECT_NEAR(max_speedup_equal_subcircuits(7, 32000),
                7.0 * 32000 / (6 + 32000), 1e-9);
    // Increases with k (paper Sec. 3.6).
    EXPECT_LT(max_speedup_equal_subcircuits(2, 1000),
              max_speedup_equal_subcircuits(5, 1000));
    EXPECT_THROW(max_speedup_equal_subcircuits(0, 10), std::invalid_argument);
}

TEST(TreeStructure, ToString)
{
    EXPECT_EQ(TreeStructure({16, 2, 2}).to_string(), "(16,2,2)");
    EXPECT_EQ(TreeStructure({250, 1, 1}).to_string(), "(250,1,1)");
}

TEST(TreeStructure, InstancesOutOfRangeThrows)
{
    const TreeStructure t({4, 2});
    EXPECT_THROW(t.instances(2), std::out_of_range);
}

}  // namespace
}  // namespace tqsim::core
