// Tests for the partition planners: Baseline, UCP, XCP, DCP, Manual.

#include <gtest/gtest.h>

#include "circuits/qft.h"
#include "core/partitioner.h"
#include "noise/noise_model.h"

namespace tqsim::core {
namespace {

using noise::NoiseModel;
using sim::Circuit;

Circuit
linear_circuit(int width, int gates)
{
    Circuit c(width, "linear");
    for (int i = 0; i < gates; ++i) {
        if (i % 3 == 2) {
            c.cx(i % width, (i + 1) % width);
        } else {
            c.h(i % width);
        }
    }
    return c;
}

PartitionOptions
base_options(std::uint64_t shots)
{
    PartitionOptions opt;
    opt.shots = shots;
    opt.copy_cost_gates = 10.0;  // deterministic: no host profiling
    return opt;
}

TEST(EqualBoundaries, SplitsEvenlyWithRemainderUpFront)
{
    EXPECT_EQ(equal_boundaries(10, 2), (std::vector<std::size_t>{0, 5, 10}));
    EXPECT_EQ(equal_boundaries(11, 3),
              (std::vector<std::size_t>{0, 4, 8, 11}));
    EXPECT_EQ(equal_boundaries(5, 5),
              (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
    EXPECT_THROW(equal_boundaries(3, 4), std::invalid_argument);
    EXPECT_THROW(equal_boundaries(3, 0), std::invalid_argument);
}

TEST(Partitioner, BaselineStrategyGivesDegenerateTree)
{
    const Circuit c = linear_circuit(4, 60);
    PartitionOptions opt = base_options(500);
    opt.strategy = PartitionStrategy::kBaseline;
    const PartitionPlan plan =
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt);
    EXPECT_EQ(plan.tree.arities(), (std::vector<std::uint64_t>{500}));
    EXPECT_EQ(plan.boundaries, (std::vector<std::size_t>{0, 60}));
}

TEST(Partitioner, IdealModelFallsBackToBaseline)
{
    const Circuit c = linear_circuit(4, 60);
    PartitionOptions opt = base_options(500);
    opt.strategy = PartitionStrategy::kDCP;
    const PartitionPlan plan =
        make_partition_plan(c, NoiseModel::ideal(), opt);
    EXPECT_EQ(plan.num_levels(), 1u);
}

TEST(Partitioner, ShortCircuitFallsBackToBaseline)
{
    // 15 gates with min length 10 -> cannot form 2 subcircuits.
    const Circuit c = linear_circuit(4, 15);
    PartitionOptions opt = base_options(500);
    const PartitionPlan plan =
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt);
    EXPECT_EQ(plan.num_levels(), 1u);
}

TEST(Partitioner, DcpProducesMultiLevelPlanWithEnoughOutcomes)
{
    const Circuit c = circuits::qft(10);  // 235 gates
    PartitionOptions opt = base_options(2000);
    const PartitionPlan plan =
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt);
    EXPECT_GE(plan.num_levels(), 2u);
    EXPECT_GE(plan.tree.total_outcomes(), 2000u);
    // Boundaries cover the circuit with near-equal segments >= min length.
    EXPECT_EQ(plan.boundaries.front(), 0u);
    EXPECT_EQ(plan.boundaries.back(), c.size());
    for (std::size_t g : plan.gates_per_level()) {
        EXPECT_GE(g, 10u);
    }
}

TEST(Partitioner, DcpRemainingAritiesUniformAndAtLeastTwo)
{
    const Circuit c = circuits::qft(10);
    PartitionOptions opt = base_options(4000);
    const PartitionPlan plan =
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt);
    ASSERT_GE(plan.num_levels(), 2u);
    for (std::size_t l = 1; l < plan.num_levels(); ++l) {
        EXPECT_GE(plan.tree.arity(l), 2u);
        // Uniform up to the +1 top-up adjustment.
        EXPECT_LE(plan.tree.arity(l), plan.tree.arity(1) + 1);
    }
}

TEST(Partitioner, DcpSpeedupImprovesWithLongerCircuits)
{
    // Same gate mix (hence same per-gate error), 10x the length: the longer
    // circuit admits more subcircuits and a higher theoretical speedup.
    const NoiseModel m = NoiseModel::sycamore_depolarizing();
    PartitionOptions opt = base_options(4000);
    const PartitionPlan short_plan =
        make_partition_plan(linear_circuit(4, 40), m, opt);
    const PartitionPlan long_plan =
        make_partition_plan(linear_circuit(4, 400), m, opt);
    EXPECT_GE(long_plan.num_levels(), short_plan.num_levels());
    EXPECT_GE(long_plan.theoretical_speedup(),
              short_plan.theoretical_speedup());
}

TEST(Partitioner, DcpRespectsMaxSubcircuitsCap)
{
    const Circuit c = circuits::qft(12);  // 342 gates
    PartitionOptions opt = base_options(32000);
    opt.copy_cost_gates = 1.0;  // would otherwise allow many levels
    opt.max_subcircuits = 3;
    const PartitionPlan plan =
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt);
    EXPECT_LE(plan.num_levels(), 3u);
}

TEST(Partitioner, DcpHigherErrorRateRaisesFirstArity)
{
    const Circuit c = circuits::qft(10);
    PartitionOptions opt = base_options(8000);
    const PartitionPlan lo = make_partition_plan(
        c, NoiseModel::sycamore_depolarizing(0.0005, 0.005), opt);
    const PartitionPlan hi = make_partition_plan(
        c, NoiseModel::sycamore_depolarizing(0.005, 0.05), opt);
    ASSERT_GE(lo.num_levels(), 2u);
    ASSERT_GE(hi.num_levels(), 2u);
    EXPECT_LE(lo.tree.arity(0), hi.tree.arity(0));
}

TEST(Partitioner, UcpUniformArities)
{
    const Circuit c = linear_circuit(4, 90);
    PartitionOptions opt = base_options(1000);
    opt.strategy = PartitionStrategy::kUCP;
    opt.fixed_subcircuits = 3;
    const PartitionPlan plan =
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt);
    EXPECT_EQ(plan.num_levels(), 3u);
    EXPECT_EQ(plan.tree.arities(), (std::vector<std::uint64_t>{10, 10, 10}));
}

TEST(Partitioner, XcpExponentiallyDecreasingArities)
{
    const Circuit c = linear_circuit(4, 90);
    PartitionOptions opt = base_options(1000);
    opt.strategy = PartitionStrategy::kXCP;
    opt.fixed_subcircuits = 3;
    opt.xcp_ratio = 2.0;
    const PartitionPlan plan =
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt);
    // Paper Sec. 5.6: (20,10,5) for 1000 shots.
    EXPECT_EQ(plan.tree.arities(), (std::vector<std::uint64_t>{20, 10, 5}));
}

TEST(Partitioner, ManualStructurePassesThrough)
{
    const Circuit c = linear_circuit(4, 120);
    PartitionOptions opt = base_options(1000);
    opt.strategy = PartitionStrategy::kManual;
    opt.manual_arities = {250, 2, 2};
    const PartitionPlan plan =
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt);
    EXPECT_EQ(plan.tree.to_string(), "(250,2,2)");
    EXPECT_EQ(plan.gates_per_level(),
              (std::vector<std::size_t>{40, 40, 40}));
}

TEST(Partitioner, ManualRequiresArities)
{
    const Circuit c = linear_circuit(4, 120);
    PartitionOptions opt = base_options(1000);
    opt.strategy = PartitionStrategy::kManual;
    EXPECT_THROW(
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt),
        std::invalid_argument);
}

TEST(Partitioner, Validation)
{
    const Circuit empty(3);
    PartitionOptions opt = base_options(100);
    EXPECT_THROW(
        make_partition_plan(empty, NoiseModel::sycamore_depolarizing(), opt),
        std::invalid_argument);
    const Circuit c = linear_circuit(3, 30);
    opt.shots = 0;
    EXPECT_THROW(
        make_partition_plan(c, NoiseModel::sycamore_depolarizing(), opt),
        std::invalid_argument);
}

TEST(Partitioner, StrategyNames)
{
    EXPECT_EQ(strategy_name(PartitionStrategy::kDCP), "DCP");
    EXPECT_EQ(strategy_name(PartitionStrategy::kUCP), "UCP");
    EXPECT_EQ(strategy_name(PartitionStrategy::kXCP), "XCP");
    EXPECT_EQ(strategy_name(PartitionStrategy::kBaseline), "Baseline");
    EXPECT_EQ(strategy_name(PartitionStrategy::kManual), "Manual");
}

TEST(PartitionPlan, TheoreticalSpeedupUsesGateWeights)
{
    PartitionPlan plan{TreeStructure({4, 2}), {0, 30, 60}};
    // Work = 4*30 + 8*30 = 360 vs baseline 8*60 = 480.
    EXPECT_NEAR(plan.theoretical_speedup(), 480.0 / 360.0, 1e-12);
}

}  // namespace
}  // namespace tqsim::core
