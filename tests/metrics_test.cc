// Unit tests for metrics: distributions, Eq. 8 fidelity, Eq. 9 normalized
// fidelity, and the distance measures.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/distribution.h"
#include "metrics/fidelity.h"
#include "sim/circuit.h"

namespace tqsim::metrics {
namespace {

TEST(Distribution, ConstructionAndAccess)
{
    Distribution d(3);
    EXPECT_EQ(d.size(), 8u);
    EXPECT_DOUBLE_EQ(d.total(), 0.0);
    d.add_outcome(5);
    d.add_outcome(5, 2.0);
    EXPECT_DOUBLE_EQ(d[5], 3.0);
    EXPECT_THROW(d.add_outcome(8), std::out_of_range);
}

TEST(Distribution, FromProbabilitiesValidates)
{
    EXPECT_NO_THROW(Distribution::from_probabilities({0.5, 0.5}));
    EXPECT_THROW(Distribution::from_probabilities({0.5, 0.5, 0.5}),
                 std::invalid_argument);  // not a power of two
    EXPECT_THROW(Distribution::from_probabilities({-0.1, 1.1}),
                 std::invalid_argument);
}

TEST(Distribution, FromState)
{
    sim::Circuit c(2);
    c.h(0);
    const Distribution d = Distribution::from_state(c.simulate_ideal());
    EXPECT_NEAR(d[0], 0.5, 1e-12);
    EXPECT_NEAR(d[1], 0.5, 1e-12);
    EXPECT_NEAR(d[2] + d[3], 0.0, 1e-12);
}

TEST(Distribution, FromOutcomesNormalizes)
{
    const Distribution d = Distribution::from_outcomes({1, 1, 3, 1}, 2);
    EXPECT_NEAR(d[1], 0.75, 1e-12);
    EXPECT_NEAR(d[3], 0.25, 1e-12);
    EXPECT_NEAR(d.total(), 1.0, 1e-12);
}

TEST(Distribution, UniformAndArgmax)
{
    const Distribution u = Distribution::uniform(4);
    EXPECT_NEAR(u[7], 1.0 / 16.0, 1e-15);
    Distribution d(2);
    d.add_outcome(2, 5.0);
    d.add_outcome(1, 1.0);
    EXPECT_EQ(d.argmax(), 2u);
}

TEST(Distribution, NormalizeThrowsOnZeroMass)
{
    Distribution d(1);
    EXPECT_THROW(d.normalize(), std::runtime_error);
}

TEST(StateFidelity, IdenticalDistributionsGiveOne)
{
    sim::Circuit c(3);
    c.h(0).cx(0, 1).t(2);
    const Distribution d = Distribution::from_state(c.simulate_ideal());
    EXPECT_NEAR(state_fidelity(d, d), 1.0, 1e-12);
}

TEST(StateFidelity, OrthogonalDistributionsGiveZero)
{
    Distribution a(1), b(1);
    a[0] = 1.0;
    b[1] = 1.0;
    EXPECT_DOUBLE_EQ(state_fidelity(a, b), 0.0);
}

TEST(StateFidelity, HandComputedValue)
{
    // P = (1, 0), Q = (1/2, 1/2): F = (sqrt(1/2))^2 = 1/2.
    Distribution p(1), q(1);
    p[0] = 1.0;
    q[0] = q[1] = 0.5;
    EXPECT_NEAR(state_fidelity(p, q), 0.5, 1e-12);
}

TEST(StateFidelity, SymmetricInArguments)
{
    Distribution p(2), q(2);
    p[0] = 0.7;
    p[3] = 0.3;
    q[0] = 0.2;
    q[1] = 0.8;
    EXPECT_NEAR(state_fidelity(p, q), state_fidelity(q, p), 1e-12);
}

TEST(StateFidelity, SizeMismatchThrows)
{
    Distribution p(1), q(2);
    EXPECT_THROW(state_fidelity(p, q), std::invalid_argument);
}

TEST(NormalizedFidelity, UniformOutputScoresZero)
{
    // Eq. 9's whole point: random output -> 0.
    Distribution ideal(3);
    ideal[2] = 1.0;
    EXPECT_NEAR(normalized_fidelity(ideal, Distribution::uniform(3)), 0.0,
                1e-12);
}

TEST(NormalizedFidelity, PerfectOutputScoresOne)
{
    Distribution ideal(3);
    ideal[2] = 1.0;
    EXPECT_NEAR(normalized_fidelity(ideal, ideal), 1.0, 1e-12);
}

TEST(NormalizedFidelity, BetweenZeroAndOneForTypicalOutputs)
{
    Distribution ideal(2);
    ideal[1] = 1.0;
    Distribution noisy(2);
    noisy[1] = 0.7;
    noisy[0] = noisy[2] = noisy[3] = 0.1;
    const double f = normalized_fidelity(ideal, noisy);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);
}

TEST(NormalizedFidelity, UniformIdealFallsBackToRaw)
{
    const Distribution u = Distribution::uniform(2);
    EXPECT_NEAR(normalized_fidelity(u, u), 1.0, 1e-12);
}

TEST(Tvd, Properties)
{
    Distribution a(1), b(1);
    a[0] = 1.0;
    b[1] = 1.0;
    EXPECT_DOUBLE_EQ(total_variation_distance(a, b), 1.0);
    EXPECT_DOUBLE_EQ(total_variation_distance(a, a), 0.0);
    Distribution c(1);
    c[0] = c[1] = 0.5;
    EXPECT_DOUBLE_EQ(total_variation_distance(a, c), 0.5);
}

TEST(Hellinger, Bounds)
{
    Distribution a(1), b(1);
    a[0] = 1.0;
    b[1] = 1.0;
    EXPECT_NEAR(hellinger_distance(a, b), 1.0, 1e-12);
    EXPECT_NEAR(hellinger_distance(a, a), 0.0, 1e-7);
}

TEST(Mse, HandComputed)
{
    Distribution a(1), b(1);
    a[0] = 1.0;
    b[0] = 0.5;
    b[1] = 0.5;
    // ((0.5)^2 + (0.5)^2)/2 = 0.25.
    EXPECT_NEAR(mean_squared_error(a, b), 0.25, 1e-12);
    EXPECT_DOUBLE_EQ(mean_squared_error(a, a), 0.0);
}

}  // namespace
}  // namespace tqsim::metrics
