// Tests for Pauli-observable expectation values.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/observables.h"
#include "sim/circuit.h"

namespace tqsim::metrics {
namespace {

using sim::Circuit;
using sim::StateVector;

TEST(PauliExpectation, ComputationalBasisStates)
{
    StateVector zero(2);
    EXPECT_NEAR(pauli_expectation(zero, "ZI").real(), 1.0, 1e-12);
    EXPECT_NEAR(pauli_expectation(zero, "IZ").real(), 1.0, 1e-12);
    EXPECT_NEAR(pauli_expectation(zero, "XI").real(), 0.0, 1e-12);
    StateVector one(2);
    one.set_basis_state(1);  // qubit 0 = 1
    EXPECT_NEAR(pauli_expectation(one, "ZI").real(), -1.0, 1e-12);
    EXPECT_NEAR(pauli_expectation(one, "IZ").real(), 1.0, 1e-12);
}

TEST(PauliExpectation, PlusStateHasUnitX)
{
    Circuit c(1);
    c.h(0);
    const StateVector plus = c.simulate_ideal();
    EXPECT_NEAR(pauli_expectation(plus, "X").real(), 1.0, 1e-12);
    EXPECT_NEAR(pauli_expectation(plus, "Z").real(), 0.0, 1e-12);
    EXPECT_NEAR(pauli_expectation(plus, "Y").real(), 0.0, 1e-12);
}

TEST(PauliExpectation, BellStateCorrelators)
{
    // The textbook Bell correlations: <XX> = <ZZ> = 1, <YY> = -1.
    Circuit c(2);
    c.h(0).cx(0, 1);
    const StateVector bell = c.simulate_ideal();
    EXPECT_NEAR(pauli_expectation(bell, "XX").real(), 1.0, 1e-12);
    EXPECT_NEAR(pauli_expectation(bell, "ZZ").real(), 1.0, 1e-12);
    EXPECT_NEAR(pauli_expectation(bell, "YY").real(), -1.0, 1e-12);
    EXPECT_NEAR(pauli_expectation(bell, "ZI").real(), 0.0, 1e-12);
}

TEST(PauliExpectation, HermitianObservablesAreReal)
{
    Circuit c(3);
    c.h(0).t(1).cx(0, 2).ry(1, 0.7).fsim(1, 2, 0.3, 0.2);
    const StateVector s = c.simulate_ideal();
    for (const char* p : {"XYZ", "ZZY", "XIX", "YYY"}) {
        EXPECT_NEAR(pauli_expectation(s, p).imag(), 0.0, 1e-10) << p;
    }
}

TEST(PauliExpectation, Validation)
{
    StateVector s(2);
    EXPECT_THROW(pauli_expectation(s, "Z"), std::invalid_argument);
    EXPECT_THROW(pauli_expectation(s, "ZQ"), std::invalid_argument);
}

TEST(ZMaskExpectation, MatchesStateVectorPath)
{
    Circuit c(3);
    c.h(0).cx(0, 1).ry(2, 0.9).cz(1, 2);
    const StateVector s = c.simulate_ideal();
    const Distribution d = Distribution::from_state(s);
    // Diagonal observables agree between the two evaluation routes.
    EXPECT_NEAR(z_mask_expectation(d, 0b001),
                pauli_expectation(s, "ZII").real(), 1e-10);
    EXPECT_NEAR(z_mask_expectation(d, 0b011),
                pauli_expectation(s, "ZZI").real(), 1e-10);
    EXPECT_NEAR(z_mask_expectation(d, 0b111),
                pauli_expectation(s, "ZZZ").real(), 1e-10);
}

TEST(ZMaskExpectation, IdentityMaskIsOne)
{
    const Distribution d = Distribution::uniform(3);
    EXPECT_NEAR(z_mask_expectation(d, 0), 1.0, 1e-12);
    EXPECT_NEAR(z_mask_expectation(d, 0b101), 0.0, 1e-12);
    EXPECT_THROW(z_mask_expectation(d, 0b1000), std::invalid_argument);
}

}  // namespace
}  // namespace tqsim::metrics
