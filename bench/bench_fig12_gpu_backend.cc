/**
 * @file
 * Figure 12: TQSim speedup with a GPU (CuStateVec) backend — reproduced
 * against modeled V100/A100 profiles (DESIGN.md substitution).  The point
 * the paper makes is backend-independence: TQSim's gain comes from
 * computation-count reduction, so the modeled GPU speedups should track the
 * measured CPU speedups of Fig. 11.
 */

#include "bench_common.h"

#include <map>
#include <vector>

#include "circuits/suite.h"
#include "core/tqsim.h"
#include "hw/backend_profile.h"
#include "hw/platform_presets.h"
#include "util/stats.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 4096);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Figure 12: TQSim on GPU backends (modeled)",
                  "Fig. 12 (CuStateVec: 2.3x average, up to 3.98x)",
                  "speedups mirror the CPU results — the gain is "
                  "backend-agnostic");

    const hw::BackendProfile v100 = hw::v100_profile();
    const hw::BackendProfile a100 = hw::a100_profile();

    std::map<circuits::Family, std::vector<double>> v100_speedups;
    std::vector<double> all;
    for (const circuits::BenchmarkCase& c :
         circuits::benchmark_suite(circuits::SuiteScale::kPaper)) {
        core::RunOptions opt;
        opt.shots = shots;
        // GPU copy cost (Fig. 10): ~5 gate-equivalents.
        opt.copy_cost_gates = v100.copy_cost_in_gates(c.circuit.num_qubits());
        const core::PartitionPlan plan = core::plan(c.circuit, model, opt);
        // Expected noise passes per gate under the depolarizing model.
        const double pass_factor = 1.02;
        const double s = hw::estimate_speedup(plan, c.circuit.num_qubits(),
                                              v100, pass_factor);
        v100_speedups[c.family].push_back(s);
        all.push_back(s);
    }

    util::Table table({"family", "V100 mean speedup", "min", "max"});
    for (circuits::Family f : circuits::all_families()) {
        const auto& v = v100_speedups[f];
        double lo = v[0], hi = v[0];
        for (double s : v) {
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        table.add_row({circuits::family_name(f),
                       util::fmt_speedup(util::mean(v)),
                       util::fmt_speedup(lo), util::fmt_speedup(hi)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("overall mean (V100 model): %s   (paper CuStateVec: 2.3x "
                "avg, <= 3.98x)\n",
                util::fmt_speedup(util::mean(all)).c_str());

    // Backend-agnosticism spot check: one circuit across all platforms.
    const sim::Circuit qft14 = circuits::benchmark_suite(
        circuits::SuiteScale::kPaper)[27].circuit;  // QFT family entry
    core::RunOptions opt;
    opt.shots = shots;
    opt.copy_cost_gates = 5.0;
    const core::PartitionPlan plan = core::plan(qft14, model, opt);
    util::Table agnostic({"platform", "modeled speedup"});
    for (const hw::BackendProfile& p : hw::fig10_platforms()) {
        agnostic.add_row({p.name,
                          util::fmt_speedup(hw::estimate_speedup(
                              plan, qft14.num_qubits(), p, 1.02))});
    }
    agnostic.add_row({a100.name,
                      util::fmt_speedup(hw::estimate_speedup(
                          plan, qft14.num_qubits(), a100, 1.02))});
    std::printf("\nsame plan, every backend (%s on %s):\n%s",
                plan.tree.to_string().c_str(), qft14.name().c_str(),
                agnostic.to_string().c_str());
    std::printf("\nspeedups cluster tightly across backends because the "
                "computation-count\nreduction dominates the platform-"
                "specific copy overhead (the paper's claim).\n");
    return 0;
}
