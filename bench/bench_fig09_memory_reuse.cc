/**
 * @file
 * Figure 9: BV circuits — TQSim trades the (abundant) unused memory for
 * speed.  The paper sweeps 22-30 qubits on an HPC node; here widths up to
 * --max-qubits are measured directly and the paper widths are reported
 * with exact memory accounting and plan-level speedups.
 */

#include "bench_common.h"

#include "circuits/bv.h"
#include "core/tqsim.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 512);
    const int max_measured =
        static_cast<int>(flags.get_u64("max-qubits", 14));
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner(
        "Figure 9: memory-for-speed on BV circuits",
        "Fig. 9 (BV 22-30 qubits; TQSim ~1.5x with extra state memory)",
        "TQSim peak memory = (levels+1) states, well below capacity; "
        "speedup from reuse");

    util::Table table({"qubits", "tree", "baseline mem", "tqsim mem",
                       "measured speedup", "theoretical"});
    for (int n = 10; n <= max_measured; n += 2) {
        const sim::Circuit c =
            circuits::bernstein_vazirani(n, circuits::default_bv_secret(n));
        core::RunOptions opt;
        opt.shots = shots;
        const core::RunResult base = core::run_baseline(c, model, shots);
        const core::RunResult tq = core::run(c, model, opt);
        table.add_row(
            {std::to_string(n), tq.plan.tree.to_string(),
             util::fmt_bytes(base.stats.peak_state_bytes),
             util::fmt_bytes(tq.stats.peak_state_bytes),
             util::fmt_speedup(base.stats.wall_seconds /
                               tq.stats.wall_seconds),
             util::fmt_speedup(tq.plan.theoretical_speedup())});
    }
    std::printf("%s\n", table.to_string().c_str());

    // Paper-scale widths: memory accounting + plan speedups only (no 2^30
    // amplitude arrays on this host).
    util::Table paper({"qubits", "tree (planned)", "baseline mem",
                       "tqsim mem", "% of 192 GB", "theoretical speedup"});
    for (int n = 22; n <= 30; n += 2) {
        const sim::Circuit c =
            circuits::bernstein_vazirani(n, circuits::default_bv_secret(n));
        core::RunOptions opt;
        opt.shots = flags.get_u64("paper-shots", 8192);
        opt.copy_cost_gates = 10.0;
        const core::PartitionPlan plan = core::plan(c, model, opt);
        const std::uint64_t base_mem = sim::state_vector_bytes(n);
        const std::uint64_t tq_mem =
            (plan.num_levels() + 1) * sim::state_vector_bytes(n);
        char pct[32];
        std::snprintf(pct, sizeof(pct), "%.3f%%",
                      100.0 * static_cast<double>(tq_mem) /
                          (192.0 * 1073741824.0));
        paper.add_row({std::to_string(n), plan.tree.to_string(),
                       util::fmt_bytes(base_mem), util::fmt_bytes(tq_mem),
                       pct,
                       util::fmt_speedup(plan.theoretical_speedup())});
    }
    std::printf("%s\n", paper.to_string().c_str());
    std::printf("BV splits into few subcircuits (short, wide circuits), so "
                "the speedup sits\nnear the paper's ~1.5x while memory use "
                "stays far below the 192 GB line.\n");
    return 0;
}
