/**
 * @file
 * Measured multi-threaded speedup of the simulator itself (companion to the
 * modeled Figure 8): sweeps the worker-pool size over {1, 2, 4, 8} and
 * reports wall-clock speedup for (a) shot-parallel baseline execution and
 * (b) a reuse-tree DCP plan, on a noisy QFT.  Results are bit-identical at
 * every thread count (asserted per run), so the sweep measures pure
 * scheduling/memory effects.
 *
 * Flags: --qubits=N   circuit width (default 16; use >= 20 to reproduce the
 *                     acceptance-scale run on a multi-core host),
 *        --shots=N    leaf outcomes per run (default 16),
 *        --max-threads=N  top of the {1,2,4,8,...} sweep (default 8),
 *        --reps=N     best-of-N timing per point (default 2),
 *        --json=PATH  write the bench-JSON artifact.
 */

#include "bench_common.h"
#include "parallel_sweep.h"

#include "circuits/qft.h"
#include "core/baseline_runner.h"
#include "core/tqsim.h"
#include "noise/noise_model.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const int qubits = static_cast<int>(flags.get_u64("qubits", 16));
    const std::uint64_t shots = flags.get_u64("shots", 16);
    const int max_threads = static_cast<int>(flags.get_u64("max-threads", 8));
    const int reps = static_cast<int>(flags.get_u64("reps", 2));
    const std::string json_path = flags.get_string("json", "");

    bench::banner("parallel speedup: worker-pool thread sweep",
                  "Sec. 5 baseline throughput (qsim-style threading)",
                  "near-linear shot-parallel scaling until the core count "
                  "or memory bandwidth saturates");

    const sim::Circuit circuit = circuits::qft(qubits);
    const noise::NoiseModel model = noise::NoiseModel::sycamore_depolarizing();

    bench::JsonRows json("parallel_speedup");
    util::Table table({"mode", "threads", "seconds", "speedup",
                       "deterministic"});

    const std::pair<const char*, std::function<core::RunResult()>> modes[] = {
        {"baseline-shots",
         [&] { return core::run_baseline(circuit, model, shots); }},
        {"tqsim-tree", [&] {
             core::RunOptions opt;
             opt.shots = shots;
             return core::run(circuit, model, opt);
         }}};
    for (const auto& [mode, run_once] : modes) {
        for (const bench::SweepPoint& p :
             bench::run_thread_sweep(max_threads, reps, run_once)) {
            table.add_row({mode, std::to_string(p.threads),
                           util::fmt_seconds(p.seconds),
                           util::fmt_speedup(p.speedup),
                           p.deterministic ? "yes" : "NO"});
            json.begin_row()
                .field("mode", std::string(mode))
                .field("qubits", qubits)
                .field("shots", shots)
                .field("threads", p.threads)
                .field("seconds", p.seconds)
                .field("speedup", p.speedup)
                .field("deterministic",
                       std::string(p.deterministic ? "true" : "false"));
        }
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("host note: speedup is bounded by physical cores; a "
                "single-core container\nreports ~1.0x at every pool size "
                "while still exercising the dispatch paths.\n");
    json.write(json_path);
    return 0;
}
