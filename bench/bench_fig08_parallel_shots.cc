/**
 * @file
 * Figure 8: parallel-shot execution on an A100-40GB (modeled; see DESIGN.md
 * substitutions).  Batching shots amortizes kernel-launch overhead for
 * small circuits (up to ~3x at 20-21 qubits) but yields nothing beyond 24
 * qubits where one state already saturates the device — despite each state
 * vector using only 256 MB (0.625% of device memory).
 */

#include "bench_common.h"

#include "hw/shot_parallel_model.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    (void)flags;

    bench::banner("Figure 8: parallel-shot saturation (A100 model)",
                  "Fig. 8 (1024-shot noisy QFT, 20-25 qubits, A100-40GB)",
                  "up to ~3x at 20-21 qubits; no benefit beyond 24 qubits");

    const hw::ShotParallelModel model = hw::a100_shot_parallel_model();
    const int parallel[] = {1, 2, 4, 8, 16};

    util::Table speedups({"qubits", "s=1", "s=2", "s=4", "s=8", "s=16",
                          "mem @ s=16"});
    for (int n = 20; n <= 25; ++n) {
        std::vector<std::string> row{std::to_string(n)};
        for (int s : parallel) {
            row.push_back(util::fmt_double(model.speedup(n, s), 2));
        }
        row.push_back(util::fmt_bytes(model.memory_bytes(n, 16)));
        speedups.add_row(row);
    }
    std::printf("%s\n", speedups.to_string().c_str());

    std::printf("single 24-qubit statevector: %s = %.3f%% of 40 GB "
                "(paper: 256 MB, 0.625%%)\n",
                util::fmt_bytes(model.memory_bytes(24, 1)).c_str(),
                100.0 * static_cast<double>(model.memory_bytes(24, 1)) /
                    static_cast<double>(model.device.usable_memory_bytes));
    std::printf("=> shot parallelism cannot exploit the idle memory; "
                "TQSim's state reuse can.\n");
    return 0;
}
