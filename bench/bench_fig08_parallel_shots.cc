/**
 * @file
 * Figure 8: parallel-shot execution.  Two parts:
 *
 *  1. Modeled: A100-40GB shot-batching saturation (see DESIGN.md
 *     substitutions) — batching amortizes kernel-launch overhead for small
 *     circuits (up to ~3x at 20-21 qubits) but yields nothing beyond 24
 *     qubits where one state already saturates the device, despite each
 *     state vector using only 256 MB (0.625% of device memory).
 *
 *  2. Measured: the same shot-parallelism idea on this host via the
 *     persistent worker pool — independent trajectories dispatched across
 *     threads ∈ {1, 2, 4, 8}, reporting wall-clock speedup.  Results are
 *     bit-identical at every thread count.
 *
 * Flags: --qubits=N (measured part, default 14), --shots=N (default 16),
 *        --max-threads=N (default 8), --json=PATH (bench-JSON artifact).
 */

#include "bench_common.h"
#include "parallel_sweep.h"

#include "circuits/qft.h"
#include "core/baseline_runner.h"
#include "hw/shot_parallel_model.h"
#include "noise/noise_model.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const int meas_qubits = static_cast<int>(flags.get_u64("qubits", 14));
    const std::uint64_t meas_shots = flags.get_u64("shots", 16);
    const int max_threads = static_cast<int>(flags.get_u64("max-threads", 8));
    const std::string json_path = flags.get_string("json", "");

    bench::banner("Figure 8: parallel-shot saturation (A100 model)",
                  "Fig. 8 (1024-shot noisy QFT, 20-25 qubits, A100-40GB)",
                  "up to ~3x at 20-21 qubits; no benefit beyond 24 qubits");

    bench::JsonRows json("fig08_parallel_shots");

    const hw::ShotParallelModel model = hw::a100_shot_parallel_model();
    const int parallel[] = {1, 2, 4, 8, 16};

    util::Table speedups({"qubits", "s=1", "s=2", "s=4", "s=8", "s=16",
                          "mem @ s=16"});
    for (int n = 20; n <= 25; ++n) {
        std::vector<std::string> row{std::to_string(n)};
        for (int s : parallel) {
            row.push_back(util::fmt_double(model.speedup(n, s), 2));
            json.begin_row()
                .field("kind", std::string("modeled_a100"))
                .field("qubits", n)
                .field("parallel_shots", s)
                .field("speedup", model.speedup(n, s));
        }
        row.push_back(util::fmt_bytes(model.memory_bytes(n, 16)));
        speedups.add_row(row);
    }
    std::printf("%s\n", speedups.to_string().c_str());

    std::printf("single 24-qubit statevector: %s = %.3f%% of 40 GB "
                "(paper: 256 MB, 0.625%%)\n",
                util::fmt_bytes(model.memory_bytes(24, 1)).c_str(),
                100.0 * static_cast<double>(model.memory_bytes(24, 1)) /
                    static_cast<double>(model.device.usable_memory_bytes));
    std::printf("=> shot parallelism cannot exploit the idle memory; "
                "TQSim's state reuse can.\n\n");

    // ---- Part 2: measured shot-parallel speedup on this host ---------------
    std::printf("measured: %llu-shot noisy QFT-%d across the worker pool\n",
                static_cast<unsigned long long>(meas_shots), meas_qubits);
    const sim::Circuit circuit = circuits::qft(meas_qubits);
    const noise::NoiseModel noise_model =
        noise::NoiseModel::sycamore_depolarizing();

    util::Table measured({"threads", "seconds", "speedup", "deterministic"});
    for (const bench::SweepPoint& p : bench::run_thread_sweep(
             max_threads, /*reps=*/1,
             [&] { return core::run_baseline(circuit, noise_model,
                                             meas_shots); })) {
        measured.add_row({std::to_string(p.threads),
                          util::fmt_seconds(p.seconds),
                          util::fmt_speedup(p.speedup),
                          p.deterministic ? "yes" : "NO"});
        json.begin_row()
            .field("kind", std::string("measured_pool"))
            .field("qubits", meas_qubits)
            .field("shots", meas_shots)
            .field("threads", p.threads)
            .field("seconds", p.seconds)
            .field("speedup", p.speedup)
            .field("deterministic",
                   std::string(p.deterministic ? "true" : "false"));
    }
    std::printf("%s\n", measured.to_string().c_str());

    json.write(json_path);
    return 0;
}
