/**
 * @file
 * Figure 5: noisy BV simulation time and memory overhead for 10-28 qubits
 * (8192 shots in the paper).  Small widths are measured directly on this
 * host; larger widths are extrapolated with the exact 2^n-per-gate cost
 * model, calibrated on the measured points.  The figure's message: time
 * explodes exponentially long before memory approaches system capacity.
 */

#include "bench_common.h"

#include <cmath>

#include "circuits/bv.h"
#include "core/baseline_runner.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t measure_shots = flags.get_u64("shots", 128);
    const std::uint64_t paper_shots = flags.get_u64("paper-shots", 8192);
    const int max_measured =
        static_cast<int>(flags.get_u64("max-measured-qubits", 14));
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner(
        "Figure 5: noisy BV time & memory, 10-28 qubits",
        "Fig. 5 (8192 shots, dual Xeon 6130, 192 GB)",
        "time grows exponentially; memory stays far below capacity");

    // Calibrate seconds per (amplitude x gate x shot) on measured widths.
    double calib = 0.0;
    int calib_points = 0;
    util::Table table({"qubits", "gates", "time @8192 shots", "source",
                       "state memory", "% of 192 GB"});
    for (int n = 10; n <= 28; n += 2) {
        const sim::Circuit c =
            circuits::bernstein_vazirani(n, circuits::default_bv_secret(n));
        const double amps = std::pow(2.0, n);
        double seconds_paper_shots;
        const char* source;
        if (n <= max_measured) {
            const core::RunResult r =
                core::run_baseline(c, model, measure_shots);
            const double per_unit =
                r.stats.wall_seconds /
                (amps * static_cast<double>(c.size()) *
                 static_cast<double>(measure_shots));
            calib += per_unit;
            ++calib_points;
            seconds_paper_shots =
                r.stats.wall_seconds *
                (static_cast<double>(paper_shots) /
                 static_cast<double>(measure_shots));
            source = "measured";
        } else {
            const double per_unit = calib / calib_points;
            seconds_paper_shots = per_unit * amps *
                                  static_cast<double>(c.size()) *
                                  static_cast<double>(paper_shots);
            source = "extrapolated";
        }
        const double mem = amps * 16.0;
        char hours[64];
        if (seconds_paper_shots < 3600.0) {
            std::snprintf(hours, sizeof(hours), "%s",
                          util::fmt_seconds(seconds_paper_shots).c_str());
        } else {
            std::snprintf(hours, sizeof(hours), "%.1f h",
                          seconds_paper_shots / 3600.0);
        }
        char pct[32];
        std::snprintf(pct, sizeof(pct), "%.5f%%",
                      100.0 * mem / (192.0 * std::pow(2.0, 30)));
        table.add_row({std::to_string(n), std::to_string(c.size()), hours,
                       source, util::fmt_bytes(static_cast<std::uint64_t>(mem)),
                       pct});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("Paper shape reproduced: simulation time reaches hours at "
                "~24+ qubits while\nmemory stays below 0.1%% of system "
                "capacity -> time, not memory, is the\nbottleneck TQSim "
                "trades against.\n");
    return 0;
}
