/**
 * @file
 * Figure 1: wall time of ideal vs noisy multi-shot simulation of a QFT
 * circuit.  The paper reports noisy 15-qubit QFT simulation 170x-335x
 * slower than ideal; the ratio scales with the shot count because ideal
 * multi-shot simulation evolves the state once and samples, while noisy
 * simulation re-evolves per trajectory.
 */

#include "bench_common.h"

#include "circuits/qft.h"
#include "core/baseline_runner.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const int qubits = static_cast<int>(flags.get_u64("qubits", 10));
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Figure 1: ideal vs noisy simulation time",
                  "Fig. 1 (15-qubit QFT, noisy 170x-335x slower)",
                  "noisy/ideal ratio grows roughly linearly with shots");

    const sim::Circuit circuit = circuits::qft(qubits);
    std::printf("circuit: %s, %zu gates; noise: %s\n\n",
                circuit.name().c_str(), circuit.size(),
                model.description().c_str());

    util::Table table({"shots", "ideal time", "noisy time", "slowdown"});
    for (std::uint64_t shots : {128ULL, 256ULL, 512ULL, 1024ULL}) {
        const core::RunResult ideal =
            core::run_ideal_sampled(circuit, shots);
        const core::RunResult noisy =
            core::run_baseline(circuit, model, shots);
        table.add_row({std::to_string(shots),
                       util::fmt_seconds(ideal.stats.wall_seconds),
                       util::fmt_seconds(noisy.stats.wall_seconds),
                       util::fmt_speedup(noisy.stats.wall_seconds /
                                         ideal.stats.wall_seconds)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("Paper context: at 8192+ shots on dual Xeon 6130 the gap is "
                "170x-335x;\nthe per-shot re-evolution cost is what TQSim "
                "attacks.\n");
    return 0;
}
