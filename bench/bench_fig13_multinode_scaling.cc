/**
 * @file
 * Figure 13: strong and weak scaling on a multi-node CPU cluster (simulated
 * qHiPSTER-style engine; DESIGN.md substitution).  The exchange algorithm
 * is executed for real at small scale (validated in tests); wall times at
 * cluster scale come from the measured per-node throughput plus the
 * alpha-beta network model.
 */

#include "bench_common.h"

#include <cmath>

#include "circuits/bv.h"
#include "circuits/qft.h"
#include "core/tqsim.h"
#include "dist/cluster_simulator.h"
#include "util/table.h"

namespace {

using namespace tqsim;

core::PartitionPlan
plan_for(const sim::Circuit& c, const noise::NoiseModel& m,
         std::uint64_t shots, bool tqsim_plan)
{
    core::RunOptions opt;
    opt.shots = shots;
    opt.copy_cost_gates = 35.0;  // server-CPU copy cost (Fig. 10)
    if (!tqsim_plan) {
        opt.strategy = core::PartitionStrategy::kBaseline;
    }
    return core::plan(c, m, opt);
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 8192);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Figure 13: strong & weak scaling (simulated cluster)",
                  "Fig. 13 (qHiPSTER backend, 1-32 nodes)",
                  "larger circuits scale better; TQSim beats baseline at "
                  "every node count");

    dist::ClusterConfig base_cfg;
    base_cfg.amp_throughput = dist::measure_host_amp_throughput(14, 0.05);
    std::printf("measured per-node throughput: %.2e amps/s\n\n",
                base_cfg.amp_throughput);

    // ---- Strong scaling: fixed problem, 1..32 nodes -----------------------
    std::printf("strong scaling (speedup over 1 node, TQSim plans):\n");
    util::Table strong({"circuit", "1", "2", "4", "8", "16", "32"});
    for (const char* kind : {"bv", "qft"}) {
        for (int n : {22, 26, 30}) {
            const sim::Circuit c =
                std::string(kind) == "bv"
                    ? circuits::bernstein_vazirani(
                          n, circuits::default_bv_secret(n))
                    : circuits::qft(n);
            const core::PartitionPlan plan =
                plan_for(c, model, shots, true);
            std::vector<std::string> row{c.name()};
            double t1 = 0.0;
            for (int nodes : {1, 2, 4, 8, 16, 32}) {
                dist::ClusterConfig cfg = base_cfg;
                cfg.num_nodes = nodes;
                const double t =
                    dist::estimate_cluster_run(c, model, plan, cfg)
                        .total_seconds();
                if (nodes == 1) {
                    t1 = t;
                }
                row.push_back(util::fmt_double(t1 / t, 2));
            }
            strong.add_row(row);
        }
    }
    std::printf("%s\n", strong.to_string().c_str());

    // ---- Weak scaling: 24..29 qubits on 1..32 nodes ------------------------
    std::printf("weak scaling (constant per-node load; estimated hours):\n");
    util::Table weak({"qubits", "nodes", "baseline (h)", "tqsim (h)",
                      "speedup"});
    for (int n = 24; n <= 29; ++n) {
        const int nodes = 1 << (n - 24);
        dist::ClusterConfig cfg = base_cfg;
        cfg.num_nodes = nodes;
        const sim::Circuit c = circuits::qft(n);
        const double base_h =
            dist::estimate_cluster_run(c, model,
                                       plan_for(c, model, shots, false), cfg)
                .total_seconds() /
            3600.0;
        const double tq_h =
            dist::estimate_cluster_run(c, model,
                                       plan_for(c, model, shots, true), cfg)
                .total_seconds() /
            3600.0;
        weak.add_row({std::to_string(n), std::to_string(nodes),
                      util::fmt_double(base_h, 2), util::fmt_double(tq_h, 2),
                      util::fmt_speedup(base_h / tq_h)});
    }
    std::printf("%s\n", weak.to_string().c_str());
    std::printf("Shapes reproduced: small circuits stop scaling early "
                "(communication-bound);\nTQSim outperforms the baseline at "
                "every configuration (paper Sec. 5.3).\n");
    return 0;
}
