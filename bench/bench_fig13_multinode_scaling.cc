/**
 * @file
 * Figure 13: strong and weak scaling on a multi-node CPU cluster (simulated
 * qHiPSTER-style engine; DESIGN.md substitution).  The exchange algorithm
 * is executed for real at small scale (validated in tests); wall times at
 * cluster scale come from the measured per-node throughput plus the
 * alpha-beta network model.
 *
 * The "measured exchange" section runs the reuse tree for real on
 * dist::ShardedStateBackend — slice exchange through the Transport API —
 * and feeds the per-run CommStats into estimate_cluster_run_measured,
 * comparing real communication (comm-free diagonal/control-masked routing,
 * plus Kraus-branch exchanges the model ignores) against the standalone
 * count_global_gate_passes extrapolation.
 */

#include "bench_common.h"

#include <cmath>

#include "circuits/bv.h"
#include "circuits/qft.h"
#include "core/tqsim.h"
#include "dist/cluster_simulator.h"
#include "dist/sharded_backend.h"
#include "dist/transport.h"
#include "util/table.h"

namespace {

using namespace tqsim;

core::PartitionPlan
plan_for(const sim::Circuit& c, const noise::NoiseModel& m,
         std::uint64_t shots, bool tqsim_plan)
{
    core::RunOptions opt;
    opt.shots = shots;
    opt.copy_cost_gates = 35.0;  // server-CPU copy cost (Fig. 10)
    if (!tqsim_plan) {
        opt.strategy = core::PartitionStrategy::kBaseline;
    }
    return core::plan(c, m, opt);
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 8192);
    const std::uint64_t measured_shots = flags.get_u64("measured-shots", 64);
    const int measured_qubits =
        static_cast<int>(flags.get_u64("measured-qubits", 12));
    const std::string json_path = flags.get_string("json", "");
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    bench::JsonRows json("fig13_multinode_scaling");

    bench::banner("Figure 13: strong & weak scaling (simulated cluster)",
                  "Fig. 13 (qHiPSTER backend, 1-32 nodes)",
                  "larger circuits scale better; TQSim beats baseline at "
                  "every node count");

    dist::ClusterConfig base_cfg;
    base_cfg.amp_throughput = dist::measure_host_amp_throughput(14, 0.05);
    std::printf("measured per-node throughput: %.2e amps/s\n\n",
                base_cfg.amp_throughput);

    // ---- Strong scaling: fixed problem, 1..32 nodes -----------------------
    std::printf("strong scaling (speedup over 1 node, TQSim plans):\n");
    util::Table strong({"circuit", "1", "2", "4", "8", "16", "32"});
    for (const char* kind : {"bv", "qft"}) {
        for (int n : {22, 26, 30}) {
            const sim::Circuit c =
                std::string(kind) == "bv"
                    ? circuits::bernstein_vazirani(
                          n, circuits::default_bv_secret(n))
                    : circuits::qft(n);
            const core::PartitionPlan plan =
                plan_for(c, model, shots, true);
            std::vector<std::string> row{c.name()};
            double t1 = 0.0;
            for (int nodes : {1, 2, 4, 8, 16, 32}) {
                dist::ClusterConfig cfg = base_cfg;
                cfg.num_nodes = nodes;
                const double t =
                    dist::estimate_cluster_run(c, model, plan, cfg)
                        .total_seconds();
                if (nodes == 1) {
                    t1 = t;
                }
                row.push_back(util::fmt_double(t1 / t, 2));
                json.begin_row()
                    .field("section", std::string("strong"))
                    .field("circuit", c.name())
                    .field("nodes", nodes)
                    .field("seconds", t)
                    .field("speedup", t1 / t);
            }
            strong.add_row(row);
        }
    }
    std::printf("%s\n", strong.to_string().c_str());

    // ---- Measured exchange: real tree runs on the sharded backend ---------
    std::printf(
        "measured exchange (reuse tree on ShardedStateBackend, %s "
        "transport, %d qubits, %llu shots):\n",
        dist::InProcessTransport().name(), measured_qubits,
        static_cast<unsigned long long>(measured_shots));
    util::Table measured_table({"nodes", "modeled passes", "measured passes",
                                "measured MiB", "modeled comm (s)",
                                "measured comm (s)"});
    {
        const sim::Circuit c = circuits::qft(measured_qubits);
        core::RunOptions opt;
        opt.shots = measured_shots;
        opt.copy_cost_gates = 35.0;
        const core::PartitionPlan plan = core::plan(c, model, opt);
        for (int nodes : {2, 4, 8}) {
            dist::InProcessTransport transport;
            dist::ShardedStateBackend backend(measured_qubits, nodes,
                                              &transport);
            const core::RunResult run = core::execute_tree(
                c, model, plan, opt.executor_options(), backend);
            dist::CommStats measured;
            measured.bytes = run.stats.comm_bytes;
            measured.messages = run.stats.comm_messages;
            measured.global_gates = run.stats.global_gates;
            dist::ClusterConfig cfg = base_cfg;
            cfg.num_nodes = nodes;
            const dist::ClusterEstimate modeled =
                dist::estimate_cluster_run(c, model, plan, cfg);
            const dist::ClusterEstimate from_measured =
                dist::estimate_cluster_run_measured(c, model, plan, cfg,
                                                    measured);
            measured_table.add_row(
                {std::to_string(nodes),
                 std::to_string(modeled.global_passes),
                 std::to_string(measured.global_gates),
                 util::fmt_double(static_cast<double>(measured.bytes) /
                                      (1024.0 * 1024.0),
                                  1),
                 util::fmt_double(modeled.comm_seconds, 4),
                 util::fmt_double(from_measured.comm_seconds, 4)});
            json.begin_row()
                .field("section", std::string("measured"))
                .field("circuit", c.name())
                .field("nodes", nodes)
                .field("modeled_passes", modeled.global_passes)
                .field("measured_passes", measured.global_gates)
                .field("measured_bytes", measured.bytes)
                .field("measured_messages", measured.messages)
                .field("modeled_comm_seconds", modeled.comm_seconds)
                .field("measured_comm_seconds", from_measured.comm_seconds)
                .field("wall_seconds", run.stats.wall_seconds);
        }
    }
    std::printf("%s", measured_table.to_string().c_str());
    std::printf(
        "(measured counters see what the model cannot: compiled plans "
        "route\ndiagonal/control-masked ops comm-free, while noise-channel "
        "Kraus branches\nlanding on global qubits add exchange passes the "
        "gate-count extrapolation\nignores)\n\n");

    // ---- Weak scaling: 24..29 qubits on 1..32 nodes ------------------------
    std::printf("weak scaling (constant per-node load; estimated hours):\n");
    util::Table weak({"qubits", "nodes", "baseline (h)", "tqsim (h)",
                      "speedup"});
    for (int n = 24; n <= 29; ++n) {
        const int nodes = 1 << (n - 24);
        dist::ClusterConfig cfg = base_cfg;
        cfg.num_nodes = nodes;
        const sim::Circuit c = circuits::qft(n);
        const double base_h =
            dist::estimate_cluster_run(c, model,
                                       plan_for(c, model, shots, false), cfg)
                .total_seconds() /
            3600.0;
        const double tq_h =
            dist::estimate_cluster_run(c, model,
                                       plan_for(c, model, shots, true), cfg)
                .total_seconds() /
            3600.0;
        weak.add_row({std::to_string(n), std::to_string(nodes),
                      util::fmt_double(base_h, 2), util::fmt_double(tq_h, 2),
                      util::fmt_speedup(base_h / tq_h)});
        json.begin_row()
            .field("section", std::string("weak"))
            .field("qubits", n)
            .field("nodes", nodes)
            .field("baseline_hours", base_h)
            .field("tqsim_hours", tq_h)
            .field("speedup", base_h / tq_h);
    }
    std::printf("%s\n", weak.to_string().c_str());
    std::printf("Shapes reproduced: small circuits stop scaling early "
                "(communication-bound);\nTQSim outperforms the baseline at "
                "every configuration (paper Sec. 5.3).\n");
    json.write(json_path);
    return 0;
}
