/**
 * @file
 * Figure 4: memory footprint of statevector vs density-matrix simulation as
 * a function of qubit count, against a 16 GB laptop and the El Capitan
 * supercomputer (~5.4 PB aggregate).  Density-matrix simulation tops out
 * below 25 qubits even on El Capitan; statevector clears 30 on a laptop.
 */

#include "bench_common.h"

#include <cmath>

#include "sim/types.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    (void)flags;

    bench::banner("Figure 4: statevector vs density-matrix memory",
                  "Fig. 4 / Sec. 2.3.1",
                  "DM < 25 qubits on El Capitan; SV > 30 qubits on a laptop");

    const double laptop = 16.0 * std::pow(2.0, 30);          // 16 GiB
    const double el_capitan = 5.4375e15;                      // ~5.4 PB

    util::Table table({"qubits", "statevector", "density matrix",
                       "SV fits laptop", "DM fits El Capitan"});
    for (int n = 10; n <= 40; n += 2) {
        const double sv = std::pow(2.0, n) * 16.0;
        const double dm = std::pow(4.0, n) * 16.0;
        auto fmt = [](double bytes) {
            char buf[64];
            if (bytes < (1ull << 30)) {
                std::snprintf(buf, sizeof(buf), "%.1f MiB",
                              bytes / (1ull << 20));
            } else if (bytes < 1e15) {
                std::snprintf(buf, sizeof(buf), "%.1f GiB",
                              bytes / (1ull << 30));
            } else {
                std::snprintf(buf, sizeof(buf), "%.2e B", bytes);
            }
            return std::string(buf);
        };
        table.add_row({std::to_string(n), fmt(sv), fmt(dm),
                       sv <= laptop ? "yes" : "no",
                       dm <= el_capitan ? "yes" : "no"});
    }
    std::printf("%s\n", table.to_string().c_str());

    // Crossover summary.
    int max_sv_laptop = 0, max_dm_elcap = 0;
    for (int n = 1; n <= 60; ++n) {
        if (std::pow(2.0, n) * 16.0 <= laptop) {
            max_sv_laptop = n;
        }
        if (std::pow(4.0, n) * 16.0 <= el_capitan) {
            max_dm_elcap = n;
        }
    }
    std::printf("max statevector qubits on a 16 GiB laptop: %d (paper: >30)\n",
                max_sv_laptop);
    std::printf("max density-matrix qubits on El Capitan:   %d (paper: <25)\n",
                max_dm_elcap);
    return 0;
}
