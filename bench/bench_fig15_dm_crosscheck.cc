/**
 * @file
 * Figure 15: TQSim's normalized fidelity against the *density-matrix*
 * reference simulator (exact channel evolution, no trajectory sampling).
 * The paper reports an average difference of 0.007 and a maximum of 0.015
 * on circuits small enough for the O(4^n) reference.
 */

#include "bench_common.h"

#include <cmath>

#include "circuits/suite.h"
#include "core/tqsim.h"
#include "dm/dm_simulator.h"
#include "metrics/fidelity.h"
#include "util/stats.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 8192);
    const int max_qubits = static_cast<int>(flags.get_u64("max-qubits", 9));
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Figure 15: TQSim vs exact density-matrix reference",
                  "Fig. 15 (avg diff 0.007, max 0.015)",
                  "TQSim's fidelity matches the exact mixed-state reference");

    util::RunningStats diff_stats;
    util::Table table({"circuit", "(w,g)", "fidelity DM", "fidelity tqsim",
                       "|diff|"});
    int evaluated = 0;
    for (const circuits::BenchmarkCase& c :
         circuits::benchmark_suite(circuits::SuiteScale::kReduced)) {
        if (c.circuit.num_qubits() > max_qubits) {
            continue;
        }
        // Density-matrix evolution costs O(gates * 4^n); cap the work.
        const double dm_cost = static_cast<double>(c.circuit.size()) *
                               std::pow(4.0, c.circuit.num_qubits());
        if (dm_cost > 6e7) {
            continue;
        }
        const metrics::Distribution ideal =
            core::ideal_distribution(c.circuit);
        const metrics::Distribution exact =
            dm::dm_output_distribution(c.circuit, model);
        core::RunOptions opt;
        opt.shots = shots;
        opt.copy_cost_gates = flags.get_double("copy-cost", 10.0);
        opt.seed = std::hash<std::string>{}(c.name) ^ 0xF15F15;
        const core::RunResult tq = core::run(c.circuit, model, opt);
        const double f_dm = metrics::normalized_fidelity(ideal, exact);
        const double f_tq =
            metrics::normalized_fidelity(ideal, tq.distribution);
        const double diff = std::abs(f_dm - f_tq);
        diff_stats.add(diff);
        char wg[32];
        std::snprintf(wg, sizeof(wg), "(%d,%zu)", c.circuit.num_qubits(),
                      c.circuit.size());
        table.add_row({c.name, wg, util::fmt_double(f_dm, 4),
                       util::fmt_double(f_tq, 4), util::fmt_double(diff, 4)});
        ++evaluated;
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("evaluated %d circuits; average |diff| = %.4f, max = %.4f\n",
                evaluated, diff_stats.mean(), diff_stats.max());
    std::printf("(paper: avg 0.007, max 0.015 — sampling noise at %llu "
                "shots adds ~%.3f)\n",
                static_cast<unsigned long long>(shots),
                1.0 / std::sqrt(static_cast<double>(shots)));
    return 0;
}
