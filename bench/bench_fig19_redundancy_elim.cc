/**
 * @file
 * Figure 19: normalized computation of the DAC'20 redundancy-elimination
 * baseline vs TQSim, ordered by gate count.  Redun-Elim shares identical
 * noise-realization prefixes, which collapse as circuits grow; TQSim's
 * structural reuse does not depend on realization collisions, so the curves
 * cross (paper: around 150-200 gates at 32000 shots; here the crossover
 * lands at a few hundred gates under the same Sycamore depolarizing rates).
 */

#include "bench_common.h"

#include <algorithm>

#include "circuits/suite.h"
#include "core/tqsim.h"
#include "reuse/redundancy_eliminator.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 8000);
    const double copy_cost = flags.get_double("copy-cost", 10.0);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Figure 19: Redun-Elim (DAC'20) vs TQSim computation",
                  "Fig. 19 / Sec. 6 (crossover as gate count grows)",
                  "Redun-Elim wins on short circuits, TQSim on long ones");

    // Use the paper-scale suite ordered by gate count (Fig. 19's x-axis),
    // capped to keep the analysis quick (both sides are state-free).
    auto suite = circuits::benchmark_suite(circuits::SuiteScale::kPaper);
    std::sort(suite.begin(), suite.end(),
              [](const auto& a, const auto& b) {
                  return a.circuit.size() < b.circuit.size();
              });

    util::Table table({"circuit", "gates", "Redun-Elim norm. comp.",
                       "TQSim norm. comp.", "winner"});
    int crossover_gate_count = -1;
    bool tqsim_winning = false;
    for (const circuits::BenchmarkCase& c : suite) {
        if (c.circuit.size() > 1000) {
            continue;  // keep the trie analysis fast
        }
        const auto redun = reuse::analyze_redundancy_elimination(
            c.circuit, model, shots, 0xF19);
        core::RunOptions opt;
        opt.shots = shots;
        opt.copy_cost_gates = copy_cost;
        const core::PartitionPlan plan = core::plan(c.circuit, model, opt);
        const double tq =
            reuse::tqsim_normalized_computation(plan, copy_cost);
        const bool tq_wins = tq < redun.normalized_computation;
        if (tq_wins && !tqsim_winning) {
            crossover_gate_count = static_cast<int>(c.circuit.size());
            tqsim_winning = true;
        }
        table.add_row({c.name, std::to_string(c.circuit.size()),
                       util::fmt_double(redun.normalized_computation, 3),
                       util::fmt_double(tq, 3),
                       tq_wins ? "TQSim" : "Redun-Elim"});
    }
    std::printf("%s\n", table.to_string().c_str());
    if (crossover_gate_count >= 0) {
        std::printf("first circuit where TQSim wins: ~%d gates "
                    "(paper: ~150-200 at 32000 shots)\n",
                    crossover_gate_count);
    }
    std::printf("Lower is better.  Redun-Elim's sharing decays with gate "
                "count because exact\nnoise-realization collisions become "
                "negligible (the paper's Sec. 6 argument).\n");
    return 0;
}
