/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out:
 *  (1) last-child state *move* vs always-copy in the DFS executor;
 *  (2) Cochran margin-of-error epsilon — structure vs accuracy;
 *  (3) copy-cost parameter — how the minimum subcircuit length reshapes
 *      the DCP tree.
 */

#include "bench_common.h"

#include <cmath>

#include "circuits/qft.h"
#include "core/tqsim.h"
#include "metrics/fidelity.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 1024);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();
    const sim::Circuit circuit = circuits::qft(10);
    const metrics::Distribution ideal = core::ideal_distribution(circuit);

    bench::banner("Ablations: executor and DCP design choices",
                  "DESIGN.md flagged decisions",
                  "last-child move saves ~1 copy/internal node; epsilon and "
                  "copy-cost steer the tree");

    // ---- (1) reuse_last_child ---------------------------------------------
    {
        core::RunOptions opt;
        opt.shots = shots;
        opt.reuse_last_child = true;
        const core::RunResult with_move = core::run(circuit, model, opt);
        opt.reuse_last_child = false;
        const core::RunResult no_move = core::run(circuit, model, opt);
        util::Table t({"executor variant", "state copies", "copy time",
                       "wall time"});
        t.add_row({"move into last child (default)",
                   std::to_string(with_move.stats.state_copies),
                   util::fmt_seconds(with_move.stats.copy_seconds),
                   util::fmt_seconds(with_move.stats.wall_seconds)});
        t.add_row({"always copy",
                   std::to_string(no_move.stats.state_copies),
                   util::fmt_seconds(no_move.stats.copy_seconds),
                   util::fmt_seconds(no_move.stats.wall_seconds)});
        std::printf("(1) last-child move  [tree %s]\n%s\n",
                    with_move.plan.tree.to_string().c_str(),
                    t.to_string().c_str());
    }

    // ---- (2) Cochran epsilon ------------------------------------------------
    {
        util::Table t({"epsilon", "tree", "theoretical speedup",
                       "fidelity diff vs baseline"});
        const core::RunResult base =
            core::run_baseline(circuit, model, shots);
        const double f_base =
            metrics::normalized_fidelity(ideal, base.distribution);
        for (double eps : {0.01, 0.025, 0.05, 0.1}) {
            core::RunOptions opt;
            opt.shots = shots;
            opt.epsilon = eps;
            const core::RunResult r = core::run(circuit, model, opt);
            const double f =
                metrics::normalized_fidelity(ideal, r.distribution);
            t.add_row({util::fmt_double(eps, 3), r.plan.tree.to_string(),
                       util::fmt_speedup(r.plan.theoretical_speedup()),
                       util::fmt_double(std::abs(f - f_base), 4)});
        }
        std::printf("(2) Cochran margin of error (Eq. 5)\n%s\n",
                    t.to_string().c_str());
    }

    // ---- (3) copy-cost parameter ---------------------------------------------
    {
        util::Table t({"copy cost (gates)", "tree", "subcircuits",
                       "theoretical speedup"});
        for (double cost : {1.0, 10.0, 35.0, 80.0}) {
            core::RunOptions opt;
            opt.shots = shots;
            opt.copy_cost_gates = cost;
            const core::PartitionPlan p = core::plan(circuit, model, opt);
            t.add_row({util::fmt_double(cost, 0), p.tree.to_string(),
                       std::to_string(p.num_levels()),
                       util::fmt_speedup(p.theoretical_speedup())});
        }
        std::printf("(3) copy-cost -> minimum subcircuit length (Sec. 3.6)\n%s\n",
                    t.to_string().c_str());
    }
    return 0;
}
