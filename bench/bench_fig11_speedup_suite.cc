/**
 * @file
 * Figure 11 (a)-(i): TQSim speedup over the baseline noisy simulator across
 * the 48-circuit suite (8 families x 6).  The paper reports 1.59x-3.89x
 * with a 2.51x average on dual Xeon 6130; this harness runs the reduced
 * suite (<=13 qubits) so the sweep completes in seconds on one core, and
 * reports measured wall-clock speedup alongside the plan's theoretical
 * bound.
 *
 * The harness also runs a fused-vs-unfused sweep: the same tree executed
 * with qsim-style cluster fusion on (auto-tuned width) and off (the legacy
 * 1q-run pass), under a readout-error-only model — per-gate channels make
 * every gate a noise-insertion site fusion must not cross, so the
 * gate-noise-free regime is where cluster fusion legitimately applies
 * (and what ideal-simulation engines like qsim accelerate).  Both runs
 * must sample identical distributions; the geomean runtime ratio is the
 * fusion speedup headline.
 *
 * Flags: --shots=N (default 256), --scale=paper|reduced,
 *        --copy-cost=G (default: profiled), --json=PATH (bench-JSON
 *        artifact with one row per circuit plus a summary row),
 *        --fusion-compare=0|1 (default 1: run the fused-vs-unfused sweep).
 */

#include "bench_common.h"

#include <cmath>
#include <map>
#include <vector>

#include "circuits/suite.h"
#include "core/tqsim.h"
#include "util/stats.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 4096);
    // Default to a desktop-class copy cost (Fig. 10) rather than this
    // host's measured ~1: the paper's family ordering (BV lowest) comes
    // from copy overhead limiting how finely short circuits may split.
    const double copy_cost = flags.get_double("copy-cost", 10.0);
    const std::uint64_t paper_shots = flags.get_u64("paper-shots", 32000);
    const std::string json_path = flags.get_string("json", "");
    const circuits::SuiteScale scale =
        flags.get_string("scale", "reduced") == "paper"
            ? circuits::SuiteScale::kPaper
            : circuits::SuiteScale::kReduced;
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Figure 11: speedup across the 48-circuit suite",
                  "Fig. 11 (1.59x-3.89x, average 2.51x)",
                  "long circuits (QFT/QV/QPE) gain most; short/wide (BV, "
                  "ADDER) least");

    bench::JsonRows json("fig11_speedup_suite");
    std::map<circuits::Family, std::vector<double>> family_speedups;
    std::map<circuits::Family, std::vector<double>> family_paper_proj;
    std::vector<double> all_speedups;
    std::vector<double> all_paper_proj;
    util::Table table({"circuit", "(w,g)", "tree", "base time", "tqsim time",
                       "speedup", "theoretical", "theo @32000 shots"});

    for (const circuits::BenchmarkCase& c : circuits::benchmark_suite(scale)) {
        core::RunOptions opt;
        opt.shots = shots;
        opt.copy_cost_gates = copy_cost;
        const core::RunResult base =
            core::run_baseline(c.circuit, model, shots);
        const core::RunResult tq = core::run(c.circuit, model, opt);
        const double speedup =
            base.stats.wall_seconds / tq.stats.wall_seconds;
        family_speedups[c.family].push_back(speedup);
        all_speedups.push_back(speedup);
        // Plan-level projection at the paper's shot budget (no execution).
        core::RunOptions paper_opt = opt;
        paper_opt.shots = paper_shots;
        const double paper_proj =
            core::plan(c.circuit, model, paper_opt).theoretical_speedup();
        family_paper_proj[c.family].push_back(paper_proj);
        all_paper_proj.push_back(paper_proj);
        char wg[32];
        std::snprintf(wg, sizeof(wg), "(%d,%zu)", c.circuit.num_qubits(),
                      c.circuit.size());
        table.add_row({c.name, wg, tq.plan.tree.to_string(),
                       util::fmt_seconds(base.stats.wall_seconds),
                       util::fmt_seconds(tq.stats.wall_seconds),
                       util::fmt_speedup(speedup),
                       util::fmt_speedup(tq.plan.theoretical_speedup()),
                       util::fmt_speedup(paper_proj)});
        json.begin_row()
            .field("kind", std::string("circuit"))
            .field("name", std::string(c.name))
            .field("qubits", c.circuit.num_qubits())
            .field("gates", static_cast<std::uint64_t>(c.circuit.size()))
            .field("tree", tq.plan.tree.to_string())
            .field("baseline_seconds", base.stats.wall_seconds)
            .field("tqsim_seconds", tq.stats.wall_seconds)
            .field("speedup", speedup)
            .field("theoretical_speedup", tq.plan.theoretical_speedup())
            .field("projected_speedup_paper_shots", paper_proj)
            .field("fused_ops", tq.stats.fused_ops)
            .field("fused_gates_absorbed", tq.stats.fused_gates_absorbed);
    }
    std::printf("%s\n", table.to_string().c_str());

    util::Table summary({"family", "mean speedup", "min", "max",
                         "mean theo @32000", "paper mean"});
    const std::map<circuits::Family, const char*> paper_means = {
        {circuits::Family::kAdder, "2.20x"}, {circuits::Family::kBV, "1.77x"},
        {circuits::Family::kMul, "2.62x"},   {circuits::Family::kQAOA, "2.39x"},
        {circuits::Family::kQFT, "3.10x"},   {circuits::Family::kQPE, "2.76x"},
        {circuits::Family::kQSC, "2.22x"},   {circuits::Family::kQV, "2.98x"},
    };
    for (circuits::Family f : circuits::all_families()) {
        const auto& v = family_speedups[f];
        double lo = v[0], hi = v[0];
        for (double s : v) {
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        summary.add_row({circuits::family_name(f),
                         util::fmt_speedup(util::mean(v)),
                         util::fmt_speedup(lo), util::fmt_speedup(hi),
                         util::fmt_speedup(util::mean(family_paper_proj[f])),
                         paper_means.at(f)});
    }
    std::printf("%s\n", summary.to_string().c_str());
    std::printf("overall mean measured speedup @%llu shots: %s\n",
                static_cast<unsigned long long>(shots),
                util::fmt_speedup(util::mean(all_speedups)).c_str());
    std::printf("overall mean projected speedup @%llu shots: %s  (paper: "
                "2.51x average, up to 3.89x)\n",
                static_cast<unsigned long long>(paper_shots),
                util::fmt_speedup(util::mean(all_paper_proj)).c_str());
    std::printf("note: the paper's factors need its 32000-shot budget — "
                "DCP's first-level\nCochran allocation caps how many reuse "
                "levels a smaller budget affords.\n");
    json.begin_row()
        .field("kind", std::string("summary"))
        .field("shots", shots)
        .field("mean_measured_speedup", util::mean(all_speedups))
        .field("mean_projected_speedup", util::mean(all_paper_proj));

    // ---- Fused vs unfused: the cluster-fusion speedup on the same tree ----
    if (flags.get_u64("fusion-compare", 1) != 0) {
        const noise::NoiseModel fusion_model =
            noise::NoiseModel::readout_only(0.01);
        util::Table ftable({"circuit", "unfused", "fused", "speedup",
                            "fused ops", "absorbed", "widths 1..5"});
        std::vector<double> log_ratios;
        std::size_t mismatched_bins = 0;
        for (const circuits::BenchmarkCase& c :
             circuits::benchmark_suite(scale)) {
            core::RunOptions fopt;
            fopt.shots = shots;
            fopt.copy_cost_gates = copy_cost;
            fopt.backend.max_fused_qubits = 0;  // auto-tuned cluster width
            core::RunOptions uopt = fopt;
            uopt.backend.max_fused_qubits = 1;  // the pre-cluster pass
            const core::RunResult unfused =
                core::run(c.circuit, fusion_model, uopt);
            const core::RunResult fused =
                core::run(c.circuit, fusion_model, fopt);
            for (std::size_t b = 0; b < fused.distribution.size(); ++b) {
                if (fused.distribution[b] != unfused.distribution[b]) {
                    ++mismatched_bins;
                }
            }
            const double ratio =
                unfused.stats.wall_seconds / fused.stats.wall_seconds;
            log_ratios.push_back(std::log(ratio));
            char widths[64];
            std::snprintf(
                widths, sizeof(widths), "%llu/%llu/%llu/%llu/%llu",
                static_cast<unsigned long long>(
                    fused.stats.fused_width_hist[1]),
                static_cast<unsigned long long>(
                    fused.stats.fused_width_hist[2]),
                static_cast<unsigned long long>(
                    fused.stats.fused_width_hist[3]),
                static_cast<unsigned long long>(
                    fused.stats.fused_width_hist[4]),
                static_cast<unsigned long long>(
                    fused.stats.fused_width_hist[5]));
            ftable.add_row({c.name,
                            util::fmt_seconds(unfused.stats.wall_seconds),
                            util::fmt_seconds(fused.stats.wall_seconds),
                            util::fmt_speedup(ratio),
                            std::to_string(fused.stats.fused_ops),
                            std::to_string(fused.stats.fused_gates_absorbed),
                            widths});
            json.begin_row()
                .field("kind", std::string("fusion_compare"))
                .field("name", std::string(c.name))
                .field("unfused_seconds", unfused.stats.wall_seconds)
                .field("fused_seconds", fused.stats.wall_seconds)
                .field("fusion_speedup", ratio)
                .field("fused_ops", fused.stats.fused_ops)
                .field("fused_gates_absorbed",
                       fused.stats.fused_gates_absorbed)
                .field("fused_width_1", fused.stats.fused_width_hist[1])
                .field("fused_width_2", fused.stats.fused_width_hist[2])
                .field("fused_width_3", fused.stats.fused_width_hist[3])
                .field("fused_width_4", fused.stats.fused_width_hist[4])
                .field("fused_width_5", fused.stats.fused_width_hist[5]);
        }
        const double geomean =
            std::exp(util::mean(log_ratios));
        std::printf("\nfused vs unfused (readout-only noise — the "
                    "gate-noise-free regime where\ncluster fusion applies; "
                    "per-gate channels pin gates to their noise sites):\n");
        std::printf("%s\n", ftable.to_string().c_str());
        std::printf("geomean fusion speedup: %s  (distribution bins "
                    "mismatched: %zu)\n",
                    util::fmt_speedup(geomean).c_str(), mismatched_bins);
        json.begin_row()
            .field("kind", std::string("fusion_summary"))
            .field("geomean_fusion_speedup", geomean)
            .field("mismatched_bins",
                   static_cast<std::uint64_t>(mismatched_bins));
    }
    json.write(json_path);
    return 0;
}
