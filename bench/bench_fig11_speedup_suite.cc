/**
 * @file
 * Figure 11 (a)-(i): TQSim speedup over the baseline noisy simulator across
 * the 48-circuit suite (8 families x 6).  The paper reports 1.59x-3.89x
 * with a 2.51x average on dual Xeon 6130; this harness runs the reduced
 * suite (<=13 qubits) so the sweep completes in seconds on one core, and
 * reports measured wall-clock speedup alongside the plan's theoretical
 * bound.
 *
 * Flags: --shots=N (default 256), --scale=paper|reduced,
 *        --copy-cost=G (default: profiled), --json=PATH (bench-JSON
 *        artifact with one row per circuit plus a summary row).
 */

#include "bench_common.h"

#include <map>
#include <vector>

#include "circuits/suite.h"
#include "core/tqsim.h"
#include "util/stats.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 4096);
    // Default to a desktop-class copy cost (Fig. 10) rather than this
    // host's measured ~1: the paper's family ordering (BV lowest) comes
    // from copy overhead limiting how finely short circuits may split.
    const double copy_cost = flags.get_double("copy-cost", 10.0);
    const std::uint64_t paper_shots = flags.get_u64("paper-shots", 32000);
    const std::string json_path = flags.get_string("json", "");
    const circuits::SuiteScale scale =
        flags.get_string("scale", "reduced") == "paper"
            ? circuits::SuiteScale::kPaper
            : circuits::SuiteScale::kReduced;
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Figure 11: speedup across the 48-circuit suite",
                  "Fig. 11 (1.59x-3.89x, average 2.51x)",
                  "long circuits (QFT/QV/QPE) gain most; short/wide (BV, "
                  "ADDER) least");

    bench::JsonRows json("fig11_speedup_suite");
    std::map<circuits::Family, std::vector<double>> family_speedups;
    std::map<circuits::Family, std::vector<double>> family_paper_proj;
    std::vector<double> all_speedups;
    std::vector<double> all_paper_proj;
    util::Table table({"circuit", "(w,g)", "tree", "base time", "tqsim time",
                       "speedup", "theoretical", "theo @32000 shots"});

    for (const circuits::BenchmarkCase& c : circuits::benchmark_suite(scale)) {
        core::RunOptions opt;
        opt.shots = shots;
        opt.copy_cost_gates = copy_cost;
        const core::RunResult base =
            core::run_baseline(c.circuit, model, shots);
        const core::RunResult tq = core::run(c.circuit, model, opt);
        const double speedup =
            base.stats.wall_seconds / tq.stats.wall_seconds;
        family_speedups[c.family].push_back(speedup);
        all_speedups.push_back(speedup);
        // Plan-level projection at the paper's shot budget (no execution).
        core::RunOptions paper_opt = opt;
        paper_opt.shots = paper_shots;
        const double paper_proj =
            core::plan(c.circuit, model, paper_opt).theoretical_speedup();
        family_paper_proj[c.family].push_back(paper_proj);
        all_paper_proj.push_back(paper_proj);
        char wg[32];
        std::snprintf(wg, sizeof(wg), "(%d,%zu)", c.circuit.num_qubits(),
                      c.circuit.size());
        table.add_row({c.name, wg, tq.plan.tree.to_string(),
                       util::fmt_seconds(base.stats.wall_seconds),
                       util::fmt_seconds(tq.stats.wall_seconds),
                       util::fmt_speedup(speedup),
                       util::fmt_speedup(tq.plan.theoretical_speedup()),
                       util::fmt_speedup(paper_proj)});
        json.begin_row()
            .field("kind", std::string("circuit"))
            .field("name", std::string(c.name))
            .field("qubits", c.circuit.num_qubits())
            .field("gates", static_cast<std::uint64_t>(c.circuit.size()))
            .field("tree", tq.plan.tree.to_string())
            .field("baseline_seconds", base.stats.wall_seconds)
            .field("tqsim_seconds", tq.stats.wall_seconds)
            .field("speedup", speedup)
            .field("theoretical_speedup", tq.plan.theoretical_speedup())
            .field("projected_speedup_paper_shots", paper_proj);
    }
    std::printf("%s\n", table.to_string().c_str());

    util::Table summary({"family", "mean speedup", "min", "max",
                         "mean theo @32000", "paper mean"});
    const std::map<circuits::Family, const char*> paper_means = {
        {circuits::Family::kAdder, "2.20x"}, {circuits::Family::kBV, "1.77x"},
        {circuits::Family::kMul, "2.62x"},   {circuits::Family::kQAOA, "2.39x"},
        {circuits::Family::kQFT, "3.10x"},   {circuits::Family::kQPE, "2.76x"},
        {circuits::Family::kQSC, "2.22x"},   {circuits::Family::kQV, "2.98x"},
    };
    for (circuits::Family f : circuits::all_families()) {
        const auto& v = family_speedups[f];
        double lo = v[0], hi = v[0];
        for (double s : v) {
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        summary.add_row({circuits::family_name(f),
                         util::fmt_speedup(util::mean(v)),
                         util::fmt_speedup(lo), util::fmt_speedup(hi),
                         util::fmt_speedup(util::mean(family_paper_proj[f])),
                         paper_means.at(f)});
    }
    std::printf("%s\n", summary.to_string().c_str());
    std::printf("overall mean measured speedup @%llu shots: %s\n",
                static_cast<unsigned long long>(shots),
                util::fmt_speedup(util::mean(all_speedups)).c_str());
    std::printf("overall mean projected speedup @%llu shots: %s  (paper: "
                "2.51x average, up to 3.89x)\n",
                static_cast<unsigned long long>(paper_shots),
                util::fmt_speedup(util::mean(all_paper_proj)).c_str());
    std::printf("note: the paper's factors need its 32000-shot budget — "
                "DCP's first-level\nCochran allocation caps how many reuse "
                "levels a smaller budget affords.\n");
    json.begin_row()
        .field("kind", std::string("summary"))
        .field("shots", shots)
        .field("mean_measured_speedup", util::mean(all_speedups))
        .field("mean_projected_speedup", util::mean(all_paper_proj));
    json.write(json_path);
    return 0;
}
