#ifndef TQSIM_BENCH_PARALLEL_SWEEP_H_
#define TQSIM_BENCH_PARALLEL_SWEEP_H_

/**
 * @file
 * Shared worker-pool thread-sweep harness used by bench_parallel_speedup and
 * the measured half of bench_fig08_parallel_shots, so the two figures share
 * one methodology (warmup run, best-of-N timing, determinism check against
 * the single-thread reference).
 */

#include <functional>
#include <vector>

#include "core/tree_executor.h"
#include "sim/parallel.h"

namespace tqsim::bench {

/** One measured point of a thread sweep. */
struct SweepPoint
{
    int threads = 1;
    double seconds = 0.0;
    /** Single-thread wall-clock / this wall-clock. */
    double speedup = 1.0;
    /** Distribution bit-identical to the single-thread reference. */
    bool deterministic = true;
};

/**
 * Runs @p run_once at pool sizes {1, 2, 4, ..., max_threads}; each point is
 * the best wall-clock of @p reps runs after one warmup.  Restores the pool
 * to one thread before returning.
 */
inline std::vector<SweepPoint>
run_thread_sweep(int max_threads, int reps,
                 const std::function<core::RunResult()>& run_once)
{
    std::vector<SweepPoint> points;
    std::vector<double> reference;
    for (int threads = 1; threads <= max_threads; threads *= 2) {
        sim::set_num_threads(threads);
        core::RunResult result = run_once();  // warmup + determinism probe
        double best = result.stats.wall_seconds;
        for (int r = 1; r < reps; ++r) {
            const core::RunResult again = run_once();
            if (again.stats.wall_seconds < best) {
                best = again.stats.wall_seconds;
            }
        }
        SweepPoint p;
        p.threads = threads;
        p.seconds = best;
        if (threads == 1) {
            reference = result.distribution.probabilities();
        }
        p.deterministic = result.distribution.probabilities() == reference;
        p.speedup = points.empty() ? 1.0 : points.front().seconds / best;
        points.push_back(p);
    }
    sim::set_num_threads(1);
    return points;
}

}  // namespace tqsim::bench

#endif  // TQSIM_BENCH_PARALLEL_SWEEP_H_
