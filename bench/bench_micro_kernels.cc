/**
 * @file
 * google-benchmark micro suite for the engine primitives: gate kernels,
 * state copies (the Sec. 3.6 ratio), Kraus probability evaluation, and
 * outcome sampling.
 */

#include <benchmark/benchmark.h>

#include "sim/circuit.h"
#include "sim/gate_kernels.h"
#include "sim/sampler.h"
#include "sim/state_vector.h"
#include "util/rng.h"

namespace {

using namespace tqsim;

sim::StateVector
prepared_state(int num_qubits)
{
    sim::StateVector s(num_qubits);
    for (int q = 0; q < num_qubits; ++q) {
        sim::apply_gate(s, sim::Gate::h(q));
    }
    return s;
}

void
BM_Apply1qDense(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector s = prepared_state(n);
    const sim::Matrix m = sim::Gate::h(0).matrix();
    int q = 0;
    for (auto _ : state) {
        sim::apply_1q_matrix(s, q, m);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_Apply1qDense)->Arg(10)->Arg(14)->Arg(18);

void
BM_ApplyDiag1q(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector s = prepared_state(n);
    int q = 0;
    for (auto _ : state) {
        sim::apply_diag_1q(s, q, {1.0, 0.0}, {0.0, 1.0});
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_ApplyDiag1q)->Arg(10)->Arg(14)->Arg(18);

void
BM_ApplyCx(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector s = prepared_state(n);
    int q = 0;
    for (auto _ : state) {
        sim::apply_cx(s, q, (q + 1) % n);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_ApplyCx)->Arg(10)->Arg(14)->Arg(18);

void
BM_Apply2qDense(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector s = prepared_state(n);
    const sim::Matrix m = sim::Gate::fsim(0, 1, 0.7, 0.3).matrix();
    int q = 0;
    for (auto _ : state) {
        sim::apply_2q_matrix(s, q, (q + 1) % n, m);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_Apply2qDense)->Arg(10)->Arg(14)->Arg(18);

void
BM_ApplyCcx(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector s = prepared_state(n);
    int q = 0;
    for (auto _ : state) {
        sim::apply_ccx(s, q, (q + 1) % n, (q + 2) % n);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_ApplyCcx)->Arg(10)->Arg(14);

void
BM_StateCopy(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const sim::StateVector s = prepared_state(n);
    for (auto _ : state) {
        sim::StateVector copy = s;
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.bytes()));
}
BENCHMARK(BM_StateCopy)->Arg(10)->Arg(14)->Arg(18);

void
BM_KrausProbability1q(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const sim::StateVector s = prepared_state(n);
    const sim::Matrix k = {1.0, 0.0, 0.0, 0.9};
    int q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::kraus_probability_1q(s, q, k));
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_KrausProbability1q)->Arg(10)->Arg(14);

void
BM_SampleOnce(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const sim::StateVector s = prepared_state(n);
    util::Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::sample_once(s, rng));
    }
}
BENCHMARK(BM_SampleOnce)->Arg(10)->Arg(14);

void
BM_SampleMany(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const sim::StateVector s = prepared_state(n);
    util::Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::sample_many(s, 1024, rng));
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SampleMany)->Arg(10)->Arg(14);

}  // namespace
