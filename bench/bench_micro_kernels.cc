/**
 * @file
 * Micro suite for the engine primitives, one row per gate kind: dense and
 * diagonal 1q/2q kernels, the permutation fast paths, the batched-diagonal
 * and controlled-1q segment kernels, Kraus probability evaluation, state
 * copies (the Sec. 3.6 ratio), pooled snapshots, and outcome sampling.
 *
 * Each kind is timed independently so regressions localize to a kernel
 * instead of vanishing into an aggregate.  The JSON artifact (--json=PATH)
 * is the input of tools/check_perf_regression.py, which CI runs against the
 * committed baseline in bench/baselines/.
 *
 * Flags: --min-time=S per-measurement budget (default 0.05),
 *        --json=PATH bench-JSON artifact.
 */

#include "bench_common.h"

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "sim/gate.h"
#include "sim/gate_kernels.h"
#include "sim/sampler.h"
#include "sim/segment_plan.h"
#include "sim/state_vector.h"
#include "util/integrity.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace tqsim;

sim::StateVector
prepared_state(int num_qubits)
{
    sim::StateVector s(num_qubits);
    for (int q = 0; q < num_qubits; ++q) {
        sim::apply_gate(s, sim::Gate::h(q));
    }
    return s;
}

/** Runs @p op repeatedly for at least @p min_seconds; returns ns per call. */
double
measure_ns(double min_seconds, const std::function<void()>& op)
{
    // One untimed call warms caches and faults pages.
    op();
    std::uint64_t iters = 0;
    util::Timer timer;
    do {
        op();
        ++iters;
    } while (timer.elapsed_s() < min_seconds);
    return static_cast<double>(timer.elapsed_ns()) /
           static_cast<double>(iters);
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Flags flags(argc, argv);
    const double min_time = flags.get_double("min-time", 0.05);
    const std::string json_path = flags.get_string("json", "");

    bench::banner("micro kernels: per-gate-kind throughput",
                  "engine primitives (Sec. 2.2 / 3.6)",
                  "diag < permutation < dense 1q < dense 2q cost per pass; "
                  "pooled snapshot ~ memcpy");

    bench::JsonRows json("micro_kernels");
    util::Table table({"kind", "qubits", "ns/op", "Mamps/s"});

    // Every measurement reports amplitudes touched per second so kinds are
    // comparable across state sizes.
    auto report = [&](const char* kind, int n, double ns_per_op,
                      double items_per_op) {
        const double items_per_sec = items_per_op / (ns_per_op * 1e-9);
        table.add_row({kind, std::to_string(n),
                       util::fmt_double(ns_per_op, 1),
                       util::fmt_double(items_per_sec * 1e-6, 1)});
        json.begin_row()
            .field("kind", std::string(kind))
            .field("qubits", n)
            .field("ns_per_op", ns_per_op)
            .field("items_per_sec", items_per_sec);
    };

    for (const int n : {10, 14}) {
        sim::StateVector s = prepared_state(n);
        const double size = static_cast<double>(s.size());
        const sim::Matrix h = sim::Gate::h(0).matrix();
        const sim::Matrix fsim = sim::Gate::fsim(0, 1, 0.7, 0.3).matrix();
        const sim::Matrix damp = {1.0, 0.0, 0.0, 0.9};
        int q = 0;
        auto next_q = [&q, n] {
            const int v = q;
            q = (q + 1) % n;
            return v;
        };

        report("dense1q", n, measure_ns(min_time, [&] {
                   sim::apply_1q_matrix(s, next_q(), h);
               }),
               size);
        report("diag1q", n, measure_ns(min_time, [&] {
                   sim::apply_diag_1q(s, next_q(), {1.0, 0.0}, {0.0, 1.0});
               }),
               size);
        {
            // An 8-gate diagonal run folded into one batch.  At these
            // cache-resident sizes apply_diag_batch executes its per-term
            // specialized passes; the fused single-pass variant is timed
            // separately at 18 qubits below.
            std::vector<sim::DiagTerm> terms;
            for (int t = 0; t < 8; ++t) {
                sim::DiagTerm term;
                term.mask0 = sim::Index{1} << (t % n);
                term.d[1] = {std::cos(0.1 * t), std::sin(0.1 * t)};
                terms.push_back(term);
            }
            report("diag_batch8", n, measure_ns(min_time, [&] {
                       sim::apply_diag_batch(s, terms.data(), terms.size());
                   }),
                   size);
        }
        report("pauli_x", n,
               measure_ns(min_time, [&] { sim::apply_x(s, next_q()); }),
               size);
        report("cx", n, measure_ns(min_time, [&] {
                   const int a = next_q();
                   sim::apply_cx(s, a, (a + 1) % n);
               }),
               size);
        report("cz", n, measure_ns(min_time, [&] {
                   const int a = next_q();
                   sim::apply_cz(s, a, (a + 1) % n);
               }),
               size);
        report("swap", n, measure_ns(min_time, [&] {
                   const int a = next_q();
                   sim::apply_swap(s, a, (a + 1) % n);
               }),
               size);
        report("controlled1q", n, measure_ns(min_time, [&] {
                   const int a = next_q();
                   sim::apply_controlled_1q(s, a, (a + 1) % n, h);
               }),
               size);
        report("dense2q", n, measure_ns(min_time, [&] {
                   const int a = next_q();
                   sim::apply_2q_matrix(s, a, (a + 1) % n, fsim);
               }),
               size);
        // The fusion-cluster kernel at every width it dispatches (k = 2/3
        // forward to the specialized kernels, k = 4/5 run the
        // gather/scatter template); spread operands so low and high
        // strides are both exercised.  The matrix is a dense *unitary*
        // (Kronecker product of rx rotations) so thousands of timing
        // iterations keep the state normalized — no denormal slowdown.
        for (int k = 2; k <= 5; ++k) {
            const int kq_operands[5] = {0, 2, 4, 6, 8};
            sim::Matrix dense_kq{sim::Complex{1.0, 0.0}};
            std::size_t d = 1;
            for (int i = 0; i < k; ++i) {
                const sim::Matrix u =
                    sim::Gate::rx(0, 0.7 + 0.13 * i).matrix();
                sim::Matrix next(4 * d * d);
                for (std::size_t ru = 0; ru < 2; ++ru) {
                    for (std::size_t cu = 0; cu < 2; ++cu) {
                        for (std::size_t rm = 0; rm < d; ++rm) {
                            for (std::size_t cm = 0; cm < d; ++cm) {
                                next[(ru * d + rm) * (2 * d) + cu * d + cm] =
                                    u[ru * 2 + cu] * dense_kq[rm * d + cm];
                            }
                        }
                    }
                }
                dense_kq = std::move(next);
                d *= 2;
            }
            const std::string kind = "dense_kq" + std::to_string(k);
            report(kind.c_str(), n, measure_ns(min_time, [&] {
                       sim::apply_dense_kq(s, kq_operands, k, dense_kq);
                   }),
                   size);
        }
        report("ccx", n, measure_ns(min_time, [&] {
                   const int a = next_q();
                   sim::apply_ccx(s, a, (a + 1) % n, (a + 2) % n);
               }),
               size);
        report("kraus_prob1q", n, measure_ns(min_time, [&] {
                   volatile double p =
                       sim::kraus_probability_1q(s, next_q(), damp);
                   (void)p;
               }),
               size);

        // Snapshot costs: raw allocate-and-copy vs pooled lease/release.
        {
            double sink = 0.0;
            const double copy_ns = measure_ns(min_time, [&] {
                sim::StateVector copy = s;
                sink += copy[0].real();
            });
            report("state_copy", n, copy_ns, size);
            sim::SnapshotPool pool;
            pool.release(sim::SnapshotPool().lease_copy(s));  // warm: 1 buffer
            const double pooled_ns = measure_ns(min_time, [&] {
                sim::StateVector leased = pool.lease_copy(s);
                sink += leased[0].real();
                pool.release(std::move(leased));
            });
            report("pooled_snapshot", n, pooled_ns, size);
            json.field("pool_hits", pool.hits())
                .field("pool_misses", pool.misses());
            if (sink > 1e30) {
                std::printf("unreachable %f\n", sink);  // keep `sink` alive
            }
        }
        {
            util::Rng rng(7);
            report("sample_once", n, measure_ns(min_time, [&] {
                       volatile sim::Index o = sim::sample_once(s, rng);
                       (void)o;
                   }),
                   size);
        }
        // Integrity-digest throughput: the cost the online monitors and
        // cache-lease verification pay per state pass
        // (docs/robustness.md#integrity--silent-corruption).
        report("state_digest", n, measure_ns(min_time, [&] {
                   volatile std::uint64_t d = util::integrity::digest_doubles(
                       reinterpret_cast<const double*>(s.data()),
                       s.size() * 2U);
                   (void)d;
               }),
               size);
    }

    // apply_diag_batch only auto-dispatches to the fused single pass for
    // LLC-overflowing states; time the fused variant directly at 18 qubits
    // so the regression gate covers that kernel at tractable cost.
    {
        const int n = 18;
        sim::StateVector s = prepared_state(n);
        std::vector<sim::DiagTerm> terms;
        for (int t = 0; t < 8; ++t) {
            sim::DiagTerm term;
            term.mask0 = sim::Index{1} << (2 * t);
            term.d[1] = {std::cos(0.1 * t), std::sin(0.1 * t)};
            terms.push_back(term);
        }
        report("diag_batch8_fused", n, measure_ns(min_time, [&] {
                   sim::apply_diag_batch_fused(s, terms.data(),
                                               terms.size());
               }),
               static_cast<double>(s.size()));
        // Same-width memcpy row: the regression checker's normalization
        // anchor for the 18q measurement.
        double sink = 0.0;
        report("state_copy", n, measure_ns(min_time, [&] {
                   sim::StateVector copy = s;
                   sink += copy[0].real();
               }),
               static_cast<double>(s.size()));
        if (sink > 1e30) {
            std::printf("unreachable %f\n", sink);
        }
    }

    std::printf("%s\n", table.to_string().c_str());
    json.write(json_path);
    return 0;
}
