/**
 * @file
 * Service-layer benchmark: a multi-tenant storm of concurrent jobs sharing
 * a circuit prefix, with the cross-request reuse cache on vs. off
 * (docs/serving.md#cross-request-reuse).  Reports wall time, cache hit
 * counters (plan hits + prefix leases), verifies bit-identity against
 * isolated core::run results, and demonstrates graceful admission-control
 * rejection of an over-memory-cap job.
 *
 * A fault-rate sweep (docs/robustness.md) then re-runs the storm with the
 * deterministic fail points armed at p in {0, 0.01, 0.05}, reporting
 * completion rate, retries, and throughput — and holding every job that
 * still completes to the same bit-identity bar.
 */

#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/tqsim.h"
#include "service/job_service.h"
#include "util/failpoint.h"
#include "util/table.h"

namespace {

using namespace tqsim;

/// A patterned circuit; circuits with the same (width, gates) but
/// different `tail_salt` share their first half and diverge after it.
sim::Circuit
storm_circuit(int width, int gates, int tail_salt)
{
    sim::Circuit c(width);
    const int half = gates / 2;
    for (int i = 0; i < half; ++i) {
        switch (i % 4) {
        case 0: c.h(i % width); break;
        case 1: c.rx(i % width, 0.1 + 0.01 * i); break;
        case 2: c.cx(i % width, (i + 1) % width); break;
        default: c.rz(i % width, 0.2 + 0.02 * i); break;
        }
    }
    for (int i = half; i < gates; ++i) {
        c.ry(i % width, 0.25 + 0.003 * i * (1 + tail_salt));
    }
    return c;
}

struct StormResult
{
    double wall_seconds = 0.0;
    std::uint64_t plan_hits = 0;
    std::uint64_t prefix_leases = 0;
    bool bit_identical = true;
};

/// Runs @p jobs service jobs (round-robin over @p variants circuit tails,
/// alternating tenants) and checks every result against its isolated run.
StormResult
run_storm(int width, int gates, int variants, int jobs, int lanes,
          std::uint64_t shots_per_level, bool cache_on,
          const noise::NoiseModel& model,
          const std::vector<core::RunResult>& isolated)
{
    core::RunOptions opt;
    opt.strategy = core::PartitionStrategy::kManual;
    opt.manual_arities = {shots_per_level, shots_per_level};
    opt.shots = shots_per_level * shots_per_level;
    opt.collect_outcomes = true;

    service::JobServiceConfig cfg;
    cfg.num_lanes = lanes;
    cfg.enable_reuse_cache = cache_on;
    service::JobService svc(cfg);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<service::JobId> ids;
    for (int j = 0; j < jobs; ++j) {
        service::JobSpec spec{
            .circuit = storm_circuit(width, gates, j % variants),
            .model = model,
            .options = opt,
            .tenant = j % 2 == 0 ? "tenant-a" : "tenant-b",
            .deadline_seconds = 0.0};
        ids.push_back(svc.submit(std::move(spec)));
    }
    StormResult out;
    for (int j = 0; j < jobs; ++j) {
        const service::JobStatus st = svc.wait(ids[j]);
        if (st.state != service::JobState::kDone) {
            std::fprintf(stderr, "job %d failed: %s\n", j,
                         st.error.message.c_str());
            out.bit_identical = false;
            continue;
        }
        const core::RunResult& got = svc.result(ids[j]);
        const core::RunResult& want = isolated[j % variants];
        out.plan_hits += got.stats.plan_cache_hits;
        out.prefix_leases += got.stats.prefix_leases;
        if (got.raw_outcomes != want.raw_outcomes ||
            got.distribution.probabilities() !=
                want.distribution.probabilities()) {
            out.bit_identical = false;
        }
    }
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return out;
}

struct FaultSweepResult
{
    double wall_seconds = 0.0;
    int completed = 0;
    int failed = 0;
    std::uint64_t retries = 0;
    bool completed_bit_identical = true;
    /// Full service snapshot (integrity/shadow counters, per-site
    /// fail-point stats) taken after the storm drained.
    service::ServiceStats svc_stats;
};

/// Re-runs the storm with fail points armed at probability @p p over the
/// allocation and cache seams; the RAII disarm keeps later legs clean.
/// @p corrupt switches to silent-corruption injection (bit flips instead
/// of throws) with the online integrity monitors and shadow
/// re-verification turned on — the detection story instead of the
/// crash-recovery story.
FaultSweepResult
run_fault_storm(double p, int width, int gates, int variants, int jobs,
                int lanes, std::uint64_t shots_per_level,
                const noise::NoiseModel& model,
                const std::vector<core::RunResult>& isolated,
                bool corrupt = false)
{
    namespace fp = util::failpoint;
    struct Disarm
    {
        ~Disarm() { fp::disarm(); }
    } disarm_on_exit;
    if (p > 0.0) {
        fp::FailPlan plan;
        plan.seed = 0x5EED;
        plan.probability = p;
        plan.corrupt = corrupt;
        plan.sites = corrupt
                         ? std::vector<std::string>{"sim.arena.lease",
                                                    "service.cache.insert",
                                                    "dist.transport.gather"}
                         : std::vector<std::string>{
                               "sim.arena.root", "sim.arena.lease",
                               "sim.arena.snapshot", "service.cache.lease",
                               "service.cache.insert"};
        fp::arm(plan);
    }

    core::RunOptions opt;
    opt.strategy = core::PartitionStrategy::kManual;
    opt.manual_arities = {shots_per_level, shots_per_level};
    opt.shots = shots_per_level * shots_per_level;
    opt.collect_outcomes = true;
    if (corrupt) {
        opt.integrity.level = util::IntegrityLevel::kSampled;
        opt.integrity.sample_every = 1;
    }

    service::JobServiceConfig cfg;
    cfg.num_lanes = lanes;
    cfg.reaper_period_seconds = 0.002;
    cfg.retry.max_attempts = 6;
    cfg.retry.base_backoff_seconds = 0.001;
    cfg.retry.max_backoff_seconds = 0.01;
    cfg.degrade_decay_seconds = 0.05;
    if (corrupt) {
        cfg.shadow_fraction = 0.25;
    }
    service::JobService svc(cfg);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<service::JobId> ids;
    for (int j = 0; j < jobs; ++j) {
        service::JobSpec spec{
            .circuit = storm_circuit(width, gates, j % variants),
            .model = model,
            .options = opt,
            .tenant = j % 2 == 0 ? "tenant-a" : "tenant-b",
            .deadline_seconds = 0.0};
        ids.push_back(svc.submit(std::move(spec)));
    }
    FaultSweepResult out;
    for (int j = 0; j < jobs; ++j) {
        const service::JobStatus st = svc.wait(ids[j]);
        if (st.state != service::JobState::kDone) {
            ++out.failed;
            continue;
        }
        ++out.completed;
        const core::RunResult& got = svc.result(ids[j]);
        const core::RunResult& want = isolated[j % variants];
        if (got.raw_outcomes != want.raw_outcomes ||
            got.distribution.probabilities() !=
                want.distribution.probabilities()) {
            out.completed_bit_identical = false;
        }
    }
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    out.svc_stats = svc.service_stats();
    out.retries = out.svc_stats.retries;
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Flags flags(argc, argv);
    const int width = static_cast<int>(flags.get_u64("qubits", 14));
    const int gates = static_cast<int>(flags.get_u64("gates", 64));
    const int jobs = static_cast<int>(flags.get_u64("jobs", 8));
    const int lanes = static_cast<int>(flags.get_u64("lanes", 4));
    const int variants = 2;
    const std::uint64_t arity = flags.get_u64("arity", 8);

    bench::banner(
        "Service: cross-request reuse under a multi-tenant job storm",
        "service layer (docs/serving.md) on top of the paper's reuse tree",
        "concurrent jobs sharing a circuit prefix lease each other's "
        "compiled plans and prefix snapshots; results stay bit-identical");

    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    // Isolated references (also warms the worker pool so the two storm
    // timings below are compared fairly).
    core::RunOptions opt;
    opt.strategy = core::PartitionStrategy::kManual;
    opt.manual_arities = {arity, arity};
    opt.shots = arity * arity;
    opt.collect_outcomes = true;
    std::vector<core::RunResult> isolated;
    for (int v = 0; v < variants; ++v) {
        isolated.push_back(
            core::run(storm_circuit(width, gates, v), model, opt));
    }

    util::Table table({"cache", "jobs", "lanes", "wall (s)", "plan hits",
                       "prefix leases", "bit-identical"});
    bench::JsonRows json("service_reuse");
    StormResult results[2];
    const bool cache_settings[2] = {false, true};
    for (int i = 0; i < 2; ++i) {
        const bool on = cache_settings[i];
        results[i] = run_storm(width, gates, variants, jobs, lanes, arity,
                               on, model, isolated);
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.3f", results[i].wall_seconds);
        table.add_row({on ? "on" : "off", std::to_string(jobs),
                       std::to_string(lanes), wall,
                       std::to_string(results[i].plan_hits),
                       std::to_string(results[i].prefix_leases),
                       results[i].bit_identical ? "yes" : "NO"});
        json.begin_row()
            .field("cache", std::string(on ? "on" : "off"))
            .field("jobs", jobs)
            .field("lanes", lanes)
            .field("wall_seconds", results[i].wall_seconds)
            .field("plan_hits", results[i].plan_hits)
            .field("prefix_leases", results[i].prefix_leases)
            .field("bit_identical",
                   std::uint64_t{results[i].bit_identical ? 1u : 0u});
    }
    std::printf("%s\n", table.to_string().c_str());

    // Fault-rate sweep: the same storm under deterministic fault injection
    // (docs/robustness.md).  Completed jobs must stay bit-identical at any
    // fault rate; at p=0 nothing may fail and nothing may retry.
    const double fault_rates[] = {0.0, 0.01, 0.05};
    util::Table fault_table({"fault p", "completed", "failed", "retries",
                             "wall (s)", "jobs/s", "bit-identical"});
    bool sweep_ok = true;
    for (const double p : fault_rates) {
        const FaultSweepResult r = run_fault_storm(
            p, width, gates, variants, jobs, lanes, arity, model, isolated);
        const double throughput =
            r.wall_seconds > 0.0 ? r.completed / r.wall_seconds : 0.0;
        char pbuf[16];
        char wall[32];
        char thr[32];
        std::snprintf(pbuf, sizeof(pbuf), "%.2f", p);
        std::snprintf(wall, sizeof(wall), "%.3f", r.wall_seconds);
        std::snprintf(thr, sizeof(thr), "%.1f", throughput);
        fault_table.add_row({pbuf, std::to_string(r.completed),
                             std::to_string(r.failed),
                             std::to_string(r.retries), wall, thr,
                             r.completed_bit_identical ? "yes" : "NO"});
        json.begin_row()
            .field("fault_p", p)
            .field("jobs", jobs)
            .field("lanes", lanes)
            .field("completed", std::uint64_t(r.completed))
            .field("failed", std::uint64_t(r.failed))
            .field("retries", r.retries)
            .field("wall_seconds", r.wall_seconds)
            .field("jobs_per_second", throughput)
            .field("bit_identical",
                   std::uint64_t{r.completed_bit_identical ? 1u : 0u});
        sweep_ok = sweep_ok && r.completed_bit_identical &&
                   (p > 0.0 || (r.failed == 0 && r.retries == 0));
    }
    std::printf("%s\n", fault_table.to_string().c_str());

    // Corruption leg: the same storm under *silent* bit-flip injection
    // with the integrity monitors and shadow re-verification on
    // (docs/robustness.md#integrity--silent-corruption).  The bar is not
    // completion — it is that nothing completes *wrong*.
    const FaultSweepResult cr =
        run_fault_storm(0.02, width, gates, variants, jobs, lanes, arity,
                        model, isolated, /*corrupt=*/true);
    std::printf("corruption storm (p=0.02, monitors on, shadow 0.25):\n"
                "  completed=%d failed=%d retries=%llu "
                "bit-identical=%s\n"
                "  integrity_failures=%llu cache_quarantined=%llu "
                "shadow_runs=%llu shadow_mismatches=%llu\n",
                cr.completed, cr.failed,
                static_cast<unsigned long long>(cr.retries),
                cr.completed_bit_identical ? "yes" : "NO",
                static_cast<unsigned long long>(
                    cr.svc_stats.integrity_failures),
                static_cast<unsigned long long>(
                    cr.svc_stats.cache_quarantined),
                static_cast<unsigned long long>(cr.svc_stats.shadow_runs),
                static_cast<unsigned long long>(
                    cr.svc_stats.shadow_mismatches));
    util::Table site_table({"fail-point site", "evaluations", "fires"});
    for (const auto& [site, stats] : cr.svc_stats.failpoint_sites) {
        site_table.add_row({site, std::to_string(stats.evaluations),
                            std::to_string(stats.fires)});
    }
    std::printf("%s\n", site_table.to_string().c_str());
    json.begin_row()
        .field("corruption_p", 0.02)
        .field("completed", std::uint64_t(cr.completed))
        .field("failed", std::uint64_t(cr.failed))
        .field("integrity_failures", cr.svc_stats.integrity_failures)
        .field("cache_quarantined", cr.svc_stats.cache_quarantined)
        .field("shadow_runs", cr.svc_stats.shadow_runs)
        .field("shadow_mismatches", cr.svc_stats.shadow_mismatches)
        .field("bit_identical",
               std::uint64_t{cr.completed_bit_identical ? 1u : 0u});

    // Admission control: a job whose peak live-state estimate exceeds the
    // cap is rejected with structured math, never an OOM.
    service::JobServiceConfig capped;
    capped.limits.max_state_bytes = 1ULL << 20;  // 1 MiB envelope
    service::JobService svc(capped);
    service::JobSpec big{.circuit = storm_circuit(24, gates, 0),
                         .model = model,
                         .options = opt,
                         .tenant = "tenant-a",
                         .deadline_seconds = 0.0};
    const service::JobId over = svc.submit(std::move(big));
    const service::JobStatus st = svc.wait(over);
    std::printf("over-cap job: state=%s reason=%s\n  %s\n\n",
                service::job_state_name(st.state),
                service::reject_reason_name(st.error.reason),
                st.error.message.c_str());

    const bool ok = results[0].bit_identical && results[1].bit_identical &&
                    results[1].plan_hits > 0 &&
                    results[1].prefix_leases > 0 && sweep_ok &&
                    cr.completed_bit_identical &&
                    st.state == service::JobState::kRejected;
    std::printf("%s\n", ok ? "service reuse bench: OK"
                           : "service reuse bench: FAILED");
    json.write(flags.get_string("json", ""));
    return ok ? 0 : 1;
}
