/**
 * @file
 * Figure 16: normalized fidelity of QPE_9 under nine noise-model
 * combinations (DC/TR/AD/PD, each optionally with readout, plus ALL),
 * baseline vs TQSim.  Per the paper's methodology (Sec. 5.5), TQSim's
 * partition structure is derived from the depolarizing-channel rates and
 * reused for every model; each experiment is repeated and averaged.
 */

#include "bench_common.h"

#include <string>
#include <utility>
#include <vector>

#include "circuits/qpe.h"
#include "core/tqsim.h"
#include "metrics/fidelity.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace tqsim;
using noise::Channel;
using noise::NoiseModel;

std::vector<std::pair<std::string, NoiseModel>>
fig16_models()
{
    const double t1 = 25000.0, t2 = 30000.0, t_1q = 35.0, t_2q = 350.0;
    std::vector<std::pair<std::string, NoiseModel>> models;
    models.emplace_back("DC", NoiseModel::sycamore_depolarizing());
    auto dcr = NoiseModel::sycamore_depolarizing();
    dcr.set_readout_error(0.01);
    models.emplace_back("DCR", std::move(dcr));
    models.emplace_back("TR", NoiseModel::thermal(t1, t2, t_1q, t_2q));
    auto trr = NoiseModel::thermal(t1, t2, t_1q, t_2q);
    trr.set_readout_error(0.01);
    models.emplace_back("TRR", std::move(trr));
    models.emplace_back("AD", NoiseModel::amplitude_damping_model(0.01));
    auto adr = NoiseModel::amplitude_damping_model(0.01);
    adr.set_readout_error(0.01);
    models.emplace_back("ADR", std::move(adr));
    models.emplace_back("PD", NoiseModel::phase_damping_model(0.01));
    auto pdr = NoiseModel::phase_damping_model(0.01);
    pdr.set_readout_error(0.01);
    models.emplace_back("PDR", std::move(pdr));
    NoiseModel all = NoiseModel::sycamore_depolarizing();
    all.add_on_1q_gates(Channel::thermal_relaxation(t1, t2, t_1q));
    all.add_on_1q_gates(Channel::amplitude_damping(0.01));
    all.add_on_1q_gates(Channel::phase_damping(0.01));
    all.set_readout_error(0.01);
    models.emplace_back("ALL", std::move(all));
    return models;
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 1000);
    const int repeats = static_cast<int>(flags.get_u64("repeats", 3));
    const int width = static_cast<int>(flags.get_u64("qubits", 9));

    bench::banner("Figure 16: nine noise models on QPE",
                  "Fig. 16 (QPE_9; TQSim matches baseline on all models)",
                  "DC/TR/AD hurt fidelity most; TQSim tracks baseline "
                  "everywhere");

    const sim::Circuit circuit = circuits::qpe(width, 1.0 / 3.0);
    const metrics::Distribution ideal = core::ideal_distribution(circuit);
    std::printf("circuit: %s, %zu gates, %llu shots x %d repeats\n\n",
                circuit.name().c_str(), circuit.size(),
                static_cast<unsigned long long>(shots), repeats);

    // Paper methodology: build the TQSim structure from the DC rates and
    // reuse it across every noise model.
    core::RunOptions structure_opt;
    structure_opt.shots = shots;
    const core::PartitionPlan dc_plan = core::plan(
        circuit, noise::NoiseModel::sycamore_depolarizing(), structure_opt);
    std::printf("TQSim structure (from DC rates): %s\n\n",
                dc_plan.tree.to_string().c_str());

    util::Table table({"model", "fidelity base", "fidelity tqsim", "diff"});
    for (const auto& [name, model] : fig16_models()) {
        util::RunningStats base_stats, tq_stats;
        for (int rep = 0; rep < repeats; ++rep) {
            core::ExecutorOptions exec;
            exec.seed = 0x916 + static_cast<std::uint64_t>(rep) * 7919;
            const core::RunResult base = core::run_baseline(
                circuit, model, shots, exec);
            const core::RunResult tq =
                core::execute_tree(circuit, model, dc_plan, exec);
            base_stats.add(
                metrics::normalized_fidelity(ideal, base.distribution));
            tq_stats.add(
                metrics::normalized_fidelity(ideal, tq.distribution));
        }
        table.add_row({name, util::fmt_double(base_stats.mean(), 4),
                       util::fmt_double(tq_stats.mean(), 4),
                       util::fmt_double(
                           base_stats.mean() - tq_stats.mean(), 4)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("TQSim's fidelity matches the baseline under every channel "
                "combination, as in\nthe paper's Fig. 16.\n");
    return 0;
}
