/**
 * @file
 * Figure 10: state-copy cost normalized to one gate's execution time, on
 * this host (measured) and on the paper's six platforms (calibrated
 * models; see DESIGN.md substitutions).  The cost sets DCP's minimum
 * subcircuit length (Sec. 3.6).
 */

#include "bench_common.h"

#include "core/copy_cost.h"
#include "hw/platform_presets.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    (void)flags;

    bench::banner("Figure 10: state-copy cost across platforms",
                  "Fig. 10 / Sec. 3.6",
                  "HBM GPU lowest (~5), desktops ~8-12, server CPUs 35-45; "
                  "width-insensitive");

    util::Table host({"width (qubits)", "gate time", "copy time",
                      "copy cost (gates)"});
    for (int n : {8, 10, 12, 14}) {
        const core::CopyCostProfile p = core::profile_copy_cost(n, 0.03);
        host.add_row({std::to_string(n),
                      util::fmt_seconds(p.seconds_per_gate),
                      util::fmt_seconds(p.seconds_per_copy),
                      util::fmt_double(p.cost_in_gates(), 2)});
    }
    std::printf("this host (measured):\n%s\n", host.to_string().c_str());

    util::Table modeled({"platform", "copy cost @20q (gates)",
                         "copy cost @28q (gates)", "max SV qubits"});
    for (const hw::BackendProfile& p : hw::fig10_platforms()) {
        modeled.add_row({p.name, util::fmt_double(p.copy_cost_in_gates(20), 1),
                         util::fmt_double(p.copy_cost_in_gates(28), 1),
                         std::to_string(p.max_statevector_qubits())});
    }
    std::printf("paper platforms (calibrated models):\n%s\n",
                modeled.to_string().c_str());
    std::printf("Note: this single-core host executes gates slowly relative "
                "to memcpy, so its\nmeasured cost sits near the low end; "
                "many-core servers pay 35-45 gates per copy\nbecause their "
                "gates are fast and their DDR4 copies are not (paper's "
                "explanation).\n");
    return 0;
}
