/**
 * @file
 * Figure 10: state-copy cost normalized to one gate's execution time, on
 * this host (measured) and on the paper's six platforms (calibrated
 * models; see DESIGN.md substitutions).  The cost sets DCP's minimum
 * subcircuit length (Sec. 3.6).
 *
 * Also profiles the snapshot-buffer pool on a live tree execution: the same
 * run with pooling off (allocate every branch) vs on (lease recycled
 * buffers), reporting per-branch snapshot cost, pool hit rate, and the
 * sampled distributions' agreement.  --json=PATH emits all three sections
 * as bench-JSON for the perf-trajectory artifacts.
 */

#include "bench_common.h"

#include <cmath>
#include <string>

#include "circuits/qft.h"
#include "core/copy_cost.h"
#include "core/tree_executor.h"
#include "hw/platform_presets.h"
#include "metrics/fidelity.h"
#include "noise/noise_model.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::string json_path = flags.get_string("json", "");

    bench::banner("Figure 10: state-copy cost across platforms",
                  "Fig. 10 / Sec. 3.6",
                  "HBM GPU lowest (~5), desktops ~8-12, server CPUs 35-45; "
                  "width-insensitive");

    bench::JsonRows json("fig10_copy_cost");

    util::Table host({"width (qubits)", "gate time", "copy time",
                      "copy cost (gates)"});
    for (int n : {8, 10, 12, 14}) {
        const core::CopyCostProfile p = core::profile_copy_cost(n, 0.03);
        host.add_row({std::to_string(n),
                      util::fmt_seconds(p.seconds_per_gate),
                      util::fmt_seconds(p.seconds_per_copy),
                      util::fmt_double(p.cost_in_gates(), 2)});
        json.begin_row()
            .field("kind", std::string("host_profile"))
            .field("qubits", n)
            .field("seconds_per_gate", p.seconds_per_gate)
            .field("seconds_per_copy", p.seconds_per_copy)
            .field("copy_cost_gates", p.cost_in_gates());
    }
    std::printf("this host (measured):\n%s\n", host.to_string().c_str());

    util::Table modeled({"platform", "copy cost @20q (gates)",
                         "copy cost @28q (gates)", "max SV qubits"});
    for (const hw::BackendProfile& p : hw::fig10_platforms()) {
        modeled.add_row({p.name, util::fmt_double(p.copy_cost_in_gates(20), 1),
                         util::fmt_double(p.copy_cost_in_gates(28), 1),
                         std::to_string(p.max_statevector_qubits())});
        json.begin_row()
            .field("kind", std::string("platform"))
            .field("platform", p.name)
            .field("copy_cost_20q", p.copy_cost_in_gates(20))
            .field("copy_cost_28q", p.copy_cost_in_gates(28));
    }
    std::printf("paper platforms (calibrated models):\n%s\n",
                modeled.to_string().c_str());

    // ---- Snapshot pool on a live tree execution --------------------------
    // Same circuit, plan, and seed; only the pool toggles, so the RNG
    // streams — and therefore the sampled distributions — are identical.
    const int width = static_cast<int>(flags.get_u64("qubits", 12));
    const sim::Circuit circuit = circuits::qft(width);
    const noise::NoiseModel model = noise::NoiseModel::sycamore_depolarizing();
    const core::PartitionPlan plan{
        core::TreeStructure({16, 4, 4}),
        core::equal_boundaries(circuit.size(), 3)};
    auto run_with_pool = [&](bool pooled) {
        core::ExecutorOptions opt;
        opt.use_snapshot_pool = pooled;
        return core::execute_tree(circuit, model, plan, opt);
    };
    const core::RunResult unpooled = run_with_pool(false);
    const core::RunResult pooled = run_with_pool(true);
    const double tvd = metrics::total_variation_distance(
        unpooled.distribution, pooled.distribution);

    util::Table pool_table({"mode", "copies", "pool hits", "hit rate",
                            "copy seconds", "per-branch snapshot"});
    for (const core::RunResult* r : {&unpooled, &pooled}) {
        const core::ExecStats& st = r->stats;
        const double hit_rate =
            st.state_copies == 0
                ? 0.0
                : static_cast<double>(st.snapshot_pool_hits) /
                      static_cast<double>(st.state_copies);
        const double per_branch =
            st.state_copies == 0
                ? 0.0
                : st.copy_seconds / static_cast<double>(st.state_copies);
        const bool is_pooled = r == &pooled;
        pool_table.add_row({is_pooled ? "pooled" : "alloc-per-branch",
                            std::to_string(st.state_copies),
                            std::to_string(st.snapshot_pool_hits),
                            util::fmt_double(hit_rate * 100.0, 1),
                            util::fmt_seconds(st.copy_seconds),
                            util::fmt_seconds(per_branch)});
        json.begin_row()
            .field("kind", std::string("snapshot_pool"))
            .field("mode", std::string(is_pooled ? "pooled" : "alloc"))
            .field("qubits", width)
            .field("state_copies", st.state_copies)
            .field("snapshot_pool_hits", st.snapshot_pool_hits)
            .field("snapshot_pool_misses", st.snapshot_pool_misses)
            .field("pool_hit_rate", hit_rate)
            .field("copy_seconds", st.copy_seconds)
            .field("seconds_per_branch", per_branch)
            .field("distribution_tvd_vs_alloc", is_pooled ? tvd : 0.0);
    }
    std::printf("snapshot pool on a live tree (qft_n%d, tree %s):\n%s\n",
                width, plan.tree.to_string().c_str(),
                pool_table.to_string().c_str());
    std::printf("pooled vs alloc total-variation distance: %.12f (identical "
                "RNG streams)\n\n", tvd);

    std::printf("Note: this single-core host executes gates slowly relative "
                "to memcpy, so its\nmeasured cost sits near the low end; "
                "many-core servers pay 35-45 gates per copy\nbecause their "
                "gates are fast and their DDR4 copies are not (paper's "
                "explanation).\n");
    json.write(json_path);
    return 0;
}
