/**
 * @file
 * Extension bench (paper Sec. 4.2's aside): BV is a Clifford circuit, so
 * under Pauli noise it is simulable in polynomial time with a stabilizer
 * tableau.  This harness compares three ways of producing the same noisy BV
 * distribution — baseline statevector trajectories, TQSim, and stabilizer
 * trajectories — showing why the paper calls BV the *worst case* for
 * statevector-based reuse: a special-purpose simulator beats both.
 */

#include "bench_common.h"

#include "circuits/bv.h"
#include "core/tqsim.h"
#include "metrics/fidelity.h"
#include "stab/stabilizer.h"
#include "util/table.h"
#include "util/timer.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 1024);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Extension: stabilizer vs statevector on noisy BV",
                  "Sec. 4.2 (BV is Clifford; Pauli noise is stabilizer-"
                  "simulable)",
                  "stabilizer wall time scales polynomially; distributions "
                  "agree");

    util::Table table({"width", "baseline SV", "TQSim", "stabilizer",
                       "stab vs SV TVD"});
    for (int width : {8, 10, 12, 14}) {
        const sim::Circuit c = circuits::bernstein_vazirani(
            width, circuits::default_bv_secret(width));
        const core::RunResult base = core::run_baseline(c, model, shots);
        core::RunOptions opt;
        opt.shots = shots;
        const core::RunResult tq = core::run(c, model, opt);
        util::Timer stab_timer;
        const metrics::Distribution stab_dist =
            stab::run_stabilizer_trajectories(c, model, shots, 0x57AB);
        const double stab_seconds = stab_timer.elapsed_s();
        table.add_row(
            {std::to_string(width),
             util::fmt_seconds(base.stats.wall_seconds),
             util::fmt_seconds(tq.stats.wall_seconds),
             util::fmt_seconds(stab_seconds),
             util::fmt_double(metrics::total_variation_distance(
                                  stab_dist, base.distribution),
                              3)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("The stabilizer path's cost is polynomial in width (no 2^n "
                "factor), which is\nwhy BV stresses TQSim's accuracy-reuse "
                "balance rather than its speed (Sec. 4.2).\n");
    return 0;
}
