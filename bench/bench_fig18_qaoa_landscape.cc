/**
 * @file
 * Figure 18: QAOA max-cut cost-function landscapes over (beta0, gamma0) for
 * three input graphs (random, star, 3-regular), baseline vs TQSim, under
 * 0.1%-error depolarizing noise.  Reports per-graph speedup and landscape
 * MSE (paper: 3.7x/2.2x/1.6x speedups, MSE ~0.001-0.002).
 */

#include "bench_common.h"

#include <cmath>
#include <string>
#include <vector>

#include "circuits/graph.h"
#include "circuits/qaoa.h"
#include "core/tqsim.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 256);
    const int grid = static_cast<int>(flags.get_u64("grid", 5));
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing(0.001, 0.001);

    bench::banner("Figure 18: QAOA cost landscapes (3 graphs)",
                  "Fig. 18 (random/star/3-regular; speedups 3.7x/2.2x/1.6x)",
                  "TQSim landscape ~identical to baseline (MSE ~1e-3 in "
                  "normalized cut units)");

    struct GraphCase
    {
        std::string name;
        circuits::Graph graph;
    };
    std::vector<GraphCase> graphs;
    graphs.push_back({"Random(9)", circuits::Graph::random(9, 0.5, 0xF18)});
    graphs.push_back({"Star(9)", circuits::Graph::star(9)});
    graphs.push_back({"3-Regular(10)", circuits::Graph::regular3(10, 0xF18)});

    util::Table table({"graph", "qubits", "edges", "grid", "base time",
                       "tqsim time", "speedup", "MSE (normalized cut)"});
    for (const GraphCase& g : graphs) {
        double base_total = 0.0, tq_total = 0.0, mse = 0.0;
        const double edge_count = static_cast<double>(g.graph.num_edges());
        for (int bi = 0; bi < grid; ++bi) {
            for (int gi = 0; gi < grid; ++gi) {
                const double beta = -M_PI + (bi + 0.5) * 2.0 * M_PI / grid;
                const double gamma = -M_PI + (gi + 0.5) * 2.0 * M_PI / grid;
                const sim::Circuit c =
                    circuits::qaoa_maxcut(g.graph, {beta}, {gamma});
                const core::RunResult base =
                    core::run_baseline(c, model, shots);
                core::RunOptions opt;
                opt.shots = shots;
                const core::RunResult tq = core::run(c, model, opt);
                base_total += base.stats.wall_seconds;
                tq_total += tq.stats.wall_seconds;
                const double cut_base = circuits::expected_cut_value(
                                            base.distribution, g.graph) /
                                        edge_count;
                const double cut_tq = circuits::expected_cut_value(
                                          tq.distribution, g.graph) /
                                      edge_count;
                mse += (cut_base - cut_tq) * (cut_base - cut_tq);
            }
        }
        mse /= grid * grid;
        char gridstr[16];
        std::snprintf(gridstr, sizeof(gridstr), "%dx%d", grid, grid);
        table.add_row({g.name, std::to_string(g.graph.num_vertices()),
                       std::to_string(g.graph.num_edges()), gridstr,
                       util::fmt_seconds(base_total),
                       util::fmt_seconds(tq_total),
                       util::fmt_speedup(base_total / tq_total),
                       util::fmt_sci(mse, 2)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("Paper context: 31x31 grid on a 16-qubit QAOA took 10.3 h "
                "baseline vs 6.4 h\nTQSim (1.61x); shapes here match at "
                "reduced scale (--grid=/--shots= to scale up).\n");
    return 0;
}
