/**
 * @file
 * Table 3: wall-clock times for medium-scale circuits — the paper measures
 * QV_18 (708.7s -> 2.41x), QV_20 (2123.5s -> 1.98x), QFT_20 (2783.8s ->
 * 2.89x) at 32000 shots.  This harness measures scaled-down instances
 * (QV_12, QV_13, QFT_13 by default) that exercise the identical code path;
 * --qv=/--qft=/--shots= push toward paper scale.
 */

#include "bench_common.h"

#include "circuits/qft.h"
#include "circuits/qv.h"
#include "core/tqsim.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 512);
    const int qv_a = static_cast<int>(flags.get_u64("qv", 12));
    const int qv_b = qv_a + 1;
    const int qft_n = static_cast<int>(flags.get_u64("qft", 13));
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Table 3: medium-circuit simulation times",
                  "Table 3 (QV_18 2.41x, QV_20 1.98x, QFT_20 2.89x)",
                  "QFT gains more than QV (longer relative to width)");

    std::vector<sim::Circuit> cases;
    cases.push_back(circuits::quantum_volume(qv_a, 6, 0x7B3));
    cases.push_back(circuits::quantum_volume(qv_b, 6, 0x7B3));
    cases.push_back(circuits::qft(qft_n));

    util::Table table({"benchmark", "(w,g)", "baseline time", "tqsim time",
                       "speedup", "tree"});
    for (const sim::Circuit& c : cases) {
        const core::RunResult base = core::run_baseline(c, model, shots);
        core::RunOptions opt;
        opt.shots = shots;
        const core::RunResult tq = core::run(c, model, opt);
        char wg[32];
        std::snprintf(wg, sizeof(wg), "(%d,%zu)", c.num_qubits(), c.size());
        table.add_row({c.name(), wg,
                       util::fmt_seconds(base.stats.wall_seconds),
                       util::fmt_seconds(tq.stats.wall_seconds),
                       util::fmt_speedup(base.stats.wall_seconds /
                                         tq.stats.wall_seconds),
                       tq.plan.tree.to_string()});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("shots=%llu (paper: 32000).  Absolute times differ (single "
                "core vs dual Xeon);\nthe speedup ordering QFT > QV holds.\n",
                static_cast<unsigned long long>(shots));
    return 0;
}
