#ifndef TQSIM_BENCH_BENCH_COMMON_H_
#define TQSIM_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: flag parsing and a
 * uniform experiment banner.  Every harness runs with no arguments at
 * laptop-scale defaults and accepts --shots=/--qubits=/--scale= overrides
 * to approach the paper's configuration.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace tqsim::bench {

/** Minimal --key=value flag reader over argv. */
class Flags
{
  public:
    Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

    /** Returns the integer value of --name=..., or @p fallback. */
    std::uint64_t
    get_u64(const char* name, std::uint64_t fallback) const
    {
        const char* v = find(name);
        return v ? std::strtoull(v, nullptr, 10) : fallback;
    }

    /** Returns the double value of --name=..., or @p fallback. */
    double
    get_double(const char* name, double fallback) const
    {
        const char* v = find(name);
        return v ? std::strtod(v, nullptr) : fallback;
    }

    /** Returns the string value of --name=..., or @p fallback. */
    std::string
    get_string(const char* name, const std::string& fallback) const
    {
        const char* v = find(name);
        return v ? std::string(v) : fallback;
    }

  private:
    const char*
    find(const char* name) const
    {
        const std::string prefix = std::string("--") + name + "=";
        for (int i = 1; i < argc_; ++i) {
            if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
                return argv_[i] + prefix.size();
            }
        }
        return nullptr;
    }

    int argc_;
    char** argv_;
};

/**
 * Minimal row-oriented JSON emitter for the perf-trajectory artifacts: every
 * figure harness writes the same shape so CI can archive and diff them —
 *
 *   {"figure": "...", "rows": [{"k": v, ...}, ...]}
 *
 * Numbers are emitted unquoted, strings quoted with minimal escaping.  The
 * writer is append-only; rows are flushed by write() (a no-op when the
 * --json= flag was absent so harnesses can call it unconditionally).
 */
class JsonRows
{
  public:
    explicit JsonRows(std::string figure) : figure_(std::move(figure)) {}

    /** Starts a new output row. */
    JsonRows&
    begin_row()
    {
        rows_.emplace_back();
        return *this;
    }

    JsonRows&
    field(const char* key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", value);
        return raw_field(key, buf);
    }

    JsonRows&
    field(const char* key, std::uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        return raw_field(key, buf);
    }

    JsonRows&
    field(const char* key, int value)
    {
        return field(key, static_cast<std::uint64_t>(value));
    }

    JsonRows&
    field(const char* key, const std::string& value)
    {
        return raw_field(key, quote(value));
    }

    /** Writes the document to @p path; empty path is a silent no-op. */
    bool
    write(const std::string& path) const
    {
        if (path.empty()) {
            return true;
        }
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
            return false;
        }
        std::fprintf(f, "{\"figure\": %s, \"rows\": [",
                     quote(figure_).c_str());
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            std::fprintf(f, "%s{", r == 0 ? "" : ", ");
            for (std::size_t i = 0; i < rows_[r].size(); ++i) {
                std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                             quote(rows_[r][i].first).c_str(),
                             rows_[r][i].second.c_str());
            }
            std::fprintf(f, "}");
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
        return true;
    }

  private:
    JsonRows&
    raw_field(const char* key, std::string rendered)
    {
        if (rows_.empty()) {
            rows_.emplace_back();
        }
        rows_.back().emplace_back(key, std::move(rendered));
        return *this;
    }

    static std::string
    quote(const std::string& s)
    {
        std::string out = "\"";
        for (char c : s) {
            if (c == '"' || c == '\\') {
                out += '\\';
                out += c;
            } else if (c == '\n') {
                out += "\\n";
            } else {
                out += c;
            }
        }
        out += '"';
        return out;
    }

    std::string figure_;
    std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/** Prints the uniform experiment banner. */
inline void
banner(const char* experiment, const char* paper_ref, const char* expectation)
{
    std::printf("================================================================\n");
    std::printf("TQSim reproduction | %s\n", experiment);
    std::printf("Paper reference    | %s\n", paper_ref);
    std::printf("Expected shape     | %s\n", expectation);
    std::printf("================================================================\n\n");
}

}  // namespace tqsim::bench

#endif  // TQSIM_BENCH_BENCH_COMMON_H_
