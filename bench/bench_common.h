#ifndef TQSIM_BENCH_BENCH_COMMON_H_
#define TQSIM_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: flag parsing and a
 * uniform experiment banner.  Every harness runs with no arguments at
 * laptop-scale defaults and accepts --shots=/--qubits=/--scale= overrides
 * to approach the paper's configuration.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tqsim::bench {

/** Minimal --key=value flag reader over argv. */
class Flags
{
  public:
    Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

    /** Returns the integer value of --name=..., or @p fallback. */
    std::uint64_t
    get_u64(const char* name, std::uint64_t fallback) const
    {
        const char* v = find(name);
        return v ? std::strtoull(v, nullptr, 10) : fallback;
    }

    /** Returns the double value of --name=..., or @p fallback. */
    double
    get_double(const char* name, double fallback) const
    {
        const char* v = find(name);
        return v ? std::strtod(v, nullptr) : fallback;
    }

    /** Returns the string value of --name=..., or @p fallback. */
    std::string
    get_string(const char* name, const std::string& fallback) const
    {
        const char* v = find(name);
        return v ? std::string(v) : fallback;
    }

  private:
    const char*
    find(const char* name) const
    {
        const std::string prefix = std::string("--") + name + "=";
        for (int i = 1; i < argc_; ++i) {
            if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
                return argv_[i] + prefix.size();
            }
        }
        return nullptr;
    }

    int argc_;
    char** argv_;
};

/** Prints the uniform experiment banner. */
inline void
banner(const char* experiment, const char* paper_ref, const char* expectation)
{
    std::printf("================================================================\n");
    std::printf("TQSim reproduction | %s\n", experiment);
    std::printf("Paper reference    | %s\n", paper_ref);
    std::printf("Expected shape     | %s\n", expectation);
    std::printf("================================================================\n\n");
}

}  // namespace tqsim::bench

#endif  // TQSIM_BENCH_BENCH_COMMON_H_
