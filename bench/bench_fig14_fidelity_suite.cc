/**
 * @file
 * Figure 14: difference in normalized fidelity between the baseline noisy
 * simulator and TQSim across the 48-circuit suite.  The paper reports an
 * average gap of 0.006 and a maximum of 0.016 at 32000 shots; at this
 * harness's reduced shot count the Monte-Carlo sampling noise itself is
 * O(1/sqrt(shots)), so the per-circuit differences are noisier but should
 * remain small and unbiased.
 */

#include "bench_common.h"

#include <cmath>

#include "circuits/suite.h"
#include "core/tqsim.h"
#include "metrics/fidelity.h"
#include "util/stats.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 8192);
    // Desktop-class copy cost (as in the Fig. 11 harness): bounds tree
    // depth so the first level keeps enough independent noise samples.
    const double copy_cost = flags.get_double("copy-cost", 10.0);
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Figure 14: baseline vs TQSim normalized fidelity",
                  "Fig. 14 (average diff 0.006, max 0.016)",
                  "per-circuit |diff| small; no family systematically "
                  "biased");

    util::RunningStats diff_stats;
    util::RunningStats signed_stats;
    util::Table table({"circuit", "fidelity base", "fidelity tqsim",
                       "|diff|"});
    for (const circuits::BenchmarkCase& c :
         circuits::benchmark_suite(circuits::SuiteScale::kReduced)) {
        const metrics::Distribution ideal =
            core::ideal_distribution(c.circuit);
        core::RunOptions opt;
        opt.shots = shots;
        opt.copy_cost_gates = copy_cost;
        // Independent randomness per circuit: a shared master seed would
        // correlate the rows and masquerade as systematic bias.
        opt.seed = std::hash<std::string>{}(c.name) ^ 0xF14F14;
        core::ExecutorOptions base_exec;
        base_exec.seed = opt.seed ^ 0xBA5E;
        const core::RunResult base =
            core::run_baseline(c.circuit, model, shots, base_exec);
        const core::RunResult tq = core::run(c.circuit, model, opt);
        const double f_base =
            metrics::normalized_fidelity(ideal, base.distribution);
        const double f_tq =
            metrics::normalized_fidelity(ideal, tq.distribution);
        const double diff = std::abs(f_base - f_tq);
        diff_stats.add(diff);
        signed_stats.add(f_base - f_tq);
        table.add_row({c.name, util::fmt_double(f_base, 4),
                       util::fmt_double(f_tq, 4), util::fmt_double(diff, 4)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("average |diff| = %.4f, max |diff| = %.4f over 48 circuits\n",
                diff_stats.mean(), diff_stats.max());
    std::printf("signed mean diff = %+.4f (+- %.4f): TQSim is unbiased "
                "relative to baseline\n",
                signed_stats.mean(), signed_stats.confidence_half_width());
    std::printf("(paper @32000 shots: avg 0.006, max 0.016; sampling noise "
                "at %llu shots is ~%.3f)\n",
                static_cast<unsigned long long>(shots),
                1.0 / std::sqrt(static_cast<double>(shots)));
    return 0;
}
