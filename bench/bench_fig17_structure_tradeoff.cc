/**
 * @file
 * Figure 17: accuracy-speedup trade-off for six simulation-tree structures
 * on QPE_9 with 1000 shots — the paper's DCP (250,2,2), XCP (20,10,5),
 * UCP (10,10,10), two manual low-overhead structures (5,10,20) and
 * (2,2,250), and the degenerate (250,1,1) that emits only A0 outcomes.
 */

#include "bench_common.h"

#include <cmath>

#include "circuits/qpe.h"
#include "core/tqsim.h"
#include "metrics/fidelity.h"
#include "util/stats.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    const std::uint64_t shots = flags.get_u64("shots", 1000);
    const int repeats = static_cast<int>(flags.get_u64("repeats", 10));
    const noise::NoiseModel model =
        noise::NoiseModel::sycamore_depolarizing();

    bench::banner("Figure 17: tree-structure accuracy/speedup trade-off",
                  "Fig. 17 (QPE_9, 1000 shots, six structures)",
                  "reuse-heavy structures gain speed but lose fidelity; "
                  "(250,1,1) collapses");

    const sim::Circuit circuit = circuits::qpe(9, 1.0 / 3.0);
    const metrics::Distribution ideal = core::ideal_distribution(circuit);
    std::printf("circuit: %s, %zu gates\n\n", circuit.name().c_str(),
                circuit.size());

    // Reference baseline fidelity (averaged over repeats).
    util::RunningStats base_fid;
    double base_seconds = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
        core::ExecutorOptions exec;
        exec.seed = 0xF16 + static_cast<std::uint64_t>(rep) * 104729;
        const core::RunResult base =
            core::run_baseline(circuit, model, shots, exec);
        base_fid.add(metrics::normalized_fidelity(ideal, base.distribution));
        base_seconds += base.stats.wall_seconds;
    }
    base_seconds /= repeats;

    const std::vector<std::vector<std::uint64_t>> structures = {
        {250, 2, 2}, {20, 10, 5}, {10, 10, 10},
        {5, 10, 20}, {2, 2, 250}, {250, 1, 1},
    };
    const char* labels[] = {"250-2-2 (DCP)", "20-10-5 (XCP)",
                            "10-10-10 (UCP)", "5-10-20", "2-2-250",
                            "250-1-1"};

    util::Table table({"structure", "outcomes", "speedup",
                       "fidelity diff vs baseline"});
    for (std::size_t i = 0; i < structures.size(); ++i) {
        core::RunOptions opt;
        opt.shots = shots;
        opt.strategy = core::PartitionStrategy::kManual;
        opt.manual_arities = structures[i];
        util::RunningStats fid;
        double seconds = 0.0;
        std::uint64_t outcomes = 0;
        for (int rep = 0; rep < repeats; ++rep) {
            opt.seed = 0x716 + static_cast<std::uint64_t>(rep) * 65537;
            const core::RunResult r = core::run(circuit, model, opt);
            fid.add(metrics::normalized_fidelity(ideal, r.distribution));
            seconds += r.stats.wall_seconds;
            outcomes = r.stats.outcomes;
        }
        seconds /= repeats;
        table.add_row({labels[i], std::to_string(outcomes),
                       util::fmt_speedup(base_seconds / seconds),
                       util::fmt_double(
                           std::abs(base_fid.mean() - fid.mean()), 4)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("baseline fidelity: %.4f (+- %.4f over %d repeats)\n",
                base_fid.mean(), base_fid.confidence_half_width(), repeats);
    std::printf("Paper shape: aggressive-reuse structures trade accuracy "
                "for speed; the\nA0-outcomes-only structure (250,1,1) "
                "deviates most (Fig. 17's 0.44+ bar).\n");
    return 0;
}
