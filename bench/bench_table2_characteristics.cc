/**
 * @file
 * Table 2: benchmark characteristics — width and gate-count ranges of the
 * eight circuit families at paper scale, alongside the ranges Table 2
 * reports.  Differences come from decomposition choices (documented in
 * EXPERIMENTS.md); widths match exactly.
 */

#include "bench_common.h"

#include <algorithm>
#include <map>

#include "circuits/suite.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace tqsim;
    const bench::Flags flags(argc, argv);
    (void)flags;

    bench::banner("Table 2: benchmark characteristics",
                  "Table 2 (8 families x 6 circuits)",
                  "width ranges match the paper; gate counts in the same "
                  "regime");

    struct PaperRow
    {
        const char* width_range;
        const char* gate_range;
    };
    const std::map<circuits::Family, PaperRow> paper = {
        {circuits::Family::kAdder, {"4-10", "16-133"}},
        {circuits::Family::kBV, {"6-16", "16-46"}},
        {circuits::Family::kMul, {"13-25", "92-1477"}},
        {circuits::Family::kQAOA, {"6-15", "58-175"}},
        {circuits::Family::kQFT, {"10-20", "237-975"}},
        {circuits::Family::kQPE, {"4-16", "53-609"}},
        {circuits::Family::kQSC, {"8-16", "38-160"}},
        {circuits::Family::kQV, {"10-20", "330-660"}},
    };

    util::Table table({"family", "ours width", "ours gates", "paper width",
                       "paper gates"});
    for (circuits::Family f : circuits::all_families()) {
        int wlo = 1 << 20, whi = 0;
        std::size_t glo = std::size_t{1} << 40, ghi = 0;
        for (const auto& c :
             circuits::family_suite(f, circuits::SuiteScale::kPaper)) {
            wlo = std::min(wlo, c.circuit.num_qubits());
            whi = std::max(whi, c.circuit.num_qubits());
            glo = std::min(glo, c.circuit.size());
            ghi = std::max(ghi, c.circuit.size());
        }
        table.add_row({circuits::family_name(f),
                       std::to_string(wlo) + "-" + std::to_string(whi),
                       std::to_string(glo) + "-" + std::to_string(ghi),
                       paper.at(f).width_range, paper.at(f).gate_range});
    }
    std::printf("%s\n", table.to_string().c_str());

    std::printf("per-circuit detail (paper scale):\n");
    util::Table detail({"circuit", "width", "gates", "2q+ gates", "depth"});
    for (const auto& c :
         circuits::benchmark_suite(circuits::SuiteScale::kPaper)) {
        detail.add_row({c.name, std::to_string(c.circuit.num_qubits()),
                        std::to_string(c.circuit.size()),
                        std::to_string(c.circuit.multi_qubit_gate_count()),
                        std::to_string(c.circuit.depth())});
    }
    std::printf("%s", detail.to_string().c_str());
    return 0;
}
