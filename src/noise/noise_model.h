#ifndef TQSIM_NOISE_NOISE_MODEL_H_
#define TQSIM_NOISE_NOISE_MODEL_H_

/**
 * @file
 * NoiseModel: attaches error channels to gate classes plus classical readout
 * error, and exposes the per-gate nominal error rates that DCP's Eq. 4
 * consumes.  Presets encode the Sycamore-derived rates used throughout the
 * paper (0.1% single-qubit, 1.5% two-qubit depolarizing).
 */

#include <string>
#include <vector>

#include "noise/channels.h"
#include "sim/circuit.h"
#include "sim/gate.h"

namespace tqsim::noise {

/**
 * Describes which channels fire after each gate.
 *
 * - Channels in on_1q_gates() (arity 1) are applied to the operand of every
 *   one-qubit gate.
 * - Channels in on_2q_gates() are applied after every gate touching >= 2
 *   qubits: arity-2 channels act on the first two operands; arity-1 channels
 *   act on *each* operand (the Qiskit thermal-relaxation convention).
 * - Readout error flips each measured classical bit with a fixed probability.
 */
class NoiseModel
{
  public:
    /** An ideal (noise-free) model. */
    NoiseModel() = default;

    /** @name Model construction
     *  @{ */
    /** Adds a channel applied after every single-qubit gate (arity 1). */
    NoiseModel& add_on_1q_gates(Channel channel);
    /** Adds a channel applied after every multi-qubit gate (arity 1 or 2). */
    NoiseModel& add_on_2q_gates(Channel channel);
    /** Sets the per-bit readout flip probability. */
    NoiseModel& set_readout_error(double flip_probability);
    /** @} */

    /** @name Presets (paper Sec. 4.3)
     *  @{ */
    /** Sycamore-style depolarizing: p1 on 1q gates, p2 on 2q gates. */
    static NoiseModel sycamore_depolarizing(double p1 = 0.001,
                                            double p2 = 0.015);
    /** Thermal relaxation with distinct 1q/2q gate times (same time unit). */
    static NoiseModel thermal(double t1, double t2, double time_1q,
                              double time_2q);
    /** Amplitude damping with ratio @p gamma on every gate operand. */
    static NoiseModel amplitude_damping_model(double gamma = 0.01);
    /** Phase damping with ratio @p lambda on every gate operand. */
    static NoiseModel phase_damping_model(double lambda = 0.01);
    /** No quantum noise; readout flips with probability @p p. */
    static NoiseModel readout_only(double p);
    /** Explicitly ideal model. */
    static NoiseModel ideal() { return NoiseModel(); }
    /** @} */

    /** Returns channels fired by single-qubit gates. */
    const std::vector<Channel>& on_1q_gates() const { return on_1q_; }

    /** Returns channels fired by multi-qubit gates. */
    const std::vector<Channel>& on_2q_gates() const { return on_2q_; }

    /** Returns the per-bit readout flip probability (0 when unset). */
    double readout_flip_probability() const { return readout_flip_; }

    /** Returns true when @p gate triggers at least one channel — exactly
     *  the condition under which apply_gate_with_noise draws RNG.  Segment
     *  compilation may only fuse across gates where this is false. */
    bool
    attaches_noise(const sim::Gate& gate) const
    {
        return gate.arity() == 1 ? !on_1q_.empty() : !on_2q_.empty();
    }

    /** Returns true if any quantum channel or readout error is attached. */
    bool has_noise() const;

    /** Returns true if any quantum (pre-measurement) channel is attached. */
    bool has_gate_noise() const;

    /**
     * Nominal error probability for one gate: 1 - prod_c (1 - e_c) over all
     * channels the gate triggers (per-operand channels counted per operand).
     * This is the e_i entering Eq. 4.
     */
    double gate_error_rate(const sim::Gate& gate) const;

    /** Applies Eq. 4 over a gate range: 1 - prod_i (1 - e_i). */
    double aggregate_error_rate(const sim::Circuit& circuit,
                                std::size_t begin, std::size_t end) const;

    /** Returns a one-line description, e.g. "DC(0.001/0.015)+R(0.01)". */
    std::string description() const;

  private:
    std::vector<Channel> on_1q_;
    std::vector<Channel> on_2q_;
    double readout_flip_ = 0.0;
};

}  // namespace tqsim::noise

#endif  // TQSIM_NOISE_NOISE_MODEL_H_
