#include "noise/noise_model.h"

#include <sstream>
#include <stdexcept>

namespace tqsim::noise {

NoiseModel&
NoiseModel::add_on_1q_gates(Channel channel)
{
    if (channel.arity() != 1) {
        throw std::invalid_argument(
            "add_on_1q_gates: channel must have arity 1");
    }
    on_1q_.push_back(std::move(channel));
    return *this;
}

NoiseModel&
NoiseModel::add_on_2q_gates(Channel channel)
{
    if (channel.arity() != 1 && channel.arity() != 2) {
        throw std::invalid_argument(
            "add_on_2q_gates: channel must have arity 1 or 2");
    }
    on_2q_.push_back(std::move(channel));
    return *this;
}

NoiseModel&
NoiseModel::set_readout_error(double flip_probability)
{
    if (flip_probability < 0.0 || flip_probability > 1.0) {
        throw std::invalid_argument("readout flip probability out of [0,1]");
    }
    readout_flip_ = flip_probability;
    return *this;
}

NoiseModel
NoiseModel::sycamore_depolarizing(double p1, double p2)
{
    NoiseModel model;
    model.add_on_1q_gates(Channel::depolarizing_1q(p1));
    model.add_on_2q_gates(Channel::depolarizing_2q(p2));
    return model;
}

NoiseModel
NoiseModel::thermal(double t1, double t2, double time_1q, double time_2q)
{
    NoiseModel model;
    model.add_on_1q_gates(Channel::thermal_relaxation(t1, t2, time_1q));
    model.add_on_2q_gates(Channel::thermal_relaxation(t1, t2, time_2q));
    return model;
}

NoiseModel
NoiseModel::amplitude_damping_model(double gamma)
{
    NoiseModel model;
    model.add_on_1q_gates(Channel::amplitude_damping(gamma));
    model.add_on_2q_gates(Channel::amplitude_damping(gamma));
    return model;
}

NoiseModel
NoiseModel::phase_damping_model(double lambda)
{
    NoiseModel model;
    model.add_on_1q_gates(Channel::phase_damping(lambda));
    model.add_on_2q_gates(Channel::phase_damping(lambda));
    return model;
}

NoiseModel
NoiseModel::readout_only(double p)
{
    NoiseModel model;
    model.set_readout_error(p);
    return model;
}

bool
NoiseModel::has_noise() const
{
    return has_gate_noise() || readout_flip_ > 0.0;
}

bool
NoiseModel::has_gate_noise() const
{
    return !on_1q_.empty() || !on_2q_.empty();
}

double
NoiseModel::gate_error_rate(const sim::Gate& gate) const
{
    double survive = 1.0;
    if (gate.arity() == 1) {
        for (const Channel& c : on_1q_) {
            survive *= 1.0 - c.nominal_error_rate();
        }
    } else {
        for (const Channel& c : on_2q_) {
            if (c.arity() == 2) {
                survive *= 1.0 - c.nominal_error_rate();
            } else {
                // Per-operand channel: fires once per touched qubit.
                for (int i = 0; i < gate.arity(); ++i) {
                    survive *= 1.0 - c.nominal_error_rate();
                }
            }
        }
    }
    return 1.0 - survive;
}

double
NoiseModel::aggregate_error_rate(const sim::Circuit& circuit,
                                 std::size_t begin, std::size_t end) const
{
    if (begin > end || end > circuit.size()) {
        throw std::out_of_range("aggregate_error_rate: bad gate range");
    }
    double survive = 1.0;
    for (std::size_t i = begin; i < end; ++i) {
        survive *= 1.0 - gate_error_rate(circuit.gate(i));
    }
    return 1.0 - survive;
}

std::string
NoiseModel::description() const
{
    if (!has_noise()) {
        return "ideal";
    }
    std::ostringstream os;
    bool first = true;
    auto emit = [&](const std::string& s) {
        if (!first) {
            os << '+';
        }
        os << s;
        first = false;
    };
    for (const Channel& c : on_1q_) {
        emit("1q:" + c.name());
    }
    for (const Channel& c : on_2q_) {
        emit("2q:" + c.name());
    }
    if (readout_flip_ > 0.0) {
        std::ostringstream r;
        r << "readout(" << readout_flip_ << ')';
        emit(r.str());
    }
    return os.str();
}

}  // namespace tqsim::noise
