#ifndef TQSIM_NOISE_KRAUS_H_
#define TQSIM_NOISE_KRAUS_H_

/**
 * @file
 * Kraus-operator sets: the mathematical representation of a quantum channel
 * E(rho) = sum_i K_i rho K_i^dagger with sum_i K_i^dagger K_i = I.
 */

#include <cstddef>
#include <vector>

#include "sim/types.h"

namespace tqsim::noise {

/**
 * A completeness-checked set of Kraus operators on 1 or 2 qubits.
 *
 * Operators are dense row-major matrices (2x2 or 4x4) in the same basis
 * convention as sim::Gate matrices.
 */
class KrausSet
{
  public:
    /**
     * Builds a Kraus set and verifies the completeness relation
     * sum K^dagger K = I to @p tol.
     *
     * @param arity 1 or 2 (qubit count the channel acts on).
     * @param ops matrices of dimension 2^arity.
     */
    KrausSet(int arity, std::vector<sim::Matrix> ops, double tol = 1e-9);

    /** Returns the number of qubits the channel acts on. */
    int arity() const { return arity_; }

    /** Returns the matrix dimension (2 or 4). */
    std::size_t dim() const { return std::size_t{1} << arity_; }

    /** Returns the Kraus operators. */
    const std::vector<sim::Matrix>& ops() const { return ops_; }

    /** Returns the number of Kraus operators. */
    std::size_t size() const { return ops_.size(); }

    /** Returns operator @p i. */
    const sim::Matrix& op(std::size_t i) const { return ops_.at(i); }

    /**
     * Returns true if every operator is proportional to a unitary,
     * i.e. K_i = sqrt(p_i) U_i.  Such channels admit state-independent
     * trajectory sampling (the fast path for Pauli/depolarizing noise).
     */
    bool is_unitary_mixture(double tol = 1e-9) const;

    /** For unitary mixtures: returns p_i = |c_i|^2 for each operator. */
    std::vector<double> mixture_probabilities() const;

    /** Checks sum K^dagger K = I within @p tol. */
    bool is_complete(double tol = 1e-9) const;

  private:
    int arity_;
    std::vector<sim::Matrix> ops_;
};

/** Returns the Kronecker product a (x) b of square matrices (dims da, db);
 *  index convention: the b factor holds the low bits. */
sim::Matrix kron(const sim::Matrix& a, std::size_t da, const sim::Matrix& b,
                 std::size_t db);

}  // namespace tqsim::noise

#endif  // TQSIM_NOISE_KRAUS_H_
