#include "noise/channels.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "sim/gate.h"
#include "util/assert.h"

namespace tqsim::noise {

using sim::Complex;
using sim::Matrix;

namespace {

std::string
fmt_name(const char* base, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s(%g)", base, v);
    return buf;
}

void
check_probability(double p, const char* what)
{
    if (p < 0.0 || p > 1.0) {
        throw std::invalid_argument(std::string(what) +
                                    " must be in [0, 1], got " +
                                    std::to_string(p));
    }
}

Matrix
scaled(const Matrix& m, double factor)
{
    Matrix out = m;
    for (Complex& v : out) {
        v *= factor;
    }
    return out;
}

const Matrix kPauliI{1, 0, 0, 1};
const Matrix kPauliX{0, 1, 1, 0};
const Matrix kPauliY{0, Complex{0, -1}, Complex{0, 1}, 0};
const Matrix kPauliZ{1, 0, 0, -1};

}  // namespace

Channel::Channel(std::string name, KrausSet kraus, double nominal_error_rate)
    : name_(std::move(name)),
      kraus_(std::move(kraus)),
      nominal_error_rate_(nominal_error_rate),
      unitary_mixture_(kraus_.is_unitary_mixture())
{
    check_probability(nominal_error_rate_, "nominal_error_rate");
    if (unitary_mixture_) {
        mixture_probs_ = kraus_.mixture_probabilities();
    }
}

Channel
Channel::depolarizing_1q(double p)
{
    check_probability(p, "depolarizing p");
    std::vector<Matrix> ops;
    ops.push_back(scaled(kPauliI, std::sqrt(1.0 - p)));
    ops.push_back(scaled(kPauliX, std::sqrt(p / 3.0)));
    ops.push_back(scaled(kPauliY, std::sqrt(p / 3.0)));
    ops.push_back(scaled(kPauliZ, std::sqrt(p / 3.0)));
    return Channel(fmt_name("depol1q", p), KrausSet(1, std::move(ops)), p);
}

Channel
Channel::depolarizing_2q(double p)
{
    check_probability(p, "depolarizing p");
    const Matrix* paulis[4] = {&kPauliI, &kPauliX, &kPauliY, &kPauliZ};
    std::vector<Matrix> ops;
    ops.reserve(16);
    for (int hi = 0; hi < 4; ++hi) {
        for (int lo = 0; lo < 4; ++lo) {
            const double weight =
                (hi == 0 && lo == 0) ? (1.0 - p) : (p / 15.0);
            ops.push_back(
                scaled(kron(*paulis[hi], 2, *paulis[lo], 2), std::sqrt(weight)));
        }
    }
    return Channel(fmt_name("depol2q", p), KrausSet(2, std::move(ops)), p);
}

Channel
Channel::amplitude_damping(double gamma)
{
    check_probability(gamma, "amplitude damping gamma");
    const Matrix k0{1, 0, 0, std::sqrt(1.0 - gamma)};
    const Matrix k1{0, std::sqrt(gamma), 0, 0};
    return Channel(fmt_name("amp_damp", gamma), KrausSet(1, {k0, k1}), gamma);
}

Channel
Channel::phase_damping(double lambda)
{
    check_probability(lambda, "phase damping lambda");
    const Matrix k0{1, 0, 0, std::sqrt(1.0 - lambda)};
    const Matrix k1{0, 0, 0, std::sqrt(lambda)};
    return Channel(fmt_name("phase_damp", lambda), KrausSet(1, {k0, k1}),
                   lambda);
}

Channel
Channel::thermal_relaxation(double t1, double t2, double gate_time)
{
    if (t1 <= 0.0 || t2 <= 0.0 || gate_time < 0.0) {
        throw std::invalid_argument(
            "thermal_relaxation: t1, t2 must be > 0 and gate_time >= 0");
    }
    if (t2 > 2.0 * t1) {
        throw std::invalid_argument(
            "thermal_relaxation: requires t2 <= 2*t1");
    }
    // Amplitude damping captures the T1 decay; residual pure dephasing makes
    // the total off-diagonal factor e^{-t/T2}:
    //   sqrt(1-gamma) * sqrt(1-lambda) = e^{-t/T2}
    //   with sqrt(1-gamma) = e^{-t/(2 T1)}.
    const double gamma = 1.0 - std::exp(-gate_time / t1);
    const double dephase_rate = 1.0 / t2 - 1.0 / (2.0 * t1);  // >= 0 given t2<=2t1
    const double lambda = 1.0 - std::exp(-2.0 * gate_time * dephase_rate);
    // Compose PD after AD: Kraus set {P_j A_i}.
    const Matrix a0{1, 0, 0, std::sqrt(1.0 - gamma)};
    const Matrix a1{0, std::sqrt(gamma), 0, 0};
    const Matrix p0{1, 0, 0, std::sqrt(1.0 - lambda)};
    const Matrix p1{0, 0, 0, std::sqrt(lambda)};
    std::vector<Matrix> ops;
    for (const Matrix& p : {p0, p1}) {
        for (const Matrix& a : {a0, a1}) {
            ops.push_back(sim::matmul(p, a, 2));
        }
    }
    const double nominal = 1.0 - (1.0 - gamma) * (1.0 - lambda);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "thermal(t1=%g,t2=%g,t=%g)", t1, t2,
                  gate_time);
    return Channel(buf, KrausSet(1, std::move(ops)), nominal);
}

Channel
Channel::bit_flip(double p)
{
    check_probability(p, "bit flip p");
    std::vector<Matrix> ops;
    ops.push_back(scaled(kPauliI, std::sqrt(1.0 - p)));
    ops.push_back(scaled(kPauliX, std::sqrt(p)));
    return Channel(fmt_name("bit_flip", p), KrausSet(1, std::move(ops)), p);
}

Channel
Channel::phase_flip(double p)
{
    check_probability(p, "phase flip p");
    std::vector<Matrix> ops;
    ops.push_back(scaled(kPauliI, std::sqrt(1.0 - p)));
    ops.push_back(scaled(kPauliZ, std::sqrt(p)));
    return Channel(fmt_name("phase_flip", p), KrausSet(1, std::move(ops)), p);
}

}  // namespace tqsim::noise
