#ifndef TQSIM_NOISE_CHANNELS_H_
#define TQSIM_NOISE_CHANNELS_H_

/**
 * @file
 * The error channels evaluated in the paper (Sec. 4.3): depolarizing,
 * thermal relaxation, amplitude damping, phase damping, plus bit/phase flip
 * extras.  Readout error is classical and lives in NoiseModel.
 */

#include <string>

#include "noise/kraus.h"

namespace tqsim::noise {

/**
 * A named quantum channel: a KrausSet plus the metadata DCP needs (a nominal
 * scalar error rate feeding Eq. 4's product).
 */
class Channel
{
  public:
    /** Builds a channel from parts; prefer the named factories below. */
    Channel(std::string name, KrausSet kraus, double nominal_error_rate);

    /** @name Factories for the paper's channels
     *  @{ */
    /** Single-qubit depolarizing: with prob p apply a uniform X/Y/Z. */
    static Channel depolarizing_1q(double p);
    /** Two-qubit depolarizing: with prob p apply one of the 15 non-identity
     *  two-qubit Paulis uniformly. */
    static Channel depolarizing_2q(double p);
    /** Amplitude damping with damping ratio @p gamma in [0, 1]. */
    static Channel amplitude_damping(double gamma);
    /** Phase damping with damping ratio @p lambda in [0, 1]. */
    static Channel phase_damping(double lambda);
    /**
     * Thermal relaxation from T1/T2 times and a gate duration, modeled as
     * amplitude damping (gamma = 1 - e^{-t/T1}) composed with the phase
     * damping that matches the remaining T2 decay.  Requires t2 <= 2*t1.
     * All three times share any one unit (e.g. nanoseconds).
     */
    static Channel thermal_relaxation(double t1, double t2, double gate_time);
    /** Bit flip: with prob p apply X. */
    static Channel bit_flip(double p);
    /** Phase flip: with prob p apply Z. */
    static Channel phase_flip(double p);
    /** @} */

    /** Returns the channel's display name (e.g. "depol1q(0.001)"). */
    const std::string& name() const { return name_; }

    /** Returns the Kraus representation. */
    const KrausSet& kraus() const { return kraus_; }

    /** Returns the qubit count the channel acts on. */
    int arity() const { return kraus_.arity(); }

    /**
     * Nominal per-application error probability used by DCP's Eq. 4.
     * For unitary-mixture channels this is exactly 1 - p_identity; for
     * damping channels it is the damping parameter (a conservative bound).
     */
    double nominal_error_rate() const { return nominal_error_rate_; }

    /** True when trajectory sampling can use fixed probabilities. */
    bool is_unitary_mixture() const { return unitary_mixture_; }

    /** For unitary mixtures: cached p_i per Kraus operator. */
    const std::vector<double>& mixture_probabilities() const
    {
        return mixture_probs_;
    }

  private:
    std::string name_;
    KrausSet kraus_;
    double nominal_error_rate_;
    bool unitary_mixture_;
    std::vector<double> mixture_probs_;
};

}  // namespace tqsim::noise

#endif  // TQSIM_NOISE_CHANNELS_H_
