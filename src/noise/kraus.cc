#include "noise/kraus.h"

#include <cmath>
#include <stdexcept>

#include "sim/gate.h"
#include "util/assert.h"

namespace tqsim::noise {

using sim::Complex;
using sim::Matrix;

KrausSet::KrausSet(int arity, std::vector<Matrix> ops, double tol)
    : arity_(arity), ops_(std::move(ops))
{
    if (arity != 1 && arity != 2) {
        throw std::invalid_argument("KrausSet supports arity 1 or 2");
    }
    if (ops_.empty()) {
        throw std::invalid_argument("KrausSet requires at least one operator");
    }
    const std::size_t d = dim();
    for (const Matrix& k : ops_) {
        if (k.size() != d * d) {
            throw std::invalid_argument("KrausSet operator has wrong dimension");
        }
    }
    if (!is_complete(tol)) {
        throw std::invalid_argument(
            "KrausSet operators do not satisfy sum K^dagger K = I");
    }
}

bool
KrausSet::is_complete(double tol) const
{
    const std::size_t d = dim();
    Matrix sum(d * d, Complex{0.0, 0.0});
    for (const Matrix& k : ops_) {
        // sum += K^dagger K
        for (std::size_t r = 0; r < d; ++r) {
            for (std::size_t c = 0; c < d; ++c) {
                Complex acc{0.0, 0.0};
                for (std::size_t m = 0; m < d; ++m) {
                    acc += std::conj(k[m * d + r]) * k[m * d + c];
                }
                sum[r * d + c] += acc;
            }
        }
    }
    for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            const Complex want =
                (r == c) ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
            if (std::abs(sum[r * d + c] - want) > tol) {
                return false;
            }
        }
    }
    return true;
}

bool
KrausSet::is_unitary_mixture(double tol) const
{
    const std::size_t d = dim();
    for (const Matrix& k : ops_) {
        // K^dagger K must be c * I for a scalar c >= 0.
        Complex c00{0.0, 0.0};
        for (std::size_t m = 0; m < d; ++m) {
            c00 += std::conj(k[m * d]) * k[m * d];
        }
        for (std::size_t r = 0; r < d; ++r) {
            for (std::size_t c = 0; c < d; ++c) {
                Complex acc{0.0, 0.0};
                for (std::size_t m = 0; m < d; ++m) {
                    acc += std::conj(k[m * d + r]) * k[m * d + c];
                }
                const Complex want = (r == c) ? c00 : Complex{0.0, 0.0};
                if (std::abs(acc - want) > tol) {
                    return false;
                }
            }
        }
    }
    return true;
}

std::vector<double>
KrausSet::mixture_probabilities() const
{
    TQSIM_ASSERT_MSG(is_unitary_mixture(1e-9),
                     "mixture_probabilities requires a unitary mixture");
    const std::size_t d = dim();
    std::vector<double> probs;
    probs.reserve(ops_.size());
    for (const Matrix& k : ops_) {
        double c = 0.0;
        for (std::size_t m = 0; m < d; ++m) {
            c += std::norm(k[m * d]);  // (K^dagger K)_{00}
        }
        probs.push_back(c);
    }
    return probs;
}

Matrix
kron(const Matrix& a, std::size_t da, const Matrix& b, std::size_t db)
{
    TQSIM_ASSERT(a.size() == da * da && b.size() == db * db);
    const std::size_t d = da * db;
    Matrix out(d * d, Complex{0.0, 0.0});
    for (std::size_t ra = 0; ra < da; ++ra) {
        for (std::size_t ca = 0; ca < da; ++ca) {
            for (std::size_t rb = 0; rb < db; ++rb) {
                for (std::size_t cb = 0; cb < db; ++cb) {
                    // b holds the low bits of the combined index.
                    out[(ra * db + rb) * d + (ca * db + cb)] =
                        a[ra * da + ca] * b[rb * db + cb];
                }
            }
        }
    }
    return out;
}

}  // namespace tqsim::noise
