#include "noise/trajectory.h"

#include <cmath>
#include <stdexcept>

#include "sim/gate_kernels.h"
#include "util/assert.h"

namespace tqsim::noise {

using sim::Complex;
using sim::Matrix;
using sim::StateVector;

namespace {

/** Applies Kraus operator @p k (already branch-selected) to the state. */
void
apply_kraus_op(StateVector& state, const std::vector<int>& qubits,
               const Matrix& k)
{
    if (qubits.size() == 1) {
        sim::apply_1q_matrix(state, qubits[0], k);
    } else {
        sim::apply_2q_matrix(state, qubits[0], qubits[1], k);
    }
}

/** Branch selection + application for unitary-mixture channels. */
void
apply_unitary_mixture(StateVector& state, const Channel& channel,
                      const std::vector<int>& qubits, util::Rng& rng,
                      TrajectoryStats* stats)
{
    const std::vector<double>& probs = channel.mixture_probabilities();
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t pick = probs.size() - 1;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        acc += probs[i];
        if (u < acc) {
            pick = i;
            break;
        }
    }
    // Convention: operator 0 is the identity-like branch in every factory.
    if (pick == 0) {
        return;
    }
    if (stats != nullptr) {
        ++stats->error_events;
    }
    // K_i = sqrt(p_i) U_i; apply U_i = K_i / sqrt(p_i).
    Matrix u_op = channel.kraus().op(pick);
    const double inv = 1.0 / std::sqrt(probs[pick]);
    for (Complex& v : u_op) {
        v *= inv;
    }
    apply_kraus_op(state, qubits, u_op);
}

/** Exact norm-based branch selection for general channels. */
void
apply_general_channel(StateVector& state, const Channel& channel,
                      const std::vector<int>& qubits, util::Rng& rng,
                      TrajectoryStats* stats)
{
    const KrausSet& ks = channel.kraus();
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t pick = ks.size() - 1;
    double p_pick = 0.0;
    for (std::size_t i = 0; i < ks.size(); ++i) {
        const double p =
            (qubits.size() == 1)
                ? sim::kraus_probability_1q(state, qubits[0], ks.op(i))
                : sim::kraus_probability_2q(state, qubits[0], qubits[1],
                                            ks.op(i));
        acc += p;
        if (u < acc) {
            pick = i;
            p_pick = p;
            break;
        }
        p_pick = p;  // remember last in case of rounding shortfall
    }
    if (p_pick <= 0.0) {
        // Rounding pathologies: fall back to the first branch with mass.
        for (std::size_t i = 0; i < ks.size(); ++i) {
            const double p =
                (qubits.size() == 1)
                    ? sim::kraus_probability_1q(state, qubits[0], ks.op(i))
                    : sim::kraus_probability_2q(state, qubits[0], qubits[1],
                                                ks.op(i));
            if (p > 0.0) {
                pick = i;
                p_pick = p;
                break;
            }
        }
        TQSIM_ASSERT_MSG(p_pick > 0.0, "channel has no branch with mass");
    }
    if (stats != nullptr && pick != 0) {
        ++stats->error_events;
    }
    apply_kraus_op(state, qubits, ks.op(pick));
    sim::scale_state(state, Complex{1.0 / std::sqrt(p_pick), 0.0});
}

}  // namespace

void
apply_channel(StateVector& state, const Channel& channel,
              const std::vector<int>& qubits, util::Rng& rng,
              TrajectoryStats* stats)
{
    if (static_cast<int>(qubits.size()) != channel.arity()) {
        throw std::invalid_argument(
            "apply_channel: qubit count does not match channel arity");
    }
    if (stats != nullptr) {
        ++stats->channel_applications;
    }
    if (channel.is_unitary_mixture()) {
        apply_unitary_mixture(state, channel, qubits, rng, stats);
    } else {
        apply_general_channel(state, channel, qubits, rng, stats);
    }
}

void
apply_gate_with_noise(StateVector& state, const sim::Gate& gate,
                      const NoiseModel& model, util::Rng& rng,
                      TrajectoryStats* stats)
{
    sim::apply_gate(state, gate);
    if (stats != nullptr) {
        ++stats->gates;
    }
    const auto& qubits = gate.qubits();
    if (gate.arity() == 1) {
        for (const Channel& c : model.on_1q_gates()) {
            apply_channel(state, c, {qubits[0]}, rng, stats);
        }
        return;
    }
    for (const Channel& c : model.on_2q_gates()) {
        if (c.arity() == 2) {
            apply_channel(state, c, {qubits[0], qubits[1]}, rng, stats);
        } else {
            for (int q : qubits) {
                apply_channel(state, c, {q}, rng, stats);
            }
        }
    }
}

void
run_trajectory(StateVector& state, const sim::Circuit& circuit,
               const NoiseModel& model, util::Rng& rng, TrajectoryStats* stats)
{
    if (state.num_qubits() != circuit.num_qubits()) {
        throw std::invalid_argument("run_trajectory: width mismatch");
    }
    for (const sim::Gate& g : circuit.gates()) {
        apply_gate_with_noise(state, g, model, rng, stats);
    }
}

sim::Index
apply_readout_error(sim::Index outcome, int num_qubits,
                    double flip_probability, util::Rng& rng)
{
    if (flip_probability <= 0.0) {
        return outcome;
    }
    for (int b = 0; b < num_qubits; ++b) {
        if (rng.uniform() < flip_probability) {
            outcome ^= sim::Index{1} << b;
        }
    }
    return outcome;
}

}  // namespace tqsim::noise
