#include "noise/trajectory.h"

#include <cmath>
#include <stdexcept>

#include "sim/gate_kernels.h"
#include "util/assert.h"

namespace tqsim::noise {

using sim::Complex;
using sim::Matrix;
using sim::StateVector;

namespace {

/**
 * State-operation policies: the channel/trajectory logic below is one
 * template instantiated for both, so the dense fast path and every
 * StateBackend share branch selection and RNG draw order exactly.
 */

/** Direct kernel calls on a dense StateVector (zero indirection). */
struct DenseOps
{
    using State = StateVector;

    static double
    kraus_probability(const State& s, const std::vector<int>& q,
                      const Matrix& k)
    {
        return q.size() == 1
                   ? sim::kraus_probability_1q(s, q[0], k)
                   : sim::kraus_probability_2q(s, q[0], q[1], k);
    }

    static void
    apply_matrix(State& s, const std::vector<int>& q, const Matrix& m)
    {
        if (q.size() == 1) {
            sim::apply_1q_matrix(s, q[0], m);
        } else {
            sim::apply_2q_matrix(s, q[0], q[1], m);
        }
    }

    static void
    scale(State& s, Complex factor)
    {
        sim::scale_state(s, factor);
    }
};

/** Virtual dispatch through a StateBackend (one call per operation). */
struct BackendOps
{
    using State = sim::BackendState;

    sim::StateBackend* backend;

    double
    kraus_probability(const State& s, const std::vector<int>& q,
                      const Matrix& k) const
    {
        return backend->kraus_probability(s, q.data(),
                                          static_cast<int>(q.size()), k);
    }

    void
    apply_matrix(State& s, const std::vector<int>& q, const Matrix& m) const
    {
        backend->apply_matrix(s, q.data(), static_cast<int>(q.size()), m);
    }

    void
    scale(State& s, Complex factor) const
    {
        backend->scale(s, factor);
    }
};

/** Branch selection + application for unitary-mixture channels. */
template <typename Ops>
void
apply_unitary_mixture(const Ops& ops, typename Ops::State& state,
                      const Channel& channel, const std::vector<int>& qubits,
                      util::Rng& rng, TrajectoryStats* stats)
{
    const std::vector<double>& probs = channel.mixture_probabilities();
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t pick = probs.size() - 1;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        acc += probs[i];
        if (u < acc) {
            pick = i;
            break;
        }
    }
    // Convention: operator 0 is the identity-like branch in every factory.
    if (pick == 0) {
        return;
    }
    if (stats != nullptr) {
        ++stats->error_events;
    }
    // K_i = sqrt(p_i) U_i; apply U_i = K_i / sqrt(p_i).
    Matrix u_op = channel.kraus().op(pick);
    const double inv = 1.0 / std::sqrt(probs[pick]);
    for (Complex& v : u_op) {
        v *= inv;
    }
    ops.apply_matrix(state, qubits, u_op);
}

/** Exact norm-based branch selection for general channels. */
template <typename Ops>
void
apply_general_channel(const Ops& ops, typename Ops::State& state,
                      const Channel& channel, const std::vector<int>& qubits,
                      util::Rng& rng, TrajectoryStats* stats)
{
    const KrausSet& ks = channel.kraus();
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t pick = ks.size() - 1;
    double p_pick = 0.0;
    for (std::size_t i = 0; i < ks.size(); ++i) {
        const double p = ops.kraus_probability(state, qubits, ks.op(i));
        acc += p;
        if (u < acc) {
            pick = i;
            p_pick = p;
            break;
        }
        p_pick = p;  // remember last in case of rounding shortfall
    }
    if (p_pick <= 0.0) {
        // Rounding pathologies: fall back to the first branch with mass.
        for (std::size_t i = 0; i < ks.size(); ++i) {
            const double p = ops.kraus_probability(state, qubits, ks.op(i));
            if (p > 0.0) {
                pick = i;
                p_pick = p;
                break;
            }
        }
        TQSIM_ASSERT_MSG(p_pick > 0.0, "channel has no branch with mass");
    }
    if (stats != nullptr && pick != 0) {
        ++stats->error_events;
    }
    ops.apply_matrix(state, qubits, ks.op(pick));
    ops.scale(state, Complex{1.0 / std::sqrt(p_pick), 0.0});
}

template <typename Ops>
void
apply_channel_impl(const Ops& ops, typename Ops::State& state,
                   const Channel& channel, const std::vector<int>& qubits,
                   util::Rng& rng, TrajectoryStats* stats)
{
    if (static_cast<int>(qubits.size()) != channel.arity()) {
        throw std::invalid_argument(
            "apply_channel: qubit count does not match channel arity");
    }
    if (stats != nullptr) {
        ++stats->channel_applications;
    }
    if (channel.is_unitary_mixture()) {
        apply_unitary_mixture(ops, state, channel, qubits, rng, stats);
    } else {
        apply_general_channel(ops, state, channel, qubits, rng, stats);
    }
}

/**
 * Applies every channel @p model attaches to a gate with the given operand
 * list — the single attachment policy (and therefore RNG draw order) every
 * execution path shares: 1q gates trigger on_1q channels; multi-qubit gates
 * trigger arity-2 channels on the first two operands and arity-1 channels
 * on each operand.  @p one / @p two are caller-owned scratch operand lists
 * so hot loops never allocate.
 */
template <typename Ops>
void
apply_attached_channels(const Ops& ops, typename Ops::State& state,
                        const NoiseModel& model, int arity,
                        const int* operands, std::vector<int>& one,
                        std::vector<int>& two, util::Rng& rng,
                        TrajectoryStats* stats)
{
    if (arity == 1) {
        one[0] = operands[0];
        for (const Channel& c : model.on_1q_gates()) {
            apply_channel_impl(ops, state, c, one, rng, stats);
        }
        return;
    }
    for (const Channel& c : model.on_2q_gates()) {
        if (c.arity() == 2) {
            two[0] = operands[0];
            two[1] = operands[1];
            apply_channel_impl(ops, state, c, two, rng, stats);
        } else {
            for (int k = 0; k < arity; ++k) {
                one[0] = operands[k];
                apply_channel_impl(ops, state, c, one, rng, stats);
            }
        }
    }
}

}  // namespace

void
apply_channel(StateVector& state, const Channel& channel,
              const std::vector<int>& qubits, util::Rng& rng,
              TrajectoryStats* stats)
{
    apply_channel_impl(DenseOps{}, state, channel, qubits, rng, stats);
}

void
apply_channel(sim::StateBackend& backend, sim::BackendState& state,
              const Channel& channel, const std::vector<int>& qubits,
              util::Rng& rng, TrajectoryStats* stats)
{
    apply_channel_impl(BackendOps{&backend}, state, channel, qubits, rng,
                       stats);
}

void
apply_gate_with_noise(StateVector& state, const sim::Gate& gate,
                      const NoiseModel& model, util::Rng& rng,
                      TrajectoryStats* stats)
{
    sim::apply_gate(state, gate);
    if (stats != nullptr) {
        ++stats->gates;
    }
    std::vector<int> one(1, 0);
    std::vector<int> two(2, 0);
    apply_attached_channels(DenseOps{}, state, model, gate.arity(),
                            gate.qubits().data(), one, two, rng, stats);
}

sim::CompiledSegment
compile_segment(const sim::Circuit& circuit, std::size_t begin,
                std::size_t end, const NoiseModel& model,
                const sim::FusionOptions& fusion)
{
    std::vector<bool> noisy(end, false);
    for (std::size_t i = begin; i < end; ++i) {
        noisy[i] = model.attaches_noise(circuit.gate(i));
    }
    return sim::CompiledSegment::compile(circuit, begin, end, noisy, fusion);
}

void
run_compiled_trajectory(StateVector& state,
                        const sim::CompiledSegment& segment,
                        const NoiseModel& model, util::Rng& rng,
                        TrajectoryStats* stats)
{
    if (state.num_qubits() != segment.num_qubits()) {
        throw std::invalid_argument(
            "run_compiled_trajectory: width mismatch");
    }
    // Scratch operand lists reused across ops so the channel loop never
    // allocates.
    std::vector<int> one(1, 0);
    std::vector<int> two(2, 0);
    for (const sim::SegOp& op : segment.ops()) {
        segment.apply_op(state, op);
        if (stats != nullptr) {
            stats->gates += op.source_gates;
        }
        if (!op.noisy) {
            continue;
        }
        const int operands[3] = {op.q0, op.q1, op.q2};
        apply_attached_channels(DenseOps{}, state, model, op.arity, operands,
                                one, two, rng, stats);
    }
}

void
run_compiled_trajectory(sim::StateBackend& backend, sim::BackendState& state,
                        const sim::PreparedSegment& segment,
                        const NoiseModel& model, util::Rng& rng,
                        TrajectoryStats* stats)
{
    const sim::CompiledSegment& source = segment.source();
    if (backend.num_qubits() != source.num_qubits()) {
        throw std::invalid_argument(
            "run_compiled_trajectory: width mismatch");
    }
    const BackendOps ops{&backend};
    std::vector<int> one(1, 0);
    std::vector<int> two(2, 0);
    const std::vector<sim::SegOp>& seg_ops = source.ops();
    for (std::size_t i = 0; i < seg_ops.size(); ++i) {
        const sim::SegOp& op = seg_ops[i];
        backend.apply_op(state, segment, i);
        if (stats != nullptr) {
            stats->gates += op.source_gates;
        }
        if (!op.noisy) {
            continue;
        }
        const int operands[3] = {op.q0, op.q1, op.q2};
        apply_attached_channels(ops, state, model, op.arity, operands, one,
                                two, rng, stats);
    }
}

void
run_trajectory(StateVector& state, const sim::Circuit& circuit,
               const NoiseModel& model, util::Rng& rng, TrajectoryStats* stats)
{
    if (state.num_qubits() != circuit.num_qubits()) {
        throw std::invalid_argument("run_trajectory: width mismatch");
    }
    for (const sim::Gate& g : circuit.gates()) {
        apply_gate_with_noise(state, g, model, rng, stats);
    }
}

void
run_trajectory(sim::StateBackend& backend, sim::BackendState& state,
               const sim::Circuit& circuit, const NoiseModel& model,
               util::Rng& rng, TrajectoryStats* stats)
{
    if (backend.num_qubits() != circuit.num_qubits()) {
        throw std::invalid_argument("run_trajectory: width mismatch");
    }
    const BackendOps ops{&backend};
    std::vector<int> one(1, 0);
    std::vector<int> two(2, 0);
    for (const sim::Gate& g : circuit.gates()) {
        backend.apply_gate(state, g);
        if (stats != nullptr) {
            ++stats->gates;
        }
        apply_attached_channels(ops, state, model, g.arity(),
                                g.qubits().data(), one, two, rng, stats);
    }
}

sim::Index
apply_readout_error(sim::Index outcome, int num_qubits,
                    double flip_probability, util::Rng& rng)
{
    if (flip_probability <= 0.0) {
        return outcome;
    }
    for (int b = 0; b < num_qubits; ++b) {
        if (rng.uniform() < flip_probability) {
            outcome ^= sim::Index{1} << b;
        }
    }
    return outcome;
}

}  // namespace tqsim::noise
