#include "noise/trajectory.h"

#include <cmath>
#include <stdexcept>

#include "sim/gate_kernels.h"
#include "util/assert.h"

namespace tqsim::noise {

using sim::Complex;
using sim::Matrix;
using sim::StateVector;

namespace {

/** Applies Kraus operator @p k (already branch-selected) to the state. */
void
apply_kraus_op(StateVector& state, const std::vector<int>& qubits,
               const Matrix& k)
{
    if (qubits.size() == 1) {
        sim::apply_1q_matrix(state, qubits[0], k);
    } else {
        sim::apply_2q_matrix(state, qubits[0], qubits[1], k);
    }
}

/** Branch selection + application for unitary-mixture channels. */
void
apply_unitary_mixture(StateVector& state, const Channel& channel,
                      const std::vector<int>& qubits, util::Rng& rng,
                      TrajectoryStats* stats)
{
    const std::vector<double>& probs = channel.mixture_probabilities();
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t pick = probs.size() - 1;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        acc += probs[i];
        if (u < acc) {
            pick = i;
            break;
        }
    }
    // Convention: operator 0 is the identity-like branch in every factory.
    if (pick == 0) {
        return;
    }
    if (stats != nullptr) {
        ++stats->error_events;
    }
    // K_i = sqrt(p_i) U_i; apply U_i = K_i / sqrt(p_i).
    Matrix u_op = channel.kraus().op(pick);
    const double inv = 1.0 / std::sqrt(probs[pick]);
    for (Complex& v : u_op) {
        v *= inv;
    }
    apply_kraus_op(state, qubits, u_op);
}

/** Exact norm-based branch selection for general channels. */
void
apply_general_channel(StateVector& state, const Channel& channel,
                      const std::vector<int>& qubits, util::Rng& rng,
                      TrajectoryStats* stats)
{
    const KrausSet& ks = channel.kraus();
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t pick = ks.size() - 1;
    double p_pick = 0.0;
    for (std::size_t i = 0; i < ks.size(); ++i) {
        const double p =
            (qubits.size() == 1)
                ? sim::kraus_probability_1q(state, qubits[0], ks.op(i))
                : sim::kraus_probability_2q(state, qubits[0], qubits[1],
                                            ks.op(i));
        acc += p;
        if (u < acc) {
            pick = i;
            p_pick = p;
            break;
        }
        p_pick = p;  // remember last in case of rounding shortfall
    }
    if (p_pick <= 0.0) {
        // Rounding pathologies: fall back to the first branch with mass.
        for (std::size_t i = 0; i < ks.size(); ++i) {
            const double p =
                (qubits.size() == 1)
                    ? sim::kraus_probability_1q(state, qubits[0], ks.op(i))
                    : sim::kraus_probability_2q(state, qubits[0], qubits[1],
                                                ks.op(i));
            if (p > 0.0) {
                pick = i;
                p_pick = p;
                break;
            }
        }
        TQSIM_ASSERT_MSG(p_pick > 0.0, "channel has no branch with mass");
    }
    if (stats != nullptr && pick != 0) {
        ++stats->error_events;
    }
    apply_kraus_op(state, qubits, ks.op(pick));
    sim::scale_state(state, Complex{1.0 / std::sqrt(p_pick), 0.0});
}

}  // namespace

void
apply_channel(StateVector& state, const Channel& channel,
              const std::vector<int>& qubits, util::Rng& rng,
              TrajectoryStats* stats)
{
    if (static_cast<int>(qubits.size()) != channel.arity()) {
        throw std::invalid_argument(
            "apply_channel: qubit count does not match channel arity");
    }
    if (stats != nullptr) {
        ++stats->channel_applications;
    }
    if (channel.is_unitary_mixture()) {
        apply_unitary_mixture(state, channel, qubits, rng, stats);
    } else {
        apply_general_channel(state, channel, qubits, rng, stats);
    }
}

namespace {

/**
 * Applies every channel @p model attaches to a gate with the given operand
 * list — the single attachment policy (and therefore RNG draw order) both
 * the gate-at-a-time and compiled execution paths share: 1q gates trigger
 * on_1q channels; multi-qubit gates trigger arity-2 channels on the first
 * two operands and arity-1 channels on each operand.  @p one / @p two are
 * caller-owned scratch operand lists so hot loops never allocate.
 */
void
apply_attached_channels(StateVector& state, const NoiseModel& model,
                        int arity, const int* operands,
                        std::vector<int>& one, std::vector<int>& two,
                        util::Rng& rng, TrajectoryStats* stats)
{
    if (arity == 1) {
        one[0] = operands[0];
        for (const Channel& c : model.on_1q_gates()) {
            apply_channel(state, c, one, rng, stats);
        }
        return;
    }
    for (const Channel& c : model.on_2q_gates()) {
        if (c.arity() == 2) {
            two[0] = operands[0];
            two[1] = operands[1];
            apply_channel(state, c, two, rng, stats);
        } else {
            for (int k = 0; k < arity; ++k) {
                one[0] = operands[k];
                apply_channel(state, c, one, rng, stats);
            }
        }
    }
}

}  // namespace

void
apply_gate_with_noise(StateVector& state, const sim::Gate& gate,
                      const NoiseModel& model, util::Rng& rng,
                      TrajectoryStats* stats)
{
    sim::apply_gate(state, gate);
    if (stats != nullptr) {
        ++stats->gates;
    }
    std::vector<int> one(1, 0);
    std::vector<int> two(2, 0);
    apply_attached_channels(state, model, gate.arity(),
                            gate.qubits().data(), one, two, rng, stats);
}

sim::CompiledSegment
compile_segment(const sim::Circuit& circuit, std::size_t begin,
                std::size_t end, const NoiseModel& model)
{
    std::vector<bool> noisy(end, false);
    for (std::size_t i = begin; i < end; ++i) {
        noisy[i] = model.attaches_noise(circuit.gate(i));
    }
    return sim::CompiledSegment::compile(circuit, begin, end, noisy);
}

void
run_compiled_trajectory(StateVector& state,
                        const sim::CompiledSegment& segment,
                        const NoiseModel& model, util::Rng& rng,
                        TrajectoryStats* stats)
{
    if (state.num_qubits() != segment.num_qubits()) {
        throw std::invalid_argument(
            "run_compiled_trajectory: width mismatch");
    }
    // Scratch operand lists reused across ops so the channel loop never
    // allocates.
    std::vector<int> one(1, 0);
    std::vector<int> two(2, 0);
    for (const sim::SegOp& op : segment.ops()) {
        segment.apply_op(state, op);
        if (stats != nullptr) {
            stats->gates += op.source_gates;
        }
        if (!op.noisy) {
            continue;
        }
        const int operands[3] = {op.q0, op.q1, op.q2};
        apply_attached_channels(state, model, op.arity, operands, one, two,
                                rng, stats);
    }
}

void
run_trajectory(StateVector& state, const sim::Circuit& circuit,
               const NoiseModel& model, util::Rng& rng, TrajectoryStats* stats)
{
    if (state.num_qubits() != circuit.num_qubits()) {
        throw std::invalid_argument("run_trajectory: width mismatch");
    }
    for (const sim::Gate& g : circuit.gates()) {
        apply_gate_with_noise(state, g, model, rng, stats);
    }
}

sim::Index
apply_readout_error(sim::Index outcome, int num_qubits,
                    double flip_probability, util::Rng& rng)
{
    if (flip_probability <= 0.0) {
        return outcome;
    }
    for (int b = 0; b < num_qubits; ++b) {
        if (rng.uniform() < flip_probability) {
            outcome ^= sim::Index{1} << b;
        }
    }
    return outcome;
}

}  // namespace tqsim::noise
