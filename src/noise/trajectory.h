#ifndef TQSIM_NOISE_TRAJECTORY_H_
#define TQSIM_NOISE_TRAJECTORY_H_

/**
 * @file
 * Quantum-trajectory (Monte Carlo wave function) execution: the pure-state
 * stochastic method of paper Sec. 2.4.
 *
 * Each trajectory applies the ideal gate and then stochastically applies one
 * Kraus operator from every channel the gate triggers:
 *  - unitary-mixture channels (Pauli / depolarizing): branch chosen from
 *    fixed probabilities, applied as a unitary (state stays normalized);
 *  - general channels (damping / thermal relaxation): branch i chosen with
 *    the exact quantum probability p_i = ||K_i |psi>||^2, then the state is
 *    renormalized.  Averaged over trajectories this reproduces the density
 *    matrix evolution exactly.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "noise/noise_model.h"
#include "sim/circuit.h"
#include "sim/segment_plan.h"
#include "sim/state_backend.h"
#include "sim/state_vector.h"
#include "util/rng.h"

namespace tqsim::noise {

/** Counters accumulated while running trajectories. */
struct TrajectoryStats
{
    /** Ideal gates applied. */
    std::uint64_t gates = 0;
    /** Channel applications (one per triggered channel instance). */
    std::uint64_t channel_applications = 0;
    /** Applications that picked a non-identity Kraus branch. */
    std::uint64_t error_events = 0;

    /** Accumulates another stats record. */
    void
    merge(const TrajectoryStats& other)
    {
        gates += other.gates;
        channel_applications += other.channel_applications;
        error_events += other.error_events;
    }
};

/**
 * Applies @p channel once to @p qubits of @p state, sampling the Kraus
 * branch with @p rng.  @p qubits must match the channel arity.
 */
void apply_channel(sim::StateVector& state, const Channel& channel,
                   const std::vector<int>& qubits, util::Rng& rng,
                   TrajectoryStats* stats = nullptr);

/** Applies one gate followed by all channels the noise model attaches. */
void apply_gate_with_noise(sim::StateVector& state, const sim::Gate& gate,
                           const NoiseModel& model, util::Rng& rng,
                           TrajectoryStats* stats = nullptr);

/**
 * Runs the full @p circuit as one noisy trajectory, mutating @p state.
 * Does not sample a measurement; callers draw outcomes via sim::sample_once
 * and then apply readout error.
 */
void run_trajectory(sim::StateVector& state, const sim::Circuit& circuit,
                    const NoiseModel& model, util::Rng& rng,
                    TrajectoryStats* stats = nullptr);

/**
 * Compiles gates [begin, end) of @p circuit into an executable segment plan
 * under @p model: gates that trigger channels stay at gate granularity (the
 * exact noise-insertion sites and RNG draw order of run_trajectory), while
 * maximal noise-free runs are cluster-fused (@p fusion bounds the cluster
 * width; see sim/fusion.h) and lowered to batched kernels (see
 * sim/segment_plan.h).  Intended to run once per tree level at build time.
 */
sim::CompiledSegment compile_segment(const sim::Circuit& circuit,
                                     std::size_t begin, std::size_t end,
                                     const NoiseModel& model,
                                     const sim::FusionOptions& fusion = {});

/**
 * Executes a compiled segment as one noisy trajectory, mutating @p state.
 * Draws exactly the RNG stream run_trajectory would for the source gates
 * and accumulates identical TrajectoryStats counters; amplitudes agree to
 * floating-point re-association (1e-12-scale) where fusion or diagonal
 * batching applied.
 */
void run_compiled_trajectory(sim::StateVector& state,
                             const sim::CompiledSegment& segment,
                             const NoiseModel& model, util::Rng& rng,
                             TrajectoryStats* stats = nullptr);

/** @name Backend-generic trajectory execution
 *
 * The same engine as the StateVector overloads above, driving any
 * sim::StateBackend (dense, sharded, ...) through its channel primitives.
 * Both instantiations share one implementation template, so branch
 * selection, RNG draw order, and TrajectoryStats accounting are identical
 * by construction — a backend whose reductions are bit-identical to the
 * dense kernels therefore reproduces the dense trajectory bit-for-bit.
 * @{ */

/** Applies @p channel once to @p qubits of @p state through @p backend. */
void apply_channel(sim::StateBackend& backend, sim::BackendState& state,
                   const Channel& channel, const std::vector<int>& qubits,
                   util::Rng& rng, TrajectoryStats* stats = nullptr);

/** Gate-at-a-time trajectory over @p circuit (the legacy executor path). */
void run_trajectory(sim::StateBackend& backend, sim::BackendState& state,
                    const sim::Circuit& circuit, const NoiseModel& model,
                    util::Rng& rng, TrajectoryStats* stats = nullptr);

/** Executes a backend-prepared segment as one noisy trajectory. */
void run_compiled_trajectory(sim::StateBackend& backend,
                             sim::BackendState& state,
                             const sim::PreparedSegment& segment,
                             const NoiseModel& model, util::Rng& rng,
                             TrajectoryStats* stats = nullptr);

/** @} */

/**
 * Flips each of the low @p num_qubits bits of @p outcome independently with
 * probability @p flip_probability (the paper's readout channel).
 */
sim::Index apply_readout_error(sim::Index outcome, int num_qubits,
                               double flip_probability, util::Rng& rng);

}  // namespace tqsim::noise

#endif  // TQSIM_NOISE_TRAJECTORY_H_
