#include "metrics/observables.h"

#include <bit>
#include <stdexcept>

#include "sim/gate.h"
#include "sim/gate_kernels.h"

namespace tqsim::metrics {

sim::Complex
pauli_expectation(const sim::StateVector& state, const std::string& paulis)
{
    if (static_cast<int>(paulis.size()) != state.num_qubits()) {
        throw std::invalid_argument(
            "pauli_expectation: string length must equal qubit count");
    }
    sim::StateVector transformed = state;
    for (int q = 0; q < state.num_qubits(); ++q) {
        switch (paulis[static_cast<std::size_t>(q)]) {
          case 'I':
          case 'i':
            break;
          case 'X':
          case 'x':
            sim::apply_x(transformed, q);
            break;
          case 'Y':
          case 'y':
            sim::apply_1q_matrix(transformed, q, sim::Gate::y(q).matrix());
            break;
          case 'Z':
          case 'z':
            sim::apply_diag_1q(transformed, q, {1.0, 0.0}, {-1.0, 0.0});
            break;
          default:
            throw std::invalid_argument(
                std::string("pauli_expectation: bad Pauli character '") +
                paulis[static_cast<std::size_t>(q)] + "'");
        }
    }
    return state.inner_product(transformed);
}

double
z_mask_expectation(const Distribution& dist, std::uint64_t mask)
{
    if (dist.num_qubits() < 64 &&
        mask >= (std::uint64_t{1} << dist.num_qubits())) {
        throw std::invalid_argument(
            "z_mask_expectation: mask exceeds register width");
    }
    double expectation = 0.0;
    for (std::size_t x = 0; x < dist.size(); ++x) {
        const int parity = std::popcount(x & mask) & 1;
        expectation += (parity ? -1.0 : 1.0) * dist[x];
    }
    return expectation;
}

}  // namespace tqsim::metrics
