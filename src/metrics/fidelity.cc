#include "metrics/fidelity.h"

#include <cmath>
#include <stdexcept>

namespace tqsim::metrics {

namespace {

void
check_compatible(const Distribution& p, const Distribution& q)
{
    if (p.size() != q.size()) {
        throw std::invalid_argument("distributions have different sizes");
    }
}

}  // namespace

double
state_fidelity(const Distribution& p_ideal, const Distribution& p_output)
{
    check_compatible(p_ideal, p_output);
    double bc = 0.0;
    for (std::size_t x = 0; x < p_ideal.size(); ++x) {
        bc += std::sqrt(p_ideal[x] * p_output[x]);
    }
    return bc * bc;
}

double
normalized_fidelity(const Distribution& p_ideal, const Distribution& p_output)
{
    check_compatible(p_ideal, p_output);
    const Distribution uni = Distribution::uniform(p_ideal.num_qubits());
    const double f_out = state_fidelity(p_ideal, p_output);
    const double f_uni = state_fidelity(p_ideal, uni);
    if (f_uni >= 1.0 - 1e-9) {
        // The ideal distribution is (numerically) uniform — e.g. a plain
        // QFT from |0...0>.  Eq. 9's denominator vanishes, so fall back to
        // the raw fidelity (both conventions agree at the 1.0 endpoint).
        return f_out;
    }
    return (f_out - f_uni) / (1.0 - f_uni);
}

double
total_variation_distance(const Distribution& p, const Distribution& q)
{
    check_compatible(p, q);
    double sum = 0.0;
    for (std::size_t x = 0; x < p.size(); ++x) {
        sum += std::abs(p[x] - q[x]);
    }
    return 0.5 * sum;
}

double
hellinger_distance(const Distribution& p, const Distribution& q)
{
    const double fs = state_fidelity(p, q);
    const double inner = std::sqrt(std::max(0.0, fs));
    return std::sqrt(std::max(0.0, 1.0 - inner));
}

double
mean_squared_error(const Distribution& p, const Distribution& q)
{
    check_compatible(p, q);
    double sum = 0.0;
    for (std::size_t x = 0; x < p.size(); ++x) {
        const double d = p[x] - q[x];
        sum += d * d;
    }
    return sum / static_cast<double>(p.size());
}

}  // namespace tqsim::metrics
