#ifndef TQSIM_METRICS_OBSERVABLES_H_
#define TQSIM_METRICS_OBSERVABLES_H_

/**
 * @file
 * Pauli-observable expectation values — the measurement primitive of
 * variational workloads (paper Sec. 5.7): <psi|P|psi> for Pauli strings on
 * state vectors, and diagonal (Z-mask) expectations straight from outcome
 * distributions.
 */

#include <cstdint>
#include <string>

#include "metrics/distribution.h"
#include "sim/state_vector.h"
#include "sim/types.h"

namespace tqsim::metrics {

/**
 * Expectation <psi|P|psi> of the Pauli string @p paulis, written with one
 * character per qubit, index 0 first (e.g. "ZZI" = Z on qubits 0 and 1).
 * Characters must be I/X/Y/Z; the string length must equal the state's
 * qubit count.  The result of a Hermitian observable is real up to
 * floating-point noise; the full complex value is returned for testing.
 */
sim::Complex pauli_expectation(const sim::StateVector& state,
                               const std::string& paulis);

/**
 * Expectation of the diagonal observable prod_{i in mask} Z_i evaluated on
 * an outcome distribution: sum_x p(x) * (-1)^popcount(x & mask).
 * Works on sampled distributions — the way hardware estimates <Z...Z>.
 */
double z_mask_expectation(const Distribution& dist, std::uint64_t mask);

}  // namespace tqsim::metrics

#endif  // TQSIM_METRICS_OBSERVABLES_H_
