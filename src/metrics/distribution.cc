#include "metrics/distribution.h"

#include <stdexcept>

namespace tqsim::metrics {

namespace {

int
qubits_for_size(std::size_t size)
{
    if (size == 0 || (size & (size - 1)) != 0) {
        throw std::invalid_argument(
            "Distribution size must be a power of two");
    }
    int n = 0;
    while ((std::size_t{1} << n) < size) {
        ++n;
    }
    return n;
}

}  // namespace

Distribution::Distribution(int num_qubits) : num_qubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 30) {
        throw std::invalid_argument("Distribution supports 1..30 qubits");
    }
    p_.assign(std::size_t{1} << num_qubits, 0.0);
}

Distribution
Distribution::from_probabilities(std::vector<double> probs)
{
    Distribution d(qubits_for_size(probs.size()));
    for (double v : probs) {
        if (v < 0.0) {
            throw std::invalid_argument(
                "Distribution: negative probability");
        }
    }
    d.p_ = std::move(probs);
    return d;
}

Distribution
Distribution::from_state(const sim::StateVector& state)
{
    return from_probabilities(state.probabilities());
}

Distribution
Distribution::from_outcomes(const std::vector<sim::Index>& outcomes,
                            int num_qubits)
{
    Distribution d(num_qubits);
    for (sim::Index o : outcomes) {
        d.add_outcome(o);
    }
    if (!outcomes.empty()) {
        d.normalize();
    }
    return d;
}

Distribution
Distribution::uniform(int num_qubits)
{
    Distribution d(num_qubits);
    const double v = 1.0 / static_cast<double>(d.size());
    for (double& x : d.p_) {
        x = v;
    }
    return d;
}

void
Distribution::add_outcome(sim::Index outcome, double weight)
{
    if (outcome >= p_.size()) {
        throw std::out_of_range("add_outcome: outcome out of range");
    }
    p_[outcome] += weight;
}

double
Distribution::total() const
{
    double t = 0.0;
    for (double v : p_) {
        t += v;
    }
    return t;
}

void
Distribution::normalize()
{
    const double t = total();
    if (t <= 0.0) {
        throw std::runtime_error("Distribution::normalize: zero mass");
    }
    for (double& v : p_) {
        v /= t;
    }
}

sim::Index
Distribution::argmax() const
{
    sim::Index best = 0;
    for (std::size_t i = 1; i < p_.size(); ++i) {
        if (p_[i] > p_[best]) {
            best = static_cast<sim::Index>(i);
        }
    }
    return best;
}

}  // namespace tqsim::metrics
