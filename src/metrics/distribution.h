#ifndef TQSIM_METRICS_DISTRIBUTION_H_
#define TQSIM_METRICS_DISTRIBUTION_H_

/**
 * @file
 * Dense outcome distributions over the 2^w computational basis states,
 * built either from exact probabilities (ideal reference) or from sampled
 * shot outcomes (noisy simulators).
 */

#include <cstddef>
#include <vector>

#include "sim/state_vector.h"
#include "sim/types.h"

namespace tqsim::metrics {

/** A (not necessarily normalized) measure over 2^w bitstrings. */
class Distribution
{
  public:
    /** Creates an all-zero measure on @p num_qubits qubits. */
    explicit Distribution(int num_qubits);

    /** Wraps an explicit probability vector (size must be a power of two). */
    static Distribution from_probabilities(std::vector<double> probs);

    /** Exact Born-rule distribution of a state vector. */
    static Distribution from_state(const sim::StateVector& state);

    /** Histogram of sampled outcomes, normalized to frequencies. */
    static Distribution from_outcomes(const std::vector<sim::Index>& outcomes,
                                      int num_qubits);

    /** The uniform distribution on @p num_qubits qubits. */
    static Distribution uniform(int num_qubits);

    /** Returns the qubit count. */
    int num_qubits() const { return num_qubits_; }

    /** Returns 2^num_qubits. */
    std::size_t size() const { return p_.size(); }

    /** Element access. */
    double operator[](std::size_t i) const { return p_[i]; }
    double& operator[](std::size_t i) { return p_[i]; }

    /** Adds @p weight mass to outcome @p outcome. */
    void add_outcome(sim::Index outcome, double weight = 1.0);

    /** Returns the total mass. */
    double total() const;

    /** Rescales to total mass 1 (throws when empty of mass). */
    void normalize();

    /** Returns the underlying vector. */
    const std::vector<double>& probabilities() const { return p_; }

    /** Returns the index with the largest mass. */
    sim::Index argmax() const;

  private:
    int num_qubits_;
    std::vector<double> p_;
};

}  // namespace tqsim::metrics

#endif  // TQSIM_METRICS_DISTRIBUTION_H_
