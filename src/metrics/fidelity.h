#ifndef TQSIM_METRICS_FIDELITY_H_
#define TQSIM_METRICS_FIDELITY_H_

/**
 * @file
 * Figures of merit (paper Sec. 4.1): classical state fidelity (Eq. 8) and
 * the normalized fidelity of Lubinski et al. / Hashim et al. (Eq. 9), plus
 * standard distance measures used in the sensitivity studies.
 */

#include "metrics/distribution.h"

namespace tqsim::metrics {

/**
 * Classical (Bhattacharyya-squared) state fidelity, Eq. 8:
 * F_s(P, Q) = ( sum_x sqrt(P(x) Q(x)) )^2.
 * Inputs must be distributions over the same outcome space.
 */
double state_fidelity(const Distribution& p_ideal,
                      const Distribution& p_output);

/**
 * Normalized fidelity, Eq. 9: rescales F_s so that a uniformly random
 * output scores 0 while a perfect output scores 1.
 */
double normalized_fidelity(const Distribution& p_ideal,
                           const Distribution& p_output);

/** Total variation distance: 0.5 * sum |P - Q|. */
double total_variation_distance(const Distribution& p, const Distribution& q);

/** Hellinger distance: sqrt(1 - sqrt(F_s)). */
double hellinger_distance(const Distribution& p, const Distribution& q);

/** Mean squared error between the two probability vectors. */
double mean_squared_error(const Distribution& p, const Distribution& q);

}  // namespace tqsim::metrics

#endif  // TQSIM_METRICS_FIDELITY_H_
