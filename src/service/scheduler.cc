#include "service/scheduler.h"

#include <algorithm>

#include "util/mutex.h"

namespace tqsim::service {

void
Scheduler::enqueue(const std::string& tenant, JobId id)
{
    util::MutexLock lock(mutex_);
    tenants_[tenant].queue.push_back(id);
    ++queued_;
}

std::optional<JobId>
Scheduler::dequeue()
{
    util::MutexLock lock(mutex_);
    Tenant* best = nullptr;
    for (auto& [name, tenant] : tenants_) {
        if (tenant.queue.empty()) {
            continue;
        }
        if (best == nullptr || tenant.running < best->running ||
            (tenant.running == best->running &&
             tenant.last_served < best->last_served)) {
            best = &tenant;
        }
    }
    if (best == nullptr) {
        return std::nullopt;
    }
    const JobId id = best->queue.front();
    best->queue.pop_front();
    --queued_;
    ++best->running;
    ++running_;
    best->last_served = ++serve_clock_;
    return id;
}

void
Scheduler::finish(const std::string& tenant)
{
    util::MutexLock lock(mutex_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end() || it->second.running == 0) {
        return;
    }
    --it->second.running;
    --running_;
}

bool
Scheduler::remove(const std::string& tenant, JobId id)
{
    util::MutexLock lock(mutex_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
        return false;
    }
    auto& queue = it->second.queue;
    auto pos = std::find(queue.begin(), queue.end(), id);
    if (pos == queue.end()) {
        return false;
    }
    queue.erase(pos);
    --queued_;
    return true;
}

std::size_t
Scheduler::queued() const
{
    util::MutexLock lock(mutex_);
    return queued_;
}

std::size_t
Scheduler::running() const
{
    util::MutexLock lock(mutex_);
    return running_;
}

}  // namespace tqsim::service
