#ifndef TQSIM_SERVICE_JOB_SERVICE_H_
#define TQSIM_SERVICE_JOB_SERVICE_H_

/// @file
/// The multi-tenant in-process job service (docs/serving.md): submit /
/// cancel / poll simulation jobs by stable id.  Submission validates and
/// admission-controls synchronously (JobValidator), admitted jobs queue
/// through the fair-share Scheduler, and a configurable number of lane
/// threads execute them on the shared worker pool — wiring every run into
/// the cross-request ReuseCache so concurrent jobs sharing a circuit
/// prefix share compiled plans and post-prefix snapshots, with results
/// bit-identical to isolated runs.
///
/// Failure recovery (docs/robustness.md): transient failures — injected
/// faults, core::ResourceExhausted, lane death/hang — are retried with
/// capped exponential backoff and deterministic jitter; a watchdog inside
/// the reaper detects dead or hung lanes, rescues their jobs, and respawns
/// the lane; cache entries contributed by a failed attempt are invalidated;
/// and sustained memory pressure walks a three-rung degradation ladder
/// (shrink cache budget -> disable prefix snapshots -> reject admissions),
/// every step visible in ServiceStats.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/tree_executor.h"
#include "service/job.h"
#include "service/job_validator.h"
#include "service/reuse_cache.h"
#include "service/scheduler.h"
#include "util/failpoint.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tqsim::service {

/// Per-job retry policy for transient failures
/// (docs/robustness.md#retry-policy).
struct RetryPolicy
{
    /// Total execution attempts per job (1 = no retries).
    int max_attempts = 3;
    /// Backoff before retry k is base * 2^(k-1), capped at max, plus a
    /// deterministic jitter in [0, 0.5 * backoff) derived from
    /// (job seed, job id, attempt) via util::Rng — reproducible schedules,
    /// no synchronized retry herds.
    double base_backoff_seconds = 0.01;
    /// Backoff growth cap.
    double max_backoff_seconds = 1.0;
};

/// Service construction knobs.
struct JobServiceConfig
{
    /// Lane (executor) threads.  Each lane runs one job at a time on the
    /// shared sim/parallel.h worker pool; 0 = no execution (jobs queue
    /// until cancelled/expired — deterministic-test mode).
    int num_lanes = 2;
    /// Validation + admission envelope.
    AdmissionLimits limits{};
    /// Cross-request reuse cache sizing; see ReuseCache::Config.  The
    /// byte budget should stay within limits.max_state_bytes — cached
    /// snapshots are retained state memory (docs/serving.md#eviction).
    ReuseCache::Config cache{};
    /// Master switch for cross-request reuse (off = every job compiles
    /// and simulates in isolation; results are identical either way).
    bool enable_reuse_cache = true;
    /// How often the reaper scans when no deadline/retry event is nearer
    /// (deadline expiry and retry promotion are event-driven — the reaper
    /// sleeps until the next known event; this period bounds the hang scan).
    double reaper_period_seconds = 0.005;
    /// Transient-failure retry policy.
    RetryPolicy retry{};
    /// A running job whose progress counter has not advanced for this long
    /// is declared hung: the watchdog cancels it cooperatively and the
    /// attempt is retried as a lane failure.  0 disables hang detection.
    double watchdog_hang_seconds = 30.0;
    /// Consecutive successful completions required to step the degradation
    /// ladder down one rung (docs/robustness.md#degradation-ladder).
    int degrade_recovery_jobs = 4;
    /// Time-based ladder recovery: after this long without a rung change
    /// the reaper steps the ladder down one rung.  This is what recovers
    /// rung 3 — which rejects the very admissions whose completions drive
    /// the completion-based path.  0 disables time-based decay.
    double degrade_decay_seconds = 5.0;
    /// Shadow re-verification: the fraction of completed jobs (selected
    /// deterministically from (job seed, job id) — reproducible, not
    /// timing-dependent) whose attempt is re-executed cache-cold on an
    /// alternate execution configuration (dense <-> sharded, or a
    /// different fusion cap) before publishing.  The two distributions
    /// must match bit-exactly (the repo's cross-backend equivalence
    /// contract); a mismatch means the primary result cannot be trusted —
    /// it is discarded and the attempt fails transient with
    /// kIntegrityFailure (docs/robustness.md#integrity--silent-corruption).
    /// 0 (default) disables shadowing; 1.0 shadows every job.
    double shadow_fraction = 0.0;
};

/// Service-level resilience counters (JobService::service_stats).  A
/// snapshot is internally consistent (taken under the service lock).
struct ServiceStats
{
    /// Jobs that reached kDone.
    std::uint64_t jobs_completed = 0;
    /// Jobs that reached kRejected after execution started.
    std::uint64_t jobs_failed = 0;
    /// Jobs that reached kCancelled.
    std::uint64_t jobs_cancelled = 0;
    /// Retry attempts scheduled for transient failures.
    std::uint64_t retries = 0;
    /// Dead lanes detected, joined, and respawned by the watchdog.
    std::uint64_t lane_restarts = 0;
    /// Jobs rescued off dead lanes and requeued/retried.
    std::uint64_t watchdog_requeues = 0;
    /// Hung jobs cancelled cooperatively by the watchdog.
    std::uint64_t watchdog_cancels = 0;
    /// Submissions refused at ladder rung 3 (kServiceDegraded).
    std::uint64_t degraded_rejections = 0;
    /// Current ladder rung: 0 = healthy, 1 = cache budget halved,
    /// 2 = prefix snapshots disabled, 3 = rejecting new admissions.
    int degradation_level = 0;
    /// Reuse-cache byte budget currently in force (0 = cache disabled).
    std::uint64_t cache_capacity_bytes = 0;
    /// False when the ladder (rung >= 2) has switched prefix sharing off.
    bool prefix_snapshots_enabled = true;
    /// Attempts that failed with RejectReason::kIntegrityFailure — a digest
    /// or invariant check caught corruption, or shadow re-verification
    /// contradicted the primary result.  Each is also a retry or a job
    /// failure; this splits out the integrity-detected share.
    std::uint64_t integrity_failures = 0;
    /// Cache entries quarantined after failing digest verification on
    /// lookup (mirror of ReuseCache::Stats::quarantined, surfaced here so
    /// one snapshot tells the whole corruption story).
    std::uint64_t cache_quarantined = 0;
    /// Completed attempts re-executed by shadow re-verification
    /// (JobServiceConfig::shadow_fraction).
    std::uint64_t shadow_runs = 0;
    /// Shadow re-executions whose distribution disagreed with the primary
    /// (the primary was discarded and the attempt retried).
    std::uint64_t shadow_mismatches = 0;
    /// Per-site fail-point counters (util::failpoint::all_site_stats),
    /// sorted by site name.  Empty when fail points were never armed —
    /// i.e. always empty in production.
    std::vector<std::pair<std::string, util::failpoint::SiteStats>>
        failpoint_sites;
};

/// The job service.  One instance owns its lanes, queue, job table, and
/// reuse cache; constructing several instances is fine (they share only
/// the process-wide worker pool).
///
/// Thread-safety: every public method is safe from any thread.  Job ids
/// are stable and never reused; status snapshots of terminal jobs never
/// change.  Determinism: a job's distribution, raw outcomes, and
/// deterministic ExecStats counters are bit-identical to core::run with
/// the same spec, regardless of lane count, tenant mix, cache state,
/// thread count, or how many transient failures were retried along the way
/// (only cache *hit counters*, fault-recovery counters, and timings vary).
class JobService
{
  public:
    explicit JobService(JobServiceConfig config = {});

    JobService(const JobService&) = delete;
    JobService& operator=(const JobService&) = delete;

    /// Graceful shutdown: stops accepting work, cancels queued jobs
    /// (kCancelled, "service shutdown"), lets in-flight jobs finish, and
    /// joins every thread.  Blocked wait() callers unblock.
    ~JobService();

    /// The configuration this service was built with.
    const JobServiceConfig& config() const { return config_; }

    /// Validates and admits @p spec.  Always returns a stable job id —
    /// rejected jobs get a record in state kRejected whose status carries
    /// the structured JobError (admission math included), so callers can
    /// branch on status(id).error.reason.  Admitted jobs enter the
    /// fair-share queue in state kScheduled.  Never allocates amplitude
    /// memory: an over-cap job is refused before any state exists.
    JobId submit(JobSpec spec) TQSIM_EXCLUDES(mutex_);

    /// Point-in-time status snapshot (see JobStatus for staleness rules).
    /// shots_completed streams live while the job runs.  Throws
    /// std::invalid_argument for an unknown id.
    JobStatus status(JobId id) const TQSIM_EXCLUDES(mutex_);

    /// Requests cancellation.  A queued job is removed immediately
    /// (kCancelled); a running job is cancelled cooperatively — the
    /// executor observes the flag within one segment simulation and the
    /// job lands in kCancelled shortly after.  User cancellation is
    /// permanent: a cancelled job is never retried.  Returns false when
    /// the job is already terminal (too late).  Throws
    /// std::invalid_argument for an unknown id.
    bool cancel(JobId id) TQSIM_EXCLUDES(mutex_);

    /// Blocks until the job reaches a terminal state and returns that
    /// final status.  Wakes promptly on every terminal transition —
    /// completion, cancel, shutdown — not on a polling period.  Safe from
    /// any number of waiters.  Throws std::invalid_argument for an
    /// unknown id.
    JobStatus wait(JobId id) TQSIM_EXCLUDES(mutex_);

    /// The finished job's full result (distribution, raw outcomes if
    /// requested, partition plan, per-job ExecStats — including
    /// plan_cache_hits / prefix_leases, the cross-request sharing
    /// counters).  The reference stays valid for the service's lifetime.
    /// Throws std::invalid_argument for an unknown id; std::logic_error
    /// for a job not in kDone — the message carries the state, structured
    /// RejectReason, the failing attempt's exception text, and the attempt
    /// count, so callers see *why* there is no result.
    const core::RunResult& result(JobId id) const TQSIM_EXCLUDES(mutex_);

    /// Cross-request cache counters (zeros when the cache is disabled).
    ReuseCache::Stats cache_stats() const;

    /// Resilience counters: retries, watchdog activity, degradation-ladder
    /// position (docs/robustness.md#service-stats).
    ServiceStats service_stats() const TQSIM_EXCLUDES(mutex_);

    /// Jobs currently queued (admitted, not yet dispatched).
    std::size_t queued() const { return scheduler_.queued(); }

  private:
    struct Job;
    /// One lane: the thread plus the liveness/current-job signals the
    /// watchdog reads.  Stable address (unique_ptr) — the thread body and
    /// the watchdog both hold pointers to it.
    struct Lane
    {
        std::thread thread;
        /// Cleared by the lane itself when it dies (fail point
        /// "service.lane.start"); the watchdog then rescues current_job
        /// and respawns the thread.
        std::atomic<bool> alive{true};
        /// Job the lane is executing right now (0 = idle).
        std::atomic<JobId> current_job{0};
    };

    /// Lane thread body: dequeue -> deadline check -> execute -> publish.
    void lane_loop(Lane& self) TQSIM_EXCLUDES(mutex_);
    /// Reaper/watchdog body: expire deadlines, promote due retries, detect
    /// dead/hung lanes — event-driven (sleeps to the next known event).
    void reaper_loop() TQSIM_EXCLUDES(mutex_);
    /// Runs one job attempt end to end (no service lock held) and
    /// publishes the outcome: kDone, a scheduled retry, or a terminal
    /// failure.
    void run_job(Job& job) TQSIM_EXCLUDES(mutex_);
    /// Classified failure handling for one attempt: invalidates the
    /// attempt's cache entries and either schedules a retry (transient,
    /// budget left) or finishes the job.
    void fail_attempt_locked(Job& job, JobState terminal_state,
                             JobError error, bool resource_exhausted)
        TQSIM_REQUIRES(mutex_);
    /// Steps the degradation ladder up (escalate) after resource
    /// exhaustion or down after sustained success.
    void set_degradation_locked(int level) TQSIM_REQUIRES(mutex_);
    /// Marks @p job terminal and wakes waiters.
    void finish_job_locked(Job& job, JobState state, JobError error)
        TQSIM_REQUIRES(mutex_);
    /// Backoff-with-jitter delay before retry attempt @p attempt of
    /// @p job (docs/robustness.md#retry-policy).
    double retry_delay_seconds(const Job& job, int attempt) const;
    /// Looks up @p id or throws std::invalid_argument.
    Job& job_or_throw_locked(JobId id) const TQSIM_REQUIRES(mutex_);
    /// Builds @p job's status snapshot.
    JobStatus status_locked(const Job& job) const TQSIM_REQUIRES(mutex_);

    /// cv predicates run with mutex_ held, but clang's thread-safety
    /// analysis checks lambda bodies context-free — these accessors carry
    /// the escape hatch (with this manual proof) instead of leaking it
    /// into every wait site.
    bool lane_has_work() const TQSIM_NO_THREAD_SAFETY_ANALYSIS
    {
        return stopping_ || scheduler_.queued() > 0;
    }
    bool reaper_event_since(std::uint64_t seen) const
        TQSIM_NO_THREAD_SAFETY_ANALYSIS
    {
        return stopping_ || events_ != seen;
    }

    JobServiceConfig config_;
    JobValidator validator_;
    /// Null when enable_reuse_cache is false.
    std::unique_ptr<ReuseCache> cache_;
    Scheduler scheduler_;

    /// The service lock.  Lock-order rank "service": the top of the
    /// declared hierarchy — may acquire scheduler/cache/pool locks while
    /// held, never the reverse (docs/static-analysis.md#lock-order).
    /// Job-record fields (struct Job, job_service.cc) are also guarded by
    /// this mutex except where noted atomic; TSA cannot attach GUARDED_BY
    /// across the nested-struct boundary, so those carry comments instead.
    mutable util::Mutex mutex_;
    /// Signals lanes (work queued / shutdown), wait() callers (terminal
    /// transitions), and the reaper (new deadlines/retries to schedule).
    std::condition_variable cv_;
    std::unordered_map<JobId, std::unique_ptr<Job>> jobs_
        TQSIM_GUARDED_BY(mutex_);
    JobId next_id_ TQSIM_GUARDED_BY(mutex_) = 1;
    bool stopping_ TQSIM_GUARDED_BY(mutex_) = false;
    /// Epoch counter bumped (under mutex_) by every state change the
    /// reaper must react to — submissions, retry scheduling, terminal
    /// transitions, shutdown.  The reaper's wait_until predicate compares
    /// it against the value seen when the wake time was computed, which is
    /// what makes the wait event-driven without a bare (lost-wakeup-prone)
    /// cv wait; see tqsim-lint rule cv-wait-predicate.
    std::uint64_t events_ TQSIM_GUARDED_BY(mutex_) = 0;
    /// Resilience counters (mutex_-guarded except degradation_level).
    ServiceStats stats_ TQSIM_GUARDED_BY(mutex_);
    /// Current ladder rung; atomic so run_job reads it without the lock.
    std::atomic<int> degradation_level_{0};
    /// kDone completions since the last failure (ladder recovery).
    int consecutive_done_ TQSIM_GUARDED_BY(mutex_) = 0;
    /// When the ladder last changed rung (time-based decay reference).
    std::chrono::steady_clock::time_point ladder_changed_at_
        TQSIM_GUARDED_BY(mutex_){};

    /// Immutable after the constructor (the vector and the Lane
    /// addresses); Lane::thread is written only by the reaper under
    /// mutex_ until the reaper exits, then joined by the destructor —
    /// TSA cannot attach GUARDED_BY across the nested-struct boundary.
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::thread reaper_;
};

}  // namespace tqsim::service

#endif  // TQSIM_SERVICE_JOB_SERVICE_H_
