#ifndef TQSIM_SERVICE_JOB_SERVICE_H_
#define TQSIM_SERVICE_JOB_SERVICE_H_

/// @file
/// The multi-tenant in-process job service (docs/serving.md): submit /
/// cancel / poll simulation jobs by stable id.  Submission validates and
/// admission-controls synchronously (JobValidator), admitted jobs queue
/// through the fair-share Scheduler, and a configurable number of lane
/// threads execute them on the shared worker pool — wiring every run into
/// the cross-request ReuseCache so concurrent jobs sharing a circuit
/// prefix share compiled plans and post-prefix snapshots, with results
/// bit-identical to isolated runs.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/tree_executor.h"
#include "service/job.h"
#include "service/job_validator.h"
#include "service/reuse_cache.h"
#include "service/scheduler.h"

namespace tqsim::service {

/// Service construction knobs.
struct JobServiceConfig
{
    /// Lane (executor) threads.  Each lane runs one job at a time on the
    /// shared sim/parallel.h worker pool; 0 = no execution (jobs queue
    /// until cancelled/expired — deterministic-test mode).
    int num_lanes = 2;
    /// Validation + admission envelope.
    AdmissionLimits limits{};
    /// Cross-request reuse cache sizing; see ReuseCache::Config.  The
    /// byte budget should stay within limits.max_state_bytes — cached
    /// snapshots are retained state memory (docs/serving.md#eviction).
    ReuseCache::Config cache{};
    /// Master switch for cross-request reuse (off = every job compiles
    /// and simulates in isolation; results are identical either way).
    bool enable_reuse_cache = true;
    /// How often the deadline reaper scans for expired jobs.
    double reaper_period_seconds = 0.005;
};

/// The job service.  One instance owns its lanes, queue, job table, and
/// reuse cache; constructing several instances is fine (they share only
/// the process-wide worker pool).
///
/// Thread-safety: every public method is safe from any thread.  Job ids
/// are stable and never reused; status snapshots of terminal jobs never
/// change.  Determinism: a job's distribution, raw outcomes, and
/// deterministic ExecStats counters are bit-identical to core::run with
/// the same spec, regardless of lane count, tenant mix, cache state, or
/// thread count (only the cache *hit counters* and timings vary).
class JobService
{
  public:
    explicit JobService(JobServiceConfig config = {});

    JobService(const JobService&) = delete;
    JobService& operator=(const JobService&) = delete;

    /// Graceful shutdown: stops accepting work, cancels queued jobs
    /// (kCancelled, "service shutdown"), lets in-flight jobs finish, and
    /// joins every thread.  Blocked wait() callers unblock.
    ~JobService();

    /// The configuration this service was built with.
    const JobServiceConfig& config() const { return config_; }

    /// Validates and admits @p spec.  Always returns a stable job id —
    /// rejected jobs get a record in state kRejected whose status carries
    /// the structured JobError (admission math included), so callers can
    /// branch on status(id).error.reason.  Admitted jobs enter the
    /// fair-share queue in state kScheduled.  Never allocates amplitude
    /// memory: an over-cap job is refused before any state exists.
    JobId submit(JobSpec spec);

    /// Point-in-time status snapshot (see JobStatus for staleness rules).
    /// shots_completed streams live while the job runs.  Throws
    /// std::invalid_argument for an unknown id.
    JobStatus status(JobId id) const;

    /// Requests cancellation.  A queued job is removed immediately
    /// (kCancelled); a running job is cancelled cooperatively — the
    /// executor observes the flag within one segment simulation and the
    /// job lands in kCancelled shortly after.  Returns false when the job
    /// is already terminal (too late).  Throws std::invalid_argument for
    /// an unknown id.
    bool cancel(JobId id);

    /// Blocks until the job reaches a terminal state and returns that
    /// final status.  Safe from any number of waiters.  Throws
    /// std::invalid_argument for an unknown id.
    JobStatus wait(JobId id);

    /// The finished job's full result (distribution, raw outcomes if
    /// requested, partition plan, per-job ExecStats — including
    /// plan_cache_hits / prefix_leases, the cross-request sharing
    /// counters).  The reference stays valid for the service's lifetime.
    /// Throws std::invalid_argument for an unknown id, std::logic_error
    /// when the job is not in kDone.
    const core::RunResult& result(JobId id) const;

    /// Cross-request cache counters (zeros when the cache is disabled).
    ReuseCache::Stats cache_stats() const;

    /// Jobs currently queued (admitted, not yet dispatched).
    std::size_t queued() const { return scheduler_.queued(); }

  private:
    struct Job;

    /// Lane thread body: dequeue -> deadline check -> execute -> publish.
    void lane_loop();
    /// Deadline-reaper body: expire queued jobs, cancel running ones.
    void reaper_loop();
    /// Runs one job end to end (no service lock held).  Returns the
    /// terminal state + error to publish.
    void run_job(Job& job);
    /// Marks @p job terminal and wakes waiters.  Caller holds mutex_.
    void finish_job_locked(Job& job, JobState state, JobError error);
    /// Looks up @p id or throws std::invalid_argument.  Caller holds
    /// mutex_.
    Job& job_or_throw_locked(JobId id) const;
    /// Builds @p job's status snapshot.  Caller holds mutex_.
    JobStatus status_locked(const Job& job) const;

    JobServiceConfig config_;
    JobValidator validator_;
    /// Null when enable_reuse_cache is false.
    std::unique_ptr<ReuseCache> cache_;
    Scheduler scheduler_;

    mutable std::mutex mutex_;
    /// Signals lanes (work queued / shutdown) and wait() callers
    /// (terminal transitions).
    std::condition_variable cv_;
    std::unordered_map<JobId, std::unique_ptr<Job>> jobs_;
    JobId next_id_ = 1;
    bool stopping_ = false;

    std::vector<std::thread> lanes_;
    std::thread reaper_;
};

}  // namespace tqsim::service

#endif  // TQSIM_SERVICE_JOB_SERVICE_H_
