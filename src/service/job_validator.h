#ifndef TQSIM_SERVICE_JOB_VALIDATOR_H_
#define TQSIM_SERVICE_JOB_VALIDATOR_H_

/// @file
/// Validation + admission control for submitted jobs: sanity-checks the
/// circuit, noise, shot, partition, and backend parameters, then bounds the
/// job's estimated peak live-state memory against the service cap *before*
/// any amplitude memory is allocated — an over-capacity job is refused with
/// a structured JobError, never an OOM (docs/serving.md#admission-control).

#include <cstdint>

#include "core/partitioner.h"
#include "service/job.h"

namespace tqsim::service {

/// The service's resource envelope, enforced at submit time.
struct AdmissionLimits
{
    /// Cap on one job's estimated peak live-state bytes (state vectors
    /// simultaneously alive during tree execution).  Default 4 GiB.
    std::uint64_t max_state_bytes = 4ULL << 30;
    /// Widest accepted register (the dense engine's own ceiling).
    int max_qubits = 30;
    /// Largest accepted shot count per job.
    std::uint64_t max_shots = 1ULL << 24;
    /// Most jobs queued + running across all tenants before submissions
    /// are refused with kQueueFull (checked by JobService, not here).
    std::size_t max_queued_jobs = 1024;
};

/// What admission control computed for one job (returned so callers and
/// rejection messages can show the math; see docs/serving.md).
struct AdmissionEstimate
{
    /// Bytes of one state vector (all shards summed): 16 * 2^num_qubits.
    std::uint64_t state_bytes = 0;
    /// Tree levels of the job's partition plan.
    std::uint64_t num_levels = 0;
    /// Worker-pool threads assumed concurrently live.
    std::uint64_t threads = 0;
    /// (num_levels + threads) * state_bytes — the DFS peak (one live state
    /// per tree level) plus one extra subtree state per pool worker.
    std::uint64_t peak_state_bytes = 0;
};

/// Computes the peak-memory estimate for @p spec: partitions the circuit
/// exactly as the run would (the plan is deterministic) and applies
/// peak = (levels + max(threads, 1)) * state_bytes.  Thread-safe: pure
/// function of the spec and the current sim::num_threads() setting.
AdmissionEstimate estimate_admission(const JobSpec& spec);

/// Stateless validator; one instance (or a fresh one per call — it holds
/// only the limits) serves any number of threads concurrently.
class JobValidator
{
  public:
    /// @p limits: the envelope to admit against.
    explicit JobValidator(AdmissionLimits limits = {}) : limits_(limits) {}

    /// The limits this validator admits against.
    const AdmissionLimits& limits() const { return limits_; }

    /// Checks @p spec bottom-up — parameter sanity first, then the
    /// admission estimate — and returns the first failure as a structured
    /// JobError (reason kNone = admitted).  Deterministic: same spec, same
    /// limits, same thread count => same verdict.  Never allocates state
    /// memory.  If @p estimate is non-null the computed admission math is
    /// stored there (valid when the parameter checks passed).
    JobError validate(const JobSpec& spec,
                      AdmissionEstimate* estimate = nullptr) const;

  private:
    AdmissionLimits limits_;
};

}  // namespace tqsim::service

#endif  // TQSIM_SERVICE_JOB_VALIDATOR_H_
