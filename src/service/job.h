#ifndef TQSIM_SERVICE_JOB_H_
#define TQSIM_SERVICE_JOB_H_

/// @file
/// Shared vocabulary of the multi-tenant job service (docs/serving.md): job
/// identifiers, the lifecycle state machine, structured rejection reasons,
/// and the submission/status records exchanged with JobService.  Everything
/// here is plain data — no threads, no locks — so the types are freely
/// copyable across the service boundary.

#include <cstdint>
#include <string>

#include "core/tqsim.h"
#include "noise/noise_model.h"
#include "sim/circuit.h"

namespace tqsim::service {

/// Stable job identifier: monotonically increasing per JobService instance,
/// never reused, 0 is never a valid id.  Determinism: ids depend only on
/// submission order, not on scheduling or thread timing.
using JobId = std::uint64_t;

/// The job lifecycle (docs/serving.md#job-lifecycle):
///
///     submitted -> validated -> scheduled -> running -> done
///                      |            |           |
///                      v            v           v
///                  rejected     cancelled   cancelled
///
/// kSubmitted and kValidated are transient — JobService::submit validates
/// synchronously, so the first state a caller can observe is kScheduled
/// (admitted, queued) or kRejected.  kDone, kRejected, and kCancelled are
/// terminal: a job never leaves them and its status never changes again.
enum class JobState : std::uint8_t {
    /// Received, not yet validated (transient, inside submit()).
    kSubmitted,
    /// Passed validation + admission control (transient, inside submit()).
    kValidated,
    /// Admitted and queued; the scheduler has not dispatched it yet.
    kScheduled,
    /// Executing on a service lane.
    kRunning,
    /// Finished; the RunResult is available via JobService::result().
    kDone,
    /// Refused by validation/admission, or failed during execution; the
    /// structured error says why.  Nothing was simulated (validation
    /// rejections happen before any state allocation).
    kRejected,
    /// Cancelled by the caller or expired past its deadline — before
    /// running (dropped at dequeue) or mid-run (cooperative cancel within
    /// one segment simulation).
    kCancelled,
};

/// Human-readable state name ("scheduled", "done", ...).  Thread-safe
/// (returns a static string).
const char* job_state_name(JobState state);

/// Returns true for kDone/kRejected/kCancelled — the states wait() unblocks
/// on.  Thread-safe (pure function).
bool is_terminal(JobState state);

/// Structured rejection/cancellation causes.  Every refused job carries one
/// of these plus a message — callers never have to parse strings to branch
/// on the cause, and an over-capacity job is *rejected* with
/// kOverMemoryCap before any amplitude memory is allocated (graceful
/// rejection, not OOM).
enum class RejectReason : std::uint8_t {
    /// Not rejected.
    kNone,
    /// The circuit has no gates.
    kEmptyCircuit,
    /// Circuit width outside the backend's supported range.
    kTooManyQubits,
    /// shots == 0.
    kZeroShots,
    /// shots above AdmissionLimits::max_shots.
    kTooManyShots,
    /// Unusable partitioning options (e.g. kManual with a zero arity).
    kBadPartition,
    /// Unusable backend config (e.g. non-power-of-two shard count).
    kBadBackend,
    /// Negative deadline.
    kBadDeadline,
    /// Estimated peak live-state memory exceeds
    /// AdmissionLimits::max_state_bytes (docs/serving.md#admission-control).
    kOverMemoryCap,
    /// The service queue is at AdmissionLimits::max_queued_jobs.
    kQueueFull,
    /// The per-job deadline passed before or during execution.
    kDeadlineExceeded,
    /// The run threw during execution (reported, never swallowed).
    kExecutionError,
    /// State allocation failed mid-run (core::ResourceExhausted) and every
    /// retry was exhausted.  Transient: the degradation ladder frees memory
    /// between attempts (docs/robustness.md#degradation-ladder).
    kResourceExhausted,
    /// The executing lane died or hung and the watchdog gave up after the
    /// retry budget (docs/robustness.md#lane-watchdog).  Transient.
    kLaneFailure,
    /// Admission refused because the service is at the top of its
    /// degradation ladder (memory pressure); resubmit later.  Transient.
    kServiceDegraded,
    /// An integrity check caught corrupted amplitude data (digest or
    /// invariant mismatch — util::IntegrityError), or shadow
    /// re-verification contradicted the primary result.  Transient: the
    /// poisoned cache entries are quarantined, so the retry runs
    /// cache-cold on clean state
    /// (docs/robustness.md#integrity--silent-corruption).
    kIntegrityFailure,
};

/// Human-readable reason name ("over_memory_cap", ...).  Thread-safe
/// (returns a static string).
const char* reject_reason_name(RejectReason reason);

/// Why a job was refused or stopped: a machine-checkable reason plus a
/// human-readable message.  reason == kNone means "no error".
struct JobError
{
    RejectReason reason = RejectReason::kNone;
    std::string message;
    /// Failure taxonomy (docs/robustness.md#failure-taxonomy): transient
    /// errors (injected faults, resource exhaustion, lane death) are
    /// expected to succeed on retry and the service retries them with
    /// capped exponential backoff; permanent errors (validation, user
    /// cancel, genuine execution bugs) are terminal immediately.  On a
    /// terminal status this records how the *final* attempt failed.
    bool transient = false;

    /// True when this carries an actual error.
    bool failed() const { return reason != RejectReason::kNone; }
};

/// One simulation request: what to run, how, and under which tenant.
/// The spec is copied on submit, so the caller's objects need not outlive
/// the job.
struct JobSpec
{
    /// The circuit to simulate.
    sim::Circuit circuit;
    /// The noise model to simulate it under.
    noise::NoiseModel model;
    /// Partitioning + execution knobs (seed, shots, backend, strategy —
    /// the same options core::run takes, so a service job is bit-identical
    /// to the equivalent direct call; see docs/serving.md#determinism).
    core::RunOptions options{};
    /// Fair-share scheduling group; jobs compete within their tenant
    /// first, tenants round-robin against each other.
    std::string tenant = "default";
    /// Wall-clock budget in seconds from submission; 0 = no deadline.
    /// Expired jobs become kCancelled with kDeadlineExceeded.
    double deadline_seconds = 0.0;
};

/// Point-in-time view of one job.  A status snapshot is internally
/// consistent (taken under the service lock) but immediately stale for
/// non-terminal jobs; terminal statuses never change.
struct JobStatus
{
    /// The job's id (0 in a default-constructed status).
    JobId id = 0;
    /// Lifecycle state at snapshot time.
    JobState state = JobState::kSubmitted;
    /// The tenant the job was submitted under.
    std::string tenant;
    /// Total shots the job will produce when done.
    std::uint64_t shots_total = 0;
    /// Leaf outcomes recorded so far — the streamed-progress counter,
    /// live while the job runs (== shots_total when kDone).  Restarts from
    /// zero when a transient failure triggers a retry.
    std::uint64_t shots_completed = 0;
    /// Execution attempts started so far (0 until first dispatch; > 1 when
    /// transient failures were retried).
    std::uint32_t attempts = 0;
    /// Why the job was rejected/cancelled (reason kNone otherwise).
    JobError error;
};

}  // namespace tqsim::service

#endif  // TQSIM_SERVICE_JOB_H_
