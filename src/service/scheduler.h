#ifndef TQSIM_SERVICE_SCHEDULER_H_
#define TQSIM_SERVICE_SCHEDULER_H_

/// @file
/// Fair-share job queue (docs/serving.md#scheduling): admitted jobs wait in
/// per-tenant FIFOs; dispatch picks from the tenant with the fewest jobs
/// currently running (ties broken by least-recently-served), so one tenant
/// flooding the queue cannot starve another — each tenant's own jobs still
/// run in submission order.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "service/job.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tqsim::service {

/// The scheduler's pick-next policy over (tenant, job) pairs.  It owns no
/// job state beyond ids — JobService resolves ids back to records — which
/// keeps the policy independently unit-testable.
///
/// Thread-safety: every method locks internally; safe from any number of
/// submitter and lane threads.  Determinism: given the same sequence of
/// enqueue/dequeue/finish calls, dequeue order is a pure function of that
/// sequence (FIFO within tenant, lowest-running-count tenant first,
/// least-recently-served tie-break).
class Scheduler
{
  public:
    Scheduler() = default;

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Queues @p id under @p tenant (FIFO within the tenant).
    void enqueue(const std::string& tenant, JobId id) TQSIM_EXCLUDES(mutex_);

    /// Picks the next job to run — from the eligible tenant with the
    /// fewest running jobs — marks its tenant running, and returns its id;
    /// std::nullopt when nothing is queued.  The caller must pair every
    /// successful dequeue with finish() once the job leaves execution.
    std::optional<JobId> dequeue() TQSIM_EXCLUDES(mutex_);

    /// Reports that @p tenant's previously dequeued job finished (done,
    /// failed, or cancelled), releasing its running slot.
    void finish(const std::string& tenant) TQSIM_EXCLUDES(mutex_);

    /// Removes a still-queued job (cancellation before dispatch).  Returns
    /// false when @p id is not queued (already dequeued or never enqueued).
    bool remove(const std::string& tenant, JobId id) TQSIM_EXCLUDES(mutex_);

    /// Jobs currently queued across all tenants.
    std::size_t queued() const TQSIM_EXCLUDES(mutex_);

    /// Jobs dequeued and not yet finished.
    std::size_t running() const TQSIM_EXCLUDES(mutex_);

  private:
    struct Tenant
    {
        std::deque<JobId> queue;
        std::uint64_t running = 0;
        /// dequeue() stamp of the last dispatch (tie-break: oldest first).
        std::uint64_t last_served = 0;
    };

    /// Lock-order rank "scheduler": acquired under the service lock
    /// (JobService::mutex_), never the other way around
    /// (docs/static-analysis.md#lock-order).
    mutable util::Mutex mutex_;
    /// std::map: deterministic iteration => deterministic final tie-break.
    std::map<std::string, Tenant> tenants_ TQSIM_GUARDED_BY(mutex_);
    std::uint64_t serve_clock_ TQSIM_GUARDED_BY(mutex_) = 0;
    std::size_t queued_ TQSIM_GUARDED_BY(mutex_) = 0;
    std::size_t running_ TQSIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace tqsim::service

#endif  // TQSIM_SERVICE_SCHEDULER_H_
