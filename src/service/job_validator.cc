#include "service/job_validator.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <string>

#include "sim/parallel.h"
#include "sim/types.h"

namespace tqsim::service {

namespace {

JobError
reject(RejectReason reason, std::string message)
{
    return JobError{reason, std::move(message)};
}

}  // namespace

AdmissionEstimate
estimate_admission(const JobSpec& spec)
{
    AdmissionEstimate est;
    est.state_bytes = sim::state_vector_bytes(spec.circuit.num_qubits());
    // The plan is a deterministic function of (circuit, model, options), so
    // estimating from it here matches what the run would execute.
    const core::PartitionPlan plan = core::make_partition_plan(
        spec.circuit, spec.model, spec.options.partition_options());
    est.num_levels = plan.num_levels();
    // DFS keeps one live state per tree level; a parallel run additionally
    // keeps one subtree state per busy pool worker (the executor's
    // peak_live_states contract in core/tree_executor.h).
    est.threads = static_cast<std::uint64_t>(
        std::max(sim::num_threads(), 1));
    est.peak_state_bytes = (est.num_levels + est.threads) * est.state_bytes;
    return est;
}

JobError
JobValidator::validate(const JobSpec& spec, AdmissionEstimate* estimate) const
{
    const int n = spec.circuit.num_qubits();
    if (spec.circuit.empty()) {
        return reject(RejectReason::kEmptyCircuit,
                      "circuit has no gates; nothing to simulate");
    }
    if (n < 1 || n > limits_.max_qubits) {
        std::ostringstream msg;
        msg << "circuit width " << n << " outside supported range [1, "
            << limits_.max_qubits << "]";
        return reject(RejectReason::kTooManyQubits, msg.str());
    }
    if (spec.options.shots == 0) {
        return reject(RejectReason::kZeroShots, "shots must be >= 1");
    }
    if (spec.options.shots > limits_.max_shots) {
        std::ostringstream msg;
        msg << "shots " << spec.options.shots << " above the per-job cap "
            << limits_.max_shots;
        return reject(RejectReason::kTooManyShots, msg.str());
    }
    if (spec.options.strategy == core::PartitionStrategy::kManual) {
        if (spec.options.manual_arities.empty()) {
            return reject(RejectReason::kBadPartition,
                          "kManual needs a non-empty arity vector");
        }
        for (std::uint64_t a : spec.options.manual_arities) {
            if (a == 0) {
                return reject(RejectReason::kBadPartition,
                              "kManual arity vector contains a zero");
            }
        }
    }
    if (spec.options.backend.kind == sim::BackendKind::kSharded) {
        const int shards = spec.options.backend.num_shards;
        if (shards < 2 ||
            !std::has_single_bit(static_cast<unsigned>(shards)) ||
            shards > (1 << (n - 1))) {
            std::ostringstream msg;
            msg << "sharded backend needs a power-of-two shard count in "
                   "[2, 2^(n-1)]; got "
                << shards << " for n=" << n;
            return reject(RejectReason::kBadBackend, msg.str());
        }
    }
    if (spec.deadline_seconds < 0.0) {
        return reject(RejectReason::kBadDeadline,
                      "deadline_seconds must be >= 0");
    }

    const AdmissionEstimate est = estimate_admission(spec);
    if (estimate != nullptr) {
        *estimate = est;
    }
    if (est.peak_state_bytes > limits_.max_state_bytes) {
        std::ostringstream msg;
        msg << "estimated peak live-state memory " << est.peak_state_bytes
            << " B ((" << est.num_levels << " levels + " << est.threads
            << " threads) x " << est.state_bytes
            << " B/state) exceeds the admission cap "
            << limits_.max_state_bytes << " B";
        return reject(RejectReason::kOverMemoryCap, msg.str());
    }
    return {};
}

}  // namespace tqsim::service
