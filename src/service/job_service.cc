#include "service/job_service.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "reuse/redundancy_eliminator.h"
#include "util/failpoint.h"
#include "util/integrity.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace tqsim::service {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration
to_duration(double seconds)
{
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
}

/// Whether shadow re-verification audits this job: a pure function of
/// (job seed, job id), so the audited subset is reproducible across runs
/// and independent of lane scheduling or retry count (a retried attempt is
/// shadowed again).
bool
shadow_selected(double fraction, std::uint64_t seed, JobId id)
{
    if (fraction <= 0.0) {
        return false;
    }
    if (fraction >= 1.0) {
        return true;
    }
    util::Rng rng(util::mix_seed(seed, id, /*salt=*/0x5AD0ULL));
    return rng.uniform() < fraction;
}

/// The alternate execution configuration a shadow run uses: flip the
/// backend family (dense <-> sharded — an independent engine, transport,
/// and reduction path), falling back to a fusion-cap change for circuits
/// too narrow to shard.  Both directions are covered by the repo's
/// bit-identical cross-backend equivalence contract, so any disagreement
/// indicts the execution, not the configuration.
core::ExecutorOptions
shadow_options(const JobSpec& spec)
{
    core::ExecutorOptions shadow = spec.options.executor_options();
    if (spec.circuit.num_qubits() >= 2) {
        if (shadow.backend.kind == sim::BackendKind::kDense) {
            shadow.backend.kind = sim::BackendKind::kSharded;
            shadow.backend.num_shards = 2;
        } else {
            shadow.backend.kind = sim::BackendKind::kDense;
        }
    } else {
        shadow.backend.max_fused_qubits = 1;
    }
    return shadow;
}

/// Adapts the shared ReuseCache to the executor's level-indexed
/// sim::PlanCache seam: one instance per run, holding the run's
/// precomputed per-level keys.  The keys cover every compile input
/// (segment fingerprint, noise digest, resolved fusion cap), which is what
/// makes serving a cached plan byte-identical to compiling.
class LevelPlanCache final : public sim::PlanCache
{
  public:
    LevelPlanCache(ReuseCache* cache, std::vector<PlanKey> keys,
                   std::uint64_t origin)
        : cache_(cache), keys_(std::move(keys)), origin_(origin)
    {
    }

    std::shared_ptr<const sim::CompiledSegment>
    lookup(std::size_t level) override
    {
        return cache_->lookup_plan(keys_.at(level));
    }

    void
    insert(std::size_t level,
           std::shared_ptr<const sim::CompiledSegment> plan) override
    {
        const std::uint64_t bytes = approx_plan_bytes(*plan);
        cache_->insert_plan(keys_.at(level), std::move(plan), bytes, origin_);
    }

  private:
    ReuseCache* cache_;
    std::vector<PlanKey> keys_;
    /// Contributing job attempt, so entries from a failed attempt can be
    /// invalidated (docs/robustness.md#cache-hygiene).
    std::uint64_t origin_;
};

/// Adapts the shared ReuseCache to the executor's
/// core::PrefixSnapshotSource seam: one instance per run, holding the
/// run's child-independent key prefix.  A lease restores the complete
/// post-segment-0 execution state (amplitudes, RNG stream, trajectory
/// counters), so the leasing run proceeds exactly as if it had simulated
/// the segment itself.
class CachedPrefixSource final : public core::PrefixSnapshotSource
{
  public:
    CachedPrefixSource(ReuseCache* cache, PrefixKey base, std::uint64_t origin)
        : cache_(cache), base_(base), origin_(origin)
    {
    }

    bool
    lease(sim::StateBackend& backend, std::uint64_t child,
          sim::BackendState& state, util::Rng* rng,
          noise::TrajectoryStats* stats) override
    {
        PrefixKey key = base_;
        key.child = child;
        const std::shared_ptr<const PrefixSnapshot> snap =
            cache_->lookup_prefix(key);
        if (snap == nullptr) {
            return false;
        }
        backend.import_amplitudes(state, snap->amplitudes);
        *rng = snap->rng;
        stats->merge(snap->stats);
        return true;
    }

    void
    offer(sim::StateBackend& backend, std::uint64_t child,
          const sim::BackendState& state, const util::Rng& rng,
          const noise::TrajectoryStats& stats) override
    {
        // Skip the export copy for children the cache would decline
        // anyway (population bound; see ReuseCache::Config).
        if (child >= cache_->config().prefix_children_cap) {
            return;
        }
        PrefixKey key = base_;
        key.child = child;
        auto snap = std::make_shared<PrefixSnapshot>();
        backend.export_amplitudes(state, &snap->amplitudes);
        snap->rng = rng;
        snap->stats = stats;
        // Digest the *live* state, not the exported copy: the value every
        // later lease re-verifies against is taken before the bytes ever
        // leave the producing run.
        snap->digest = backend.state_digest(state);
        // Corruption-mode fail point: a bit flip in the snapshot on its
        // way into the cache (after the digest, so the lease-time verify
        // is held to catching exactly what the injector broke).
        TQSIM_FAILPOINT_CORRUPT("service.cache.insert",
                                snap->amplitudes.data(),
                                snap->amplitudes.size() *
                                    sizeof(sim::Complex));
        cache_->insert_prefix(key, std::move(snap),
                              std::uint64_t{1} << backend.num_qubits(),
                              origin_);
    }

  private:
    ReuseCache* cache_;
    PrefixKey base_;
    std::uint64_t origin_;
};

}  // namespace

/// One job record.  The atomics are written by executor threads without
/// the service lock; everything else is guarded by JobService::mutex_.
struct JobService::Job
{
    explicit Job(JobSpec s) : spec(std::move(s)) {}

    JobId id = 0;
    JobSpec spec;
    JobState state = JobState::kSubmitted;
    JobError error;
    std::uint64_t shots_total = 0;
    /// Execution attempts started (dispatches), for status + retry budget.
    std::uint32_t attempts = 0;
    /// True between a transient failure and the reaper re-enqueueing the
    /// job at retry_at (state stays kScheduled, but the job is NOT in the
    /// scheduler queue while pending).
    bool retry_pending = false;
    Clock::time_point retry_at{};
    /// Live leaf-outcome counter (ExecutorOptions::progress_outcomes).
    std::atomic<std::uint64_t> progress{0};
    /// Cooperative cancel flag (ExecutorOptions::cancel).
    std::atomic<bool> cancel{false};
    /// True when the reaper (not the user) raised the cancel flag, so the
    /// terminal error reads kDeadlineExceeded instead of plain cancel.
    std::atomic<bool> deadline_hit{false};
    /// True when cancel() was called by the user — permanent: suppresses
    /// retries even when the failing attempt looked transient.
    std::atomic<bool> user_cancelled{false};
    /// True when the watchdog cancelled a hung attempt
    /// (docs/robustness.md#lane-watchdog) — transient, retried.
    std::atomic<bool> watchdog_cancel{false};
    /// Hang-detection bookkeeping (reaper-only, under mutex_): last
    /// progress value observed and when it last advanced.
    std::uint64_t watch_progress = 0;
    Clock::time_point watch_since{};
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::optional<core::RunResult> result;
};

JobService::JobService(JobServiceConfig config)
    : config_(config), validator_(config.limits)
{
    if (config_.enable_reuse_cache) {
        cache_ = std::make_unique<ReuseCache>(config_.cache);
    }
    lanes_.reserve(static_cast<std::size_t>(
        config_.num_lanes > 0 ? config_.num_lanes : 0));
    for (int i = 0; i < config_.num_lanes; ++i) {
        auto lane = std::make_unique<Lane>();
        lane->thread = std::thread([this, l = lane.get()] { lane_loop(*l); });
        lanes_.push_back(std::move(lane));
    }
    reaper_ = std::thread([this] { reaper_loop(); });
}

JobService::~JobService()
{
    {
        util::MutexLock lock(mutex_);
        stopping_ = true;
        ++events_;  // Wakes the reaper out of its event wait.
        // Queued jobs will never run; resolve them so waiters unblock.
        // Retry-pending jobs are kScheduled but not in the scheduler
        // queue, so remove() failing is expected for them.
        for (auto& [id, job] : jobs_) {
            if (job->state == JobState::kScheduled) {
                job->retry_pending = false;
                scheduler_.remove(job->spec.tenant, id);
                finish_job_locked(
                    *job, JobState::kCancelled,
                    JobError{RejectReason::kNone, "service shutdown"});
            }
        }
    }
    cv_.notify_all();
    // Reaper first: it is the thread that respawns lanes, so joining it
    // freezes the lane set before we join the lanes themselves.
    reaper_.join();
    for (auto& lane : lanes_) {
        if (lane->thread.joinable()) {
            lane->thread.join();
        }
    }
    // Jobs orphaned by a lane that died after the reaper stopped (no
    // watchdog rescue anymore) must still reach a terminal state.
    util::MutexLock lock(mutex_);
    for (auto& [id, job] : jobs_) {
        if (!is_terminal(job->state)) {
            finish_job_locked(*job, JobState::kCancelled,
                              JobError{RejectReason::kNone,
                                       "service shutdown"});
        }
    }
}

JobId
JobService::submit(JobSpec spec)
{
    AdmissionEstimate estimate;
    JobError verdict = validator_.validate(spec, &estimate);

    util::MutexLock lock(mutex_);
    if (!verdict.failed() && scheduler_.queued() + scheduler_.running() >=
                                 config_.limits.max_queued_jobs) {
        verdict = JobError{RejectReason::kQueueFull,
                           "service queue is at capacity"};
    }
    // Top rung of the degradation ladder: shed new load entirely
    // (docs/robustness.md#degradation-ladder).  Transient — resubmitting
    // after the service recovers will succeed.
    if (!verdict.failed() &&
        degradation_level_.load(std::memory_order_relaxed) >= 3) {
        verdict = JobError{RejectReason::kServiceDegraded,
                           "service degraded: rejecting new admissions",
                           true};
        ++stats_.degraded_rejections;
    }
    const JobId id = next_id_++;
    auto job = std::make_unique<Job>(std::move(spec));
    job->id = id;
    job->shots_total = job->spec.options.shots;
    if (job->spec.deadline_seconds > 0.0) {
        job->has_deadline = true;
        job->deadline = Clock::now() + to_duration(job->spec.deadline_seconds);
    }
    Job& ref = *job;
    jobs_.emplace(id, std::move(job));
    if (verdict.failed()) {
        finish_job_locked(ref, JobState::kRejected, std::move(verdict));
    } else if (stopping_) {
        finish_job_locked(ref, JobState::kCancelled,
                          JobError{RejectReason::kNone, "service shutdown"});
    } else {
        ref.state = JobState::kScheduled;
        scheduler_.enqueue(ref.spec.tenant, id);
    }
    ++events_;  // New job (possibly with a deadline): reaper recomputes.
    lock.unlock();
    cv_.notify_all();
    return id;
}

JobStatus
JobService::status(JobId id) const
{
    util::MutexLock lock(mutex_);
    return status_locked(job_or_throw_locked(id));
}

bool
JobService::cancel(JobId id)
{
    util::MutexLock lock(mutex_);
    Job& job = job_or_throw_locked(id);
    if (is_terminal(job.state)) {
        return false;
    }
    job.user_cancelled.store(true, std::memory_order_relaxed);
    if (job.state == JobState::kScheduled) {
        // In the queue, or parked awaiting a retry — either way it is not
        // running, so it can be resolved right here.
        job.retry_pending = false;
        scheduler_.remove(job.spec.tenant, id);
        finish_job_locked(job, JobState::kCancelled,
                          JobError{RejectReason::kNone,
                                   "cancelled before dispatch"});
        return true;
    }
    // Running (or being dequeued right now): cooperative cancellation —
    // the executor checks the flag once per tree node.
    job.cancel.store(true, std::memory_order_relaxed);
    return true;
}

JobStatus
JobService::wait(JobId id)
{
    util::MutexLock lock(mutex_);
    Job& job = job_or_throw_locked(id);
    // The predicate reads job.state, guarded by mutex_ through the Job
    // comment contract (nested-struct fields are invisible to TSA); the
    // wait always holds the lock when evaluating it.
    cv_.wait(lock.native(), [&job] { return is_terminal(job.state); });
    return status_locked(job);
}

const core::RunResult&
JobService::result(JobId id) const
{
    util::MutexLock lock(mutex_);
    const Job& job = job_or_throw_locked(id);
    if (job.state != JobState::kDone || !job.result.has_value()) {
        std::string msg = "JobService::result: job is not done (state=";
        msg += job_state_name(job.state);
        msg += ", reason=";
        msg += reject_reason_name(job.error.reason);
        if (!job.error.message.empty()) {
            msg += ", error=\"";
            msg += job.error.message;
            msg += "\"";
        }
        msg += ", attempts=";
        msg += std::to_string(job.attempts);
        msg += ")";
        throw std::logic_error(msg);
    }
    return *job.result;
}

ReuseCache::Stats
JobService::cache_stats() const
{
    return cache_ != nullptr ? cache_->stats() : ReuseCache::Stats{};
}

ServiceStats
JobService::service_stats() const
{
    util::MutexLock lock(mutex_);
    ServiceStats stats = stats_;
    stats.degradation_level =
        degradation_level_.load(std::memory_order_relaxed);
    stats.cache_capacity_bytes =
        cache_ != nullptr ? cache_->capacity_bytes() : 0;
    stats.prefix_snapshots_enabled = stats.degradation_level < 2;
    stats.cache_quarantined =
        cache_ != nullptr ? cache_->stats().quarantined : 0;
    stats.failpoint_sites = util::failpoint::all_site_stats();
    return stats;
}

void
JobService::lane_loop(Lane& self)
{
    for (;;) {
        util::MutexLock lock(mutex_);
        cv_.wait(lock.native(), [this] { return lane_has_work(); });
        if (stopping_) {
            return;
        }
        const std::optional<JobId> id = scheduler_.dequeue();
        if (!id.has_value()) {
            continue;
        }
        Job& job = *jobs_.at(*id);
        if (job.has_deadline && Clock::now() >= job.deadline) {
            scheduler_.finish(job.spec.tenant);
            finish_job_locked(job, JobState::kCancelled,
                              JobError{RejectReason::kDeadlineExceeded,
                                       "deadline passed before dispatch"});
            continue;
        }
        job.state = JobState::kRunning;
        ++job.attempts;
        job.progress.store(0, std::memory_order_relaxed);
        job.watch_progress = 0;
        job.watch_since = Clock::now();
        self.current_job.store(job.id, std::memory_order_release);
        lock.unlock();

        // Fail point: the lane thread dies right after dispatch — the job
        // is orphaned in kRunning with its scheduler slot held, exactly
        // like a crashed worker.  The watchdog must rescue the job and
        // respawn the lane (docs/robustness.md#lane-watchdog).
        if (util::failpoint::armed() &&
            util::failpoint::fires("service.lane.start")) {
            self.alive.store(false, std::memory_order_release);
            return;
        }

        run_job(job);  // Publishes kDone / a retry / a terminal failure.

        lock.lock();
        scheduler_.finish(job.spec.tenant);
        self.current_job.store(0, std::memory_order_relaxed);
        lock.unlock();
        cv_.notify_all();
    }
}

void
JobService::reaper_loop()
{
    const auto period = to_duration(config_.reaper_period_seconds);
    const bool hang_enabled = config_.watchdog_hang_seconds > 0.0;
    const auto hang_after = to_duration(config_.watchdog_hang_seconds);
    util::MutexLock lock(mutex_);
    while (!stopping_) {
        // Event-driven sleep: wake at the earliest deadline or retry time,
        // bounded by the scan period (which paces the hang/dead-lane
        // scans).  State changes that can move the wake time — new jobs,
        // scheduled retries, terminal transitions, shutdown — bump events_
        // and notify cv_, so the predicate re-runs this computation; plain
        // notifies without an event leave the reaper asleep until wake.
        Clock::time_point wake = Clock::now() + period;
        for (auto& [id, job] : jobs_) {
            if (is_terminal(job->state)) {
                continue;
            }
            if (job->has_deadline && job->deadline < wake) {
                wake = job->deadline;
            }
            if (job->retry_pending && job->retry_at < wake) {
                wake = job->retry_at;
            }
        }
        const std::uint64_t seen = events_;
        cv_.wait_until(lock.native(), wake,
                       [this, seen] { return reaper_event_since(seen); });
        if (stopping_) {
            return;
        }
        const Clock::time_point now = Clock::now();

        // (1) Deadline expiry.
        for (auto& [id, job] : jobs_) {
            if (!job->has_deadline || is_terminal(job->state) ||
                now < job->deadline) {
                continue;
            }
            if (job->state == JobState::kScheduled) {
                // Retry-pending jobs are not in the scheduler queue;
                // resolve them directly.
                const bool removable =
                    job->retry_pending ||
                    scheduler_.remove(job->spec.tenant, id);
                job->retry_pending = false;
                if (removable) {
                    finish_job_locked(
                        *job, JobState::kCancelled,
                        JobError{RejectReason::kDeadlineExceeded,
                                 "deadline passed while queued"});
                }
            } else if (job->state == JobState::kRunning) {
                job->deadline_hit.store(true, std::memory_order_relaxed);
                job->cancel.store(true, std::memory_order_relaxed);
            }
        }

        // (2) Retry promotion: park time served, back into the queue.
        bool promoted = false;
        for (auto& [id, job] : jobs_) {
            if (job->retry_pending && !is_terminal(job->state) &&
                now >= job->retry_at) {
                job->retry_pending = false;
                scheduler_.enqueue(job->spec.tenant, id);
                promoted = true;
            }
        }
        if (promoted) {
            cv_.notify_all();
        }

        // (3) Hang detection: a running job whose progress counter has not
        // advanced within the window gets a cooperative watchdog cancel;
        // run_job classifies it as a transient lane failure and retries.
        if (hang_enabled) {
            for (auto& [id, job] : jobs_) {
                if (job->state != JobState::kRunning) {
                    continue;
                }
                const std::uint64_t progress =
                    job->progress.load(std::memory_order_relaxed);
                if (progress != job->watch_progress) {
                    job->watch_progress = progress;
                    job->watch_since = now;
                } else if (now - job->watch_since >= hang_after &&
                           !job->watchdog_cancel.load(
                               std::memory_order_relaxed)) {
                    job->watchdog_cancel.store(true,
                                               std::memory_order_relaxed);
                    job->cancel.store(true, std::memory_order_relaxed);
                    ++stats_.watchdog_cancels;
                    util::log_warn()
                        << "watchdog: cancelling hung job " << id;
                }
            }
        }

        // (4) Dead-lane scan: move the exited thread aside (joined below,
        // outside the lock — joining while holding mutex_ would stall
        // every lane and submitter on the reaper), rescue the job it was
        // running (free the scheduler slot, retry or fail it), and
        // respawn the lane.
        std::vector<std::thread> finished;
        for (auto& lane : lanes_) {
            if (lane->alive.load(std::memory_order_acquire)) {
                continue;
            }
            if (lane->thread.joinable()) {
                finished.push_back(std::move(lane->thread));
            }
            const JobId orphan =
                lane->current_job.load(std::memory_order_acquire);
            if (orphan != 0) {
                auto it = jobs_.find(orphan);
                if (it != jobs_.end() &&
                    it->second->state == JobState::kRunning) {
                    scheduler_.finish(it->second->spec.tenant);
                    ++stats_.watchdog_requeues;
                    fail_attempt_locked(
                        *it->second, JobState::kRejected,
                        JobError{RejectReason::kLaneFailure,
                                 "lane died while executing", true},
                        false);
                }
                lane->current_job.store(0, std::memory_order_relaxed);
            }
            if (!stopping_) {
                lane->alive.store(true, std::memory_order_release);
                Lane* raw = lane.get();
                lane->thread =
                    std::thread([this, raw] { lane_loop(*raw); });
                ++stats_.lane_restarts;
                util::log_warn() << "watchdog: respawned dead lane";
            }
        }
        if (!finished.empty()) {
            // The threads already left their loop bodies, so these joins
            // are prompt — but a join is still a blocking wait, which the
            // lock-order lint (and common sense) bans under a held lock.
            lock.unlock();
            for (std::thread& t : finished) {
                t.join();
            }
            lock.lock();
            if (stopping_) {
                return;
            }
        }

        // (5) Time-based ladder decay: one rung down after a quiet period.
        // This, not the completion path, is what recovers rung 3 — which
        // rejects the very admissions that would otherwise complete.
        const int level = degradation_level_.load(std::memory_order_relaxed);
        if (level > 0 && config_.degrade_decay_seconds > 0.0 &&
            now - ladder_changed_at_ >=
                to_duration(config_.degrade_decay_seconds)) {
            set_degradation_locked(level - 1);
        }
    }
}

void
JobService::run_job(Job& job)
{
    // Tags this attempt's cache contributions so they can be invalidated
    // if the attempt fails (docs/robustness.md#cache-hygiene).  attempts
    // was written by this thread at dispatch, so the unlocked read is
    // ordered.
    const std::uint64_t origin =
        (job.id << 8U) | (job.attempts & 0xffU);
    JobState fail_state = JobState::kRejected;
    JobError error;
    bool resource_exhausted = false;
    bool shadow_ran = false;
    bool shadow_mismatch = false;
    std::optional<core::RunResult> result;
    try {
        // Fail point: the attempt wedges (no progress, no return) until
        // cancelled — exercises hang detection end to end.
        if (util::failpoint::armed() &&
            util::failpoint::fires("service.lane.hang")) {
            while (!job.cancel.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(std::chrono::microseconds(500));
            }
            throw util::TransientError(
                "injected hang: attempt cancelled by watchdog");
        }
        const JobSpec& spec = job.spec;
        const core::PartitionPlan plan = core::make_partition_plan(
            spec.circuit, spec.model, spec.options.partition_options());
        core::ExecutorOptions exec = spec.options.executor_options();
        exec.cancel = &job.cancel;
        exec.progress_outcomes = &job.progress;
        // Wire the cross-request seams.  Keys are precomputed here — the
        // one place that sees circuit, noise, options, and plan together.
        // Ladder rung 2 disables prefix snapshot sharing (the big-ticket
        // memory consumer); plan caching stays on at every rung.
        const bool prefix_enabled =
            degradation_level_.load(std::memory_order_relaxed) < 2;
        std::unique_ptr<LevelPlanCache> plan_cache;
        std::unique_ptr<CachedPrefixSource> prefix_source;
        if (cache_ != nullptr && exec.compile_segments &&
            plan.num_levels() > 0) {
            const std::uint64_t noise_digest =
                reuse::noise_model_digest(spec.model);
            const int fusion_cap = core::resolved_max_fused_qubits(
                exec.backend.max_fused_qubits);
            std::vector<PlanKey> keys;
            keys.reserve(plan.num_levels());
            for (std::size_t l = 0; l < plan.num_levels(); ++l) {
                keys.push_back(PlanKey{
                    reuse::segment_fingerprint(spec.circuit,
                                               plan.boundaries[l],
                                               plan.boundaries[l + 1]),
                    noise_digest,
                    static_cast<std::uint64_t>(fusion_cap)});
            }
            PrefixKey base;
            base.segment_hash = keys.front().segment_hash;
            base.noise_digest = noise_digest;
            base.seed = exec.seed;
            const bool sharded =
                exec.backend.kind == sim::BackendKind::kSharded;
            base.exec = exec_digest(
                fusion_cap,
                core::resolved_fused_diag_threshold(
                    exec.backend.fused_diag_threshold),
                static_cast<int>(exec.backend.kind),
                sharded ? exec.backend.num_shards : 0);
            plan_cache = std::make_unique<LevelPlanCache>(
                cache_.get(), std::move(keys), origin);
            exec.plan_cache = plan_cache.get();
            if (prefix_enabled) {
                prefix_source = std::make_unique<CachedPrefixSource>(
                    cache_.get(), base, origin);
                exec.prefix_source = prefix_source.get();
            }
        }
        result = core::execute_tree(spec.circuit, spec.model, plan, exec);
        // Shadow re-verification: re-execute the job cache-cold on an
        // alternate configuration and demand a bit-exact distribution
        // match (docs/robustness.md#integrity--silent-corruption).  This
        // is the detector of last resort — it needs no digest reference,
        // so it catches corruption the online checks cannot see (e.g. an
        // engine-level fault with integrity checks off).  The shadow run
        // shares only the partition plan and the cancel flag; a mismatch
        // discards the primary and retries the attempt.
        if (shadow_selected(config_.shadow_fraction, spec.options.seed,
                            job.id)) {
            shadow_ran = true;
            core::ExecutorOptions shadow = shadow_options(spec);
            shadow.cancel = &job.cancel;
            try {
                const core::RunResult check = core::execute_tree(
                    spec.circuit, spec.model, plan, shadow);
                if (check.distribution.probabilities() !=
                        result->distribution.probabilities() ||
                    check.raw_outcomes != result->raw_outcomes) {
                    shadow_mismatch = true;
                    result.reset();
                    error = JobError{
                        RejectReason::kIntegrityFailure,
                        "shadow re-verification mismatch: primary "
                        "and alternate-configuration distributions "
                        "disagree",
                        true};
                }
            } catch (...) {
                // The audit itself aborted (a fault or detected corruption
                // inside the shadow run): the primary is then *unverified*,
                // which is exactly what shadowing exists to rule out.
                // Discard it and let the outer handlers classify the
                // failure; the retry re-runs both primary and shadow.
                result.reset();
                throw;
            }
        }
    } catch (const core::RunCancelled&) {
        if (job.deadline_hit.load(std::memory_order_relaxed)) {
            fail_state = JobState::kCancelled;
            error = JobError{RejectReason::kDeadlineExceeded,
                             "deadline passed while running"};
        } else if (job.watchdog_cancel.load(std::memory_order_relaxed) &&
                   !job.user_cancelled.load(std::memory_order_relaxed)) {
            // The watchdog, not the user, cancelled this attempt: a hung
            // lane is a transient fault, so the job is retried.
            error = JobError{RejectReason::kLaneFailure,
                             "watchdog cancelled a hung attempt", true};
        } else {
            fail_state = JobState::kCancelled;
            error = JobError{RejectReason::kNone, "cancelled while running"};
        }
    } catch (const core::ResourceExhausted& e) {
        error = JobError{RejectReason::kResourceExhausted, e.what(), true};
        resource_exhausted = true;
        // Before the generic TransientError clause: an integrity failure is
        // transient too, but carries its own reason so statuses and stats
        // distinguish "caught corruption" from "injected fault".
    } catch (const util::IntegrityError& e) {
        error = JobError{RejectReason::kIntegrityFailure, e.what(), true};
    } catch (const util::TransientError& e) {
        error = JobError{RejectReason::kExecutionError, e.what(), true};
    } catch (const std::bad_alloc& e) {
        error = JobError{RejectReason::kResourceExhausted, e.what(), true};
        resource_exhausted = true;
    } catch (const std::exception& e) {
        error = JobError{RejectReason::kExecutionError, e.what()};
    }

    util::MutexLock lock(mutex_);
    if (shadow_ran) {
        ++stats_.shadow_runs;
    }
    if (shadow_mismatch) {
        ++stats_.shadow_mismatches;
    }
    if (result.has_value()) {
        job.result = std::move(result);
        finish_job_locked(job, JobState::kDone, JobError{});
        // Sustained success walks the degradation ladder back down.
        ++consecutive_done_;
        const int level = degradation_level_.load(std::memory_order_relaxed);
        if (level > 0 && consecutive_done_ >= config_.degrade_recovery_jobs) {
            set_degradation_locked(level - 1);
            consecutive_done_ = 0;
        }
        return;
    }
    fail_attempt_locked(job, fail_state, std::move(error),
                        resource_exhausted);
}

void
JobService::fail_attempt_locked(Job& job, JobState terminal_state,
                                JobError error, bool resource_exhausted)
{
    // Drop this attempt's cache contributions: entries are complete by
    // construction, but nothing from a failed attempt should outlive it.
    if (cache_ != nullptr) {
        cache_->invalidate_origin((job.id << 8U) | (job.attempts & 0xffU));
    }
    if (error.reason == RejectReason::kIntegrityFailure) {
        ++stats_.integrity_failures;
    }
    consecutive_done_ = 0;
    if (resource_exhausted) {
        // Memory pressure: step the ladder up before the next attempt so
        // the retry runs against a smaller footprint.
        set_degradation_locked(
            degradation_level_.load(std::memory_order_relaxed) + 1);
    }
    // User cancellation and deadline expiry are permanent regardless of
    // how the attempt happened to fail.
    if (job.user_cancelled.load(std::memory_order_relaxed)) {
        finish_job_locked(job, JobState::kCancelled,
                          JobError{RejectReason::kNone,
                                   "cancelled while running"});
        return;
    }
    if (job.deadline_hit.load(std::memory_order_relaxed)) {
        finish_job_locked(job, JobState::kCancelled,
                          JobError{RejectReason::kDeadlineExceeded,
                                   "deadline passed while running"});
        return;
    }
    if (error.transient && !stopping_ &&
        static_cast<int>(job.attempts) < config_.retry.max_attempts) {
        ++stats_.retries;
        job.state = JobState::kScheduled;
        job.retry_pending = true;
        job.retry_at =
            Clock::now() +
            to_duration(retry_delay_seconds(
                job, static_cast<int>(job.attempts)));
        // Status shows the attempt's failure while the retry is parked.
        job.error = std::move(error);
        job.cancel.store(false, std::memory_order_relaxed);
        job.watchdog_cancel.store(false, std::memory_order_relaxed);
        job.progress.store(0, std::memory_order_relaxed);
        ++events_;
        cv_.notify_all();  // The reaper recomputes its wake time.
        return;
    }
    finish_job_locked(job, terminal_state, std::move(error));
}

void
JobService::set_degradation_locked(int level)
{
    if (level < 0) {
        level = 0;
    }
    if (level > 3) {
        level = 3;
    }
    if (level == degradation_level_.load(std::memory_order_relaxed)) {
        return;
    }
    degradation_level_.store(level, std::memory_order_relaxed);
    ladder_changed_at_ = Clock::now();
    // Rung 1+: halve the reuse-cache byte budget (evicting down to it);
    // recovery restores the configured budget.  Rungs 2 and 3 are enforced
    // at the prefix-wiring and admission sites respectively.
    if (cache_ != nullptr) {
        cache_->set_capacity_bytes(level >= 1
                                       ? config_.cache.capacity_bytes / 2
                                       : config_.cache.capacity_bytes);
    }
    util::log_info() << "job service degradation level -> " << level;
}

void
JobService::finish_job_locked(Job& job, JobState state, JobError error)
{
    job.state = state;
    job.error = std::move(error);
    switch (state) {
      case JobState::kDone:
        ++stats_.jobs_completed;
        break;
      case JobState::kRejected:
        // Only count execution failures; validation rejections never ran.
        if (job.attempts > 0) {
            ++stats_.jobs_failed;
        }
        break;
      case JobState::kCancelled:
        ++stats_.jobs_cancelled;
        break;
      default:
        break;
    }
    // Every terminal transition wakes wait() callers (and the reaper)
    // immediately — no polling-granularity latency.
    ++events_;
    cv_.notify_all();
}

double
JobService::retry_delay_seconds(const Job& job, int attempt) const
{
    double backoff = config_.retry.base_backoff_seconds *
                     std::ldexp(1.0, attempt - 1);
    if (backoff > config_.retry.max_backoff_seconds) {
        backoff = config_.retry.max_backoff_seconds;
    }
    // Deterministic jitter in [0, backoff/2): a pure function of
    // (job seed, job id, attempt), so retry schedules are reproducible
    // while distinct jobs never synchronize into a retry herd.
    util::Rng rng(util::mix_seed(job.spec.options.seed, job.id,
                                 static_cast<std::uint64_t>(attempt)));
    return backoff + 0.5 * backoff * rng.uniform();
}

JobService::Job&
JobService::job_or_throw_locked(JobId id) const
{
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        throw std::invalid_argument("JobService: unknown job id");
    }
    return *it->second;
}

JobStatus
JobService::status_locked(const Job& job) const
{
    JobStatus status;
    status.id = job.id;
    status.state = job.state;
    status.tenant = job.spec.tenant;
    status.shots_total = job.shots_total;
    status.shots_completed = job.progress.load(std::memory_order_relaxed);
    status.attempts = job.attempts;
    status.error = job.error;
    return status;
}

}  // namespace tqsim::service
