#include "service/job_service.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "reuse/redundancy_eliminator.h"

namespace tqsim::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Adapts the shared ReuseCache to the executor's level-indexed
/// sim::PlanCache seam: one instance per run, holding the run's
/// precomputed per-level keys.  The keys cover every compile input
/// (segment fingerprint, noise digest, resolved fusion cap), which is what
/// makes serving a cached plan byte-identical to compiling.
class LevelPlanCache final : public sim::PlanCache
{
  public:
    LevelPlanCache(ReuseCache* cache, std::vector<PlanKey> keys)
        : cache_(cache), keys_(std::move(keys))
    {
    }

    std::shared_ptr<const sim::CompiledSegment>
    lookup(std::size_t level) override
    {
        return cache_->lookup_plan(keys_.at(level));
    }

    void
    insert(std::size_t level,
           std::shared_ptr<const sim::CompiledSegment> plan) override
    {
        const std::uint64_t bytes = approx_plan_bytes(*plan);
        cache_->insert_plan(keys_.at(level), std::move(plan), bytes);
    }

  private:
    ReuseCache* cache_;
    std::vector<PlanKey> keys_;
};

/// Adapts the shared ReuseCache to the executor's
/// core::PrefixSnapshotSource seam: one instance per run, holding the
/// run's child-independent key prefix.  A lease restores the complete
/// post-segment-0 execution state (amplitudes, RNG stream, trajectory
/// counters), so the leasing run proceeds exactly as if it had simulated
/// the segment itself.
class CachedPrefixSource final : public core::PrefixSnapshotSource
{
  public:
    CachedPrefixSource(ReuseCache* cache, PrefixKey base)
        : cache_(cache), base_(base)
    {
    }

    bool
    lease(sim::StateBackend& backend, std::uint64_t child,
          sim::BackendState& state, util::Rng* rng,
          noise::TrajectoryStats* stats) override
    {
        PrefixKey key = base_;
        key.child = child;
        const std::shared_ptr<const PrefixSnapshot> snap =
            cache_->lookup_prefix(key);
        if (snap == nullptr) {
            return false;
        }
        backend.import_amplitudes(state, snap->amplitudes);
        *rng = snap->rng;
        stats->merge(snap->stats);
        return true;
    }

    void
    offer(sim::StateBackend& backend, std::uint64_t child,
          const sim::BackendState& state, const util::Rng& rng,
          const noise::TrajectoryStats& stats) override
    {
        // Skip the export copy for children the cache would decline
        // anyway (population bound; see ReuseCache::Config).
        if (child >= cache_->config().prefix_children_cap) {
            return;
        }
        PrefixKey key = base_;
        key.child = child;
        auto snap = std::make_shared<PrefixSnapshot>();
        backend.export_amplitudes(state, &snap->amplitudes);
        snap->rng = rng;
        snap->stats = stats;
        cache_->insert_prefix(key, std::move(snap));
    }

  private:
    ReuseCache* cache_;
    PrefixKey base_;
};

}  // namespace

/// One job record.  The atomics are written by executor threads without
/// the service lock; everything else is guarded by JobService::mutex_.
struct JobService::Job
{
    explicit Job(JobSpec s) : spec(std::move(s)) {}

    JobId id = 0;
    JobSpec spec;
    JobState state = JobState::kSubmitted;
    JobError error;
    std::uint64_t shots_total = 0;
    /// Live leaf-outcome counter (ExecutorOptions::progress_outcomes).
    std::atomic<std::uint64_t> progress{0};
    /// Cooperative cancel flag (ExecutorOptions::cancel).
    std::atomic<bool> cancel{false};
    /// True when the reaper (not the user) raised the cancel flag, so the
    /// terminal error reads kDeadlineExceeded instead of plain cancel.
    std::atomic<bool> deadline_hit{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::optional<core::RunResult> result;
};

JobService::JobService(JobServiceConfig config)
    : config_(config), validator_(config.limits)
{
    if (config_.enable_reuse_cache) {
        cache_ = std::make_unique<ReuseCache>(config_.cache);
    }
    lanes_.reserve(static_cast<std::size_t>(
        config_.num_lanes > 0 ? config_.num_lanes : 0));
    for (int i = 0; i < config_.num_lanes; ++i) {
        lanes_.emplace_back([this] { lane_loop(); });
    }
    reaper_ = std::thread([this] { reaper_loop(); });
}

JobService::~JobService()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Queued jobs will never run; resolve them so waiters unblock.
        for (auto& [id, job] : jobs_) {
            if (job->state == JobState::kScheduled) {
                scheduler_.remove(job->spec.tenant, id);
                finish_job_locked(
                    *job, JobState::kCancelled,
                    JobError{RejectReason::kNone, "service shutdown"});
            }
        }
    }
    cv_.notify_all();
    for (std::thread& lane : lanes_) {
        lane.join();
    }
    reaper_.join();
}

JobId
JobService::submit(JobSpec spec)
{
    AdmissionEstimate estimate;
    JobError verdict = validator_.validate(spec, &estimate);

    std::unique_lock<std::mutex> lock(mutex_);
    if (!verdict.failed() && scheduler_.queued() + scheduler_.running() >=
                                 config_.limits.max_queued_jobs) {
        verdict = JobError{RejectReason::kQueueFull,
                           "service queue is at capacity"};
    }
    const JobId id = next_id_++;
    auto job = std::make_unique<Job>(std::move(spec));
    job->id = id;
    job->shots_total = job->spec.options.shots;
    if (job->spec.deadline_seconds > 0.0) {
        job->has_deadline = true;
        job->deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   job->spec.deadline_seconds));
    }
    Job& ref = *job;
    jobs_.emplace(id, std::move(job));
    if (verdict.failed()) {
        finish_job_locked(ref, JobState::kRejected, std::move(verdict));
    } else if (stopping_) {
        finish_job_locked(ref, JobState::kCancelled,
                          JobError{RejectReason::kNone, "service shutdown"});
    } else {
        ref.state = JobState::kScheduled;
        scheduler_.enqueue(ref.spec.tenant, id);
    }
    lock.unlock();
    cv_.notify_all();
    return id;
}

JobStatus
JobService::status(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return status_locked(job_or_throw_locked(id));
}

bool
JobService::cancel(JobId id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Job& job = job_or_throw_locked(id);
    if (is_terminal(job.state)) {
        return false;
    }
    if (job.state == JobState::kScheduled &&
        scheduler_.remove(job.spec.tenant, id)) {
        finish_job_locked(job, JobState::kCancelled,
                          JobError{RejectReason::kNone,
                                   "cancelled before dispatch"});
        lock.unlock();
        cv_.notify_all();
        return true;
    }
    // Running (or being dequeued right now): cooperative cancellation —
    // the executor checks the flag once per tree node.
    job.cancel.store(true, std::memory_order_relaxed);
    return true;
}

JobStatus
JobService::wait(JobId id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Job& job = job_or_throw_locked(id);
    cv_.wait(lock, [&job] { return is_terminal(job.state); });
    return status_locked(job);
}

const core::RunResult&
JobService::result(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Job& job = job_or_throw_locked(id);
    if (job.state != JobState::kDone || !job.result.has_value()) {
        throw std::logic_error("JobService::result: job is not done");
    }
    return *job.result;
}

ReuseCache::Stats
JobService::cache_stats() const
{
    return cache_ != nullptr ? cache_->stats() : ReuseCache::Stats{};
}

void
JobService::lane_loop()
{
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock,
                 [this] { return stopping_ || scheduler_.queued() > 0; });
        if (stopping_) {
            return;
        }
        const std::optional<JobId> id = scheduler_.dequeue();
        if (!id.has_value()) {
            continue;
        }
        Job& job = *jobs_.at(*id);
        if (job.has_deadline && Clock::now() >= job.deadline) {
            scheduler_.finish(job.spec.tenant);
            finish_job_locked(job, JobState::kCancelled,
                              JobError{RejectReason::kDeadlineExceeded,
                                       "deadline passed before dispatch"});
            lock.unlock();
            cv_.notify_all();
            continue;
        }
        job.state = JobState::kRunning;
        lock.unlock();

        run_job(job);  // Publishes the terminal state itself.

        lock.lock();
        scheduler_.finish(job.spec.tenant);
        lock.unlock();
        cv_.notify_all();
    }
}

void
JobService::reaper_loop()
{
    const auto period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(config_.reaper_period_seconds));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        cv_.wait_for(lock, period);
        if (stopping_) {
            return;
        }
        bool expired_any = false;
        for (auto& [id, job] : jobs_) {
            if (!job->has_deadline || is_terminal(job->state) ||
                Clock::now() < job->deadline) {
                continue;
            }
            if (job->state == JobState::kScheduled &&
                scheduler_.remove(job->spec.tenant, id)) {
                finish_job_locked(*job, JobState::kCancelled,
                                  JobError{RejectReason::kDeadlineExceeded,
                                           "deadline passed while queued"});
                expired_any = true;
            } else if (job->state == JobState::kRunning) {
                job->deadline_hit.store(true, std::memory_order_relaxed);
                job->cancel.store(true, std::memory_order_relaxed);
            }
        }
        if (expired_any) {
            cv_.notify_all();
        }
    }
}

void
JobService::run_job(Job& job)
{
    JobState final_state = JobState::kDone;
    JobError error;
    std::optional<core::RunResult> result;
    try {
        const JobSpec& spec = job.spec;
        const core::PartitionPlan plan = core::make_partition_plan(
            spec.circuit, spec.model, spec.options.partition_options());
        core::ExecutorOptions exec = spec.options.executor_options();
        exec.cancel = &job.cancel;
        exec.progress_outcomes = &job.progress;
        // Wire the cross-request seams.  Keys are precomputed here — the
        // one place that sees circuit, noise, options, and plan together.
        std::unique_ptr<LevelPlanCache> plan_cache;
        std::unique_ptr<CachedPrefixSource> prefix_source;
        if (cache_ != nullptr && exec.compile_segments &&
            plan.num_levels() > 0) {
            const std::uint64_t noise_digest =
                reuse::noise_model_digest(spec.model);
            const int fusion_cap = core::resolved_max_fused_qubits(
                exec.backend.max_fused_qubits);
            std::vector<PlanKey> keys;
            keys.reserve(plan.num_levels());
            for (std::size_t l = 0; l < plan.num_levels(); ++l) {
                keys.push_back(PlanKey{
                    reuse::segment_fingerprint(spec.circuit,
                                               plan.boundaries[l],
                                               plan.boundaries[l + 1]),
                    noise_digest,
                    static_cast<std::uint64_t>(fusion_cap)});
            }
            PrefixKey base;
            base.segment_hash = keys.front().segment_hash;
            base.noise_digest = noise_digest;
            base.seed = exec.seed;
            const bool sharded =
                exec.backend.kind == sim::BackendKind::kSharded;
            base.exec = exec_digest(
                fusion_cap,
                core::resolved_fused_diag_threshold(
                    exec.backend.fused_diag_threshold),
                static_cast<int>(exec.backend.kind),
                sharded ? exec.backend.num_shards : 0);
            plan_cache =
                std::make_unique<LevelPlanCache>(cache_.get(),
                                                 std::move(keys));
            prefix_source =
                std::make_unique<CachedPrefixSource>(cache_.get(), base);
            exec.plan_cache = plan_cache.get();
            exec.prefix_source = prefix_source.get();
        }
        result = core::execute_tree(spec.circuit, spec.model, plan, exec);
    } catch (const core::RunCancelled&) {
        final_state = JobState::kCancelled;
        error = job.deadline_hit.load(std::memory_order_relaxed)
                    ? JobError{RejectReason::kDeadlineExceeded,
                               "deadline passed while running"}
                    : JobError{RejectReason::kNone, "cancelled while running"};
    } catch (const std::exception& e) {
        final_state = JobState::kRejected;
        error = JobError{RejectReason::kExecutionError, e.what()};
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (result.has_value()) {
        job.result = std::move(result);
    }
    finish_job_locked(job, final_state, std::move(error));
}

void
JobService::finish_job_locked(Job& job, JobState state, JobError error)
{
    job.state = state;
    job.error = std::move(error);
}

JobService::Job&
JobService::job_or_throw_locked(JobId id) const
{
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        throw std::invalid_argument("JobService: unknown job id");
    }
    return *it->second;
}

JobStatus
JobService::status_locked(const Job& job) const
{
    JobStatus status;
    status.id = job.id;
    status.state = job.state;
    status.tenant = job.spec.tenant;
    status.shots_total = job.shots_total;
    status.shots_completed = job.progress.load(std::memory_order_relaxed);
    status.error = job.error;
    return status;
}

}  // namespace tqsim::service
