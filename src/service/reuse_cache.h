#ifndef TQSIM_SERVICE_REUSE_CACHE_H_
#define TQSIM_SERVICE_REUSE_CACHE_H_

/// @file
/// The cross-request reuse cache — the service layer's headline mechanism
/// (docs/serving.md#cross-request-reuse): one LRU-evicted, byte-bounded
/// store shared by every job the service runs, holding
///
///  - **compiled segment plans** keyed by (segment fingerprint, noise
///    digest, fusion cap): jobs re-running the same subcircuit under the
///    same noise skip compilation entirely, and
///  - **tree-prefix snapshots** keyed by (level-0 segment fingerprint,
///    noise digest, master seed, execution digest, child index): the
///    post-segment-0 state (canonical amplitudes + post-segment RNG +
///    trajectory counters) of one job is leased verbatim by every later
///    job sharing that circuit prefix, noise model, and seed — sharing up
///    to the first divergent gate.
///
/// Bit-identity: every key covers *all* inputs that shape the cached value
/// (fingerprints are the stable cross-run digests of
/// reuse/redundancy_eliminator.h; the execution digest covers the resolved
/// fusion cap, resolved fused-diagonal threshold, backend kind, and shard
/// count — the knobs that move amplitudes at the 1e-12 reassociation
/// scale).  A hit therefore restores exactly what the job would have
/// computed, so results are bit-identical to isolated runs at any thread
/// count.  Keys keep their component digests as separate words — 64-bit
/// collisions do not compound across components.

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "noise/trajectory.h"
#include "sim/segment_plan.h"
#include "sim/types.h"
#include "util/integrity.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace tqsim::service {

/// Identity of one compiled segment plan.  Two runs share a plan exactly
/// when every compile input matches: the gates (segment fingerprint covers
/// kinds, operands, parameter bits, order, and register width), the noise
/// model (digest covers channel attachment and Kraus bit patterns — noise
/// placement shapes the op stream), and the resolved fusion-width cap.
struct PlanKey
{
    /// reuse::segment_fingerprint of the compiled gate range.
    std::uint64_t segment_hash = 0;
    /// reuse::noise_model_digest of the job's noise model.
    std::uint64_t noise_digest = 0;
    /// core::resolved_max_fused_qubits of the job's backend config.
    std::uint64_t fusion_cap = 0;

    bool operator==(const PlanKey&) const = default;
};

/// Identity of one tree-prefix snapshot: everything PlanKey pins for the
/// level-0 segment, plus the master seed (the child's RNG stream derives
/// purely from (seed, 0, child)), the execution digest (resolved fusion
/// cap, resolved fused-diag threshold, backend kind, shard count — see
/// exec_digest()), and the level-0 child index.
struct PrefixKey
{
    /// reuse::segment_fingerprint of gates [0, first boundary).
    std::uint64_t segment_hash = 0;
    /// reuse::noise_model_digest of the job's noise model.
    std::uint64_t noise_digest = 0;
    /// The job's master RNG seed (seed policy: streams split purely from
    /// it, so equal seeds => equal per-child noise realizations).
    std::uint64_t seed = 0;
    /// exec_digest() of the job's resolved execution configuration.
    std::uint64_t exec = 0;
    /// Level-0 child index the snapshot belongs to.
    std::uint64_t child = 0;

    bool operator==(const PrefixKey&) const = default;
};

/// Digest of the execution knobs that can move amplitudes (at the 1e-12
/// reassociation scale) without changing the circuit or noise: the
/// *resolved* fusion-width cap and fused-diagonal threshold
/// (core::resolved_max_fused_qubits / core::resolved_fused_diag_threshold)
/// plus backend kind and shard count.  Thread-safe (pure function).
std::uint64_t exec_digest(int resolved_max_fused_qubits,
                          std::uint64_t resolved_fused_diag_threshold,
                          int backend_kind, int num_shards);

/// One cached prefix snapshot: the complete post-segment-0 execution state
/// of a level-0 child.  Immutable once inserted; shared by reference with
/// every leasing run.
struct PrefixSnapshot
{
    /// Canonical global-index-order amplitudes
    /// (sim::StateBackend::export_amplitudes), importable by any backend.
    std::vector<sim::Complex> amplitudes;
    /// The child's RNG *after* the segment — full generator copy, so a
    /// lease resumes the stream exactly where the simulation left it
    /// (split() keys off the seed, draws consume hidden state; both are
    /// restored).
    util::Rng rng{0};
    /// The segment's trajectory counters, re-accumulated on lease so a
    /// leasing job's deterministic ExecStats match its isolated run.
    noise::TrajectoryStats stats;
    /// Canonical amplitude digest taken at offer time — before the bytes
    /// ever sat in the cache (util::integrity::digest_doubles over the
    /// amplitude array == sim::StateBackend::state_digest of the source
    /// state).  lookup_prefix re-digests the entry on every lease and
    /// compares against this, so a bit flipped while the snapshot was at
    /// rest is caught before any job imports it.
    std::uint64_t digest = 0;
};

/// Content digest of a compiled plan (op metadata + matrix / diagonal
/// payload bits — everything apply_op reads).  Stored at insert_plan time
/// and re-checked on lookup_plan, so a plan corrupted at rest is
/// quarantined and recompiled instead of silently mis-simulating every
/// node of a level.  Thread-safe (pure function).
std::uint64_t plan_content_digest(const sim::CompiledSegment& plan);

/// Approximate retained bytes of a compiled plan (op records + matrix /
/// diagonal payloads) — the unit the cache budget charges plans at.
/// Thread-safe (pure function).
std::uint64_t approx_plan_bytes(const sim::CompiledSegment& plan);

/// The shared LRU store.  One instance per JobService; every method is
/// safe to call from any number of lanes/traversal workers concurrently
/// (one internal mutex — operations are O(1) map/list updates plus, on
/// insert, eviction; amplitude copies happen *outside* the lock, callers
/// only move shared_ptrs through it).
///
/// Eviction: strict LRU over plans and prefixes together, bounded by
/// Config::capacity_bytes.  Lookups refresh recency; inserting over
/// budget evicts from the cold end until the new entry fits.  An entry
/// larger than the whole budget is declined outright.  Eviction drops the
/// cache's reference only — runs still holding a leased shared_ptr keep
/// using it safely.
class ReuseCache
{
  public:
    /// Cache knobs.
    struct Config
    {
        /// Byte budget over all cached plans + snapshots.  The service
        /// sizes this from the same memory cap admission control uses
        /// (docs/serving.md#eviction).
        std::uint64_t capacity_bytes = 256ULL << 20;
        /// Highest level-0 child index cached (children >= the cap are
        /// simulated, not offered).  Bounds the per-key snapshot
        /// population: a baseline (single-level) plan has one child per
        /// shot and would otherwise flood the cache.
        std::uint64_t prefix_children_cap = 16;
    };

    /// Monotonic counters (taken under the lock; a snapshot is internally
    /// consistent).  hits + misses counts every lookup.
    struct Stats
    {
        std::uint64_t plan_hits = 0;
        std::uint64_t plan_misses = 0;
        std::uint64_t prefix_hits = 0;
        std::uint64_t prefix_misses = 0;
        /// Offers declined by the prefix_children_cap or the byte budget.
        std::uint64_t declined = 0;
        /// Entries evicted to make room.
        std::uint64_t evictions = 0;
        /// Entries removed by invalidate_origin (a contributing job failed;
        /// its entries are dropped so no later job leases them).
        std::uint64_t invalidated = 0;
        /// Entries whose content failed digest verification on lookup and
        /// were dropped (plus their origin siblings, counted under
        /// invalidated).  Nonzero only under real or injected corruption.
        std::uint64_t quarantined = 0;
        /// Prefix offers rejected because the snapshot's amplitude count
        /// disagreed with the key's execution digest (a mis-built offer —
        /// caching it would poison every later lease of that key).
        std::uint64_t mis_sized = 0;
        /// Bytes currently retained.
        std::uint64_t bytes_in_use = 0;
        /// Entries currently retained (plans + snapshots).
        std::uint64_t entries = 0;
    };

    /// Default-configured cache (256 MiB budget).
    ReuseCache() = default;
    /// Cache with an explicit budget/population config.
    explicit ReuseCache(Config config)
        : config_(config), capacity_bytes_(config.capacity_bytes)
    {
    }

    ReuseCache(const ReuseCache&) = delete;
    ReuseCache& operator=(const ReuseCache&) = delete;

    /// The configuration this cache was built with.  Immutable — the live
    /// byte budget (which the degradation ladder moves at runtime) is
    /// capacity_bytes(), not config().capacity_bytes; returning a
    /// reference into mutable state here used to race set_capacity_bytes.
    const Config& config() const { return config_; }

    /// Current byte budget (equals config().capacity_bytes until the
    /// degradation ladder shrinks it).
    std::uint64_t capacity_bytes() const TQSIM_EXCLUDES(mutex_);

    /// Rebudgets the cache to @p bytes, evicting cold-end entries until it
    /// fits — the degradation ladder's first rung
    /// (docs/robustness.md#degradation-ladder).  Growing back is equally
    /// valid (recovery path).
    void set_capacity_bytes(std::uint64_t bytes) TQSIM_EXCLUDES(mutex_);

    /// Drops every entry inserted under @p origin (see the insert
    /// overloads): called when the contributing job attempt fails, so a
    /// half-trusted entry can never be leased by a later job.  Entries are
    /// complete-by-construction (inserted only after a fully simulated
    /// segment), so this is defense in depth, not a correctness
    /// prerequisite.
    void invalidate_origin(std::uint64_t origin) TQSIM_EXCLUDES(mutex_);

    /// Returns the plan cached under @p key (refreshing its recency), or
    /// null on a miss.
    std::shared_ptr<const sim::CompiledSegment> lookup_plan(
        const PlanKey& key) TQSIM_EXCLUDES(mutex_);

    /// Caches @p plan (charged at @p bytes) under @p key; evicts LRU
    /// entries until it fits.  Re-inserting a present key is a no-op
    /// (first writer wins; both plans are byte-identical by key
    /// construction).  @p origin tags the entry with the contributing job
    /// attempt so invalidate_origin can drop it if that attempt fails.
    void insert_plan(const PlanKey& key,
                     std::shared_ptr<const sim::CompiledSegment> plan,
                     std::uint64_t bytes, std::uint64_t origin = 0)
        TQSIM_EXCLUDES(mutex_);

    /// Returns the snapshot cached under @p key (refreshing its recency),
    /// or null on a miss.  Every hit is digest-verified (outside the lock —
    /// the re-digest is an O(2^n) pass); a mismatch quarantines the entry,
    /// invalidates everything from the same origin, and throws
    /// util::IntegrityError so the leasing job retries cache-cold.
    std::shared_ptr<const PrefixSnapshot> lookup_prefix(const PrefixKey& key)
        TQSIM_EXCLUDES(mutex_);

    /// Caches @p snapshot under @p key, charged at its amplitude bytes.
    /// Declined when key.child >= prefix_children_cap or the snapshot
    /// cannot fit the budget; *rejected* (counted in Stats::mis_sized) when
    /// its amplitude count differs from @p expected_amplitudes — the state
    /// dimension the key's execution digest implies.  Re-inserting a
    /// present key is a no-op.  @p origin as for insert_plan.
    void insert_prefix(const PrefixKey& key,
                       std::shared_ptr<const PrefixSnapshot> snapshot,
                       std::uint64_t expected_amplitudes,
                       std::uint64_t origin = 0) TQSIM_EXCLUDES(mutex_);

    /// Current counters.
    Stats stats() const TQSIM_EXCLUDES(mutex_);

  private:
    /// One LRU slot: exactly one of plan/prefix is set.
    struct Entry
    {
        bool is_plan = false;
        PlanKey plan_key;
        PrefixKey prefix_key;
        std::shared_ptr<const sim::CompiledSegment> plan;
        std::shared_ptr<const PrefixSnapshot> prefix;
        std::uint64_t bytes = 0;
        /// Contributing job attempt (0 = untracked); see invalidate_origin.
        std::uint64_t origin = 0;
        /// plan_content_digest at insert time (plans only; prefixes carry
        /// their digest inside the snapshot itself).
        std::uint64_t content_digest = 0;
    };
    using LruList = std::list<Entry>;

    struct PlanKeyHash
    {
        std::size_t operator()(const PlanKey& k) const;
    };
    struct PrefixKeyHash
    {
        std::size_t operator()(const PrefixKey& k) const;
    };

    /// Pops cold-end entries until @p incoming_bytes fits the budget.
    bool make_room(std::uint64_t incoming_bytes) TQSIM_REQUIRES(mutex_);
    /// Unlinks @p it from its key map and the LRU list.
    void erase_entry(LruList::iterator it) TQSIM_REQUIRES(mutex_);
    /// invalidate_origin's body, for callers already holding the lock.
    void invalidate_origin_locked(std::uint64_t origin)
        TQSIM_REQUIRES(mutex_);
    /// Digest-mismatch response: drops the entry under @p erase_plan /
    /// @p plan_key / @p prefix_key (if still cached) plus everything from
    /// @p origin, and counts the quarantine.
    void quarantine(bool erase_plan, const PlanKey& plan_key,
                    const PrefixKey& prefix_key, std::uint64_t origin)
        TQSIM_EXCLUDES(mutex_);

    /// Construction knobs; never written after the constructor, so the
    /// unlocked config() accessor is safe.
    const Config config_{};
    /// Lock-order rank "cache": acquired under the service lock (and
    /// from executor threads holding no other lock), below "scheduler",
    /// above "pool" (docs/static-analysis.md#lock-order).
    mutable util::Mutex mutex_;
    /// Live byte budget — config_.capacity_bytes until the degradation
    /// ladder rebudgets it (set_capacity_bytes).
    std::uint64_t capacity_bytes_ TQSIM_GUARDED_BY(mutex_) =
        Config{}.capacity_bytes;
    LruList lru_ TQSIM_GUARDED_BY(mutex_);  ///< Front = most recent.
    std::unordered_map<PlanKey, LruList::iterator, PlanKeyHash> plans_
        TQSIM_GUARDED_BY(mutex_);
    std::unordered_map<PrefixKey, LruList::iterator, PrefixKeyHash> prefixes_
        TQSIM_GUARDED_BY(mutex_);
    Stats stats_ TQSIM_GUARDED_BY(mutex_);
};

}  // namespace tqsim::service

#endif  // TQSIM_SERVICE_REUSE_CACHE_H_
