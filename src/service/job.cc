#include "service/job.h"

namespace tqsim::service {

const char*
job_state_name(JobState state)
{
    switch (state) {
      case JobState::kSubmitted:
        return "submitted";
      case JobState::kValidated:
        return "validated";
      case JobState::kScheduled:
        return "scheduled";
      case JobState::kRunning:
        return "running";
      case JobState::kDone:
        return "done";
      case JobState::kRejected:
        return "rejected";
      case JobState::kCancelled:
        return "cancelled";
    }
    return "unknown";
}

bool
is_terminal(JobState state)
{
    return state == JobState::kDone || state == JobState::kRejected ||
           state == JobState::kCancelled;
}

const char*
reject_reason_name(RejectReason reason)
{
    switch (reason) {
      case RejectReason::kNone:
        return "none";
      case RejectReason::kEmptyCircuit:
        return "empty_circuit";
      case RejectReason::kTooManyQubits:
        return "too_many_qubits";
      case RejectReason::kZeroShots:
        return "zero_shots";
      case RejectReason::kTooManyShots:
        return "too_many_shots";
      case RejectReason::kBadPartition:
        return "bad_partition";
      case RejectReason::kBadBackend:
        return "bad_backend";
      case RejectReason::kBadDeadline:
        return "bad_deadline";
      case RejectReason::kOverMemoryCap:
        return "over_memory_cap";
      case RejectReason::kQueueFull:
        return "queue_full";
      case RejectReason::kDeadlineExceeded:
        return "deadline_exceeded";
      case RejectReason::kExecutionError:
        return "execution_error";
      case RejectReason::kResourceExhausted:
        return "resource_exhausted";
      case RejectReason::kLaneFailure:
        return "lane_failure";
      case RejectReason::kServiceDegraded:
        return "service_degraded";
      case RejectReason::kIntegrityFailure:
        return "integrity_failure";
    }
    return "unknown";
}

}  // namespace tqsim::service
