#include "service/reuse_cache.h"

#include <initializer_list>
#include <utility>

#include "util/failpoint.h"
#include "util/integrity.h"
#include "util/mutex.h"

namespace tqsim::service {

namespace {

/// Word-wise FNV-1a over fixed-width components (hash-table mixing only —
/// the cross-run-stable content digests live in reuse/; these just spread
/// already-hashed words across buckets).
std::uint64_t
mix(std::initializer_list<std::uint64_t> words)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t w : words) {
        for (int i = 0; i < 8; ++i) {
            h ^= (w >> (8 * i)) & 0xffU;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

}  // namespace

std::uint64_t
exec_digest(int resolved_max_fused_qubits,
            std::uint64_t resolved_fused_diag_threshold, int backend_kind,
            int num_shards)
{
    return mix({static_cast<std::uint64_t>(resolved_max_fused_qubits),
                resolved_fused_diag_threshold,
                static_cast<std::uint64_t>(backend_kind),
                static_cast<std::uint64_t>(num_shards)});
}

std::uint64_t
plan_content_digest(const sim::CompiledSegment& plan)
{
    util::integrity::StreamDigest d;
    for (const sim::SegOp& op : plan.ops()) {
        d.absorb_word(static_cast<std::uint64_t>(op.kind));
        d.absorb_word(static_cast<std::uint64_t>(op.noisy) << 8 |
                      static_cast<std::uint64_t>(op.arity));
        d.absorb_word(static_cast<std::uint64_t>(op.q0) << 42 ^
                      static_cast<std::uint64_t>(op.q1) << 21 ^
                      static_cast<std::uint64_t>(op.q2));
        d.absorb_word(op.source_gates);
        // Matrix / diagonal payloads as IEEE-754 bit patterns
        // (std::complex<double> is layout-compatible with double[2]).
        d.absorb(reinterpret_cast<const double*>(op.matrix.data()),
                 op.matrix.size() * 2U);
        for (const sim::DiagTerm& t : op.diag) {
            d.absorb_word(static_cast<std::uint64_t>(t.mask0));
            d.absorb_word(static_cast<std::uint64_t>(t.mask1));
            d.absorb(reinterpret_cast<const double*>(t.d), 8U);
        }
        for (const int q : op.qubits) {
            d.absorb_word(static_cast<std::uint64_t>(q));
        }
        d.absorb_word(op.fallback_index);
        d.absorb_word(op.cluster_index);
    }
    return d.value();
}

std::uint64_t
approx_plan_bytes(const sim::CompiledSegment& plan)
{
    std::uint64_t bytes = sizeof(sim::CompiledSegment);
    for (const sim::SegOp& op : plan.ops()) {
        bytes += sizeof(sim::SegOp);
        bytes += op.matrix.size() * sizeof(sim::Complex);
        bytes += op.diag.size() * sizeof(sim::DiagTerm);
        bytes += op.qubits.size() * sizeof(int);
    }
    return bytes;
}

std::size_t
ReuseCache::PlanKeyHash::operator()(const PlanKey& k) const
{
    return static_cast<std::size_t>(
        mix({k.segment_hash, k.noise_digest, k.fusion_cap}));
}

std::size_t
ReuseCache::PrefixKeyHash::operator()(const PrefixKey& k) const
{
    return static_cast<std::size_t>(
        mix({k.segment_hash, k.noise_digest, k.seed, k.exec, k.child}));
}

std::shared_ptr<const sim::CompiledSegment>
ReuseCache::lookup_plan(const PlanKey& key)
{
    std::shared_ptr<const sim::CompiledSegment> plan;
    std::uint64_t expected = 0;
    std::uint64_t origin = 0;
    {
        util::MutexLock lock(mutex_);
        auto it = plans_.find(key);
        if (it == plans_.end()) {
            ++stats_.plan_misses;
            return nullptr;
        }
        ++stats_.plan_hits;
        lru_.splice(lru_.begin(), lru_, it->second);
        plan = it->second->plan;
        expected = it->second->content_digest;
        origin = it->second->origin;
    }
    // Re-digest outside the lock.  A corrupted plan recovers *silently*:
    // quarantine it and report a miss — recompilation reproduces the exact
    // plan, so unlike a poisoned prefix snapshot no retry is needed.
    if (plan_content_digest(*plan) != expected) {
        quarantine(/*erase_plan=*/true, key, PrefixKey{}, origin);
        util::MutexLock lock(mutex_);
        --stats_.plan_hits;
        ++stats_.plan_misses;
        return nullptr;
    }
    return plan;
}

void
ReuseCache::insert_plan(const PlanKey& key,
                        std::shared_ptr<const sim::CompiledSegment> plan,
                        std::uint64_t bytes, std::uint64_t origin)
{
    // Digested before the lock (an O(plan) pass over the payloads).
    const std::uint64_t content = plan_content_digest(*plan);
    util::MutexLock lock(mutex_);
    if (plans_.find(key) != plans_.end()) {
        return;
    }
    if (!make_room(bytes)) {
        ++stats_.declined;
        return;
    }
    Entry entry;
    entry.is_plan = true;
    entry.plan_key = key;
    entry.plan = std::move(plan);
    entry.bytes = bytes;
    entry.origin = origin;
    entry.content_digest = content;
    lru_.push_front(std::move(entry));
    plans_.emplace(key, lru_.begin());
    stats_.bytes_in_use += bytes;
    ++stats_.entries;
}

std::shared_ptr<const PrefixSnapshot>
ReuseCache::lookup_prefix(const PrefixKey& key)
{
    // Fires before the map is touched: a failed lease mutates nothing, the
    // leasing run unwinds, and the entry stays valid for other jobs.
    TQSIM_FAILPOINT("service.cache.lease");
    std::shared_ptr<const PrefixSnapshot> snap;
    std::uint64_t origin = 0;
    {
        util::MutexLock lock(mutex_);
        auto it = prefixes_.find(key);
        if (it == prefixes_.end()) {
            ++stats_.prefix_misses;
            return nullptr;
        }
        ++stats_.prefix_hits;
        lru_.splice(lru_.begin(), lru_, it->second);
        snap = it->second->prefix;
        origin = it->second->origin;
    }
    // Re-digest every lease, outside the lock (O(2^n) pass).  The digest
    // was taken at offer time from the producing run's live state, so any
    // bit flipped on the way into or while at rest in the cache surfaces
    // here — before a single job imports the amplitudes.
    const std::uint64_t actual = util::integrity::digest_doubles(
        reinterpret_cast<const double*>(snap->amplitudes.data()),
        snap->amplitudes.size() * 2U);
    if (actual != snap->digest) {
        quarantine(/*erase_plan=*/false, PlanKey{}, key, origin);
        throw util::IntegrityError(
            "reuse cache: prefix snapshot digest mismatch");
    }
    return snap;
}

void
ReuseCache::insert_prefix(const PrefixKey& key,
                          std::shared_ptr<const PrefixSnapshot> snapshot,
                          std::uint64_t expected_amplitudes,
                          std::uint64_t origin)
{
    // Fires before any mutation: a failed insert can never leave a
    // half-written entry behind (no poisoning by construction).
    TQSIM_FAILPOINT("service.cache.insert");
    util::MutexLock lock(mutex_);
    if (snapshot->amplitudes.size() != expected_amplitudes) {
        // A snapshot whose byte size disagrees with the key's execution
        // digest is a mis-built offer: reject it (don't assert) — caching
        // it would hand every later lease of this key a wrong-dimension
        // state.
        ++stats_.mis_sized;
        ++stats_.declined;
        return;
    }
    if (key.child >= config_.prefix_children_cap) {
        ++stats_.declined;
        return;
    }
    if (prefixes_.find(key) != prefixes_.end()) {
        return;
    }
    const std::uint64_t bytes =
        snapshot->amplitudes.size() * sizeof(sim::Complex) +
        sizeof(PrefixSnapshot);
    if (!make_room(bytes)) {
        ++stats_.declined;
        return;
    }
    Entry entry;
    entry.is_plan = false;
    entry.prefix_key = key;
    entry.prefix = std::move(snapshot);
    entry.bytes = bytes;
    entry.origin = origin;
    lru_.push_front(std::move(entry));
    prefixes_.emplace(key, lru_.begin());
    stats_.bytes_in_use += bytes;
    ++stats_.entries;
}

ReuseCache::Stats
ReuseCache::stats() const
{
    util::MutexLock lock(mutex_);
    return stats_;
}

std::uint64_t
ReuseCache::capacity_bytes() const
{
    util::MutexLock lock(mutex_);
    return capacity_bytes_;
}

void
ReuseCache::set_capacity_bytes(std::uint64_t bytes)
{
    util::MutexLock lock(mutex_);
    capacity_bytes_ = bytes;
    while (stats_.bytes_in_use > capacity_bytes_) {
        erase_entry(std::prev(lru_.end()));
        ++stats_.evictions;
    }
}

void
ReuseCache::invalidate_origin(std::uint64_t origin)
{
    if (origin == 0) {
        return;
    }
    util::MutexLock lock(mutex_);
    invalidate_origin_locked(origin);
}

void
ReuseCache::invalidate_origin_locked(std::uint64_t origin)
{
    if (origin == 0) {
        return;
    }
    for (auto it = lru_.begin(); it != lru_.end();) {
        auto next = std::next(it);
        if (it->origin == origin) {
            erase_entry(it);
            ++stats_.invalidated;
        }
        it = next;
    }
}

void
ReuseCache::quarantine(bool erase_plan, const PlanKey& plan_key,
                       const PrefixKey& prefix_key, std::uint64_t origin)
{
    util::MutexLock lock(mutex_);
    // The entry may have been evicted or already quarantined by a
    // concurrent lease between our unlock and now; only count real drops.
    if (erase_plan) {
        auto it = plans_.find(plan_key);
        if (it != plans_.end()) {
            erase_entry(it->second);
            ++stats_.quarantined;
        }
    } else {
        auto it = prefixes_.find(prefix_key);
        if (it != prefixes_.end()) {
            erase_entry(it->second);
            ++stats_.quarantined;
        }
    }
    // Everything the same attempt contributed is equally suspect (same
    // buffers, same window): drop it all.
    invalidate_origin_locked(origin);
}

bool
ReuseCache::make_room(std::uint64_t incoming_bytes)
{
    if (incoming_bytes > capacity_bytes_) {
        return false;
    }
    while (stats_.bytes_in_use + incoming_bytes > capacity_bytes_) {
        erase_entry(std::prev(lru_.end()));
        ++stats_.evictions;
    }
    return true;
}

void
ReuseCache::erase_entry(LruList::iterator it)
{
    if (it->is_plan) {
        plans_.erase(it->plan_key);
    } else {
        prefixes_.erase(it->prefix_key);
    }
    stats_.bytes_in_use -= it->bytes;
    --stats_.entries;
    lru_.erase(it);
}

}  // namespace tqsim::service
