#ifndef TQSIM_REUSE_REDUNDANCY_ELIMINATOR_H_
#define TQSIM_REUSE_REDUNDANCY_ELIMINATOR_H_

/**
 * @file
 * The inter-shot redundancy-elimination baseline of Li, Ding, and Xie
 * (DAC 2020), reproduced for the paper's Fig. 19 comparison.
 *
 * Their method searches the N sampled noisy-circuit instances for identical
 * prefixes and reuses the intermediate state wherever two instances agree on
 * every sampled noise operator so far.  The executed computation therefore
 * equals the number of distinct (gate, noise-tag) prefixes — the node count
 * of a trie over noise realizations.  As gate count grows, realizations stop
 * colliding and the method degenerates to the baseline, which is exactly the
 * crossover Fig. 19 shows against TQSim.
 *
 * This module computes the trie size by multinomial splitting of shot
 * groups level-by-level (no state vectors needed), plus TQSim's normalized
 * computation for the same workload.
 */

#include <cstdint>

#include "core/partitioner.h"
#include "noise/noise_model.h"
#include "sim/circuit.h"

namespace tqsim::reuse {

/** Result of the redundancy analysis for one circuit + noise model. */
struct RedundancyReport
{
    /** Shots analyzed. */
    std::uint64_t shots = 0;
    /** Circuit gate count. */
    std::uint64_t gates = 0;
    /** Distinct gate executions after prefix sharing (trie nodes). */
    std::uint64_t shared_gate_executions = 0;
    /** shared_gate_executions / (shots * gates); 1.0 = no sharing. */
    double normalized_computation = 0.0;
    /** 1 - normalized_computation (the DAC'20 paper's headline metric). */
    double redundancy_ratio = 0.0;
};

/**
 * Computes the Redun-Elim trie statistics for @p shots Monte-Carlo noise
 * realizations of @p circuit under @p model.
 *
 * Unitary-mixture channels (Pauli/depolarizing) use their exact branch
 * probabilities; general channels are approximated by their nominal error
 * rate with uniform branch choice (the DAC'20 method is defined for
 * stochastic operator insertion).
 */
RedundancyReport analyze_redundancy_elimination(const sim::Circuit& circuit,
                                                const noise::NoiseModel& model,
                                                std::uint64_t shots,
                                                std::uint64_t seed);

/**
 * TQSim's normalized computation for a partition plan: the tree's gate work
 * divided by the baseline's (shots * gates); copy overhead is added at
 * @p copy_cost_gates gate-equivalents per state copy.
 */
double tqsim_normalized_computation(const core::PartitionPlan& plan,
                                    double copy_cost_gates = 0.0);

}  // namespace tqsim::reuse

#endif  // TQSIM_REUSE_REDUNDANCY_ELIMINATOR_H_
