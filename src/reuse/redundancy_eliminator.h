#ifndef TQSIM_REUSE_REDUNDANCY_ELIMINATOR_H_
#define TQSIM_REUSE_REDUNDANCY_ELIMINATOR_H_

/**
 * @file
 * The inter-shot redundancy-elimination baseline of Li, Ding, and Xie
 * (DAC 2020), reproduced for the paper's Fig. 19 comparison.
 *
 * Their method searches the N sampled noisy-circuit instances for identical
 * prefixes and reuses the intermediate state wherever two instances agree on
 * every sampled noise operator so far.  The executed computation therefore
 * equals the number of distinct (gate, noise-tag) prefixes — the node count
 * of a trie over noise realizations.  As gate count grows, realizations stop
 * colliding and the method degenerates to the baseline, which is exactly the
 * crossover Fig. 19 shows against TQSim.
 *
 * This module computes the trie size by multinomial splitting of shot
 * groups level-by-level (no state vectors needed), plus TQSim's normalized
 * computation for the same workload.
 */

#include <cstdint>

#include "core/partitioner.h"
#include "noise/noise_model.h"
#include "sim/circuit.h"

namespace tqsim::reuse {

/** Result of the redundancy analysis for one circuit + noise model. */
struct RedundancyReport
{
    /** Shots analyzed. */
    std::uint64_t shots = 0;
    /** Circuit gate count. */
    std::uint64_t gates = 0;
    /** Distinct gate executions after prefix sharing (trie nodes). */
    std::uint64_t shared_gate_executions = 0;
    /** shared_gate_executions / (shots * gates); 1.0 = no sharing. */
    double normalized_computation = 0.0;
    /** 1 - normalized_computation (the DAC'20 paper's headline metric). */
    double redundancy_ratio = 0.0;
};

/**
 * Computes the Redun-Elim trie statistics for @p shots Monte-Carlo noise
 * realizations of @p circuit under @p model.
 *
 * Unitary-mixture channels (Pauli/depolarizing) use their exact branch
 * probabilities; general channels are approximated by their nominal error
 * rate with uniform branch choice (the DAC'20 method is defined for
 * stochastic operator insertion).
 */
RedundancyReport analyze_redundancy_elimination(const sim::Circuit& circuit,
                                                const noise::NoiseModel& model,
                                                std::uint64_t shots,
                                                std::uint64_t seed);

/**
 * TQSim's normalized computation for a partition plan: the tree's gate work
 * divided by the baseline's (shots * gates); copy overhead is added at
 * @p copy_cost_gates gate-equivalents per state copy.
 */
double tqsim_normalized_computation(const core::PartitionPlan& plan,
                                    double copy_cost_gates = 0.0);

/** @name Stable cross-run fingerprints
 *
 * 64-bit FNV-1a digests of circuit segments and noise models, used as keys
 * of the service layer's cross-request reuse cache
 * (service/reuse_cache.h).  Contract:
 *
 *  - **Stable across processes, hosts, and seeds**: the digest is a pure
 *    function of the hashed data (gate kinds, operand lists, the raw IEEE
 *    bit patterns of parameters/matrix entries) — no pointers, container
 *    addresses, or iteration-order dependence enters the hash, so the same
 *    circuit built in another process maps to the same key.  The golden
 *    values in tests/redundancy_test.cc pin this.
 *  - **Near-miss sensitive**: circuits differing in any gate kind, operand,
 *    parameter bit, or gate order produce distinct digests (up to the
 *    2^-64-scale collision probability of a 64-bit hash; the cache key
 *    structs keep circuit/noise/seed digests as separate words so
 *    collisions do not compound).
 *  - Semantically irrelevant attributes (circuit name, custom-unitary
 *    labels) are excluded, so renaming a circuit does not defeat sharing.
 * @{ */

/**
 * Digest of gates [ @p begin, @p end ) of @p circuit, including the circuit
 * width and the range length.  Two segments share a digest exactly when
 * they would compile to the same plan and evolve states identically:
 * same width, same gate kinds/operands/parameter bits in the same order.
 * Thread-safe (pure function).  @p end is clamped to circuit.size().
 */
std::uint64_t segment_fingerprint(const sim::Circuit& circuit,
                                  std::size_t begin, std::size_t end);

/** Digest of the whole circuit: segment_fingerprint over [0, size()). */
std::uint64_t circuit_fingerprint(const sim::Circuit& circuit);

/**
 * Digest of @p model: every channel's arity, Kraus-matrix bit patterns,
 * and nominal rate (in attachment order, 1q list then 2q list) plus the
 * readout flip probability.  Models whose trajectory behavior could differ
 * in any way hash differently.  Thread-safe (pure function).
 */
std::uint64_t noise_model_digest(const noise::NoiseModel& model);

/** @} */

}  // namespace tqsim::reuse

#endif  // TQSIM_REUSE_REDUNDANCY_ELIMINATOR_H_
