#include "reuse/redundancy_eliminator.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace tqsim::reuse {

namespace {

/** One stochastic-noise site: error probability and non-identity options. */
struct NoiseSite
{
    double error_probability;
    std::uint32_t options;  // number of distinguishable non-identity ops
};

/**
 * Collects the noise sites fired by each gate, in execution order.
 * Gate index g occupies sites [offsets[g], offsets[g+1]).
 */
struct SitePlan
{
    std::vector<NoiseSite> sites;
    std::vector<std::size_t> offsets;
};

SitePlan
build_site_plan(const sim::Circuit& circuit, const noise::NoiseModel& model)
{
    SitePlan plan;
    plan.offsets.reserve(circuit.size() + 1);
    plan.offsets.push_back(0);
    auto add_channel = [&plan](const noise::Channel& c, int times) {
        for (int i = 0; i < times; ++i) {
            std::uint32_t opts;
            double err;
            if (c.is_unitary_mixture()) {
                opts = static_cast<std::uint32_t>(c.kraus().size() - 1);
                err = 1.0 - c.mixture_probabilities().front();
            } else {
                opts = static_cast<std::uint32_t>(c.kraus().size() - 1);
                err = c.nominal_error_rate();
            }
            plan.sites.emplace_back(err, std::max(opts, 1u));
        }
    };
    for (const sim::Gate& g : circuit.gates()) {
        if (g.arity() == 1) {
            for (const noise::Channel& c : model.on_1q_gates()) {
                add_channel(c, 1);
            }
        } else {
            for (const noise::Channel& c : model.on_2q_gates()) {
                add_channel(c, c.arity() == 2 ? 1 : g.arity());
            }
        }
        plan.offsets.push_back(plan.sites.size());
    }
    return plan;
}

}  // namespace

RedundancyReport
analyze_redundancy_elimination(const sim::Circuit& circuit,
                               const noise::NoiseModel& model,
                               std::uint64_t shots, std::uint64_t seed)
{
    RedundancyReport report;
    report.shots = shots;
    report.gates = circuit.size();
    if (shots == 0 || circuit.empty()) {
        return report;
    }

    const SitePlan plan = build_site_plan(circuit, model);
    util::Rng rng(seed);

    // Level-by-level multinomial splitting.  `groups` holds the sizes of
    // shot groups that still share an identical noise-realization prefix.
    // A group of size 1 can never split again, so it contributes exactly one
    // trie node per remaining gate; we account for those analytically via
    // `singleton_tail` instead of carrying them.
    std::vector<std::uint64_t> groups{shots};
    std::uint64_t shared = 0;

    for (std::size_t g = 0; g < circuit.size(); ++g) {
        const std::size_t site_begin = plan.offsets[g];
        const std::size_t site_end = plan.offsets[g + 1];
        std::vector<std::uint64_t> next;
        next.reserve(groups.size() * 2);
        for (std::uint64_t size : groups) {
            // Sample a combined tag for each member across this gate's
            // noise sites; tag 0 at every site = error-free execution.
            // Tags are encoded mixed-radix into a 64-bit key.
            std::unordered_map<std::uint64_t, std::uint64_t> split;
            split.reserve(4);
            for (std::uint64_t member = 0; member < size; ++member) {
                std::uint64_t key = 0;
                for (std::size_t s = site_begin; s < site_end; ++s) {
                    const NoiseSite& site = plan.sites[s];
                    std::uint64_t tag = 0;
                    if (rng.uniform() < site.error_probability) {
                        tag = 1 + rng.uniform_u64(site.options);
                    }
                    key = key * (site.options + 1) + tag;
                }
                ++split[key];
            }
            // Each distinct tag = one shared execution of this gate.
            shared += split.size();
            for (const auto& [key, count] : split) {
                if (count >= 2) {
                    next.push_back(count);
                } else {
                    // Singleton: contributes one node per remaining gate.
                    shared += circuit.size() - g - 1;
                }
            }
        }
        groups = std::move(next);
        if (groups.empty()) {
            break;
        }
    }

    report.shared_gate_executions = shared;
    report.normalized_computation =
        static_cast<double>(shared) /
        (static_cast<double>(shots) * static_cast<double>(circuit.size()));
    report.redundancy_ratio = 1.0 - report.normalized_computation;
    return report;
}

double
tqsim_normalized_computation(const core::PartitionPlan& plan,
                             double copy_cost_gates)
{
    const std::vector<std::size_t> gates = plan.gates_per_level();
    const double shots = static_cast<double>(plan.tree.total_outcomes());
    double total_gates = 0.0;
    double tree_work = 0.0;
    for (std::size_t i = 0; i < gates.size(); ++i) {
        total_gates += static_cast<double>(gates[i]);
        tree_work += static_cast<double>(plan.tree.instances(i)) *
                     static_cast<double>(gates[i]);
    }
    // Copy overhead: charge one copy per intermediate-state consumer, i.e.
    // every node below level 0.  Level-0 nodes copy the |0...0> root, which
    // is the same initialization the baseline pays per shot, so it is
    // excluded to keep the two sides comparable.
    const double copies =
        static_cast<double>(plan.tree.total_nodes() - 1 -
                            plan.tree.instances(0)) *
        copy_cost_gates;
    return (tree_work + copies) / (shots * total_gates);
}

// ---------------------------------------------------------------------------
// Stable cross-run fingerprints
// ---------------------------------------------------------------------------

namespace {

/**
 * Byte-serial FNV-1a 64.  Everything absorbed is fixed-width data (enum
 * values widened to u64, IEEE-754 bit patterns), never memory addresses or
 * hash-table iteration order, which is what makes the digest identical
 * across processes and hosts.
 */
class Fnv1a
{
  public:
    void
    absorb_u64(std::uint64_t word)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (word >> (8 * i)) & 0xffU;
            hash_ *= 0x100000001b3ULL;
        }
    }

    void
    absorb_double(double value)
    {
        // Raw bit pattern: distinguishes -0.0 from 0.0 and every NaN
        // payload.  Over-distinguishing is safe for a cache key (a missed
        // share, never a wrong one).
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(value));
        std::memcpy(&bits, &value, sizeof(bits));
        absorb_u64(bits);
    }

    void
    absorb_matrix(const sim::Matrix& m)
    {
        absorb_u64(m.size());
        for (const sim::Complex& c : m) {
            absorb_double(c.real());
            absorb_double(c.imag());
        }
    }

    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

void
absorb_gate(Fnv1a& fnv, const sim::Gate& gate)
{
    fnv.absorb_u64(static_cast<std::uint64_t>(gate.kind()));
    fnv.absorb_u64(gate.qubits().size());
    for (int q : gate.qubits()) {
        fnv.absorb_u64(static_cast<std::uint64_t>(q));
    }
    fnv.absorb_u64(gate.params().size());
    for (double p : gate.params()) {
        fnv.absorb_double(p);
    }
    // Custom unitaries carry their semantics in the matrix, not the kind;
    // labels are display-only and deliberately excluded.
    if (gate.kind() == sim::GateKind::kUnitary1q ||
        gate.kind() == sim::GateKind::kUnitary2q ||
        gate.kind() == sim::GateKind::kUnitaryKq) {
        fnv.absorb_matrix(gate.matrix());
    }
}

void
absorb_channel(Fnv1a& fnv, const noise::Channel& channel)
{
    fnv.absorb_u64(static_cast<std::uint64_t>(channel.arity()));
    fnv.absorb_double(channel.nominal_error_rate());
    fnv.absorb_u64(channel.kraus().size());
    for (std::size_t i = 0; i < channel.kraus().size(); ++i) {
        fnv.absorb_matrix(channel.kraus().op(i));
    }
}

}  // namespace

std::uint64_t
segment_fingerprint(const sim::Circuit& circuit, std::size_t begin,
                    std::size_t end)
{
    end = std::min(end, circuit.size());
    begin = std::min(begin, end);
    Fnv1a fnv;
    fnv.absorb_u64(static_cast<std::uint64_t>(circuit.num_qubits()));
    fnv.absorb_u64(end - begin);
    for (std::size_t g = begin; g < end; ++g) {
        absorb_gate(fnv, circuit.gate(g));
    }
    return fnv.digest();
}

std::uint64_t
circuit_fingerprint(const sim::Circuit& circuit)
{
    return segment_fingerprint(circuit, 0, circuit.size());
}

std::uint64_t
noise_model_digest(const noise::NoiseModel& model)
{
    Fnv1a fnv;
    fnv.absorb_u64(model.on_1q_gates().size());
    for (const noise::Channel& c : model.on_1q_gates()) {
        absorb_channel(fnv, c);
    }
    fnv.absorb_u64(model.on_2q_gates().size());
    for (const noise::Channel& c : model.on_2q_gates()) {
        absorb_channel(fnv, c);
    }
    fnv.absorb_double(model.readout_flip_probability());
    return fnv.digest();
}

}  // namespace tqsim::reuse
