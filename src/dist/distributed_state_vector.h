#ifndef TQSIM_DIST_DISTRIBUTED_STATE_VECTOR_H_
#define TQSIM_DIST_DISTRIBUTED_STATE_VECTOR_H_

/**
 * @file
 * Simulated multi-node distributed state vector (qHiPSTER-style sharding).
 *
 * The 2^n amplitudes are split across `num_nodes` equal slices; node r owns
 * the amplitudes whose top log2(num_nodes) index bits equal r.  Qubits whose
 * bit lies inside a slice are **local**; the top bits that select the node
 * are **global**.  Gate dispatch mirrors a real distributed engine:
 *
 *  - gates acting only on local qubits run independently per node with zero
 *    communication;
 *  - diagonal gates never move amplitudes, so they run communication-free
 *    even on global qubits (each node scales its own slice);
 *  - any other gate touching a global qubit triggers a pairwise (or, with k
 *    global operands, 2^k-way) slice exchange, executed through the
 *    pluggable dist::Transport (in-process by default; an MPI transport
 *    drops in behind the same API) and accounted in its CommStats.
 *
 * All nodes live in one address space, so the engine is bit-exact against
 * the single-node simulator — that is what tests/distributed_test.cc checks.
 * The reuse-tree executor drives this engine through
 * dist::ShardedStateBackend (sharded_backend.h).
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dist/transport.h"
#include "sim/circuit.h"
#include "sim/gate.h"
#include "sim/state_vector.h"
#include "sim/types.h"

namespace tqsim::dist {

/**
 * An n-qubit pure state sharded over a power-of-two node count.
 *
 * Requires `num_nodes` to be a power of two and every node to hold at least
 * two amplitudes (one local qubit), i.e. num_nodes <= 2^(num_qubits-1).
 */
class DistributedStateVector
{
  public:
    /**
     * Constructs |0...0> sharded across @p num_nodes nodes.  Slice exchange
     * runs through @p transport when given (not owned; must outlive the
     * state — the sharded backend shares one transport across every state
     * of a run), else through a privately owned InProcessTransport.
     * @throws std::invalid_argument on invalid node/qubit combinations.
     */
    DistributedStateVector(int num_qubits, int num_nodes,
                           Transport* transport = nullptr);

    /** Slices are heavyweight; copy via clone_of / copy_amplitudes_from
     *  instead of implicitly. */
    DistributedStateVector(const DistributedStateVector&) = delete;
    DistributedStateVector& operator=(const DistributedStateVector&) = delete;

    /**
     * Freshly allocated copy of @p src's amplitudes in one pass (no
     * zero-initialization before the overwrite — the snapshot cold path).
     * Exchange runs through @p transport (nullptr = a privately owned
     * InProcessTransport), NOT through src's.
     */
    static DistributedStateVector clone_of(const DistributedStateVector& src,
                                           Transport* transport = nullptr);
    DistributedStateVector(DistributedStateVector&&) noexcept = default;
    DistributedStateVector& operator=(DistributedStateVector&&) noexcept =
        default;

    /** Returns the register width. */
    int num_qubits() const { return num_qubits_; }

    /** Returns the node count. */
    int num_nodes() const { return num_nodes_; }

    /** Returns the number of local (in-slice) qubits. */
    int local_qubits() const { return local_qubits_; }

    /** Returns the number of global (node-selecting) qubits. */
    int global_qubits() const { return num_qubits_ - local_qubits_; }

    /** Returns the amplitude count of one slice (2^local_qubits). */
    sim::Index slice_size() const { return sim::dim(local_qubits_); }

    /** Returns the byte size of one slice. */
    std::uint64_t slice_bytes() const
    {
        return sim::state_vector_bytes(local_qubits_);
    }

    /** Returns node @p r's slice (amplitudes with top index bits == r). */
    const sim::StateVector& slice(int r) const { return slices_.at(r); }

    /** Mutable slice array (backend kernels; sizes are invariant). */
    std::vector<sim::StateVector>& slices() { return slices_; }

    /** Immutable slice array. */
    const std::vector<sim::StateVector>& slices() const { return slices_; }

    /** Amplitude at full (global) basis index @p i. */
    const sim::Complex&
    global_amp(sim::Index i) const
    {
        return slices_[static_cast<std::size_t>(i >> local_qubits_)]
                      [i & (slice_size() - 1)];
    }

    /** Overwrites the amplitudes with @p src's (same shape required),
     *  reusing this state's buffers — the sharded snapshot copy. */
    void copy_amplitudes_from(const DistributedStateVector& src);

    /** Applies @p gate, choosing the local / diagonal / exchange path. */
    void apply_gate(const sim::Gate& gate);

    /** Applies every gate of @p circuit in order. */
    void apply_circuit(const sim::Circuit& circuit);

    /**
     * Runs @p fn over every 2^k-node exchange group spanned by the global
     * members of @p qubits[0..arity): each group's slices are gathered
     * through the transport into a contiguous (local_qubits + k)-qubit
     * staging register, @p fn(staging, mapped) applies the operation —
     * mapped[i] is qubits[i]'s position in the staging register, as
     * computed by staging_mapping — and the slices scatter back.  Accounts
     * exactly one exchange pass.  Requires at least one global operand.
     */
    void exchange_groups(
        const int* qubits, int arity,
        const std::function<void(sim::StateVector&, const int*)>& fn);

    /**
     * The operand remapping exchange_groups uses: local operands keep their
     * index; the j-th global operand (scan order) maps to local_qubits + j.
     * Fills mapped[0..arity) and appends the global operands (original
     * qubit numbers, scan order) to @p global_ops; returns their count k.
     */
    static int staging_mapping(const int* qubits, int arity, int local_qubits,
                               int* mapped, std::vector<int>* global_ops);

    /** Reassembles the full 2^n-amplitude state (tests / small n only). */
    sim::StateVector gather() const;

    /**
     * Returns <psi|psi> using the same fixed-block reduction over the
     * global index order as sim::StateVector::norm_squared — bit-identical
     * to the dense engine at any thread count.
     */
    double norm_squared() const;

    /** The transport slice exchange runs through. */
    Transport& transport() { return *transport_; }
    const Transport& transport() const { return *transport_; }

    /** Returns the transport's accumulated communication counters.  Shared
     *  with every other state on the same transport. */
    CommStats comm_stats() const { return transport_->stats(); }

    /** Zeroes the transport's communication counters. */
    void reset_comm_stats() { transport_->reset_stats(); }

  private:
    /** clone_of's one-pass backing constructor. */
    DistributedStateVector(int num_qubits, int num_nodes,
                           Transport* transport,
                           const std::vector<sim::StateVector>& slices);

    /** Points transport_ at @p transport, or at a freshly owned
     *  InProcessTransport when null. */
    void init_transport(Transport* transport);

    void apply_local(const sim::Gate& gate);
    void apply_diagonal(const sim::Gate& gate);
    void apply_exchange(const sim::Gate& gate);

    int num_qubits_;
    int num_nodes_;
    int local_qubits_;
    std::vector<sim::StateVector> slices_;
    /** Set when the default in-process transport is privately owned. */
    std::unique_ptr<Transport> owned_transport_;
    Transport* transport_;
};

/**
 * Validates a (num_qubits, num_nodes) sharding and returns the local qubit
 * count.  @throws std::invalid_argument if @p num_nodes is not a power of
 * two, or the slices would hold fewer than two amplitudes each.
 */
int sharding_local_qubits(int num_qubits, int num_nodes);

/**
 * Counts the gates of @p circuit that would trigger an exchange pass when
 * sharded over @p num_nodes nodes: gates touching a global qubit that are
 * not diagonal.  Validation matches DistributedStateVector's constructor
 * (num_nodes == 1 is additionally allowed and yields zero passes).
 */
std::uint64_t count_global_gate_passes(const sim::Circuit& circuit,
                                       int num_qubits, int num_nodes);

}  // namespace tqsim::dist

#endif  // TQSIM_DIST_DISTRIBUTED_STATE_VECTOR_H_
