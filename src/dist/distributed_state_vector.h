#ifndef TQSIM_DIST_DISTRIBUTED_STATE_VECTOR_H_
#define TQSIM_DIST_DISTRIBUTED_STATE_VECTOR_H_

/**
 * @file
 * Simulated multi-node distributed state vector (qHiPSTER-style sharding).
 *
 * The 2^n amplitudes are split across `num_nodes` equal slices; node r owns
 * the amplitudes whose top log2(num_nodes) index bits equal r.  Qubits whose
 * bit lies inside a slice are **local**; the top bits that select the node
 * are **global**.  Gate dispatch mirrors a real distributed engine:
 *
 *  - gates acting only on local qubits run independently per node with zero
 *    communication;
 *  - diagonal gates never move amplitudes, so they run communication-free
 *    even on global qubits (each node scales its own slice);
 *  - any other gate touching a global qubit triggers a pairwise (or, with k
 *    global operands, 2^k-way) slice exchange, which is executed for real in
 *    this process and accounted in CommStats.
 *
 * All nodes live in one address space, so the engine is bit-exact against
 * the single-node simulator — that is what tests/distributed_test.cc checks.
 */

#include <cstdint>
#include <vector>

#include "sim/circuit.h"
#include "sim/gate.h"
#include "sim/state_vector.h"
#include "sim/types.h"

namespace tqsim::dist {

/** Communication counters accumulated by global-gate exchanges. */
struct CommStats
{
    /** Payload bytes moved between nodes. */
    std::uint64_t bytes = 0;
    /** Point-to-point messages (one per slice sent). */
    std::uint64_t messages = 0;
    /** Gates that required an exchange pass. */
    std::uint64_t global_gates = 0;
};

/**
 * An n-qubit pure state sharded over a power-of-two node count.
 *
 * Requires `num_nodes` to be a power of two and every node to hold at least
 * two amplitudes (one local qubit), i.e. num_nodes <= 2^(num_qubits-1).
 */
class DistributedStateVector
{
  public:
    /** Constructs |0...0> sharded across @p num_nodes nodes.
     *  @throws std::invalid_argument on invalid node/qubit combinations. */
    DistributedStateVector(int num_qubits, int num_nodes);

    /** Returns the register width. */
    int num_qubits() const { return num_qubits_; }

    /** Returns the node count. */
    int num_nodes() const { return num_nodes_; }

    /** Returns the number of local (in-slice) qubits. */
    int local_qubits() const { return local_qubits_; }

    /** Returns the number of global (node-selecting) qubits. */
    int global_qubits() const { return num_qubits_ - local_qubits_; }

    /** Returns the amplitude count of one slice (2^local_qubits). */
    sim::Index slice_size() const { return sim::dim(local_qubits_); }

    /** Returns the byte size of one slice. */
    std::uint64_t slice_bytes() const
    {
        return sim::state_vector_bytes(local_qubits_);
    }

    /** Returns node @p r's slice (amplitudes with top index bits == r). */
    const sim::StateVector& slice(int r) const { return slices_.at(r); }

    /** Applies @p gate, choosing the local / diagonal / exchange path. */
    void apply_gate(const sim::Gate& gate);

    /** Applies every gate of @p circuit in order. */
    void apply_circuit(const sim::Circuit& circuit);

    /** Reassembles the full 2^n-amplitude state (tests / small n only). */
    sim::StateVector gather() const;

    /** Returns <psi|psi> summed across all slices. */
    double norm_squared() const;

    /** Returns the accumulated communication counters. */
    const CommStats& comm_stats() const { return stats_; }

    /** Zeroes the communication counters. */
    void reset_comm_stats() { stats_ = CommStats{}; }

  private:
    void apply_local(const sim::Gate& gate);
    void apply_diagonal(const sim::Gate& gate);
    void apply_exchange(const sim::Gate& gate);

    int num_qubits_;
    int num_nodes_;
    int local_qubits_;
    std::vector<sim::StateVector> slices_;
    CommStats stats_;
};

/**
 * Validates a (num_qubits, num_nodes) sharding and returns the local qubit
 * count.  @throws std::invalid_argument if @p num_nodes is not a power of
 * two, or the slices would hold fewer than two amplitudes each.
 */
int sharding_local_qubits(int num_qubits, int num_nodes);

/**
 * Counts the gates of @p circuit that would trigger an exchange pass when
 * sharded over @p num_nodes nodes: gates touching a global qubit that are
 * not diagonal.  Validation matches DistributedStateVector's constructor
 * (num_nodes == 1 is additionally allowed and yields zero passes).
 */
std::uint64_t count_global_gate_passes(const sim::Circuit& circuit,
                                       int num_qubits, int num_nodes);

}  // namespace tqsim::dist

#endif  // TQSIM_DIST_DISTRIBUTED_STATE_VECTOR_H_
