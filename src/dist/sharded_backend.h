#ifndef TQSIM_DIST_SHARDED_BACKEND_H_
#define TQSIM_DIST_SHARDED_BACKEND_H_

/**
 * @file
 * The qHiPSTER-style sharded engine behind the sim::StateBackend seam: the
 * reuse-tree executor and trajectory layer drive DistributedStateVector
 * states exactly like dense ones, with slice exchange flowing through the
 * backend's dist::Transport.
 *
 * Segment lowering (prepare) routes every compiled op once per tree level:
 *
 *  - ops whose operands are all local run per-slice with zero communication
 *    (including kDenseKq fusion clusters confined to local qubits);
 *  - diagonal batches and controlled phases run communication-free even on
 *    global qubits (each node scales its own slice by rank-selected
 *    factors, mirroring the dense kernels' per-amplitude arithmetic);
 *  - controlled ops whose *controls* are global but whose data qubits are
 *    local (CX / CCX / controlled-U) run comm-free on the rank-selected
 *    half/quarter of the nodes — a real distributed engine's standard
 *    trick, and one the legacy gate-at-a-time path does not exploit;
 *  - fusion clusters crossing the slice boundary never add exchange
 *    passes: a cluster whose members are comm-free solo is split back and
 *    replayed gate by gate, and a cluster containing genuinely-global
 *    members applies its whole dense product in ONE exchange pass (at
 *    most — often fewer than — the passes its members would have paid);
 *  - only genuinely global ops (data motion across slices) trigger a
 *    transport exchange pass.
 *
 * Equivalence contract: reductions and sampling reproduce the dense
 * kernels' fixed-block order and per-amplitude arithmetic, so a reuse-tree
 * run on this backend yields bit-identical distributions, raw outcomes,
 * RNG streams, and deterministic ExecStats counters to DenseStateBackend
 * at every thread count (tests/state_backend_test.cc pins this).  One
 * carve-out: a *split* boundary-crossing cluster replays its members
 * individually, re-associating amplitudes at the 1e-12 scale against the
 * dense backend's single fused pass — sampled outcomes, RNG streams, and
 * all deterministic counters still agree (same compiled plan on both
 * sides; the fused-run suites in tests/state_backend_test.cc pin it).
 */

#include <memory>
#include <vector>

#include "dist/distributed_state_vector.h"
#include "dist/transport.h"
#include "sim/state_backend.h"

namespace tqsim::dist {

/** Sharded state: one DistributedStateVector.  Public so tests can reach
 *  the slices of a sharded run. */
class ShardedState final : public sim::BackendState
{
  public:
    explicit ShardedState(DistributedStateVector dsv) : dsv_(std::move(dsv))
    {
    }

    DistributedStateVector& dsv() { return dsv_; }
    const DistributedStateVector& dsv() const { return dsv_; }

  private:
    DistributedStateVector dsv_;
};

/**
 * StateBackend over `num_shards` simulated nodes sharing one Transport.
 *
 * Every state of a run (root + snapshots) exchanges slices through the same
 * transport, so its CommStats aggregate the run's real communication; the
 * executor resets them per run and reports them in ExecStats.
 */
class ShardedStateBackend final : public sim::StateBackend
{
  public:
    /**
     * @p transport: exchange implementation shared by all states (not
     * owned; must outlive the backend).  Null = a privately owned
     * InProcessTransport.  @p fused_diag_min: see
     * sim::BackendConfig::fused_diag_threshold (compared against the
     * *global* amplitude count, matching the dense dispatch decision).
     */
    ShardedStateBackend(int num_qubits, int num_shards,
                        Transport* transport = nullptr,
                        sim::Index fused_diag_min = 0);

    const char* name() const override { return "sharded"; }
    int num_qubits() const override { return num_qubits_; }
    int num_shards() const { return num_shards_; }
    std::uint64_t state_bytes() const override
    {
        return sim::state_vector_bytes(num_qubits_);
    }
    Transport& transport() { return *transport_; }

    std::unique_ptr<sim::StateArena> make_arena(bool use_pool) override;
    std::unique_ptr<sim::PreparedSegment> prepare(
        const sim::CompiledSegment& segment) override;
    void apply_op(sim::BackendState& state,
                  const sim::PreparedSegment& segment,
                  std::size_t op_index) override;
    void apply_gate(sim::BackendState& state, const sim::Gate& gate) override;
    double kraus_probability(const sim::BackendState& state,
                             const int* qubits, int arity,
                             const sim::Matrix& k) const override;
    void apply_matrix(sim::BackendState& state, const int* qubits, int arity,
                      const sim::Matrix& m) override;
    void scale(sim::BackendState& state, sim::Complex factor) override;
    sim::Index sample_once(const sim::BackendState& state,
                           util::Rng& rng) const override;
    /** Concatenates the slices in node order — node r owns the amplitudes
     *  whose top log2(num_shards) index bits equal r, so the concatenation
     *  IS the canonical global-index-order array (no arithmetic). */
    void export_amplitudes(const sim::BackendState& state,
                           std::vector<sim::Complex>* out) const override;
    /** Scatters a canonical array back into the slices (inverse of
     *  export_amplitudes; no transport traffic — imports are local). */
    void import_amplitudes(sim::BackendState& state,
                           const std::vector<sim::Complex>& amps) override;
    /** Zeroes every slice and sets the global |0...0> amplitude (slice 0,
     *  index 0) — in place, no transport traffic. */
    void reset_state(sim::BackendState& state) override;
    /** Streams the per-slice digests in node order — slice concatenation is
     *  the canonical global-index-order array, so the value is bit-equal to
     *  the dense backend's digest of the same state with zero amplitude
     *  traffic. */
    std::uint64_t state_digest(const sim::BackendState& state) const override;
    double norm_squared(const sim::BackendState& state) const override;
    /** Arms/disarms the shared transport's exchange verification from the
     *  run's integrity level. */
    void set_integrity(const util::IntegrityOptions& options) override
    {
        transport_->set_verify(util::integrity_enabled(options));
    }

    void reset_comm_stats() override { transport_->reset_stats(); }
    sim::CommCounters comm_stats() const override
    {
        const CommStats s = transport_->stats();
        return {s.bytes, s.messages, s.global_gates};
    }

  private:
    int num_qubits_;
    int num_shards_;
    int local_qubits_;
    std::unique_ptr<Transport> owned_transport_;
    Transport* transport_;
    sim::Index fused_diag_min_;
};

}  // namespace tqsim::dist

#endif  // TQSIM_DIST_SHARDED_BACKEND_H_
