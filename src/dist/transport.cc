#include "dist/transport.h"

#include <algorithm>

#include "util/failpoint.h"
#include "util/integrity.h"

namespace tqsim::dist {

void
InProcessTransport::gather_slices(const std::vector<sim::StateVector>& slices,
                                  const std::vector<int>& members,
                                  sim::StateVector& staging,
                                  sim::Index slice_dim)
{
    // Fires before any slice moves, so a failed exchange never leaves the
    // staging buffer half-written (the state itself is untouched either
    // way; the run unwinds and the service retries).
    TQSIM_FAILPOINT("dist.transport.gather");
    const bool verify = verify_enabled();
    util::integrity::StreamDigest sent;
    for (std::size_t j = 0; j < members.size(); ++j) {
        const sim::Complex* src = slices[members[j]].data();
        if (verify) {
            sent.absorb(reinterpret_cast<const double*>(src),
                        static_cast<std::size_t>(slice_dim) * 2U);
        }
        sim::Complex* dst =
            staging.data() + static_cast<sim::Index>(j) * slice_dim;
        std::copy(src, src + slice_dim, dst);
    }
    // Corruption-mode fail point: a bit flip landing in the staging buffer
    // after the exchange — where a network/DMA error would.  Fires after
    // the copies but before verification, so the detector below is held to
    // catching exactly what the injector breaks.
    TQSIM_FAILPOINT_CORRUPT(
        "dist.transport.gather", staging.data(),
        members.size() * static_cast<std::size_t>(slice_dim) *
            sizeof(sim::Complex));
    if (verify) {
        const std::uint64_t received = util::integrity::digest_doubles(
            reinterpret_cast<const double*>(staging.data()),
            members.size() * static_cast<std::size_t>(slice_dim) * 2U);
        if (received != sent.value()) {
            // The state's own slices are still intact (scatter has not
            // run), so the attempt unwinds clean and retries.
            throw util::IntegrityError(
                "transport gather: staging digest mismatch");
        }
    }
}

void
InProcessTransport::scatter_slices(const sim::StateVector& staging,
                                   const std::vector<int>& members,
                                   std::vector<sim::StateVector>& slices,
                                   sim::Index slice_dim)
{
    TQSIM_FAILPOINT("dist.transport.scatter");
    for (std::size_t j = 0; j < members.size(); ++j) {
        const sim::Complex* src =
            staging.data() + static_cast<sim::Index>(j) * slice_dim;
        std::copy(src, src + slice_dim, slices[members[j]].data());
    }
}

}  // namespace tqsim::dist
