#include "dist/transport.h"

#include <algorithm>

#include "util/failpoint.h"

namespace tqsim::dist {

void
InProcessTransport::gather_slices(const std::vector<sim::StateVector>& slices,
                                  const std::vector<int>& members,
                                  sim::StateVector& staging,
                                  sim::Index slice_dim)
{
    // Fires before any slice moves, so a failed exchange never leaves the
    // staging buffer half-written (the state itself is untouched either
    // way; the run unwinds and the service retries).
    TQSIM_FAILPOINT("dist.transport.gather");
    for (std::size_t j = 0; j < members.size(); ++j) {
        const sim::Complex* src = slices[members[j]].data();
        sim::Complex* dst =
            staging.data() + static_cast<sim::Index>(j) * slice_dim;
        std::copy(src, src + slice_dim, dst);
    }
}

void
InProcessTransport::scatter_slices(const sim::StateVector& staging,
                                   const std::vector<int>& members,
                                   std::vector<sim::StateVector>& slices,
                                   sim::Index slice_dim)
{
    TQSIM_FAILPOINT("dist.transport.scatter");
    for (std::size_t j = 0; j < members.size(); ++j) {
        const sim::Complex* src =
            staging.data() + static_cast<sim::Index>(j) * slice_dim;
        std::copy(src, src + slice_dim, slices[members[j]].data());
    }
}

}  // namespace tqsim::dist
