#include "dist/distributed_state_vector.h"

#include <stdexcept>

#include "sim/gate_kernels.h"

namespace tqsim::dist {

namespace {

/** Returns log2(v) if v is a positive power of two, -1 otherwise. */
int
log2_exact(int v)
{
    if (v <= 0 || (v & (v - 1)) != 0) {
        return -1;
    }
    int bits = 0;
    while ((1 << bits) < v) {
        ++bits;
    }
    return bits;
}

}  // namespace

int
sharding_local_qubits(int num_qubits, int num_nodes)
{
    const int node_bits = log2_exact(num_nodes);
    if (node_bits < 0) {
        throw std::invalid_argument(
            "num_nodes must be a positive power of two");
    }
    const int local = num_qubits - node_bits;
    if (num_qubits < 1 || local < 1) {
        throw std::invalid_argument(
            "each node must hold at least two amplitudes "
            "(num_nodes <= 2^(num_qubits-1))");
    }
    return local;
}

DistributedStateVector::DistributedStateVector(int num_qubits, int num_nodes)
    : num_qubits_(num_qubits),
      num_nodes_(num_nodes),
      local_qubits_(sharding_local_qubits(num_qubits, num_nodes))
{
    slices_.reserve(static_cast<std::size_t>(num_nodes_));
    for (int r = 0; r < num_nodes_; ++r) {
        slices_.emplace_back(local_qubits_);
        if (r != 0) {
            // Only node 0 holds the |0...0> amplitude.
            slices_.back()[0] = sim::Complex{0.0, 0.0};
        }
    }
}

void
DistributedStateVector::apply_gate(const sim::Gate& gate)
{
    bool any_global = false;
    for (int q : gate.qubits()) {
        if (q < 0 || q >= num_qubits_) {
            throw std::out_of_range("gate qubit outside register");
        }
        any_global = any_global || q >= local_qubits_;
    }
    if (!any_global) {
        apply_local(gate);
    } else if (gate.is_diagonal()) {
        apply_diagonal(gate);
    } else {
        apply_exchange(gate);
    }
}

void
DistributedStateVector::apply_circuit(const sim::Circuit& circuit)
{
    if (circuit.num_qubits() != num_qubits_) {
        throw std::invalid_argument("circuit width mismatch");
    }
    for (const sim::Gate& g : circuit.gates()) {
        apply_gate(g);
    }
}

void
DistributedStateVector::apply_local(const sim::Gate& gate)
{
    // Every gate qubit indexes inside the slice, and the gate acts
    // identically on each slice: no amplitude crosses a node boundary.
    for (sim::StateVector& s : slices_) {
        sim::apply_gate(s, gate);
    }
}

void
DistributedStateVector::apply_diagonal(const sim::Gate& gate)
{
    // diag(M) multiplies each amplitude by the entry selected by the gate
    // qubits' bits of the *full* index; global bits come from the node rank.
    const sim::Matrix m = gate.matrix();
    const std::size_t d = std::size_t{1} << gate.arity();
    const sim::Index local_dim = slice_size();
    for (int r = 0; r < num_nodes_; ++r) {
        sim::StateVector& s = slices_[r];
        for (sim::Index i = 0; i < local_dim; ++i) {
            const sim::Index full =
                (static_cast<sim::Index>(r) << local_qubits_) | i;
            std::size_t basis = 0;
            for (int j = 0; j < gate.arity(); ++j) {
                basis |= ((full >> gate.qubits()[j]) & 1u) << j;
            }
            s[i] *= m[basis * d + basis];
        }
    }
}

void
DistributedStateVector::apply_exchange(const sim::Gate& gate)
{
    // Global qubits of this gate, as node-rank bit positions.
    std::vector<int> global_ops;  // gate operands that are global
    for (int q : gate.qubits()) {
        if (q >= local_qubits_) {
            global_ops.push_back(q);
        }
    }
    const int k = static_cast<int>(global_ops.size());
    const int group_size = 1 << k;

    // Accounting: nodes form groups of 2^k; within a group every node ships
    // its slice once so the group jointly holds all needed amplitude tuples.
    // Per pass the whole state crosses the network exactly once.
    stats_.bytes += static_cast<std::uint64_t>(num_nodes_) * slice_bytes();
    stats_.messages += static_cast<std::uint64_t>(num_nodes_);
    stats_.global_gates += 1;

    // Remap the gate onto a (local + k)-qubit combined register: local
    // operands keep their index; global operand j moves to local_qubits_+j.
    std::vector<int> mapping(static_cast<std::size_t>(num_qubits_));
    for (int q = 0; q < num_qubits_; ++q) {
        mapping[q] = q;
    }
    for (int j = 0; j < k; ++j) {
        mapping[global_ops[j]] = local_qubits_ + j;
    }
    const sim::Gate combined_gate = gate.remapped(mapping);

    // Node-rank bits that vary within one group.
    std::vector<int> rank_bits(global_ops.size());
    for (int j = 0; j < k; ++j) {
        rank_bits[j] = global_ops[j] - local_qubits_;
    }
    int group_mask = 0;
    for (int b : rank_bits) {
        group_mask |= 1 << b;
    }

    const sim::Index local_dim = slice_size();
    for (int base = 0; base < num_nodes_; ++base) {
        if ((base & group_mask) != 0) {
            continue;  // not the group's lowest-rank member
        }
        // Member ranks: spread the k combined-index bits into rank bits.
        std::vector<int> members(static_cast<std::size_t>(group_size));
        for (int j = 0; j < group_size; ++j) {
            int rank = base;
            for (int b = 0; b < k; ++b) {
                if ((j >> b) & 1) {
                    rank |= 1 << rank_bits[b];
                }
            }
            members[j] = rank;
        }
        // Gather the group's slices into one (local + k)-qubit state ...
        sim::StateVector comb(local_qubits_ + k);
        for (int j = 0; j < group_size; ++j) {
            const sim::StateVector& src = slices_[members[j]];
            const sim::Index offset = static_cast<sim::Index>(j)
                                      << local_qubits_;
            for (sim::Index i = 0; i < local_dim; ++i) {
                comb[offset | i] = src[i];
            }
        }
        // ... apply the remapped gate with the ordinary kernels ...
        sim::apply_gate(comb, combined_gate);
        // ... and scatter the slices back.
        for (int j = 0; j < group_size; ++j) {
            sim::StateVector& dst = slices_[members[j]];
            const sim::Index offset = static_cast<sim::Index>(j)
                                      << local_qubits_;
            for (sim::Index i = 0; i < local_dim; ++i) {
                dst[i] = comb[offset | i];
            }
        }
    }
}

sim::StateVector
DistributedStateVector::gather() const
{
    sim::StateVector full(num_qubits_);
    const sim::Index local_dim = slice_size();
    for (int r = 0; r < num_nodes_; ++r) {
        const sim::Index offset = static_cast<sim::Index>(r) << local_qubits_;
        for (sim::Index i = 0; i < local_dim; ++i) {
            full[offset | i] = slices_[r][i];
        }
    }
    return full;
}

double
DistributedStateVector::norm_squared() const
{
    double total = 0.0;
    for (const sim::StateVector& s : slices_) {
        total += s.norm_squared();
    }
    return total;
}

std::uint64_t
count_global_gate_passes(const sim::Circuit& circuit, int num_qubits,
                         int num_nodes)
{
    if (num_nodes == 1) {
        return 0;  // everything is local on a single node
    }
    const int local = sharding_local_qubits(num_qubits, num_nodes);
    std::uint64_t passes = 0;
    for (const sim::Gate& g : circuit.gates()) {
        if (g.is_diagonal()) {
            continue;
        }
        for (int q : g.qubits()) {
            if (q >= local) {
                ++passes;
                break;
            }
        }
    }
    return passes;
}

}  // namespace tqsim::dist
