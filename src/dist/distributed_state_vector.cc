#include "dist/distributed_state_vector.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "sim/gate_kernels.h"
#include "sim/parallel.h"
#include "util/assert.h"

namespace tqsim::dist {

namespace {

/** Returns log2(v) if v is a positive power of two, -1 otherwise. */
int
log2_exact(int v)
{
    if (v <= 0 || (v & (v - 1)) != 0) {
        return -1;
    }
    int bits = 0;
    while ((1 << bits) < v) {
        ++bits;
    }
    return bits;
}

}  // namespace

int
sharding_local_qubits(int num_qubits, int num_nodes)
{
    const int node_bits = log2_exact(num_nodes);
    if (node_bits < 0) {
        throw std::invalid_argument(
            "num_nodes must be a positive power of two");
    }
    const int local = num_qubits - node_bits;
    if (num_qubits < 1 || local < 1) {
        throw std::invalid_argument(
            "each node must hold at least two amplitudes "
            "(num_nodes <= 2^(num_qubits-1))");
    }
    return local;
}

void
DistributedStateVector::init_transport(Transport* transport)
{
    if (transport == nullptr) {
        owned_transport_ = std::make_unique<InProcessTransport>();
        transport_ = owned_transport_.get();
    } else {
        transport_ = transport;
    }
}

DistributedStateVector::DistributedStateVector(int num_qubits, int num_nodes,
                                               Transport* transport)
    : num_qubits_(num_qubits),
      num_nodes_(num_nodes),
      local_qubits_(sharding_local_qubits(num_qubits, num_nodes))
{
    init_transport(transport);
    slices_.reserve(static_cast<std::size_t>(num_nodes_));
    for (int r = 0; r < num_nodes_; ++r) {
        slices_.emplace_back(local_qubits_);
        if (r != 0) {
            // Only node 0 holds the |0...0> amplitude.
            slices_.back()[0] = sim::Complex{0.0, 0.0};
        }
    }
}

DistributedStateVector::DistributedStateVector(
    int num_qubits, int num_nodes, Transport* transport,
    const std::vector<sim::StateVector>& slices)
    : num_qubits_(num_qubits),
      num_nodes_(num_nodes),
      local_qubits_(sharding_local_qubits(num_qubits, num_nodes)),
      slices_(slices)
{
    init_transport(transport);
}

DistributedStateVector
DistributedStateVector::clone_of(const DistributedStateVector& src,
                                 Transport* transport)
{
    return DistributedStateVector(src.num_qubits_, src.num_nodes_, transport,
                                  src.slices_);
}

void
DistributedStateVector::copy_amplitudes_from(const DistributedStateVector& src)
{
    if (src.num_qubits_ != num_qubits_ || src.num_nodes_ != num_nodes_) {
        throw std::invalid_argument(
            "copy_amplitudes_from: shape mismatch");
    }
    // Copy-assignment into the existing slices reuses their buffers: no
    // allocation, just the memcpy the snapshot semantically requires.
    for (int r = 0; r < num_nodes_; ++r) {
        slices_[r] = src.slices_[r];
    }
}

void
DistributedStateVector::apply_gate(const sim::Gate& gate)
{
    bool any_global = false;
    for (int q : gate.qubits()) {
        if (q < 0 || q >= num_qubits_) {
            throw std::out_of_range("gate qubit outside register");
        }
        any_global = any_global || q >= local_qubits_;
    }
    if (!any_global) {
        apply_local(gate);
    } else if (gate.is_diagonal()) {
        apply_diagonal(gate);
    } else {
        apply_exchange(gate);
    }
}

void
DistributedStateVector::apply_circuit(const sim::Circuit& circuit)
{
    if (circuit.num_qubits() != num_qubits_) {
        throw std::invalid_argument("circuit width mismatch");
    }
    for (const sim::Gate& g : circuit.gates()) {
        apply_gate(g);
    }
}

void
DistributedStateVector::apply_local(const sim::Gate& gate)
{
    // Every gate qubit indexes inside the slice, and the gate acts
    // identically on each slice: no amplitude crosses a node boundary.
    for (sim::StateVector& s : slices_) {
        sim::apply_gate(s, gate);
    }
}

void
DistributedStateVector::apply_diagonal(const sim::Gate& gate)
{
    // diag(M) multiplies each amplitude by the entry selected by the gate
    // qubits' bits of the *full* index; global bits come from the node rank.
    const sim::Matrix m = gate.matrix();
    const std::size_t d = std::size_t{1} << gate.arity();
    const sim::Index local_dim = slice_size();
    for (int r = 0; r < num_nodes_; ++r) {
        sim::StateVector& s = slices_[r];
        for (sim::Index i = 0; i < local_dim; ++i) {
            const sim::Index full =
                (static_cast<sim::Index>(r) << local_qubits_) | i;
            std::size_t basis = 0;
            for (int j = 0; j < gate.arity(); ++j) {
                basis |= ((full >> gate.qubits()[j]) & 1u) << j;
            }
            s[i] *= m[basis * d + basis];
        }
    }
}

int
DistributedStateVector::staging_mapping(const int* qubits, int arity,
                                        int local_qubits, int* mapped,
                                        std::vector<int>* global_ops)
{
    int k = 0;
    for (int i = 0; i < arity; ++i) {
        if (qubits[i] >= local_qubits) {
            mapped[i] = local_qubits + k;
            if (global_ops != nullptr) {
                global_ops->push_back(qubits[i]);
            }
            ++k;
        } else {
            mapped[i] = qubits[i];
        }
    }
    return k;
}

void
DistributedStateVector::exchange_groups(
    const int* qubits, int arity,
    const std::function<void(sim::StateVector&, const int*)>& fn)
{
    int mapped[5];
    std::vector<int> global_ops;
    TQSIM_ASSERT(arity >= 1 && arity <= 5);
    const int k =
        staging_mapping(qubits, arity, local_qubits_, mapped, &global_ops);
    TQSIM_ASSERT_MSG(k >= 1, "exchange_groups: no global operand");
    const int group_size = 1 << k;

    // Node-rank bits that vary within one group.
    std::vector<int> rank_bits(global_ops.size());
    for (int j = 0; j < k; ++j) {
        rank_bits[j] = global_ops[j] - local_qubits_;
    }
    int group_mask = 0;
    for (int b : rank_bits) {
        group_mask |= 1 << b;
    }

    const sim::Index local_dim = slice_size();
    std::vector<int> members(static_cast<std::size_t>(group_size));
    sim::StateVector staging(local_qubits_ + k);
    for (int base = 0; base < num_nodes_; ++base) {
        if ((base & group_mask) != 0) {
            continue;  // not the group's lowest-rank member
        }
        // Member ranks: spread the k combined-index bits into rank bits.
        for (int j = 0; j < group_size; ++j) {
            int rank = base;
            for (int b = 0; b < k; ++b) {
                if ((j >> b) & 1) {
                    rank |= 1 << rank_bits[b];
                }
            }
            members[j] = rank;
        }
        // Gather the group's slices into the staging register, apply the
        // remapped operation with the ordinary kernels, scatter back.
        transport_->gather_slices(slices_, members, staging, local_dim);
        fn(staging, mapped);
        transport_->scatter_slices(staging, members, slices_, local_dim);
    }

    // Accounting: nodes form groups of 2^k; within a group every node ships
    // its slice once so the group jointly holds all needed amplitude tuples.
    // Per pass the whole state crosses the network exactly once.
    transport_->account_pass(
        static_cast<std::uint64_t>(num_nodes_) * slice_bytes(),
        static_cast<std::uint64_t>(num_nodes_));
}

void
DistributedStateVector::apply_exchange(const sim::Gate& gate)
{
    const std::vector<int>& q = gate.qubits();
    // The remapped gate is the same for every group; build it lazily on the
    // first group using the staging positions exchange_groups hands us.
    std::optional<sim::Gate> combined;
    exchange_groups(
        q.data(), gate.arity(),
        [&](sim::StateVector& staging, const int* mapped) {
            if (!combined) {
                std::vector<int> mapping(
                    static_cast<std::size_t>(num_qubits_));
                std::iota(mapping.begin(), mapping.end(), 0);
                for (int i = 0; i < gate.arity(); ++i) {
                    mapping[q[i]] = mapped[i];
                }
                combined = gate.remapped(mapping);
            }
            sim::apply_gate(staging, *combined);
        });
}

sim::StateVector
DistributedStateVector::gather() const
{
    sim::StateVector full(num_qubits_);
    const sim::Index local_dim = slice_size();
    for (int r = 0; r < num_nodes_; ++r) {
        const sim::Index offset = static_cast<sim::Index>(r) << local_qubits_;
        for (sim::Index i = 0; i < local_dim; ++i) {
            full[offset | i] = slices_[r][i];
        }
    }
    return full;
}

double
DistributedStateVector::norm_squared() const
{
    // Same fixed-block decomposition and in-block order as the dense
    // StateVector::norm_squared: slices are contiguous runs of the global
    // index, so walking each block as per-slice spans adds the identical
    // values in the identical order — bit-identical across engines.
    const sim::Index local_dim = slice_size();
    return sim::parallel_sum(
        sim::dim(num_qubits_), [&](sim::Index begin, sim::Index end) {
            double sum = 0.0;
            sim::Index i = begin;
            while (i < end) {
                const std::size_t r =
                    static_cast<std::size_t>(i >> local_qubits_);
                const sim::Index off = i & (local_dim - 1);
                const sim::Index run = std::min(end - i, local_dim - off);
                const sim::Complex* a = slices_[r].data() + off;
                for (sim::Index j = 0; j < run; ++j) {
                    sum += std::norm(a[j]);
                }
                i += run;
            }
            return sum;
        });
}

std::uint64_t
count_global_gate_passes(const sim::Circuit& circuit, int num_qubits,
                         int num_nodes)
{
    if (num_nodes == 1) {
        return 0;  // everything is local on a single node
    }
    const int local = sharding_local_qubits(num_qubits, num_nodes);
    std::uint64_t passes = 0;
    for (const sim::Gate& g : circuit.gates()) {
        if (g.is_diagonal()) {
            continue;
        }
        for (int q : g.qubits()) {
            if (q >= local) {
                ++passes;
                break;
            }
        }
    }
    return passes;
}

}  // namespace tqsim::dist
