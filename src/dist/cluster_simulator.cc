#include "dist/cluster_simulator.h"

#include <chrono>
#include <stdexcept>

#include "dist/distributed_state_vector.h"
#include "sim/gate_kernels.h"
#include "sim/state_vector.h"
#include "sim/types.h"

namespace tqsim::dist {

double
measure_host_amp_throughput(int num_qubits, double budget_seconds)
{
    if (num_qubits < 1 || budget_seconds <= 0.0) {
        throw std::invalid_argument("invalid throughput probe parameters");
    }
    sim::StateVector state(num_qubits);
    const double amps_per_gate = static_cast<double>(sim::dim(num_qubits));
    std::uint64_t gates = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        // A dense (non-diagonal) pass is the representative kernel; H keeps
        // the state normalized so the loop can run indefinitely.
        for (int q = 0; q < num_qubits; ++q) {
            sim::apply_gate(state, sim::Gate::h(q));
        }
        gates += static_cast<std::uint64_t>(num_qubits);
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < budget_seconds);
    return static_cast<double>(gates) * amps_per_gate / elapsed;
}

double
noise_pass_factor(const sim::Circuit& circuit, const noise::NoiseModel& model)
{
    if (circuit.empty() || !model.has_gate_noise()) {
        return 1.0;
    }
    double passes = 0.0;
    for (const sim::Gate& g : circuit.gates()) {
        passes += 1.0;
        if (g.arity() == 1) {
            passes += static_cast<double>(model.on_1q_gates().size());
        } else {
            for (const noise::Channel& ch : model.on_2q_gates()) {
                // Arity-1 channels hit every operand; arity-2 channels hit
                // the first operand pair once.
                passes += ch.arity() == 1
                              ? static_cast<double>(g.arity())
                              : 1.0;
            }
        }
    }
    return passes / static_cast<double>(circuit.size());
}

namespace {

/** Shared compute/copy terms + validation of estimate_cluster_run and its
 *  measured-communication variant. */
ClusterEstimate
estimate_compute_and_copy(const sim::Circuit& circuit,
                          const noise::NoiseModel& model,
                          const core::PartitionPlan& plan,
                          const ClusterConfig& config)
{
    const int n = circuit.num_qubits();
    const int nodes = config.num_nodes;
    if (nodes != 1) {
        sharding_local_qubits(n, nodes);  // validates the node count
    }
    if (config.amp_throughput <= 0.0 || config.copy_bandwidth <= 0.0 ||
        config.link_bandwidth <= 0.0 || config.link_latency_seconds < 0.0) {
        throw std::invalid_argument("cluster rates must be positive");
    }
    if (plan.boundaries.size() != plan.num_levels() + 1 ||
        plan.boundaries.front() != 0 ||
        plan.boundaries.back() != circuit.size()) {
        throw std::invalid_argument("plan does not cover the circuit");
    }

    const double amps = static_cast<double>(sim::dim(n));
    const double state_bytes =
        static_cast<double>(sim::state_vector_bytes(n));
    const double pass_factor = noise_pass_factor(circuit, model);

    ClusterEstimate est;

    // Tree gate work, divided evenly across node-local shards.
    const std::vector<std::size_t> gates = plan.gates_per_level();
    double gate_passes = 0.0;
    for (std::size_t level = 0; level < plan.num_levels(); ++level) {
        gate_passes += static_cast<double>(plan.tree.instances(level)) *
                       static_cast<double>(gates[level]) * pass_factor;
    }
    est.compute_seconds = gate_passes * amps /
                          (config.amp_throughput * static_cast<double>(nodes));

    // Intermediate-state copies: every non-root tree node starts from a
    // copy of its parent's saved state; each node copies only its shard.
    const double copies =
        static_cast<double>(plan.tree.total_nodes() - 1);
    est.copy_seconds = copies * state_bytes /
                       (config.copy_bandwidth * static_cast<double>(nodes));
    return est;
}

/** Alpha-beta network model: each node ships its slice concurrently, so
 *  one pass costs one latency plus one slice over one link.  Summed over
 *  all passes: @p total_bytes spread across num_nodes links plus one
 *  latency per pass. */
double
alpha_beta_seconds(std::uint64_t passes, std::uint64_t total_bytes,
                   const ClusterConfig& config)
{
    const double total_link_bytes =
        static_cast<double>(total_bytes) /
        static_cast<double>(config.num_nodes);
    return static_cast<double>(passes) * config.link_latency_seconds +
           total_link_bytes / config.link_bandwidth;
}

}  // namespace

ClusterEstimate
estimate_cluster_run(const sim::Circuit& circuit,
                     const noise::NoiseModel& model,
                     const core::PartitionPlan& plan,
                     const ClusterConfig& config)
{
    ClusterEstimate est =
        estimate_compute_and_copy(circuit, model, plan, config);
    const int n = circuit.num_qubits();

    // Exchange passes: per level, count the subcircuit's global gates once,
    // then multiply by how many times that subcircuit is executed.
    std::uint64_t passes = 0;
    for (std::size_t level = 0; level < plan.num_levels(); ++level) {
        const sim::Circuit sub = circuit.slice(plan.boundaries[level],
                                               plan.boundaries[level + 1]);
        passes += plan.tree.instances(level) *
                  count_global_gate_passes(sub, n, config.num_nodes);
    }
    est.global_passes = passes;
    // Per pass the whole state crosses the network exactly once.
    est.comm_bytes = passes * sim::state_vector_bytes(n);
    est.comm_seconds = alpha_beta_seconds(passes, est.comm_bytes, config);
    return est;
}

ClusterEstimate
estimate_cluster_run_measured(const sim::Circuit& circuit,
                              const noise::NoiseModel& model,
                              const core::PartitionPlan& plan,
                              const ClusterConfig& config,
                              const CommStats& measured)
{
    ClusterEstimate est =
        estimate_compute_and_copy(circuit, model, plan, config);
    est.global_passes = measured.global_gates;
    est.comm_bytes = measured.bytes;
    est.comm_seconds =
        alpha_beta_seconds(measured.global_gates, measured.bytes, config);
    return est;
}

}  // namespace tqsim::dist
