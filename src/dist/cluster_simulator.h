#ifndef TQSIM_DIST_CLUSTER_SIMULATOR_H_
#define TQSIM_DIST_CLUSTER_SIMULATOR_H_

/**
 * @file
 * Cluster-scale run-time estimator for the distributed engine (Fig. 13).
 *
 * The exchange algorithm of DistributedStateVector is executed for real at
 * small widths (and validated exactly in tests); cluster-scale wall times
 * are then modeled from three measurable ingredients:
 *
 *  - per-node amplitude throughput, measured on this host with
 *    measure_host_amp_throughput() or taken from ClusterConfig defaults;
 *  - the simulation-tree gate/copy work of a PartitionPlan (instances per
 *    level times subcircuit length, as in hw::estimate_plan_seconds);
 *  - an alpha-beta network model applied to the exchange passes counted by
 *    count_global_gate_passes() — per pass the full state crosses the
 *    network once, split across node links.
 */

#include <cstdint>

#include "core/partitioner.h"
#include "dist/transport.h"
#include "noise/noise_model.h"
#include "sim/circuit.h"

namespace tqsim::dist {

/** Modeled cluster: node count, per-node speed, and interconnect. */
struct ClusterConfig
{
    /** Number of nodes (power of two). */
    int num_nodes = 1;
    /** Gate-kernel throughput per node, amplitudes/second.  Measure with
     *  measure_host_amp_throughput() for this-host numbers. */
    double amp_throughput = 5.0e8;
    /** In-node state-copy bandwidth, bytes/second. */
    double copy_bandwidth = 8.0e9;
    /** Per-link network bandwidth, bytes/second (default 100 Gb/s). */
    double link_bandwidth = 12.5e9;
    /** Per-message network latency (alpha), seconds. */
    double link_latency_seconds = 2.0e-6;
};

/** Decomposed wall-time estimate of one cluster run. */
struct ClusterEstimate
{
    /** Gate-kernel seconds (tree work split across nodes). */
    double compute_seconds = 0.0;
    /** Intermediate-state copy seconds (reuse-tree overhead). */
    double copy_seconds = 0.0;
    /** Network seconds for all exchange passes. */
    double comm_seconds = 0.0;
    /** Total bytes crossing the network. */
    std::uint64_t comm_bytes = 0;
    /** Total exchange passes across the whole tree. */
    std::uint64_t global_passes = 0;

    /** Modeled wall time: compute + copy + comm. */
    double total_seconds() const
    {
        return compute_seconds + copy_seconds + comm_seconds;
    }
};

/**
 * Measures this host's gate-kernel throughput in amplitudes/second by
 * timing dense single-qubit passes over a 2^num_qubits state for at least
 * @p budget_seconds of wall time.
 */
double measure_host_amp_throughput(int num_qubits, double budget_seconds);

/**
 * Expected kernel passes per gate under @p model: 1 for the gate itself
 * plus one pass per noise channel it triggers (per-operand channels counted
 * per operand, the trajectory engine's convention).
 */
double noise_pass_factor(const sim::Circuit& circuit,
                         const noise::NoiseModel& model);

/**
 * Models the wall time of executing @p plan of @p circuit under @p model on
 * @p config.  Strong scaling divides gate/copy work across nodes; the
 * communication term grows with the node count (more global qubits means
 * more exchange passes), which is what caps scaling for small circuits.
 *
 * @throws std::invalid_argument if the node count cannot shard the circuit.
 */
ClusterEstimate estimate_cluster_run(const sim::Circuit& circuit,
                                     const noise::NoiseModel& model,
                                     const core::PartitionPlan& plan,
                                     const ClusterConfig& config);

/**
 * estimate_cluster_run with the communication term built from *measured*
 * per-run exchange counters instead of the count_global_gate_passes
 * extrapolation: run the reuse tree on dist::ShardedStateBackend at
 * config.num_nodes shards (ExecStats comm_bytes / comm_messages /
 * global_gates, which flow through the Transport), then hand those counters
 * here.  Measured counters see what the model cannot: segment compilation
 * fusing global gates away and comm-free control-masked routing.  The
 * compute and copy terms are identical to estimate_cluster_run.
 */
ClusterEstimate estimate_cluster_run_measured(const sim::Circuit& circuit,
                                              const noise::NoiseModel& model,
                                              const core::PartitionPlan& plan,
                                              const ClusterConfig& config,
                                              const CommStats& measured);

}  // namespace tqsim::dist

#endif  // TQSIM_DIST_CLUSTER_SIMULATOR_H_
