#ifndef TQSIM_DIST_TRANSPORT_H_
#define TQSIM_DIST_TRANSPORT_H_

/**
 * @file
 * Pluggable slice-exchange transport for the sharded engine.
 *
 * DistributedStateVector executes global (non-diagonal, node-crossing)
 * gates by gathering each 2^k-node group's slices into a contiguous staging
 * register, applying the remapped operation with the ordinary kernels, and
 * scattering the slices back.  The *movement* of those slices — and the
 * communication accounting — is this interface, so a real network backend
 * (MPI sendrecv / all-to-all) drops in behind the same API while the
 * in-process implementation stays bit-exact and single-address-space.
 *
 * Accounting model (unchanged from the pre-transport engine): one exchange
 * pass ships every node's slice across the network exactly once, so the
 * caller records bytes = num_nodes * slice_bytes and messages = num_nodes
 * per pass via account_pass().  Counters are atomics: one transport is
 * typically shared by every state of a backend (snapshots included), and
 * the tree executor runs independent subtrees concurrently.
 */

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/state_vector.h"
#include "sim/types.h"

namespace tqsim::dist {

/** Communication counters accumulated by global-gate exchanges. */
struct CommStats
{
    /** Payload bytes moved between nodes. */
    std::uint64_t bytes = 0;
    /** Point-to-point messages (one per slice sent). */
    std::uint64_t messages = 0;
    /** Gates that required an exchange pass. */
    std::uint64_t global_gates = 0;
};

/**
 * Slice movement + communication accounting.  Implementations provide the
 * data motion; the counters live here so CommStats flows uniformly through
 * whichever transport is plugged in.
 *
 * Thread-safety: gather/scatter touch caller-owned buffers only;
 * account_pass and the counter accessors are atomic.  Deliberately
 * lock-free: a transport implementation must not hold any lock across the
 * data motion (the executor may call it from inside a parallel region, and
 * the lock-order lint bans locks held across executor entry — see
 * docs/static-analysis.md#lock-order).  Implementations that need internal
 * state must guard it with util::Mutex (util/mutex.h) so the thread-safety
 * analysis covers them; the base class itself owns no capability.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Implementation name for logs and benches ("in-process", "mpi"). */
    virtual const char* name() const = 0;

    /**
     * Collects the slices of @p members (ranks, combined-index order) into
     * @p staging: member j's slice lands at offset j * slice_dim.
     * @p staging must hold members.size() * slice_dim amplitudes.
     */
    virtual void gather_slices(const std::vector<sim::StateVector>& slices,
                               const std::vector<int>& members,
                               sim::StateVector& staging,
                               sim::Index slice_dim) = 0;

    /** The inverse of gather_slices: redistributes @p staging back into the
     *  member ranks' slices. */
    virtual void scatter_slices(const sim::StateVector& staging,
                                const std::vector<int>& members,
                                std::vector<sim::StateVector>& slices,
                                sim::Index slice_dim) = 0;

    /** Records one completed exchange pass (one global operation). */
    void
    account_pass(std::uint64_t bytes, std::uint64_t messages)
    {
        bytes_.fetch_add(bytes, std::memory_order_relaxed);
        messages_.fetch_add(messages, std::memory_order_relaxed);
        global_gates_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Switches exchange verification on/off: a verifying transport digests
     * the payload before and after each data motion and throws
     * util::IntegrityError on mismatch — the silent-data-corruption
     * detector for the one window where amplitudes transit foreign buffers
     * (docs/robustness.md#integrity--silent-corruption).  Off by default
     * (zero cost); the sharded backend arms it from IntegrityOptions at
     * run start.  Atomic for the same reason as the counters: one
     * transport is shared across a run's states and workers.
     */
    void
    set_verify(bool on)
    {
        verify_.store(on, std::memory_order_relaxed);
    }

    /** True when exchange verification is on. */
    bool
    verify_enabled() const
    {
        return verify_.load(std::memory_order_relaxed);
    }

    /** Snapshot of the accumulated counters. */
    CommStats
    stats() const
    {
        CommStats s;
        s.bytes = bytes_.load(std::memory_order_relaxed);
        s.messages = messages_.load(std::memory_order_relaxed);
        s.global_gates = global_gates_.load(std::memory_order_relaxed);
        return s;
    }

    /** Zeroes the counters (the executor namespaces them per run). */
    void
    reset_stats()
    {
        bytes_.store(0, std::memory_order_relaxed);
        messages_.store(0, std::memory_order_relaxed);
        global_gates_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> bytes_{0};
    std::atomic<std::uint64_t> messages_{0};
    std::atomic<std::uint64_t> global_gates_{0};
    std::atomic<bool> verify_{false};
};

/**
 * The single-address-space transport: slice movement is memcpy.  Bit-exact
 * against the single-node simulator, which is what lets the equivalence
 * suite pin the sharded backend against the dense one.
 */
class InProcessTransport final : public Transport
{
  public:
    const char* name() const override { return "in-process"; }

    void gather_slices(const std::vector<sim::StateVector>& slices,
                       const std::vector<int>& members,
                       sim::StateVector& staging,
                       sim::Index slice_dim) override;

    void scatter_slices(const sim::StateVector& staging,
                        const std::vector<int>& members,
                        std::vector<sim::StateVector>& slices,
                        sim::Index slice_dim) override;
};

}  // namespace tqsim::dist

#endif  // TQSIM_DIST_TRANSPORT_H_
