#include "dist/sharded_backend.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/gate_kernels.h"
#include "sim/parallel.h"
#include "sim/sampler.h"
#include "util/assert.h"
#include "util/failpoint.h"
#include "util/integrity.h"

namespace tqsim::dist {

namespace {

using sim::Complex;
using sim::DiagTerm;
using sim::Index;
using sim::Matrix;
using sim::SegOp;
using sim::SegOpKind;
using sim::StateVector;

constexpr Complex kOne{1.0, 0.0};

ShardedState&
sharded(sim::BackendState& state)
{
    return static_cast<ShardedState&>(state);
}

const ShardedState&
sharded(const sim::BackendState& state)
{
    return static_cast<const ShardedState&>(state);
}

/** How one compiled op executes on the sharded register. */
enum class Route : std::uint8_t {
    /** All operands local: run the source op on every slice, comm-free. */
    kPerSlice,
    /** Diagonal factors (any qubit mix): rank-selected per-slice scaling,
     *  comm-free; dispatch and arithmetic mirror apply_diag_batch. */
    kDiag,
    /** Global controls, local data qubits: run a reduced op on the slices
     *  whose rank has every control bit set, comm-free. */
    kCtrlMasked,
    /** Genuine data motion across slices: transport exchange pass. */
    kExchange,
    /** Boundary-crossing fusion cluster whose members all route comm-free
     *  solo: replay the members gate by gate (no exchange pass — the dense
     *  product would have needed one the unfused plan never pays). */
    kSplit,
    /** Verbatim gate: DistributedStateVector::apply_gate routes it. */
    kFallback,
};

/** Backend-lowered form of one SegOp. */
struct ShardOp
{
    Route route = Route::kPerSlice;
    /** kCtrlMasked: rank bits that must all be set for a slice to act. */
    int rank_mask = 0;
    /** kCtrlMasked: reduced per-slice op.  kExchange: the source op with
     *  operands remapped onto the staging register.  kDiag: holder of the
     *  term list (copied, or synthesized for a global controlled-phase). */
    SegOp reduced;
    /** kExchange: original operand qubits, for exchange grouping. */
    std::vector<int> operands;
    /** kSplit: the cluster's member ops (owned by the CompiledSegment,
     *  which outlives the prepared plan) and their routes, in order. */
    const std::vector<SegOp>* split_src = nullptr;
    std::vector<ShardOp> split_routes;
};

/** One lowered plan per tree level: routing decided once, executed at
 *  every node of the level. */
class ShardedSegment final : public sim::PreparedSegment
{
  public:
    ShardedSegment(const sim::CompiledSegment& source,
                   std::vector<ShardOp> shard_ops)
        : PreparedSegment(source), shard_ops_(std::move(shard_ops))
    {
    }

    const std::vector<ShardOp>& shard_ops() const { return shard_ops_; }

  private:
    std::vector<ShardOp> shard_ops_;
};

/** Synthesizes the single DiagTerm of a controlled-phase op (masks sorted
 *  the way merge_diag_term orders them). */
DiagTerm
cphase_term(const SegOp& op)
{
    DiagTerm t;
    t.mask0 = Index{1} << std::min(op.q0, op.q1);
    t.mask1 = Index{1} << std::max(op.q0, op.q1);
    t.d[3] = op.matrix[0];
    return t;
}

/** Routes one compiled op for a register with @p local local qubits.
 *  @p segment supplies the cluster-split table for kDenseKq ops; member
 *  ops re-entering this function pass null (members are never clusters). */
ShardOp
lower_op(const SegOp& op, int local, const sim::CompiledSegment* segment)
{
    ShardOp out;
    if (op.kind == SegOpKind::kIdentity) {
        return out;  // per-slice no-op
    }
    if (op.kind == SegOpKind::kGateFallback) {
        out.route = Route::kFallback;
        return out;
    }
    if (op.kind == SegOpKind::kDiagBatch) {
        out.route = Route::kDiag;
        out.reduced.kind = SegOpKind::kDiagBatch;
        out.reduced.diag = op.diag;
        return out;
    }
    if (op.kind == SegOpKind::kDenseKq) {
        // A fused cluster.  All-local clusters run per-slice with zero
        // communication (the common case: fusion links low qubits).  A
        // boundary-crossing cluster either (a) contains a member that
        // moves data across slices anyway — then one exchange pass
        // applying the whole dense product costs at most what the unfused
        // members would, usually less — or (b) is comm-free gate by gate,
        // in which case the members are replayed individually so fusion
        // introduces no exchange the unfused plan did not pay.
        const int k = static_cast<int>(op.qubits.size());
        bool cluster_global = false;
        for (int qb : op.qubits) {
            cluster_global = cluster_global || qb >= local;
        }
        if (!cluster_global) {
            return out;  // kPerSlice, source op as-is
        }
        TQSIM_ASSERT(segment != nullptr);
        const std::vector<SegOp>& split =
            segment->cluster_split(op.cluster_index);
        std::vector<ShardOp> routes;
        routes.reserve(split.size());
        bool member_exchanges = false;
        for (const SegOp& member : split) {
            routes.push_back(lower_op(member, local, nullptr));
            const Route r = routes.back().route;
            member_exchanges = member_exchanges || r == Route::kExchange ||
                               r == Route::kFallback;
        }
        if (member_exchanges) {
            out.route = Route::kExchange;
            out.operands = op.qubits;
            out.reduced = op;
            int mapped[5];
            DistributedStateVector::staging_mapping(op.qubits.data(), k,
                                                    local, mapped, nullptr);
            out.reduced.qubits.assign(mapped, mapped + k);
            return out;
        }
        out.route = Route::kSplit;
        out.split_src = &split;
        out.split_routes = std::move(routes);
        return out;
    }
    int q[3];
    const int arity = seg_op_operands(op, q);
    TQSIM_ASSERT(arity >= 1);
    bool any_global = false;
    for (int i = 0; i < arity; ++i) {
        any_global = any_global || q[i] >= local;
    }
    if (!any_global) {
        return out;  // kPerSlice, source op as-is
    }
    if (op.kind == SegOpKind::kCPhase) {
        // Phase factors never move amplitudes: comm-free on any qubit mix.
        out.route = Route::kDiag;
        out.reduced.kind = SegOpKind::kDiagBatch;
        out.reduced.diag = {cphase_term(op)};
        return out;
    }
    // Control-masked fast paths: global controls select ranks; the data
    // qubit stays local, so no amplitude crosses a slice boundary.
    if (op.kind == SegOpKind::kControlled1q && op.q0 >= local &&
        op.q1 < local) {
        out.route = Route::kCtrlMasked;
        out.rank_mask = 1 << (op.q0 - local);
        out.reduced.kind = SegOpKind::kDense1q;
        out.reduced.q0 = op.q1;
        out.reduced.matrix = op.matrix;
        return out;
    }
    if (op.kind == SegOpKind::kCX && op.q0 >= local && op.q1 < local) {
        out.route = Route::kCtrlMasked;
        out.rank_mask = 1 << (op.q0 - local);
        out.reduced.kind = SegOpKind::kX;
        out.reduced.q0 = op.q1;
        return out;
    }
    if (op.kind == SegOpKind::kCCX && op.q2 < local) {
        const bool g0 = op.q0 >= local;
        const bool g1 = op.q1 >= local;
        out.route = Route::kCtrlMasked;
        out.rank_mask = (g0 ? 1 << (op.q0 - local) : 0) |
                        (g1 ? 1 << (op.q1 - local) : 0);
        if (g0 && g1) {
            out.reduced.kind = SegOpKind::kX;
            out.reduced.q0 = op.q2;
        } else {
            out.reduced.kind = SegOpKind::kCX;
            out.reduced.q0 = g0 ? op.q1 : op.q0;  // the local control
            out.reduced.q1 = op.q2;
        }
        return out;
    }
    // Genuine global data motion: remap the operands onto the staging
    // register (exchange_groups' convention) once, here.
    out.route = Route::kExchange;
    out.operands.assign(q, q + arity);
    int mapped[3];
    DistributedStateVector::staging_mapping(q, arity, local, mapped, nullptr);
    out.reduced = op;
    out.reduced.q0 = mapped[0];
    if (arity > 1) {
        out.reduced.q1 = mapped[1];
    }
    if (arity > 2) {
        out.reduced.q2 = mapped[2];
    }
    return out;
}

/** Applies one DiagTerm per-term pass, mirroring apply_diag_batch's
 *  specialized kernels with global bits resolved from the slice rank. */
void
apply_one_diag_term(DistributedStateVector& d, const DiagTerm& term)
{
    const int local = d.local_qubits();
    std::vector<StateVector>& slices = d.slices();
    const int q0 = std::countr_zero(term.mask0);
    if (term.mask1 == 0) {
        if (q0 < local) {
            for (StateVector& s : slices) {
                sim::apply_diag_1q(s, q0, term.d[0], term.d[1]);
            }
        } else {
            const int rb = q0 - local;
            for (std::size_t r = 0; r < slices.size(); ++r) {
                const bool b0 = ((r >> rb) & 1u) != 0;
                sim::scale_state(slices[r], term.d[b0 ? 1 : 0]);
            }
        }
        return;
    }
    const int q1 = std::countr_zero(term.mask1);
    if (q1 < local) {
        // Both qubits local: same special-casing as the dense per-term pass.
        const bool phase_like = term.d[0] == kOne && term.d[1] == kOne &&
                                term.d[2] == kOne;
        for (StateVector& s : slices) {
            if (phase_like) {
                sim::apply_cphase(s, q0, q1, term.d[3]);
            } else {
                sim::apply_diag_2q(s, q0, q1, term.d[0], term.d[1],
                                   term.d[2], term.d[3]);
            }
        }
        return;
    }
    if (q0 < local) {
        // Mixed: the global bit (q1) comes from the rank, the local bit
        // selects within the slice.  d[b0 + 2*b1] as in the dense kernel.
        const int rb = q1 - local;
        for (std::size_t r = 0; r < slices.size(); ++r) {
            const bool b1 = ((r >> rb) & 1u) != 0;
            sim::apply_diag_1q(slices[r], q0, term.d[b1 ? 2 : 0],
                               term.d[b1 ? 3 : 1]);
        }
        return;
    }
    // Both global: one factor per slice.
    const int rb0 = q0 - local;
    const int rb1 = q1 - local;
    for (std::size_t r = 0; r < slices.size(); ++r) {
        const int sel = static_cast<int>((r >> rb0) & 1u) |
                        (static_cast<int>((r >> rb1) & 1u) << 1);
        sim::scale_state(slices[r], term.d[sel]);
    }
}

/**
 * Global-aware diagonal batch.  Dispatch (per-term vs fused) is decided on
 * the *global* amplitude count with the same threshold as the dense
 * engine, and both modes reproduce the dense kernels' per-amplitude
 * multiply chains — so amplitudes agree with the dense backend bit-for-bit
 * (up to the sign of zero on factors of exactly one).
 */
void
apply_diag_terms(DistributedStateVector& d, const std::vector<DiagTerm>& terms,
                 Index fused_min)
{
    const std::size_t num_terms = terms.size();
    if (num_terms == 0) {
        return;
    }
    if (fused_min == 0) {
        fused_min = sim::fused_diag_threshold();
    }
    const Index global_dim = sim::dim(d.num_qubits());
    if (num_terms == 1 || global_dim < fused_min) {
        for (const DiagTerm& t : terms) {
            apply_one_diag_term(d, t);
        }
        return;
    }
    // Fused single pass: sim::diag_batch_factor is the shared definition of
    // the per-amplitude factor product, with the global index supplying the
    // mask bits — amplitudes agree with apply_diag_batch_fused bit-for-bit.
    const int local = d.local_qubits();
    const Index local_dim = d.slice_size();
    const DiagTerm* term_data = terms.data();
    std::vector<StateVector>& slices = d.slices();
    for (std::size_t r = 0; r < slices.size(); ++r) {
        Complex* amps = slices[r].data();
        const Index base = static_cast<Index>(r) << local;
        sim::parallel_for(local_dim, [=](Index begin, Index end) {
            for (Index li = begin; li < end; ++li) {
                amps[li] *=
                    sim::diag_batch_factor(term_data, num_terms, base | li);
            }
        });
    }
}

/** Executes one routed op (every route except kFallback, which needs the
 *  segment's gate table and is handled by apply_op). */
void
apply_shard_op(DistributedStateVector& d, const SegOp& op, const ShardOp& sop,
               Index fused_min)
{
    switch (sop.route) {
      case Route::kPerSlice:
        for (StateVector& s : d.slices()) {
            sim::apply_seg_op(s, op, fused_min);
        }
        return;
      case Route::kDiag:
        apply_diag_terms(d, sop.reduced.diag, fused_min);
        return;
      case Route::kCtrlMasked: {
        std::vector<StateVector>& slices = d.slices();
        for (std::size_t r = 0; r < slices.size(); ++r) {
            if ((static_cast<int>(r) & sop.rank_mask) == sop.rank_mask) {
                sim::apply_seg_op(slices[r], sop.reduced, fused_min);
            }
        }
        return;
      }
      case Route::kExchange:
        d.exchange_groups(
            sop.operands.data(), static_cast<int>(sop.operands.size()),
            [&](StateVector& staging, const int* /*mapped*/) {
                // Operands were remapped onto the staging register at
                // lowering time (same staging_mapping convention).
                sim::apply_seg_op(staging, sop.reduced, fused_min);
            });
        return;
      case Route::kSplit:
        // Boundary-crossing cluster, comm-free member by member.  The
        // amplitudes re-associate against the dense product (1e-12 scale)
        // but no exchange pass is introduced.
        for (std::size_t i = 0; i < sop.split_src->size(); ++i) {
            apply_shard_op(d, (*sop.split_src)[i], sop.split_routes[i],
                           fused_min);
        }
        return;
      case Route::kFallback:
        break;
    }
    TQSIM_ASSERT_MSG(false, "apply_shard_op: unreachable route");
}

}  // namespace

ShardedStateBackend::ShardedStateBackend(int num_qubits, int num_shards,
                                         Transport* transport,
                                         sim::Index fused_diag_min)
    : num_qubits_(num_qubits),
      num_shards_(num_shards),
      local_qubits_(sharding_local_qubits(num_qubits, num_shards)),
      fused_diag_min_(fused_diag_min)
{
    if (transport == nullptr) {
        owned_transport_ = std::make_unique<InProcessTransport>();
        transport_ = owned_transport_.get();
    } else {
        transport_ = transport;
    }
}

std::unique_ptr<sim::StateArena>
ShardedStateBackend::make_arena(bool use_pool)
{
    // Whole sharded states park in the free list (all slices recycled
    // together), so hit/miss sequences match the dense arena's exactly.
    const int n = num_qubits_;
    const int shards = num_shards_;
    Transport* transport = transport_;
    auto make = [n, shards, transport] {
        return std::make_unique<ShardedState>(
            DistributedStateVector(n, shards, transport));
    };
    return sim::make_pooled_arena<ShardedState>(
        use_pool, make,
        [transport](const ShardedState& src) {
            // One-pass cold clone: no |0...0> initialization before the
            // overwrite.
            return std::make_unique<ShardedState>(
                DistributedStateVector::clone_of(src.dsv(), transport));
        },
        [](ShardedState& dst, const ShardedState& src) {
            dst.dsv().copy_amplitudes_from(src.dsv());
            // Corruption-mode fail point, mirroring the dense arena: a bit
            // flip landing during the warm lease copy.  Targets slice 0 (a
            // single contiguous buffer); the executor's snapshot digest
            // check covers the whole state either way.
            StateVector& s0 = dst.dsv().slices().front();
            TQSIM_FAILPOINT_CORRUPT(
                "sim.arena.lease", s0.data(),
                static_cast<std::size_t>(s0.size()) * sizeof(Complex));
        });
}

std::unique_ptr<sim::PreparedSegment>
ShardedStateBackend::prepare(const sim::CompiledSegment& segment)
{
    if (segment.num_qubits() != num_qubits_) {
        throw std::invalid_argument("ShardedStateBackend: segment width");
    }
    std::vector<ShardOp> shard_ops;
    shard_ops.reserve(segment.ops().size());
    for (const SegOp& op : segment.ops()) {
        shard_ops.push_back(lower_op(op, local_qubits_, &segment));
    }
    return std::make_unique<ShardedSegment>(segment, std::move(shard_ops));
}

void
ShardedStateBackend::apply_op(sim::BackendState& state,
                              const sim::PreparedSegment& segment,
                              std::size_t op_index)
{
    const ShardedSegment& seg = static_cast<const ShardedSegment&>(segment);
    const SegOp& op = segment.source().ops()[op_index];
    const ShardOp& sop = seg.shard_ops()[op_index];
    DistributedStateVector& d = sharded(state).dsv();
    if (sop.route == Route::kFallback) {
        d.apply_gate(segment.source().fallback_gate(op.fallback_index));
        return;
    }
    apply_shard_op(d, op, sop, fused_diag_min_);
}

void
ShardedStateBackend::apply_gate(sim::BackendState& state,
                                const sim::Gate& gate)
{
    sharded(state).dsv().apply_gate(gate);
}

double
ShardedStateBackend::kraus_probability(const sim::BackendState& state,
                                       const int* qubits, int arity,
                                       const Matrix& k) const
{
    // The *_over templates are the single definition of the reduction, so
    // the sums — and hence the trajectory branch choices — are
    // bit-identical to the dense kernels by construction.
    const DistributedStateVector& d = sharded(state).dsv();
    const Index dim = sim::dim(d.num_qubits());
    const auto amp = [&d](Index i) { return d.global_amp(i); };
    return arity == 1
               ? sim::kraus_probability_1q_over(dim, qubits[0], k, amp)
               : sim::kraus_probability_2q_over(dim, qubits[0], qubits[1], k,
                                                amp);
}

void
ShardedStateBackend::apply_matrix(sim::BackendState& state, const int* qubits,
                                  int arity, const Matrix& m)
{
    DistributedStateVector& d = sharded(state).dsv();
    bool any_global = false;
    for (int i = 0; i < arity; ++i) {
        any_global = any_global || qubits[i] >= local_qubits_;
    }
    if (!any_global) {
        for (StateVector& s : d.slices()) {
            if (arity == 1) {
                sim::apply_1q_matrix(s, qubits[0], m);
            } else {
                sim::apply_2q_matrix(s, qubits[0], qubits[1], m);
            }
        }
        return;
    }
    // Kraus operators are dense non-diagonal matrices: a global operand
    // means genuine data motion, i.e. one exchange pass.
    d.exchange_groups(qubits, arity,
                      [&](StateVector& staging, const int* mapped) {
                          if (arity == 1) {
                              sim::apply_1q_matrix(staging, mapped[0], m);
                          } else {
                              sim::apply_2q_matrix(staging, mapped[0],
                                                   mapped[1], m);
                          }
                      });
}

void
ShardedStateBackend::scale(sim::BackendState& state, Complex factor)
{
    for (StateVector& s : sharded(state).dsv().slices()) {
        sim::scale_state(s, factor);
    }
}

sim::Index
ShardedStateBackend::sample_once(const sim::BackendState& state,
                                 util::Rng& rng) const
{
    // sim::sample_walk is the shared walk; d.norm_squared() reproduces the
    // dense fixed-block reduction — the consumed RNG stream is identical.
    const DistributedStateVector& d = sharded(state).dsv();
    return sim::sample_walk(sim::dim(d.num_qubits()), d.norm_squared(),
                            [&d](Index i) { return d.global_amp(i); }, rng);
}

void
ShardedStateBackend::export_amplitudes(const sim::BackendState& state,
                                       std::vector<Complex>* out) const
{
    const DistributedStateVector& d = sharded(state).dsv();
    out->clear();
    out->reserve(static_cast<std::size_t>(sim::dim(d.num_qubits())));
    for (const StateVector& s : d.slices()) {
        out->insert(out->end(), s.data(), s.data() + s.size());
    }
}

void
ShardedStateBackend::import_amplitudes(sim::BackendState& state,
                                       const std::vector<Complex>& amps)
{
    DistributedStateVector& d = sharded(state).dsv();
    if (static_cast<Index>(amps.size()) != sim::dim(d.num_qubits())) {
        throw std::invalid_argument(
            "ShardedStateBackend::import_amplitudes: size mismatch");
    }
    const Complex* src = amps.data();
    for (StateVector& s : d.slices()) {
        std::copy(src, src + s.size(), s.data());
        src += s.size();
    }
}

void
ShardedStateBackend::reset_state(sim::BackendState& state)
{
    DistributedStateVector& d = sharded(state).dsv();
    bool first = true;
    for (StateVector& s : d.slices()) {
        std::fill(s.data(), s.data() + s.size(), Complex{0.0, 0.0});
        if (first) {
            s.data()[0] = Complex{1.0, 0.0};
            first = false;
        }
    }
}

std::uint64_t
ShardedStateBackend::state_digest(const sim::BackendState& state) const
{
    // Node r owns the amplitudes whose top log2(num_shards) index bits are
    // r, so streaming the slices in node order digests the canonical
    // global-index-order array — the exact stream the dense backend hashes.
    util::integrity::StreamDigest d;
    for (const StateVector& s : sharded(state).dsv().slices()) {
        d.absorb(reinterpret_cast<const double*>(s.data()),
                 static_cast<std::size_t>(s.size()) * 2U);
    }
    return d.value();
}

double
ShardedStateBackend::norm_squared(const sim::BackendState& state) const
{
    return sharded(state).dsv().norm_squared();
}

}  // namespace tqsim::dist
