#ifndef TQSIM_DM_DENSITY_MATRIX_H_
#define TQSIM_DM_DENSITY_MATRIX_H_

/**
 * @file
 * Density-matrix representation of mixed states (paper Sec. 2.3.1).
 *
 * Storage is column-major inside a 2n-qubit sim::StateVector: entry
 * rho(r, c) lives at flat index r + (c << n).  This lets gate application
 * reuse the state-vector kernels: U rho U^dagger applies U's matrix to the
 * row qubits [0, n) and conj(U) to the column qubits [n, 2n).
 *
 * Memory is O(4^n) — the paper's Fig. 4 point — so the constructor caps n
 * at 13 (128 MiB) to keep reference computations laptop-feasible.
 */

#include <vector>

#include "sim/gate.h"
#include "sim/state_vector.h"
#include "sim/types.h"

namespace tqsim::dm {

/** A 2^n x 2^n complex density matrix. */
class DensityMatrix
{
  public:
    /** Constructs |0...0><0...0| on @p num_qubits qubits (1..13). */
    explicit DensityMatrix(int num_qubits);

    /** Builds the pure-state density matrix |psi><psi|. */
    static DensityMatrix from_state_vector(const sim::StateVector& psi);

    /** Returns the qubit count n. */
    int num_qubits() const { return num_qubits_; }

    /** Returns the matrix dimension 2^n. */
    sim::Index dim() const { return sim::dim(num_qubits_); }

    /** Element access rho(r, c). */
    sim::Complex at(sim::Index r, sim::Index c) const;

    /** Mutable element access rho(r, c). */
    void set(sim::Index r, sim::Index c, sim::Complex v);

    /** Returns Tr(rho) (should be ~1 for a state). */
    sim::Complex trace() const;

    /** Returns Tr(rho^2) in [1/2^n, 1]; 1 iff pure. */
    double purity() const;

    /** Returns the diagonal as an outcome probability vector. */
    std::vector<double> diagonal_probabilities() const;

    /** Applies rho -> U rho U^dagger for any Gate. */
    void apply_gate(const sim::Gate& gate);

    /**
     * Applies a channel exactly: rho -> sum_i K_i rho K_i^dagger.
     * @p kraus_ops are 2x2 or 4x4 in the Gate basis convention;
     * @p qubits matches the operator arity.
     */
    void apply_kraus(const std::vector<sim::Matrix>& kraus_ops,
                     const std::vector<int>& qubits);

    /** Element-wise approximate equality. */
    bool approx_equal(const DensityMatrix& other, double tol = 1e-9) const;

    /** Read-only view of the underlying 2n-qubit vector (tests). */
    const sim::StateVector& storage() const { return vec_; }

  private:
    int num_qubits_;
    sim::StateVector vec_;  // 2n qubits; index = r + (c << n)
};

}  // namespace tqsim::dm

#endif  // TQSIM_DM_DENSITY_MATRIX_H_
