#ifndef TQSIM_DM_DM_SIMULATOR_H_
#define TQSIM_DM_DM_SIMULATOR_H_

/**
 * @file
 * Exact noisy simulation via density matrices — the reference simulator the
 * paper compares against in Fig. 15, and the convergence target of the
 * quantum-trajectory method (Sec. 2.4.1).
 */

#include "dm/density_matrix.h"
#include "metrics/distribution.h"
#include "noise/noise_model.h"
#include "sim/circuit.h"

namespace tqsim::dm {

/**
 * Evolves |0...0><0...0| through @p circuit, applying each gate unitarily
 * and then every channel the @p model attaches, exactly (no sampling).
 */
DensityMatrix simulate_density_matrix(const sim::Circuit& circuit,
                                      const noise::NoiseModel& model);

/**
 * Applies the symmetric per-bit readout-error confusion to a distribution
 * analytically: p'(y) = sum_x p(x) * prod_b flip/keep factors.
 */
metrics::Distribution apply_readout_confusion(
    const metrics::Distribution& dist, double flip_probability);

/**
 * Full exact output distribution: density-matrix evolution, diagonal
 * extraction, then analytic readout confusion.
 */
metrics::Distribution dm_output_distribution(const sim::Circuit& circuit,
                                             const noise::NoiseModel& model);

}  // namespace tqsim::dm

#endif  // TQSIM_DM_DM_SIMULATOR_H_
