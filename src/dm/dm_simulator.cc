#include "dm/dm_simulator.h"

#include <stdexcept>

namespace tqsim::dm {

using metrics::Distribution;
using noise::Channel;
using noise::NoiseModel;
using sim::Circuit;
using sim::Gate;

DensityMatrix
simulate_density_matrix(const Circuit& circuit, const NoiseModel& model)
{
    DensityMatrix rho(circuit.num_qubits());
    for (const Gate& g : circuit.gates()) {
        rho.apply_gate(g);
        const auto& qubits = g.qubits();
        if (g.arity() == 1) {
            for (const Channel& c : model.on_1q_gates()) {
                rho.apply_kraus(c.kraus().ops(), {qubits[0]});
            }
        } else {
            for (const Channel& c : model.on_2q_gates()) {
                if (c.arity() == 2) {
                    rho.apply_kraus(c.kraus().ops(), {qubits[0], qubits[1]});
                } else {
                    for (int q : qubits) {
                        rho.apply_kraus(c.kraus().ops(), {q});
                    }
                }
            }
        }
    }
    return rho;
}

Distribution
apply_readout_confusion(const Distribution& dist, double flip_probability)
{
    if (flip_probability < 0.0 || flip_probability > 1.0) {
        throw std::invalid_argument("readout flip probability out of [0,1]");
    }
    Distribution out = dist;
    if (flip_probability == 0.0) {
        return out;
    }
    // Per-bit convolution: independent symmetric flips factorize.
    const double keep = 1.0 - flip_probability;
    for (int b = 0; b < out.num_qubits(); ++b) {
        const std::size_t mask = std::size_t{1} << b;
        Distribution next(out.num_qubits());
        for (std::size_t x = 0; x < out.size(); ++x) {
            next[x] = keep * out[x] + flip_probability * out[x ^ mask];
        }
        out = next;
    }
    return out;
}

Distribution
dm_output_distribution(const Circuit& circuit, const NoiseModel& model)
{
    const DensityMatrix rho = simulate_density_matrix(circuit, model);
    std::vector<double> diag = rho.diagonal_probabilities();
    // Clamp the tiny negative values numerical evolution can leave behind.
    for (double& v : diag) {
        if (v < 0.0) {
            v = 0.0;
        }
    }
    Distribution dist = Distribution::from_probabilities(std::move(diag));
    return apply_readout_confusion(dist, model.readout_flip_probability());
}

}  // namespace tqsim::dm
