#include "dm/density_matrix.h"

#include <cmath>
#include <stdexcept>

#include "sim/gate.h"
#include "sim/gate_kernels.h"
#include "util/assert.h"

namespace tqsim::dm {

using sim::Complex;
using sim::Gate;
using sim::Index;
using sim::Matrix;
using sim::StateVector;

namespace {

constexpr int kMaxQubits = 13;

/** Element-wise complex conjugate of a matrix. */
Matrix
conjugated(const Matrix& m)
{
    Matrix out = m;
    for (Complex& v : out) {
        v = std::conj(v);
    }
    return out;
}

}  // namespace

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), vec_(2 * num_qubits)
{
    if (num_qubits < 1 || num_qubits > kMaxQubits) {
        throw std::invalid_argument(
            "DensityMatrix supports 1..13 qubits (O(4^n) memory)");
    }
    // vec_ already encodes rho = |0><0| (amplitude 1 at flat index 0).
}

DensityMatrix
DensityMatrix::from_state_vector(const StateVector& psi)
{
    DensityMatrix rho(psi.num_qubits());
    const Index d = rho.dim();
    for (Index c = 0; c < d; ++c) {
        const Complex col = std::conj(psi[c]);
        for (Index r = 0; r < d; ++r) {
            rho.vec_[r + (c << rho.num_qubits_)] = psi[r] * col;
        }
    }
    return rho;
}

Complex
DensityMatrix::at(Index r, Index c) const
{
    if (r >= dim() || c >= dim()) {
        throw std::out_of_range("DensityMatrix::at out of range");
    }
    return vec_[r + (c << num_qubits_)];
}

void
DensityMatrix::set(Index r, Index c, Complex v)
{
    if (r >= dim() || c >= dim()) {
        throw std::out_of_range("DensityMatrix::set out of range");
    }
    vec_[r + (c << num_qubits_)] = v;
}

Complex
DensityMatrix::trace() const
{
    Complex t{0.0, 0.0};
    for (Index i = 0; i < dim(); ++i) {
        t += vec_[i + (i << num_qubits_)];
    }
    return t;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_{r,c} rho(r,c) rho(c,r) = sum |rho(r,c)|^2 for
    // Hermitian rho.
    double p = 0.0;
    for (Index i = 0; i < vec_.size(); ++i) {
        p += std::norm(vec_[i]);
    }
    return p;
}

std::vector<double>
DensityMatrix::diagonal_probabilities() const
{
    std::vector<double> probs(dim());
    for (Index i = 0; i < dim(); ++i) {
        probs[i] = vec_[i + (i << num_qubits_)].real();
    }
    return probs;
}

void
DensityMatrix::apply_gate(const Gate& gate)
{
    for (int q : gate.qubits()) {
        if (q >= num_qubits_) {
            throw std::out_of_range("DensityMatrix::apply_gate: bad qubit");
        }
    }
    // U on row qubits.
    sim::apply_gate(vec_, gate);
    // conj(U) on column qubits (shifted by n).
    const Matrix cm = conjugated(gate.matrix());
    const auto& q = gate.qubits();
    switch (gate.arity()) {
      case 1:
        sim::apply_1q_matrix(vec_, q[0] + num_qubits_, cm);
        break;
      case 2:
        sim::apply_2q_matrix(vec_, q[0] + num_qubits_, q[1] + num_qubits_, cm);
        break;
      case 3:
        sim::apply_3q_matrix(vec_, q[0] + num_qubits_, q[1] + num_qubits_,
                             q[2] + num_qubits_, cm);
        break;
      default:
        throw std::invalid_argument("apply_gate: unsupported arity");
    }
}

void
DensityMatrix::apply_kraus(const std::vector<Matrix>& kraus_ops,
                           const std::vector<int>& qubits)
{
    if (qubits.empty() || qubits.size() > 2) {
        throw std::invalid_argument("apply_kraus: 1 or 2 qubits supported");
    }
    for (int q : qubits) {
        if (q < 0 || q >= num_qubits_) {
            throw std::out_of_range("apply_kraus: bad qubit");
        }
    }
    StateVector acc(vec_.num_qubits());
    for (sim::Index i = 0; i < acc.size(); ++i) {
        acc[i] = Complex{0.0, 0.0};
    }
    for (const Matrix& k : kraus_ops) {
        StateVector term = vec_;
        const Matrix ck = conjugated(k);
        if (qubits.size() == 1) {
            sim::apply_1q_matrix(term, qubits[0], k);
            sim::apply_1q_matrix(term, qubits[0] + num_qubits_, ck);
        } else {
            sim::apply_2q_matrix(term, qubits[0], qubits[1], k);
            sim::apply_2q_matrix(term, qubits[0] + num_qubits_,
                                 qubits[1] + num_qubits_, ck);
        }
        for (sim::Index i = 0; i < acc.size(); ++i) {
            acc[i] += term[i];
        }
    }
    vec_ = std::move(acc);
}

bool
DensityMatrix::approx_equal(const DensityMatrix& other, double tol) const
{
    if (other.num_qubits_ != num_qubits_) {
        return false;
    }
    return vec_.approx_equal(other.vec_, tol);
}

}  // namespace tqsim::dm
