#ifndef TQSIM_SIM_SAMPLER_H_
#define TQSIM_SIM_SAMPLER_H_

/**
 * @file
 * Outcome sampling from state vectors and probability vectors.
 *
 * Every trajectory (tree leaf) contributes exactly one measured bitstring,
 * matching the paper's one-shot-per-leaf accounting (Fig. 6/7).
 */

#include <cmath>
#include <cstddef>
#include <vector>

#include "sim/state_vector.h"
#include "sim/types.h"
#include "util/rng.h"

namespace tqsim::sim {

/**
 * The one-pass sampling walk generalized over an amplitude accessor
 * (@p amp: Index -> Complex) — THE definition every backend must
 * reproduce: one uniform draw scaled by @p norm2 (the state's
 * fixed-block-reduced <psi|psi>, tolerating small drift), then a walk in
 * ascending index order subtracting probability mass, falling back to the
 * last nonzero amplitude.  Identical consumed RNG stream and outcome for
 * every backend whose amplitudes and norm agree bit-for-bit.
 */
template <typename AmpAt>
Index
sample_walk(Index dim, double norm2, AmpAt amp, util::Rng& rng)
{
    const double u = rng.uniform() * norm2;
    double acc = 0.0;
    Index last_nonzero = 0;
    for (Index i = 0; i < dim; ++i) {
        const double p = std::norm(amp(i));
        if (p > 0.0) {
            last_nonzero = i;
        }
        acc += p;
        if (u < acc) {
            return i;
        }
    }
    return last_nonzero;
}

/** Draws one basis-state index from |amplitude|^2 of @p state. */
Index sample_once(const StateVector& state, util::Rng& rng);

/** Draws @p n independent basis-state indices from @p state. */
std::vector<Index> sample_many(const StateVector& state, std::size_t n,
                               util::Rng& rng);

/**
 * Draws one index from an explicit probability vector (need not be
 * normalized; entries must be non-negative).
 */
Index sample_from_probabilities(const std::vector<double>& probs,
                                util::Rng& rng);

/**
 * Draws @p n indices from a probability vector using a cumulative table and
 * binary search — O(2^w + n log 2^w).
 */
std::vector<Index> sample_many_from_probabilities(
    const std::vector<double>& probs, std::size_t n, util::Rng& rng);

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_SAMPLER_H_
