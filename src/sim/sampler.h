#ifndef TQSIM_SIM_SAMPLER_H_
#define TQSIM_SIM_SAMPLER_H_

/**
 * @file
 * Outcome sampling from state vectors and probability vectors.
 *
 * Every trajectory (tree leaf) contributes exactly one measured bitstring,
 * matching the paper's one-shot-per-leaf accounting (Fig. 6/7).
 */

#include <cstddef>
#include <vector>

#include "sim/state_vector.h"
#include "sim/types.h"
#include "util/rng.h"

namespace tqsim::sim {

/** Draws one basis-state index from |amplitude|^2 of @p state. */
Index sample_once(const StateVector& state, util::Rng& rng);

/** Draws @p n independent basis-state indices from @p state. */
std::vector<Index> sample_many(const StateVector& state, std::size_t n,
                               util::Rng& rng);

/**
 * Draws one index from an explicit probability vector (need not be
 * normalized; entries must be non-negative).
 */
Index sample_from_probabilities(const std::vector<double>& probs,
                                util::Rng& rng);

/**
 * Draws @p n indices from a probability vector using a cumulative table and
 * binary search — O(2^w + n log 2^w).
 */
std::vector<Index> sample_many_from_probabilities(
    const std::vector<double>& probs, std::size_t n, util::Rng& rng);

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_SAMPLER_H_
