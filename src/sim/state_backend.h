#ifndef TQSIM_SIM_STATE_BACKEND_H_
#define TQSIM_SIM_STATE_BACKEND_H_

/**
 * @file
 * Pluggable state-backend API: the seam between the reuse-tree executor /
 * trajectory engine and the state representation they drive.
 *
 * The paper's reuse tree (Sec. 3.1/3.4) is backend-agnostic: a tree node
 * only needs copy / run-segment / measure on *some* register.  StateBackend
 * captures exactly the operations the executor and the noise layer use —
 * snapshot leasing, compiled-op and gate dispatch, Kraus-probability
 * reductions, measurement sampling, and byte-size accounting — so dense,
 * sharded, and future (MPI, GPU, density-matrix) engines share one front
 * end.  Implementations:
 *
 *  - DenseStateBackend (this file): today's StateVector + pooled snapshot
 *    buffers.  Every method is a thin forward to the existing kernels, so
 *    the dense hot path pays one virtual dispatch per *operation* (each of
 *    which does O(2^n) amplitude work) — no per-amplitude indirection.
 *  - dist::ShardedStateBackend (dist/sharded_backend.h): the qHiPSTER-style
 *    multi-slice engine behind a swappable dist::Transport.
 *
 * Contract shared by all backends: reductions use the fixed-block
 * decomposition of sim/parallel.h over the *global* index space and the
 * kernels' exact per-amplitude arithmetic, so distributions, raw outcomes,
 * RNG streams, and deterministic ExecStats counters are bit-identical
 * across backends and thread counts.
 */

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/gate.h"
#include "sim/segment_plan.h"
#include "sim/state_vector.h"
#include "sim/types.h"
#include "util/failpoint.h"
#include "util/integrity.h"
#include "util/rng.h"

namespace tqsim::sim {

/** Backend selector for BackendConfig. */
enum class BackendKind : std::uint8_t {
    /** Single dense StateVector (the default engine). */
    kDense,
    /** dist::ShardedStateBackend: amplitudes sliced across simulated nodes,
     *  slice exchange through a dist::Transport. */
    kSharded,
};

/**
 * Caller-facing backend selection, carried on core::ExecutorOptions.
 * Resolution to a concrete backend happens in core::make_state_backend so
 * callers never name an implementation type.
 */
struct BackendConfig
{
    BackendKind kind = BackendKind::kDense;
    /** Shard (simulated node) count for kSharded: a power of two with
     *  num_shards <= 2^(num_qubits-1). */
    int num_shards = 2;
    /** Minimum *global* amplitude count at which diagonal batches take the
     *  single-pass fused kernel; 0 = auto-tune per host via the copy-cost
     *  profiler (core::tuned_fused_diag_threshold — honors the
     *  TQSIM_FUSED_DIAG_THRESHOLD environment variable, falls back to the
     *  compiled-in 2^22-amp default). */
    std::uint64_t fused_diag_threshold = 0;
    /** Widest fusion cluster the segment compiler may form in noise-free
     *  runs (see sim::FusionOptions): 1 = single-qubit-run fusion only,
     *  2..5 = qsim-style cluster fusion at that cap, 0 = auto-tune per
     *  host via the copy-cost profiler (core::tuned_max_fused_qubits —
     *  honors the TQSIM_MAX_FUSED_QUBITS environment variable). */
    int max_fused_qubits = 0;
};

/** Per-run communication counters reported by a backend (all zero for
 *  in-memory backends).  Mirrors dist::CommStats; thread-count independent
 *  because every run executes the same exchange passes. */
struct CommCounters
{
    /** Payload bytes moved between shards. */
    std::uint64_t bytes = 0;
    /** Point-to-point messages (one per slice shipped). */
    std::uint64_t messages = 0;
    /** Operations that required an exchange pass. */
    std::uint64_t global_gates = 0;
};

/** Opaque state register owned by a backend (dense vector, slice set, ...).
 *  Lifecycle runs through StateArena; operations through StateBackend. */
class BackendState
{
  public:
    virtual ~BackendState() = default;

  protected:
    BackendState() = default;
};

/**
 * Per-worker state allocator with a private snapshot free list.
 *
 * The tree executor copies its parent state at every non-last branch point;
 * an arena recycles whole released states so a warm snapshot is a pure
 * amplitude copy into retained buffers (the SnapshotPool semantics,
 * generalized to any representation).  Arenas are single-threaded by
 * design — the executor creates one per traversal worker — so leasing never
 * locks, and a state only enters the free list after having been live,
 * which keeps the executor's peak-memory bound intact.
 */
class StateArena
{
  public:
    virtual ~StateArena() = default;

    /** Freshly allocated |0...0> register. */
    virtual std::unique_ptr<BackendState> make_root() = 0;

    /** Branch-point copy of @p src.  Served from the free list when one is
     *  parked (and pooling is enabled for this arena); @p from_pool reports
     *  which happened so the executor's hit/miss counters stay exact. */
    virtual std::unique_ptr<BackendState> snapshot(const BackendState& src,
                                                   bool* from_pool) = 0;

    /** Ends @p state's life.  Pooling arenas park it for reuse; null is
     *  ignored (a state moved into a reuse child). */
    virtual void recycle(std::unique_ptr<BackendState> state) = 0;
};

/**
 * The free-list StateArena every in-memory backend shares: released states
 * park whole, and a warm snapshot copy-assigns the source amplitudes into a
 * parked state's retained buffers (no allocation — the SnapshotPool
 * mechanics, generalized to any representation).  Backends supply three
 * functors over their state type:
 *
 *  - MakeFn()                        -> unique_ptr<StateT>, a fresh |0...0>;
 *  - CloneFn(const StateT&)          -> unique_ptr<StateT>, a fresh copy
 *                                       (the cold-miss path);
 *  - CopyFn(StateT& dst, const StateT& src): overwrite dst's amplitudes
 *                                       without reallocating (the warm path).
 */
template <typename StateT, typename MakeFn, typename CloneFn,
          typename CopyFn>
class PooledArena final : public StateArena
{
  public:
    PooledArena(bool use_pool, MakeFn make, CloneFn clone, CopyFn copy)
        : use_pool_(use_pool),
          make_(std::move(make)),
          clone_(std::move(clone)),
          copy_(std::move(copy))
    {
    }

    std::unique_ptr<BackendState>
    make_root() override
    {
        TQSIM_FAILPOINT_ALLOC("sim.arena.root");
        return make_();
    }

    std::unique_ptr<BackendState>
    snapshot(const BackendState& src, bool* from_pool) override
    {
        const StateT& source = static_cast<const StateT&>(src);
        if (use_pool_ && !free_.empty()) {
            // A lease overwrites retained buffers (no allocation), but the
            // fail point still sits here so chaos runs exercise snapshot
            // failure on the warm path too.
            TQSIM_FAILPOINT_ALLOC("sim.arena.lease");
            std::unique_ptr<StateT> leased = std::move(free_.back());
            free_.pop_back();
            copy_(*leased, source);
            *from_pool = true;
            return leased;
        }
        TQSIM_FAILPOINT_ALLOC("sim.arena.snapshot");
        *from_pool = false;
        return clone_(source);
    }

    void
    recycle(std::unique_ptr<BackendState> state) override
    {
        if (!use_pool_ || state == nullptr) {
            return;
        }
        free_.emplace_back(static_cast<StateT*>(state.release()));
    }

  private:
    bool use_pool_;
    MakeFn make_;
    CloneFn clone_;
    CopyFn copy_;
    std::vector<std::unique_ptr<StateT>> free_;
};

/** Deduces PooledArena's functor types. */
template <typename StateT, typename MakeFn, typename CloneFn,
          typename CopyFn>
std::unique_ptr<StateArena>
make_pooled_arena(bool use_pool, MakeFn make, CloneFn clone, CopyFn copy)
{
    return std::make_unique<PooledArena<StateT, MakeFn, CloneFn, CopyFn>>(
        use_pool, std::move(make), std::move(clone), std::move(copy));
}

/**
 * Backend-lowered form of one CompiledSegment, produced once per tree level
 * by StateBackend::prepare (e.g. the sharded backend routes every op as
 * per-slice / diagonal / control-masked / exchange at lowering time).  Op
 * metadata (noise flags, operands, source-gate counts) is always read from
 * source(); only the *execution* of an op is backend-specific.
 */
class PreparedSegment
{
  public:
    virtual ~PreparedSegment() = default;

    /** The compiled segment this plan executes (not owned; the executor
     *  keeps compiled segments alive for the duration of the run). */
    const CompiledSegment& source() const { return *source_; }

  protected:
    explicit PreparedSegment(const CompiledSegment& source)
        : source_(&source)
    {
    }

  private:
    const CompiledSegment* source_;
};

/**
 * The operations the tree executor and noise::run_*_trajectory need from a
 * state representation.  One instance serves a whole run (it is stateless
 * apart from communication counters); per-worker allocation state lives in
 * the arenas it vends.
 *
 * Thread-safety: apply/reduce/sample methods may be called concurrently on
 * *distinct* states (the executor dispatches independent subtrees across
 * the worker pool); implementations must only share read-only plan data and
 * atomic counters across calls.
 */
class StateBackend
{
  public:
    virtual ~StateBackend() = default;

    /** Implementation name for logs and benches ("dense", "sharded"). */
    virtual const char* name() const = 0;

    /** Register width. */
    virtual int num_qubits() const = 0;

    /** Total amplitude bytes of one live state (all shards summed) — the
     *  executor's peak-memory and bytes-copied accounting unit. */
    virtual std::uint64_t state_bytes() const = 0;

    /** Creates a traversal worker's private allocator.  @p use_pool off
     *  makes every snapshot a fresh allocation (ablation / legacy mode). */
    virtual std::unique_ptr<StateArena> make_arena(bool use_pool) = 0;

    /** Lowers @p segment into backend-executable form.  Called once per
     *  tree level at build time; executed at every node of the level. */
    virtual std::unique_ptr<PreparedSegment> prepare(
        const CompiledSegment& segment) = 0;

    /** Applies op @p op_index of @p segment to @p state (amplitude work
     *  only — channel application is the trajectory layer's job). */
    virtual void apply_op(BackendState& state, const PreparedSegment& segment,
                          std::size_t op_index) = 0;

    /** Gate-at-a-time application (the legacy, non-compiled path). */
    virtual void apply_gate(BackendState& state, const Gate& gate) = 0;

    /** ||K |psi>||^2 for a 1q/2q operator @p k on @p qubits[0..arity).
     *  Bit-identical to the dense kraus_probability_* reductions. */
    virtual double kraus_probability(const BackendState& state,
                                     const int* qubits, int arity,
                                     const Matrix& k) const = 0;

    /** Applies a (possibly non-unitary) 2x2 / 4x4 matrix to
     *  @p qubits[0..arity) — the Kraus-operator application primitive. */
    virtual void apply_matrix(BackendState& state, const int* qubits,
                              int arity, const Matrix& m) = 0;

    /** Multiplies every amplitude by @p factor (trajectory renormalize). */
    virtual void scale(BackendState& state, Complex factor) = 0;

    /** Draws one outcome index; the walk order and norm reduction match
     *  sim::sample_once exactly, so the consumed RNG stream is identical
     *  across backends. */
    virtual Index sample_once(const BackendState& state,
                              util::Rng& rng) const = 0;

    /** Serializes @p state into @p out as the canonical global-index-order
     *  amplitude array (resized to 2^num_qubits).  The canonical form is
     *  what the cross-request prefix-snapshot cache stores, so a snapshot
     *  exported by one backend can be imported by another; the copy is
     *  bit-exact (plain amplitude moves, no arithmetic). */
    virtual void export_amplitudes(const BackendState& state,
                                   std::vector<Complex>* out) const = 0;

    /** Overwrites @p state from a canonical amplitude array previously
     *  produced by export_amplitudes (size must be 2^num_qubits).
     *  Bit-exact inverse of export_amplitudes. */
    virtual void import_amplitudes(BackendState& state,
                                   const std::vector<Complex>& amps) = 0;

    /** Resets @p state to |0...0> in place, reusing its buffers (no
     *  allocation).  The executor's snapshot-degradation path uses this to
     *  rebuild a parent state by replaying its ancestor segments after a
     *  child ran in place (docs/robustness.md#snapshot-degradation). */
    virtual void reset_state(BackendState& state) = 0;

    /**
     * util::integrity digest of @p state's amplitudes in canonical global
     * index order — exactly integrity::digest_doubles over the array
     * export_amplitudes would produce, but computed in place: the sharded
     * backend chains per-slice digests in node order (slice concatenation
     * *is* the canonical array), so no amplitude traffic or staging buffer
     * is needed.  Bit-equal digests across backends therefore certify
     * bit-equal states (docs/robustness.md#integrity--silent-corruption).
     */
    virtual std::uint64_t state_digest(const BackendState& state) const = 0;

    /** Squared 2-norm of @p state; bit-identical across backends and
     *  thread counts (fixed-block reduction).  A well-formed trajectory
     *  state has norm_squared ~ 1 — the cheapest online invariant. */
    virtual double norm_squared(const BackendState& state) const = 0;

    /** Installs the run's integrity options.  The executor calls this at
     *  run start; backends with internal data motion (transport exchanges)
     *  use it to switch their own verification on.  Default: no-op. */
    virtual void set_integrity(const util::IntegrityOptions& options)
    {
        (void)options;
    }

    /** Zeroes the backend's communication counters.  The executor calls
     *  this at run start so ExecStats reports per-run numbers. */
    virtual void reset_comm_stats() {}

    /** Communication performed since the last reset (all zero for
     *  in-memory backends). */
    virtual CommCounters comm_stats() const { return {}; }
};

// ---------------------------------------------------------------------------
// Dense backend
// ---------------------------------------------------------------------------

/** Dense state: a plain StateVector.  Public so tests and tools can reach
 *  the underlying vector of a dense run. */
class DenseState final : public BackendState
{
  public:
    explicit DenseState(StateVector state) : state_(std::move(state)) {}

    StateVector& state() { return state_; }
    const StateVector& state() const { return state_; }

  private:
    StateVector state_;
};

/**
 * The default backend: one dense StateVector per live tree state, snapshot
 * buffers recycled through per-arena free lists.  Zero-overhead by
 * construction — every method forwards to the same kernel the executor
 * called directly before the backend seam existed.
 */
class DenseStateBackend final : public StateBackend
{
  public:
    /** @p fused_diag_min: see BackendConfig::fused_diag_threshold. */
    explicit DenseStateBackend(int num_qubits, Index fused_diag_min = 0);

    const char* name() const override { return "dense"; }
    int num_qubits() const override { return num_qubits_; }
    std::uint64_t state_bytes() const override
    {
        return state_vector_bytes(num_qubits_);
    }
    std::unique_ptr<StateArena> make_arena(bool use_pool) override;
    std::unique_ptr<PreparedSegment> prepare(
        const CompiledSegment& segment) override;
    void apply_op(BackendState& state, const PreparedSegment& segment,
                  std::size_t op_index) override;
    void apply_gate(BackendState& state, const Gate& gate) override;
    double kraus_probability(const BackendState& state, const int* qubits,
                             int arity, const Matrix& k) const override;
    void apply_matrix(BackendState& state, const int* qubits, int arity,
                      const Matrix& m) override;
    void scale(BackendState& state, Complex factor) override;
    Index sample_once(const BackendState& state,
                      util::Rng& rng) const override;
    void export_amplitudes(const BackendState& state,
                           std::vector<Complex>* out) const override;
    void import_amplitudes(BackendState& state,
                           const std::vector<Complex>& amps) override;
    void reset_state(BackendState& state) override;
    std::uint64_t state_digest(const BackendState& state) const override;
    double norm_squared(const BackendState& state) const override;

  private:
    int num_qubits_;
    Index fused_diag_min_;
};

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_STATE_BACKEND_H_
