#ifndef TQSIM_SIM_GATE_KERNELS_H_
#define TQSIM_SIM_GATE_KERNELS_H_

/**
 * @file
 * Gate-application kernels for the dense state-vector engine.
 *
 * The generic entry point is apply_gate(); it dispatches to specialized fast
 * paths for permutation/diagonal gates (X, Z, phase, CX, CZ, CP, SWAP, CCX)
 * and to dense 1q/2q/3q matrix kernels otherwise.  All kernels also accept
 * non-unitary matrices — this is what lets the quantum-trajectory noise layer
 * apply Kraus operators directly (followed by renormalization).
 */

#include <cstddef>

#include "sim/gate.h"
#include "sim/state_vector.h"
#include "sim/types.h"

namespace tqsim::sim {

/** Applies an arbitrary 2x2 matrix to qubit @p q. */
void apply_1q_matrix(StateVector& state, int q, const Matrix& m);

/**
 * Fast path: controlled-U for an arbitrary 2x2 @p m — applies @p m to
 * @p target on the half-space where @p control is 1.  Touches half the
 * amplitudes a dense 4x4 kernel would.
 */
void apply_controlled_1q(StateVector& state, int control, int target,
                         const Matrix& m);

/**
 * One multiplicative factor of a batched diagonal pass.  mask0/mask1 are the
 * bit masks of the term's qubits (mask1 == 0 for single-qubit terms); the
 * factor applied to amplitude i is d[b0 + 2*b1] where b0/b1 are the masked
 * bit values.  Entries 2..3 are unused for single-qubit terms.
 */
struct DiagTerm
{
    Index mask0 = 0;
    Index mask1 = 0;
    Complex d[4] = {{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}};
};

/**
 * Applies a run of diagonal gates folded into a DiagTerm batch
 * (Z/S/T/RZ/Phase/CZ/CPhase/RZZ runs).  Equivalent to applying the terms in
 * sequence up to floating-point association.  Dispatches between per-term
 * specialized passes (cache-resident states, where the factor-product
 * dependency chain would dominate) and apply_diag_batch_fused (large
 * states, where memory traffic dominates); the choice depends only on the
 * state size, so results are deterministic for a given run.
 */
void apply_diag_batch(StateVector& state, const DiagTerm* terms,
                      std::size_t num_terms);

/**
 * The single-pass variant of apply_diag_batch: every amplitude is loaded
 * and stored ONCE no matter how many diagonal gates the batch folded
 * together — T-fold less memory traffic than T specialized passes, which
 * wins once the state overflows the last-level cache.
 */
void apply_diag_batch_fused(StateVector& state, const DiagTerm* terms,
                            std::size_t num_terms);

/**
 * Applies an arbitrary 4x4 matrix to qubits (@p q0, @p q1); q0 is bit 0 of
 * the matrix basis index, q1 is bit 1 (the Gate convention).
 */
void apply_2q_matrix(StateVector& state, int q0, int q1, const Matrix& m);

/** Applies an arbitrary 8x8 matrix to qubits (@p q0, @p q1, @p q2). */
void apply_3q_matrix(StateVector& state, int q0, int q1, int q2,
                     const Matrix& m);

/** Fast path: Pauli-X on qubit @p q (amplitude pair swap). */
void apply_x(StateVector& state, int q);

/** Fast path: diagonal 1q gate diag(@p d0, @p d1) on qubit @p q. */
void apply_diag_1q(StateVector& state, int q, Complex d0, Complex d1);

/** Fast path: diagonal 2q gate diag(d00, d01, d10, d11) where the second
 *  digit is qubit @p q0's bit (matrix basis convention). */
void apply_diag_2q(StateVector& state, int q0, int q1, Complex d00,
                   Complex d01, Complex d10, Complex d11);

/** Fast path: CNOT with @p control and @p target. */
void apply_cx(StateVector& state, int control, int target);

/** Fast path: controlled-Z on qubits @p a and @p b. */
void apply_cz(StateVector& state, int a, int b);

/** Fast path: controlled-phase diag(1,1,1,phase) on @p a, @p b. */
void apply_cphase(StateVector& state, int a, int b, Complex phase);

/** Fast path: SWAP of qubits @p a and @p b. */
void apply_swap(StateVector& state, int a, int b);

/** Fast path: Toffoli (controls @p c0, @p c1; target @p t). */
void apply_ccx(StateVector& state, int c0, int c1, int t);

/** Multiplies every amplitude by @p factor. */
void scale_state(StateVector& state, Complex factor);

/** Applies any Gate, choosing the best kernel. */
void apply_gate(StateVector& state, const Gate& gate);

/**
 * Returns ||K |psi>||^2 for a 2x2 operator @p k on qubit @p q without
 * modifying the state.  Used by norm-based Kraus sampling: the probability
 * of trajectory branch K_i is exactly this value.
 */
double kraus_probability_1q(const StateVector& state, int q, const Matrix& k);

/** Returns ||K |psi>||^2 for a 4x4 operator on qubits (@p q0, @p q1). */
double kraus_probability_2q(const StateVector& state, int q0, int q1,
                            const Matrix& k);

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_GATE_KERNELS_H_
