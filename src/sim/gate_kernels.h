#ifndef TQSIM_SIM_GATE_KERNELS_H_
#define TQSIM_SIM_GATE_KERNELS_H_

/**
 * @file
 * Gate-application kernels for the dense state-vector engine.
 *
 * The generic entry point is apply_gate(); it dispatches to specialized fast
 * paths for permutation/diagonal gates (X, Z, phase, CX, CZ, CP, SWAP, CCX)
 * and to dense 1q/2q/3q matrix kernels otherwise.  All kernels also accept
 * non-unitary matrices — this is what lets the quantum-trajectory noise layer
 * apply Kraus operators directly (followed by renormalization).
 */

#include <cmath>
#include <cstddef>

#include "sim/gate.h"
#include "sim/parallel.h"
#include "sim/state_vector.h"
#include "sim/types.h"

namespace tqsim::sim {

/** Inserts a zero bit at @p pos, shifting higher bits left.  Shared by the
 *  dense kernels and the sharded backend's global-index enumerations (which
 *  must walk the exact pair order of the dense reductions). */
inline Index
insert_zero_bit(Index x, int pos)
{
    const Index low_mask = (Index{1} << pos) - 1;
    return ((x & ~low_mask) << 1) | (x & low_mask);
}

/** Inserts zero bits at @p lo and @p hi (bit positions, lo < hi). */
inline Index
insert_two_zero_bits(Index x, int lo, int hi)
{
    return insert_zero_bit(insert_zero_bit(x, lo), hi);
}

/**
 * Minimum amplitude count at which apply_diag_batch switches from per-term
 * specialized passes to the single-pass fused kernel.  Defaults to the
 * TQSIM_FUSED_DIAG_THRESHOLD environment variable when set (amplitudes,
 * parsed once), else 2^22 amps = 64 MiB — past typical last-level caches,
 * where the fused pass's single load/store per amplitude wins over T
 * specialized passes (see apply_diag_batch).
 */
Index fused_diag_threshold();

/** Overrides the global fused-diagonal threshold; 0 restores the
 *  environment/compiled-in default.  Intended for tuning and tests; the
 *  executor plumbs a per-run value through BackendConfig instead. */
void set_fused_diag_threshold(Index min_amps);

/** Applies an arbitrary 2x2 matrix to qubit @p q. */
void apply_1q_matrix(StateVector& state, int q, const Matrix& m);

/**
 * Fast path: controlled-U for an arbitrary 2x2 @p m — applies @p m to
 * @p target on the half-space where @p control is 1.  Touches half the
 * amplitudes a dense 4x4 kernel would.
 */
void apply_controlled_1q(StateVector& state, int control, int target,
                         const Matrix& m);

/**
 * One multiplicative factor of a batched diagonal pass.  mask0/mask1 are the
 * bit masks of the term's qubits (mask1 == 0 for single-qubit terms); the
 * factor applied to amplitude i is d[b0 + 2*b1] where b0/b1 are the masked
 * bit values.  Entries 2..3 are unused for single-qubit terms.
 */
struct DiagTerm
{
    Index mask0 = 0;
    Index mask1 = 0;
    Complex d[4] = {{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}};
};

/**
 * Applies a run of diagonal gates folded into a DiagTerm batch
 * (Z/S/T/RZ/Phase/CZ/CPhase/RZZ runs).  Equivalent to applying the terms in
 * sequence up to floating-point association.  Dispatches between per-term
 * specialized passes (cache-resident states, where the factor-product
 * dependency chain would dominate) and apply_diag_batch_fused (large
 * states, where memory traffic dominates); the switch-over is
 * @p fused_min_amps (0 = the global fused_diag_threshold()) and depends
 * only on the state size, so results are deterministic for a given run.
 */
void apply_diag_batch(StateVector& state, const DiagTerm* terms,
                      std::size_t num_terms, Index fused_min_amps = 0);

/**
 * The single-pass variant of apply_diag_batch: every amplitude is loaded
 * and stored ONCE no matter how many diagonal gates the batch folded
 * together — T-fold less memory traffic than T specialized passes, which
 * wins once the state overflows the last-level cache.
 */
void apply_diag_batch_fused(StateVector& state, const DiagTerm* terms,
                            std::size_t num_terms);

/**
 * The per-amplitude factor product of the fused diagonal pass — THE
 * definition of its arithmetic: two independent accumulator chains (complex
 * multiplication is latency-bound, so halving the dependency depth roughly
 * doubles per-amplitude throughput), terms paired in order.  Shared by
 * apply_diag_batch_fused and the sharded backend's global-index variant so
 * their amplitudes agree bit-for-bit.  @p num_terms must be >= 1.
 */
inline Complex
diag_batch_factor(const DiagTerm* terms, std::size_t num_terms, Index i)
{
    auto factor = [terms, i](const std::size_t t) {
        const DiagTerm& term = terms[t];
        const int sel = ((i & term.mask0) != 0 ? 1 : 0) |
                        ((i & term.mask1) != 0 ? 2 : 0);
        return term.d[sel];
    };
    Complex f0 = factor(0);
    Complex f1 = {1.0, 0.0};
    std::size_t t = 1;
    for (; t + 1 < num_terms; t += 2) {
        f0 *= factor(t);
        f1 *= factor(t + 1);
    }
    if (t < num_terms) {
        f1 *= factor(t);
    }
    return f0 * f1;
}

/**
 * kraus_probability_1q generalized over an amplitude accessor (@p amp:
 * Index -> Complex) — THE definition of the reduction every backend must
 * reproduce: fixed-block parallel_sum over the pair index space, identical
 * per-pair arithmetic, bit-identical at any thread count.  The dense
 * kernel instantiates it with raw-array access; the sharded backend with
 * slice-resolving access over the global index space.
 */
template <typename AmpAt>
double
kraus_probability_1q_over(Index dim, int q, const Matrix& k, AmpAt amp)
{
    const Complex m00 = k[0], m01 = k[1], m10 = k[2], m11 = k[3];
    const Index stride = Index{1} << q;
    const Index pairs = dim >> 1;
    return parallel_sum(pairs, [=](Index begin, Index end) {
        double p = 0.0;
        for (Index pair = begin; pair < end; ++pair) {
            const Index i0 = insert_zero_bit(pair, q);
            const Complex a0 = amp(i0);
            const Complex a1 = amp(i0 | stride);
            p += std::norm(m00 * a0 + m01 * a1);
            p += std::norm(m10 * a0 + m11 * a1);
        }
        return p;
    });
}

/** kraus_probability_2q generalized over an amplitude accessor; see
 *  kraus_probability_1q_over. */
template <typename AmpAt>
double
kraus_probability_2q_over(Index dim, int q0, int q1, const Matrix& k,
                          AmpAt amp)
{
    const Index s0 = Index{1} << q0;
    const Index s1 = Index{1} << q1;
    const int lo = q0 < q1 ? q0 : q1;
    const int hi = q0 < q1 ? q1 : q0;
    const Index quarter = dim >> 2;
    return parallel_sum(quarter, [&k, amp, s0, s1, lo, hi](Index begin,
                                                           Index end) {
        double p = 0.0;
        for (Index j = begin; j < end; ++j) {
            const Index i00 = insert_two_zero_bits(j, lo, hi);
            const Complex a[4] = {amp(i00), amp(i00 | s0), amp(i00 | s1),
                                  amp(i00 | s0 | s1)};
            for (int r = 0; r < 4; ++r) {
                Complex acc{0.0, 0.0};
                for (int c = 0; c < 4; ++c) {
                    acc += k[r * 4 + c] * a[c];
                }
                p += std::norm(acc);
            }
        }
        return p;
    });
}

/**
 * Applies an arbitrary 4x4 matrix to qubits (@p q0, @p q1); q0 is bit 0 of
 * the matrix basis index, q1 is bit 1 (the Gate convention).
 */
void apply_2q_matrix(StateVector& state, int q0, int q1, const Matrix& m);

/** Applies an arbitrary 8x8 matrix to qubits (@p q0, @p q1, @p q2). */
void apply_3q_matrix(StateVector& state, int q0, int q1, int q2,
                     const Matrix& m);

/**
 * Applies an arbitrary dense 2^k x 2^k matrix to @p qubits[0..k), 1 <= k
 * <= 5; qubits[i] contributes bit i of the matrix basis index (the Gate
 * convention).  The execution kernel for qsim-style fused gate clusters:
 * one gather -> 2^k-dim matvec -> scatter pass over the state, so a
 * cluster of g absorbed gates costs one memory pass instead of g.
 *
 * k <= 3 dispatches to the specialized 1q/2q/3q kernels; k = 4 / 5 run a
 * cache-blocked gather/scatter template whose group enumeration walks the
 * state in index order (contiguous low-index runs stay cache-resident) and
 * whose matvec reads the matrix from a restrict-qualified local copy so
 * the compiler can keep rows in registers/SIMD lanes.  Work splits across
 * the pool with the fixed-block parallel_for decomposition — bit-identical
 * results at any thread count, serial fast path below the grain.
 */
void apply_dense_kq(StateVector& state, const int* qubits, int k,
                    const Matrix& m);

/** Fast path: Pauli-X on qubit @p q (amplitude pair swap). */
void apply_x(StateVector& state, int q);

/** Fast path: diagonal 1q gate diag(@p d0, @p d1) on qubit @p q. */
void apply_diag_1q(StateVector& state, int q, Complex d0, Complex d1);

/** Fast path: diagonal 2q gate diag(d00, d01, d10, d11) where the second
 *  digit is qubit @p q0's bit (matrix basis convention). */
void apply_diag_2q(StateVector& state, int q0, int q1, Complex d00,
                   Complex d01, Complex d10, Complex d11);

/** Fast path: CNOT with @p control and @p target. */
void apply_cx(StateVector& state, int control, int target);

/** Fast path: controlled-Z on qubits @p a and @p b. */
void apply_cz(StateVector& state, int a, int b);

/** Fast path: controlled-phase diag(1,1,1,phase) on @p a, @p b. */
void apply_cphase(StateVector& state, int a, int b, Complex phase);

/** Fast path: SWAP of qubits @p a and @p b. */
void apply_swap(StateVector& state, int a, int b);

/** Fast path: Toffoli (controls @p c0, @p c1; target @p t). */
void apply_ccx(StateVector& state, int c0, int c1, int t);

/** Multiplies every amplitude by @p factor. */
void scale_state(StateVector& state, Complex factor);

/** Applies any Gate, choosing the best kernel. */
void apply_gate(StateVector& state, const Gate& gate);

/**
 * Returns ||K |psi>||^2 for a 2x2 operator @p k on qubit @p q without
 * modifying the state.  Used by norm-based Kraus sampling: the probability
 * of trajectory branch K_i is exactly this value.
 */
double kraus_probability_1q(const StateVector& state, int q, const Matrix& k);

/** Returns ||K |psi>||^2 for a 4x4 operator on qubits (@p q0, @p q1). */
double kraus_probability_2q(const StateVector& state, int q0, int q1,
                            const Matrix& k);

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_GATE_KERNELS_H_
