#include "sim/state_backend.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/gate_kernels.h"
#include "sim/sampler.h"

namespace tqsim::sim {

namespace {

DenseState&
dense(BackendState& state)
{
    return static_cast<DenseState&>(state);
}

const DenseState&
dense(const BackendState& state)
{
    return static_cast<const DenseState&>(state);
}

/** Dense prepare is the identity: the compiled segment already is the
 *  executable plan for a single dense register. */
class DensePreparedSegment final : public PreparedSegment
{
  public:
    explicit DensePreparedSegment(const CompiledSegment& source)
        : PreparedSegment(source)
    {
    }
};

}  // namespace

DenseStateBackend::DenseStateBackend(int num_qubits, Index fused_diag_min)
    : num_qubits_(num_qubits), fused_diag_min_(fused_diag_min)
{
    if (num_qubits < 1) {
        throw std::invalid_argument("DenseStateBackend: bad qubit count");
    }
}

std::unique_ptr<StateArena>
DenseStateBackend::make_arena(bool use_pool)
{
    // Warm snapshots copy-assign into a parked state's retained buffer
    // (vector copy assignment reuses equal-size capacity — no allocation),
    // exactly the SnapshotPool mechanics the executor used before the
    // backend seam.
    const int n = num_qubits_;
    return make_pooled_arena<DenseState>(
        use_pool,
        [n] { return std::make_unique<DenseState>(StateVector(n)); },
        [](const DenseState& src) {
            return std::make_unique<DenseState>(src.state());
        },
        [](DenseState& dst, const DenseState& src) {
            dst.state() = src.state();
            // Corruption-mode fail point: a bit flip landing during the
            // warm lease copy, where a DMA/ECC error would.  Inert (one
            // relaxed load) unless a corrupt plan is armed.
            TQSIM_FAILPOINT_CORRUPT(
                "sim.arena.lease", dst.state().data(),
                static_cast<std::size_t>(dst.state().size()) *
                    sizeof(Complex));
        });
}

std::unique_ptr<PreparedSegment>
DenseStateBackend::prepare(const CompiledSegment& segment)
{
    if (segment.num_qubits() != num_qubits_) {
        throw std::invalid_argument("DenseStateBackend: segment width");
    }
    return std::make_unique<DensePreparedSegment>(segment);
}

void
DenseStateBackend::apply_op(BackendState& state,
                            const PreparedSegment& segment,
                            std::size_t op_index)
{
    const CompiledSegment& seg = segment.source();
    seg.apply_op(dense(state).state(), seg.ops()[op_index], fused_diag_min_);
}

void
DenseStateBackend::apply_gate(BackendState& state, const Gate& gate)
{
    sim::apply_gate(dense(state).state(), gate);
}

double
DenseStateBackend::kraus_probability(const BackendState& state,
                                     const int* qubits, int arity,
                                     const Matrix& k) const
{
    const StateVector& sv = dense(state).state();
    return arity == 1 ? kraus_probability_1q(sv, qubits[0], k)
                      : kraus_probability_2q(sv, qubits[0], qubits[1], k);
}

void
DenseStateBackend::apply_matrix(BackendState& state, const int* qubits,
                                int arity, const Matrix& m)
{
    StateVector& sv = dense(state).state();
    if (arity == 1) {
        apply_1q_matrix(sv, qubits[0], m);
    } else {
        apply_2q_matrix(sv, qubits[0], qubits[1], m);
    }
}

void
DenseStateBackend::scale(BackendState& state, Complex factor)
{
    scale_state(dense(state).state(), factor);
}

Index
DenseStateBackend::sample_once(const BackendState& state,
                               util::Rng& rng) const
{
    return sim::sample_once(dense(state).state(), rng);
}

void
DenseStateBackend::export_amplitudes(const BackendState& state,
                                     std::vector<Complex>* out) const
{
    const StateVector& sv = dense(state).state();
    out->assign(sv.data(), sv.data() + sv.size());
}

void
DenseStateBackend::import_amplitudes(BackendState& state,
                                     const std::vector<Complex>& amps)
{
    StateVector& sv = dense(state).state();
    if (static_cast<Index>(amps.size()) != sv.size()) {
        throw std::invalid_argument(
            "DenseStateBackend::import_amplitudes: size mismatch");
    }
    std::copy(amps.begin(), amps.end(), sv.data());
}

void
DenseStateBackend::reset_state(BackendState& state)
{
    dense(state).state().reset();
}

std::uint64_t
DenseStateBackend::state_digest(const BackendState& state) const
{
    // std::complex<double> is layout-compatible with double[2], so the
    // amplitude array digests directly as 2 * 2^n doubles — the canonical
    // global-index-order stream every backend's digest must match.
    const StateVector& sv = dense(state).state();
    return util::integrity::digest_doubles(
        reinterpret_cast<const double*>(sv.data()),
        static_cast<std::size_t>(sv.size()) * 2U);
}

double
DenseStateBackend::norm_squared(const BackendState& state) const
{
    return dense(state).state().norm_squared();
}

}  // namespace tqsim::sim
