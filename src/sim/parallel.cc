#include "sim/parallel.h"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tqsim::sim {

namespace {

std::atomic<int> g_num_threads{1};

}  // namespace

void
set_num_threads(int n)
{
    if (n < 1) {
        throw std::invalid_argument("set_num_threads: need >= 1 thread");
    }
    g_num_threads.store(n, std::memory_order_relaxed);
}

int
num_threads()
{
    return g_num_threads.load(std::memory_order_relaxed);
}

void
parallel_for(std::uint64_t total,
             const std::function<void(std::uint64_t, std::uint64_t)>& fn)
{
    const int threads = num_threads();
    if (threads == 1 || total < 2) {
        fn(0, total);
        return;
    }
    const auto workers = static_cast<std::uint64_t>(threads);
    const std::uint64_t chunk = (total + workers - 1) / workers;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint64_t w = 0; w < workers; ++w) {
        const std::uint64_t begin = w * chunk;
        if (begin >= total) {
            break;
        }
        const std::uint64_t end = std::min(total, begin + chunk);
        pool.emplace_back([&fn, begin, end] { fn(begin, end); });
    }
    for (auto& t : pool) {
        t.join();
    }
}

}  // namespace tqsim::sim
