#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tqsim::sim {

namespace {

using Body = std::function<void(std::uint64_t, std::uint64_t)>;

/** Set while this thread executes a chunk of a parallel region. */
thread_local bool tls_in_region = false;

int
read_env_threads()
{
    // Read once before the pool exists, so no thread can race the
    // environment.  NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("TQSIM_NUM_THREADS");
    if (env == nullptr || *env == '\0') {
        return 1;
    }
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1 || v > 512) {
        return 1;
    }
    return static_cast<int>(v);
}

/** 0 = not yet initialized from the environment. */
std::atomic<int> g_num_threads{0};

/**
 * Persistent fork-join worker pool.
 *
 * One job runs at a time (run_mutex_); workers sleep on a condition variable
 * between jobs and claim fixed-size chunks of the active job through an
 * atomic cursor, so claims happen in ascending chunk order.  The calling
 * thread participates as one worker, which also guarantees completion even
 * before any worker has woken up.
 */
class WorkerPool
{
  public:
    static WorkerPool&
    instance()
    {
        static WorkerPool pool;
        return pool;
    }

    /** Runs @p body over [0, total) in @p chunk-sized claims, using
     *  @p threads total executors (this thread plus threads-1 workers). */
    void
    run(std::uint64_t total, std::uint64_t chunk, int threads,
        const Body& body)
    {
        util::MutexLock run_lock(run_mutex_);
        ensure_size(static_cast<std::size_t>(threads) - 1);
        {
            util::MutexLock lock(m_);
            body_ = &body;
            total_ = total;
            chunk_ = chunk;
            nchunks_ = (total + chunk - 1) / chunk;
            next_.store(0, std::memory_order_relaxed);
            pending_ = nchunks_;
            error_ = nullptr;
            failed_.store(false, std::memory_order_relaxed);
            ++generation_;
        }
        cv_job_.notify_all();
        work();
        std::exception_ptr err;
        {
            util::MutexLock lock(m_);
            // Also wait for workers to leave work(): a straggler still
            // draining its claim loop must not observe the next job's fields
            // without synchronization.
            cv_done_.wait(lock.native(), [this] { return job_drained(); });
            // Move, don't copy: if the pool kept a reference, the exception
            // object would be released by whichever thread runs the *next*
            // job — a cross-thread destruction racing the catch handler
            // still reading what() (the refcount atomics live inside
            // libstdc++, invisible to TSan).  Moving pins the last
            // reference to this thread's rethrow below.
            err = std::move(error_);
            body_ = nullptr;
        }
        if (err) {
            std::rethrow_exception(err);
        }
    }

    ~WorkerPool()
    {
        util::MutexLock run_lock(run_mutex_);
        stop_and_join();
    }

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

  private:
    WorkerPool() = default;

    /** Resizes to @p target workers; callable only between jobs. */
    void
    ensure_size(std::size_t target) TQSIM_REQUIRES(run_mutex_)
    {
        if (workers_.size() == target) {
            return;
        }
        stop_and_join();
        std::uint64_t gen;
        {
            util::MutexLock lock(m_);
            stop_ = false;
            gen = generation_;
        }
        workers_.reserve(target);
        for (std::size_t i = 0; i < target; ++i) {
            workers_.emplace_back([this, gen] { worker_main(gen); });
        }
    }

    /** Joining under run_mutex_ is deadlock-free: workers only ever take
     *  m_, never run_mutex_ (rank "pool-run" > "pool-job" is the whole
     *  hierarchy below this point). */
    void
    stop_and_join() TQSIM_REQUIRES(run_mutex_)
    {
        {
            util::MutexLock lock(m_);
            stop_ = true;
        }
        cv_job_.notify_all();
        for (std::thread& t : workers_) {
            t.join();
        }
        workers_.clear();
    }

    /** cv predicates run with m_ held, but clang's thread-safety analysis
     *  checks lambda bodies context-free — these accessors carry the
     *  escape hatch (with this manual proof) instead of leaking it into
     *  every wait site. */
    bool
    job_available(std::uint64_t seen) const TQSIM_NO_THREAD_SAFETY_ANALYSIS
    {
        return stop_ || generation_ != seen;
    }
    bool
    job_drained() const TQSIM_NO_THREAD_SAFETY_ANALYSIS
    {
        return pending_ == 0 && active_workers_ == 0;
    }

    void
    worker_main(std::uint64_t seen_generation)
    {
        for (;;) {
            {
                util::MutexLock lock(m_);
                cv_job_.wait(lock.native(), [this, &seen_generation] {
                    return job_available(seen_generation);
                });
                if (stop_) {
                    return;
                }
                seen_generation = generation_;
                if (pending_ == 0) {
                    // Overslept an entire generation: the job drained (and a
                    // new one may be publishing) — never touch its fields.
                    continue;
                }
                ++active_workers_;
            }
            work();
            {
                util::MutexLock lock(m_);
                if (--active_workers_ == 0 && pending_ == 0) {
                    cv_done_.notify_all();
                }
            }
        }
    }

    /** Claims and executes chunks of the active job until none remain. */
    void
    work()
    {
        for (;;) {
            const std::uint64_t c =
                next_.fetch_add(1, std::memory_order_relaxed);
            if (c >= nchunks_) {
                return;
            }
            const std::uint64_t begin = c * chunk_;
            const std::uint64_t end = std::min(total_, begin + chunk_);
            if (!failed_.load(std::memory_order_relaxed)) {
                tls_in_region = true;
                try {
                    (*body_)(begin, end);
                } catch (...) {
                    failed_.store(true, std::memory_order_relaxed);
                    util::MutexLock lock(m_);
                    if (!error_) {
                        error_ = std::current_exception();
                    }
                }
                tls_in_region = false;
            }
            util::MutexLock lock(m_);
            if (--pending_ == 0) {
                cv_done_.notify_all();
            }
        }
    }

    /** Serializes top-level parallel regions.  Lock-order rank "pool-run":
     *  below every service-layer lock, above m_
     *  (docs/static-analysis.md#lock-order). */
    util::Mutex run_mutex_ TQSIM_ACQUIRED_BEFORE(m_);

    /** Guards job publication, generation_, pending_, error_, stop_.
     *  Lock-order rank "pool-job": the bottom of the hierarchy — nothing
     *  is ever acquired while m_ is held. */
    util::Mutex m_;
    std::condition_variable cv_job_;
    std::condition_variable cv_done_;
    /** Spawned/joined only between jobs, by the thread holding run_mutex_
     *  (ensure_size / stop_and_join / the destructor). */
    std::vector<std::thread> workers_ TQSIM_GUARDED_BY(run_mutex_);
    bool stop_ TQSIM_GUARDED_BY(m_) = false;
    std::uint64_t generation_ TQSIM_GUARDED_BY(m_) = 0;
    /** Workers currently inside work() for the active generation. */
    std::uint64_t active_workers_ TQSIM_GUARDED_BY(m_) = 0;

    // The job fields below are generation-published, not lock-guarded:
    // run() writes them under m_, ++generation_ publishes them, and
    // workers read them lock-free only after observing the new generation
    // under m_ (and before re-checking pending_ under m_) — the classic
    // publication pattern TSA cannot express.  next_/failed_ are atomics.
    const Body* body_ = nullptr;
    std::uint64_t total_ = 0;
    std::uint64_t chunk_ = 1;
    std::uint64_t nchunks_ = 0;
    std::atomic<std::uint64_t> next_{0};
    std::uint64_t pending_ TQSIM_GUARDED_BY(m_) = 0;
    std::exception_ptr error_ TQSIM_GUARDED_BY(m_);
    std::atomic<bool> failed_{false};
};

}  // namespace

void
set_num_threads(int n)
{
    if (n < 1) {
        throw std::invalid_argument("set_num_threads: need >= 1 thread");
    }
    g_num_threads.store(n, std::memory_order_relaxed);
}

int
num_threads()
{
    int n = g_num_threads.load(std::memory_order_relaxed);
    if (n == 0) {
        n = read_env_threads();
        int expected = 0;
        if (!g_num_threads.compare_exchange_strong(
                expected, n, std::memory_order_relaxed)) {
            n = expected;
        }
    }
    return n;
}

bool
in_parallel_region()
{
    return tls_in_region;
}

namespace detail {

void
parallel_for_fn(std::uint64_t total, std::uint64_t grain, const Body& fn)
{
    const int threads = num_threads();
    if (threads <= 1 || total <= grain || tls_in_region) {
        if (total > 0) {
            fn(0, total);
        }
        return;
    }
    // 4 chunks per executor gives dynamic balance without tiny claims.
    const std::uint64_t target_chunks = static_cast<std::uint64_t>(threads) * 4;
    std::uint64_t chunk = (total + target_chunks - 1) / target_chunks;
    chunk = std::max<std::uint64_t>(chunk, 1024);
    WorkerPool::instance().run(total, chunk, threads, fn);
}

}  // namespace detail

void
parallel_for_each(std::uint64_t n,
                  const std::function<void(std::uint64_t)>& fn)
{
    const int threads = num_threads();
    if (threads <= 1 || n < 2 || tls_in_region) {
        for (std::uint64_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }
    WorkerPool::instance().run(
        n, 1, threads, [&fn](std::uint64_t begin, std::uint64_t end) {
            for (std::uint64_t i = begin; i < end; ++i) {
                fn(i);
            }
        });
}

std::uint64_t
num_reduce_blocks(std::uint64_t total)
{
    return (total + kReduceBlock - 1) / kReduceBlock;
}

void
parallel_blocks(
    std::uint64_t total,
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>& fn)
{
    const std::uint64_t nblocks = num_reduce_blocks(total);
    const int threads = num_threads();
    if (threads <= 1 || nblocks < 2 || tls_in_region) {
        for (std::uint64_t b = 0; b < nblocks; ++b) {
            const std::uint64_t begin = b * kReduceBlock;
            fn(b, begin, std::min(total, begin + kReduceBlock));
        }
        return;
    }
    WorkerPool::instance().run(
        nblocks, 1, threads,
        [&fn, total](std::uint64_t begin_blk, std::uint64_t end_blk) {
            for (std::uint64_t b = begin_blk; b < end_blk; ++b) {
                const std::uint64_t begin = b * kReduceBlock;
                fn(b, begin, std::min(total, begin + kReduceBlock));
            }
        });
}

namespace detail {

double
parallel_sum_fn(std::uint64_t total,
                const std::function<double(std::uint64_t, std::uint64_t)>& fn)
{
    const std::uint64_t nblocks = num_reduce_blocks(total);
    if (nblocks == 0) {
        return 0.0;
    }
    if (nblocks == 1) {
        return fn(0, total);
    }
    std::vector<double> partials(nblocks, 0.0);
    parallel_blocks(total,
                    [&](std::uint64_t blk, std::uint64_t begin,
                        std::uint64_t end) { partials[blk] = fn(begin, end); });
    double sum = 0.0;
    for (double p : partials) {
        sum += p;
    }
    return sum;
}

}  // namespace detail

}  // namespace tqsim::sim
