#ifndef TQSIM_SIM_SEGMENT_PLAN_H_
#define TQSIM_SIM_SEGMENT_PLAN_H_

/**
 * @file
 * Segment compilation: lowers a contiguous gate range of a circuit into an
 * executable plan of specialized kernel operations, once, at tree-build
 * time.  The tree executor re-runs every segment at each node of its level
 * (arity products of times), so the per-gate interpretation work the
 * gate-at-a-time path repeats on every visit — kind dispatch, on-the-fly
 * matrix construction, per-node circuit slicing — is paid exactly once here.
 *
 * The compiler takes a per-gate "noisy" mask from the caller (the noise
 * layer marks the gates its model attaches channels to).  Noisy gates are
 * kept at gate granularity with their operand list, preserving every
 * noise-insertion site and the RNG draw order bit-for-bit.  Maximal
 * noise-free runs in between are cluster-fused (sim/fusion.h, qsim-style:
 * connected 1q/2q gates merge into dense k-qubit products, k bounded by
 * FusionOptions::max_fused_qubits) and then lowered:
 *
 *  - runs of diagonal gates (Z/S/T/RZ/Phase/CZ/CPhase/RZZ and diagonal
 *    fusion products) collapse into one elementwise DiagBatch pass;
 *  - multi-gate fusion clusters become one kDenseKq gather/scatter op
 *    (apply_dense_kq: a single memory pass applies every absorbed gate);
 *    each kDenseKq op also records its members' solo lowerings so a
 *    backend that cannot apply the dense product in place — a sharded
 *    cluster crossing the slice boundary — can split it back comm-free;
 *  - dense 2q matrices with controlled structure (including controlled-
 *    shaped cluster products) take the half-space controlled-1q fast path;
 *  - permutation gates (X, CX, SWAP, CCX) keep their dedicated kernels;
 *  - everything else becomes a dense 1q/2q/3q kernel op with its matrix
 *    precomputed into the plan.
 *
 * Layering: this file is noise-agnostic — it never inspects a NoiseModel.
 * noise::compile_segment() builds the mask and noise::run_compiled_trajectory
 * executes the plan with channels interleaved (see noise/trajectory.h).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/circuit.h"
#include "sim/fusion.h"
#include "sim/gate.h"
#include "sim/gate_kernels.h"
#include "sim/state_vector.h"
#include "sim/types.h"

namespace tqsim::sim {

/** Kernel selector of one compiled operation. */
enum class SegOpKind : std::uint8_t {
    /** No amplitude work (identity gates; noisy identities still carry
     *  their channel-attachment metadata). */
    kIdentity,
    /** Batched diagonal factors: one elementwise pass (DiagTerm list). */
    kDiagBatch,
    /** Controlled-phase: quarter-space kernel; matrix[0] is the phase. */
    kCPhase,
    /** Dense 2x2 via apply_1q_matrix (precomputed matrix). */
    kDense1q,
    /** Controlled-U fast path via apply_controlled_1q (q0 = control). */
    kControlled1q,
    /** Dense 4x4 via apply_2q_matrix (precomputed matrix). */
    kDense2q,
    /** Dense 8x8 via apply_3q_matrix (precomputed matrix). */
    kDense3q,
    /** Dense 2^k x 2^k fusion-cluster product via apply_dense_kq (operands
     *  in SegOp::qubits, member split in the segment's cluster table). */
    kDenseKq,
    /** Pauli-X pair swap. */
    kX,
    /** CNOT fast path. */
    kCX,
    /** SWAP fast path. */
    kSwap,
    /** Toffoli fast path. */
    kCCX,
    /** Uncompilable gate kept verbatim; applied through apply_gate(). */
    kGateFallback,
};

/** One executable operation of a compiled segment. */
struct SegOp
{
    SegOpKind kind = SegOpKind::kIdentity;
    /** True when the caller must apply the model's channels after this op.
     *  Noisy ops always cover exactly one source gate. */
    bool noisy = false;
    /** Operand count of the source gate (channel attachment arity). */
    std::uint8_t arity = 0;
    /** Operand qubits in source-gate order (q1/q2 unused below arity). */
    int q0 = -1;
    int q1 = -1;
    int q2 = -1;
    /** Source gates folded into this op (keeps gate counters exact). */
    std::uint32_t source_gates = 1;
    /** Dense matrix payload (kDense*, kControlled1q, 2x2 for the latter). */
    Matrix matrix;
    /** Diagonal factors (kDiagBatch). */
    std::vector<DiagTerm> diag;
    /** Operand qubits of a kDenseKq cluster op, matrix-basis order (bit i
     *  of the basis index = qubits[i]); 2 <= size <= 5. */
    std::vector<int> qubits;
    /** Index into the fallback gate table (kGateFallback). */
    std::size_t fallback_index = 0;
    /** Index into the cluster-split table (kDenseKq); see
     *  CompiledSegment::cluster_split. */
    std::size_t cluster_index = 0;
};

/** Compile-time counters of one segment. */
struct SegmentStats
{
    /** Gates in the source range. */
    std::size_t source_gates = 0;
    /** Executable ops after lowering (including noisy ops). */
    std::size_t ops = 0;
    /** Ops that carry noise attachment. */
    std::size_t noisy_ops = 0;
    /** Multi-gate fusion clusters merged (any width). */
    std::size_t fused_runs = 0;
    /** Source gates absorbed into those clusters. */
    std::size_t fused_gates_absorbed = 0;
    /** Fused clusters by width ([k] = k-qubit clusters, 1 <= k <= 5). */
    std::size_t fused_width_hist[6] = {0, 0, 0, 0, 0, 0};
    /** Diagonal batches that folded >= 2 gates into one pass. */
    std::size_t diag_batches = 0;

    /** Fraction of per-visit kernel dispatches eliminated by compilation. */
    double
    reduction() const
    {
        return source_gates == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(ops) /
                               static_cast<double>(source_gates);
    }
};

/**
 * An executable, self-contained plan for one circuit segment.  Compiled once
 * per tree level; executed at every node of that level.  Holds no pointers
 * into the source circuit.
 */
class CompiledSegment
{
  public:
    /** Compiles gates [begin, end) of @p circuit.  @p noisy_mask is indexed
     *  by absolute gate position and must cover the range; gates whose mask
     *  bit is set are kept at gate granularity and flagged op.noisy.
     *  @p fusion bounds the cluster width for noise-free runs
     *  (max_fused_qubits = 1 restores the 1q-run-only pass). */
    static CompiledSegment compile(const Circuit& circuit, std::size_t begin,
                                   std::size_t end,
                                   const std::vector<bool>& noisy_mask,
                                   const FusionOptions& fusion = {});

    /** The ops in execution order. */
    const std::vector<SegOp>& ops() const { return ops_; }

    /** Register width the segment was compiled for. */
    int num_qubits() const { return num_qubits_; }

    /** Compile-time counters. */
    const SegmentStats& stats() const { return stats_; }

    /** Applies @p op's amplitude work (channel application is the caller's
     *  job for noisy ops).  @p diag_fused_min: fused-diagonal switch-over
     *  in amplitudes, 0 = the global sim::fused_diag_threshold(). */
    void apply_op(StateVector& state, const SegOp& op,
                  Index diag_fused_min = 0) const;

    /** Applies every op ignoring noise flags (ideal-execution helper for
     *  tests and noise-free callers). */
    void apply_ideal(StateVector& state) const;

    /** The verbatim gate behind a kGateFallback op. */
    const Gate& fallback_gate(std::size_t index) const
    {
        return fallback_gates_.at(index);
    }

    /** The solo lowerings of a kDenseKq op's member gates, in application
     *  order.  Applying them in sequence is 1e-12-equivalent to the dense
     *  cluster product; backends use this to split a cluster whose in-place
     *  application would need communication (see dist/sharded_backend). */
    const std::vector<SegOp>& cluster_split(std::size_t index) const
    {
        return cluster_splits_.at(index);
    }

  private:
    int num_qubits_ = 0;
    std::vector<SegOp> ops_;
    /** Verbatim gates referenced by kGateFallback ops. */
    std::vector<Gate> fallback_gates_;
    /** Member split plans referenced by kDenseKq ops. */
    std::vector<std::vector<SegOp>> cluster_splits_;
    SegmentStats stats_;
};

/**
 * Applies one self-contained SegOp to a dense state — every kind except
 * kGateFallback (which needs its CompiledSegment's gate table; use
 * CompiledSegment::apply_op).  Shared by the dense apply path and by
 * backends that re-execute remapped ops on staging states (exchange
 * groups of the sharded engine).
 */
void apply_seg_op(StateVector& state, const SegOp& op,
                  Index diag_fused_min = 0);

/**
 * Writes the operand qubits of @p op into @p out (size >= 3) and returns
 * the operand count.  Returns 0 for ops without positional operands
 * (kIdentity, kDiagBatch — whose qubits live in the term masks —,
 * kDenseKq — whose operands live in op.qubits — and kGateFallback, whose
 * operands come from the fallback gate).
 */
int seg_op_operands(const SegOp& op, int out[3]);

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_SEGMENT_PLAN_H_
