#include "sim/gate.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/assert.h"

namespace tqsim::sim {

namespace {

constexpr Complex kI1{0.0, 1.0};

Complex
expi(double theta)
{
    return Complex{std::cos(theta), std::sin(theta)};
}

void
check_distinct(const std::vector<int>& qubits)
{
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (qubits[i] < 0) {
            throw std::invalid_argument("gate qubit index must be >= 0");
        }
        for (std::size_t j = i + 1; j < qubits.size(); ++j) {
            if (qubits[i] == qubits[j]) {
                throw std::invalid_argument("gate qubits must be distinct");
            }
        }
    }
}

}  // namespace

std::string
gate_kind_name(GateKind kind)
{
    switch (kind) {
      case GateKind::kI: return "i";
      case GateKind::kX: return "x";
      case GateKind::kY: return "y";
      case GateKind::kZ: return "z";
      case GateKind::kH: return "h";
      case GateKind::kS: return "s";
      case GateKind::kSdg: return "sdg";
      case GateKind::kT: return "t";
      case GateKind::kTdg: return "tdg";
      case GateKind::kSX: return "sx";
      case GateKind::kSXdg: return "sxdg";
      case GateKind::kRX: return "rx";
      case GateKind::kRY: return "ry";
      case GateKind::kRZ: return "rz";
      case GateKind::kPhase: return "p";
      case GateKind::kU3: return "u3";
      case GateKind::kCX: return "cx";
      case GateKind::kCZ: return "cz";
      case GateKind::kCPhase: return "cp";
      case GateKind::kSWAP: return "swap";
      case GateKind::kISwap: return "iswap";
      case GateKind::kRZZ: return "rzz";
      case GateKind::kFSim: return "fsim";
      case GateKind::kCCX: return "ccx";
      case GateKind::kUnitary1q: return "u1q";
      case GateKind::kUnitary2q: return "u2q";
      case GateKind::kUnitaryKq: return "ukq";
    }
    return "?";
}

int
gate_kind_arity(GateKind kind)
{
    switch (kind) {
      case GateKind::kI:
      case GateKind::kX:
      case GateKind::kY:
      case GateKind::kZ:
      case GateKind::kH:
      case GateKind::kS:
      case GateKind::kSdg:
      case GateKind::kT:
      case GateKind::kTdg:
      case GateKind::kSX:
      case GateKind::kSXdg:
      case GateKind::kRX:
      case GateKind::kRY:
      case GateKind::kRZ:
      case GateKind::kPhase:
      case GateKind::kU3:
      case GateKind::kUnitary1q:
        return 1;
      case GateKind::kCX:
      case GateKind::kCZ:
      case GateKind::kCPhase:
      case GateKind::kSWAP:
      case GateKind::kISwap:
      case GateKind::kRZZ:
      case GateKind::kFSim:
      case GateKind::kUnitary2q:
        return 2;
      case GateKind::kCCX:
        return 3;
      case GateKind::kUnitaryKq:
        return -1;  // per-instance: the gate's qubit-list length
    }
    return 0;
}

int
gate_kind_param_count(GateKind kind)
{
    switch (kind) {
      case GateKind::kRX:
      case GateKind::kRY:
      case GateKind::kRZ:
      case GateKind::kPhase:
      case GateKind::kCPhase:
      case GateKind::kRZZ:
        return 1;
      case GateKind::kFSim:
        return 2;
      case GateKind::kU3:
        return 3;
      default:
        return 0;
    }
}

Gate::Gate(GateKind kind, std::vector<int> qubits, std::vector<double> params,
           Matrix custom, std::string label)
    : kind_(kind),
      qubits_(std::move(qubits)),
      params_(std::move(params)),
      custom_(std::move(custom)),
      label_(std::move(label))
{
    check_distinct(qubits_);
    if (kind == GateKind::kUnitaryKq) {
        const std::size_t k = qubits_.size();
        if (k < 3 || k > 5) {
            throw std::invalid_argument("unitary_kq requires 3 to 5 qubits");
        }
        const std::size_t d = std::size_t{1} << k;
        if (custom_.size() != d * d) {
            throw std::invalid_argument(
                "unitary_kq requires a 2^k x 2^k matrix");
        }
        return;
    }
    if (static_cast<int>(qubits_.size()) != gate_kind_arity(kind)) {
        throw std::invalid_argument("gate qubit count mismatch for " +
                                    gate_kind_name(kind));
    }
    if (kind != GateKind::kUnitary1q && kind != GateKind::kUnitary2q &&
        static_cast<int>(params_.size()) != gate_kind_param_count(kind)) {
        throw std::invalid_argument("gate parameter count mismatch for " +
                                    gate_kind_name(kind));
    }
    if (kind == GateKind::kUnitary1q && custom_.size() != 4) {
        throw std::invalid_argument("unitary1q requires a 2x2 matrix");
    }
    if (kind == GateKind::kUnitary2q && custom_.size() != 16) {
        throw std::invalid_argument("unitary2q requires a 4x4 matrix");
    }
}

// ---- Factories -------------------------------------------------------------

Gate Gate::i(int q) { return Gate(GateKind::kI, {q}, {}); }
Gate Gate::x(int q) { return Gate(GateKind::kX, {q}, {}); }
Gate Gate::y(int q) { return Gate(GateKind::kY, {q}, {}); }
Gate Gate::z(int q) { return Gate(GateKind::kZ, {q}, {}); }
Gate Gate::h(int q) { return Gate(GateKind::kH, {q}, {}); }
Gate Gate::s(int q) { return Gate(GateKind::kS, {q}, {}); }
Gate Gate::sdg(int q) { return Gate(GateKind::kSdg, {q}, {}); }
Gate Gate::t(int q) { return Gate(GateKind::kT, {q}, {}); }
Gate Gate::tdg(int q) { return Gate(GateKind::kTdg, {q}, {}); }
Gate Gate::sx(int q) { return Gate(GateKind::kSX, {q}, {}); }
Gate Gate::sxdg(int q) { return Gate(GateKind::kSXdg, {q}, {}); }
Gate Gate::rx(int q, double theta) { return Gate(GateKind::kRX, {q}, {theta}); }
Gate Gate::ry(int q, double theta) { return Gate(GateKind::kRY, {q}, {theta}); }
Gate Gate::rz(int q, double theta) { return Gate(GateKind::kRZ, {q}, {theta}); }

Gate
Gate::phase(int q, double lambda)
{
    return Gate(GateKind::kPhase, {q}, {lambda});
}

Gate
Gate::u3(int q, double theta, double phi, double lambda)
{
    return Gate(GateKind::kU3, {q}, {theta, phi, lambda});
}

Gate
Gate::unitary1q(int q, Matrix m, std::string label)
{
    return Gate(GateKind::kUnitary1q, {q}, {}, std::move(m), std::move(label));
}

Gate Gate::cx(int control, int target)
{
    return Gate(GateKind::kCX, {control, target}, {});
}

Gate Gate::cz(int a, int b) { return Gate(GateKind::kCZ, {a, b}, {}); }

Gate
Gate::cphase(int a, int b, double lambda)
{
    return Gate(GateKind::kCPhase, {a, b}, {lambda});
}

Gate Gate::swap(int a, int b) { return Gate(GateKind::kSWAP, {a, b}, {}); }
Gate Gate::iswap(int a, int b) { return Gate(GateKind::kISwap, {a, b}, {}); }

Gate
Gate::rzz(int a, int b, double theta)
{
    return Gate(GateKind::kRZZ, {a, b}, {theta});
}

Gate
Gate::fsim(int a, int b, double theta, double phi)
{
    return Gate(GateKind::kFSim, {a, b}, {theta, phi});
}

Gate
Gate::ccx(int c0, int c1, int target)
{
    return Gate(GateKind::kCCX, {c0, c1, target}, {});
}

Gate
Gate::unitary2q(int q0, int q1, Matrix m, std::string label)
{
    return Gate(GateKind::kUnitary2q, {q0, q1}, {}, std::move(m),
                std::move(label));
}

Gate
Gate::unitary_kq(std::vector<int> qubits, Matrix m, std::string label)
{
    if (qubits.size() == 1) {
        return unitary1q(qubits[0], std::move(m), std::move(label));
    }
    if (qubits.size() == 2) {
        return unitary2q(qubits[0], qubits[1], std::move(m),
                         std::move(label));
    }
    return Gate(GateKind::kUnitaryKq, std::move(qubits), {}, std::move(m),
                std::move(label));
}

// ---- Properties ------------------------------------------------------------

bool
Gate::is_diagonal() const
{
    switch (kind_) {
      case GateKind::kI:
      case GateKind::kZ:
      case GateKind::kS:
      case GateKind::kSdg:
      case GateKind::kT:
      case GateKind::kTdg:
      case GateKind::kRZ:
      case GateKind::kPhase:
      case GateKind::kCZ:
      case GateKind::kCPhase:
      case GateKind::kRZZ:
        return true;
      default:
        return false;
    }
}

Matrix
Gate::matrix() const
{
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    switch (kind_) {
      case GateKind::kI:
        return {1, 0, 0, 1};
      case GateKind::kX:
        return {0, 1, 1, 0};
      case GateKind::kY:
        return {0, -kI1, kI1, 0};
      case GateKind::kZ:
        return {1, 0, 0, -1};
      case GateKind::kH:
        return {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
      case GateKind::kS:
        return {1, 0, 0, kI1};
      case GateKind::kSdg:
        return {1, 0, 0, -kI1};
      case GateKind::kT:
        return {1, 0, 0, expi(M_PI / 4)};
      case GateKind::kTdg:
        return {1, 0, 0, expi(-M_PI / 4)};
      case GateKind::kSX: {
        const Complex a{0.5, 0.5}, b{0.5, -0.5};
        return {a, b, b, a};
      }
      case GateKind::kSXdg: {
        const Complex a{0.5, -0.5}, b{0.5, 0.5};
        return {a, b, b, a};
      }
      case GateKind::kRX: {
        const double h = params_[0] / 2.0;
        const Complex c{std::cos(h), 0.0};
        const Complex s{0.0, -std::sin(h)};
        return {c, s, s, c};
      }
      case GateKind::kRY: {
        const double h = params_[0] / 2.0;
        const double c = std::cos(h), s = std::sin(h);
        return {c, -s, s, c};
      }
      case GateKind::kRZ: {
        const double h = params_[0] / 2.0;
        return {expi(-h), 0, 0, expi(h)};
      }
      case GateKind::kPhase:
        return {1, 0, 0, expi(params_[0])};
      case GateKind::kU3: {
        const double th = params_[0] / 2.0;
        const double phi = params_[1], lam = params_[2];
        return {Complex{std::cos(th), 0.0}, -expi(lam) * std::sin(th),
                expi(phi) * std::sin(th), expi(phi + lam) * std::cos(th)};
      }
      case GateKind::kCX: {
        // Basis index = control + 2*target.
        Matrix m(16, Complex{0.0, 0.0});
        m[0 * 4 + 0] = 1;   // |c0 t0> fixed
        m[3 * 4 + 1] = 1;   // |c1 t0> -> |c1 t1>
        m[2 * 4 + 2] = 1;   // |c0 t1> fixed
        m[1 * 4 + 3] = 1;   // |c1 t1> -> |c1 t0>
        return m;
      }
      case GateKind::kCZ: {
        Matrix m(16, Complex{0.0, 0.0});
        m[0] = m[5] = m[10] = 1;
        m[15] = -1;
        return m;
      }
      case GateKind::kCPhase: {
        Matrix m(16, Complex{0.0, 0.0});
        m[0] = m[5] = m[10] = 1;
        m[15] = expi(params_[0]);
        return m;
      }
      case GateKind::kSWAP: {
        Matrix m(16, Complex{0.0, 0.0});
        m[0 * 4 + 0] = 1;
        m[2 * 4 + 1] = 1;
        m[1 * 4 + 2] = 1;
        m[3 * 4 + 3] = 1;
        return m;
      }
      case GateKind::kISwap: {
        Matrix m(16, Complex{0.0, 0.0});
        m[0 * 4 + 0] = 1;
        m[2 * 4 + 1] = kI1;
        m[1 * 4 + 2] = kI1;
        m[3 * 4 + 3] = 1;
        return m;
      }
      case GateKind::kRZZ: {
        const double h = params_[0] / 2.0;
        Matrix m(16, Complex{0.0, 0.0});
        m[0] = expi(-h);
        m[5] = expi(h);
        m[10] = expi(h);
        m[15] = expi(-h);
        return m;
      }
      case GateKind::kFSim: {
        const double th = params_[0], phi = params_[1];
        Matrix m(16, Complex{0.0, 0.0});
        m[0] = 1;
        m[5] = std::cos(th);
        m[6] = -kI1 * std::sin(th);
        m[9] = -kI1 * std::sin(th);
        m[10] = std::cos(th);
        m[15] = expi(-phi);
        return m;
      }
      case GateKind::kCCX: {
        // Basis index = c0 + 2*c1 + 4*t; flips t when c0 = c1 = 1.
        Matrix m(64, Complex{0.0, 0.0});
        for (int in = 0; in < 8; ++in) {
            int out = in;
            if ((in & 3) == 3) {
                out = in ^ 4;
            }
            m[out * 8 + in] = 1;
        }
        return m;
      }
      case GateKind::kUnitary1q:
      case GateKind::kUnitary2q:
      case GateKind::kUnitaryKq:
        return custom_;
    }
    TQSIM_ASSERT_MSG(false, "unreachable gate kind");
    return {};
}

Gate
Gate::dagger() const
{
    switch (kind_) {
      // Self-adjoint gates.
      case GateKind::kI:
      case GateKind::kX:
      case GateKind::kY:
      case GateKind::kZ:
      case GateKind::kH:
      case GateKind::kCX:
      case GateKind::kCZ:
      case GateKind::kSWAP:
      case GateKind::kCCX:
        return *this;
      case GateKind::kS:
        return Gate(GateKind::kSdg, qubits_, {});
      case GateKind::kSdg:
        return Gate(GateKind::kS, qubits_, {});
      case GateKind::kT:
        return Gate(GateKind::kTdg, qubits_, {});
      case GateKind::kTdg:
        return Gate(GateKind::kT, qubits_, {});
      case GateKind::kSX:
        return Gate(GateKind::kSXdg, qubits_, {});
      case GateKind::kSXdg:
        return Gate(GateKind::kSX, qubits_, {});
      case GateKind::kRX:
      case GateKind::kRY:
      case GateKind::kRZ:
      case GateKind::kPhase:
      case GateKind::kCPhase:
      case GateKind::kRZZ:
        return Gate(kind_, qubits_, {-params_[0]});
      case GateKind::kU3:
        return Gate(GateKind::kU3, qubits_,
                    {-params_[0], -params_[2], -params_[1]});
      case GateKind::kFSim:
        return Gate(GateKind::kFSim, qubits_, {-params_[0], -params_[1]});
      case GateKind::kISwap:
        return Gate(GateKind::kUnitary2q, qubits_, {},
                    matrix_dagger(matrix(), 4), "iswap_dg");
      case GateKind::kUnitary1q:
        return Gate(GateKind::kUnitary1q, qubits_, {},
                    matrix_dagger(custom_, 2), label_ + "_dg");
      case GateKind::kUnitary2q:
        return Gate(GateKind::kUnitary2q, qubits_, {},
                    matrix_dagger(custom_, 4), label_ + "_dg");
      case GateKind::kUnitaryKq:
        return Gate(GateKind::kUnitaryKq, qubits_, {},
                    matrix_dagger(custom_, std::size_t{1} << qubits_.size()),
                    label_ + "_dg");
    }
    TQSIM_ASSERT_MSG(false, "unreachable gate kind");
    return *this;
}

std::string
Gate::name() const
{
    if ((kind_ == GateKind::kUnitary1q || kind_ == GateKind::kUnitary2q ||
         kind_ == GateKind::kUnitaryKq) &&
        !label_.empty()) {
        return label_;
    }
    return gate_kind_name(kind_);
}

std::string
Gate::to_string() const
{
    std::ostringstream os;
    os << name();
    if (!params_.empty()) {
        os << '(';
        for (std::size_t i = 0; i < params_.size(); ++i) {
            if (i) {
                os << ',';
            }
            os << params_[i];
        }
        os << ')';
    }
    os << ' ';
    for (std::size_t i = 0; i < qubits_.size(); ++i) {
        if (i) {
            os << ',';
        }
        os << 'q' << qubits_[i];
    }
    return os.str();
}

Gate
Gate::remapped(const std::vector<int>& mapping) const
{
    std::vector<int> new_qubits;
    new_qubits.reserve(qubits_.size());
    for (int q : qubits_) {
        if (q < 0 || q >= static_cast<int>(mapping.size())) {
            throw std::out_of_range("remapped: qubit outside mapping");
        }
        new_qubits.push_back(mapping[q]);
    }
    return Gate(kind_, std::move(new_qubits), params_, custom_, label_);
}

bool
Gate::operator==(const Gate& other) const
{
    return kind_ == other.kind_ && qubits_ == other.qubits_ &&
           params_ == other.params_ && custom_ == other.custom_;
}

// ---- Free helpers ----------------------------------------------------------

Matrix
expand_gate(const Gate& gate, int num_qubits)
{
    const int arity = gate.arity();
    for (int q : gate.qubits()) {
        if (q >= num_qubits) {
            throw std::invalid_argument("expand_gate: qubit out of register");
        }
    }
    const Index full_dim = dim(num_qubits);
    const Matrix small = gate.matrix();
    const int small_dim = 1 << arity;
    Matrix full(full_dim * full_dim, Complex{0.0, 0.0});

    for (Index col = 0; col < full_dim; ++col) {
        // Extract gate-local input bits from the column index.
        int in_local = 0;
        for (int k = 0; k < arity; ++k) {
            if (col & (Index{1} << gate.qubits()[k])) {
                in_local |= 1 << k;
            }
        }
        const Index rest = [&] {
            Index r = col;
            for (int k = 0; k < arity; ++k) {
                r &= ~(Index{1} << gate.qubits()[k]);
            }
            return r;
        }();
        for (int out_local = 0; out_local < small_dim; ++out_local) {
            const Complex v = small[out_local * small_dim + in_local];
            if (v == Complex{0.0, 0.0}) {
                continue;
            }
            Index row = rest;
            for (int k = 0; k < arity; ++k) {
                if (out_local & (1 << k)) {
                    row |= Index{1} << gate.qubits()[k];
                }
            }
            full[row * full_dim + col] = v;
        }
    }
    return full;
}

Matrix
matmul(const Matrix& a, const Matrix& b, std::size_t d)
{
    TQSIM_ASSERT(a.size() == d * d && b.size() == d * d);
    Matrix out(d * d, Complex{0.0, 0.0});
    for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t k = 0; k < d; ++k) {
            const Complex arck = a[r * d + k];
            if (arck == Complex{0.0, 0.0}) {
                continue;
            }
            for (std::size_t c = 0; c < d; ++c) {
                out[r * d + c] += arck * b[k * d + c];
            }
        }
    }
    return out;
}

Matrix
matrix_dagger(const Matrix& m, std::size_t d)
{
    TQSIM_ASSERT(m.size() == d * d);
    Matrix out(d * d);
    for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            out[c * d + r] = std::conj(m[r * d + c]);
        }
    }
    return out;
}

bool
is_unitary(const Matrix& m, std::size_t d, double tol)
{
    const Matrix prod = matmul(matrix_dagger(m, d), m, d);
    for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            const Complex want = (r == c) ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
            if (std::abs(prod[r * d + c] - want) > tol) {
                return false;
            }
        }
    }
    return true;
}

}  // namespace tqsim::sim
