#include "sim/segment_plan.h"

#include <bit>
#include <stdexcept>

#include "sim/fusion.h"
#include "util/assert.h"

namespace tqsim::sim {

namespace {

constexpr Complex kOne{1.0, 0.0};
constexpr Complex kNull{0.0, 0.0};

/** A diagonal run being folded into one elementwise pass. */
struct PendingBatch
{
    std::vector<DiagTerm> terms;
    /** Source-sequence gates folded so far (includes identities). */
    std::size_t folded = 0;

    bool empty() const { return terms.empty() && folded == 0; }
};

void
merge_diag_term(PendingBatch& batch, Index mask0, Index mask1, Complex d0,
                Complex d1, Complex d2, Complex d3)
{
    if (mask1 != 0 && mask0 > mask1) {
        std::swap(mask0, mask1);
        std::swap(d1, d2);
    }
    for (DiagTerm& t : batch.terms) {
        if (t.mask0 == mask0 && t.mask1 == mask1) {
            t.d[0] *= d0;
            t.d[1] *= d1;
            t.d[2] *= d2;
            t.d[3] *= d3;
            ++batch.folded;
            return;
        }
    }
    DiagTerm t;
    t.mask0 = mask0;
    t.mask1 = mask1;
    t.d[0] = d0;
    t.d[1] = d1;
    t.d[2] = d2;
    t.d[3] = d3;
    batch.terms.push_back(t);
    ++batch.folded;
}

/** True when @p g is diagonal — native diagonal kinds plus diagonal fusion
 *  products (their off-diagonal entries are exact zeros by construction). */
bool
is_diagonal_gate(const Gate& g, Matrix& m_out)
{
    if (g.kind() == GateKind::kUnitary1q) {
        m_out = g.matrix();
        return m_out[1] == kNull && m_out[2] == kNull;
    }
    if (g.arity() <= 2 && g.is_diagonal() && g.kind() != GateKind::kI) {
        m_out = g.matrix();
        return true;
    }
    return false;
}

/** Detects controlled-U structure in a dense 4x4 (basis: bit0 = q0).
 *  On success fills control/target/u2x2 and returns true. */
bool
try_lower_controlled(const Matrix& m, int q0, int q1, int* control,
                     int* target, Matrix* u)
{
    auto zero = [&m](int r, int c) { return m[r * 4 + c] == kNull; };
    auto one = [&m](int r, int c) { return m[r * 4 + c] == kOne; };
    // Control on q1 (matrix bit 1): identity on rows/cols {0, 1}.
    if (one(0, 0) && one(1, 1) && zero(0, 1) && zero(1, 0) && zero(0, 2) &&
        zero(0, 3) && zero(1, 2) && zero(1, 3) && zero(2, 0) && zero(2, 1) &&
        zero(3, 0) && zero(3, 1)) {
        *control = q1;
        *target = q0;
        *u = {m[10], m[11], m[14], m[15]};
        return true;
    }
    // Control on q0 (matrix bit 0): identity on rows/cols {0, 2}.
    if (one(0, 0) && one(2, 2) && zero(0, 2) && zero(2, 0) && zero(0, 1) &&
        zero(0, 3) && zero(2, 1) && zero(2, 3) && zero(1, 0) && zero(1, 2) &&
        zero(3, 0) && zero(3, 2)) {
        *control = q0;
        *target = q1;
        *u = {m[5], m[7], m[13], m[15]};
        return true;
    }
    return false;
}

/** Bit position of a one-hot mask. */
int
mask_to_qubit(Index mask)
{
    return std::countr_zero(mask);
}

/**
 * Converts a finished batch into an op.  A batch that reduced to a single
 * controlled-phase-shaped term (d00 = d01 = d10 = 1) is emitted as a
 * kCPhase op so it runs the quarter-space kernel instead of a full pass.
 */
SegOp
batch_to_op(PendingBatch&& batch)
{
    SegOp op;
    if (batch.terms.empty()) {
        op.kind = SegOpKind::kIdentity;
        return op;
    }
    if (batch.terms.size() == 1 && batch.terms[0].mask1 != 0 &&
        batch.terms[0].d[0] == kOne && batch.terms[0].d[1] == kOne &&
        batch.terms[0].d[2] == kOne) {
        op.kind = SegOpKind::kCPhase;
        op.q0 = mask_to_qubit(batch.terms[0].mask0);
        op.q1 = mask_to_qubit(batch.terms[0].mask1);
        op.matrix = {batch.terms[0].d[3]};
        return op;
    }
    op.kind = SegOpKind::kDiagBatch;
    op.diag = std::move(batch.terms);
    return op;
}

/** Accumulates lowered ops for one CompiledSegment. */
struct Lowerer
{
    std::vector<SegOp>& ops;
    std::vector<Gate>& fallback_gates;
    SegmentStats& stats;
    PendingBatch pending;
    /** Cluster-split table of the segment under construction (null for
     *  scratch sub-lowerers, which never see cluster gates). */
    std::vector<std::vector<SegOp>>* cluster_splits = nullptr;

    void
    flush_pending()
    {
        if (pending.empty()) {
            return;
        }
        if (pending.folded >= 2) {
            ++stats.diag_batches;
        }
        ops.push_back(batch_to_op(std::move(pending)));
        pending = PendingBatch{};
    }

    /**
     * Lowers one gate to a kernel op.  @p in_run is true for gates inside a
     * noise-free run: diagonals then accumulate in `pending` and dense 2q
     * ops may take the controlled fast path.  Noisy gates pass false — they
     * emit exactly one op whose q0..q2 stay in source-operand order so the
     * channel-attachment loop sees the same operands as the gate-at-a-time
     * path.
     */
    void
    lower(const Gate& g, bool in_run)
    {
        const auto& q = g.qubits();
        Matrix m;
        if (g.kind() == GateKind::kI) {
            if (in_run) {
                ++pending.folded;
            } else {
                ops.emplace_back();  // kIdentity
            }
            return;
        }
        if (is_diagonal_gate(g, m)) {
            PendingBatch solo;
            PendingBatch& batch = in_run ? pending : solo;
            if (g.arity() == 1) {
                merge_diag_term(batch, Index{1} << q[0], 0, m[0], m[3], kOne,
                                kOne);
            } else {
                merge_diag_term(batch, Index{1} << q[0], Index{1} << q[1],
                                m[0], m[5], m[10], m[15]);
            }
            if (!in_run) {
                ops.push_back(batch_to_op(std::move(solo)));
            }
            return;
        }
        if (in_run) {
            flush_pending();
        }
        SegOp op;
        switch (g.kind()) {
          case GateKind::kX:
            op.kind = SegOpKind::kX;
            break;
          case GateKind::kCX:
            op.kind = SegOpKind::kCX;
            break;
          case GateKind::kSWAP:
            op.kind = SegOpKind::kSwap;
            break;
          case GateKind::kCCX:
            op.kind = SegOpKind::kCCX;
            break;
          default:
            switch (g.arity()) {
              case 1:
                op.kind = SegOpKind::kDense1q;
                op.matrix = g.matrix();
                break;
              case 2: {
                const Matrix dense = g.matrix();
                int control = -1, target = -1;
                Matrix u;
                if (in_run && try_lower_controlled(dense, q[0], q[1],
                                                   &control, &target, &u)) {
                    op.kind = SegOpKind::kControlled1q;
                    op.matrix = std::move(u);
                    op.q0 = control;
                    op.q1 = target;
                    ops.push_back(std::move(op));
                    return;
                }
                op.kind = SegOpKind::kDense2q;
                op.matrix = dense;
                break;
              }
              case 3:
                op.kind = SegOpKind::kDense3q;
                op.matrix = g.matrix();
                break;
              default:
                op.kind = SegOpKind::kGateFallback;
                op.fallback_index = fallback_gates.size();
                fallback_gates.push_back(g);
                break;
            }
            break;
        }
        op.q0 = q.empty() ? -1 : q[0];
        op.q1 = q.size() > 1 ? q[1] : -1;
        op.q2 = q.size() > 2 ? q[2] : -1;
        ops.push_back(std::move(op));
    }

    /**
     * Lowers one fused entry of a noise-free run: multi-gate clusters
     * become a kDenseKq gather/scatter op (with the members' solo
     * lowerings recorded for backends that must split the cluster), except
     * 2q cluster products with controlled structure, which keep the
     * half-space fast path.  Pass-through entries take the ordinary path.
     */
    void
    lower_fused(FusedGate& f)
    {
        if (!f.is_cluster() || f.gate.arity() < 2) {
            lower(f.gate, /*in_run=*/true);
            return;
        }
        flush_pending();
        const std::vector<int>& q = f.gate.qubits();
        SegOp op;
        if (f.gate.arity() == 2) {
            int control = -1, target = -1;
            Matrix u;
            if (try_lower_controlled(f.gate.matrix(), q[0], q[1], &control,
                                     &target, &u)) {
                op.kind = SegOpKind::kControlled1q;
                op.matrix = std::move(u);
                op.q0 = control;
                op.q1 = target;
                ops.push_back(std::move(op));
                return;
            }
        }
        op.kind = SegOpKind::kDenseKq;
        op.qubits = q;
        op.matrix = f.gate.matrix();
        // Solo-lower the members through a scratch Lowerer so a backend
        // can replay the cluster gate by gate (diagonal members still
        // batch among themselves; order is preserved).
        std::vector<SegOp> split;
        std::vector<Gate> no_fallbacks;
        SegmentStats scratch;
        Lowerer sub{split, no_fallbacks, scratch, {}, nullptr};
        for (const Gate& member : f.members) {
            sub.lower(member, /*in_run=*/true);
        }
        sub.flush_pending();
        TQSIM_ASSERT(no_fallbacks.empty());
        op.cluster_index = cluster_splits->size();
        cluster_splits->push_back(std::move(split));
        ops.push_back(std::move(op));
    }
};

}  // namespace

CompiledSegment
CompiledSegment::compile(const Circuit& circuit, std::size_t begin,
                         std::size_t end,
                         const std::vector<bool>& noisy_mask,
                         const FusionOptions& fusion)
{
    if (begin > end || end > circuit.size() || noisy_mask.size() < end) {
        throw std::invalid_argument(
            "CompiledSegment::compile: bad range or mask");
    }
    CompiledSegment seg;
    seg.num_qubits_ = circuit.num_qubits();
    seg.stats_.source_gates = end - begin;
    const std::vector<Gate>& gates = circuit.gates();
    Lowerer lowerer{seg.ops_, seg.fallback_gates_, seg.stats_, {},
                    &seg.cluster_splits_};

    std::size_t i = begin;
    while (i < end) {
        if (noisy_mask[i]) {
            const Gate& g = gates[i];
            if (g.arity() > 3) {
                // SegOp carries at most three operand qubits for channel
                // attachment; fail loudly rather than mis-attach channels.
                throw std::invalid_argument(
                    "CompiledSegment::compile: noisy gates with arity > 3 "
                    "are unsupported");
            }
            const std::size_t first = seg.ops_.size();
            lowerer.lower(g, /*in_run=*/false);
            SegOp& op = seg.ops_[first];
            op.noisy = true;
            op.arity = static_cast<std::uint8_t>(g.arity());
            const auto& q = g.qubits();
            op.q0 = q.empty() ? -1 : q[0];
            op.q1 = q.size() > 1 ? q[1] : -1;
            op.q2 = q.size() > 2 ? q[2] : -1;
            op.source_gates = 1;
            ++seg.stats_.noisy_ops;
            ++i;
            continue;
        }
        // Maximal noise-free run: cluster-fuse, then lower with diagonal
        // batching.  Source-gate attribution is distributed 1-per-op with
        // the remainder on the run's first op, so executed counters match
        // the gate-at-a-time path exactly.
        std::size_t j = i;
        while (j < end && !noisy_mask[j]) {
            ++j;
        }
        FusionStats fstats;
        std::vector<FusedGate> fused = fuse_clusters(
            &gates[i], j - i, circuit.num_qubits(), fusion, &fstats);
        seg.stats_.fused_runs += fstats.runs_fused;
        seg.stats_.fused_gates_absorbed += fstats.gates_absorbed;
        for (int w = 1; w <= 5; ++w) {
            seg.stats_.fused_width_hist[w] += fstats.width_hist[w];
        }
        const std::size_t ops_before = seg.ops_.size();
        for (FusedGate& f : fused) {
            lowerer.lower_fused(f);
        }
        lowerer.flush_pending();
        const std::size_t emitted = seg.ops_.size() - ops_before;
        TQSIM_ASSERT(emitted >= 1 && emitted <= j - i);
        for (std::size_t k = ops_before; k < seg.ops_.size(); ++k) {
            seg.ops_[k].source_gates = 1;
        }
        seg.ops_[ops_before].source_gates =
            static_cast<std::uint32_t>((j - i) - (emitted - 1));
        i = j;
    }
    seg.stats_.ops = seg.ops_.size();
    return seg;
}

void
apply_seg_op(StateVector& state, const SegOp& op, Index diag_fused_min)
{
    switch (op.kind) {
      case SegOpKind::kIdentity:
        return;
      case SegOpKind::kDiagBatch:
        apply_diag_batch(state, op.diag.data(), op.diag.size(),
                         diag_fused_min);
        return;
      case SegOpKind::kCPhase:
        apply_cphase(state, op.q0, op.q1, op.matrix[0]);
        return;
      case SegOpKind::kDense1q:
        apply_1q_matrix(state, op.q0, op.matrix);
        return;
      case SegOpKind::kControlled1q:
        apply_controlled_1q(state, op.q0, op.q1, op.matrix);
        return;
      case SegOpKind::kDense2q:
        apply_2q_matrix(state, op.q0, op.q1, op.matrix);
        return;
      case SegOpKind::kDense3q:
        apply_3q_matrix(state, op.q0, op.q1, op.q2, op.matrix);
        return;
      case SegOpKind::kDenseKq:
        apply_dense_kq(state, op.qubits.data(),
                       static_cast<int>(op.qubits.size()), op.matrix);
        return;
      case SegOpKind::kX:
        apply_x(state, op.q0);
        return;
      case SegOpKind::kCX:
        apply_cx(state, op.q0, op.q1);
        return;
      case SegOpKind::kSwap:
        apply_swap(state, op.q0, op.q1);
        return;
      case SegOpKind::kCCX:
        apply_ccx(state, op.q0, op.q1, op.q2);
        return;
      case SegOpKind::kGateFallback:
        throw std::invalid_argument(
            "apply_seg_op: kGateFallback needs its CompiledSegment");
    }
}

int
seg_op_operands(const SegOp& op, int out[3])
{
    switch (op.kind) {
      case SegOpKind::kIdentity:
      case SegOpKind::kDiagBatch:
      case SegOpKind::kDenseKq:
      case SegOpKind::kGateFallback:
        return 0;
      case SegOpKind::kDense1q:
      case SegOpKind::kX:
        out[0] = op.q0;
        return 1;
      case SegOpKind::kCPhase:
      case SegOpKind::kControlled1q:
      case SegOpKind::kDense2q:
      case SegOpKind::kCX:
      case SegOpKind::kSwap:
        out[0] = op.q0;
        out[1] = op.q1;
        return 2;
      case SegOpKind::kDense3q:
      case SegOpKind::kCCX:
        out[0] = op.q0;
        out[1] = op.q1;
        out[2] = op.q2;
        return 3;
    }
    return 0;
}

void
CompiledSegment::apply_op(StateVector& state, const SegOp& op,
                          Index diag_fused_min) const
{
    if (op.kind == SegOpKind::kGateFallback) {
        apply_gate(state, fallback_gates_[op.fallback_index]);
        return;
    }
    apply_seg_op(state, op, diag_fused_min);
}

void
CompiledSegment::apply_ideal(StateVector& state) const
{
    for (const SegOp& op : ops_) {
        apply_op(state, op);
    }
}

}  // namespace tqsim::sim
