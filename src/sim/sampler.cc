#include "sim/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.h"

namespace tqsim::sim {

Index
sample_once(const StateVector& state, util::Rng& rng)
{
    const Complex* amps = state.data();
    return sample_walk(state.size(), state.norm_squared(),
                       [amps](Index i) { return amps[i]; }, rng);
}

std::vector<Index>
sample_many(const StateVector& state, std::size_t n, util::Rng& rng)
{
    return sample_many_from_probabilities(state.probabilities(), n, rng);
}

Index
sample_from_probabilities(const std::vector<double>& probs, util::Rng& rng)
{
    if (probs.empty()) {
        throw std::invalid_argument("sample_from_probabilities: empty vector");
    }
    double total = 0.0;
    for (double p : probs) {
        if (p < 0.0) {
            throw std::invalid_argument(
                "sample_from_probabilities: negative probability");
        }
        total += p;
    }
    if (total <= 0.0) {
        throw std::invalid_argument(
            "sample_from_probabilities: zero total mass");
    }
    const double u = rng.uniform() * total;
    double acc = 0.0;
    Index last_nonzero = 0;
    for (Index i = 0; i < probs.size(); ++i) {
        if (probs[i] > 0.0) {
            last_nonzero = i;
        }
        acc += probs[i];
        if (u < acc) {
            return i;
        }
    }
    return last_nonzero;
}

std::vector<Index>
sample_many_from_probabilities(const std::vector<double>& probs, std::size_t n,
                               util::Rng& rng)
{
    if (probs.empty()) {
        throw std::invalid_argument("sample_many: empty probability vector");
    }
    std::vector<double> cumulative(probs.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        if (probs[i] < 0.0) {
            throw std::invalid_argument("sample_many: negative probability");
        }
        acc += probs[i];
        cumulative[i] = acc;
    }
    if (acc <= 0.0) {
        throw std::invalid_argument("sample_many: zero total mass");
    }
    std::vector<Index> out;
    out.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double u = rng.uniform() * acc;
        const auto it =
            std::upper_bound(cumulative.begin(), cumulative.end(), u);
        Index idx = static_cast<Index>(it - cumulative.begin());
        if (idx >= probs.size()) {
            idx = static_cast<Index>(probs.size()) - 1;
        }
        out.push_back(idx);
    }
    return out;
}

}  // namespace tqsim::sim
