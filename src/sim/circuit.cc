#include "sim/circuit.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/gate_kernels.h"

namespace tqsim::sim {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name))
{
    if (num_qubits < 1 || num_qubits > 30) {
        throw std::invalid_argument("Circuit supports 1..30 qubits");
    }
}

Circuit&
Circuit::append(Gate gate)
{
    for (int q : gate.qubits()) {
        if (q >= num_qubits_) {
            throw std::out_of_range("append: gate qubit " + std::to_string(q) +
                                    " outside register of width " +
                                    std::to_string(num_qubits_));
        }
    }
    gates_.push_back(std::move(gate));
    return *this;
}

std::size_t
Circuit::multi_qubit_gate_count() const
{
    std::size_t n = 0;
    for (const Gate& g : gates_) {
        if (g.is_multi_qubit()) {
            ++n;
        }
    }
    return n;
}

int
Circuit::depth() const
{
    std::vector<int> frontier(num_qubits_, 0);
    int depth = 0;
    for (const Gate& g : gates_) {
        int layer = 0;
        for (int q : g.qubits()) {
            layer = std::max(layer, frontier[q]);
        }
        ++layer;
        for (int q : g.qubits()) {
            frontier[q] = layer;
        }
        depth = std::max(depth, layer);
    }
    return depth;
}

Circuit
Circuit::slice(std::size_t begin, std::size_t end) const
{
    if (begin > end || end > gates_.size()) {
        throw std::out_of_range("slice: invalid gate range");
    }
    Circuit sub(num_qubits_, name_ + "[" + std::to_string(begin) + ":" +
                                 std::to_string(end) + ")");
    sub.gates_.assign(gates_.begin() + static_cast<std::ptrdiff_t>(begin),
                      gates_.begin() + static_cast<std::ptrdiff_t>(end));
    return sub;
}

Circuit
Circuit::inverse() const
{
    Circuit inv(num_qubits_, name_.empty() ? "" : name_ + "_dg");
    inv.gates_.reserve(gates_.size());
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
        inv.gates_.push_back(it->dagger());
    }
    return inv;
}

Circuit&
Circuit::operator+=(const Circuit& other)
{
    if (other.num_qubits_ != num_qubits_) {
        throw std::invalid_argument("circuit composition: width mismatch");
    }
    gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
    return *this;
}

void
Circuit::apply_to(StateVector& state) const
{
    if (state.num_qubits() != num_qubits_) {
        throw std::invalid_argument("apply_to: state width mismatch");
    }
    for (const Gate& g : gates_) {
        apply_gate(state, g);
    }
}

StateVector
Circuit::simulate_ideal() const
{
    StateVector state(num_qubits_);
    apply_to(state);
    return state;
}

std::string
Circuit::to_string() const
{
    std::ostringstream os;
    os << "circuit \"" << name_ << "\" width=" << num_qubits_
       << " length=" << gates_.size() << '\n';
    for (const Gate& g : gates_) {
        os << "  " << g.to_string() << '\n';
    }
    return os.str();
}

}  // namespace tqsim::sim
