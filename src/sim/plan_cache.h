#ifndef TQSIM_SIM_PLAN_CACHE_H_
#define TQSIM_SIM_PLAN_CACHE_H_

/// @file
/// The plan-cache seam: lets a caller of core::execute_tree share compiled
/// segment plans (sim/segment_plan.h) across runs — and, through the service
/// layer's cross-request reuse cache, across concurrent jobs.
///
/// The seam is deliberately dumb: the executor asks for "the plan of level
/// l" and offers back what it compiled on a miss.  All *keying* (circuit-
/// segment fingerprint, noise digest, fusion configuration) happens in the
/// adapter behind this interface, because the layers that can hash circuits
/// (reuse/) and own cross-job state (service/) sit above core in the layer
/// DAG.  A CompiledSegment is immutable after compilation and its apply
/// methods are const, so one instance may be executed by any number of
/// concurrent runs; shared_ptr ownership keeps a cached plan alive for
/// runs that outlive its eviction.

#include <cstddef>
#include <memory>

#include "sim/segment_plan.h"

namespace tqsim::sim {

/// Per-run view of a compiled-plan cache, consulted by core::execute_tree
/// once per tree level at build time (never on the per-node hot path).
///
/// Contract: lookup(l) must return either null or a plan byte-identical to
/// what noise::compile_segment would produce for level l of *this run's*
/// circuit, noise model, and fusion options — the adapter's keys must cover
/// every input that shapes compilation.  Determinism: compile_segment is a
/// pure function of those inputs, so serving a cached plan cannot change
/// amplitudes, RNG streams, outcomes, or deterministic ExecStats counters.
///
/// Thread-safety: an instance is used by one run at a time (the executor
/// calls it from the run's build phase only), but different runs may hold
/// adapters over one shared backing cache concurrently — the backing store
/// must synchronize internally (service::ReuseCache does).
class PlanCache
{
  public:
    virtual ~PlanCache() = default;

    /// Returns the cached plan for tree level @p level, or null on a miss.
    virtual std::shared_ptr<const CompiledSegment> lookup(
        std::size_t level) = 0;

    /// Offers the plan the run compiled for @p level after a miss.  The
    /// cache may decline (capacity); insertion of an already-present key
    /// is a no-op (first writer wins — both plans are identical anyway).
    virtual void insert(std::size_t level,
                        std::shared_ptr<const CompiledSegment> plan) = 0;
};

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_PLAN_CACHE_H_
