#ifndef TQSIM_SIM_TYPES_H_
#define TQSIM_SIM_TYPES_H_

/**
 * @file
 * Fundamental scalar and index types shared across the simulation engine.
 *
 * Convention used throughout the library: qubits are **little-endian** —
 * qubit 0 is the least-significant bit of a basis-state index (Qulacs'
 * convention).  A basis state |b_{n-1} ... b_1 b_0> has index
 * sum_k b_k * 2^k.
 */

#include <complex>
#include <cstdint>
#include <vector>

namespace tqsim::sim {

/** Complex amplitude scalar. */
using Complex = std::complex<double>;

/** Basis-state index; supports up to 63 qubits. */
using Index = std::uint64_t;

/** Dense row-major complex matrix payload (2^a x 2^a for an a-qubit op). */
using Matrix = std::vector<Complex>;

/** Bytes used by one amplitude. */
inline constexpr std::size_t kBytesPerAmplitude = sizeof(Complex);

/** Returns 2^n as an Index. @p n must be < 64. */
constexpr Index
dim(int num_qubits)
{
    return Index{1} << num_qubits;
}

/** Returns the memory footprint in bytes of an @p n-qubit state vector. */
constexpr std::uint64_t
state_vector_bytes(int num_qubits)
{
    return dim(num_qubits) * kBytesPerAmplitude;
}

/** Returns the memory footprint in bytes of an @p n-qubit density matrix. */
constexpr std::uint64_t
density_matrix_bytes(int num_qubits)
{
    return dim(num_qubits) * dim(num_qubits) * kBytesPerAmplitude;
}

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_TYPES_H_
