#include "sim/state_vector.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/parallel.h"
#include "util/assert.h"

namespace tqsim::sim {

namespace {

void
check_qubit_count(int num_qubits)
{
    if (num_qubits < 1 || num_qubits > 30) {
        throw std::invalid_argument(
            "StateVector supports 1..30 qubits, got " +
            std::to_string(num_qubits));
    }
}

}  // namespace

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits)
{
    check_qubit_count(num_qubits);
    amps_.assign(dim(num_qubits), Complex{0.0, 0.0});
    amps_[0] = Complex{1.0, 0.0};
}

StateVector::StateVector(int num_qubits, std::vector<Complex> amplitudes)
    : num_qubits_(num_qubits), amps_(std::move(amplitudes))
{
    check_qubit_count(num_qubits);
    if (amps_.size() != dim(num_qubits)) {
        throw std::invalid_argument(
            "StateVector amplitude count does not match qubit count");
    }
}

void
StateVector::reset()
{
    set_basis_state(0);
}

void
StateVector::set_basis_state(Index basis)
{
    if (basis >= size()) {
        throw std::out_of_range("set_basis_state: index out of range");
    }
    std::fill(amps_.begin(), amps_.end(), Complex{0.0, 0.0});
    amps_[basis] = Complex{1.0, 0.0};
}

double
StateVector::norm_squared() const
{
    // Fixed-block parallel reduction: bit-identical at any thread count.
    const Complex* amps = amps_.data();
    return parallel_sum(size(), [amps](Index begin, Index end) {
        double sum = 0.0;
        for (Index i = begin; i < end; ++i) {
            sum += std::norm(amps[i]);
        }
        return sum;
    });
}

void
StateVector::normalize()
{
    const double n2 = norm_squared();
    if (n2 < 1e-300) {
        throw std::runtime_error("normalize: state has (near-)zero norm");
    }
    const double inv = 1.0 / std::sqrt(n2);
    Complex* amps = amps_.data();
    parallel_for(size(), [amps, inv](Index begin, Index end) {
        for (Index i = begin; i < end; ++i) {
            amps[i] *= inv;
        }
    });
}

Complex
StateVector::inner_product(const StateVector& other) const
{
    if (other.num_qubits_ != num_qubits_) {
        throw std::invalid_argument("inner_product: dimension mismatch");
    }
    const Complex* a = amps_.data();
    const Complex* b = other.amps_.data();
    const std::uint64_t nblocks = num_reduce_blocks(size());
    if (nblocks <= 1) {
        Complex sum{0.0, 0.0};
        for (Index i = 0; i < size(); ++i) {
            sum += std::conj(a[i]) * b[i];
        }
        return sum;
    }
    std::vector<Complex> partials(nblocks, Complex{0.0, 0.0});
    parallel_blocks(size(), [&](std::uint64_t blk, Index begin, Index end) {
        Complex sum{0.0, 0.0};
        for (Index i = begin; i < end; ++i) {
            sum += std::conj(a[i]) * b[i];
        }
        partials[blk] = sum;
    });
    Complex sum{0.0, 0.0};
    for (const Complex& p : partials) {
        sum += p;
    }
    return sum;
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    const Complex* amps = amps_.data();
    double* out = probs.data();
    parallel_for(size(), [amps, out](Index begin, Index end) {
        for (Index i = begin; i < end; ++i) {
            out[i] = std::norm(amps[i]);
        }
    });
    return probs;
}

double
StateVector::probability_of_one(int q) const
{
    if (q < 0 || q >= num_qubits_) {
        throw std::out_of_range("probability_of_one: bad qubit index");
    }
    const Index mask = Index{1} << q;
    const Complex* amps = amps_.data();
    return parallel_sum(size(), [amps, mask](Index begin, Index end) {
        double p = 0.0;
        for (Index i = begin; i < end; ++i) {
            if (i & mask) {
                p += std::norm(amps[i]);
            }
        }
        return p;
    });
}

StateVector
SnapshotPool::lease_copy(const StateVector& src)
{
    while (!free_.empty()) {
        std::vector<Complex> buf = std::move(free_.back());
        free_.pop_back();
        if (buf.size() != src.amps_.size()) {
            continue;  // stale width (e.g. pool reused across runs): drop
        }
        ++hits_;
        // Copy-assign into the recycled capacity: no allocation, just the
        // memcpy the snapshot semantically requires.
        buf = src.amps_;
        return StateVector(src.num_qubits_, std::move(buf));
    }
    ++misses_;
    return src;
}

void
SnapshotPool::release(StateVector&& sv)
{
    if (sv.amps_.empty()) {
        return;  // moved-from (e.g. handed to a reuse child): nothing to keep
    }
    free_.push_back(std::move(sv.amps_));
}

bool
StateVector::approx_equal(const StateVector& other, double tol) const
{
    if (other.num_qubits_ != num_qubits_) {
        return false;
    }
    for (Index i = 0; i < size(); ++i) {
        if (std::abs(amps_[i] - other.amps_[i]) > tol) {
            return false;
        }
    }
    return true;
}

}  // namespace tqsim::sim
