#ifndef TQSIM_SIM_FUSION_H_
#define TQSIM_SIM_FUSION_H_

/**
 * @file
 * Single-qubit gate fusion: merges maximal runs of 1q gates on the same
 * qubit into one dense 2x2 unitary, the classic ideal-simulation
 * optimization the paper notes is *disrupted* by noisy simulation (each
 * original gate is a noise-insertion site, so fused circuits are only
 * valid for noise-free segments).  The ablation bench quantifies both
 * sides: fusion's ideal-sim win and its incompatibility with per-gate
 * channel attachment.
 */

#include <cstddef>
#include <vector>

#include "sim/circuit.h"
#include "sim/gate.h"

namespace tqsim::sim {

/** Outcome counters of a fusion pass. */
struct FusionStats
{
    /** Gates in the input circuit. */
    std::size_t gates_before = 0;
    /** Gates in the fused circuit. */
    std::size_t gates_after = 0;
    /** Number of multi-gate runs that were merged. */
    std::size_t runs_fused = 0;

    double
    reduction() const
    {
        return gates_before == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(gates_after) /
                               static_cast<double>(gates_before);
    }
};

/**
 * Returns an ideal-equivalent circuit where every maximal run of >= 2
 * consecutive single-qubit gates on one qubit (with no interposed
 * multi-qubit gate touching that qubit) is replaced by one fused
 * kUnitary1q gate.  Single-gate runs are kept verbatim.
 *
 * The fused circuit produces the identical ideal state (up to floating
 * point) but is NOT equivalent under per-gate noise models.
 */
Circuit fuse_single_qubit_runs(const Circuit& circuit,
                               FusionStats* stats = nullptr);

/**
 * Span form of fuse_single_qubit_runs for the segment compiler: fuses a raw
 * gate sequence (length @p count starting at @p gates) on a @p num_qubits
 * register without materializing intermediate Circuit objects.  Same
 * semantics and ordering as the Circuit overload.
 */
std::vector<Gate> fuse_gate_span(const Gate* gates, std::size_t count,
                                 int num_qubits, FusionStats* stats = nullptr);

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_FUSION_H_
