#ifndef TQSIM_SIM_FUSION_H_
#define TQSIM_SIM_FUSION_H_

/**
 * @file
 * Gate fusion for noise-free segments: qsim-style greedy cluster fusion
 * (Isakov et al.) generalized from the original single-qubit-run pass.
 *
 * Connected runs of 1q/2q gates merge into dense k-qubit "cluster" gates
 * (k <= FusionOptions::max_fused_qubits, up to 5): a 1q gate joins the open
 * cluster on its qubit, and a dense 2q gate links the clusters of its two
 * operands into one when the united qubit set still fits the width cap.
 * Each multi-gate cluster is emitted as ONE dense 2^k x 2^k unitary
 * (executed by apply_dense_kq in one gather/scatter pass), so a cluster of
 * g absorbed gates costs one state-vector pass instead of g — the memory-
 * traffic reduction that dominates once states outgrow the caches.
 *
 * Design points:
 *  - Only *connected* gates merge (a 2q gate is the connector); parallel 1q
 *    gates on unrelated qubits stay separate, exactly as in qsim.
 *  - Open clusters always have pairwise-disjoint qubit sets, so they
 *    commute and may flush in any (deterministic) order.
 *  - Diagonal 2q gates (CZ/CPhase/RZZ) never open or widen a cluster: they
 *    are absorbed only when their qubits already sit inside one cluster,
 *    and otherwise stay in the stream for the segment compiler's batched-
 *    diagonal pass (a single elementwise sweep beats any dense kernel).
 *  - Gates of arity >= 3 act as barriers on their qubits and keep their
 *    specialized kernels (CCX's eighth-space swap beats a dense 8x8).
 *  - Emission is cost-gated: a cluster is fused only when one dense
 *    gather/scatter pass beats the members' specialized kernels under a
 *    static relative-cost model (a run of quarter-space CX swaps stays
 *    unfused — collapsing it into a dense 8x8 would regress several-fold);
 *    rejected clusters replay their members verbatim.
 *  - Single-gate clusters are emitted verbatim, so nothing loses its fast
 *    path when no fusion opportunity exists.
 *  - max_fused_qubits = 1 reproduces the original single-qubit-run fusion
 *    bit-for-bit (same products, same emission order).
 *
 * Noise interaction: fusion is only valid where no channels attach — every
 * original gate is a noise-insertion site, so the segment compiler
 * (sim/segment_plan.h) calls this on maximal noise-free gate runs only and
 * keeps noisy gates at gate granularity.  Sampled outcomes and RNG streams
 * are therefore preserved exactly; amplitudes re-associate at the 1e-12
 * scale.  The ablation bench quantifies both sides: fusion's noise-free
 * win and its incompatibility with per-gate channel attachment.
 */

#include <cstddef>
#include <vector>

#include "sim/circuit.h"
#include "sim/gate.h"

namespace tqsim::sim {

/** Fusion-pass knobs. */
struct FusionOptions
{
    /** Maximum qubit count of one fused cluster, clamped to [1, 5].
     *  1 = single-qubit-run fusion only (the legacy pass); the executor
     *  auto-tunes the default through core::tuned_max_fused_qubits(). */
    int max_fused_qubits = 3;
};

/** Outcome counters of a fusion pass. */
struct FusionStats
{
    /** Gates in the input circuit. */
    std::size_t gates_before = 0;
    /** Gates in the fused circuit. */
    std::size_t gates_after = 0;
    /** Number of multi-gate clusters that were merged. */
    std::size_t runs_fused = 0;
    /** Source gates absorbed into those multi-gate clusters. */
    std::size_t gates_absorbed = 0;
    /** Multi-gate fused ops by cluster width ([k] = k-qubit clusters,
     *  1 <= k <= 5; [0] unused). */
    std::size_t width_hist[6] = {0, 0, 0, 0, 0, 0};

    double
    reduction() const
    {
        return gates_before == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(gates_after) /
                               static_cast<double>(gates_before);
    }
};

/**
 * One gate of a fused stream.  For a multi-gate cluster, @p gate is the
 * dense cluster product (kUnitary1q/2q/Kq) and @p members keeps the source
 * gates in application order — the sharded backend re-lowers members
 * individually when a cluster crosses its slice boundary.  Pass-through
 * gates have empty @p members.
 */
struct FusedGate
{
    Gate gate;
    std::vector<Gate> members;

    bool is_cluster() const { return members.size() >= 2; }
};

/**
 * Cluster-fuses a raw gate sequence (length @p count starting at
 * @p gates) on a @p num_qubits register.  The returned stream applied in
 * order is ideal-equivalent to the input (up to floating-point
 * re-association) but NOT equivalent under per-gate noise models.
 */
std::vector<FusedGate> fuse_clusters(const Gate* gates, std::size_t count,
                                     int num_qubits,
                                     const FusionOptions& options,
                                     FusionStats* stats = nullptr);

/**
 * Gate-only span fusion (drops member lists).  With the default-
 * constructed width cap of FusionOptions this performs cluster fusion;
 * legacy callers wanting the 1q-only pass use fuse_single_qubit_runs.
 */
std::vector<Gate> fuse_gate_span(const Gate* gates, std::size_t count,
                                 int num_qubits,
                                 const FusionOptions& options = {},
                                 FusionStats* stats = nullptr);

/** Circuit-level cluster fusion (ideal-simulation callers, benches). */
Circuit fuse_circuit(const Circuit& circuit, const FusionOptions& options,
                     FusionStats* stats = nullptr);

/**
 * The original pass: every maximal run of >= 2 consecutive single-qubit
 * gates on one qubit merges into one kUnitary1q gate; nothing else fuses.
 * Equivalent to fuse_circuit with max_fused_qubits = 1.
 */
Circuit fuse_single_qubit_runs(const Circuit& circuit,
                               FusionStats* stats = nullptr);

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_FUSION_H_
