#include "sim/fusion.h"

#include <vector>

#include "sim/gate.h"
#include "util/assert.h"

namespace tqsim::sim {

namespace {

/** A pending run of 1q gates on one qubit. */
struct PendingRun
{
    Matrix product{1, 0, 0, 1};  // accumulated unitary (left-multiplied)
    std::vector<Gate> originals;

    bool empty() const { return originals.empty(); }

    void
    absorb(const Gate& g)
    {
        product = matmul(g.matrix(), product, 2);
        originals.push_back(g);
    }

    void
    clear()
    {
        product = {1, 0, 0, 1};
        originals.clear();
    }
};

}  // namespace

std::vector<Gate>
fuse_gate_span(const Gate* gates, std::size_t count, int num_qubits,
               FusionStats* stats)
{
    std::vector<Gate> fused;
    fused.reserve(count);
    std::vector<PendingRun> pending(num_qubits);
    FusionStats local;
    local.gates_before = count;

    auto flush = [&fused, &pending, &local](int q) {
        PendingRun& run = pending[q];
        if (run.empty()) {
            return;
        }
        if (run.originals.size() == 1) {
            fused.push_back(run.originals.front());
        } else {
            fused.push_back(Gate::unitary1q(q, run.product, "fused1q"));
            ++local.runs_fused;
        }
        run.clear();
    };

    for (std::size_t i = 0; i < count; ++i) {
        const Gate& g = gates[i];
        if (g.arity() == 1) {
            pending[g.qubits()[0]].absorb(g);
            continue;
        }
        for (int q : g.qubits()) {
            flush(q);
        }
        fused.push_back(g);
    }
    for (int q = 0; q < num_qubits; ++q) {
        flush(q);
    }

    local.gates_after = fused.size();
    if (stats != nullptr) {
        *stats = local;
    }
    return fused;
}

Circuit
fuse_single_qubit_runs(const Circuit& circuit, FusionStats* stats)
{
    Circuit fused(circuit.num_qubits(),
                  circuit.name().empty() ? "fused"
                                         : circuit.name() + "_fused");
    for (Gate& g : fuse_gate_span(circuit.gates().data(), circuit.size(),
                                  circuit.num_qubits(), stats)) {
        fused.append(std::move(g));
    }
    return fused;
}

}  // namespace tqsim::sim
