#include "sim/fusion.h"

#include <algorithm>
#include <string>
#include <vector>

#include "sim/gate.h"
#include "util/assert.h"

namespace tqsim::sim {

namespace {

constexpr int kMaxClusterQubits = 5;

int
clamp_width(int max_fused_qubits)
{
    return std::clamp(max_fused_qubits, 1, kMaxClusterQubits);
}

/** An open fusion cluster: the qubits it spans (in first-appearance order —
 *  qubit i of the list is bit i of the emitted matrix basis) and the source
 *  gates absorbed so far, in application order. */
struct Cluster
{
    std::vector<int> qubits;
    std::vector<Gate> members;
    bool open = true;
};

/**
 * Relative full-state pass cost of one gate's specialized kernel, in dense
 * 1q-pass units (measured ratios from bench_micro_kernels; only the coarse
 * ordering matters).  Permutation fast paths move a fraction of the
 * amplitudes with zero flops, diagonal passes are elementwise, dense
 * kernels pay the matvec.
 */
double
member_pass_cost(const Gate& g)
{
    if (g.kind() == GateKind::kI) {
        return 0.0;
    }
    if (g.arity() == 1) {
        if (g.kind() == GateKind::kX) {
            return 0.2;
        }
        return g.is_diagonal() ? 0.5 : 1.0;
    }
    if (g.is_diagonal()) {
        return 0.5;
    }
    switch (g.kind()) {
      case GateKind::kCX:
      case GateKind::kSWAP:
        return 0.15;
      default:
        return 2.1;  // dense 2q matvec
    }
}

/** Relative cost of one fused k-qubit gather/scatter pass ([k], same
 *  units).  The 4^k matvec arithmetic grows much faster than the saved
 *  memory passes once k is large — the measured ladder from
 *  apply_dense_kq, matching the tuned_max_fused_qubits probe. */
constexpr double kClusterPassCost[6] = {0.0, 1.0, 2.1, 2.9, 5.4, 18.5};

/** Greedy cluster builder over one gate span. */
class ClusterFuser
{
  public:
    ClusterFuser(int num_qubits, int max_width, FusionStats* stats)
        : num_qubits_(num_qubits),
          max_width_(max_width),
          owner_(static_cast<std::size_t>(num_qubits), -1),
          stats_(stats)
    {
    }

    void
    add(const Gate& g)
    {
        const std::vector<int>& q = g.qubits();
        if (g.arity() == 1) {
            absorb_1q(g, q[0]);
            return;
        }
        if (g.arity() == 2 && g.is_diagonal()) {
            add_diag_2q(g);
            return;
        }
        if (g.arity() == 2 && max_width_ >= 2) {
            add_dense_2q(g);
            return;
        }
        // Barrier: arity >= 3 (specialized kernels beat a dense 8x8+) or a
        // width cap of 1 (single-qubit-run fusion only).
        for (int qb : q) {
            flush_qubit(qb);
        }
        out_.emplace_back(g);
    }

    /** Flushes the remaining clusters ordered by their lowest-indexed
     *  qubit (the original pass's end-of-span order) and returns the
     *  stream. */
    std::vector<FusedGate>
    finish()
    {
        for (int q = 0; q < num_qubits_; ++q) {
            flush_qubit(q);
        }
        return std::move(out_);
    }

  private:
    void
    absorb_1q(const Gate& g, int q)
    {
        int c = owner_[q];
        if (c < 0) {
            c = static_cast<int>(clusters_.size());
            clusters_.push_back(Cluster{{q}, {}, true});
            owner_[q] = c;
        }
        clusters_[c].members.push_back(g);
    }

    /** Diagonal 2q gates never open or widen a cluster: absorbed for free
     *  when both qubits already sit inside one cluster, otherwise left in
     *  the stream for the compiler's batched-diagonal pass. */
    void
    add_diag_2q(const Gate& g)
    {
        const int a = g.qubits()[0];
        const int b = g.qubits()[1];
        if (owner_[a] >= 0 && owner_[a] == owner_[b]) {
            clusters_[owner_[a]].members.push_back(g);
            return;
        }
        flush_qubit(a);
        flush_qubit(b);
        out_.emplace_back(g);
    }

    void
    add_dense_2q(const Gate& g)
    {
        const int a = g.qubits()[0];
        const int b = g.qubits()[1];
        const int ca = owner_[a];
        const int cb = owner_[b];
        // The united qubit set if the operands' clusters link up.
        std::size_t united = 0;
        united += ca >= 0 ? clusters_[ca].qubits.size() : 1;
        if (cb != ca || cb < 0) {
            united += cb >= 0 ? clusters_[cb].qubits.size() : 1;
        }
        if (united > static_cast<std::size_t>(max_width_)) {
            flush_qubit(a);
            flush_qubit(b);
            open_cluster(g);
            return;
        }
        if (ca < 0 && cb < 0) {
            open_cluster(g);
            return;
        }
        // Merge into the earlier-created cluster (deterministic order; open
        // clusters are qubit-disjoint, so their gates commute exactly).
        int target = ca >= 0 && cb >= 0 ? std::min(ca, cb)
                                        : std::max(ca, cb);
        const int other = ca >= 0 && cb >= 0 ? std::max(ca, cb) : -1;
        Cluster& t = clusters_[target];
        if (other >= 0 && other != target) {
            Cluster& o = clusters_[other];
            t.qubits.insert(t.qubits.end(), o.qubits.begin(), o.qubits.end());
            t.members.insert(t.members.end(), o.members.begin(),
                             o.members.end());
            for (int qb : o.qubits) {
                owner_[qb] = target;
            }
            o.open = false;
            o.members.clear();
            o.qubits.clear();
        }
        for (int qb : {a, b}) {
            if (owner_[qb] != target) {
                t.qubits.push_back(qb);
                owner_[qb] = target;
            }
        }
        t.members.push_back(g);
    }

    void
    open_cluster(const Gate& g)
    {
        const int c = static_cast<int>(clusters_.size());
        clusters_.push_back(Cluster{g.qubits(), {g}, true});
        for (int qb : g.qubits()) {
            owner_[qb] = c;
        }
    }

    void
    flush_qubit(int q)
    {
        const int c = owner_[q];
        if (c < 0) {
            return;
        }
        emit(clusters_[c]);
    }

    /** Emits a cluster: verbatim for one member, else the dense product of
     *  the members expanded onto the cluster's qubit list — but only when
     *  one fused pass actually beats the members' specialized kernels
     *  (fusing a run of quarter-space CX swaps into a dense 8x8 would be
     *  a large regression).  Rejected clusters replay their members
     *  verbatim; single-qubit runs always fuse (one dense 1q pass never
     *  loses to several, and it keeps the legacy cap-1 pass intact). */
    void
    emit(Cluster& c)
    {
        for (int qb : c.qubits) {
            owner_[qb] = -1;
        }
        c.open = false;
        if (c.members.size() == 1) {
            out_.emplace_back(std::move(c.members.front()));
            c.members.clear();
            c.qubits.clear();
            return;
        }
        const int k = static_cast<int>(c.qubits.size());
        if (k >= 2) {
            double members_cost = 0.0;
            for (const Gate& m : c.members) {
                members_cost += member_pass_cost(m);
            }
            if (members_cost <= kClusterPassCost[k]) {
                for (Gate& m : c.members) {
                    out_.emplace_back(std::move(m));
                }
                c.members.clear();
                c.qubits.clear();
                return;
            }
        }
        const std::size_t d = std::size_t{1} << k;
        // Basis map: cluster qubit i -> matrix bit i.
        std::vector<int> mapping(static_cast<std::size_t>(num_qubits_), 0);
        for (int i = 0; i < k; ++i) {
            mapping[c.qubits[i]] = i;
        }
        Matrix product(d * d, Complex{0.0, 0.0});
        for (std::size_t i = 0; i < d; ++i) {
            product[i * d + i] = Complex{1.0, 0.0};
        }
        for (const Gate& m : c.members) {
            product =
                matmul(expand_gate(m.remapped(mapping), k), product, d);
        }
        if (stats_ != nullptr) {
            ++stats_->runs_fused;
            stats_->gates_absorbed += c.members.size();
            ++stats_->width_hist[k];
        }
        out_.emplace_back(
            Gate::unitary_kq(c.qubits, std::move(product),
                             "fused" + std::to_string(k) + "q"),
            std::move(c.members));
        c.members.clear();
        c.qubits.clear();
    }

    int num_qubits_;
    int max_width_;
    std::vector<int> owner_;
    std::vector<Cluster> clusters_;
    std::vector<FusedGate> out_;
    FusionStats* stats_;
};

}  // namespace

std::vector<FusedGate>
fuse_clusters(const Gate* gates, std::size_t count, int num_qubits,
              const FusionOptions& options, FusionStats* stats)
{
    FusionStats local;
    local.gates_before = count;
    ClusterFuser fuser(num_qubits, clamp_width(options.max_fused_qubits),
                       stats != nullptr ? stats : &local);
    if (stats != nullptr) {
        *stats = local;
    }
    for (std::size_t i = 0; i < count; ++i) {
        fuser.add(gates[i]);
    }
    std::vector<FusedGate> fused = fuser.finish();
    if (stats != nullptr) {
        stats->gates_before = count;
        stats->gates_after = fused.size();
    }
    return fused;
}

std::vector<Gate>
fuse_gate_span(const Gate* gates, std::size_t count, int num_qubits,
               const FusionOptions& options, FusionStats* stats)
{
    std::vector<FusedGate> fused =
        fuse_clusters(gates, count, num_qubits, options, stats);
    std::vector<Gate> out;
    out.reserve(fused.size());
    for (FusedGate& f : fused) {
        out.push_back(std::move(f.gate));
    }
    return out;
}

Circuit
fuse_circuit(const Circuit& circuit, const FusionOptions& options,
             FusionStats* stats)
{
    Circuit fused(circuit.num_qubits(),
                  circuit.name().empty() ? "fused"
                                         : circuit.name() + "_fused");
    for (Gate& g : fuse_gate_span(circuit.gates().data(), circuit.size(),
                                  circuit.num_qubits(), options, stats)) {
        fused.append(std::move(g));
    }
    return fused;
}

Circuit
fuse_single_qubit_runs(const Circuit& circuit, FusionStats* stats)
{
    FusionOptions options;
    options.max_fused_qubits = 1;
    return fuse_circuit(circuit, options, stats);
}

}  // namespace tqsim::sim
