#ifndef TQSIM_SIM_STATE_VECTOR_H_
#define TQSIM_SIM_STATE_VECTOR_H_

/**
 * @file
 * Dense state-vector container — the core data structure of the
 * Schrödinger-style engine (paper Sec. 2.2).
 */

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace tqsim::sim {

/**
 * An n-qubit pure state held as 2^n complex amplitudes.
 *
 * The container is deliberately dumb: gate application lives in
 * gate_kernels.h so that alternative backends (distributed, modeled) can
 * share the same kernel code paths.  Copying a StateVector is the
 * "intermediate state reuse" operation whose cost Sec. 3.6 of the paper
 * profiles; it is intentionally a plain memcpy-style copy.
 */
class StateVector
{
  public:
    /** Constructs the |0...0> state on @p num_qubits qubits (1..30). */
    explicit StateVector(int num_qubits);

    /** Constructs a state from explicit amplitudes (size must be a power of 2). */
    StateVector(int num_qubits, std::vector<Complex> amplitudes);

    StateVector(const StateVector&) = default;
    StateVector& operator=(const StateVector&) = default;
    StateVector(StateVector&&) noexcept = default;
    StateVector& operator=(StateVector&&) noexcept = default;

    /** Returns the qubit count. */
    int num_qubits() const { return num_qubits_; }

    /** Returns 2^num_qubits. */
    Index size() const { return static_cast<Index>(amps_.size()); }

    /** Returns the memory footprint of the amplitude array in bytes. */
    std::uint64_t bytes() const { return size() * kBytesPerAmplitude; }

    /** Resets to |0...0>. */
    void reset();

    /** Sets the state to the computational basis state @p basis. */
    void set_basis_state(Index basis);

    /** Mutable amplitude access. */
    Complex& operator[](Index i) { return amps_[i]; }

    /** Immutable amplitude access. */
    const Complex& operator[](Index i) const { return amps_[i]; }

    /** Raw amplitude pointer (hot kernels). */
    Complex* data() { return amps_.data(); }

    /** Raw amplitude pointer (hot kernels). */
    const Complex* data() const { return amps_.data(); }

    /** Returns the squared 2-norm <psi|psi>. */
    double norm_squared() const;

    /** Rescales so that norm_squared() == 1. Throws if the norm is ~0. */
    void normalize();

    /** Returns <this|other>; dimensions must match. */
    Complex inner_product(const StateVector& other) const;

    /** Returns |amplitude|^2 for each basis state. */
    std::vector<double> probabilities() const;

    /** Returns the probability of measuring qubit @p q as 1. */
    double probability_of_one(int q) const;

    /** Returns true if both states have equal qubit count and amplitudes
     *  within @p tol (element-wise, absolute). */
    bool approx_equal(const StateVector& other, double tol = 1e-9) const;

  private:
    int num_qubits_;
    std::vector<Complex> amps_;
};

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_STATE_VECTOR_H_
