#ifndef TQSIM_SIM_STATE_VECTOR_H_
#define TQSIM_SIM_STATE_VECTOR_H_

/**
 * @file
 * Dense state-vector container — the core data structure of the
 * Schrödinger-style engine (paper Sec. 2.2).
 */

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace tqsim::sim {

/**
 * An n-qubit pure state held as 2^n complex amplitudes.
 *
 * The container is deliberately dumb: gate application lives in
 * gate_kernels.h so that alternative backends (distributed, modeled) can
 * share the same kernel code paths.  Copying a StateVector is the
 * "intermediate state reuse" operation whose cost Sec. 3.6 of the paper
 * profiles; it is intentionally a plain memcpy-style copy.
 */
class StateVector
{
  public:
    /** Constructs the |0...0> state on @p num_qubits qubits (1..30). */
    explicit StateVector(int num_qubits);

    /** Constructs a state from explicit amplitudes (size must be a power of 2). */
    StateVector(int num_qubits, std::vector<Complex> amplitudes);

    StateVector(const StateVector&) = default;
    StateVector& operator=(const StateVector&) = default;
    StateVector(StateVector&&) noexcept = default;
    StateVector& operator=(StateVector&&) noexcept = default;

    /** Returns the qubit count. */
    int num_qubits() const { return num_qubits_; }

    /** Returns 2^num_qubits. */
    Index size() const { return static_cast<Index>(amps_.size()); }

    /** Returns the memory footprint of the amplitude array in bytes. */
    std::uint64_t bytes() const { return size() * kBytesPerAmplitude; }

    /** Resets to |0...0>. */
    void reset();

    /** Sets the state to the computational basis state @p basis. */
    void set_basis_state(Index basis);

    /** Mutable amplitude access. */
    Complex& operator[](Index i) { return amps_[i]; }

    /** Immutable amplitude access. */
    const Complex& operator[](Index i) const { return amps_[i]; }

    /** Raw amplitude pointer (hot kernels). */
    Complex* data() { return amps_.data(); }

    /** Raw amplitude pointer (hot kernels). */
    const Complex* data() const { return amps_.data(); }

    /** Returns the squared 2-norm <psi|psi>. */
    double norm_squared() const;

    /** Rescales so that norm_squared() == 1. Throws if the norm is ~0. */
    void normalize();

    /** Returns <this|other>; dimensions must match. */
    Complex inner_product(const StateVector& other) const;

    /** Returns |amplitude|^2 for each basis state. */
    std::vector<double> probabilities() const;

    /** Returns the probability of measuring qubit @p q as 1. */
    double probability_of_one(int q) const;

    /** Returns true if both states have equal qubit count and amplitudes
     *  within @p tol (element-wise, absolute). */
    bool approx_equal(const StateVector& other, double tol = 1e-9) const;

  private:
    friend class SnapshotPool;

    int num_qubits_;
    std::vector<Complex> amps_;
};

/**
 * Free-list recycler for snapshot amplitude buffers.
 *
 * Branch-point snapshots ("intermediate state reuse", Sec. 3.6) that
 * allocate a fresh 2^n buffer pay the allocator plus first-touch faults on
 * top of the unavoidable memcpy.  A pool instead leases buffers returned by
 * earlier, completed branches: after warm-up misses, every snapshot is a
 * pure copy into recycled memory.
 *
 * This is the buffer-level form of the mechanics; the tree executor now
 * pools through the backend-generic sim::StateArena / PooledArena
 * (state_backend.h), which parks whole backend states and copy-assigns
 * into their retained buffers — the identical recycled-memcpy cost this
 * class (and the `pooled_snapshot` perf-smoke metric measuring it)
 * represents.  SnapshotPool remains the standalone primitive for benches,
 * tests, and callers outside the executor.
 *
 * The pool is intended to be per-worker (no locking) and never holds more
 * buffers than the caller's historical peak of simultaneously live states —
 * buffers only enter the free list after having been live — so pooling
 * cannot raise the executor's peak-memory bound.
 */
class SnapshotPool
{
  public:
    SnapshotPool() = default;

    /** Returns a copy of @p src, backed by a recycled buffer when one of
     *  matching size is available (a hit), else freshly allocated (a miss). */
    StateVector lease_copy(const StateVector& src);

    /** Recycles @p sv's buffer into the free list.  Moved-from or
     *  size-mismatched states are dropped harmlessly. */
    void release(StateVector&& sv);

    /** Buffer-recycling copies served so far. */
    std::uint64_t hits() const { return hits_; }

    /** Copies that had to allocate. */
    std::uint64_t misses() const { return misses_; }

    /** Buffers currently parked in the free list. */
    std::size_t retained() const { return free_.size(); }

  private:
    std::vector<std::vector<Complex>> free_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_STATE_VECTOR_H_
