#ifndef TQSIM_SIM_PARALLEL_H_
#define TQSIM_SIM_PARALLEL_H_

/**
 * @file
 * Shared-memory parallel runtime for the hot kernels, reductions, and the
 * tree executor's shot/subtree dispatch.
 *
 * The backend is a single lazily-started persistent worker pool: the first
 * parallel call large enough to be worth splitting spawns the workers, and
 * every later call reuses them (no per-call thread spawn/join).  The pool is
 * resized by set_num_threads(); the initial thread count comes from the
 * TQSIM_NUM_THREADS environment variable, defaulting to 1 so single-core
 * runs and existing benchmarks are unchanged.
 *
 * Guarantees:
 *  - An exception thrown by a loop body on any thread is captured and
 *    rethrown on the calling thread after the region completes (the first
 *    one wins; the legacy implementation called std::terminate instead).
 *  - Loops below the grain threshold run inline on the caller with no pool
 *    interaction, so tiny states never pay a dispatch cost.
 *  - Parallel regions do not nest: a parallel_* call issued from inside a
 *    running region executes serially inline.  This is what makes the tree
 *    executor's shot-level dispatch compose with the threaded kernels.
 *  - Reductions (parallel_blocks / parallel_sum) always use the same fixed
 *    block decomposition regardless of thread count, so floating-point
 *    results are bit-identical at 1, 2, or N threads.
 */

#include <cstdint>
#include <functional>

namespace tqsim::sim {

/** Elements below which parallel_for(total, fn) stays serial. */
inline constexpr std::uint64_t kParallelGrain = std::uint64_t{1} << 14;

/** Fixed reduction block size (thread-count independent => deterministic). */
inline constexpr std::uint64_t kReduceBlock = std::uint64_t{1} << 15;

/**
 * Sets the global worker-thread count (>= 1).  The pool resizes lazily on
 * the next parallel call; 1 disables the pool entirely.
 */
void set_num_threads(int n);

/**
 * Returns the global worker-thread count.  The first call reads the
 * TQSIM_NUM_THREADS environment variable (invalid or unset => 1).
 */
int num_threads();

/** True while executing inside a parallel region (worker or caller task). */
bool in_parallel_region();

/**
 * Runs fn(begin, end) over a partition of [0, total) across the pool.
 * Ranges are contiguous, non-overlapping, and cover [0, total); fn must be
 * thread-safe when num_threads() > 1.  Serial when total <= kParallelGrain.
 */
void parallel_for(std::uint64_t total,
                  const std::function<void(std::uint64_t, std::uint64_t)>& fn);

/** parallel_for with an explicit serial-threshold @p grain (in elements). */
void parallel_for(std::uint64_t total, std::uint64_t grain,
                  const std::function<void(std::uint64_t, std::uint64_t)>& fn);

/**
 * Dispatches fn(0), fn(1), ..., fn(n - 1) as individually claimed tasks.
 * Tasks are claimed in ascending index order (dynamic load balance for
 * coarse, unequal work items such as subtree executions); parallel whenever
 * n >= 2 and the pool is active.
 */
void parallel_for_each(std::uint64_t n,
                       const std::function<void(std::uint64_t)>& fn);

/**
 * Runs fn(block_index, begin, end) over fixed kReduceBlock-sized blocks of
 * [0, total).  The decomposition depends only on @p total, never on the
 * thread count, so per-block partial results can be combined in block order
 * for bit-reproducible reductions.  There are num_reduce_blocks(total)
 * blocks; block b covers [b * kReduceBlock, min(total, (b+1) * kReduceBlock)).
 */
void parallel_blocks(
    std::uint64_t total,
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>&
        fn);

/** Number of blocks parallel_blocks() uses for @p total elements. */
std::uint64_t num_reduce_blocks(std::uint64_t total);

/**
 * Deterministic parallel sum: evaluates fn(begin, end) -> partial sum over
 * the fixed blocks of [0, total) and adds the partials in block order.
 * Bit-identical at any thread count.
 */
double parallel_sum(std::uint64_t total,
                    const std::function<double(std::uint64_t, std::uint64_t)>&
                        fn);

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_PARALLEL_H_
