#ifndef TQSIM_SIM_PARALLEL_H_
#define TQSIM_SIM_PARALLEL_H_

/**
 * @file
 * Minimal fork-join parallel-for used by large-state kernels and by the
 * simulated-cluster engine's per-node work loops.
 *
 * The global thread count defaults to 1; HPC-style runs raise it via
 * set_num_threads().  With one thread every helper degenerates to a plain
 * serial loop, which is the right choice for this repository's single-core
 * benchmark environment.
 */

#include <cstdint>
#include <functional>

namespace tqsim::sim {

/** Sets the global worker-thread count (>= 1). */
void set_num_threads(int n);

/** Returns the global worker-thread count. */
int num_threads();

/**
 * Runs fn(begin, end) over a partition of [0, total) across the configured
 * threads.  Ranges are contiguous and non-overlapping; fn must be
 * thread-safe when num_threads() > 1.
 */
void parallel_for(std::uint64_t total,
                  const std::function<void(std::uint64_t, std::uint64_t)>& fn);

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_PARALLEL_H_
